"""Ablation — kernel fusion (Section III-C).

Fusing p-Thomas forward reduction into the tiled-PCR sweep saves the
reduced system's global round trip but pins the launch shape to the PCR
stage's narrow, shared-memory-heavy blocks.  The paper: "kernel fusion
does not always improve performance".  This benchmark measures both
numeric paths (identical answers), and queries the model for the two
regimes: fusion wins at small M (traffic-bound, occupancy irrelevant),
loses or ties at large M (the p-Thomas stage wants its own wide launch).
"""

import numpy as np
import pytest

from repro.gpusim.device import GTX480
from repro.gpusim.occupancy import occupancy
from repro.gpusim.timing import GpuTimingModel
from repro.backends import reference_solver
from repro.kernels.fused_kernel import fused_hybrid_counters
from repro.kernels.hybrid_gpu import GpuHybridSolver
from repro.kernels.pthomas_kernel import pthomas_counters
from repro.kernels.tiled_pcr_kernel import tiled_pcr_counters

from .conftest import make_batch, verify


@pytest.mark.parametrize("fuse", [False, True])
def test_fusion_measured(benchmark, fuse):
    m, n, k = 16, 8192, 5
    a, b, c, d = make_batch(m, n, seed=1)
    solver = reference_solver(k=k, fuse=fuse)
    x = benchmark(solver.solve_batch, a, b, c, d)
    verify(a, b, c, d, x)
    benchmark.extra_info.update({"ablation": "fusion", "fused": fuse})


def test_fusion_identical_answers(benchmark):
    m, n, k = 8, 4096, 4
    a, b, c, d = make_batch(m, n, seed=2)

    def both():
        x1 = reference_solver(k=k, fuse=False).solve_batch(a, b, c, d)
        x2 = reference_solver(k=k, fuse=True).solve_batch(a, b, c, d)
        return x1, x2

    x1, x2 = benchmark.pedantic(both, rounds=1, iterations=1)
    assert np.array_equal(x1, x2)
    benchmark.extra_info["ablation"] = "fusion"


def _model_pair(m, n, k, dtype_bytes=8):
    model = GpuTimingModel(GTX480)
    fused = model.time(fused_hybrid_counters(m, n, k, dtype_bytes), dtype_bytes)
    g = 1 << k
    pcr = model.time(tiled_pcr_counters(m, n, k, dtype_bytes), dtype_bytes)
    thom = model.time(
        pthomas_counters(m * g, -(-n // g), dtype_bytes), dtype_bytes
    )
    return fused.total_s, pcr.total_s + thom.total_s


def test_fusion_saves_traffic_small_m(benchmark):
    """Few systems: the saved round trip dominates; fusion wins."""

    def ratio():
        fused, unfused = _model_pair(4, 1 << 18, 8)
        return unfused / fused

    r = benchmark(ratio)
    assert r > 1.0
    benchmark.extra_info.update({"ablation": "fusion", "unfused_over_fused": round(r, 3)})


def test_fusion_not_always_better(benchmark):
    """The paper's warning, reproduced: there exist configurations where
    the fused kernel's occupancy penalty outweighs the traffic saving."""

    def worst_case():
        out = {}
        for m, n, k in ((8192, 512, 3), (4096, 1024, 2), (16384, 256, 2)):
            fused, unfused = _model_pair(m, n, k)
            out[f"{m}x{n}k{k}"] = unfused / fused
        return out

    ratios = benchmark(worst_case)
    assert min(ratios.values()) < 1.0, ratios
    benchmark.extra_info.update(
        {"ablation": "fusion",
         "unfused_over_fused": {k: round(v, 3) for k, v in ratios.items()}}
    )


def test_fusion_occupancy_gap(benchmark):
    """Quantify the occupancy loss fusion accepts."""

    def gap():
        m, n, k = 4096, 2048, 5
        fused = fused_hybrid_counters(m, n, k, 8)
        thom = pthomas_counters(m * (1 << k), -(-n // (1 << k)), 8)
        of = occupancy(GTX480, fused.threads_per_block, fused.smem_per_block)
        ot = occupancy(GTX480, thom.threads_per_block, thom.smem_per_block)
        return of.occupancy, ot.occupancy

    fo, to = benchmark(gap)
    assert fo < to
    benchmark.extra_info.update(
        {"ablation": "fusion", "fused_occupancy": round(fo, 3),
         "pthomas_occupancy": round(to, 3)}
    )
