"""Ablation — execution time vs the PCR step count k.

Sweeps k around the Table III transition points at fixed workloads and
records measured wall-clock + predicted GPU time per k.  The measured
CPU numerics shift work between the (vectorized, O(kN)) PCR sweep and
the (sequential-over-rows, O(N/2^k)-deep) p-Thomas loop, so wall-clock
itself shows the tradeoff the GPU heuristic navigates.
"""

import pytest

from repro.backends import reference_solver
from repro.core.pcr import pcr_then_thomas_batch

from .conftest import make_batch, verify


@pytest.mark.parametrize("k", [0, 2, 4, 6, 8])
def test_kstep_measured_small_m(benchmark, k):
    """M = 8 (starved): deeper PCR shortens the Python-level row loop."""
    m, n = 8, 16384
    a, b, c, d = make_batch(m, n, seed=k)
    x = benchmark(pcr_then_thomas_batch, a, b, c, d, k)
    verify(a, b, c, d, x)
    benchmark.extra_info.update({"ablation": "kstep", "M": m, "k": k})


@pytest.mark.parametrize("k", [0, 2, 4])
def test_kstep_measured_large_m(benchmark, k):
    """M = 4096 (saturated): extra PCR is pure overhead (k = 0 optimal)."""
    m, n = 4096, 256
    a, b, c, d = make_batch(m, n, seed=k)
    x = benchmark(pcr_then_thomas_batch, a, b, c, d, k)
    verify(a, b, c, d, x)
    benchmark.extra_info.update({"ablation": "kstep", "M": m, "k": k})


def test_kstep_model_basin(benchmark):
    """The model's time-vs-k curve has its basin at Table III's k."""
    from repro.gpusim.device import GTX480
    from repro.gpusim.timing import GpuTimingModel
    from repro.kernels.pthomas_kernel import pthomas_counters
    from repro.kernels.tiled_pcr_kernel import tiled_pcr_counters

    def basin():
        model = GpuTimingModel(GTX480)
        m, n = 128, 16384
        out = {}
        for k in range(0, 9):
            g = 1 << k
            t = 0.0
            if k:
                t += model.time(tiled_pcr_counters(m, n, k, 8), 8).total_s
            t += model.time(pthomas_counters(m * g, -(-n // g), 8), 8).total_s
            out[k] = t
        return out

    times = benchmark(basin)
    best = min(times, key=times.get)
    assert best == 6  # Table III: 32 <= M < 512 -> k = 6
    benchmark.extra_info.update(
        {"ablation": "kstep", "model_best_k": best,
         "times_ms": {str(k): round(v * 1e3, 2) for k, v in times.items()}}
    )


def test_kstep_sweep_with_real_tiling(benchmark):
    """Full hybrid (streaming window) across k — answers all identical."""
    import numpy as np

    def run():
        a, b, c, d = make_batch(4, 2048, seed=7)
        return [reference_solver(k=k).solve_batch(a, b, c, d) for k in (0, 2, 4, 6)]

    xs = benchmark.pedantic(run, rounds=1, iterations=1)
    for x in xs[1:]:
        assert np.allclose(xs[0], x, atol=1e-9)
    benchmark.extra_info["ablation"] = "kstep"
