"""Ablation — memory layout for p-Thomas (Section III-B).

"PCR naturally produces interleaved results which is [a] perfect match
with p-Thomas": interleaved layout gives stride-1 warp accesses (fully
coalesced); contiguous per-system storage gives stride-N accesses (one
transaction per lane).  The model quantifies the bus-traffic blow-up;
the measured benchmark shows the same effect on the CPU through cache
behaviour (column-strided walks vs contiguous vector ops).
"""

import numpy as np
import pytest

from repro.core.layout import Layout
from repro.core.pcr import pcr_sweep
from repro.core.pthomas import pthomas_solve_interleaved
from repro.gpusim.device import GTX480
from repro.gpusim.timing import GpuTimingModel
from repro.kernels.pthomas_kernel import pthomas_counters

from .conftest import make_batch


@pytest.mark.parametrize("layout", [Layout.INTERLEAVED, Layout.CONTIGUOUS])
def test_layout_model_traffic(benchmark, layout):
    def ledger():
        return pthomas_counters(2048, 512, 8, layout=layout)

    counters = benchmark(ledger)
    eff = counters.traffic.coalescing_efficiency
    if layout is Layout.INTERLEAVED:
        assert eff == pytest.approx(1.0)
    else:
        assert eff < 0.1
    model = GpuTimingModel(GTX480)
    benchmark.extra_info.update(
        {
            "ablation": "layout",
            "layout": layout.value,
            "coalescing_efficiency": round(eff, 4),
            "model_time_ms": round(model.time(counters, 8).total_s * 1e3, 3),
        }
    )


def test_layout_model_speedup(benchmark):
    """Interleaved should be ~an order of magnitude faster on the model."""

    def ratio():
        model = GpuTimingModel(GTX480)
        ti = model.time(
            pthomas_counters(2048, 512, 8, layout=Layout.INTERLEAVED), 8
        ).total_s
        tc = model.time(
            pthomas_counters(2048, 512, 8, layout=Layout.CONTIGUOUS), 8
        ).total_s
        return tc / ti

    r = benchmark(ratio)
    assert r > 5.0
    benchmark.extra_info.update({"ablation": "layout", "contig_over_inter": round(r, 2)})


@pytest.mark.parametrize("contiguous", [False, True])
def test_layout_measured_cpu_analogue(benchmark, contiguous):
    """Even on the CPU the access pattern matters: the batched Thomas
    walk over a transposed (system-contiguous) array strides the cache."""
    m, n = 2048, 512
    a, b, c, d = make_batch(m, n, seed=9)
    if contiguous:
        # store systems contiguously, then the solver's column access
        # at step i walks with stride n
        a, b, c, d = (np.asfortranarray(v) for v in (a, b, c, d))

    from repro.core.thomas import thomas_solve_batch

    benchmark(thomas_solve_batch, a, b, c, d, check=False)
    benchmark.extra_info.update(
        {"ablation": "layout", "storage": "fortran" if contiguous else "c"}
    )


def test_pcr_output_is_pthomas_ready(benchmark):
    """End-to-end: no transpose/copy is needed between the stages."""

    def run():
        a, b, c, d = make_batch(4, 1024, seed=1)
        ra, rb, rc, rd = pcr_sweep(a, b, c, d, 4)
        return pthomas_solve_interleaved(ra, rb, rc, rd, 4)

    x = benchmark(run)
    assert np.all(np.isfinite(x))
    benchmark.extra_info["ablation"] = "layout"
