"""Ablation — cached sliding window vs naive halo tiling (Fig. 7 vs 8).

The design choice the paper spends Section III-A on: naive tiling pays
``2·f(k)`` redundant loads and ``g(k)``-class redundant eliminations per
tile boundary (Eqs. 8-9, both exponential in k); the buffered sliding
window pays nothing.  This benchmark runs both *implementations* on the
same input, confirms identical numerics, and records the measured
redundancy next to the closed forms.
"""

import pytest

from repro.core.cost_model import f_redundant_loads, g_redundant_elims
from repro.core.tiled_pcr import TilingCounters, naive_tiled_pcr_sweep, tiled_pcr_sweep

from .conftest import make_batch


@pytest.mark.parametrize("k", [2, 3, 4, 5])
def test_cached_window(benchmark, k):
    n = 4096
    a, b, c, d = make_batch(1, n, seed=k)
    counters = TilingCounters()

    def run():
        counters.__init__()
        return tiled_pcr_sweep(a, b, c, d, k, counters=counters)

    benchmark(run)
    assert counters.rows_loaded_redundant == 0
    benchmark.extra_info.update(
        {
            "ablation": "tiling",
            "variant": "cached-window",
            "k": k,
            "rows_loaded": counters.rows_loaded,
            "redundant_loads": counters.rows_loaded_redundant,
            "eliminations": counters.eliminations,
        }
    )


@pytest.mark.parametrize("k", [2, 3, 4, 5])
def test_naive_tiling(benchmark, k):
    n, tile = 4096, 64
    a, b, c, d = make_batch(1, n, seed=k)
    counters = TilingCounters()

    def run():
        counters.__init__()
        return naive_tiled_pcr_sweep(a, b, c, d, k, tile=tile, counters=counters)

    benchmark(run)
    boundaries = n // tile - 1
    # Eq. 8 made concrete: 2 f(k) redundant loads per internal boundary
    assert counters.rows_loaded_redundant == 2 * f_redundant_loads(k) * boundaries
    assert counters.eliminations_redundant > 0
    benchmark.extra_info.update(
        {
            "ablation": "tiling",
            "variant": "naive",
            "k": k,
            "rows_loaded": counters.rows_loaded,
            "redundant_loads": counters.rows_loaded_redundant,
            "redundant_elims": counters.eliminations_redundant,
            "f_k": f_redundant_loads(k),
            "g_k": g_redundant_elims(k),
        }
    )


def test_redundancy_grows_exponentially_with_k(benchmark):
    """The quantitative argument for the cache: the naive/cached load
    ratio explodes as k grows while the cached cost stays flat."""

    def measure():
        out = {}
        n, tile = 2048, 64
        a, b, c, d = make_batch(1, n, seed=0)
        for k in (2, 3, 4, 5):
            naive = TilingCounters()
            cached = TilingCounters()
            naive_tiled_pcr_sweep(a, b, c, d, k, tile=tile, counters=naive)
            tiled_pcr_sweep(a, b, c, d, k, counters=cached)
            out[k] = naive.rows_loaded / cached.rows_loaded
        return out

    ratios = benchmark(measure)
    assert ratios[5] > ratios[2]
    assert ratios[5] > 1.5
    benchmark.extra_info.update(
        {"ablation": "tiling", "naive_over_cached_loads":
         {str(k): round(v, 3) for k, v in ratios.items()}}
    )
