"""Ablation — the Fig. 11 mapping variants.

(a) one window per system per block — zero redundancy, parallelism = M;
(b) W windows per system — ``2·f(k)`` redundant loads per boundary buys
    W× more blocks (the only way a single huge system fills the GPU);
(c) several systems' windows multiplexed per block — more latency hiding
    per block at a shared-memory occupancy cost.

Numerics are identical across variants (asserted); the tradeoffs appear
in the counters and the model.
"""

import numpy as np
import pytest

from repro.core.cost_model import f_redundant_loads
from repro.backends import reference_solver
from repro.core.tiled_pcr import TilingCounters, tiled_pcr_sweep
from repro.gpusim.device import GTX480
from repro.gpusim.occupancy import occupancy
from repro.gpusim.timing import GpuTimingModel
from repro.kernels.tiled_pcr_kernel import tiled_pcr_counters

from .conftest import make_batch, verify


@pytest.mark.parametrize("windows", [1, 4, 16])
def test_variant_b_measured(benchmark, windows):
    """One large system split across windows (Fig. 11b)."""
    n, k = 65536, 6
    a, b, c, d = make_batch(1, n, seed=windows)
    solver = reference_solver(k=k, n_windows=windows, subtile_scale=4)
    x = benchmark.pedantic(solver.solve_batch, args=(a, b, c, d), rounds=2, iterations=1)
    verify(a, b, c, d, x)
    red = solver.last_report.tiling.rows_loaded_redundant
    assert red == (windows - 1) * 2 * f_redundant_loads(k)
    benchmark.extra_info.update(
        {"ablation": "variants", "variant": "b", "windows": windows,
         "redundant_rows": red}
    )


def test_variant_b_redundancy_vs_parallelism(benchmark):
    """The Fig. 11b tradeoff curve: redundant load fraction vs windows."""

    def curve():
        n, k = 32768, 6
        a, b, c, d = make_batch(1, n, seed=0)
        out = {}
        for w in (1, 2, 4, 8, 16, 32):
            cnt = TilingCounters()
            tiled_pcr_sweep(a, b, c, d, k, n_windows=w, subtile_scale=4,
                            counters=cnt)
            out[w] = cnt.rows_loaded_redundant / n
        return out

    frac = benchmark(curve)
    assert frac[1] == 0.0
    assert all(frac[w] <= frac[2 * w] for w in (1, 2, 4, 8, 16))
    assert frac[32] < 0.15  # redundancy stays modest even at 32 windows
    benchmark.extra_info.update(
        {"ablation": "variants",
         "redundant_fraction": {str(k): round(v, 4) for k, v in frac.items()}}
    )


def test_variant_c_occupancy_tradeoff(benchmark):
    """Multiplexing windows per block (Fig. 11c): more warps per block,
    fewer blocks per SM."""

    def occ_pair():
        c1 = tiled_pcr_counters(64, 8192, 6, 8, windows_per_block=1)
        c4 = tiled_pcr_counters(64, 8192, 6, 8, windows_per_block=4)
        o1 = occupancy(GTX480, c1.threads_per_block, c1.smem_per_block)
        o4 = occupancy(GTX480, c4.threads_per_block, c4.smem_per_block)
        return o1, o4

    o1, o4 = benchmark(occ_pair)
    assert o4.blocks_per_sm < o1.blocks_per_sm
    benchmark.extra_info.update(
        {"ablation": "variants",
         "blocks_per_sm": {"wpb1": o1.blocks_per_sm, "wpb4": o4.blocks_per_sm},
         "warps_per_sm": {"wpb1": o1.warps_per_sm, "wpb4": o4.warps_per_sm}}
    )


def test_variant_b_model_helps_single_system(benchmark):
    """For M = 1 the model must prefer multiple windows (else the PCR
    stage runs on one block and exposes its whole dependent chain)."""

    def times():
        model = GpuTimingModel(GTX480)
        n, k = 1 << 20, 8
        out = {}
        for w in (1, 4, 15, 60):
            c = tiled_pcr_counters(1, n, k, 8, n_windows=w)
            out[w] = model.time(c, 8).total_s
        return out

    t = benchmark(times)
    assert t[60] < t[1]
    benchmark.extra_info.update(
        {"ablation": "variants",
         "pcr_stage_ms": {str(k): round(v * 1e3, 2) for k, v in t.items()}}
    )


def test_variants_identical_numerics(benchmark):
    def run():
        a, b, c, d = make_batch(2, 4096, seed=3)
        xs = [
            reference_solver(k=4, n_windows=w).solve_batch(a, b, c, d)
            for w in (1, 3, 8)
        ]
        return xs

    xs = benchmark.pedantic(run, rounds=1, iterations=1)
    for x in xs[1:]:
        assert np.array_equal(xs[0], x)
    benchmark.extra_info["ablation"] = "variants"
