"""Extension — numerical-accuracy study (not a paper figure).

Regenerates the accuracy tables of ``repro.analysis.accuracy``: residual
and forward error per algorithm across system size (Poisson, condition
~n²), dominance margin and precision.  Attached to ``extra_info`` so the
benchmark JSON carries the full study.
"""

import numpy as np
import pytest

from repro.analysis.accuracy import ALGORITHMS, dominance_sweep, measure, poisson_sweep
from repro.workloads.generators import random_batch


@pytest.mark.parametrize("name", list(ALGORITHMS))
def test_accuracy_measure_speed(benchmark, name):
    """Time the measurement harness itself per algorithm (includes the
    LAPACK reference solve)."""
    a, b, c, d = random_batch(8, 1024, seed=3)
    row = benchmark(measure, name, a, b, c, d)
    assert row["residual"] < 1e-13
    benchmark.extra_info.update(
        {"suite": "accuracy", "algorithm": name,
         "residual": f"{row['residual']:.2e}",
         "forward_error": f"{row['forward_error']:.2e}"}
    )


def test_accuracy_poisson_table(benchmark):
    rows = benchmark.pedantic(poisson_sweep, rounds=1, iterations=1)
    worst = max(r["residual"] for r in rows)
    assert worst < 1e-12
    benchmark.extra_info.update(
        {
            "suite": "accuracy",
            "poisson": {
                f"{r['algorithm']}@n={r['n']}": f"{r['forward_error']:.2e}"
                for r in rows
            },
        }
    )


def test_accuracy_dominance_table(benchmark):
    rows = benchmark.pedantic(dominance_sweep, rounds=1, iterations=1)
    assert all(np.isfinite(r["forward_error"]) for r in rows)
    benchmark.extra_info.update(
        {
            "suite": "accuracy",
            "dominance": {
                f"{r['algorithm']}@margin={r['margin']}": f"{r['forward_error']:.2e}"
                for r in rows
            },
        }
    )


def test_accuracy_fp32_table(benchmark):
    def sweep():
        return poisson_sweep(sizes=(256, 1024), dtype=np.float32)

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert all(r["residual"] < 1e-4 for r in rows)
    benchmark.extra_info.update(
        {
            "suite": "accuracy",
            "fp32": {
                f"{r['algorithm']}@n={r['n']}": f"{r['residual']:.2e}"
                for r in rows
            },
        }
    )
