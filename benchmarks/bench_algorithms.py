"""Supporting benchmark — the classic algorithms head to head.

Not a paper figure, but the substrate evidence behind Table II: measured
wall-clock of Thomas / CR / PCR / RD / hybrid across workload shapes,
plus the in-shared-memory baselines' behaviour (Zhang's size wall,
CR's bank-conflict model).
"""

import pytest

from repro.baselines.zhang import SharedMemoryCapacityError, ZhangSolver
from repro.core.cr import cr_solve_batch
from repro.core.pcr import pcr_solve_batch
from repro.core.rd import rd_solve_batch
from repro.core.solver import solve_batch
from repro.core.thomas import thomas_solve_batch
from repro.gpusim.device import GTX480
from repro.gpusim.timing import GpuTimingModel
from repro.kernels.cr_kernel import cr_counters

from .conftest import make_batch, verify

ALGOS = {
    "thomas": thomas_solve_batch,
    "cr": cr_solve_batch,
    "pcr": pcr_solve_batch,
    "rd": rd_solve_batch,
}


@pytest.mark.parametrize("name", list(ALGOS))
@pytest.mark.parametrize("shape", [(1024, 64), (16, 4096)], ids=["wide", "deep"])
def test_algorithm_measured(benchmark, name, shape):
    m, n = shape
    a, b, c, d = make_batch(m, n, seed=n)
    x = benchmark(ALGOS[name], a, b, c, d)
    verify(a, b, c, d, x)
    benchmark.extra_info.update({"suite": "algorithms", "algo": name, "M": m, "N": n})


@pytest.mark.parametrize("shape", [(1024, 64), (16, 4096)], ids=["wide", "deep"])
def test_hybrid_auto_measured(benchmark, shape):
    m, n = shape
    a, b, c, d = make_batch(m, n, seed=n)
    x = benchmark(solve_batch, a, b, c, d)
    verify(a, b, c, d, x)
    benchmark.extra_info.update({"suite": "algorithms", "algo": "hybrid", "M": m, "N": n})


def test_zhang_size_wall(benchmark):
    """The motivating failure: in-shared-memory hybrids cannot scale."""

    def attempt():
        a, b, c, d = make_batch(1, 4096, seed=0)
        solver = ZhangSolver()
        try:
            solver.solve_batch(a, b, c, d)
            return False
        except SharedMemoryCapacityError:
            return True

    failed = benchmark(attempt)
    assert failed
    benchmark.extra_info.update(
        {"suite": "algorithms", "zhang_capacity_fp64": ZhangSolver().capacity(8)}
    )


def test_cr_bank_conflicts_model(benchmark):
    """Göddeke & Strzodka's point, on the model: the conflict-free CR
    layout removes most shared-memory serialization."""

    def pair():
        model = GpuTimingModel(GTX480)
        naive = model.time(cr_counters(512, 1024, 8, conflict_free=False), 8)
        fixed = model.time(cr_counters(512, 1024, 8, conflict_free=True), 8)
        return naive.smem_s, fixed.smem_s

    naive_s, fixed_s = benchmark(pair)
    assert naive_s > 2 * fixed_s
    benchmark.extra_info.update(
        {"suite": "algorithms",
         "cr_smem_ms": {"naive": round(naive_s * 1e3, 3),
                        "conflict_free": round(fixed_s * 1e3, 3)}}
    )
