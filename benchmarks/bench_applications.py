#!/usr/bin/env python
"""Application-tier throughput: bound sessions vs per-call prepared loops.

The session tier exists for time-stepping applications: the implicit
matrices are fixed for the whole simulation while a fresh right-hand
side arrives every step.  This benchmark measures the paper's
motivating workloads written both ways:

* **prepared** — the pre-session idiom: one :func:`repro.prepare`
  handle per sweep direction, a naturally-written (allocating) loop
  calling ``PreparedPlan.solve`` per step;
* **sessions** — the workload simulators of
  :mod:`repro.workloads.timestepping`: one bound session per sweep
  direction, in-place right-hand-side construction, and the
  transposed-layout ``step_t`` fast path that hands each Thomas sweep
  its native ``(N, M)`` orientation (no staging transposes).

Both loops run the identical discrete scheme — the Peaceman–Rachford
identity ``(I + βx·Lx)·u* = 2·u* − d1`` included — so on the ``k = 0``
Thomas routes the final fields are **bitwise identical** and the
speedup is pure orchestration: no per-step validation, plan lookup,
trace construction, output allocation, or redundant transposes.

Cases: 2-D ADI diffusion (the headline, 1024x1024), 3-D LOD diffusion,
and IMEX Crank–Nicolson with a cubic source.  Every case also reports
accuracy against a dense ``reference_step`` on a small grid.  The
headline acceptance — sessions >= 1.3x steps/sec over the per-call
prepared loop on 2-D ADI at 1024x1024 — lands in
``BENCH_applications.json``.

Run:   python benchmarks/bench_applications.py
Smoke: python benchmarks/bench_applications.py --smoke   (headline
       shape, few steps, asserts bitwise + sessions not slower; no JSON)
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

import repro
from repro.workloads import (
    ADIDiffusion2D,
    ADIDiffusion3D,
    CrankNicolsonCubic,
    mirror_laplacian,
)
from repro.workloads.pde import adi_row_coefficients, crank_nicolson_rhs


def time_loop(fn, steps: int) -> float:
    """Seconds per step over ``steps`` calls of ``fn`` (one warmup)."""
    fn()
    t0 = time.perf_counter()
    for _ in range(steps):
        fn()
    return (time.perf_counter() - t0) / steps


def reference_error(sim_cls, shape, steps: int = 5, **kwargs) -> float:
    """Max |session − dense reference| after ``steps`` on a small grid."""
    rng = np.random.default_rng(11)
    sim = sim_cls(rng.random(shape), **kwargs)
    ref = sim.u.copy()
    for _ in range(steps):
        ref = sim.reference_step(ref)
    sim.run(steps)
    err = float(np.abs(sim.u - ref).max())
    sim.close()
    return err


def report(result: dict) -> dict:
    agree = "bitwise" if result["bitwise_identical"] else (
        "allclose" if result["allclose"] else "FAIL"
    )
    print(
        f"{result['case']:16s} {result['grid']:>14s}  "
        f"prepared {result['prepared_steps_per_sec']:7.2f} steps/s  "
        f"sessions {result['session_steps_per_sec']:7.2f} steps/s  "
        f"{result['speedup_sessions_vs_prepared']:5.2f}x  "
        f"ref {result['reference_error']:.1e}  [{agree}]"
    )
    return result


def bench_adi2d(ny: int, nx: int, steps: int, alpha=0.2, dt=0.8) -> dict:
    rng = np.random.default_rng(3)
    u0 = rng.random((ny, nx))
    beta = alpha * dt / 2.0

    # prepared baseline: handles once, per-call PreparedPlan.solve loop
    ax, bx, cx = adi_row_coefficients(ny, nx, beta)
    ay, by, cy = adi_row_coefficients(nx, ny, beta)
    row = repro.prepare(ax, bx, cx)
    col = repro.prepare(ay, by, cy)

    def prepared_step(u):
        d1 = u + beta * mirror_laplacian(u, axis=0)
        ustar = row.solve(d1)
        d2 = 2.0 * ustar - d1
        return col.solve(np.ascontiguousarray(d2.T)).T.copy()

    sim = ADIDiffusion2D(u0, alpha, dt)

    # correctness first: both loops from the same state
    u_pre = u0.copy()
    for _ in range(3):
        u_pre = prepared_step(u_pre)
    sim.run(3)
    bitwise = bool(np.array_equal(sim.u, u_pre))
    close = bitwise or bool(np.allclose(sim.u, u_pre, rtol=1e-9, atol=1e-12))

    state = {"u": u0.copy()}

    def run_prepared():
        state["u"] = prepared_step(state["u"])

    t_pre = time_loop(run_prepared, steps)
    t_ses = time_loop(sim.step, steps)
    k_row = sim._row.describe().get("k")
    sim.close()

    return report({
        "case": "adi-2d",
        "grid": f"{ny}x{nx}",
        "steps": steps,
        "k": k_row,
        "prepared_s_per_step": t_pre,
        "session_s_per_step": t_ses,
        "prepared_steps_per_sec": 1.0 / t_pre,
        "session_steps_per_sec": 1.0 / t_ses,
        "speedup_sessions_vs_prepared": t_pre / t_ses,
        "bitwise_identical": bitwise,
        "allclose": close,
        "reference_error": reference_error(
            ADIDiffusion2D, (48, 40), alpha=alpha, dt=dt
        ),
    })


def bench_adi3d(nz: int, ny: int, nx: int, steps: int, alpha=0.2, dt=0.5) -> dict:
    rng = np.random.default_rng(5)
    u0 = rng.random((nz, ny, nx))
    beta = alpha * dt / 2.0

    handles = [
        repro.prepare(*adi_row_coefficients(nz * ny, nx, beta)),
        repro.prepare(*adi_row_coefficients(nz * nx, ny, beta)),
        repro.prepare(*adi_row_coefficients(ny * nx, nz, beta)),
    ]

    def sweep(handle, v):
        d = v + beta * mirror_laplacian(v)
        shape = v.shape
        return handle.solve(
            d.reshape(shape[0] * shape[1], shape[2])
        ).reshape(shape)

    def prepared_step(u):
        u = sweep(handles[0], u)
        ut = np.ascontiguousarray(u.transpose(0, 2, 1))
        ut = sweep(handles[1], ut)
        u = ut.transpose(0, 2, 1)
        ut = np.ascontiguousarray(u.transpose(1, 2, 0))
        ut = sweep(handles[2], ut)
        return np.ascontiguousarray(ut.transpose(2, 0, 1))

    sim = ADIDiffusion3D(u0, alpha, dt)
    u_pre = u0.copy()
    for _ in range(2):
        u_pre = prepared_step(u_pre)
    sim.run(2)
    bitwise = bool(np.array_equal(sim.u, u_pre))
    close = bitwise or bool(np.allclose(sim.u, u_pre, rtol=1e-9, atol=1e-12))

    state = {"u": u0.copy()}

    def run_prepared():
        state["u"] = prepared_step(state["u"])

    t_pre = time_loop(run_prepared, steps)
    t_ses = time_loop(sim.step, steps)
    sim.close()

    return report({
        "case": "adi-3d",
        "grid": f"{nz}x{ny}x{nx}",
        "steps": steps,
        "prepared_s_per_step": t_pre,
        "session_s_per_step": t_ses,
        "prepared_steps_per_sec": 1.0 / t_pre,
        "session_steps_per_sec": 1.0 / t_ses,
        "speedup_sessions_vs_prepared": t_pre / t_ses,
        "bitwise_identical": bitwise,
        "allclose": close,
        "reference_error": reference_error(
            ADIDiffusion3D, (7, 9, 11), alpha=alpha, dt=dt
        ),
    })


def bench_cn_cubic(m: int, n: int, steps: int, alpha=0.1, dt=0.02) -> dict:
    rng = np.random.default_rng(7)
    u0 = 0.4 * rng.standard_normal((m, n))
    eps = gamma = 1.0

    from repro.workloads.pde import crank_nicolson_coefficients

    a, b, c = crank_nicolson_coefficients(m, n, alpha, dt, 1.0)
    handle = repro.prepare(a, b, c)

    def prepared_step(u):
        d = crank_nicolson_rhs(u, alpha, dt, 1.0)
        react = u * u * u
        react *= -gamma
        react += eps * u
        react *= dt
        d[:, 1:-1] += react[:, 1:-1]
        return handle.solve(d)

    sim = CrankNicolsonCubic(u0, alpha, dt, eps=eps, gamma=gamma)
    u_pre = u0.copy()
    for _ in range(3):
        u_pre = prepared_step(u_pre)
    sim.run(3)
    bitwise = bool(np.array_equal(sim.u, u_pre))
    close = bitwise or bool(np.allclose(sim.u, u_pre, rtol=1e-9, atol=1e-12))

    state = {"u": u0.copy()}

    def run_prepared():
        state["u"] = prepared_step(state["u"])

    t_pre = time_loop(run_prepared, steps)
    t_ses = time_loop(sim.step, steps)
    sim.close()

    return report({
        "case": "cn-cubic",
        "grid": f"{m}x{n}",
        "steps": steps,
        "prepared_s_per_step": t_pre,
        "session_s_per_step": t_ses,
        "prepared_steps_per_sec": 1.0 / t_pre,
        "session_steps_per_sec": 1.0 / t_ses,
        "speedup_sessions_vs_prepared": t_pre / t_ses,
        "bitwise_identical": bitwise,
        "allclose": close,
        "reference_error": reference_error(
            CrankNicolsonCubic, (6, 64), alpha=alpha, dt=dt
        ),
    })


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="headline shape, few steps, assert correctness + speed, no JSON",
    )
    parser.add_argument(
        "--out",
        default=str(
            Path(__file__).resolve().parent.parent / "BENCH_applications.json"
        ),
        help="output JSON path (ignored with --smoke)",
    )
    args = parser.parse_args()

    if args.smoke:
        res = bench_adi2d(1024, 1024, steps=3)
        assert res["bitwise_identical"], (
            f"session ADI must be bitwise identical to the prepared loop: {res}"
        )
        assert res["reference_error"] < 1e-10, (
            f"session ADI diverged from the dense reference: {res}"
        )
        assert res["speedup_sessions_vs_prepared"] >= 1.05, (
            f"sessions not faster than the per-call prepared loop: {res}"
        )
        print("smoke OK: sessions faster than prepared, bitwise, reference agrees")
        return

    results = [
        # the acceptance case: the paper's ADI workload at 1024x1024 —
        # k = 0 Thomas sweeps, transposed-layout sessions, bitwise
        bench_adi2d(1024, 1024, steps=12),
        bench_adi3d(96, 96, 96, steps=6),
        bench_cn_cubic(4096, 512, steps=20),
    ]

    headline = results[0]
    payload = {
        "benchmark": "bench_applications",
        "description": (
            "time-stepping applications written as per-call "
            "PreparedPlan.solve loops vs bound-session simulators "
            "(in-place RHS construction, transposed-layout step_t); "
            "steps per second and accuracy vs dense references"
        ),
        "acceptance": {
            "target": (
                "sessions >= 1.3x steps/sec over the per-call prepared "
                "loop on 2-D ADI at 1024x1024, bitwise identical"
            ),
            "speedup_sessions_vs_prepared": headline[
                "speedup_sessions_vs_prepared"
            ],
            "bitwise_identical": headline["bitwise_identical"],
            "met": (
                headline["speedup_sessions_vs_prepared"] >= 1.3
                and headline["bitwise_identical"]
            ),
        },
        "results": results,
    }
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {out}")
    if not payload["acceptance"]["met"]:
        raise SystemExit(
            "acceptance target missed: sessions < 1.3x over the per-call "
            "prepared loop or not bitwise"
        )
    print(
        f"acceptance met: session-driven ADI is "
        f"{headline['speedup_sessions_vs_prepared']:.2f}x over the "
        f"per-call prepared loop"
    )


if __name__ == "__main__":
    main()
