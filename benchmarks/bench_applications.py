"""Extension — application throughput (the paper's motivating workloads).

End-to-end wall-clock of the cited applications, each dominated by
batched tridiagonal solves: Crank–Nicolson heat stepping, ADI scalar
diffusion, Hockney's fast Poisson solver (ref [6]), cubic-spline
fitting (ref [8]), and cyclic systems.  Each benchmark validates its
physics/algebra before timing.
"""

import numpy as np
import pytest

import repro
from repro.core.factorize import HybridFactorization
from repro.core.periodic import solve_periodic_batch
from repro.workloads.fluid import FluidSim
from repro.workloads.pde import crank_nicolson_system, cubic_spline_system
from repro.workloads.poisson_fft import poisson_dirichlet_fft, poisson_residual


def test_app_crank_nicolson_step(benchmark):
    m, n = 256, 512
    xg = np.linspace(0, 1, n)
    u = np.sin(np.pi * xg)[None, :] * np.ones((m, 1))
    alpha, dt, dx = 0.1, 1e-4, 1.0 / (n - 1)

    def step():
        a, b, c, d = crank_nicolson_system(u, alpha, dt, dx)
        return repro.solve_batch(a, b, c, d)

    out = benchmark(step)
    assert np.all(np.isfinite(out))
    benchmark.extra_info.update({"suite": "applications", "app": "crank-nicolson"})


def test_app_crank_nicolson_factored_step(benchmark):
    """The factor-once path: per-step cost drops to two RHS sweeps."""
    m, n = 256, 512
    xg = np.linspace(0, 1, n)
    u = np.sin(np.pi * xg)[None, :] * np.ones((m, 1))
    alpha, dt, dx = 0.1, 1e-4, 1.0 / (n - 1)
    a, b, c, _ = crank_nicolson_system(u, alpha, dt, dx)
    fact = HybridFactorization.factor(a, b, c, k=0)

    def step():
        _, _, _, d = crank_nicolson_system(u, alpha, dt, dx)
        return fact.solve(d)

    out = benchmark(step)
    assert np.all(np.isfinite(out))
    benchmark.extra_info.update(
        {"suite": "applications", "app": "crank-nicolson (factored)"}
    )


def test_app_fluid_frame(benchmark):
    ny = nx = 128
    u, v = FluidSim.vortex(ny, nx, strength=0.02)
    sim = FluidSim(u=u, v=v, alpha=1e-3, dt=1.0)
    q0 = np.zeros((ny, nx))
    q0[56:72, 56:72] = 1.0

    q1 = benchmark(sim.step, q0)
    assert q1.min() >= -1e-9
    benchmark.extra_info.update({"suite": "applications", "app": "fluid frame"})


def test_app_fast_poisson(benchmark):
    rng = np.random.default_rng(0)
    f = rng.standard_normal((127, 127))

    u = benchmark(poisson_dirichlet_fft, f)
    assert poisson_residual(u, f) < 1e-9
    benchmark.extra_info.update({"suite": "applications", "app": "hockney poisson"})


def test_app_spline_fit(benchmark):
    n, m = 128, 512
    x = np.linspace(0, 2 * np.pi, n)
    y = np.sin(np.linspace(0.5, 3, m))[:, None] * np.sin(x)[None, :]
    a, b, c, d = cubic_spline_system(x, y)

    m2 = benchmark(repro.solve_batch, a, b, c, d)
    assert np.all(np.isfinite(m2))
    benchmark.extra_info.update({"suite": "applications", "app": "cubic splines"})


def test_app_cyclic_batch(benchmark):
    rng = np.random.default_rng(1)
    m, n = 128, 256
    a = rng.standard_normal((m, n))
    c = rng.standard_normal((m, n))
    b = 4.0 + np.abs(a) + np.abs(c)
    d = rng.standard_normal((m, n))

    x = benchmark(solve_periodic_batch, a, b, c, d)
    # verify one system against the dense cyclic matrix
    A = np.zeros((n, n))
    A[np.arange(n), np.arange(n)] = b[0]
    A[np.arange(1, n), np.arange(n - 1)] = a[0, 1:]
    A[np.arange(n - 1), np.arange(1, n)] = c[0, :-1]
    A[0, -1] = a[0, 0]
    A[-1, 0] = c[0, -1]
    assert np.allclose(A @ x[0], d[0], atol=1e-8)
    benchmark.extra_info.update({"suite": "applications", "app": "cyclic systems"})
