#!/usr/bin/env python
"""Adaptive router vs static Table-III heuristic benchmark.

The experiment the autotune subsystem exists for: does measured
calibration actually route better than the shipped static table on
*this* host?

Protocol, per swept ``(M, N)`` cell:

1. **calibrate** — :func:`repro.autotune.calibrate` measures every
   candidate route (backend x candidate k x workers x licensed
   fingerprint tier) with interleaved rounds, filling a
   :class:`~repro.autotune.PerformanceModel`;
2. **measure** — the *same* public dispatch (``solve_via``) runs under
   the static :class:`~repro.backends.registry.Router` and under an
   :class:`~repro.autotune.AdaptiveRouter` (``epsilon=0``, pure
   exploitation) in paired-warmup interleaved rotation: per iteration
   each variant runs once untimed then once timed; the headline ratio
   is best-vs-best (min over iterations — each variant's
   least-interrupted run), with the median paired ratio recorded too;
3. **score** — a cell is *matched* when adaptive is within
   ``MATCH_TOLERANCE`` of static; a *strict win* additionally needs
   the adaptive route to differ from the static one (same route would
   just be timer noise agreeing with itself).

Acceptance (full mode): adaptive matches-or-beats static on >= 90% of
cells AND strictly wins >= 1 cell with a differing route.  The model
save -> load -> save round-trip must be bitwise.  Results land in
``BENCH_autotune.json``.

Run:   python benchmarks/bench_autotune.py
Smoke: python benchmarks/bench_autotune.py --smoke   (two small cells,
       fewer rounds; still writes JSON and checks the round-trip, but
       perf acceptance is reported without failing the run)
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.autotune import (
    AdaptiveRouter,
    PerformanceModel,
    calibrate,
    cell_key,
)
from repro.autotune.calibrate import calibration_batch
from repro.backends.registry import Router, default_registry, solve_via

#: adaptive may lose this much to static and still count as "matched"
MATCH_TOLERANCE = 1.10
#: a strict win must clear this margin (and use a different route)
WIN_MARGIN = 0.95

#: full sweep: both Table-III regimes plus the boundary region where a
#: mistuned static table costs the most
FULL_SHAPES = (
    (8, 1024),
    (32, 1024),
    (128, 1024),
    (512, 512),
    (1024, 1024),
)
SMOKE_SHAPES = ((8, 256), (64, 256))

#: accuracy contract carried by every request: licenses factorization
#: reuse on hybrid plans for both routers alike (the comparison is
#: about *choice*, so both sides get the same contracts)
RTOL = 1e-9


def _route_of(trace) -> dict:
    """The comparable route a dispatch actually ran."""
    decision = trace.decision
    applied = dict(decision.route) if decision is not None else {}
    return {
        "backend": trace.backend,
        "k": int(trace.k),
        "workers": int(trace.workers),
        "fingerprint": applied.get("fingerprint", "auto"),
    }


def bench_cell(m, n, model, registry, iters, dtype="float64"):
    """Static vs adaptive on one cell; returns the result record."""
    a, b, c, d = calibration_batch(m, n, dtype)
    static_router = Router()
    adaptive_router = AdaptiveRouter(model, epsilon=0.0)

    def run(router):
        registry.router = router
        return solve_via(a, b, c, d, rtol=RTOL, coerced=True,
                         registry=registry)

    # identify each policy's chosen route (and warm caches/plans)
    _, trace_static = run(static_router)
    _, trace_adaptive = run(adaptive_router)
    route_static = _route_of(trace_static)
    route_adaptive = _route_of(trace_adaptive)

    ratios = []
    times = {"static": [], "adaptive": []}
    try:
        for _ in range(iters):
            pair = {}
            for name, router in (("static", static_router),
                                 ("adaptive", adaptive_router)):
                run(router)  # untimed pair-warmup
                t0 = time.perf_counter()
                run(router)
                pair[name] = time.perf_counter() - t0
                times[name].append(pair[name])
            ratios.append(pair["static"] / pair["adaptive"])
    finally:
        registry.router = Router()

    static_min = float(np.min(times["static"]))
    adaptive_min = float(np.min(times["adaptive"]))
    # best-vs-best: each variant's least-interrupted run.  The median
    # paired ratio is recorded too, but at sub-millisecond solves it
    # absorbs scheduler interference that min shrugs off.
    speedup = static_min / adaptive_min
    differs = route_static != route_adaptive
    matched = speedup >= 1.0 / MATCH_TOLERANCE
    strict_win = differs and speedup > 1.0 / WIN_MARGIN
    result = {
        "cell": cell_key(m, n, dtype, False),
        "m": m,
        "n": n,
        "dtype": dtype,
        "iters": iters,
        "static_s_min": static_min,
        "adaptive_s_min": adaptive_min,
        "speedup_adaptive_vs_static": speedup,
        "median_paired_ratio": float(np.median(ratios)),
        "route_static": route_static,
        "route_adaptive": route_adaptive,
        "route_differs": differs,
        "matched": matched,
        "strict_win": strict_win,
    }
    print(
        f"M={m:5d} N={n:5d}  static {result['static_s_min'] * 1e3:8.3f} ms  "
        f"adaptive {result['adaptive_s_min'] * 1e3:8.3f} ms  "
        f"x{speedup:5.2f}  "
        f"route {'differs' if differs else 'same   '}  "
        f"{'WIN' if strict_win else ('ok' if matched else 'MISS')}"
    )
    return result


def roundtrip_bitwise(model, directory: Path) -> bool:
    """save -> load -> save must reproduce the bytes exactly."""
    p1 = directory / "model_a.json"
    p2 = directory / "model_b.json"
    try:
        model.save(p1)
        PerformanceModel.load(p1).save(p2)
        return p1.read_bytes() == p2.read_bytes()
    finally:
        for p in (p1, p2):
            p.unlink(missing_ok=True)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="two small cells, fewer rounds; reports acceptance "
        "without failing on perf",
    )
    parser.add_argument(
        "--out",
        default=str(
            Path(__file__).resolve().parent.parent / "BENCH_autotune.json"
        ),
        help="output JSON path",
    )
    args = parser.parse_args()

    shapes = SMOKE_SHAPES if args.smoke else FULL_SHAPES
    repeats = 3 if args.smoke else 4
    iters = 5 if args.smoke else 15

    registry = default_registry()
    model = PerformanceModel()
    print("== calibration ==")
    # warmup_rounds must stay >= 2: the auto fingerprint tier needs two
    # sightings plus one factorization before its steady state, and
    # steady-state cost is what routing decides on
    calibrate(
        shapes, model=model, repeats=repeats, warmup_rounds=2,
        rtol=RTOL, registry=registry, progress=print,
    )

    print("== measurement (paired-warmup interleaved) ==")
    results = [
        bench_cell(m, n, model, registry, iters) for m, n in shapes
    ]

    out = Path(args.out)
    bitwise = roundtrip_bitwise(model, out.parent)
    matched = sum(r["matched"] for r in results)
    wins = sum(r["strict_win"] for r in results)
    matched_fraction = matched / len(results)
    acceptance = {
        "target": (
            "adaptive matches-or-beats static (within "
            f"{MATCH_TOLERANCE:.2f}x) on >= 90% of cells, strictly "
            "wins >= 1 cell with a differing route, model round-trips "
            "bitwise"
        ),
        "matched_cells": matched,
        "total_cells": len(results),
        "matched_fraction": matched_fraction,
        "strict_wins": wins,
        "model_roundtrip_bitwise": bitwise,
        "met": bool(
            matched_fraction >= 0.9 and wins >= 1 and bitwise
        ),
    }
    payload = {
        "benchmark": "bench_autotune",
        "description": (
            "static Table-III router vs trace-calibrated AdaptiveRouter "
            "(epsilon=0) through the same registry dispatch; "
            "paired-warmup interleaved timing, best-vs-best ratio "
            "(median paired ratio also recorded)"
        ),
        "mode": "smoke" if args.smoke else "full",
        "rtol": RTOL,
        "acceptance": acceptance,
        "results": results,
    }
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {out}")
    print(
        f"matched {matched}/{len(results)} cells, {wins} strict win(s), "
        f"round-trip bitwise: {bitwise}"
    )

    # structural invariants hold in every mode
    assert bitwise, "model persistence round-trip is not bitwise"
    if args.smoke:
        print("smoke OK")
        return
    if not acceptance["met"]:
        raise SystemExit(
            "acceptance target missed: "
            f"{matched}/{len(results)} matched, {wins} strict wins"
        )
    print("acceptance met")


if __name__ == "__main__":
    main()
