#!/usr/bin/env python
"""Banded-system benchmark: penta prepared-vs-cold, block-Thomas vs dense.

The descriptor-carrying spine dispatches pentadiagonal and
block-tridiagonal batches through the same plan/factorization caches
as tridiagonal ones.  This benchmark measures the two wins that
machinery buys:

* **penta prepared vs cold** — a hyperdiffusion-style time-stepping
  loop solves one fixed pentadiagonal matrix against a fresh RHS every
  step.  Cold (``fingerprint=False``) re-eliminates the five diagonals
  each call; prepared (``fingerprint=True``) serves the stored LU's
  RHS-only sweep.  The sweep divides by the stored denominators in the
  same order as the cold elimination, so prepared results are
  **bitwise identical**.
* **block-Thomas vs dense** — the structured ``O(N·B³)`` block
  elimination against assembling the full ``(N·B) × (N·B)`` matrix and
  calling stacked ``np.linalg.solve`` (the dense oracle the numpy
  backend uses), same systems, same dtype.

The headline case (penta, M = 1024, N = 1024, 50 steps) is expected to
show prepared at least 1.5x over cold; results land in
``BENCH_bandwidth.json``.

Run:   python benchmarks/bench_bandwidth.py
Smoke: python benchmarks/bench_bandwidth.py --smoke   (small, asserts
       correctness + prepared not slower than cold; no JSON)
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.backends import solve_via
from repro.core.blocktridiag import block_thomas_solve_batch, block_to_dense
from repro.workloads.generators import random_block_batch, random_penta_batch


def time_loop(fn, rhs_list) -> float:
    """Seconds per step over one pass of ``rhs_list``."""
    t0 = time.perf_counter()
    for d in rhs_list:
        fn(d)
    return (time.perf_counter() - t0) / len(rhs_list)


def bench_penta(name: str, m: int, n: int, steps: int) -> dict:
    """One fixed penta matrix, ``steps`` fresh right-hand sides."""
    e, a, b, c, f, _ = random_penta_batch(m, n, seed=m + n)
    rng = np.random.default_rng(m ^ n)
    rhs = [rng.standard_normal((m, n)) for _ in range(steps)]

    def run_cold(d):
        x, _ = solve_via(
            a, b, c, d, e=e, f=f,
            backend="engine", check=False, fingerprint=False,
        )
        return x

    def run_prepared(d):
        x, _ = solve_via(
            a, b, c, d, e=e, f=f,
            backend="engine", check=False, fingerprint=True,
        )
        return x

    # correctness first: the RHS-only sweep must be bitwise identical
    # to the cold factor+sweep on every step
    run_prepared(rhs[0])  # prime the factorization cache before timing
    bitwise = all(
        np.array_equal(run_cold(d), run_prepared(d)) for d in rhs
    )

    t_cold = time_loop(run_cold, rhs)
    t_pre = time_loop(run_prepared, rhs)
    result = {
        "case": name,
        "system": "pentadiagonal",
        "m": m,
        "n": n,
        "steps": steps,
        "cold_s_per_step": t_cold,
        "prepared_s_per_step": t_pre,
        "speedup_prepared_vs_cold": t_cold / t_pre,
        "bitwise_identical": bitwise,
    }
    print(
        f"{name:24s} M={m:5d} N={n:5d}        "
        f"cold {t_cold * 1e3:8.3f} ms  prep {t_pre * 1e3:8.3f} ms  "
        f"prep/cold {result['speedup_prepared_vs_cold']:5.2f}x  "
        f"[{'bitwise' if bitwise else 'FAIL'}]"
    )
    return result


def bench_block(name: str, m: int, n: int, bs: int, steps: int) -> dict:
    """Block-Thomas against the dense stacked-solve oracle."""
    A, B, C, _ = random_block_batch(m, n, block_size=bs, seed=m + n)
    rng = np.random.default_rng(m ^ n ^ bs)
    rhs = [rng.standard_normal((m, n, bs)) for _ in range(steps)]
    dense = block_to_dense(A, B, C)

    def run_block(d):
        return block_thomas_solve_batch(A, B, C, d, check=False)

    def run_dense(d):
        return np.linalg.solve(dense, d.reshape(m, -1)[..., None])[
            ..., 0
        ].reshape(m, n, bs)

    err = max(
        float(np.abs(run_block(d) - run_dense(d)).max()) for d in rhs
    )
    t_block = time_loop(run_block, rhs)
    t_dense = time_loop(run_dense, rhs)
    result = {
        "case": name,
        "system": f"block{bs}",
        "m": m,
        "n": n,
        "block_size": bs,
        "steps": steps,
        "block_thomas_s_per_step": t_block,
        "dense_solve_s_per_step": t_dense,
        "speedup_block_vs_dense": t_dense / t_block,
        "max_abs_diff_vs_dense": err,
    }
    print(
        f"{name:24s} M={m:5d} N={n:5d} B={bs}    "
        f"block {t_block * 1e3:8.3f} ms  dense {t_dense * 1e3:8.3f} ms  "
        f"block/dense {result['speedup_block_vs_dense']:5.2f}x  "
        f"[err {err:.2e}]"
    )
    return result


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small problems, few steps, assert correctness, no JSON",
    )
    parser.add_argument(
        "--out",
        default=str(
            Path(__file__).resolve().parent.parent / "BENCH_bandwidth.json"
        ),
        help="output JSON path (ignored with --smoke)",
    )
    args = parser.parse_args()

    if args.smoke:
        res = bench_penta("smoke-penta", 256, 64, steps=5)
        resb = bench_block("smoke-block", 32, 32, bs=3, steps=5)
        assert res["bitwise_identical"], (
            f"penta prepared path must be bitwise identical: {res}"
        )
        assert res["prepared_s_per_step"] <= res["cold_s_per_step"] * 1.10, (
            f"penta prepared slower than cold: {res}"
        )
        assert resb["max_abs_diff_vs_dense"] < 1e-10, (
            f"block-Thomas diverged from the dense oracle: {resb}"
        )
        print("smoke OK: prepared <= cold, numerics agree")
        return

    results = [
        # the acceptance case: hyperdiffusion-shaped time stepping
        bench_penta("large-M penta", 1024, 1024, steps=50),
        bench_penta("mid-M penta", 128, 1024, steps=20),
        bench_block("block vs dense B=4", 64, 128, bs=4, steps=10),
        bench_block("block vs dense B=2", 256, 256, bs=2, steps=10),
    ]

    headline = results[0]
    payload = {
        "benchmark": "bench_bandwidth",
        "description": (
            "banded-system spine: pentadiagonal prepared (stored LU, "
            "RHS-only sweep) vs cold (re-eliminate every step), and "
            "block-Thomas vs dense stacked np.linalg.solve; seconds "
            "per time step"
        ),
        "acceptance": {
            "target": (
                "penta prepared >= 1.5x over cold at M=1024 N=1024 x50, "
                "bitwise identical"
            ),
            "speedup_prepared_vs_cold": headline["speedup_prepared_vs_cold"],
            "bitwise_identical": headline["bitwise_identical"],
            "met": (
                headline["speedup_prepared_vs_cold"] >= 1.5
                and headline["bitwise_identical"]
            ),
        },
        "results": results,
    }
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {out}")
    if not payload["acceptance"]["met"]:
        raise SystemExit(
            "acceptance target missed: penta prepared < 1.5x over cold "
            "or not bitwise"
        )
    print(
        f"acceptance met: penta prepared RHS-only path is "
        f"{headline['speedup_prepared_vs_cold']:.2f}x over "
        f"re-eliminating every step"
    )


if __name__ == "__main__":
    main()
