#!/usr/bin/env python
"""Distributed N-partition benchmark: crossover and correctness.

The distributed backend splits one huge-``N`` system batch across ``P``
ranks; each rank eliminates its slab with the two-sweep modified Thomas
algorithm (17 values moved per slab row vs the 9 of a monolithic
Thomas sweep), and the ranks meet only at the ``2P``-row reduced
interface system.  Per-device traffic is therefore ``17·N/P`` values
against the baseline's ``9·N``, while the interface exchange is
``O(M)`` — constant in ``N`` — so a crossover system size exists
beyond which partitioning wins.

This benchmark locates that crossover **on the device model** (the
:mod:`repro.kernels.comm_kernel` ledgers: ``P`` concurrent devices, a
latency/bandwidth interconnect) and verifies correctness of the real
multiprocess backend on this host:

* **crossover** — for P in {2, 4}, sweep N and record the first size
  where the predicted distributed time beats the predicted single-
  device solve.  Gated: both crossovers must exist within the sweep.
* **correctness** — gated: the multiprocess backend's results are
  bitwise identical to the in-process partition reference at every
  tested P, and elementwise close (1e-10) to the engine's ``k = 0``
  solve.
* **measured** — host wall-clock of the multiprocess backend vs the
  engine, recorded for context but **not** gated: a one/few-core CI
  host serializes the "parallel" ranks, so measured speedups say
  nothing about the P-device deployment the model prices.

Results land in ``BENCH_distributed.json``.

Run:   python benchmarks/bench_distributed.py
Smoke: python benchmarks/bench_distributed.py --smoke   (correctness
       only, writes no JSON)
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

import numpy as np

import repro
from repro.distributed import partitioned_solve_reference, shutdown_pools
from repro.gpusim.timing import GpuTimingModel
from repro.gpusim.device import GTX480
from repro.kernels.comm_kernel import distributed_plan
from repro.kernels.pthomas_kernel import pthomas_counters

M = 64  # systems per batch for the crossover sweep
RANKS = (2, 4)
SWEEP_N = (16, 24, 32, 48, 64, 96, 128, 192, 256, 512, 1024, 4096)


def predicted_crossover(m: int, ranks: int, dtype_bytes: int = 8) -> dict:
    """First N in the sweep where the P-rank plan beats one device."""
    model = GpuTimingModel(GTX480)
    points = []
    crossover_n = None
    for n in SWEEP_N:
        if n < 2 * ranks:
            continue
        base_us = (
            model.time(pthomas_counters(m, n, dtype_bytes), dtype_bytes)
            .total_s * 1e6
        )
        dist_us = sum(
            us for _, us in distributed_plan(m, n, ranks, dtype_bytes)
        )
        points.append({
            "n": n,
            "baseline_us": base_us,
            "distributed_us": dist_us,
            "speedup": base_us / dist_us,
        })
        if crossover_n is None and dist_us < base_us:
            crossover_n = n
    return {"ranks": ranks, "crossover_n": crossover_n, "sweep": points}


def correctness(n: int, m: int = 4) -> dict:
    """Bitwise vs the partition reference, elementwise vs the engine."""
    from repro.workloads.generators import huge_system_batch

    a, b, c, d = huge_system_batch(n, m=m, seed=42)
    engine_ref = repro.solve_batch(a, b, c, d, backend="engine", k=0)
    results = []
    for p in (1,) + RANKS:
        x = repro.solve_batch(a, b, c, d, backend="distributed", ranks=p)
        ref = (
            engine_ref if p == 1
            else partitioned_solve_reference(a, b, c, d, p)
        )
        results.append({
            "ranks": p,
            "bitwise_vs_reference": bool(np.array_equal(x, ref)),
            "max_abs_err_vs_engine": float(np.max(np.abs(x - engine_ref))),
        })
    ok = all(
        r["bitwise_vs_reference"] and r["max_abs_err_vs_engine"] < 1e-10
        for r in results
    )
    return {"n": n, "m": m, "results": results, "ok": ok}


def measured_wallclock(n: int, m: int = 4, repeats: int = 3) -> dict:
    """Host wall-clock, context only (a 1-core host serializes ranks)."""
    from repro.workloads.generators import huge_system_batch

    a, b, c, d = huge_system_batch(n, m=m, seed=7)
    rows = {}

    def best_of(fn):
        times = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            times.append(time.perf_counter() - t0)
        return min(times)

    rows["engine_k0_s"] = best_of(
        lambda: repro.solve_batch(a, b, c, d, backend="engine", k=0)
    )
    for p in RANKS:
        rows[f"distributed_p{p}_s"] = best_of(
            lambda p=p: repro.solve_batch(
                a, b, c, d, backend="distributed", ranks=p
            )
        )
    rows["host_cpus"] = os.cpu_count() or 1
    return {"n": n, "m": m, **rows}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="correctness only, small shapes, no JSON",
    )
    parser.add_argument(
        "--out", type=Path,
        default=(
            Path(__file__).resolve().parent.parent
            / "BENCH_distributed.json"
        ),
        help="output JSON path (ignored with --smoke)",
    )
    args = parser.parse_args()

    if args.smoke:
        report = correctness(257)
        shutdown_pools()
        if not report["ok"]:
            raise SystemExit(f"smoke correctness failed: {report}")
        print("smoke: distributed correctness ok "
              f"(N={report['n']}, ranks 1/{'/'.join(map(str, RANKS))})")
        return

    crossovers = [predicted_crossover(M, p) for p in RANKS]
    corr = correctness(4097)
    wall = measured_wallclock(65536)
    shutdown_pools()

    crossover_met = all(c["crossover_n"] is not None for c in crossovers)
    payload = {
        "benchmark": "distributed N-partition backend",
        "device_model": GTX480.name,
        "crossover": crossovers,
        "correctness": corr,
        "measured_host_wallclock": {
            **wall,
            "note": (
                "context only, not gated: multiprocess ranks serialize "
                "on a small host; the deployment target is P devices"
            ),
        },
        "acceptance": {
            "target": (
                "a crossover N exists for every tested P (device model) "
                "and distributed results are bitwise identical to the "
                "partition reference, <= 1e-10 vs the engine at k=0"
            ),
            "crossover_n": {
                str(c["ranks"]): c["crossover_n"] for c in crossovers
            },
            "correctness_ok": corr["ok"],
            "met": bool(crossover_met and corr["ok"]),
        },
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    if not payload["acceptance"]["met"]:
        raise SystemExit(f"acceptance missed: {payload['acceptance']}")
    summary = ", ".join(
        f"P={c['ranks']}: N>={c['crossover_n']}" for c in crossovers
    )
    print(f"acceptance met: crossover {summary}; correctness ok")


if __name__ == "__main__":
    main()
