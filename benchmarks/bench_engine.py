#!/usr/bin/env python
"""Cold vs warm solve-plan engine benchmark.

Measures three ways of running the same repeated batch solve:

* **seed** — the pre-engine public path: validate + build a
  :class:`HybridSolver`, recompute the transition and reallocate every
  buffer on each call (what ``repro.solve_batch`` did before the
  engine existed);
* **cold** — the engine with its plan cache cleared before every call:
  each solve re-plans and re-allocates workspaces;
* **warm** — the steady state: cached plan, pooled workspaces; each
  solve allocates only its result.

All three produce bitwise-identical solutions (verified here).

Timing uses **paired-warmup interleaved** measurement: per iteration
every variant runs twice back to back — once untimed (absorbing CPU
frequency drift and whatever cache state the previous variant left
behind) and once timed — and the headline figure is the minimum over
iterations (the least-interrupted run; the median is recorded too).
A sequential design (all seed iterations, then all cold, then all
warm) hands whichever variant runs last the thermally throttled clock
and calls it a regression; interleaving spreads drift evenly and the
min shrugs off scheduler spikes.

The headline case (M = 1024, N = 1024, 50 iterations — the paper's
large-M regime where the hybrid runs pure Thomas) is expected to show
``warm`` at least 2x faster than ``seed``; results land in
``BENCH_engine.json``.

Run:   python benchmarks/bench_engine.py
Smoke: python benchmarks/bench_engine.py --smoke   (few iterations,
       asserts warm is not slower than seed or cold on every case;
       writes no JSON)
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

from repro.backends import reference_solver
from repro.core.validation import check_batch_arrays
from repro.engine import ExecutionEngine

#: warm may lose this much to seed/cold before smoke calls it a
#: regression — pure timer/scheduler noise allowance on small cases
SMOKE_TOLERANCE = 1.10


def make_batch(m: int, n: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, n))
    c = rng.standard_normal((m, n))
    a[:, 0] = 0.0
    c[:, -1] = 0.0
    b = 4.0 + np.abs(a) + np.abs(c)
    d = rng.standard_normal((m, n))
    return a, b, c, d


def seed_solve(a, b, c, d, **kwargs):
    """The pre-engine ``repro.solve_batch`` path, reproduced verbatim."""
    a, b, c, d = check_batch_arrays(a, b, c, d)
    return reference_solver(**kwargs).solve_batch(a, b, c, d, check=False)


def time_interleaved(variants, iters: int) -> dict:
    """Paired-warmup interleaved timing: ``name -> median s/call``.

    ``variants`` is an ordered list of ``(name, fn)``.  Per iteration,
    each variant runs once untimed then once timed, in round-robin
    order — so every timed call starts from the same freshly-warmed
    state and slow clock drift lands on all variants alike.
    """
    times = {name: [] for name, _ in variants}
    for _ in range(iters):
        for name, fn in variants:
            fn()  # untimed pair-warmup
            t0 = time.perf_counter()
            fn()
            times[name].append(time.perf_counter() - t0)
    return {
        name: {"min": float(np.min(ts)), "median": float(np.median(ts))}
        for name, ts in times.items()
    }


def bench_case(name: str, m: int, n: int, iters: int, **solver_kwargs):
    a, b, c, d = make_batch(m, n, seed=m + n)
    # separate engines so run_cold's cache clearing cannot touch warm state
    engine_cold = ExecutionEngine()
    engine_warm = ExecutionEngine()

    x_seed = seed_solve(a, b, c, d, **solver_kwargs)
    x_cold = engine_cold.solve_batch(a, b, c, d, **solver_kwargs)
    bitwise = bool(np.array_equal(x_seed, x_cold))

    def run_seed():
        seed_solve(a, b, c, d, **solver_kwargs)

    def run_cold():
        engine_cold.clear()
        engine_cold.solve_batch(a, b, c, d, **solver_kwargs)

    def run_warm():
        engine_warm.solve_batch(a, b, c, d, **solver_kwargs)

    run_warm()  # prime plan + workspace pool before timing warm
    t = time_interleaved(
        [("seed", run_seed), ("cold", run_cold), ("warm", run_warm)], iters
    )

    k = engine_warm.last_report.k
    result = {
        "case": name,
        "m": m,
        "n": n,
        "k": k,
        "iters": iters,
        "timing": "paired-warmup interleaved; min (headline) + median",
        "solver_kwargs": {k_: str(v) for k_, v in solver_kwargs.items()},
        "seed_s_per_iter": t["seed"]["min"],
        "cold_s_per_iter": t["cold"]["min"],
        "warm_s_per_iter": t["warm"]["min"],
        "median": {name: t[name]["median"] for name in ("seed", "cold", "warm")},
        "speedup_warm_vs_seed": t["seed"]["min"] / t["warm"]["min"],
        "speedup_warm_vs_cold": t["cold"]["min"] / t["warm"]["min"],
        "bitwise_identical_to_seed": bitwise,
    }
    print(
        f"{name:28s} M={m:5d} N={n:5d} k={k}  "
        f"seed {t['seed']['min'] * 1e3:9.3f} ms  "
        f"cold {t['cold']['min'] * 1e3:9.3f} ms  "
        f"warm {t['warm']['min'] * 1e3:9.3f} ms  "
        f"warm/seed {result['speedup_warm_vs_seed']:5.2f}x  "
        f"bitwise={'ok' if bitwise else 'FAIL'}"
    )
    return result


CASES = (
    # the acceptance case: paper's large-M regime (k = 0 -> Thomas)
    ("large-M thomas", 1024, 1024, 50, {}),
    # small-M regime: tiled-PCR front-end + p-Thomas back-end.  The
    # per-call margin here is a few hundred microseconds on a ~10 ms
    # solve, so the min statistic needs more samples than the heavy
    # large-M case to converge below scheduler jitter.
    ("small-M hybrid", 16, 2048, 80, {}),
    # fused back-end
    ("small-M fused", 32, 1024, 80, {"fuse": True}),
)


def run_case_isolated(name: str, iters_scale: float) -> dict:
    """Run one case in a fresh interpreter; return its result dict.

    The large-M case churns hundreds of MB through the allocator;
    pooled workspaces a later small case allocates from that recycled
    arena measure differently (and noisily) from a clean heap.  Process
    isolation gives every case the allocator state a real user's
    process would have, and makes the small-margin cases reproducible.
    Falls back to in-process execution if the child fails for an
    environmental reason.
    """
    cmd = [
        sys.executable, str(Path(__file__).resolve()),
        "--one-case", name, "--iters-scale", str(iters_scale),
    ]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode == 0:
        try:
            result = json.loads(proc.stdout.splitlines()[-1])
            print(result.pop("_line"))
            return result
        except (ValueError, IndexError):
            pass
    sys.stderr.write(proc.stderr)
    for case_name, m, n, iters, kw in CASES:
        if case_name == name:
            return bench_case(name, m, n, max(3, int(iters * iters_scale)), **kw)
    raise SystemExit(f"unknown case {name!r}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="few iterations, assert warm is not slower than seed or "
        "cold on every case, no JSON",
    )
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_engine.json"),
        help="output JSON path (ignored with --smoke)",
    )
    parser.add_argument("--one-case", help=argparse.SUPPRESS)
    parser.add_argument(
        "--iters-scale", type=float, default=None, help=argparse.SUPPRESS
    )
    args = parser.parse_args()

    iters_scale = args.iters_scale
    if iters_scale is None:
        iters_scale = 0.2 if args.smoke else 1.0

    if args.one_case:
        # child mode: run exactly one case, emit its JSON on stdout
        import contextlib
        import io

        for name, m, n, iters, kw in CASES:
            if name == args.one_case:
                buf = io.StringIO()
                with contextlib.redirect_stdout(buf):
                    result = bench_case(
                        name, m, n, max(3, int(iters * iters_scale)), **kw
                    )
                result["_line"] = buf.getvalue().rstrip("\n")
                print(json.dumps(result))
                return
        raise SystemExit(f"unknown case {args.one_case!r}")

    results = [
        run_case_isolated(name, iters_scale) for name, *_ in CASES
    ]

    for r in results:
        assert r["bitwise_identical_to_seed"], (
            f"engine diverged from seed on {r['case']}"
        )

    if args.smoke:
        # the engine's whole point: steady state must never lose to
        # re-planning every call — on ANY case, not just the headline
        for r in results:
            assert r["warm_s_per_iter"] <= r["cold_s_per_iter"] * SMOKE_TOLERANCE, (
                f"warm slower than cold on {r['case']}: {r}"
            )
            assert r["warm_s_per_iter"] <= r["seed_s_per_iter"] * SMOKE_TOLERANCE, (
                f"warm slower than seed on {r['case']}: {r}"
            )
        print("smoke OK: warm <= seed and warm <= cold on every case, "
              "bitwise identical")
        return

    headline = results[0]
    payload = {
        "benchmark": "bench_engine",
        "description": (
            "seed (pre-engine solve_batch) vs cold (plan cache cleared "
            "every call) vs warm (cached plan + pooled workspaces); "
            "paired-warmup interleaved timing, min seconds per solve "
            "(median also recorded)"
        ),
        "acceptance": {
            "target": "warm >= 2x over seed at M=1024 N=1024 x50",
            "speedup_warm_vs_seed": headline["speedup_warm_vs_seed"],
            "met": headline["speedup_warm_vs_seed"] >= 2.0,
        },
        "results": results,
    }
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {out}")
    if not payload["acceptance"]["met"]:
        raise SystemExit("acceptance target missed: warm < 2x over seed")
    print(
        f"acceptance met: warm plan is "
        f"{headline['speedup_warm_vs_seed']:.2f}x over the seed path"
    )


if __name__ == "__main__":
    main()
