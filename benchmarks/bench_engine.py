#!/usr/bin/env python
"""Cold vs warm solve-plan engine benchmark.

Measures three ways of running the same repeated batch solve:

* **seed** — the pre-engine public path: validate + build a
  :class:`HybridSolver`, recompute the transition and reallocate every
  buffer on each call (what ``repro.solve_batch`` did before the
  engine existed);
* **cold** — the engine with its plan cache cleared before every call:
  each solve re-plans and re-allocates workspaces;
* **warm** — the steady state: cached plan, pooled workspaces; each
  solve allocates only its result.

All three produce bitwise-identical solutions (verified here).  The
headline case (M = 1024, N = 1024, 50 iterations — the paper's
large-M regime where the hybrid runs pure Thomas) is expected to show
``warm`` at least 2x faster than ``seed``; results land in
``BENCH_engine.json``.

Run:   python benchmarks/bench_engine.py
Smoke: python benchmarks/bench_engine.py --smoke   (small, asserts
       warm is not slower than cold; writes no JSON)
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.backends import reference_solver
from repro.core.validation import check_batch_arrays
from repro.engine import ExecutionEngine


def make_batch(m: int, n: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, n))
    c = rng.standard_normal((m, n))
    a[:, 0] = 0.0
    c[:, -1] = 0.0
    b = 4.0 + np.abs(a) + np.abs(c)
    d = rng.standard_normal((m, n))
    return a, b, c, d


def seed_solve(a, b, c, d, **kwargs):
    """The pre-engine ``repro.solve_batch`` path, reproduced verbatim."""
    a, b, c, d = check_batch_arrays(a, b, c, d)
    return reference_solver(**kwargs).solve_batch(a, b, c, d, check=False)


def time_loop(fn, iters: int) -> float:
    """Best-of-loop mean: seconds per call over ``iters`` calls."""
    t0 = time.perf_counter()
    for _ in range(iters):
        fn()
    return (time.perf_counter() - t0) / iters


def bench_case(name: str, m: int, n: int, iters: int, **solver_kwargs):
    a, b, c, d = make_batch(m, n, seed=m + n)
    engine = ExecutionEngine()

    x_seed = seed_solve(a, b, c, d, **solver_kwargs)
    x_cold = engine.solve_batch(a, b, c, d, **solver_kwargs)
    bitwise = bool(np.array_equal(x_seed, x_cold))

    def run_seed():
        seed_solve(a, b, c, d, **solver_kwargs)

    def run_cold():
        engine.clear()
        engine.solve_batch(a, b, c, d, **solver_kwargs)

    def run_warm():
        engine.solve_batch(a, b, c, d, **solver_kwargs)

    run_warm()  # prime plan + workspace pool before timing warm
    t_seed = time_loop(run_seed, iters)
    t_cold = time_loop(run_cold, iters)
    t_warm = time_loop(run_warm, iters)

    k = engine.last_report.k
    result = {
        "case": name,
        "m": m,
        "n": n,
        "k": k,
        "iters": iters,
        "solver_kwargs": {k_: str(v) for k_, v in solver_kwargs.items()},
        "seed_s_per_iter": t_seed,
        "cold_s_per_iter": t_cold,
        "warm_s_per_iter": t_warm,
        "speedup_warm_vs_seed": t_seed / t_warm,
        "speedup_warm_vs_cold": t_cold / t_warm,
        "bitwise_identical_to_seed": bitwise,
    }
    print(
        f"{name:28s} M={m:5d} N={n:5d} k={k}  "
        f"seed {t_seed * 1e3:9.3f} ms  cold {t_cold * 1e3:9.3f} ms  "
        f"warm {t_warm * 1e3:9.3f} ms  "
        f"warm/seed {result['speedup_warm_vs_seed']:5.2f}x  "
        f"bitwise={'ok' if bitwise else 'FAIL'}"
    )
    return result


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small problem, few iterations, assert warm <= cold, no JSON",
    )
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_engine.json"),
        help="output JSON path (ignored with --smoke)",
    )
    args = parser.parse_args()

    if args.smoke:
        res = bench_case("smoke-thomas", 256, 256, iters=5)
        res2 = bench_case("smoke-hybrid", 8, 512, iters=5, k=4)
        assert res["bitwise_identical_to_seed"], "engine diverged from seed"
        assert res2["bitwise_identical_to_seed"], "engine diverged from seed"
        # warm must never lose to cold (tolerate timer noise on tiny runs)
        for r in (res, res2):
            assert r["warm_s_per_iter"] <= r["cold_s_per_iter"] * 1.10, (
                f"warm slower than cold: {r}"
            )
        print("smoke OK: warm <= cold, bitwise identical")
        return

    results = [
        # the acceptance case: paper's large-M regime (k = 0 -> Thomas)
        bench_case("large-M thomas", 1024, 1024, iters=50),
        # small-M regime: tiled-PCR front-end + p-Thomas back-end
        bench_case("small-M hybrid", 16, 2048, iters=10),
        # fused back-end
        bench_case("small-M fused", 32, 1024, iters=10, fuse=True),
    ]

    headline = results[0]
    payload = {
        "benchmark": "bench_engine",
        "description": (
            "seed (pre-engine solve_batch) vs cold (plan cache cleared "
            "every call) vs warm (cached plan + pooled workspaces); "
            "seconds per solve"
        ),
        "acceptance": {
            "target": "warm >= 2x over seed at M=1024 N=1024 x50",
            "speedup_warm_vs_seed": headline["speedup_warm_vs_seed"],
            "met": headline["speedup_warm_vs_seed"] >= 2.0,
        },
        "results": results,
    }
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {out}")
    if not payload["acceptance"]["met"]:
        raise SystemExit("acceptance target missed: warm < 2x over seed")
    print(
        f"acceptance met: warm plan is "
        f"{headline['speedup_warm_vs_seed']:.2f}x over the seed path"
    )


if __name__ == "__main__":
    main()
