"""Extension — measured-vs-analytic ledger cross-validation.

Runs the executable SIMT kernels (explicit addresses, shared memory,
barriers) and compares their *measured* traffic against the closed-form
ledgers that drive every figure reproduction.  If the two accounts of
the same kernel drift apart, the figure pipeline is lying — this bench
is the tripwire.
"""

import pytest

from repro.core.layout import Layout
from repro.gpusim.device import GTX480
from repro.kernels.exec_kernels import run_pthomas, run_tiled_pcr
from repro.kernels.pthomas_kernel import pthomas_counters
from repro.kernels.tiled_pcr_kernel import tiled_pcr_counters

from .conftest import make_batch


@pytest.mark.parametrize("interleaved", [True, False], ids=["interleaved", "contiguous"])
def test_pthomas_ledger_agreement(benchmark, interleaved):
    s, L = 256, 64
    a, b, c, d = make_batch(s, L, seed=1)

    def run():
        return run_pthomas(a, b, c, d, interleaved=interleaved)

    _, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    layout = Layout.INTERLEAVED if interleaved else Layout.CONTIGUOUS
    analytic = pthomas_counters(s, L, 8, device=GTX480, layout=layout)
    # the executable kernel provably skips two loads per system
    expected_loads = analytic.traffic.load_bytes - 2 * s * 8
    ratio = stats.load_bytes_useful / expected_loads
    assert 0.99 < ratio < 1.01
    tx_ratio = stats.load_transactions / analytic.traffic.load_transactions
    assert 0.9 < tx_ratio < 1.1
    benchmark.extra_info.update(
        {
            "suite": "exec-validation",
            "layout": layout.value,
            "measured_load_tx": stats.load_transactions,
            "analytic_load_tx": analytic.traffic.load_transactions,
            "measured_efficiency": round(stats.coalescing_efficiency, 4),
            "analytic_efficiency": round(
                analytic.traffic.coalescing_efficiency, 4
            ),
        }
    )


@pytest.mark.parametrize("k", [3, 5, 7])
def test_window_ledger_agreement(benchmark, k):
    n = 2048
    a, b, c, d = make_batch(1, n, seed=k)

    def run():
        return run_tiled_pcr(a[0], b[0], c[0], d[0], k)

    _, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    analytic = tiled_pcr_counters(1, n, k, 8, device=GTX480)
    # both accounts: every row's 4 values loaded exactly once
    assert stats.load_bytes_useful == analytic.traffic.load_bytes == 4 * n * 8
    benchmark.extra_info.update(
        {
            "suite": "exec-validation",
            "k": k,
            "measured_barriers": stats.barriers,
            "analytic_barriers": analytic.barriers,
            "measured_smem_accesses": stats.smem_reads + stats.smem_writes,
            "analytic_smem_accesses": analytic.smem_accesses,
        }
    )


def test_window_barriers_track_analytic(benchmark):
    """Barrier counts agree within the accounting convention (the
    analytic ledger bills k+1 per round; the executable program issues
    exactly that)."""

    def measure():
        out = {}
        for k in (3, 5):
            n = 1024
            a, b, c, d = make_batch(1, n, seed=k)
            _, stats = run_tiled_pcr(a[0], b[0], c[0], d[0], k)
            analytic = tiled_pcr_counters(1, n, k, 8, device=GTX480)
            out[k] = stats.barriers / analytic.barriers
        return out

    ratios = benchmark.pedantic(measure, rounds=1, iterations=1)
    for k, r in ratios.items():
        assert 0.8 < r < 1.25, (k, r)
    benchmark.extra_info.update(
        {"suite": "exec-validation",
         "barrier_ratio": {str(k): round(v, 3) for k, v in ratios.items()}}
    )
