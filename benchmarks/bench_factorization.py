"""Extension — factorization reuse amortization.

Time-stepping applications solve the same matrix every step.  This
benchmark measures factor-once/solve-many against solve-from-scratch
and records the break-even point (solves needed to amortize the
factorization) plus the multi-RHS path.
"""

import numpy as np
import pytest

from repro.core.factorize import HybridFactorization, ThomasFactorization
from repro.core.thomas import thomas_solve_batch

from .conftest import make_batch, verify


def test_thomas_factor_cost(benchmark):
    a, b, c, d = make_batch(64, 1024, seed=1)
    fact = benchmark(ThomasFactorization.factor, a, b, c)
    x = fact.solve(d)
    verify(a, b, c, d, x)
    benchmark.extra_info.update({"suite": "factorization", "phase": "factor"})


def test_thomas_factored_solve_cost(benchmark):
    a, b, c, d = make_batch(64, 1024, seed=1)
    fact = ThomasFactorization.factor(a, b, c)
    x = benchmark(fact.solve, d)
    verify(a, b, c, d, x)
    benchmark.extra_info.update({"suite": "factorization", "phase": "solve"})


def test_thomas_scratch_solve_cost(benchmark):
    a, b, c, d = make_batch(64, 1024, seed=1)
    x = benchmark(thomas_solve_batch, a, b, c, d)
    verify(a, b, c, d, x)
    benchmark.extra_info.update({"suite": "factorization", "phase": "from-scratch"})


def test_multi_rhs_amortization(benchmark):
    """One factored solve with 8 stacked RHS vs 8 separate solves."""
    m, n, r = 32, 512, 8
    a, b, c, _ = make_batch(m, n, seed=2)
    rng = np.random.default_rng(0)
    D = rng.standard_normal((m, n, r))
    fact = ThomasFactorization.factor(a, b, c)

    X = benchmark(fact.solve, D)
    assert X.shape == (m, n, r)
    for j in range(r):
        verify(a, b, c, D[:, :, j], X[:, :, j])
    benchmark.extra_info.update({"suite": "factorization", "phase": "multi-rhs x8"})


def test_hybrid_factor_reuse(benchmark):
    """Hybrid path: the stored-PCR-level solve, timed."""
    m, n, k = 16, 4096, 4
    a, b, c, d = make_batch(m, n, seed=3)
    fact = HybridFactorization.factor(a, b, c, k=k)
    x = benchmark(fact.solve, d)
    verify(a, b, c, d, x)
    benchmark.extra_info.update(
        {"suite": "factorization", "phase": f"hybrid k={k} solve"}
    )
