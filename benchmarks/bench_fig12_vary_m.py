"""Figure 12 — execution time vs number of systems M at fixed N.

Paper: Fig. 12(a) N=512 (M = 64 … 16384), (b) N=2048 (M ≤ 4096),
(c) N=16384 (M ≤ 1024), double precision, three curves: sequential MKL,
multithreaded MKL, ours on a GTX480; plus the Section IV text's
single-precision headline (82.5× / 12.9×).

Each benchmark point times the *real* solver numerics (hybrid with the
Table III plan vs the two CPU proxies) and attaches the calibrated
model's GTX480/i7 prediction plus the shape bookkeeping to
``extra_info``.  The *_shape benchmarks assert the paper's qualitative
claims while generating the full model series.
"""

import pytest

from repro.analysis.figures import FIG12_SWEEPS, figure12_series
from repro.analysis.shapes import is_linear_in, loglog_slope, max_speedup, relative_span
from repro.baselines.mkl_proxy import mkl_multithreaded_proxy, mkl_sequential_proxy
from repro.backends import reference_solver
from repro.kernels.hybrid_gpu import GpuHybridSolver

from .conftest import make_batch, verify

# measured points per panel: a spread over each sweep (full CPU reference
# solves at every paper M would dominate benchmark wall-time)
MEASURED = {
    512: (64, 512, 2048, 16384),
    2048: (64, 512, 4096),
    16384: (64, 1024),
}


def _model_info(n, m, dtype_bytes=8):
    row = [r for r in figure12_series(n, (m,), dtype_bytes)][0]
    return {
        "paper_figure": "12",
        "N": n,
        "M": m,
        "model_gpu_us": round(row["ours_us"], 1),
        "model_mkl_seq_us": round(row["mkl_seq_us"], 1),
        "model_mkl_mt_us": round(row["mkl_mt_us"], 1),
        "model_speedup_seq": round(row["speedup_seq"], 2),
        "model_speedup_mt": round(row["speedup_mt"], 2),
        "k": row["k"],
    }


@pytest.mark.parametrize("n", list(MEASURED))
@pytest.mark.parametrize("m_sel", [0, -1])
def test_fig12_hybrid_measured(benchmark, n, m_sel):
    m = MEASURED[n][m_sel]
    a, b, c, d = make_batch(m, n, seed=n + m)
    solver = reference_solver()
    x = benchmark(solver.solve_batch, a, b, c, d)
    verify(a, b, c, d, x)
    benchmark.extra_info.update(_model_info(n, m))
    benchmark.extra_info["curve"] = "ours"


@pytest.mark.parametrize("n", [512])
@pytest.mark.parametrize("m", [64, 2048])
def test_fig12_mkl_sequential_measured(benchmark, n, m):
    a, b, c, d = make_batch(m, n, seed=m)
    x = benchmark(mkl_sequential_proxy, a, b, c, d)
    verify(a, b, c, d, x)
    benchmark.extra_info.update(_model_info(n, m))
    benchmark.extra_info["curve"] = "mkl_seq"


@pytest.mark.parametrize("n", [512])
@pytest.mark.parametrize("m", [64, 2048, 16384])
def test_fig12_mkl_multithreaded_measured(benchmark, n, m):
    a, b, c, d = make_batch(m, n, seed=m)
    x = benchmark(mkl_multithreaded_proxy, a, b, c, d)
    verify(a, b, c, d, x)
    benchmark.extra_info.update(_model_info(n, m))
    benchmark.extra_info["curve"] = "mkl_mt"


@pytest.mark.parametrize("n", list(FIG12_SWEEPS))
def test_fig12_model_series_shape(benchmark, n):
    """Regenerate the full panel from the model and assert its shape."""

    def series():
        return figure12_series(n)

    rows = benchmark(series)
    ms = [r["M"] for r in rows]
    # CPU curves perfectly linear in M
    assert is_linear_in(ms, [r["mkl_seq_us"] for r in rows], tol=0.05)
    # ours sub-linear below saturation; the flat latency-bound region is
    # pronounced at N = 512 (paper Fig. 12a), milder at larger N where
    # the PCR stage is already throughput-bound
    low = [r for r in rows if r["M"] <= 1024]
    slope_cap = 0.8 if n == 512 else 0.95
    assert loglog_slope([r["M"] for r in low], [r["ours_us"] for r in low]) < slope_cap
    # ours beats sequential MKL at every point
    assert all(r["speedup_seq"] > 1 for r in rows)
    benchmark.extra_info.update(
        {
            "paper_figure": "12",
            "N": n,
            "max_speedup_seq": round(max_speedup(rows, "mkl_seq_us", "ours_us"), 1),
            "max_speedup_mt": round(max_speedup(rows, "mkl_mt_us", "ours_us"), 1),
            "paper_headline": "8.3x mt / 49x seq (double, N=512)",
        }
    )


def test_fig12_headline_double(benchmark):
    """The abstract's double-precision claim: up to 8.3× / 49×."""
    rows = benchmark(figure12_series, 512)
    smax = max_speedup(rows, "mkl_seq_us", "ours_us")
    tmax = max_speedup(rows, "mkl_mt_us", "ours_us")
    assert 24 < smax < 74, smax     # 49x ± 50%
    assert 4 < tmax < 13, tmax      # 8.3x ± 50%
    # flat region between 512 and 2048 (paper: 512 - 4096)
    flat = [r["ours_us"] for r in rows if 512 <= r["M"] <= 2048]
    assert relative_span(flat) < 2.0
    benchmark.extra_info.update(
        {"model_max_seq": round(smax, 1), "model_max_mt": round(tmax, 1),
         "paper_max_seq": 49.0, "paper_max_mt": 8.3}
    )


def test_fig12_headline_single(benchmark):
    """Section IV: 12.9× / 82.5× in single precision."""
    rows = benchmark(figure12_series, 512, FIG12_SWEEPS[512], 4)
    smax = max_speedup(rows, "mkl_seq_us", "ours_us")
    tmax = max_speedup(rows, "mkl_mt_us", "ours_us")
    assert 41 < smax < 124, smax    # 82.5x ± 50%
    assert 6 < tmax < 20, tmax      # 12.9x ± 50%
    benchmark.extra_info.update(
        {"model_max_seq": round(smax, 1), "model_max_mt": round(tmax, 1),
         "paper_max_seq": 82.5, "paper_max_mt": 12.9}
    )
