"""Figure 13 — execution time vs system size N at fixed M.

Paper panels: (a) M=2048 (N = 256 … 8K, pure p-Thomas, up to 5×/30×),
(b) M=256 (tiled PCR ≈ 6.25 % of runtime), (c) M=16 (≈ 36.2 %),
(d) M=1 (N = 0.5M … 8M, PCR ≈ 55 %, ≈ 5.5× over sequential MKL).

Measured points run the real numerics (capped at N = 2^17 for the
streaming sliding-window path — the simulation is faithful, not fast);
the model series covers the paper's full sweeps including N = 8M.
"""

import pytest

from repro.analysis.figures import FIG13_SWEEPS, figure13_series
from repro.analysis.shapes import loglog_slope
from repro.backends import reference_solver
from repro.kernels.hybrid_gpu import GpuHybridSolver

from .conftest import make_batch, verify

# (M, measured N, sliding-window sub-tile scale for tractable simulation)
MEASURED = [
    (2048, 2048, 1),
    (2048, 8192, 1),
    (256, 16384, 4),
    (16, 65536, 8),
    (1, 131072, 16),
]


def _model_info(m, n_model, dtype_bytes=8):
    row = figure13_series(m, (n_model,), dtype_bytes)[0]
    return {
        "paper_figure": "13",
        "M": m,
        "N_model": n_model,
        "model_gpu_ms": round(row["ours_ms"], 3),
        "model_mkl_seq_ms": round(row["mkl_seq_ms"], 3),
        "model_mkl_mt_ms": round(row["mkl_mt_ms"], 3),
        "model_pcr_fraction": round(row["pcr_fraction"], 3),
        "k": row["k"],
        "windows": row["windows"],
    }


@pytest.mark.parametrize("m,n,c", MEASURED)
def test_fig13_hybrid_measured(benchmark, m, n, c):
    a, b, cc, d = make_batch(m, n, seed=m)
    gpu = GpuHybridSolver()
    k, w = gpu.plan(m, n)
    solver = reference_solver(k=k, n_windows=w, subtile_scale=c)
    x = benchmark.pedantic(
        solver.solve_batch, args=(a, b, cc, d), rounds=2, iterations=1
    )
    verify(a, b, cc, d, x)
    benchmark.extra_info.update(_model_info(m, n))
    benchmark.extra_info["curve"] = "ours"


@pytest.mark.parametrize("m", list(FIG13_SWEEPS))
def test_fig13_model_series_shape(benchmark, m):
    rows = benchmark(figure13_series, m)
    ns = [r["N"] for r in rows]
    ours = [r["ours_ms"] for r in rows]
    # scalability in N: near-proportional growth at every M
    assert 0.7 < loglog_slope(ns, ours) < 1.3
    # ours beats sequential MKL at every point
    assert all(r["speedup_seq"] > 1 for r in rows)
    benchmark.extra_info.update(
        {
            "paper_figure": "13",
            "M": m,
            "speedup_seq_last": round(rows[-1]["speedup_seq"], 2),
            "speedup_mt_last": round(rows[-1]["speedup_mt"], 2),
            "pcr_fraction_last": round(rows[-1]["pcr_fraction"], 3),
        }
    )


def test_fig13_pcr_share_trend(benchmark):
    """Section IV text: the tiled-PCR share of runtime is 0 at M=2048,
    positive below the transition (paper: 6.25 % at M=256, 36.2 % at
    M=16, ≈55 % at M=1; the unfused model attributes more of the shared
    traffic to the PCR stage — see EXPERIMENTS.md)."""

    def shares():
        return {
            m: figure13_series(m, (FIG13_SWEEPS[m][-1],))[0]["pcr_fraction"]
            for m in (2048, 256, 16, 1)
        }

    got = benchmark(shares)
    assert got[2048] == 0.0
    for m in (256, 16, 1):
        assert got[m] > 0.1
    benchmark.extra_info.update(
        {
            "model_shares": {str(k): round(v, 3) for k, v in got.items()},
            "paper_shares": {"2048": 0.0, "256": 0.0625, "16": 0.362, "1": 0.55},
        }
    )


def test_fig13_single_system_speedup(benchmark):
    """'our method consistently shows around 5.5x speedup' (M = 1)."""
    rows = benchmark(figure13_series, 1)
    for r in rows:
        assert 2.5 < r["speedup_seq"] < 11, r
    benchmark.extra_info.update(
        {
            "model_speedups": [round(r["speedup_seq"], 2) for r in rows],
            "paper_speedup": 5.5,
        }
    )
