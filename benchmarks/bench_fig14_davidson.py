"""Figure 14 — ours vs Davidson et al. [19] on the paper's four configs.

Paper: (a) double precision, ours vs their implementation of Davidson's
auto-tuned PCR-Thomas; (b) single precision, additionally vs Davidson's
own reported numbers.  Configurations: 1K×1K, 2K×2K, 4K×4K, 1×2M;
claim: "2x to 10x speedup for most of the cases".

Measured benchmarks run both solvers' real numerics (the 1×2M config at
a scaled N for the streaming path); model benchmarks regenerate the
exact bar chart values next to the paper's.
"""

import pytest

from repro.analysis.figures import (
    FIG14_CONFIGS,
    PAPER_FIG14_DOUBLE,
    PAPER_FIG14_SINGLE,
    figure14_bars,
)
from repro.baselines.davidson import DavidsonSolver
from repro.backends import reference_solver
from repro.kernels.hybrid_gpu import GpuHybridSolver

from .conftest import make_batch, verify

# measured at tractable sizes: same aspect, scaled down where needed
MEASURED = {
    "1Kx1K": (1024, 1024),
    "2Kx2K": (2048, 2048),
    "1x128K": (1, 131072),  # stands in for 1x2M on the streaming path
}


@pytest.mark.parametrize("label", list(MEASURED))
def test_fig14_ours_measured(benchmark, label):
    m, n = MEASURED[label]
    a, b, c, d = make_batch(m, n, seed=m)
    gpu = GpuHybridSolver()
    k, w = gpu.plan(m, n)
    solver = reference_solver(k=k, n_windows=w, subtile_scale=8 if m == 1 else 1)
    x = benchmark.pedantic(solver.solve_batch, args=(a, b, c, d), rounds=2, iterations=1)
    verify(a, b, c, d, x)
    benchmark.extra_info.update({"paper_figure": "14", "config": label, "solver": "ours"})


@pytest.mark.parametrize("label", list(MEASURED))
def test_fig14_davidson_measured(benchmark, label):
    m, n = MEASURED[label]
    a, b, c, d = make_batch(m, n, seed=m)
    solver = DavidsonSolver()
    x = benchmark.pedantic(solver.solve_batch, args=(a, b, c, d), rounds=2, iterations=1)
    verify(a, b, c, d, x)
    benchmark.extra_info.update(
        {"paper_figure": "14", "config": label, "solver": "davidson"}
    )


def test_fig14a_model_double(benchmark):
    """Fig. 14(a): regenerate the double-precision bars."""
    rows = benchmark(figure14_bars, 8)
    for r in rows:
        # ours always wins; ratio within 2x of the paper's measured ratio
        assert r["ratio"] > 1.2, r["config"]
        assert 0.5 < r["ratio"] / r["paper_ratio"] < 2.0, r["config"]
    benchmark.extra_info.update(
        {
            "paper_figure": "14a",
            "bars": {
                r["config"]: {
                    "ours_ms": round(r["ours_ms"], 2),
                    "paper_ours_ms": r["paper_ours_ms"],
                    "davidson_ms": round(r["davidson_ms"], 2),
                    "paper_davidson_ms": r["paper_davidson_ms"],
                }
                for r in rows
            },
        }
    )


def test_fig14b_model_single(benchmark):
    """Fig. 14(b): single-precision bars, incl. Davidson's reported values."""
    rows = benchmark(figure14_bars, 4)
    for r in rows:
        assert r["ratio"] > 1.0, r["config"]
        assert "davidson_reported_ms" in r
    benchmark.extra_info.update(
        {
            "paper_figure": "14b",
            "bars": {
                r["config"]: {
                    "ours_ms": round(r["ours_ms"], 2),
                    "paper_ours_ms": PAPER_FIG14_SINGLE[r["config"]][0],
                    "davidson_ms": round(r["davidson_ms"], 2),
                    "davidson_reported_ms": r["davidson_reported_ms"],
                }
                for r in rows
            },
        }
    )


def test_fig14_band_claim(benchmark):
    """'2x to 10x speedup for most of the cases' — at least 3 of 4
    double-precision configs land in [2, 12]."""

    def ratios():
        return [r["ratio"] for r in figure14_bars(8)]

    got = benchmark(ratios)
    in_band = sum(1 for r in got if 2.0 <= r <= 12.0)
    assert in_band >= 3, got
    benchmark.extra_info["model_ratios"] = [round(r, 2) for r in got]
    benchmark.extra_info["paper_ratios"] = [
        round(v[1] / v[0], 2) for v in PAPER_FIG14_DOUBLE.values()
    ]
