"""Extension — mixed precision with iterative refinement (ref [10]).

The Fig. 12 fp32 numbers are ~2× faster than fp64 but carry fp32
accuracy.  Göddeke & Strzodka's technique (the paper's ref [10]) gets
both: solve in fp32, refine the residual in fp64.  This benchmark
measures the refinement pipeline, verifies it reaches fp64-level
residuals, and prices the tradeoff on the GPU model: an fp32 solve plus
two fp32 corrections costs less than one fp64 solve whenever the fp64
path is more than ~3× the fp32 path — which the GeForce's 1/8-rate
fp64 makes common.
"""

import numpy as np
import pytest

from repro.backends import reference_solver
from repro.core.refine import solve_mixed_precision
from repro.kernels.hybrid_gpu import GpuHybridSolver

from .conftest import make_batch


def test_mixed_precision_measured(benchmark):
    a, b, c, d = make_batch(32, 2048, seed=1)
    res = benchmark(solve_mixed_precision, a, b, c, d)
    assert res.converged
    assert res.residuals[-1] < 1e-12
    benchmark.extra_info.update(
        {"suite": "mixed-precision", "iterations": res.iterations,
         "final_residual": f"{res.residuals[-1]:.2e}"}
    )


def test_fp64_direct_measured(benchmark):
    a, b, c, d = make_batch(32, 2048, seed=1)
    solver = reference_solver()
    benchmark(solver.solve_batch, a, b, c, d)
    benchmark.extra_info.update({"suite": "mixed-precision", "variant": "fp64 direct"})


def test_refinement_reaches_fp64_accuracy(benchmark):
    from scipy.linalg import solve_banded

    a, b, c, d = make_batch(8, 1024, seed=2)

    res = benchmark.pedantic(
        solve_mixed_precision, args=(a, b, c, d), rounds=1, iterations=1
    )
    ab = np.zeros((3, 1024))
    ab[0, 1:] = c[0, :-1]
    ab[1] = b[0]
    ab[2, :-1] = a[0, 1:]
    ref = solve_banded((1, 1), ab, d[0])
    err = np.abs(res.x[0] - ref).max() / np.abs(ref).max()
    assert err < 1e-11
    benchmark.extra_info.update(
        {"suite": "mixed-precision", "fp64_relative_error": f"{err:.2e}"}
    )


def test_model_tradeoff(benchmark):
    """An honest model finding: on the GTX480, refinement (3 fp32 solves
    + 2 fp64 residual passes) does NOT beat one fp64 solve — the fp64
    path is bandwidth-bound, so it runs at only ~2.3× the fp32 time,
    not the 8× ALU ratio.  Refinement pays exactly when fp64 is
    ALU-bound, which a bandwidth-rich what-if device exposes."""

    def price(device):
        gpu = GpuHybridSolver(device=device)
        # a PCR-heavy, latency-hidden shape: M = 256 keeps thousands of
        # threads busy while k = 6 makes the fp64 PCR stage ALU-bound
        m, n = 256, 16384
        t64 = gpu.predict(m, n, 8).total_s
        t32 = gpu.predict(m, n, 4).total_s
        residual_pass = (9 * m * n * 8) / (
            device.effective_bandwidth_gbs() * 1e9
        )
        return t64, 3 * t32 + 2 * residual_pass

    from repro.gpusim.device import GTX480

    def both():
        fat_bus = GTX480.with_overrides(
            name="10x-bandwidth GTX480", mem_bandwidth_gbs=1774.0
        )
        return price(GTX480), price(fat_bus)

    (t64, mixed), (t64_fat, mixed_fat) = benchmark(both)
    # GTX480: bandwidth-bound fp64 -> direct wins, refinement ~2x worse
    assert 1.0 < mixed / t64 < 3.0
    # compute-bound regime: the 8x fp64 penalty bites and refinement wins
    assert mixed_fat < t64_fat
    benchmark.extra_info.update(
        {
            "suite": "mixed-precision",
            "gtx480_ms": {"fp64": round(t64 * 1e3, 3),
                          "mixed": round(mixed * 1e3, 3)},
            "fat_bus_ms": {"fp64": round(t64_fat * 1e3, 3),
                           "mixed": round(mixed_fat * 1e3, 3)},
        }
    )
