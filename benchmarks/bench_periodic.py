#!/usr/bin/env python
"""Prepared cyclic (Sherman–Morrison) vs re-elimination benchmark.

Periodic-Poisson workloads (ADI / spectral, the paper's ref [6] family)
solve a *fixed* cyclic matrix against a fresh right-hand side every
time step.  This benchmark measures the three ways the library can run
that loop:

* **unprepared** — ``engine.solve_periodic`` with fingerprinting
  disabled: every call corner-reduces and runs *two* inner solves
  (``A'y = d`` and ``A'q = u``) plus the correction;
* **auto** — fingerprinting on: the engine recognises the repeated
  cyclic coefficients and serves the stored
  :class:`~repro.engine.prepared.CyclicRhsFactorization` (hash cost
  included in every timed call);
* **prepared** — an explicit ``repro.prepare(..., periodic=True)``
  handle: one RHS-only core sweep plus a rank-one update per step.

The prepared path skips the coefficient elimination *and* the entire
q-solve, so its advantage over re-elimination is larger than the plain
prepared path's.  At ``k = 0`` (the large-M Thomas regime) prepared
results are **bitwise identical** to unprepared; ``k > 0`` agrees to
floating-point tolerance.  The headline case (M = 1024, N = 1024,
50 steps) must show ``prepared`` at least ``HEADLINE_TARGET``x faster
than ``unprepared``; results land in ``BENCH_periodic.json``.

Run:   python benchmarks/bench_periodic.py
Smoke: python benchmarks/bench_periodic.py --smoke   (small, asserts
       correctness + prepared not slower than unprepared; no JSON)
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.engine import ExecutionEngine

#: Headline acceptance floor for prepared-vs-unprepared at M=N=1024.
#: Recalibrated 2026-08: recent measurement sessions spread
#: 5.14x-5.88x (~13% run-to-run and machine-to-machine variation), so
#: the floor sits ~10% under the low end of that spread rather than at
#: the freshest reading — far enough to absorb noisy CI runners, close
#: enough that losing the RHS-only fast path (which would drop the
#: ratio toward 1x) still fails loudly.
HEADLINE_TARGET = 4.7


def make_cyclic_coefficients(m: int, n: int, seed: int = 0):
    """Random dominant cyclic diagonals (corners in a[:,0] / c[:,-1])."""
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, n))
    c = rng.standard_normal((m, n))
    b = 4.0 + np.abs(a) + np.abs(c)
    return a, b, c


def time_loop(fn, rhs_list) -> float:
    """Seconds per step over one pass of ``rhs_list``."""
    t0 = time.perf_counter()
    for d in rhs_list:
        fn(d)
    return (time.perf_counter() - t0) / len(rhs_list)


def bench_case(name: str, m: int, n: int, steps: int, **solver_kwargs):
    a, b, c = make_cyclic_coefficients(m, n, seed=m + n)
    rng = np.random.default_rng(m ^ n)
    rhs = [rng.standard_normal((m, n)) for _ in range(steps)]
    engine = ExecutionEngine()

    handle = engine.prepare(a, b, c, periodic=True, **solver_kwargs)
    k = handle.k

    # correctness first: every step's prepared solution against the
    # unprepared path (bitwise at k = 0, allclose for the hybrid)
    x_un = [
        engine.solve_periodic(a, b, c, d, fingerprint=False, **solver_kwargs)
        for d in rhs
    ]
    x_pre = [handle.solve(d) for d in rhs]
    bitwise = all(np.array_equal(u, p) for u, p in zip(x_un, x_pre))
    close = bitwise or all(
        np.allclose(u, p, rtol=1e-9, atol=1e-12) for u, p in zip(x_un, x_pre)
    )

    def run_unprepared(d):
        engine.solve_periodic(a, b, c, d, fingerprint=False, **solver_kwargs)

    def run_auto(d):
        engine.solve_periodic(a, b, c, d, fingerprint=True, **solver_kwargs)

    def run_prepared(d):
        handle.solve(d)

    run_auto(rhs[0])  # prime the fingerprint ledger before timing
    t_un = time_loop(run_unprepared, rhs)
    t_auto = time_loop(run_auto, rhs)
    t_pre = time_loop(run_prepared, rhs)

    result = {
        "case": name,
        "m": m,
        "n": n,
        "k": k,
        "steps": steps,
        "solver_kwargs": {k_: str(v) for k_, v in solver_kwargs.items()},
        "factorization_bytes": handle.nbytes,
        "unprepared_s_per_step": t_un,
        "auto_fingerprint_s_per_step": t_auto,
        "prepared_s_per_step": t_pre,
        "speedup_prepared_vs_unprepared": t_un / t_pre,
        "speedup_auto_vs_unprepared": t_un / t_auto,
        "bitwise_identical": bitwise,
        "allclose": close,
    }
    agree = "bitwise" if bitwise else ("allclose" if close else "FAIL")
    print(
        f"{name:24s} M={m:5d} N={n:5d} k={k}  "
        f"unprep {t_un * 1e3:8.3f} ms  auto {t_auto * 1e3:8.3f} ms  "
        f"prep {t_pre * 1e3:8.3f} ms  "
        f"prep/unprep {result['speedup_prepared_vs_unprepared']:5.2f}x  "
        f"[{agree}]"
    )
    return result


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small problems, few steps, assert correctness, no JSON",
    )
    parser.add_argument(
        "--out",
        default=str(
            Path(__file__).resolve().parent.parent / "BENCH_periodic.json"
        ),
        help="output JSON path (ignored with --smoke)",
    )
    args = parser.parse_args()

    if args.smoke:
        res = bench_case("smoke-thomas", 1024, 64, steps=5)
        res2 = bench_case("smoke-hybrid", 8, 512, steps=5, k=4)
        assert res["k"] == 0 and res["bitwise_identical"], (
            f"k=0 prepared cyclic path must be bitwise identical: {res}"
        )
        assert res2["allclose"], f"hybrid prepared cyclic path diverged: {res2}"
        for r in (res, res2):
            assert (
                r["prepared_s_per_step"]
                <= r["unprepared_s_per_step"] * 1.10
            ), f"prepared slower than unprepared: {r}"
        print("smoke OK: prepared <= unprepared, numerics agree")
        return

    results = [
        # the acceptance case: the large-M regime (k = 0 -> RHS-only
        # Thomas sweep + rank-one correction, bitwise)
        bench_case("large-M thomas", 1024, 1024, steps=50),
        # mid-M: Table III picks the hybrid core
        bench_case("mid-M hybrid", 128, 1024, steps=20),
        # small-M deep hybrid
        bench_case("small-M hybrid", 16, 2048, steps=10),
    ]

    headline = results[0]
    payload = {
        "benchmark": "bench_periodic",
        "description": (
            "unprepared (corner-reduce + two inner solves every step) vs "
            "auto (cyclic coefficient fingerprint -> stored "
            "CyclicRhsFactorization) vs prepared (explicit "
            "repro.prepare(..., periodic=True) handle, one RHS-only "
            "sweep + rank-one correction); seconds per time step"
        ),
        "acceptance": {
            "target": (
                f"prepared >= {HEADLINE_TARGET}x over unprepared at "
                "M=1024 N=1024 x50, bitwise identical (k = 0)"
            ),
            "speedup_prepared_vs_unprepared": headline[
                "speedup_prepared_vs_unprepared"
            ],
            "bitwise_identical": headline["bitwise_identical"],
            "met": (
                headline["speedup_prepared_vs_unprepared"] >= HEADLINE_TARGET
                and headline["bitwise_identical"]
            ),
        },
        "results": results,
    }
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {out}")
    if not payload["acceptance"]["met"]:
        raise SystemExit(
            f"acceptance target missed: prepared < {HEADLINE_TARGET}x "
            "over unprepared "
            "or not bitwise"
        )
    print(
        f"acceptance met: prepared cyclic RHS-only path is "
        f"{headline['speedup_prepared_vs_unprepared']:.2f}x over "
        f"re-eliminating every step"
    )


if __name__ == "__main__":
    main()
