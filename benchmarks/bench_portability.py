"""Extension — portability across devices (Section III-A / VI).

The paper: "The ability to keep the number of PCR steps under control
expands the portability of our method to virtually all GPUs."  This
benchmark runs the planner and model on the GTX480, a Tesla C2050
(full-rate FP64) and synthetic what-if devices (half bandwidth, half
SMs, tiny shared memory) and checks the method stays viable — the
window always fits, occupancy stays above floor, and the hybrid still
beats the CPU proxy at scale.
"""

import pytest

from repro.core.window import BufferedSlidingWindow
from repro.gpusim.cpu import MklProxyModel
from repro.gpusim.device import GTX480, TESLA_C2050
from repro.gpusim.occupancy import occupancy
from repro.kernels.hybrid_gpu import GpuHybridSolver

DEVICES = {
    "gtx480": GTX480,
    "c2050": TESLA_C2050,
    "half-bw": GTX480.with_overrides(name="half-bw", mem_bandwidth_gbs=88.7),
    "half-sm": GTX480.with_overrides(name="half-sm", sm_count=8),
    "small-smem": GTX480.with_overrides(
        name="small-smem",
        shared_mem_per_sm=16 * 1024,
        max_shared_mem_per_block=16 * 1024,
    ),
}


@pytest.mark.parametrize("name", list(DEVICES))
def test_hybrid_viable_on_device(benchmark, name):
    device = DEVICES[name]
    gpu = GpuHybridSolver(device=device)

    def predict():
        return gpu.predict(2048, 2048)

    rep = benchmark(predict)
    assert rep.total_s > 0
    mkl = MklProxyModel()
    speedup = mkl.sequential_s(2048, 2048) / rep.total_s
    assert speedup > 3.0, (name, speedup)
    benchmark.extra_info.update(
        {"suite": "portability", "device": device.name,
         "model_ms": round(rep.total_s * 1e3, 3),
         "speedup_vs_seq": round(speedup, 1)}
    )


@pytest.mark.parametrize("name", list(DEVICES))
def test_planned_window_fits_every_device(benchmark, name):
    """The planner caps k by the device's shared memory, so its window
    always fits — including on a 16 KiB-shared-memory part where the
    Table III k = 8 window (32 KiB) would not launch."""
    device = DEVICES[name]
    gpu = GpuHybridSolver(device=device)

    def occ():
        k, _ = gpu.plan(1, 1 << 20)  # M = 1 wants the largest k
        w = BufferedSlidingWindow(k=max(k, 1), dtype_bytes=8)
        return k, occupancy(device, w.threads_per_block, w.smem_bytes())

    k, o = benchmark(occ)
    assert o.blocks_per_sm >= 1
    if name == "small-smem":
        assert k < 8  # the cap engaged
    else:
        assert k == 8
    benchmark.extra_info.update(
        {"suite": "portability", "device": device.name, "planned_k": k,
         "blocks_per_sm": o.blocks_per_sm, "limited_by": o.limited_by}
    )


def test_c2050_fp64_advantage(benchmark):
    """Full-rate FP64 makes the PCR stage cheaper on the Tesla part in
    compute-bound regimes, despite its lower bandwidth/clock."""

    def pair():
        r480 = GpuHybridSolver(device=GTX480).predict(16, 65536)
        r2050 = GpuHybridSolver(device=TESLA_C2050).predict(16, 65536)
        c480, t480 = r480.stage("PCR")
        c2050, t2050 = r2050.stage("PCR")
        return t480.compute_s, t2050.compute_s

    gtx, tesla = benchmark(pair)
    assert tesla < gtx  # 16 vs 4 FP64 lanes per SM wins on compute
    benchmark.extra_info.update(
        {"suite": "portability",
         "pcr_compute_ms": {"gtx480": round(gtx * 1e3, 3),
                            "c2050": round(tesla * 1e3, 3)}}
    )


def test_windows_per_block_variant_priced(benchmark):
    """Fig. 11(c) multiplexing is plumbed end to end."""

    def pair():
        base = GpuHybridSolver(device=GTX480, windows_per_block=1).predict(64, 16384)
        mux = GpuHybridSolver(device=GTX480, windows_per_block=4).predict(64, 16384)
        return base.total_s, mux.total_s

    t1, t4 = benchmark(pair)
    assert t1 > 0 and t4 > 0 and t1 != t4
    benchmark.extra_info.update(
        {"suite": "portability",
         "ms": {"wpb1": round(t1 * 1e3, 3), "wpb4": round(t4 * 1e3, 3)}}
    )
