#!/usr/bin/env python
"""Prepared (RHS-only) vs unprepared solve benchmark.

A time-stepping loop solves the same tridiagonal matrix against a fresh
right-hand side every step.  This benchmark measures the three ways the
library can run that loop:

* **unprepared** — ``engine.solve_batch`` with fingerprinting disabled:
  warm plan and pooled workspaces, but every call re-eliminates the
  (unchanged) coefficients;
* **auto** — ``engine.solve_batch`` with the default
  ``fingerprint=None``: the engine hashes the coefficients, recognises
  the repeat, and serves the stored factorization's RHS-only sweep
  (hash cost included in every timed call);
* **prepared** — an explicit :func:`repro.prepare` handle: the
  factorization is built once outside the loop and each step pays only
  the RHS-only sweep.

For ``k = 0`` (the large-M Thomas regime) the RHS-only sweep divides by
the *stored denominators* in the same order as the unprepared
elimination, so prepared results are **bitwise identical**; ``k > 0``
(hybrid) agrees to floating-point tolerance and is reported with
``allclose``.  The headline case (M = 1024, N = 1024, 50 steps) is
expected to show ``prepared`` at least 2x faster than ``unprepared``;
results land in ``BENCH_prepared.json``.

Run:   python benchmarks/bench_prepared.py
Smoke: python benchmarks/bench_prepared.py --smoke   (small, asserts
       correctness + prepared not slower than unprepared; no JSON)
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.engine import ExecutionEngine


def make_coefficients(m: int, n: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, n))
    c = rng.standard_normal((m, n))
    a[:, 0] = 0.0
    c[:, -1] = 0.0
    b = 4.0 + np.abs(a) + np.abs(c)
    return a, b, c


def time_loop(fn, rhs_list) -> float:
    """Seconds per step over one pass of ``rhs_list``."""
    t0 = time.perf_counter()
    for d in rhs_list:
        fn(d)
    return (time.perf_counter() - t0) / len(rhs_list)


def bench_case(name: str, m: int, n: int, steps: int, **solver_kwargs):
    a, b, c = make_coefficients(m, n, seed=m + n)
    rng = np.random.default_rng(m ^ n)
    rhs = [rng.standard_normal((m, n)) for _ in range(steps)]
    engine = ExecutionEngine()

    handle = engine.prepare(a, b, c, **solver_kwargs)
    k = handle.k

    # correctness first: every step's prepared solution against the
    # unprepared path (bitwise at k = 0, allclose for the hybrid)
    x_un = [
        engine.solve_batch(a, b, c, d, fingerprint=False, **solver_kwargs)
        for d in rhs
    ]
    x_pre = [handle.solve(d) for d in rhs]
    bitwise = all(np.array_equal(u, p) for u, p in zip(x_un, x_pre))
    close = bitwise or all(
        np.allclose(u, p, rtol=1e-9, atol=1e-12) for u, p in zip(x_un, x_pre)
    )

    def run_unprepared(d):
        engine.solve_batch(a, b, c, d, fingerprint=False, **solver_kwargs)

    def run_auto(d):
        engine.solve_batch(a, b, c, d, fingerprint=True, **solver_kwargs)

    def run_prepared(d):
        handle.solve(d)

    run_auto(rhs[0])  # prime the fingerprint ledger before timing
    t_un = time_loop(run_unprepared, rhs)
    t_auto = time_loop(run_auto, rhs)
    t_pre = time_loop(run_prepared, rhs)

    result = {
        "case": name,
        "m": m,
        "n": n,
        "k": k,
        "steps": steps,
        "solver_kwargs": {k_: str(v) for k_, v in solver_kwargs.items()},
        "factorization_bytes": handle.nbytes,
        "unprepared_s_per_step": t_un,
        "auto_fingerprint_s_per_step": t_auto,
        "prepared_s_per_step": t_pre,
        "speedup_prepared_vs_unprepared": t_un / t_pre,
        "speedup_auto_vs_unprepared": t_un / t_auto,
        "bitwise_identical": bitwise,
        "allclose": close,
    }
    agree = "bitwise" if bitwise else ("allclose" if close else "FAIL")
    print(
        f"{name:24s} M={m:5d} N={n:5d} k={k}  "
        f"unprep {t_un * 1e3:8.3f} ms  auto {t_auto * 1e3:8.3f} ms  "
        f"prep {t_pre * 1e3:8.3f} ms  "
        f"prep/unprep {result['speedup_prepared_vs_unprepared']:5.2f}x  "
        f"[{agree}]"
    )
    return result


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small problems, few steps, assert correctness, no JSON",
    )
    parser.add_argument(
        "--out",
        default=str(
            Path(__file__).resolve().parent.parent / "BENCH_prepared.json"
        ),
        help="output JSON path (ignored with --smoke)",
    )
    args = parser.parse_args()

    if args.smoke:
        res = bench_case("smoke-thomas", 1024, 64, steps=5)
        res2 = bench_case("smoke-hybrid", 8, 512, steps=5, k=4)
        assert res["k"] == 0 and res["bitwise_identical"], (
            f"k=0 prepared path must be bitwise identical: {res}"
        )
        assert res2["allclose"], f"hybrid prepared path diverged: {res2}"
        for r in (res, res2):
            assert (
                r["prepared_s_per_step"]
                <= r["unprepared_s_per_step"] * 1.10
            ), f"prepared slower than unprepared: {r}"
        print("smoke OK: prepared <= unprepared, numerics agree")
        return

    results = [
        # the acceptance case: paper's large-M regime (k = 0 -> the
        # RHS-only Thomas sweep with stored denominators, bitwise)
        bench_case("large-M thomas", 1024, 1024, steps=50),
        # mid-M: Table III picks the hybrid (stored PCR level factors
        # + reduced RHS-only Thomas)
        bench_case("mid-M hybrid", 128, 1024, steps=20),
        # small-M deep hybrid
        bench_case("small-M hybrid", 16, 2048, steps=10),
    ]

    headline = results[0]
    payload = {
        "benchmark": "bench_prepared",
        "description": (
            "unprepared (fingerprint off, coefficients re-eliminated "
            "every step) vs auto (coefficient fingerprint -> stored "
            "factorization) vs prepared (explicit repro.prepare handle, "
            "RHS-only sweep); seconds per time step"
        ),
        "acceptance": {
            "target": (
                "prepared >= 2x over unprepared at M=1024 N=1024 x50, "
                "bitwise identical (k = 0)"
            ),
            "speedup_prepared_vs_unprepared": headline[
                "speedup_prepared_vs_unprepared"
            ],
            "bitwise_identical": headline["bitwise_identical"],
            "met": (
                headline["speedup_prepared_vs_unprepared"] >= 2.0
                and headline["bitwise_identical"]
            ),
        },
        "results": results,
    }
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {out}")
    if not payload["acceptance"]["met"]:
        raise SystemExit(
            "acceptance target missed: prepared < 2x over unprepared "
            "or not bitwise"
        )
    print(
        f"acceptance met: prepared RHS-only path is "
        f"{headline['speedup_prepared_vs_unprepared']:.2f}x over "
        f"re-eliminating every step"
    )


if __name__ == "__main__":
    main()
