"""Extension — roofline survey of the kernel family.

Places every kernel on the GTX480 roofline and asserts the structural
story: p-Thomas memory-bound, tiled PCR crossing the fp64 ridge at
moderate k, fusion raising the hybrid's arithmetic intensity, and the
contiguous layout collapsing it.
"""

import pytest

from repro.analysis.roofline import kernel_survey, ridge_intensity, roofline_point
from repro.gpusim.device import GTX480, TESLA_C2050
from repro.kernels.tiled_pcr_kernel import tiled_pcr_counters


def test_roofline_survey(benchmark):
    pts = benchmark(kernel_survey)
    by_name = {p.name: p for p in pts}
    assert by_name["p-Thomas (interleaved)"].bound == "memory"
    assert (
        by_name["fused hybrid (k=6)"].intensity
        > by_name["tiled PCR (k=6)"].intensity
    )
    benchmark.extra_info.update(
        {
            "suite": "roofline",
            "points": {
                p.name: {"ai": round(p.intensity, 3), "bound": p.bound}
                for p in pts
            },
            "ridge_fp64": round(ridge_intensity(GTX480, 8), 3),
        }
    )


@pytest.mark.parametrize("k", [1, 2, 4, 6, 8])
def test_pcr_intensity_grows_with_k(benchmark, k):
    def point():
        return roofline_point(tiled_pcr_counters(64, 16384, k, 8), 8)

    p = benchmark(point)
    assert p.intensity == pytest.approx(k * 12 / 64, rel=0.2)
    benchmark.extra_info.update(
        {"suite": "roofline", "k": k, "ai": round(p.intensity, 3), "bound": p.bound}
    )


def test_fp64_penalty_moves_ridge(benchmark):
    """GeForce's 1/8-rate fp64 pulls the ridge down 8x — the reason the
    PCR stage is compute-bound on the GTX480 but memory-bound on a
    Tesla C2050 at the same k."""

    def bounds():
        c = tiled_pcr_counters(64, 16384, 6, 8)
        return (
            roofline_point(c, 8, device=GTX480).bound,
            roofline_point(c, 8, device=TESLA_C2050).bound,
        )

    gtx, tesla = benchmark(bounds)
    assert gtx == "compute"
    assert tesla == "memory"
    benchmark.extra_info.update(
        {"suite": "roofline", "gtx480": gtx, "c2050": tesla}
    )
