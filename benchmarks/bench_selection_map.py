"""Extension — the full algorithm-selection surface and heuristic regret.

Generalizes Table III from a 1-D M-lookup to the full (M, N) plane on
the device model and scores the paper's heuristic against the per-cell
optimum.
"""

from repro.analysis.selection_map import heuristic_regret, selection_map
from repro.gpusim.device import GTX480, TESLA_C2050


def test_selection_surface_gtx480(benchmark):
    cells = benchmark.pedantic(selection_map, rounds=1, iterations=1)
    stats = heuristic_regret(cells)
    assert stats["worst"] < 1.5
    benchmark.extra_info.update(
        {
            "suite": "selection-map",
            "device": GTX480.name,
            "regret_worst": round(stats["worst"], 3),
            "regret_median": round(stats["median"], 3),
            "exact_matches": round(stats["exact_matches"], 3),
            "best_k_by_cell": {
                f"M={c.m},N={c.n}": c.best_k for c in cells if c.n == 16384
            },
        }
    )


def test_selection_surface_c2050(benchmark):
    """The surface shifts with the device — the reason the transition is
    a runtime decision, not a constant."""

    def run():
        return selection_map(device=TESLA_C2050)

    cells = benchmark.pedantic(run, rounds=1, iterations=1)
    stats = heuristic_regret(cells)
    benchmark.extra_info.update(
        {
            "suite": "selection-map",
            "device": TESLA_C2050.name,
            "regret_worst": round(stats["worst"], 3),
            "regret_median": round(stats["median"], 3),
        }
    )
    # the GTX480-tuned table should still be serviceable on the C2050
    assert stats["median"] < 1.3
