#!/usr/bin/env python
"""Service-tier benchmark: coalesced dispatch vs one-call-per-request.

The paper's Table III says the large-M ``k = 0`` regime is the fastest
route; realistic traffic arrives as many small compatible requests.
This benchmark measures exactly that translation:

* **solo** — the baseline every caller runs today: one
  ``repro.solve_batch(..., k=0)`` call per request, sequentially (one
  process-wide engine; requests queue behind each other exactly as
  they would behind the GIL in a request handler).
* **service** — the same requests submitted concurrently to a
  :class:`repro.service.SolveService`, which coalesces them along the
  batch axis and dispatches the aggregate through the same engine.

Both run the identical request set (``small_request_traffic``), and the
scatter-gathered service results are asserted **bitwise identical** to
the solo solves.  At each concurrency level the report records
requests/sec plus p50/p99 end-to-end latency per request.

Acceptance (full run): coalesced throughput >= 3x one-call-per-request
at 256 concurrent M=8 N=1024 requests.  Results land in
``BENCH_service.json``.

Run:   python benchmarks/bench_service.py
Smoke: python benchmarks/bench_service.py --smoke   (small shapes, a
       modest >= 1.3x bar, writes no JSON)
"""

from __future__ import annotations

import argparse
import asyncio
import json
import time
from pathlib import Path

import numpy as np

import repro
from repro.service import ServiceConfig, SolveService
from repro.workloads import small_request_traffic


def solo_pass(frags):
    """One-call-per-request baseline; returns (elapsed_s, latencies, xs)."""
    latencies = []
    xs = []
    t0 = time.perf_counter()
    for _, (a, b, c, d) in frags:
        t1 = time.perf_counter()
        xs.append(repro.solve_batch(a, b, c, d, k=0))
        latencies.append(time.perf_counter() - t1)
    return time.perf_counter() - t0, latencies, xs


def service_pass(frags, config: ServiceConfig):
    """All requests submitted concurrently; returns (elapsed, lat, xs)."""

    async def run():
        service = SolveService(config)
        async with service:
            async def one(tenant, batch):
                a, b, c, d = batch
                t1 = time.perf_counter()
                x = await service.submit(a, b, c, d, tenant=tenant)
                return time.perf_counter() - t1, x

            t0 = time.perf_counter()
            pairs = await asyncio.gather(
                *[one(tenant, batch) for tenant, batch in frags]
            )
            elapsed = time.perf_counter() - t0
        return elapsed, [p[0] for p in pairs], [p[1] for p in pairs]

    return asyncio.run(asyncio.wait_for(run(), 600))


def percentile(samples, q: float) -> float:
    return float(np.percentile(np.asarray(samples), q))


def bench_level(requests: int, m: int, n: int, *, repeats: int) -> dict:
    """One concurrency level: best-of-``repeats`` for both variants."""
    frags = small_request_traffic(requests, m, n, tenants=4, seed=requests)
    # default max_batch_rows (2048): high request counts split into a few
    # near-optimal dispatches instead of one giant solve whose single
    # long burst is hostage to scheduler hiccups on shared machines
    config = ServiceConfig(max_wait_us=2000.0)

    best_solo = best_svc = None
    for _ in range(repeats):
        solo_s, solo_lat, solo_xs = solo_pass(frags)
        if best_solo is None or solo_s < best_solo[0]:
            best_solo = (solo_s, solo_lat, solo_xs)
        svc_s, svc_lat, svc_xs = service_pass(frags, config)
        if best_svc is None or svc_s < best_svc[0]:
            best_svc = (svc_s, svc_lat, svc_xs)

    solo_s, solo_lat, solo_xs = best_solo
    svc_s, svc_lat, svc_xs = best_svc
    bitwise = all(
        np.array_equal(xs, xv) for xs, xv in zip(solo_xs, svc_xs)
    )
    result = {
        "requests": requests,
        "m": m,
        "n": n,
        "repeats": repeats,
        "solo": {
            "elapsed_s": solo_s,
            "requests_per_s": requests / solo_s,
            "latency_ms": {
                "p50": percentile(solo_lat, 50) * 1e3,
                "p99": percentile(solo_lat, 99) * 1e3,
            },
        },
        "service": {
            "elapsed_s": svc_s,
            "requests_per_s": requests / svc_s,
            "latency_ms": {
                "p50": percentile(svc_lat, 50) * 1e3,
                "p99": percentile(svc_lat, 99) * 1e3,
            },
        },
        "speedup": solo_s / svc_s,
        "bitwise_identical": bitwise,
    }
    print(
        f"requests={requests:4d} M={m} N={n}  "
        f"solo {requests / solo_s:8.1f} req/s "
        f"(p99 {result['solo']['latency_ms']['p99']:7.2f} ms)  "
        f"service {requests / svc_s:8.1f} req/s "
        f"(p99 {result['service']['latency_ms']['p99']:7.2f} ms)  "
        f"speedup {result['speedup']:5.2f}x  "
        f"bitwise={'ok' if bitwise else 'FAIL'}"
    )
    return result


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small shapes, modest speedup bar, no JSON",
    )
    parser.add_argument(
        "--out",
        default=str(
            Path(__file__).resolve().parent.parent / "BENCH_service.json"
        ),
        help="output JSON path (ignored with --smoke)",
    )
    args = parser.parse_args()

    if args.smoke:
        levels = [(16, 8, 256), (64, 8, 256)]
        repeats = 2
        # even tiny shapes must show coalescing paying for itself
        floor, floor_at = 1.3, 64
    else:
        levels = [(64, 8, 1024), (256, 8, 1024), (1024, 8, 1024)]
        repeats = 3
        floor, floor_at = 3.0, 256

    results = [
        bench_level(requests, m, n, repeats=repeats)
        for requests, m, n in levels
    ]

    for r in results:
        assert r["bitwise_identical"], (
            f"service diverged from solo at requests={r['requests']}"
        )
    gate = next(r for r in results if r["requests"] == floor_at)
    if args.smoke:
        assert gate["speedup"] >= floor, (
            f"smoke: speedup {gate['speedup']:.2f}x < {floor}x at "
            f"{floor_at} requests"
        )
        print(f"smoke OK: {gate['speedup']:.2f}x >= {floor}x, bitwise identical")
        return

    payload = {
        "benchmark": "bench_service",
        "description": (
            "async batch-aggregation service vs one-call-per-request at "
            "varying concurrency; best-of-repeats wall clock, per-request "
            "p50/p99 end-to-end latency, bitwise-verified scatter"
        ),
        "acceptance": {
            "target": (
                "coalesced throughput >= 3x one-call-per-request at 256 "
                "concurrent M=8 N=1024 requests"
            ),
            "speedup": gate["speedup"],
            "met": gate["speedup"] >= floor,
        },
        "results": results,
    }
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {out}")
    if not payload["acceptance"]["met"]:
        raise SystemExit(
            f"acceptance target missed: {gate['speedup']:.2f}x < {floor}x"
        )
    print(
        f"acceptance met: service is {gate['speedup']:.2f}x over "
        "one-call-per-request at 256 concurrent requests"
    )


if __name__ == "__main__":
    main()
