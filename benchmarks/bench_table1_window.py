"""Table I — buffered-sliding-window properties, and their cost in vivo.

The table itself is a set of closed forms (asserted against the
implementation); the benchmark measures how the sliding window's
wall-clock behaves as k and the sub-tile scale c change, at fixed total
work — the practical content of Table I's ``c·k·2^k`` eliminations and
``3·f(k)`` cache rows.
"""

import pytest

from repro.analysis.tables import table1_rows
from repro.core.tiled_pcr import TiledPCR, TilingCounters, tiled_pcr_sweep
from repro.core.window import BufferedSlidingWindow

from .conftest import make_batch


def test_table1_rows_match_formulas(benchmark):
    rows = benchmark(table1_rows)
    for row in rows:
        k = row["k"]
        assert row["subtile"] == 2**k
        assert row["cache_capacity"] == 3 * (2**k - 1)
        assert row["threads_per_block"] == 2**k
        assert row["elim_per_subtile"] == k * 2**k
    benchmark.extra_info["paper_table"] = "I"
    benchmark.extra_info["rows"] = {str(r["k"]): r["cache_capacity"] for r in rows}


@pytest.mark.parametrize("k", [2, 4, 6])
def test_window_sweep_cost_vs_k(benchmark, k):
    """Same N, growing k: eliminations grow as k·N (Table I row 6)."""
    n = 8192
    a, b, c, d = make_batch(1, n, seed=k)
    counters = TilingCounters()

    def sweep():
        counters.__init__()
        return tiled_pcr_sweep(a, b, c, d, k, counters=counters)

    benchmark(sweep)
    assert counters.eliminations >= k * n
    benchmark.extra_info.update(
        {
            "paper_table": "I",
            "k": k,
            "eliminations": counters.eliminations,
            "expected_min": k * n,
            "cache_rows": TiledPCR(k=k).cache_rows(),
            "smem_bytes_fp64": BufferedSlidingWindow(k=k).smem_bytes(),
        }
    )


@pytest.mark.parametrize("c", [1, 4, 16])
def test_window_sweep_cost_vs_c(benchmark, c):
    """Larger sub-tiles amortize the per-round overhead (same math)."""
    n, k = 16384, 4
    a, b, cc, d = make_batch(1, n, seed=c)
    counters = TilingCounters()

    def sweep():
        counters.__init__()
        return tiled_pcr_sweep(a, b, cc, d, k, subtile_scale=c, counters=counters)

    benchmark(sweep)
    # rounds = ceil((n + 2 f(k)) / S): the stream covers the body plus the
    # lead-in and the final drain
    expected = -(-(n + 2 * (2**k - 1)) // (c * 2**k))
    assert abs(counters.subtiles - expected) <= 1
    benchmark.extra_info.update(
        {"paper_table": "I", "c": c, "rounds": counters.subtiles}
    )
