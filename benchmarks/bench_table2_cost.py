"""Table II — the elimination-step cost model, evaluated and validated.

Regenerates the table's three cost rows across the (M, P) regimes and
checks the transition behaviour it implies: k = 0 optimal when M > P,
maximal useful k when M ≪ P — the analytic counterpart of Table III.
"""

import pytest

from repro.analysis.tables import table2_rows
from repro.core.cost_model import hybrid_cost, pcr_cost, thomas_cost
from repro.core.transition import select_k_analytic
from repro.gpusim.device import GTX480

P = GTX480.max_resident_threads  # the paper's "P-way parallel machine"


def test_table2_rows_generate(benchmark):
    rows = benchmark(table2_rows, 12, 256, P)
    assert len(rows) >= 5
    benchmark.extra_info.update(
        {
            "paper_table": "II",
            "costs": {r["algorithm"]: round(r["cost"], 1) for r in rows},
        }
    )


@pytest.mark.parametrize("m", [1, 16, 256, 4096, 65536])
def test_table2_optimal_k_per_m(benchmark, m):
    """Sweep k at each M and record the argmin — Table II's content."""
    n = 14  # N = 16384

    def best():
        return select_k_analytic(n, m, P)

    k = benchmark(best)
    costs = {kk: hybrid_cost(n, m, P, kk) for kk in range(0, n)}
    assert costs[k] == min(costs.values())
    if m > P:
        assert k == 0  # Section III-D: saturated -> no PCR
    benchmark.extra_info.update(
        {"paper_table": "II", "M": m, "optimal_k": k,
         "thomas_cost": round(thomas_cost(n, m, P), 1),
         "pcr_cost": round(pcr_cost(n, m, P), 1),
         "hybrid_cost": round(costs[k], 1)}
    )


def test_table2_regime_boundaries(benchmark):
    """The three hybrid regimes partition (M, k) space consistently."""

    def check():
        n = 12
        out = []
        for m in (1, 64, P // 8, P, 2 * P, 8 * P):
            for k in (0, 2, 4, 6):
                out.append(hybrid_cost(n, m, P, k))
        return out

    costs = benchmark(check)
    assert all(c > 0 for c in costs)
    benchmark.extra_info["paper_table"] = "II"
