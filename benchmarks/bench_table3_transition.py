"""Table III — the GTX480 transition heuristic, and why those k values.

Regenerates the table, then *justifies* it: for representative M in
each band, sweeping k on the GPU model must rank the heuristic's k at
or near the minimum predicted time (the paper found the table
empirically; the model reproduces the basin).
"""

import pytest

from repro.analysis.tables import table3_rows
from repro.core.transition import GTX480_HEURISTIC
from repro.gpusim.device import GTX480
from repro.gpusim.timing import GpuTimingModel
from repro.kernels.pthomas_kernel import pthomas_counters
from repro.kernels.tiled_pcr_kernel import tiled_pcr_counters


def _predict_at_k(m, n, k, dtype_bytes=8):
    """Model time for a fixed (not planned) k; inf if unlaunchable
    (the window for k = 9 would exceed the per-block shared memory)."""
    model = GpuTimingModel(GTX480)
    total = 0.0
    g = 1 << k
    try:
        if k > 0:
            total += model.time(
                tiled_pcr_counters(m, n, k, dtype_bytes), dtype_bytes
            ).total_s
        total += model.time(
            pthomas_counters(m * g, -(-n // g), dtype_bytes), dtype_bytes
        ).total_s
    except ValueError:
        return float("inf")
    return total


def test_table3_rows(benchmark):
    rows = benchmark(table3_rows)
    assert [(r["m_low"], r["k"]) for r in rows] == [
        (1, 8), (16, 7), (32, 6), (512, 5), (1024, 0)
    ]
    benchmark.extra_info["paper_table"] = "III"
    benchmark.extra_info["rows"] = {f"M>={r['m_low']}": r["k"] for r in rows}


@pytest.mark.parametrize("m", [4, 24, 128, 768, 4096])
def test_table3_heuristic_near_model_optimum(benchmark, m):
    """The heuristic's k lands within 2x of the model-optimal k's time."""
    n = 16384
    k_h = GTX480_HEURISTIC.k_for(m, n)

    def sweep():
        return {k: _predict_at_k(m, n, k) for k in range(0, 10)}

    times = benchmark(sweep)
    best_k = min(times, key=times.get)
    assert times[k_h] <= 2.0 * times[best_k], (m, k_h, best_k, times)
    benchmark.extra_info.update(
        {
            "paper_table": "III",
            "M": m,
            "heuristic_k": k_h,
            "model_best_k": best_k,
            "time_ratio": round(times[k_h] / times[best_k], 2),
        }
    )


def test_table3_transition_visible_in_model(benchmark):
    """Crossing M = 1024 flips the plan to pure p-Thomas (k = 0) and the
    model agrees that PCR no longer pays."""

    def ratio():
        t_k5 = _predict_at_k(1023, 16384, 5)
        t_k0 = _predict_at_k(1023, 16384, 0)
        t_k5_big = _predict_at_k(4096, 16384, 5)
        t_k0_big = _predict_at_k(4096, 16384, 0)
        return t_k5 / t_k0, t_k5_big / t_k0_big

    below, above = benchmark(ratio)
    # above the transition, adding PCR steps strictly hurts
    assert above > 1.0
    benchmark.extra_info.update(
        {"paper_table": "III", "k5_over_k0_below": round(below, 2),
         "k5_over_k0_above": round(above, 2)}
    )
