"""Shared helpers for the benchmark harness.

Every benchmark in this directory does three things:

1. **measures** the real NumPy implementation's wall-clock on the
   benchmark machine (pytest-benchmark timing);
2. **verifies** the computed solution against LAPACK before timing — a
   benchmark of a wrong answer is worthless;
3. **attaches** the paper's reference number and the calibrated
   GTX480/i7-975 model prediction via ``benchmark.extra_info`` so the
   emitted JSON/table is the paper-vs-reproduction record.

Run with:  pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import solve_banded


def make_batch(m, n, dtype=np.float64, seed=0, dominance=3.0):
    """Random strictly diagonally dominant (M, N) batch."""
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, n)).astype(dtype)
    c = rng.standard_normal((m, n)).astype(dtype)
    a[:, 0] = 0.0
    c[:, -1] = 0.0
    b = (dominance + np.abs(a) + np.abs(c)).astype(dtype)
    d = rng.standard_normal((m, n)).astype(dtype)
    return a, b, c, d


def verify(a, b, c, d, x, tol=1e-7, sample=4):
    """Spot-check the solution against LAPACK on a few systems."""
    m, n = b.shape
    idx = np.linspace(0, m - 1, min(sample, m)).astype(int)
    ab = np.zeros((3, n), dtype=np.float64)
    for i in idx:
        ab[0, 1:] = c[i, :-1]
        ab[1, :] = b[i]
        ab[2, :-1] = a[i, 1:]
        ref = solve_banded((1, 1), ab, d[i], check_finite=False)
        err = np.max(np.abs(x[i] - ref) / np.maximum(np.abs(ref), 1.0))
        assert err < tol, f"system {i}: error {err:.2e}"
