#!/usr/bin/env python
"""2-D implicit diffusion by ADI — the paper's fluid-simulation workload.

Alternating-Direction-Implicit stepping (Sakharnykh's GTC solvers, refs
[4][5]) splits each 2-D implicit step into two batched tridiagonal
sweeps: all rows, then all columns.  Each sweep is exactly the
``M × N`` batch shape the paper benchmarks — grid rows become
independent systems.

The script diffuses a hot square on a plate and checks two invariants:
the total heat is conserved (Neumann closure) and the maximum principle
holds (no new extrema).

Both sweep matrices are fixed for the whole run (``beta`` never
changes), so the script prepares each direction once and all
``2·steps`` sweeps take the RHS-only fast path through the stored
factorizations — the printed engine stats prove no sweep after the
first re-eliminated anything.

Run:  python examples/adi_fluid.py
"""

import numpy as np

import repro
from repro.workloads.pde import adi_row_coefficients


def adi_step(field: np.ndarray, row_solve, col_solve) -> np.ndarray:
    """One ADI step: implicit x-sweep over rows, then y-sweep over columns."""
    half = row_solve.solve(field)
    return np.ascontiguousarray(
        col_solve.solve(np.ascontiguousarray(half.T)).T
    )


def main() -> None:
    nx = ny = 128
    beta = 0.3  # alpha*dt / (2 dx^2)
    steps = 60

    field = np.zeros((ny, nx))
    field[60:68, 60:68] = 1.0  # hot 8x8 square
    total0 = field.sum()
    print(f"{ny}x{nx} plate, {steps} ADI steps, beta={beta}")
    print(f"initial heat: {total0:.4f}, peak: {field.max():.4f}")

    # fixed coefficients: factor each sweep direction once up front
    row_solve = repro.prepare(*adi_row_coefficients(ny, nx, beta))
    col_solve = repro.prepare(*adi_row_coefficients(nx, ny, beta))

    lo0, hi0 = field.min(), field.max()
    for _ in range(steps):
        field = adi_step(field, row_solve, col_solve)
        if field.min() < lo0 - 1e-9 or field.max() > hi0 + 1e-9:
            raise SystemExit("ADI example violated the maximum principle")

    stats = repro.default_engine().stats
    print(
        f"engine: {stats.rhs_only_solves} RHS-only solves, "
        f"{stats.factorizations_built} factorization built — the square "
        f"grid gives both sweep directions the same matrix "
        f"(row {row_solve.solves} + col {col_solve.solves} prepared solves)"
    )
    total = field.sum()
    print(f"final heat:   {total:.4f}, peak: {field.max():.4f}")
    drift = abs(total - total0) / total0
    print(f"heat conservation drift: {drift:.2e}")
    if drift > 1e-8:
        raise SystemExit("ADI example FAILED conservation check")
    # diffusion must actually spread the blob
    if not field.max() < 0.5 * hi0:
        raise SystemExit("ADI example FAILED to diffuse")
    print("ADI fluid example PASSED")


if __name__ == "__main__":
    main()
