#!/usr/bin/env python
"""2-D implicit diffusion by ADI — the paper's fluid-simulation workload.

Alternating-Direction-Implicit stepping (Sakharnykh's GTC solvers, refs
[4][5]) splits each 2-D implicit step into two batched tridiagonal
sweeps: all rows, then all columns.  Each sweep is exactly the
``M × N`` batch shape the paper benchmarks — grid rows become
independent systems.

The script diffuses a hot square on a plate and checks two invariants:
the total heat is conserved (Neumann closure) and the maximum principle
holds (no new extrema).

Every sweep has the same ``(M, N)`` signature, so the solve-plan engine
plans and allocates exactly once; the remaining ``2·steps − 1`` sweeps
run warm against pooled workspaces (the printed stats prove it).

Run:  python examples/adi_fluid.py
"""

import numpy as np

import repro
from repro.workloads.pde import adi_row_systems


def adi_step(field: np.ndarray, beta: float) -> np.ndarray:
    """One ADI step: implicit x-sweep over rows, then y-sweep over columns."""
    a, b, c, d = adi_row_systems(field, beta)
    half = repro.solve_batch(a, b, c, d, backend="engine")
    a, b, c, d = adi_row_systems(np.ascontiguousarray(half.T), beta)
    return np.ascontiguousarray(
        repro.solve_batch(a, b, c, d, backend="engine").T
    )


def main() -> None:
    nx = ny = 128
    beta = 0.3  # alpha*dt / (2 dx^2)
    steps = 60

    field = np.zeros((ny, nx))
    field[60:68, 60:68] = 1.0  # hot 8x8 square
    total0 = field.sum()
    print(f"{ny}x{nx} plate, {steps} ADI steps, beta={beta}")
    print(f"initial heat: {total0:.4f}, peak: {field.max():.4f}")

    lo0, hi0 = field.min(), field.max()
    for _ in range(steps):
        field = adi_step(field, beta)
        if field.min() < lo0 - 1e-9 or field.max() > hi0 + 1e-9:
            raise SystemExit("ADI example violated the maximum principle")

    stats = repro.default_engine().stats
    print(
        f"engine: {stats.solves} solves, {stats.plans_built} plan(s) built, "
        f"{stats.plan_hits} warm hits, {stats.workspaces_built} workspace(s)"
    )
    total = field.sum()
    print(f"final heat:   {total:.4f}, peak: {field.max():.4f}")
    drift = abs(total - total0) / total0
    print(f"heat conservation drift: {drift:.2e}")
    if drift > 1e-8:
        raise SystemExit("ADI example FAILED conservation check")
    # diffusion must actually spread the blob
    if not field.max() < 0.5 * hi0:
        raise SystemExit("ADI example FAILED to diffuse")
    print("ADI fluid example PASSED")


if __name__ == "__main__":
    main()
