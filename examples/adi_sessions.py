#!/usr/bin/env python
"""2-D ADI diffusion driven by bound solve sessions.

Alternating-direction-implicit time stepping is the canonical
bind/execute workload: the two sweep matrices are fixed for the whole
simulation while a fresh right-hand side arrives every half-step.
:class:`repro.workloads.ADIDiffusion2D` therefore binds one
:class:`~repro.engine.session.BoundSolve` per sweep direction at
construction and runs an allocation-free ``step`` loop — no per-step
validation, plan lookup, factorization fetch, or trace construction.

The script verifies physics, not just algebra: with the mirrored
boundary closure, the separable mode cos(pi(i+1/2)/n) is an exact
eigenvector of the discrete scheme, so its amplitude must follow the
Peaceman-Rachford amplification factor exactly; total mass must not
drift at all.  A short dense-reference run cross-checks the session
path against independent linear algebra.

Run:  python examples/adi_sessions.py
"""

import numpy as np

import repro
from repro.workloads import ADIDiffusion2D, CrankNicolsonCubic


def neumann_mode(n: int) -> tuple[np.ndarray, float]:
    """Lowest cosine eigenmode of the mirrored discrete Laplacian."""
    phi = np.cos(np.pi * (np.arange(n) + 0.5) / n)
    lam = -4.0 * np.sin(np.pi / (2 * n)) ** 2
    return phi, lam


def main() -> None:
    ny, nx = 192, 240
    alpha, dt = 0.2, 0.8
    steps = 200

    # initial condition: uniform background + one separable cosine mode
    phi_x, lam_x = neumann_mode(nx)
    phi_y, lam_y = neumann_mode(ny)
    mode = np.outer(phi_y, phi_x)
    amp0 = 0.3
    u0 = 1.0 + amp0 * mode

    sim = ADIDiffusion2D(u0, alpha, dt)
    bx, by = sim.beta_x, sim.beta_y
    # exact per-step amplification of the Peaceman-Rachford splitting
    gain = ((1.0 + bx * lam_x) * (1.0 + by * lam_y)) / (
        (1.0 - bx * lam_x) * (1.0 - by * lam_y)
    )
    print(f"{ny} x {nx} grid, {steps} ADI steps of dt={dt}")
    print(f"analytic mode decay over the run: {gain ** steps:.6f}")

    mass0 = sim.u.sum()
    sim.run(steps)
    row, col = sim._row.describe(), sim._col.describe()
    stats = repro.default_engine().stats
    print(
        f"sessions: row {row['mode']} x{row['steps']} steps, "
        f"col {col['mode']} x{col['steps']} steps "
        f"(engine built {stats.factorizations_built} factorization(s) at bind, "
        f"{stats.plans_built} plan(s))"
    )

    # the cosine mode is an exact eigenvector: projection must match
    measured = (sim.u - 1.0).ravel() @ mode.ravel() / (mode ** 2).sum()
    expected = amp0 * gain**steps
    err = abs(measured - expected)
    drift = abs(sim.u.sum() - mass0) / abs(mass0)
    print(f"measured mode amplitude: {measured:.8f} (expected {expected:.8f})")
    print(f"max |measured - analytic| = {err:.2e}, relative mass drift = {drift:.2e}")
    sim.close()
    if err > 1e-8 or drift > 1e-12:
        raise SystemExit("ADI sessions example FAILED its physics check")

    # cross-check the session path against dense linear algebra
    rng = np.random.default_rng(7)
    small = ADIDiffusion2D(rng.random((40, 32)), alpha, dt)
    ref = small.u.copy()
    for _ in range(5):
        ref = small.reference_step(ref)
    small.run(5)
    dense_err = np.abs(small.u - ref).max()
    small.close()
    print(f"dense-reference cross-check (40x32, 5 steps): {dense_err:.2e}")
    if dense_err > 1e-11:
        raise SystemExit("ADI sessions example FAILED its reference check")

    # coda: the same session machinery serves IMEX reaction-diffusion —
    # a periodic Allen-Cahn run rides the cyclic session path and must
    # stay inside the stable band [-1, 1]
    x = np.linspace(0.0, 2.0 * np.pi, 256, endpoint=False)
    fields = 0.4 * np.sin(x)[None, :] * np.linspace(0.5, 1.5, 8)[:, None]
    cn = CrankNicolsonCubic(fields, alpha=0.05, dt=0.05, periodic=True)
    cn.run(400)
    bound = np.abs(cn.u).max()
    mode_name = cn._session.describe()["mode"]
    print(f"Allen-Cahn coda: {mode_name} session, max |u| = {bound:.6f}")
    cn.close()
    if bound > 1.0 + 1e-9:
        raise SystemExit("ADI sessions example FAILED its Allen-Cahn check")
    print("ADI sessions example PASSED")


if __name__ == "__main__":
    main()
