#!/usr/bin/env python
"""Batched natural cubic splines (paper ref [8]).

Fits natural cubic splines through many sampled curves at once — each
curve's second-derivative system is one tridiagonal solve, and the
whole family is a single ``(M, N)`` batch.  Accuracy is checked against
``scipy.interpolate.CubicSpline`` with the same end conditions.

Run:  python examples/cubic_spline.py
"""

import numpy as np
from scipy.interpolate import CubicSpline

import repro
from repro.workloads.pde import cubic_spline_system


def spline_eval(x, y, m2, xq):
    """Evaluate a cubic spline from knot second derivatives ``m2``."""
    idx = np.clip(np.searchsorted(x, xq) - 1, 0, len(x) - 2)
    h = x[idx + 1] - x[idx]
    t = (xq - x[idx]) / h
    y0, y1 = y[idx], y[idx + 1]
    m0, m1 = m2[idx], m2[idx + 1]
    return (
        (1 - t) * y0
        + t * y1
        + h * h / 6.0 * ((1 - t) ** 3 - (1 - t)) * m0
        + h * h / 6.0 * (t**3 - t) * m1
    )


def main() -> None:
    n = 64          # knots per curve
    m = 128         # curves
    x = np.linspace(0.0, 2.0 * np.pi, n)
    freqs = np.linspace(0.5, 3.0, m)[:, None]
    y = np.sin(freqs * x[None, :])

    a, b, c, d = cubic_spline_system(x, y)
    m2 = repro.solve_batch(a, b, c, d)   # knot second derivatives
    print(f"fitted {m} natural splines with {n} knots each in one batch")

    xq = np.linspace(x[0], x[-1], 777)
    worst = 0.0
    for i in (0, m // 2, m - 1):
        ours = spline_eval(x, y[i], m2[i], xq)
        ref = CubicSpline(x, y[i], bc_type="natural")(xq)
        worst = max(worst, np.abs(ours - ref).max())
    print(f"max |ours - scipy CubicSpline| on sampled curves: {worst:.2e}")
    if worst > 1e-10:
        raise SystemExit("cubic spline example FAILED vs scipy")

    # interpolation quality on the smooth target
    truth = np.sin(freqs[m // 2] * xq)
    err = np.abs(spline_eval(x, y[m // 2], m2[m // 2], xq) - truth).max()
    print(f"interpolation error vs sin(x):                    {err:.2e}")
    print("cubic spline example PASSED")


if __name__ == "__main__":
    main()
