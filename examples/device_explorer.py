#!/usr/bin/env python
"""Explore the GPU execution model: occupancy, transition points, what-ifs.

Shows the machinery behind the paper's performance arguments:

* the occupancy table for sliding-window blocks at each k — why small
  shared-memory footprints matter (Section III-A);
* the Table II/III transition: heuristic vs analytic k across M;
* a what-if: the same solver on a Tesla C2050 (full-rate FP64) and on a
  hypothetical half-bandwidth card.

Run:  python examples/device_explorer.py
"""

from repro.core.transition import GTX480_HEURISTIC, select_k_analytic
from repro.core.window import BufferedSlidingWindow
from repro.gpusim.device import GTX480, TESLA_C2050
from repro.gpusim.occupancy import occupancy
from repro.kernels.hybrid_gpu import GpuHybridSolver


def main() -> None:
    print(f"device: {GTX480.name}  (P = {GTX480.max_resident_threads} resident threads)\n")

    print("sliding-window occupancy per k (double precision):")
    print(f"{'k':>2} {'threads':>8} {'smem/blk':>9} {'blocks/SM':>10} {'occupancy':>10} {'limit':>10}")
    for k in range(3, 9):
        w = BufferedSlidingWindow(k=k, dtype_bytes=8)
        occ = occupancy(GTX480, w.threads_per_block, w.smem_bytes())
        print(
            f"{k:>2} {w.threads_per_block:>8} {w.smem_bytes():>9} "
            f"{occ.blocks_per_sm:>10} {occ.occupancy:>10.2f} {occ.limited_by:>10}"
        )

    print("\ntransition point: heuristic (Table III) vs analytic (Table II), N=4096:")
    print(f"{'M':>6} {'heuristic k':>12} {'analytic k':>11}")
    for m in (1, 8, 16, 64, 256, 512, 1024, 4096):
        kh = GTX480_HEURISTIC.k_for(m, 4096)
        ka = select_k_analytic(12, m, GTX480.max_resident_threads)
        print(f"{m:>6} {kh:>12} {ka:>11}")

    print("\nwhat-if: M=256, N=16384 double on three devices:")
    for dev in (GTX480, TESLA_C2050, GTX480.with_overrides(
            name="half-bandwidth GTX480", mem_bandwidth_gbs=88.7)):
        gpu = GpuHybridSolver(device=dev)
        rep = gpu.predict(256, 16384)
        stage = rep.stages[-1][2]
        print(
            f"  {dev.name:<24} {rep.total_us / 1000:7.2f} ms "
            f"(k={rep.k}, {stage.bound}-bound back-end)"
        )


if __name__ == "__main__":
    main()
