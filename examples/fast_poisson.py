#!/usr/bin/env python
"""Hockney's fast Poisson solver (the paper's ref [6]) at work.

Solves ``−∇²u = f`` on a 255×255 Dirichlet grid by sine-transforming in
x and batch-solving one tridiagonal system per mode in y — the original
1965 algorithm whose middle stage is exactly the batched workload the
ICPP paper accelerates (M = 255 systems of N = 255 here; real Poisson
grids push this into the paper's large-M regime).

Checks: the discrete residual is at machine level, and a manufactured
solution is recovered to truncation accuracy.

Run:  python examples/fast_poisson.py
"""

import numpy as np

from repro.kernels.hybrid_gpu import GpuHybridSolver
from repro.workloads.poisson_fft import poisson_dirichlet_fft, poisson_residual


def main() -> None:
    ny = nx = 255
    h = 1.0 / (nx + 1)

    # manufactured smooth solution, zero on the walls
    jj, ii = np.meshgrid(np.arange(1, ny + 1), np.arange(1, nx + 1), indexing="ij")
    X = ii * h
    Y = jj * h
    u_exact = np.sin(np.pi * X) * Y * (1 - Y) * np.exp(X)

    # f = -lap u via the same 5-point stencil (so the discrete solve is exact)
    up = np.pad(u_exact, 1)
    f = (4 * u_exact - up[1:-1, :-2] - up[1:-1, 2:]
         - up[:-2, 1:-1] - up[2:, 1:-1]) / (h * h)

    u = poisson_dirichlet_fft(f, dx=h, dy=h)
    res = poisson_residual(u, f, dx=h, dy=h)
    err = np.abs(u - u_exact).max() / np.abs(u_exact).max()
    print(f"{ny}x{nx} Dirichlet Poisson via DST + batched tridiagonal solves")
    print(f"discrete residual: {res:.2e}")
    print(f"error vs manufactured solution: {err:.2e}")
    if res > 1e-10 or err > 1e-9:
        raise SystemExit("fast Poisson example FAILED")

    gpu = GpuHybridSolver()
    rep = gpu.predict(nx, ny)
    print(
        f"\nsimulated GTX480: tridiagonal stage {rep.total_us:.0f} µs "
        f"per solve (M={nx} mode systems, k={rep.k})"
    )
    print("fast Poisson example PASSED")


if __name__ == "__main__":
    main()
