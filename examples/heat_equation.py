#!/usr/bin/env python
"""Batched 1-D heat conduction with Crank–Nicolson time stepping.

A fleet of ``M`` rods, each discretized into ``N`` cells, marches in
time with the unconditionally stable Crank–Nicolson scheme; every step
is one batched tridiagonal solve — the paper's "large M" regime where
the hybrid runs pure p-Thomas and the GPU wins big.

The script verifies physics, not just algebra: the lowest Fourier mode
of a rod with Dirichlet ends must decay like exp(-α (π/L)² t).

The CN matrix never changes — only the RHS does — so the script
prepares it once (``repro.prepare``) and every step runs the RHS-only
fast path against the stored Thomas factorization: no per-step
elimination, no per-step hashing, bitwise identical to the unprepared
solve at this shape (``k = 0``).

Run:  python examples/heat_equation.py
"""

import numpy as np

import repro
from repro.workloads.pde import (
    crank_nicolson_coefficients,
    crank_nicolson_rhs,
    crank_nicolson_system,
)


def main() -> None:
    m, n = 256, 512          # rods × cells
    length = 1.0
    alpha = 0.1
    dx = length / (n - 1)
    dt = 2e-4
    steps = 200

    # initial condition: each rod gets the fundamental sine mode with a
    # different amplitude, zero at both (Dirichlet) ends
    xgrid = np.linspace(0.0, length, n)
    amps = np.linspace(0.5, 2.0, m)[:, None]
    u = amps * np.sin(np.pi * xgrid)[None, :]

    decay = np.exp(-alpha * (np.pi / length) ** 2 * dt * steps)
    print(f"{m} rods x {n} cells, {steps} CN steps of dt={dt}")
    print(f"analytic mode decay over the run: {decay:.6f}")

    a, b, c = crank_nicolson_coefficients(m, n, alpha, dt, dx)
    step = repro.prepare(a, b, c)
    for _ in range(steps):
        u = step.solve(crank_nicolson_rhs(u, alpha, dt, dx))
    stats = repro.default_engine().stats
    print(
        f"engine: {stats.rhs_only_solves} RHS-only solves, "
        f"{stats.factorizations_built} factorization(s) "
        f"({step.nbytes / 1e6:.1f} MB), {stats.plans_built} plan(s) built"
    )

    # measure the decay of the fundamental mode per rod
    measured = (u @ np.sin(np.pi * xgrid)) / (amps[:, 0] * np.sum(np.sin(np.pi * xgrid) ** 2))
    err = np.abs(measured - decay).max()
    print(f"measured decay (worst rod):         {measured.max():.6f}")
    print(f"max |measured - analytic| = {err:.2e}")
    if err > 5e-4:
        raise SystemExit("heat equation example FAILED its physics check")

    # what this workload costs per step on the simulated GTX480: one more
    # step through the gpusim backend prices it without leaving the API
    a, b, c, d = crank_nicolson_system(u, alpha, dt, dx)
    u = repro.solve_batch(a, b, c, d, backend="gpusim")
    trace = repro.last_trace()
    print(
        f"\nsimulated GTX480: {trace.predicted_total_us:.0f} µs per CN step "
        f"(k={trace.k} -> "
        f"{'pure p-Thomas' if trace.k == 0 else 'tiled PCR + p-Thomas'})"
    )
    print("heat equation example PASSED")


if __name__ == "__main__":
    main()
