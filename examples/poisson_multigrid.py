#!/usr/bin/env python
"""Semi-coarsening multigrid with a tridiagonal line smoother (refs [9][10]).

For the anisotropic Poisson problem ``-u_xx - ε u_yy = f`` point
smoothers stall; the classic cure (Göddeke & Strzodka ran CR for
exactly this) is **line relaxation**: solve every x-line implicitly —
a batched tridiagonal solve per sweep — and coarsen only in y
(semi-coarsening).  This example runs the V-cycle and reports the
residual contraction per cycle.

Run:  python examples/poisson_multigrid.py
"""

import numpy as np

import repro

EPS = 0.1  # anisotropy: strong x-coupling


def apply_op(u: np.ndarray, hx: float, hy: float) -> np.ndarray:
    """The 5-point anisotropic operator with homogeneous Dirichlet walls."""
    out = (2.0 / hx**2 + 2.0 * EPS / hy**2) * u
    out[:, 1:] -= u[:, :-1] / hx**2
    out[:, :-1] -= u[:, 1:] / hx**2
    out[1:, :] -= EPS * u[:-1, :] / hy**2
    out[:-1, :] -= EPS * u[1:, :] / hy**2
    return out


def _solve_lines(u, f, rows, hx, hy):
    """Solve the given x-lines exactly, y-neighbours from current u."""
    ny, nx = u.shape
    rhs = f[rows].copy()
    above = rows - 1
    below = rows + 1
    valid_above = above >= 0
    valid_below = below < ny
    rhs[valid_above] += EPS * u[above[valid_above]] / hy**2
    rhs[valid_below] += EPS * u[below[valid_below]] / hy**2
    m = len(rows)
    a = np.full((m, nx), -1.0 / hx**2)
    c = np.full((m, nx), -1.0 / hx**2)
    b = np.full((m, nx), 2.0 / hx**2 + 2.0 * EPS / hy**2)
    a[:, 0] = 0.0
    c[:, -1] = 0.0
    u[rows] = repro.solve_batch(a, b, c, rhs)


def line_smooth(u, f, hx, hy, sweeps=1):
    """Zebra x-line relaxation: even lines then odd lines, each batched.

    Plain line-Jacobi does not smooth (y-oscillatory modes survive with
    amplification → 1); the red-black "zebra" ordering is the standard
    multigrid smoother for line relaxation.
    """
    u = u.copy()
    ny = u.shape[0]
    even = np.arange(0, ny, 2)
    odd = np.arange(1, ny, 2)
    for _ in range(sweeps):
        _solve_lines(u, f, even, hx, hy)
        _solve_lines(u, f, odd, hx, hy)
    return u


def restrict_y(r):
    """Full-weighting restriction in y only (semi-coarsening)."""
    return 0.25 * r[:-2:2, :] + 0.5 * r[1:-1:2, :] + 0.25 * r[2::2, :]


def prolong_y(e, ny_fine):
    """Linear interpolation in y back to the fine grid."""
    out = np.zeros((ny_fine, e.shape[1]))
    out[1:-1:2, :] = e
    out[2:-2:2, :] = 0.5 * (e[:-1, :] + e[1:, :])
    out[0, :] = 0.5 * e[0, :]
    out[-1, :] = 0.5 * e[-1, :]
    return out


def vcycle(u, f, hx, hy):
    """One semi-coarsening V-cycle with line smoothing."""
    u = line_smooth(u, f, hx, hy, sweeps=2)
    if u.shape[0] <= 3:
        return line_smooth(u, f, hx, hy, sweeps=10)
    r = f - apply_op(u, hx, hy)
    rc = restrict_y(r)
    ec = vcycle(np.zeros_like(rc), rc, hx, 2.0 * hy)
    u = u + prolong_y(ec, u.shape[0])
    return line_smooth(u, f, hx, hy, sweeps=2)


def main() -> None:
    ny = nx = 127
    hx = hy = 1.0 / (nx + 1)
    rng = np.random.default_rng(0)
    f = rng.standard_normal((ny, nx))
    u = np.zeros((ny, nx))

    r0 = np.linalg.norm(f - apply_op(u, hx, hy))
    print(f"anisotropic Poisson {ny}x{nx}, eps={EPS}, initial residual {r0:.3e}")
    rates = []
    for cycle in range(8):
        u = vcycle(u, f, hx, hy)
        r = np.linalg.norm(f - apply_op(u, hx, hy))
        rates.append(r / r0)
        print(f"V-cycle {cycle + 1}: residual {r:.3e}  (contraction {r / r0:.3f})")
        r0 = r
    avg = np.exp(np.mean(np.log(rates[2:])))
    print(f"asymptotic contraction per cycle: {avg:.3f}")
    if avg > 0.35:
        raise SystemExit("multigrid example FAILED to converge fast enough")
    print("poisson multigrid example PASSED")


if __name__ == "__main__":
    main()
