#!/usr/bin/env python
"""Quickstart: solve tridiagonal systems with every algorithm in the library.

Builds a batch of diagonally dominant systems, solves it with the
paper's hybrid (tiled PCR + p-Thomas) and with every classic algorithm,
verifies the solutions against each other, and prints the hybrid's
execution plan plus the simulated-GTX480 timing prediction.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro
from repro.core.hybrid import HybridSolver
from repro.kernels.hybrid_gpu import GpuHybridSolver
from repro.util.numerics import residual_norm
from repro.util.tridiag import BatchTridiagonal
from repro.workloads.generators import random_batch


def main() -> None:
    m, n = 64, 4096
    a, b, c, d = random_batch(m, n, seed=42)
    batch = BatchTridiagonal(a, b, c, d)
    print(f"Batch: M={m} systems, N={n} unknowns each, dtype={batch.dtype}")

    # --- one call does it: the hybrid with the paper's Table III plan ----
    x = repro.solve_batch(a, b, c, d)
    print(f"\nhybrid (auto):     residual = {residual_norm(batch, x):.2e}")

    # --- the classic algorithms agree ------------------------------------
    for name in ("thomas", "cr", "pcr", "rd"):
        xi = repro.solve_batch(a, b, c, d, algorithm=name)
        print(f"{name:<18} max diff vs hybrid = {np.abs(xi - x).max():.2e}")

    # --- what did the hybrid actually do? ---------------------------------
    solver = HybridSolver()
    solver.solve_batch(a, b, c, d)
    rep = solver.last_report
    print(
        f"\nplan: k={rep.k} ({rep.k_source}) -> {rep.subsystems} independent "
        f"subsystems for p-Thomas"
    )
    print(
        f"tiled PCR: {rep.tiling.rows_loaded} rows loaded "
        f"({rep.tiling.rows_loaded_redundant} redundant), "
        f"{rep.tiling.eliminations} eliminations, "
        f"{rep.tiling.subtiles} sliding-window rounds"
    )

    # --- and what would it cost on the paper's GTX480? --------------------
    gpu = GpuHybridSolver()
    gpu.solve_batch(a, b, c, d)
    g = gpu.last_report
    print(f"\nsimulated GTX480: {g.total_us:.0f} µs predicted")
    for name, counters, time in g.stages:
        print(
            f"  {name:<16} {time.total_s * 1e6:8.1f} µs  ({time.bound}-bound, "
            f"{counters.traffic.useful_bytes / 1e6:.1f} MB payload)"
        )


if __name__ == "__main__":
    main()
