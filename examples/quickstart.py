#!/usr/bin/env python
"""Quickstart: solve tridiagonal systems with every algorithm in the library.

Builds a batch of diagonally dominant systems, solves it with the
paper's hybrid (tiled PCR + p-Thomas) and with every classic algorithm,
verifies the solutions against each other, and shows the backend
dispatch layer at work: the per-solve trace, the cross-backend
agreement, and the simulated-GTX480 timing prediction — all through
``repro.solve_batch(..., backend=...)``.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro
from repro.util.numerics import residual_norm
from repro.util.tridiag import BatchTridiagonal
from repro.workloads.generators import random_batch


def main() -> None:
    m, n = 64, 4096
    a, b, c, d = random_batch(m, n, seed=42)
    batch = BatchTridiagonal(a, b, c, d)
    print(f"Batch: M={m} systems, N={n} unknowns each, dtype={batch.dtype}")

    # --- one call does it: the hybrid with the paper's Table III plan ----
    x = repro.solve_batch(a, b, c, d)
    print(f"\nhybrid (auto):     residual = {residual_norm(batch, x):.2e}")

    # --- every solve leaves a trace: who ran, and what it decided ---------
    trace = repro.last_trace()
    print(
        f"trace: backend={trace.backend}, k={trace.k} ({trace.k_source}), "
        f"plan cache {trace.plan_cache}, "
        f"stages {[s.name for s in trace.stages]}"
    )

    # --- the classic algorithms agree ------------------------------------
    for name in ("thomas", "cr", "pcr", "rd"):
        xi = repro.solve_batch(a, b, c, d, algorithm=name)
        print(f"{name:<18} max diff vs hybrid = {np.abs(xi - x).max():.2e}")

    # --- every backend returns the same bits ------------------------------
    for backend in ("numpy", "threaded"):
        xb = repro.solve_batch(a, b, c, d, backend=backend)
        same = "bitwise equal" if np.array_equal(xb, x) else "MISMATCH"
        print(f"backend={backend:<9} {same}")

    # --- what did the hybrid actually do? ---------------------------------
    rep = repro.default_engine().last_report
    print(
        f"\nplan: k={rep.k} ({rep.k_source}) -> {rep.subsystems} independent "
        f"subsystems for p-Thomas"
    )
    print(
        f"tiled PCR: {rep.tiling.rows_loaded} rows loaded "
        f"({rep.tiling.rows_loaded_redundant} redundant), "
        f"{rep.tiling.eliminations} eliminations, "
        f"{rep.tiling.subtiles} sliding-window rounds"
    )

    # --- and what would it cost on the paper's GTX480? --------------------
    xg = repro.solve_batch(a, b, c, d, backend="gpusim")
    g = repro.last_trace()
    print(f"\nsimulated GTX480: {g.predicted_total_us:.0f} µs predicted "
          f"(max diff vs hybrid = {np.abs(xg - x).max():.2e})")
    for s in g.stages:
        if s.predicted_us is not None:
            print(f"  {s.name:<24} {s.predicted_us:8.1f} µs predicted "
                  f"({s.seconds * 1e3:7.3f} ms measured here)")


if __name__ == "__main__":
    main()
