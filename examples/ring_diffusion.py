#!/usr/bin/env python
"""Heat diffusion on closed rings: prepared *periodic* time stepping.

A fleet of ``M`` closed loops (annular ducts / ring resonators), each
discretized into ``N`` cells with **no boundary rows** — point ``N−1``
couples back to point 0.  Crank–Nicolson stepping then needs one batched
*cyclic* tridiagonal solve per step: the Sherman–Morrison reduction
behind ``repro.solve_periodic_batch``.

The cyclic matrix never changes — only the RHS does — so the script
prepares it once (``repro.prepare(..., periodic=True)``): the engine
stores the corner-reduced core factorization together with the solved
correction vector ``q`` and the precomputed ``1/(1 + vᵀq)`` scale, and
every step runs one RHS-only sweep plus a rank-one update.

Physics checks, not just algebra:

* **mass conservation** — a periodic diffusion step has row sums 1 in
  both CN half-operators, so each ring's total mass is exact;
* **mode decay** — the Fourier mode ``sin(2πx/L)`` on the ring decays
  like ``exp(-α (2π/L)² t)``.

Run:  python examples/ring_diffusion.py
"""

import numpy as np

import repro
from repro.workloads.pde import periodic_heat_coefficients, periodic_heat_rhs


def main() -> None:
    m, n = 256, 512          # rings × cells
    length = 1.0
    alpha = 0.1
    dx = length / n          # periodic grid: n cells cover [0, L)
    dt = 2e-4
    steps = 200

    # initial condition: one full sine mode around each ring (mean 1.0
    # so every ring carries nonzero mass), different amplitude per ring
    xgrid = np.arange(n) * dx
    amps = np.linspace(0.5, 2.0, m)[:, None]
    mode = np.sin(2.0 * np.pi * xgrid / length)[None, :]
    u = 1.0 + amps * mode
    mass0 = u.sum(axis=1)

    decay = np.exp(-alpha * (2.0 * np.pi / length) ** 2 * dt * steps)
    print(f"{m} rings x {n} cells, {steps} periodic CN steps of dt={dt}")
    print(f"analytic mode decay over the run: {decay:.6f}")

    a, b, c = periodic_heat_coefficients(m, n, alpha, dt, dx)
    step = repro.prepare(a, b, c, periodic=True)
    for _ in range(steps):
        u = step.solve(periodic_heat_rhs(u, alpha, dt, dx))
    stats = repro.default_engine().stats
    print(
        f"engine: {stats.rhs_only_solves} RHS-only solves, "
        f"{stats.factorizations_built} factorization(s) "
        f"({step.nbytes / 1e6:.1f} MB), {stats.plans_built} plan(s) built"
    )

    # mass conservation: periodic CN has no boundary leakage
    mass_err = np.abs(u.sum(axis=1) / mass0 - 1.0).max()
    print(f"worst relative mass drift: {mass_err:.2e}")
    if mass_err > 1e-12:
        raise SystemExit("ring diffusion example FAILED mass conservation")

    # mode decay per ring (project the centered field onto the mode)
    measured = ((u - 1.0) @ mode[0]) / (amps[:, 0] * np.sum(mode[0] ** 2))
    err = np.abs(measured - decay).max()
    print(f"measured decay (worst ring):        {measured.max():.6f}")
    print(f"max |measured - analytic| = {err:.2e}")
    if err > 5e-4:
        raise SystemExit("ring diffusion example FAILED its physics check")

    # the same step through the public entry point: fingerprinting finds
    # the handle-seeded cyclic factorization in the engine cache, so the
    # trace shows the periodic RHS-only fast path
    d = periodic_heat_rhs(u, alpha, dt, dx)
    u = repro.solve_periodic_batch(a, b, c, d, fingerprint=True)
    trace = repro.last_trace()
    print(
        f"\nlast trace: backend={trace.backend}, periodic={trace.periodic}, "
        f"factorization={trace.factorization}, rhs_only={trace.rhs_only}"
    )
    if not (trace.periodic and trace.rhs_only):
        raise SystemExit(
            "ring diffusion example FAILED: expected a periodic "
            "RHS-only trace"
        )
    print("ring diffusion example PASSED")


if __name__ == "__main__":
    main()
