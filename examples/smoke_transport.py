#!/usr/bin/env python
"""Smoke transport in a vortex — the paper's fluid-simulation workload.

The GTC talks the paper builds on (Sakharnykh, refs [4][5]) used
tridiagonal solvers for exactly this: advect a smoke/temperature field
through a velocity field, then diffuse it implicitly with ADI — two
batched tridiagonal solve sweeps per frame.

This example rotates a smoke blob a half-turn around a vortex while it
diffuses, verifies the physics (the blob arrives at the mirrored
position; total smoke conserved within semi-Lagrangian tolerance), and
reports what the per-frame solves would cost on the simulated GTX480.

Run:  python examples/smoke_transport.py
"""

import numpy as np

from repro.kernels.hybrid_gpu import GpuHybridSolver
from repro.workloads.fluid import FluidSim


def main() -> None:
    ny = nx = 129
    frames = 100
    omega = np.pi / frames  # half turn over the run
    u, v = FluidSim.vortex(ny, nx, strength=omega)
    sim = FluidSim(u=u, v=v, alpha=2e-3, dt=1.0)

    q = np.zeros((ny, nx))
    jj, ii = np.meshgrid(np.arange(ny), np.arange(nx), indexing="ij")
    q[(jj - 64) ** 2 + (ii - 94) ** 2 <= 36] = 1.0  # blob right of centre
    total0 = q.sum()
    print(f"{ny}x{nx} grid, {frames} frames, half-turn vortex, beta={sim.beta:.3f}")
    print(f"initial smoke: {total0:.2f}, peak {q.max():.3f}")

    q = sim.run(q, steps=frames)

    cy = (q * jj).sum() / q.sum()
    cx = (q * ii).sum() / q.sum()
    print(f"final centroid: ({cy:.1f}, {cx:.1f})  [expected ≈ (64, 34)]")
    print(f"final smoke: {q.sum():.2f}, peak {q.max():.3f}")
    if abs(cy - 64) > 3 or abs(cx - 34) > 3:
        raise SystemExit("smoke transport FAILED: blob did not arrive")
    if abs(q.sum() - total0) / total0 > 0.1:
        raise SystemExit("smoke transport FAILED: mass drifted")
    if q.max() > 0.9:
        raise SystemExit("smoke transport FAILED: no visible diffusion")

    # per-frame cost on the paper's GPU: two ADI sweeps of ny systems
    gpu = GpuHybridSolver()
    rep = gpu.predict(ny, nx)
    print(
        f"\nsimulated GTX480: {2 * rep.total_us:.0f} µs per frame "
        f"(2 ADI sweeps of {ny} systems x {nx}, k={rep.k})"
    )
    print("smoke transport example PASSED")


if __name__ == "__main__":
    main()
