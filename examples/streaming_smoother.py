#!/usr/bin/env python
"""The generalized buffered sliding window — the paper's future work, live.

Section VI: "The buffered sliding window approach can also be applied
to other types of divide-and-conquer type algorithms."  This example
streams two very different pipelines through the same generic executor
(`repro.core.streaming`):

1. a k-step PCR front-end (the paper's own algorithm, re-expressed as a
   generic level pipeline) over a 1M-row system — with the cache-rows
   counter showing the bounded O(2^k) state;
2. a 6-sweep damped-Jacobi smoother over a long line — k sweeps of a
   stencil fused into one streaming pass with O(k) state, instead of k
   whole-array round trips.

Run:  python examples/streaming_smoother.py
"""

import numpy as np

from repro.core.pcr import pcr_sweep
from repro.core.streaming import StreamingPipeline, jacobi_smoother_levels, pcr_levels


def main() -> None:
    rng = np.random.default_rng(0)

    # --- 1. PCR as a generic streamed pipeline --------------------------
    n, k = 1 << 17, 6
    a = rng.standard_normal((1, n))
    c = rng.standard_normal((1, n))
    a[:, 0] = 0.0
    c[:, -1] = 0.0
    b = 4.0 + np.abs(a) + np.abs(c)
    d = rng.standard_normal((1, n))

    levels, fill = pcr_levels(k)
    pipe = StreamingPipeline(levels, fill, chunk=1 << k)
    got = pipe.run((a, b, c, d))
    ref = pcr_sweep(a, b, c, d, k)
    err = max(np.abs(g - r).max() for g, r in zip(got, ref))
    print(f"streamed {k}-step PCR over {n} rows:")
    print(f"  cache state      : {pipe.cache_rows()} rows "
          f"(2·f(k) = {2 * (2**k - 1)}) for a {n}-row system")
    print(f"  rounds           : {pipe.counters.rounds}")
    print(f"  max |stream - monolithic| = {err:.2e}")
    if err > 1e-10:
        raise SystemExit("streamed PCR FAILED to match the monolithic sweep")

    # --- 2. a fused k-sweep Jacobi smoother ------------------------------
    m, length, sweeps = 8, 1 << 16, 6
    u = rng.standard_normal((m, length))
    f = np.zeros_like(u)
    levels, fill = jacobi_smoother_levels(sweeps)
    pipe = StreamingPipeline(levels, fill, chunk=256)
    smooth, _ = pipe.run((u, f))

    # smoothness metric: energy in the upper half of the spectrum
    def rough_energy(v):
        spec = np.abs(np.fft.rfft(v, axis=1)) ** 2
        return spec[:, spec.shape[1] // 2 :].sum() / spec.sum()

    before = rough_energy(u)
    after = rough_energy(smooth)
    print(f"\nstreamed {sweeps}-sweep Jacobi over {m} lines of {length}:")
    print(f"  cache state         : {pipe.cache_rows()} rows per line batch")
    print(f"  high-frequency share: {before:.3f} -> {after:.6f}")
    if after > 0.01 * before:
        raise SystemExit("streamed smoother FAILED to smooth")
    print("\nstreaming smoother example PASSED")


if __name__ == "__main__":
    main()
