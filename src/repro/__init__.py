"""repro — reproduction of *A Scalable Tridiagonal Solver for GPUs*
(Hee-Seok Kim, Shengzhao Wu, Li-wen Chang, Wen-mei W. Hwu; ICPP 2011).

The paper's contribution is a hybrid tridiagonal solver for GPUs:
a **tiled parallel-cyclic-reduction (PCR) front-end** streams a large
system through a *buffered sliding window* in shared memory — caching
cross-tile dependencies so nothing is loaded or eliminated twice — and
splits it into ``2^k`` independent interleaved systems; a **thread-level
parallel Thomas (p-Thomas) back-end** then solves those systems with
fully coalesced memory accesses.  The transition point ``k`` adapts to
the problem shape and the hardware (Tables II-III).

This package implements:

* every algorithm involved (Thomas, CR, PCR, RD, tiled PCR with the
  sliding window, p-Thomas, the hybrid, and the published baselines it is
  compared against) — numerically real, in vectorized NumPy;
* a GPU **execution-model simulator** (:mod:`repro.gpusim`) standing in
  for the paper's GTX480: occupancy, coalescing, shared memory, and an
  analytic timing model that reproduces the shape of every figure;
* workload generators, the benchmark harness for every table and figure,
  and analysis utilities.

Quick start
-----------
>>> import numpy as np
>>> import repro
>>> n = 4096
>>> rng = np.random.default_rng(7)
>>> a = rng.standard_normal(n); a[0] = 0.0
>>> c = rng.standard_normal(n); c[-1] = 0.0
>>> b = 4.0 + np.abs(a) + np.abs(c)   # diagonally dominant
>>> d = rng.standard_normal(n)
>>> x = repro.solve(a, b, c, d)       # hybrid tiled-PCR + p-Thomas

Time-stepping loops that solve one matrix against many right-hand
sides should prepare it once (``handle = repro.prepare(a, b, c)``;
``handle.solve(d)``) — or just keep calling ``repro.solve_batch``:
the engine fingerprints coefficients and serves repeats from its
factorization cache automatically (see :mod:`repro.engine.prepared`).
"""

from repro.core import (
    GTX480_HEURISTIC,
    BlockThomasFactorization,
    CyclicFactorization,
    CyclicSingularError,
    HybridFactorization,
    PentaFactorization,
    ThomasFactorization,
    block_thomas_solve_batch,
    pentadiag_solve_batch,
    HybridReport,
    HybridSolver,
    TiledPCR,
    TransitionHeuristic,
    cr_solve,
    cr_solve_batch,
    pcr_solve,
    pcr_solve_batch,
    rd_solve,
    rd_solve_batch,
    solve,
    solve_batch,
    solve_periodic,
    solve_periodic_batch,
    thomas_solve,
    thomas_solve_batch,
)
from repro.backends import (
    Backend,
    Capabilities,
    PerStepSession,
    RouteDecision,
    SolveTrace,
    SystemDescriptor,
    bind_via,
    get_backend,
    last_trace,
    list_backends,
    register_backend,
)
from repro.autotune import (
    AdaptiveRouter,
    PerformanceModel,
    disable_adaptive_routing,
    enable_adaptive_routing,
)
from repro.engine import (
    BoundSolve,
    ExecutionEngine,
    PreparedPlan,
    SolvePlan,
    default_engine,
    prepare,
)
from repro.service import (
    ServiceConfig,
    ServiceOverloaded,
    SolveService,
    SyncSolveClient,
)
from repro.distributed import DistributedWorkerError, partitioned_solve_reference
from repro.util import BatchTridiagonal, TridiagonalSystem

__version__ = "1.5.0"

__all__ = [
    "solve",
    "solve_batch",
    "solve_periodic",
    "solve_periodic_batch",
    "HybridSolver",
    "HybridReport",
    "TiledPCR",
    "TransitionHeuristic",
    "GTX480_HEURISTIC",
    "thomas_solve",
    "thomas_solve_batch",
    "cr_solve",
    "cr_solve_batch",
    "pcr_solve",
    "pcr_solve_batch",
    "rd_solve",
    "rd_solve_batch",
    "pentadiag_solve_batch",
    "block_thomas_solve_batch",
    "ThomasFactorization",
    "HybridFactorization",
    "CyclicFactorization",
    "CyclicSingularError",
    "PentaFactorization",
    "BlockThomasFactorization",
    "SystemDescriptor",
    "ServiceConfig",
    "ServiceOverloaded",
    "SolveService",
    "SyncSolveClient",
    "DistributedWorkerError",
    "partitioned_solve_reference",
    "BoundSolve",
    "ExecutionEngine",
    "PerStepSession",
    "PreparedPlan",
    "SolvePlan",
    "bind_via",
    "default_engine",
    "prepare",
    "AdaptiveRouter",
    "Backend",
    "Capabilities",
    "PerformanceModel",
    "RouteDecision",
    "SolveTrace",
    "disable_adaptive_routing",
    "enable_adaptive_routing",
    "get_backend",
    "last_trace",
    "list_backends",
    "register_backend",
    "TridiagonalSystem",
    "BatchTridiagonal",
    "__version__",
]
