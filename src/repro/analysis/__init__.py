"""Analysis harness: figure/table reproduction and shape verification.

* :mod:`~repro.analysis.figures` — series generators for Figs. 12-14
  (model-predicted GPU and CPU curves plus the paper's reference
  numbers where the paper states them).
* :mod:`~repro.analysis.tables` — Tables I-III materialized.
* :mod:`~repro.analysis.shapes` — the qualitative assertions the
  reproduction must satisfy (who wins, crossovers, flat regions,
  linearity, monotone PCR share).
* :mod:`~repro.analysis.calibration` — model constants, their
  provenance, and anchor verification against the paper's headline
  numbers.
* :mod:`~repro.analysis.report` — markdown emission for EXPERIMENTS.md.
"""

from repro.analysis.figures import (
    figure12_series,
    figure13_series,
    figure14_bars,
    FIG12_SWEEPS,
    FIG13_SWEEPS,
    FIG14_CONFIGS,
    PAPER_FIG14_DOUBLE,
    PAPER_FIG14_SINGLE,
)
from repro.analysis.tables import table1_rows, table2_rows, table3_rows
from repro.analysis.shapes import (
    loglog_slope,
    is_linear_in,
    max_speedup,
    crossover_index,
    relative_span,
)
from repro.analysis.calibration import CalibrationAnchors, verify_anchors

__all__ = [
    "figure12_series",
    "figure13_series",
    "figure14_bars",
    "FIG12_SWEEPS",
    "FIG13_SWEEPS",
    "FIG14_CONFIGS",
    "PAPER_FIG14_DOUBLE",
    "PAPER_FIG14_SINGLE",
    "table1_rows",
    "table2_rows",
    "table3_rows",
    "loglog_slope",
    "is_linear_in",
    "max_speedup",
    "crossover_index",
    "relative_span",
    "CalibrationAnchors",
    "verify_anchors",
]
