"""Numerical-accuracy study across the algorithm family.

The paper evaluates speed only; a production solver must also answer
"how accurate, and when does it break?".  This module measures, for
every algorithm:

* **relative residual** ``‖Ax − d‖∞ / (‖A‖∞‖x‖∞ + ‖d‖∞)`` — the
  backward-error proxy (small ⇒ the computed x solves a nearby system);
* **forward error** vs an LU-with-pivoting reference;

across three difficulty axes:

* system size on the 1-D Poisson stencil (condition grows like n²);
* dominance margin (from comfortably dominant to barely nonsingular);
* precision (float32 vs float64).

The companion benchmark (``bench_accuracy.py``) regenerates the study
tables; tests pin the qualitative conclusions (Thomas/CR are backward
stable on dominant systems; PCR/RD track them within a small factor;
float32 degrades everything by the expected ~2^29 ratio).
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import solve_banded

from repro.core.cr import cr_solve_batch
from repro.core.pcr import pcr_solve_batch
from repro.core.rd import rd_solve_batch
from repro.core.solver import solve_batch
from repro.core.thomas import thomas_solve_batch
from repro.workloads.generators import poisson1d_batch, random_batch

__all__ = ["ALGORITHMS", "measure", "poisson_sweep", "dominance_sweep"]

ALGORITHMS = {
    "thomas": thomas_solve_batch,
    "cr": cr_solve_batch,
    "pcr": pcr_solve_batch,
    "rd": rd_solve_batch,
    "hybrid": lambda a, b, c, d, **kw: solve_batch(
        a, b, c, d, algorithm="hybrid", **kw
    ),
}


def _reference(a, b, c, d):
    m, n = b.shape
    out = np.empty((m, n), dtype=np.float64)
    ab = np.zeros((3, n), dtype=np.float64)
    for i in range(m):
        ab[0, 1:] = c[i, :-1]
        ab[1, :] = b[i]
        ab[2, :-1] = a[i, 1:]
        out[i] = solve_banded((1, 1), ab, d[i].astype(np.float64))
    return out


def measure(algorithm: str, a, b, c, d) -> dict:
    """Residual and forward error of one algorithm on one batch."""
    if algorithm not in ALGORITHMS:
        raise ValueError(f"unknown algorithm {algorithm!r}")
    x = ALGORITHMS[algorithm](a, b, c, d)
    a64, b64, c64, d64, x64 = (np.asarray(v, dtype=np.float64)
                               for v in (a, b, c, d, x))
    r = b64 * x64 - d64
    r[:, 1:] += a64[:, 1:] * x64[:, :-1]
    r[:, :-1] += c64[:, :-1] * x64[:, 1:]
    norm_a = np.max(np.abs(a64) + np.abs(b64) + np.abs(c64))
    scale = norm_a * np.max(np.abs(x64)) + np.max(np.abs(d64))
    residual = float(np.max(np.abs(r)) / max(scale, np.finfo(np.float64).tiny))
    ref = _reference(a64, b64, c64, d64)
    fwd = float(
        np.max(np.abs(x64 - ref)) / max(np.max(np.abs(ref)), 1e-300)
    )
    return {"algorithm": algorithm, "residual": residual, "forward_error": fwd}


def poisson_sweep(sizes=(64, 256, 1024, 4096), dtype=np.float64, m: int = 4) -> list:
    """Accuracy vs size on the weakly-dominant Poisson stencil."""
    rows = []
    for n in sizes:
        a, b, c, d = poisson1d_batch(m, n, dtype=dtype, seed=n)
        for name in ALGORITHMS:
            row = measure(name, a, b, c, d)
            row.update({"n": n, "dtype": np.dtype(dtype).name})
            rows.append(row)
    return rows


def dominance_sweep(
    margins=(2.0, 0.1, 1e-3, 1e-6), n: int = 512, dtype=np.float64, m: int = 4
) -> list:
    """Accuracy vs dominance margin (conditioning knob)."""
    rows = []
    for margin in margins:
        a, b, c, d = random_batch(m, n, dtype=dtype, seed=7, dominance=margin)
        for name in ALGORITHMS:
            row = measure(name, a, b, c, d)
            row.update({"margin": margin, "dtype": np.dtype(dtype).name})
            rows.append(row)
    return rows
