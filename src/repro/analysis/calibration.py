"""Model calibration: constants, provenance, anchor verification.

The simulator mixes two kinds of numbers:

**Published hardware figures** (not tuned): GTX480 = 15 SMs × 32 cores
at 1.401 GHz, 177.4 GB/s, 48 KiB shared / 1536 threads / 8 blocks per
SM, FP64 at 1/8 FP32 issue on GeForce Fermi; i7 975 = 4C/8T at
3.33 GHz.

**Calibrated model constants** (tuned once, here, against the paper's
headline numbers — the same "find proper values once and amortize"
workflow as the paper's own Table III):

===============================  ======  =====================================
constant                          value  anchored against
===============================  ======  =====================================
``achievable_bw_fraction``        0.65   GPU time at M=16384, N=512 (Fig. 12a)
``mem_latency_cycles``            600    flat region location (Fig. 12a)
``row_ns_fp64`` (MKL/core)        30     49× sequential speedup (Sec. IV)
``row_ns_fp32``                   26     82.5× sequential speedup (Sec. IV)
``mt_efficiency``                 0.70   8.3× multithreaded speedup (Sec. IV)
``flops_per_elim``                12     PCR stage cost at M=16 (Sec. IV text)
===============================  ======  =====================================

:func:`verify_anchors` re-derives every headline number from the model
and reports paper-vs-model; the calibration test keeps them within the
stated band so future edits cannot silently drift the reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.figures import (
    FIG12_SWEEPS,
    FIG14_CONFIGS,
    PAPER_FIG14_DOUBLE,
    figure12_series,
    figure14_bars,
)
from repro.gpusim.cpu import MklProxyModel
from repro.gpusim.device import GTX480
from repro.kernels.hybrid_gpu import GpuHybridSolver

__all__ = ["CalibrationAnchors", "Anchor", "verify_anchors"]


@dataclass(frozen=True)
class Anchor:
    """One paper-stated number the calibrated model must land near."""

    name: str
    paper: float
    model: float
    rel_band: float  # acceptable |model/paper - 1|

    @property
    def ratio(self) -> float:
        """model / paper."""
        return self.model / self.paper

    @property
    def ok(self) -> bool:
        """Within the acceptance band?"""
        return abs(self.ratio - 1.0) <= self.rel_band


@dataclass
class CalibrationAnchors:
    """The paper's headline quantities (Sections IV-V)."""

    anchors: list = field(default_factory=list)

    def add(self, name: str, paper: float, model: float, band: float) -> None:
        """Record one anchor."""
        self.anchors.append(Anchor(name, paper, model, band))

    @property
    def all_ok(self) -> bool:
        """Every anchor within its band?"""
        return all(a.ok for a in self.anchors)

    def failing(self) -> list:
        """Anchors outside their band."""
        return [a for a in self.anchors if not a.ok]


def verify_anchors() -> CalibrationAnchors:
    """Re-derive the paper's headline numbers from the calibrated model.

    Bands are generous (±50 % for speedup factors, ±60 % for absolute
    Fig. 14 milliseconds) — the reproduction contract is shape, not
    cycle accuracy — but tight enough to catch a broken model.
    """
    out = CalibrationAnchors()

    rows64 = figure12_series(512, FIG12_SWEEPS[512], dtype_bytes=8)
    out.add("Fig12a max speedup vs MKL-seq (double)", 49.0,
            max(r["speedup_seq"] for r in rows64), 0.5)
    out.add("Fig12a max speedup vs MKL-mt (double)", 8.3,
            max(r["speedup_mt"] for r in rows64), 0.5)

    rows32 = figure12_series(512, FIG12_SWEEPS[512], dtype_bytes=4)
    out.add("Sec IV max speedup vs MKL-seq (single)", 82.5,
            max(r["speedup_seq"] for r in rows32), 0.5)
    out.add("Sec IV max speedup vs MKL-mt (single)", 12.9,
            max(r["speedup_mt"] for r in rows32), 0.6)

    # Single very large system: ≈5.5× over sequential MKL (Sec. IV).
    gpu = GpuHybridSolver()
    mkl = MklProxyModel()
    n1 = 2 * 1024 * 1024
    r = gpu.predict(1, n1, 8)
    out.add("Fig13d speedup at M=1 (double)", 5.5,
            mkl.sequential_s(1, n1, 8) / r.total_s, 0.5)

    # Fig. 14(a): the ratio (who wins, by how much) is the shape claim;
    # absolute milliseconds get a wider band (the model under-prices the
    # fixed per-launch costs that dominate the smallest configuration).
    for row in figure14_bars(dtype_bytes=8):
        label = row["config"]
        out.add(f"Fig14a ours {label} (ms)",
                PAPER_FIG14_DOUBLE[label][0], row["ours_ms"], 0.75)
        out.add(f"Fig14a davidson {label} (ms)",
                PAPER_FIG14_DOUBLE[label][1], row["davidson_ms"], 0.75)
        out.add(f"Fig14a ratio davidson/ours {label}",
                row["paper_ratio"], row["ratio"], 0.5)

    return out
