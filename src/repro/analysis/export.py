"""Reproduction artifacts as data files.

``export_all`` writes every figure series, table, the calibration
anchors, the selection surface and the roofline survey as JSON under a
target directory — the machine-readable companion to EXPERIMENTS.md,
for anyone who wants to re-plot or diff the reproduction without
running Python.

Layout::

    <out>/
      manifest.json           what was written, with the library version
      fig12_n512.json …       one file per Fig. 12 panel
      fig13_m2048.json …      one file per Fig. 13 panel
      fig14_double.json / fig14_single.json
      table1.json / table2.json / table3.json
      anchors.json
      selection_map.json
      roofline.json
      accuracy_poisson.json / accuracy_dominance.json
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["export_all"]


def _write(path: Path, obj) -> None:
    path.write_text(json.dumps(obj, indent=1, sort_keys=True) + "\n")


def export_all(out_dir, *, include_accuracy: bool = True) -> list:
    """Write every reproduction artifact under ``out_dir``.

    Returns the list of file names written (also recorded in
    ``manifest.json``).
    """
    import repro
    from repro.analysis.accuracy import dominance_sweep, poisson_sweep
    from repro.analysis.calibration import verify_anchors
    from repro.analysis.figures import (
        FIG12_SWEEPS,
        FIG13_SWEEPS,
        figure12_series,
        figure13_series,
        figure14_bars,
    )
    from repro.analysis.roofline import kernel_survey
    from repro.analysis.selection_map import heuristic_regret, selection_map
    from repro.analysis.tables import table1_rows, table2_rows, table3_rows
    from repro.gpusim.device import GTX480

    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written = []

    def emit(name: str, obj) -> None:
        _write(out / name, obj)
        written.append(name)

    for n in FIG12_SWEEPS:
        emit(f"fig12_n{n}.json", figure12_series(n))
    for m in FIG13_SWEEPS:
        emit(f"fig13_m{m}.json", figure13_series(m))
    emit("fig14_double.json", figure14_bars(8))
    emit("fig14_single.json", figure14_bars(4))

    emit("table1.json", table1_rows())
    emit("table2.json", table2_rows(12, 256, GTX480.max_resident_threads))
    emit("table3.json", table3_rows())

    anchors = verify_anchors()
    emit(
        "anchors.json",
        [
            {"name": a.name, "paper": a.paper, "model": a.model,
             "ratio": a.ratio, "ok": a.ok}
            for a in anchors.anchors
        ],
    )

    cells = selection_map()
    emit(
        "selection_map.json",
        {
            "cells": [
                {"M": c.m, "N": c.n, "best_k": c.best_k,
                 "table3_k": c.heuristic_k, "regret": c.regret}
                for c in cells
            ],
            "summary": heuristic_regret(cells),
        },
    )

    emit(
        "roofline.json",
        [
            {"kernel": p.name, "intensity": p.intensity,
             "attainable_gflops": p.attainable_gflops, "bound": p.bound}
            for p in kernel_survey()
        ],
    )

    if include_accuracy:
        emit("accuracy_poisson.json", poisson_sweep())
        emit("accuracy_dominance.json", dominance_sweep())

    _write(
        out / "manifest.json",
        {
            "library": "repro",
            "version": repro.__version__,
            "paper": "Kim, Wu, Chang, Hwu — A Scalable Tridiagonal Solver "
                     "for GPUs (ICPP 2011)",
            "files": sorted(written),
            "all_anchors_ok": anchors.all_ok,
        },
    )
    written.append("manifest.json")
    return written
