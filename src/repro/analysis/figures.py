"""Series generators for the paper's evaluation figures.

Each generator returns a list of plain dict rows — one per plotted
point — with the simulated-GTX480 prediction and the calibrated MKL
proxies, in the exact sweep the paper plots.  The benchmark files print
these next to the paper's reference values and assert the shape claims;
EXPERIMENTS.md is generated from the same rows.

Sweeps (from Section IV):

* **Fig. 12** — execution time vs number of systems ``M`` at fixed
  ``N ∈ {512, 2048, 16384}``, double precision, three curves (MKL
  sequential / MKL multithreaded / ours).
* **Fig. 13** — execution time vs system size ``N`` at fixed
  ``M ∈ {2048, 256, 16, 1}``.
* **Fig. 14** — ours vs our-implementation-of-Davidson on
  1K×1K, 2K×2K, 4K×4K and 1×2M, double (a) and single (b); for single
  precision the paper also quotes Davidson et al.'s own reported
  numbers, included here as ``davidson_reported_ms``.
"""

from __future__ import annotations

from repro.baselines.davidson import DavidsonSolver
from repro.gpusim.cpu import MklProxyModel
from repro.gpusim.device import GTX480, DeviceSpec
from repro.kernels.hybrid_gpu import GpuHybridSolver

__all__ = [
    "FIG12_SWEEPS",
    "FIG13_SWEEPS",
    "FIG14_CONFIGS",
    "PAPER_FIG14_DOUBLE",
    "PAPER_FIG14_SINGLE",
    "figure12_series",
    "figure13_series",
    "figure14_bars",
]

#: Fig. 12 panels: N → the M sweep the paper plots.
FIG12_SWEEPS = {
    512: (64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384),
    2048: (64, 128, 256, 512, 1024, 2048, 4096),
    16384: (64, 128, 256, 512, 1024),
}

#: Fig. 13 panels: M → the N sweep the paper plots.
FIG13_SWEEPS = {
    2048: (256, 512, 1024, 2048, 4096, 8192),
    256: (4096, 8192, 16384, 32768),
    16: (16384, 32768, 65536, 131072),
    1: (512 * 1024, 2 * 1024 * 1024, 8 * 1024 * 1024),
}

#: Fig. 14 configurations: label → (M, N).
FIG14_CONFIGS = {
    "1Kx1K": (1024, 1024),
    "2Kx2K": (2048, 2048),
    "4Kx4K": (4096, 4096),
    "1x2M": (1, 2 * 1024 * 1024),
}

#: Paper Fig. 14(a): label → (ours_ms, davidson_ms), double precision.
PAPER_FIG14_DOUBLE = {
    "1Kx1K": (2.12, 4.87),
    "2Kx2K": (4.72, 22.76),
    "4Kx4K": (11.05, 104.39),
    "1x2M": (13.93, 38.22),
}

#: Paper Fig. 14(b): label → (ours, our-impl-of-Davidson, Davidson-reported).
PAPER_FIG14_SINGLE = {
    "1Kx1K": (1.02, 1.08, 0.96),
    "2Kx2K": (2.27, 5.35, 5.52),
    "4Kx4K": (5.60, 25.55, 27.92),
    "1x2M": (4.96, 9.69, 50.4),
}


def figure12_series(
    n: int,
    m_values=None,
    dtype_bytes: int = 8,
    device: DeviceSpec = GTX480,
) -> list:
    """Rows for one Fig. 12 panel (fixed N, sweep M)."""
    if m_values is None:
        m_values = FIG12_SWEEPS[n]
    mkl = MklProxyModel()
    gpu = GpuHybridSolver(device=device)
    rows = []
    for m in m_values:
        report = gpu.predict(m, n, dtype_bytes)
        seq = mkl.sequential_s(m, n, dtype_bytes)
        mt = mkl.multithreaded_s(m, n, dtype_bytes)
        rows.append(
            {
                "M": m,
                "N": n,
                "mkl_seq_us": seq * 1e6,
                "mkl_mt_us": mt * 1e6,
                "ours_us": report.total_us,
                "k": report.k,
                "windows": report.n_windows,
                "speedup_seq": seq * 1e6 / report.total_us,
                "speedup_mt": mt * 1e6 / report.total_us,
            }
        )
    return rows


def figure13_series(
    m: int,
    n_values=None,
    dtype_bytes: int = 8,
    device: DeviceSpec = GTX480,
) -> list:
    """Rows for one Fig. 13 panel (fixed M, sweep N)."""
    if n_values is None:
        n_values = FIG13_SWEEPS[m]
    mkl = MklProxyModel()
    gpu = GpuHybridSolver(device=device)
    rows = []
    for n in n_values:
        report = gpu.predict(m, n, dtype_bytes)
        seq = mkl.sequential_s(m, n, dtype_bytes)
        mt = mkl.multithreaded_s(m, n, dtype_bytes)
        rows.append(
            {
                "M": m,
                "N": n,
                "mkl_seq_ms": seq * 1e3,
                "mkl_mt_ms": mt * 1e3,
                "ours_ms": report.total_s * 1e3,
                "k": report.k,
                "windows": report.n_windows,
                "pcr_fraction": report.pcr_fraction,
                "speedup_seq": seq / report.total_s,
                "speedup_mt": mt / report.total_s,
            }
        )
    return rows


def figure14_bars(dtype_bytes: int = 8, device: DeviceSpec = GTX480) -> list:
    """Rows for Fig. 14: ours vs Davidson, model-predicted + paper values."""
    gpu = GpuHybridSolver(device=device)
    dav = DavidsonSolver(device=device)
    paper = PAPER_FIG14_DOUBLE if dtype_bytes == 8 else PAPER_FIG14_SINGLE
    rows = []
    for label, (m, n) in FIG14_CONFIGS.items():
        ours = gpu.predict(m, n, dtype_bytes).total_s * 1e3
        theirs = dav.predict_seconds(m, n, dtype_bytes) * 1e3
        ref = paper[label]
        row = {
            "config": label,
            "M": m,
            "N": n,
            "ours_ms": ours,
            "davidson_ms": theirs,
            "ratio": theirs / ours,
            "paper_ours_ms": ref[0],
            "paper_davidson_ms": ref[1],
            "paper_ratio": ref[1] / ref[0],
        }
        if dtype_bytes == 4:
            row["davidson_reported_ms"] = ref[2]
        rows.append(row)
    return rows
