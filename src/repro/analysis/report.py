"""Markdown emission for EXPERIMENTS.md.

``python -m repro.analysis.report`` regenerates the full
paper-vs-model experiment record (every figure panel, every table, the
anchor verification) as markdown on stdout; the repository's
EXPERIMENTS.md is produced exactly this way, so it can never drift from
the implementation.
"""

from __future__ import annotations

import sys

from repro.analysis.calibration import verify_anchors
from repro.analysis.figures import (
    FIG12_SWEEPS,
    FIG13_SWEEPS,
    figure12_series,
    figure13_series,
    figure14_bars,
)
from repro.analysis.tables import table1_rows, table3_rows

__all__ = ["markdown_table", "trace_markdown", "experiments_markdown", "main"]


def markdown_table(rows: list, columns: list, fmt: dict | None = None) -> str:
    """Render dict rows as a GitHub markdown table.

    ``columns`` is a list of ``(key, header)``; ``fmt`` maps keys to
    format specs (default ``g`` for floats).
    """
    fmt = fmt or {}

    def cell(row, key):
        v = row.get(key)
        if v is None:
            return "—"
        if isinstance(v, float):
            return format(v, fmt.get(key, ".3g"))
        return str(v)

    head = "| " + " | ".join(h for _, h in columns) + " |"
    sep = "|" + "|".join("---" for _ in columns) + "|"
    body = [
        "| " + " | ".join(cell(r, k) for k, _ in columns) + " |" for r in rows
    ]
    return "\n".join([head, sep, *body])


def trace_markdown(trace) -> str:
    """Render one :class:`~repro.backends.trace.SolveTrace` as markdown.

    Used by the CLI's ``--trace`` flag: chosen backend, frozen plan,
    plan-cache outcome, then the per-stage timings — with the gpusim
    device-model prediction in its own column when one exists.
    """
    info = trace.describe()
    lines = [
        f"backend: {info['backend']}"
        + ("  [periodic]" if info.get("periodic") else "")
        + (
            f"  [{info['system']}]"
            if info.get("system", "tridiagonal") != "tridiagonal"
            else ""
        )
        + f"  (M={info['m']}, N={info['n']}, {info['dtype']})",
        f"plan: k={info['k']} ({info['k_source']}), fuse={info['fuse']}, "
        f"windows={info['n_windows']}, workers={info['workers']}, "
        + (
            f"ranks={info['ranks']}, "
            if info.get("ranks", 1) and info["ranks"] > 1
            else ""
        )
        + f"plan cache: {info['plan_cache']}",
        f"factorization: {info['factorization']}"
        + ("  (RHS-only fast path)" if info["rhs_only"] else ""),
    ]
    decision = info.get("decision")
    if decision:
        line = f"routing: {decision['router']} -> {decision['chosen']}"
        if decision.get("model") not in (None, "", "n/a"):
            line += f"  [model {decision['model']}]"
        if decision.get("explore"):
            line += "  [explore]"
        if decision.get("reason"):
            line += f"  ({decision['reason']})"
        lines.append(line)
    lines.append("")
    cols = [("name", "stage"), ("ms", "measured (ms)")]
    if any(s["predicted_us"] is not None for s in info["stages"]):
        cols.append(("predicted_us", "predicted (us)"))
    lines.append(
        markdown_table(
            info["stages"], cols, fmt={"ms": ".4f", "predicted_us": ".1f"}
        )
    )
    total = f"total: {info['total_ms']:.4f} ms"
    if info["predicted_total_us"] is not None:
        total += (
            f"  |  device-model prediction: {info['predicted_total_us']:.1f} us"
        )
    lines += ["", total]
    return "\n".join(lines)


def _selection_section() -> str:
    from repro.analysis.selection_map import heuristic_regret, selection_map

    cells = selection_map()
    stats = heuristic_regret(cells)
    rows = [
        {
            "M": c.m,
            "N": c.n,
            "best_k": c.best_k,
            "table3_k": c.heuristic_k,
            "regret": c.regret,
        }
        for c in cells
        if c.n in (1024, 16384)
    ]
    table = markdown_table(
        rows,
        [("M", "M"), ("N", "N"), ("best_k", "model-optimal k"),
         ("table3_k", "Table III k"), ("regret", "regret")],
        fmt={"regret": ".3f"},
    )
    summary = (
        f"Heuristic regret over the full grid: worst {stats['worst']:.2f}, "
        f"median {stats['median']:.2f}, "
        f"{stats['exact_matches'] * 100:.0f} % of cells exactly optimal."
    )
    return table + "\n\n" + summary


def _roofline_section() -> str:
    from repro.analysis.roofline import kernel_survey, ridge_intensity
    from repro.gpusim.device import GTX480

    rows = [
        {
            "kernel": p.name,
            "AI": p.intensity,
            "attainable_gflops": p.attainable_gflops,
            "bound": p.bound,
        }
        for p in kernel_survey()
    ]
    table = markdown_table(
        rows,
        [("kernel", "kernel"), ("AI", "flops/byte"),
         ("attainable_gflops", "attainable GF/s"), ("bound", "bound")],
        fmt={"AI": ".3f", "attainable_gflops": ".1f"},
    )
    return table + f"\n\nfp64 ridge point: {ridge_intensity(GTX480, 8):.2f} flops/byte."


def experiments_markdown() -> str:
    """The full EXPERIMENTS.md body."""
    parts = [
        "# EXPERIMENTS — paper vs. reproduction",
        "",
        "Generated by `python -m repro.analysis.report`.  GPU times are the",
        "calibrated GTX480 execution-model prediction (this environment has no",
        "GPU — see DESIGN.md §2); CPU times are the calibrated i7-975 MKL",
        "proxy.  Numeric correctness of every configuration is established",
        "separately by the test suite on scaled-down instances.",
        "",
        "## Calibration anchors (paper headline numbers)",
        "",
    ]
    anchors = verify_anchors()
    parts.append(
        markdown_table(
            [
                {
                    "name": a.name,
                    "paper": a.paper,
                    "model": a.model,
                    "model/paper": a.ratio,
                    "ok": "yes" if a.ok else "NO",
                }
                for a in anchors.anchors
            ],
            [
                ("name", "anchor"),
                ("paper", "paper"),
                ("model", "model"),
                ("model/paper", "model/paper"),
                ("ok", "within band"),
            ],
        )
    )

    cols12 = [
        ("M", "M"),
        ("mkl_seq_us", "MKL seq (µs)"),
        ("mkl_mt_us", "MKL mt (µs)"),
        ("ours_us", "ours (µs)"),
        ("k", "k"),
        ("windows", "W"),
        ("speedup_seq", "×seq"),
        ("speedup_mt", "×mt"),
    ]
    for n in FIG12_SWEEPS:
        parts += [
            "",
            f"## Figure 12 ({'abc'[list(FIG12_SWEEPS).index(n)]}): N = {n}, "
            "double precision, vary M",
            "",
            markdown_table(figure12_series(n), cols12),
        ]

    cols13 = [
        ("N", "N"),
        ("mkl_seq_ms", "MKL seq (ms)"),
        ("mkl_mt_ms", "MKL mt (ms)"),
        ("ours_ms", "ours (ms)"),
        ("k", "k"),
        ("windows", "W"),
        ("pcr_fraction", "PCR share"),
        ("speedup_seq", "×seq"),
        ("speedup_mt", "×mt"),
    ]
    for m in FIG13_SWEEPS:
        parts += [
            "",
            f"## Figure 13 ({'abcd'[list(FIG13_SWEEPS).index(m)]}): M = {m}, "
            "double precision, vary N",
            "",
            markdown_table(figure13_series(m), cols13),
        ]

    cols14 = [
        ("config", "config"),
        ("ours_ms", "ours (ms)"),
        ("paper_ours_ms", "paper ours"),
        ("davidson_ms", "Davidson (ms)"),
        ("paper_davidson_ms", "paper Davidson"),
        ("ratio", "ratio"),
        ("paper_ratio", "paper ratio"),
    ]
    parts += [
        "",
        "## Figure 14(a): ours vs Davidson et al., double precision",
        "",
        markdown_table(figure14_bars(8), cols14),
        "",
        "## Figure 14(b): ours vs Davidson et al., single precision",
        "",
        markdown_table(
            figure14_bars(4),
            cols14 + [("davidson_reported_ms", "Davidson reported")],
        ),
    ]

    parts += [
        "",
        "## Table I: buffered sliding window properties (c = 1)",
        "",
        markdown_table(
            table1_rows(),
            [
                ("k", "k"),
                ("subtile", "sub-tile 2^k"),
                ("cache_capacity", "cache 3·f(k)"),
                ("cache_bound_3x2k", "bound 3·2^k"),
                ("threads_per_block", "threads"),
                ("elim_per_subtile", "elim/sub-tile"),
                ("smem_bytes_fp64", "smem bytes (fp64)"),
            ],
        ),
        "",
        "## Table III: transition heuristic (GTX480)",
        "",
        markdown_table(
            table3_rows(),
            [
                ("m_low", "M ≥"),
                ("m_high", "M <"),
                ("k", "k"),
                ("tile", "tile 2^k"),
            ],
        ),
        "",
        "## Extension: algorithm-selection surface (model optimum vs Table III)",
        "",
        _selection_section(),
        "",
        "## Extension: roofline survey (M=256, N=16384, k=6, fp64)",
        "",
        _roofline_section(),
        "",
        "## Known divergences",
        "",
        "* **Tiled-PCR runtime share (Fig. 13 text).**  The paper quotes the",
        "  tiled-PCR portion of total execution time as 6.25 % (M=256),",
        "  36.2 % (M=16) and ≈55 % (M=1).  Our model reports the share of the",
        "  *unfused* two-kernel pipeline, where the PCR stage carries its own",
        "  full load/store traffic — that attribution yields larger shares at",
        "  M=256/16 (≈60 %) and a smaller one at M=1 (≈25 %).  The qualitative",
        "  claim preserved (and asserted in the benchmarks): the share is 0",
        "  above the M=1024 transition and substantial (>10 %) below it.",
        "* **Fig. 13(a) speedups at M=2048.**  The paper reports up to 5×/30×",
        "  (mt/seq) for this panel; the calibrated model gives ≈8.6×/48× —",
        "  i.e. the same ratios as the N=512 panel, because the linear",
        "  CPU model has no N-dependence in its per-row cost.  Within the",
        "  'rough factor' band but noted.",
        "* **Fig. 14 smallest configuration (1K×1K).**  Both bars come out",
        "  ≈2× faster than the paper's absolute milliseconds (the model",
        "  under-prices fixed per-launch overheads that dominate small",
        "  problems); the ours-vs-Davidson *ratio* (1.7× vs paper 2.3×)",
        "  is within its band.",
    ]
    return "\n".join(parts) + "\n"


def main() -> int:
    """CLI entry point: print EXPERIMENTS.md body to stdout."""
    sys.stdout.write(experiments_markdown())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
