"""Roofline analysis of the solver kernels.

The roofline model locates each kernel by its **arithmetic intensity**
(FLOPs per byte of bus traffic) against the device's two ceilings:
peak arithmetic throughput and peak memory bandwidth.  Attainable
performance is ``min(peak_flops, AI × bandwidth)``; the ridge point
``peak_flops / bandwidth`` separates memory-bound from compute-bound.

For the paper's kernels the picture explains the design:

* p-Thomas moves ~9 values per row against ~2 row-reductions — AI ≈ 0.33
  flops/byte in fp64, half the GTX480's fp64 ridge (~0.73) and 1/16 of
  its fp32 ridge: memory-bound, so *coalescing* (not arithmetic) is
  everything, which is why the interleaved layout matters so much;
* tiled PCR does k reductions per loaded row — its AI grows with k,
  crossing the fp64 ridge around k ≈ 4 on GeForce Fermi (1/8-rate
  fp64), which is why the PCR stage shows up compute-bound in the
  timing model for large k;
* kernel fusion raises the hybrid's overall AI by deleting the
  intermediate traffic — visible directly in this module's numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.counters import KernelCounters
from repro.gpusim.device import DeviceSpec, GTX480

__all__ = ["RooflinePoint", "roofline_point", "ridge_intensity", "kernel_survey"]


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel's position on a device's roofline."""

    name: str
    intensity: float  # flops / bus byte
    attainable_gflops: float
    peak_gflops: float
    bandwidth_gbs: float
    bound: str  # "memory" | "compute"

    @property
    def efficiency_ceiling(self) -> float:
        """Attainable / peak — what fraction of peak this AI permits."""
        return self.attainable_gflops / self.peak_gflops


def ridge_intensity(device: DeviceSpec, dtype_bytes: int) -> float:
    """The device's ridge point (flops/byte) for a precision."""
    clock_hz = device.clock_ghz * 1e9
    peak = device.sm_count * device.flops_per_cycle_per_sm(dtype_bytes) * clock_hz
    return peak / (device.effective_bandwidth_gbs() * 1e9)


def roofline_point(
    counters: KernelCounters,
    dtype_bytes: int,
    device: DeviceSpec = GTX480,
    flops_per_elim: float = 12.0,
) -> RooflinePoint:
    """Place a kernel ledger on the device roofline."""
    flops = counters.flops or counters.eliminations * flops_per_elim
    bus = counters.traffic.bus_bytes
    if bus <= 0:
        raise ValueError(f"kernel {counters.name!r} reports no bus traffic")
    ai = flops / bus
    clock_hz = device.clock_ghz * 1e9
    peak = device.sm_count * device.flops_per_cycle_per_sm(dtype_bytes) * clock_hz
    bw = device.effective_bandwidth_gbs() * 1e9
    attainable = min(peak, ai * bw)
    return RooflinePoint(
        name=counters.name,
        intensity=ai,
        attainable_gflops=attainable / 1e9,
        peak_gflops=peak / 1e9,
        bandwidth_gbs=bw / 1e9,
        bound="memory" if ai < ridge_intensity(device, dtype_bytes) else "compute",
    )


def kernel_survey(
    m: int = 256, n: int = 16384, k: int = 6,
    dtype_bytes: int = 8, device: DeviceSpec = GTX480,
) -> list:
    """Roofline points for the paper's kernel family at one problem shape."""
    from repro.core.layout import Layout
    from repro.kernels.fused_kernel import fused_hybrid_counters
    from repro.kernels.pthomas_kernel import pthomas_counters
    from repro.kernels.tiled_pcr_kernel import tiled_pcr_counters

    g = 1 << k
    kernels = [
        pthomas_counters(m * g, -(-n // g), dtype_bytes, device=device),
        pthomas_counters(
            m * g, -(-n // g), dtype_bytes, device=device,
            layout=Layout.CONTIGUOUS,
        ),
        tiled_pcr_counters(m, n, k, dtype_bytes, device=device),
        fused_hybrid_counters(m, n, k, dtype_bytes, device=device),
    ]
    names = [
        "p-Thomas (interleaved)",
        "p-Thomas (contiguous)",
        f"tiled PCR (k={k})",
        f"fused hybrid (k={k})",
    ]
    out = []
    for counters, name in zip(kernels, names):
        pt = roofline_point(counters, dtype_bytes, device=device)
        out.append(
            RooflinePoint(
                name=name,
                intensity=pt.intensity,
                attainable_gflops=pt.attainable_gflops,
                peak_gflops=pt.peak_gflops,
                bandwidth_gbs=pt.bandwidth_gbs,
                bound=pt.bound,
            )
        )
    return out
