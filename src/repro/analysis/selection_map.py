"""The algorithm-selection map: best k over the whole (M, N) plane.

Section III-D's premise — "one single algorithm cannot cope with all
combinations of hardware and input sizes" — implies a decision
*surface*, of which Table III is a one-dimensional slice (M only).
This module computes the full surface on the device model: for every
``(M, N)`` cell, sweep ``k`` and record the argmin of the predicted
hybrid time.  The result shows

* the ``k = 0`` plateau at large M (p-Thomas alone saturates the GPU);
* rising k ridges as M shrinks (PCR must manufacture parallelism);
* the shared-memory ceiling clipping k on small-smem devices;

and lets us *score the paper's heuristic*: how much slower than the
per-cell optimum is the Table III choice across the plane?  (Answer on
the GTX480 model: within ~25 % almost everywhere — the empirical table
was well tuned.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.transition import GTX480_HEURISTIC, TransitionHeuristic, clamp_k
from repro.core.window import max_k_for_shared_memory
from repro.gpusim.device import DeviceSpec, GTX480
from repro.gpusim.timing import GpuTimingModel
from repro.kernels.pthomas_kernel import pthomas_counters
from repro.kernels.tiled_pcr_kernel import tiled_pcr_counters

__all__ = ["SelectionCell", "selection_map", "heuristic_regret"]


@dataclass(frozen=True)
class SelectionCell:
    """One (M, N) cell of the selection surface."""

    m: int
    n: int
    best_k: int
    best_time_s: float
    heuristic_k: int
    heuristic_time_s: float

    @property
    def regret(self) -> float:
        """heuristic time / optimal time (≥ 1; 1 = heuristic optimal)."""
        return self.heuristic_time_s / self.best_time_s


def _time_at_k(m: int, n: int, k: int, dtype_bytes: int,
               device: DeviceSpec) -> float:
    model = GpuTimingModel(device)
    g = 1 << k
    try:
        total = 0.0
        if k > 0:
            total += model.time(
                tiled_pcr_counters(m, n, k, dtype_bytes, device=device),
                dtype_bytes,
            ).total_s
        total += model.time(
            pthomas_counters(m * g, -(-n // g), dtype_bytes, device=device),
            dtype_bytes,
        ).total_s
        return total
    except ValueError:
        return float("inf")


def selection_map(
    m_values=(1, 4, 16, 64, 256, 1024, 4096, 16384),
    n_values=(256, 1024, 4096, 16384, 65536),
    dtype_bytes: int = 8,
    device: DeviceSpec = GTX480,
    heuristic: TransitionHeuristic = GTX480_HEURISTIC,
) -> list:
    """Compute the selection surface over an (M, N) grid."""
    k_cap = max_k_for_shared_memory(
        device.max_shared_mem_per_block, dtype_bytes=dtype_bytes
    )
    cells = []
    for m in m_values:
        for n in n_values:
            k_max = min(k_cap, clamp_k(k_cap, n) if n > 2 else 0)
            times = {
                k: _time_at_k(m, n, k, dtype_bytes, device)
                for k in range(0, max(k_max, 0) + 1)
            }
            best_k = min(times, key=times.get)
            kh = min(heuristic.k_for(m, n), k_cap)
            cells.append(
                SelectionCell(
                    m=m,
                    n=n,
                    best_k=best_k,
                    best_time_s=times[best_k],
                    heuristic_k=kh,
                    heuristic_time_s=times.get(
                        kh, _time_at_k(m, n, kh, dtype_bytes, device)
                    ),
                )
            )
    return cells


def heuristic_regret(cells) -> dict:
    """Summary statistics of the heuristic's regret over a surface."""
    regrets = [c.regret for c in cells]
    regrets.sort()
    return {
        "worst": regrets[-1],
        "median": regrets[len(regrets) // 2],
        "cells_within_25pct": sum(1 for r in regrets if r <= 1.25) / len(regrets),
        "exact_matches": sum(1 for c in cells if c.best_k == c.heuristic_k)
        / len(cells),
    }
