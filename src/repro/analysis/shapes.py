"""Shape assertions: the qualitative claims a reproduction must satisfy.

"You are not expected to match absolute numbers … but the shape — who
wins, by roughly what factor, where crossovers fall — should hold."
These helpers turn the figure rows into checkable statements:

* CPU curves are linear in the swept variable (log-log slope ≈ 1);
* the GPU curve is sub-linear below saturation and linear after;
* crossovers (first sweep point where one curve beats another);
* headline speedup factors within a tolerance band.
"""

from __future__ import annotations

import math

__all__ = [
    "loglog_slope",
    "is_linear_in",
    "max_speedup",
    "crossover_index",
    "relative_span",
]


def loglog_slope(xs, ys) -> float:
    """Least-squares slope of log(y) against log(x).

    Slope 1 ⇒ proportional growth; ~0 ⇒ flat.
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two matching points")
    lx = [math.log(x) for x in xs]
    ly = [math.log(y) for y in ys]
    n = len(lx)
    mx = sum(lx) / n
    my = sum(ly) / n
    sxx = sum((v - mx) ** 2 for v in lx)
    sxy = sum((u - mx) * (v - my) for u, v in zip(lx, ly))
    if sxx == 0:
        raise ValueError("degenerate x values")
    return sxy / sxx


def is_linear_in(xs, ys, tol: float = 0.15) -> bool:
    """True if the curve grows ~proportionally (slope within tol of 1)."""
    return abs(loglog_slope(xs, ys) - 1.0) <= tol


def max_speedup(rows, num_key: str, den_key: str) -> float:
    """Largest ratio ``row[num_key] / row[den_key]`` across rows."""
    if not rows:
        raise ValueError("no rows")
    return max(r[num_key] / r[den_key] for r in rows)


def crossover_index(rows, a_key: str, b_key: str) -> int | None:
    """Index of the first row where ``a < b`` (a starts winning); None if never."""
    for i, r in enumerate(rows):
        if r[a_key] < r[b_key]:
            return i
    return None


def relative_span(ys) -> float:
    """max/min of a series — small values indicate a flat region."""
    lo = min(ys)
    if lo <= 0:
        raise ValueError("non-positive values")
    return max(ys) / lo
