"""The paper's Tables I-III, materialized from the implementation.

Each function evaluates the *implemented* quantities so the tests can
assert they equal the paper's closed forms — the tables are outputs of
the code, not transcriptions.
"""

from __future__ import annotations

from repro.core.cost_model import (
    f_redundant_loads,
    hybrid_cost,
    pcr_cost,
    thomas_cost,
)
from repro.core.transition import GTX480_HEURISTIC
from repro.core.window import BufferedSlidingWindow

__all__ = ["table1_rows", "table2_rows", "table3_rows"]


def table1_rows(k_values=(1, 2, 3, 4, 5, 6, 7, 8), c: int = 1) -> list:
    """Table I: buffered-sliding-window properties per k."""
    rows = []
    for k in k_values:
        w = BufferedSlidingWindow(k=k, c=c)
        rows.append(
            {
                "k": k,
                "c": c,
                "subtile": w.subtile,
                "cache_capacity": w.cache_capacity,
                "cache_bound_3x2k": 3 * 2**k,
                "threads_per_block": w.threads_per_block,
                "elim_per_thread": w.elim_steps_per_thread,
                "elim_per_subtile": w.elim_steps_per_subtile,
                "smem_bytes_fp64": w.smem_bytes(),
                "f_k": f_redundant_loads(k),
            }
        )
    return rows


def table2_rows(n_log2: int, m: int, p: int, k_values=(0, 2, 4, 6, 8)) -> list:
    """Table II: elimination-step costs of Thomas / PCR / k-step hybrid."""
    rows = [
        {
            "algorithm": "Thomas",
            "regime": "M > P" if m > p else "M <= P",
            "cost": thomas_cost(n_log2, m, p),
        },
        {
            "algorithm": "PCR",
            "regime": "any",
            "cost": pcr_cost(n_log2, m, p),
        },
    ]
    for k in k_values:
        if k > n_log2:
            continue
        rows.append(
            {
                "algorithm": f"hybrid(k={k})",
                "regime": (
                    "M > P"
                    if m > p
                    else ("2^k M > P" if 2**k * m > p else "2^k M <= P")
                ),
                "cost": hybrid_cost(n_log2, m, p, k),
            }
        )
    return rows


def table3_rows() -> list:
    """Table III: the GTX480 heuristic (M range → k, tile size)."""
    h = GTX480_HEURISTIC
    bounds = (1,) + h.thresholds
    rows = []
    for i, k in enumerate(h.ks):
        lo = bounds[i]
        hi = h.thresholds[i] if i < len(h.thresholds) else None
        rows.append(
            {
                "m_low": lo,
                "m_high": hi,  # exclusive; None = unbounded
                "k": k,
                "tile": 2**k,
            }
        )
    return rows
