"""Vendor-style entry points: familiar signatures for porting users.

Production users arrive from cuSPARSE (``gtsv2StridedBatch``,
``gtsv2_nopivot``) or LAPACK (``dgtsv``); this module offers the same
call shapes on top of the hybrid solver so a port is a one-line change.

All functions are thin adapters: they reshape/convert the vendor layout
to the library's padded ``(M, N)`` convention, call
:func:`repro.solve_batch`, and return results in the vendor's layout.
Inputs may use any memory layout — Fortran-ordered, transposed, or
otherwise strided arrays are handled by value (contiguous copies are
made where the solver needs them, never a silent reinterpretation).
Each adapter accepts ``backend=`` and forwards it to the backend
registry (:mod:`repro.backends`), so vendor-shaped calls get the same
dispatch and :class:`~repro.backends.trace.SolveTrace` instrumentation
as native ones — including the coefficient-fingerprint factorization
cache: a time-stepping loop calling ``gtsv_strided_batch`` with fixed
diagonals stops re-eliminating after its second step (``fingerprint=``
forwards the tri-state; see :func:`repro.solve_batch`).
"""

from __future__ import annotations

import numpy as np

from repro.core.solver import solve_batch

__all__ = [
    "gpsv_batch",
    "gtsv",
    "gtsv_block_batch",
    "gtsv_cyclic",
    "gtsv_nopivot",
    "gtsv_strided_batch",
]

_FLOATS = (np.dtype(np.float32), np.dtype(np.float64))


def _solve_dtype(*arrays) -> np.dtype:
    """The dtype a solve of these inputs produces (mirrors validation)."""
    dtype = np.result_type(*arrays)
    return dtype if dtype in _FLOATS else np.dtype(np.float64)


def gtsv(
    dl,
    d,
    du,
    B,
    *,
    backend: str = "auto",
    fingerprint: bool | None = None,
    rtol: float | None = None,
):
    """LAPACK ``?gtsv``-style: one system, possibly many RHS columns.

    Parameters
    ----------
    dl:
        Sub-diagonal, length ``n − 1`` (LAPACK convention: no padding).
        For ``n == 1`` this is the empty array.
    d:
        Main diagonal, length ``n >= 1``.
    du:
        Super-diagonal, length ``n − 1`` (empty for ``n == 1``).
    B:
        Right-hand sides: ``(n,)`` or ``(n, nrhs)``.  Any layout —
        C-ordered, Fortran-ordered, transposed, or strided views all
        give the same result.
    backend:
        Backend registry selection forwarded to
        :func:`repro.solve_batch` (``"auto"`` or a registered name).
    fingerprint:
        Factorization-cache tri-state forwarded to
        :func:`repro.solve_batch`.
    rtol:
        Accuracy contract forwarded to :func:`repro.solve_batch` —
        tolerances above the dtype floor let fingerprinting
        auto-engage on hybrid ``k > 0`` plans too.

    Returns
    -------
    numpy.ndarray
        ``X`` with the same shape as ``B`` (C-contiguous).
    """
    dl = np.asarray(dl)
    d = np.asarray(d)
    du = np.asarray(du)
    B = np.asarray(B)
    if d.ndim != 1 or d.shape[0] == 0:
        raise ValueError(
            f"d must be a non-empty 1-D main diagonal, got shape {d.shape}"
        )
    n = d.shape[0]
    if dl.shape != (n - 1,) or du.shape != (n - 1,):
        raise ValueError(
            f"dl/du must have length n-1 = {n - 1} for n = {n}, "
            f"got dl shape {dl.shape} and du shape {du.shape}"
        )
    if B.ndim not in (1, 2) or B.shape[0] != n:
        raise ValueError(
            f"B must be (n,) or (n, nrhs) with n = {n}, got shape {B.shape}"
        )
    if n == 1:
        # 1×1 system: dl/du are empty and there is nothing to eliminate.
        # Answer directly (keeping the pivot-free zero-diagonal error);
        # the batched solvers are never entered.
        if d[0] == 0.0:
            raise ValueError(
                "zero on the main diagonal (pivot-free solvers need d != 0)"
            )
        return np.ascontiguousarray(
            (B / d[0]).astype(_solve_dtype(d, B), copy=False)
        )
    a = np.zeros(n, dtype=d.dtype)
    c = np.zeros(n, dtype=d.dtype)
    a[1:] = dl
    c[:-1] = du
    if B.ndim == 1:
        x = solve_batch(
            a[None], d[None], c[None], B[None],
            backend=backend, fingerprint=fingerprint, rtol=rtol,
        )
        return x[0]
    nrhs = B.shape[1]
    aa = np.tile(a, (nrhs, 1))
    bb = np.tile(d, (nrhs, 1))
    cc = np.tile(c, (nrhs, 1))
    # B.T is evaluated by value, so Fortran-ordered / strided B is fine.
    x = solve_batch(
        aa, bb, cc, np.ascontiguousarray(B.T),
        backend=backend, fingerprint=fingerprint, rtol=rtol,
    )
    return np.ascontiguousarray(x.T)


def gtsv_nopivot(
    dl,
    d,
    du,
    B,
    *,
    backend: str = "auto",
    fingerprint: bool | None = None,
    rtol: float | None = None,
):
    """cuSPARSE ``gtsv2_nopivot``-style alias (the library never pivots)."""
    return gtsv(
        dl, d, du, B, backend=backend, fingerprint=fingerprint, rtol=rtol
    )


def gtsv_cyclic(
    dl,
    d,
    du,
    B,
    *,
    backend: str = "auto",
    check: bool = True,
    fingerprint: bool | None = None,
    rtol: float | None = None,
):
    """cuSPARSE ``gtsv2cyclic``-style: one *periodic* tridiagonal system.

    The vendor convention stores full-length diagonals whose wrap
    entries carry the corners: ``dl[0]`` couples row 0 to row ``n−1``
    and ``du[n−1]`` couples row ``n−1`` to row 0 — exactly the cyclic
    convention of :func:`repro.solve_periodic`, so this adapter is a
    layout-only shim.

    Parameters
    ----------
    dl, d, du:
        Length-``n`` diagonals (``n ≥ 3``), corners in ``dl[0]`` /
        ``du[-1]``.
    B:
        Right-hand sides: ``(n,)`` or ``(n, nrhs)``.  Multi-RHS calls
        solve one fixed cyclic matrix against every column — the shape
        the engine's cyclic factorization cache is built for, so they
        are dispatched as a batch with fingerprinting on.
    backend:
        Backend registry selection (``Capabilities.periodic`` is
        negotiated).
    check:
        Raise :class:`~repro.core.periodic.CyclicSingularError` on a
        singular Sherman–Morrison correction; ``check=False`` warns
        and emits NaN for the singular systems instead.
    fingerprint:
        Factorization-cache tri-state forwarded to the cyclic solve.
    rtol:
        Accuracy contract forwarded to the cyclic solve (see
        :func:`gtsv`).

    Returns
    -------
    numpy.ndarray
        ``X`` with the same shape as ``B`` (C-contiguous).
    """
    from repro.core.periodic import solve_periodic_batch

    dl = np.asarray(dl)
    d = np.asarray(d)
    du = np.asarray(du)
    B = np.asarray(B)
    if d.ndim != 1 or d.shape[0] < 3:
        raise ValueError(
            f"d must be a 1-D main diagonal with n >= 3, got shape {d.shape}"
        )
    n = d.shape[0]
    if dl.shape != (n,) or du.shape != (n,):
        raise ValueError(
            f"cyclic dl/du must have full length n = {n}, "
            f"got dl shape {dl.shape} and du shape {du.shape}"
        )
    if B.ndim not in (1, 2) or B.shape[0] != n:
        raise ValueError(
            f"B must be (n,) or (n, nrhs) with n = {n}, got shape {B.shape}"
        )
    if B.ndim == 1:
        x = solve_periodic_batch(
            dl[None], d[None], du[None], B[None],
            backend=backend, check=check, fingerprint=fingerprint,
            rtol=rtol,
        )
        return x[0]
    nrhs = B.shape[1]
    aa = np.tile(dl, (nrhs, 1))
    bb = np.tile(d, (nrhs, 1))
    cc = np.tile(du, (nrhs, 1))
    x = solve_periodic_batch(
        aa, bb, cc, np.ascontiguousarray(B.T),
        backend=backend, check=check, fingerprint=fingerprint, rtol=rtol,
    )
    return np.ascontiguousarray(x.T)


def gpsv_batch(
    ds,
    dl,
    d,
    du,
    dw,
    B,
    *,
    backend: str = "auto",
    check: bool = True,
    fingerprint: bool | None = None,
):
    """cuSPARSE ``gpsvInterleavedBatch``-style: batched pentadiagonal solve.

    Parameters
    ----------
    ds, dl, d, du, dw:
        ``(M, N)`` diagonals in offset order −2, −1, 0, +1, +2 — the
        vendor's five-diagonal vocabulary on this library's padded
        batch convention (out-of-matrix pads ``ds[:, :2]``,
        ``dl[:, 0]``, ``du[:, -1]``, ``dw[:, -2:]`` are ignored).
    B:
        ``(M, N)`` right-hand sides.
    backend:
        Backend registry selection; pentadiagonal requests negotiate
        against ``Capabilities.systems``.
    check:
        Validate shapes/dtype/finiteness (skip inside hot loops).
    fingerprint:
        Factorization-cache tri-state — fixed diagonals across
        repeated calls serve the stored LU's RHS-only sweep, which is
        bitwise identical to the cold path.

    Returns
    -------
    numpy.ndarray
        ``(M, N)`` solutions (C-contiguous).
    """
    from repro.backends import solve_via

    x, _ = solve_via(
        dl, d, du, B, e=ds, f=dw,
        backend=backend, check=check, fingerprint=fingerprint,
    )
    return x


def gtsv_block_batch(
    dl,
    d,
    du,
    B,
    *,
    backend: str = "auto",
    check: bool = True,
    fingerprint: bool | None = None,
):
    """Batched block-tridiagonal solve (``gtsv``-style, dense blocks).

    Parameters
    ----------
    dl, d, du:
        ``(M, N, B, B)`` sub-/main-/super-diagonal block stacks
        (``dl[:, 0]`` and ``du[:, -1]`` are ignored).
    B:
        ``(M, N, B)`` right-hand sides.
    backend:
        Backend registry selection; block requests negotiate against
        ``Capabilities.systems``.
    check:
        Validate shapes/dtype/finiteness (skip inside hot loops).
    fingerprint:
        Factorization-cache tri-state — repeated coefficient blocks
        serve the stored block elimination's RHS-only sweep (bitwise
        identical to the cold path).

    Returns
    -------
    numpy.ndarray
        ``(M, N, B)`` solutions (C-contiguous).
    """
    from repro.backends import solve_via

    x, _ = solve_via(
        dl, d, du, B,
        backend=backend, check=check, fingerprint=fingerprint,
    )
    return x


def gtsv_strided_batch(
    dl,
    d,
    du,
    x,
    batch_count: int,
    batch_stride: int,
    *,
    backend: str = "auto",
    fingerprint: bool | None = None,
    rtol: float | None = None,
):
    """cuSPARSE ``gtsv2StridedBatch``-style: flat strided system batch.

    Parameters
    ----------
    dl, d, du:
        Flat arrays; system ``i`` occupies elements
        ``[i·batch_stride, i·batch_stride + n)`` where
        ``n = batch_stride`` (cuSPARSE requires stride ≥ n; equal here).
        ``dl[i·stride]`` and ``du[i·stride + n − 1]`` are ignored, as in
        cuSPARSE.
    x:
        Flat right-hand sides in the same layout; **overwritten** with
        the solution (cuSPARSE semantics).  Must therefore be a
        writeable floating-point :class:`numpy.ndarray` — a list or an
        integer array cannot hold the solution in place and is
        rejected rather than silently returned unchanged.
    batch_count, batch_stride:
        Number of systems and their stride.
    backend:
        Backend registry selection forwarded to
        :func:`repro.solve_batch`.
    fingerprint:
        Factorization-cache tri-state forwarded to
        :func:`repro.solve_batch` — fixed diagonals across repeated
        calls hit the stored factorization automatically.
    rtol:
        Accuracy contract forwarded to :func:`repro.solve_batch` (see
        :func:`gtsv`).

    Returns
    -------
    numpy.ndarray
        The same ``x`` array, now holding the solutions.
    """
    if batch_count < 1 or batch_stride < 1:
        raise ValueError("batch_count and batch_stride must be >= 1")
    if not isinstance(x, np.ndarray):
        raise TypeError(
            "x must be a numpy.ndarray: it is overwritten in place "
            f"(cuSPARSE semantics), got {type(x).__name__}"
        )
    if x.dtype not in _FLOATS:
        raise TypeError(
            "x must be float32/float64 to receive the solution in place, "
            f"got dtype {x.dtype}"
        )
    if not x.flags.writeable:
        raise ValueError("x is read-only; it is overwritten in place")
    needed = batch_count * batch_stride
    for name, arr in (("dl", dl), ("d", d), ("du", du), ("x", x)):
        arr = np.asarray(arr)
        if arr.ndim != 1:
            raise ValueError(f"{name} must be a flat 1-D array, got {arr.ndim}-D")
        if arr.shape[0] < needed:
            raise ValueError(
                f"{name} has {arr.shape[0]} elements, needs {needed}"
            )
    n = batch_stride
    shape = (batch_count, n)
    a2 = np.asarray(dl)[:needed].reshape(shape).copy()
    b2 = np.asarray(d)[:needed].reshape(shape)
    c2 = np.asarray(du)[:needed].reshape(shape).copy()
    d2 = x[:needed].reshape(shape)
    a2[:, 0] = 0.0
    c2[:, -1] = 0.0
    if n == 1:
        # Degenerate stride-1 batch: every system is 1×1.
        if np.any(b2 == 0.0):
            raise ValueError(
                "zero on the main diagonal (pivot-free solvers need d != 0)"
            )
        sol = d2 / np.asarray(b2, dtype=x.dtype)
    else:
        sol = solve_batch(
            a2, b2, c2, d2, backend=backend, fingerprint=fingerprint,
            rtol=rtol,
        )
    x[:needed] = sol.reshape(-1)
    return x
