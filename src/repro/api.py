"""Vendor-style entry points: familiar signatures for porting users.

Production users arrive from cuSPARSE (``gtsv2StridedBatch``,
``gtsv2_nopivot``) or LAPACK (``dgtsv``); this module offers the same
call shapes on top of the hybrid solver so a port is a one-line change.

All functions are thin adapters: they reshape/convert the vendor layout
to the library's padded ``(M, N)`` convention, call
:func:`repro.solve_batch`, and return results in the vendor's layout.
"""

from __future__ import annotations

import numpy as np

from repro.core.solver import solve_batch

__all__ = ["gtsv", "gtsv_nopivot", "gtsv_strided_batch"]


def gtsv(dl, d, du, B):
    """LAPACK ``?gtsv``-style: one system, possibly many RHS columns.

    Parameters
    ----------
    dl:
        Sub-diagonal, length ``n − 1`` (LAPACK convention: no padding).
    d:
        Main diagonal, length ``n``.
    du:
        Super-diagonal, length ``n − 1``.
    B:
        Right-hand sides: ``(n,)`` or ``(n, nrhs)``.

    Returns
    -------
    numpy.ndarray
        ``X`` with the same shape as ``B``.
    """
    dl = np.asarray(dl)
    d = np.asarray(d)
    du = np.asarray(du)
    B = np.asarray(B)
    n = d.shape[0]
    if dl.shape != (n - 1,) or du.shape != (n - 1,):
        raise ValueError(
            f"dl/du must have length n-1 = {n - 1}, got {dl.shape[0]}, {du.shape[0]}"
        )
    a = np.zeros(n, dtype=d.dtype)
    c = np.zeros(n, dtype=d.dtype)
    a[1:] = dl
    c[:-1] = du
    if B.ndim == 1:
        x = solve_batch(a[None], d[None], c[None], B[None])
        return x[0]
    if B.ndim != 2 or B.shape[0] != n:
        raise ValueError(f"B must be (n,) or (n, nrhs) with n = {n}")
    nrhs = B.shape[1]
    aa = np.tile(a, (nrhs, 1))
    bb = np.tile(d, (nrhs, 1))
    cc = np.tile(c, (nrhs, 1))
    x = solve_batch(aa, bb, cc, np.ascontiguousarray(B.T))
    return np.ascontiguousarray(x.T)


def gtsv_nopivot(dl, d, du, B):
    """cuSPARSE ``gtsv2_nopivot``-style alias (the library never pivots)."""
    return gtsv(dl, d, du, B)


def gtsv_strided_batch(dl, d, du, x, batch_count: int, batch_stride: int):
    """cuSPARSE ``gtsv2StridedBatch``-style: flat strided system batch.

    Parameters
    ----------
    dl, d, du:
        Flat arrays; system ``i`` occupies elements
        ``[i·batch_stride, i·batch_stride + n)`` where
        ``n = batch_stride`` (cuSPARSE requires stride ≥ n; equal here).
        ``dl[i·stride]`` and ``du[i·stride + n − 1]`` are ignored, as in
        cuSPARSE.
    x:
        Flat right-hand sides in the same layout; **overwritten** with
        the solution (cuSPARSE semantics).
    batch_count, batch_stride:
        Number of systems and their stride.

    Returns
    -------
    numpy.ndarray
        The same ``x`` array, now holding the solutions.
    """
    if batch_count < 1 or batch_stride < 1:
        raise ValueError("batch_count and batch_stride must be >= 1")
    needed = batch_count * batch_stride
    for name, arr in (("dl", dl), ("d", d), ("du", du), ("x", x)):
        if np.asarray(arr).shape[0] < needed:
            raise ValueError(
                f"{name} has {np.asarray(arr).shape[0]} elements, "
                f"needs {needed}"
            )
    n = batch_stride
    shape = (batch_count, n)
    a2 = np.asarray(dl)[:needed].reshape(shape).copy()
    b2 = np.asarray(d)[:needed].reshape(shape)
    c2 = np.asarray(du)[:needed].reshape(shape).copy()
    d2 = np.asarray(x)[:needed].reshape(shape)
    a2[:, 0] = 0.0
    c2[:, -1] = 0.0
    sol = solve_batch(a2, b2, c2, d2)
    np.asarray(x)[:needed] = sol.reshape(-1)
    return x
