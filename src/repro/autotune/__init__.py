"""Trace-driven autotuning: measured calibration over Table III.

The paper fixes its algorithm selection at publication time (Table III,
tuned on a GTX480).  This package closes the loop on the actual host:

* :mod:`repro.autotune.model` — :class:`PerformanceModel` folds the
  :class:`~repro.backends.trace.SolveTrace` of every registry dispatch
  into per-(shape-bucket, route) running cost estimates, persisted as
  a versioned, atomically-written JSON file;
* :mod:`repro.autotune.router` — :class:`AdaptiveRouter`, a drop-in
  :class:`~repro.backends.registry.Router` that exploits the model
  (backend, hybrid ``k``, workers, fingerprint tier), explores on a
  deterministic epsilon schedule, and degrades to the static heuristic
  on cold cells or a corrupt model file;
* :mod:`repro.autotune.calibrate` — systematic offline calibration
  (the ``repro tune`` CLI): measure every candidate route per shape,
  fill the model, persist it.

Quick start::

    import repro
    from repro.autotune import enable_adaptive_routing

    router = enable_adaptive_routing("router_model.json")
    ...                      # solves now calibrate + route adaptively
    router.save()
"""

from repro.autotune.calibrate import DEFAULT_SHAPES, calibrate
from repro.autotune.model import (
    MODEL_VERSION,
    ModelLoadError,
    PerformanceModel,
    RouteStats,
    cell_key,
    cell_key_for,
    cost_from,
    effective_fingerprint_tier,
    route_from,
    route_key,
)
from repro.autotune.router import (
    AdaptiveRouter,
    disable_adaptive_routing,
    enable_adaptive_routing,
)

__all__ = [
    "AdaptiveRouter",
    "DEFAULT_SHAPES",
    "MODEL_VERSION",
    "ModelLoadError",
    "PerformanceModel",
    "RouteStats",
    "calibrate",
    "cell_key",
    "cell_key_for",
    "cost_from",
    "disable_adaptive_routing",
    "effective_fingerprint_tier",
    "enable_adaptive_routing",
    "route_from",
    "route_key",
]
