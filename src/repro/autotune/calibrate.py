"""Offline calibration: measure every candidate route, fill the model.

Online epsilon-exploration converges slowly (one extra sample every
``1/epsilon`` solves per cell); a new host wants its Table III
replaced *now*.  :func:`calibrate` is the systematic version — the
engine behind ``repro tune`` and ``benchmarks/bench_autotune.py``:

for each shape in the sweep, enumerate the candidate routes
(:func:`~repro.autotune.router.candidate_routes` — measured backends ×
candidate ``k`` × workers × licensed fingerprint tiers), then run
*interleaved rounds* over them: every route solves once per round, so
CPU frequency drift (thermal throttling penalizes whoever runs last in
a sequential design) spreads evenly across routes instead of biasing
one.  The first ``warmup_rounds`` rounds are unobserved — they pay the
one-time costs (plan build, fingerprint ledger sightings,
factorization) so the model records steady-state route cost, which is
what routing decides on.

Costs come from the solve's own :class:`~repro.backends.trace.
SolveTrace` (validation excluded), so calibration measures exactly
what the router will later predict.
"""

from __future__ import annotations

import numpy as np

from repro.autotune.model import (
    PerformanceModel,
    cell_key,
    cost_from,
)
from repro.autotune.router import candidate_routes
from repro.core.transition import GTX480_HEURISTIC

__all__ = ["DEFAULT_SHAPES", "calibrate", "calibration_batch"]

#: default sweep: both Table-III regimes (small-M hybrid, large-M
#: Thomas) plus the boundary region where a mistuned table hurts most
DEFAULT_SHAPES = (
    (8, 1024),
    (32, 1024),
    (128, 1024),
    (512, 512),
    (1024, 1024),
)


def calibration_batch(
    m: int, n: int, dtype="float64", *, seed: int = 0, periodic: bool = False
):
    """A reproducible diagonally-dominant batch for measurement.

    ``periodic=True`` keeps the corner entries (``a[:, 0]`` /
    ``c[:, -1]``) as cyclic couplings instead of zero pads.
    """
    rng = np.random.default_rng(seed + 7919 * m + n)
    dtype = np.dtype(dtype)
    a = rng.standard_normal((m, n)).astype(dtype)
    c = rng.standard_normal((m, n)).astype(dtype)
    if not periodic:
        a[:, 0] = 0.0
        c[:, -1] = 0.0
    b = (4.0 + np.abs(a) + np.abs(c)).astype(dtype)
    d = rng.standard_normal((m, n)).astype(dtype)
    return a, b, c, d


def _route_kwargs(route: dict, rtol) -> dict:
    """solve_via keyword arguments that pin one route."""
    kwargs = {
        "backend": route["backend"],
        "k": route["k"],
    }
    if route.get("workers", 1) > 1:
        kwargs["workers"] = route["workers"]
    tier = route.get("fingerprint", "auto")
    if tier == "forced":
        kwargs["fingerprint"] = True
    elif tier == "off":
        kwargs["fingerprint"] = False
    if rtol is not None:
        kwargs["rtol"] = rtol
    return kwargs


def calibrate(
    shapes=DEFAULT_SHAPES,
    *,
    model: PerformanceModel | None = None,
    repeats: int = 3,
    warmup_rounds: int = 2,
    dtype="float64",
    periodic: bool = False,
    rtol: float | None = None,
    heuristic=GTX480_HEURISTIC,
    registry=None,
    seed: int = 0,
    progress=None,
) -> PerformanceModel:
    """Measure every candidate route over ``shapes`` into a model.

    Parameters
    ----------
    shapes:
        Iterable of ``(M, N)`` problem shapes to sweep.
    model:
        Model to extend (a fresh one is built when omitted).
    repeats:
        Observed rounds per route (each contributes one sample).
    warmup_rounds:
        Unobserved leading rounds — absorb plan builds, fingerprint
        ledger sightings and factorization so samples are steady-state.
    dtype, periodic, rtol:
        Request coordinates for the sweep; ``rtol`` both rides on the
        solve requests and licenses ``forced``-fingerprint routes on
        hybrid ``k > 0`` plans.
    registry:
        Backend registry to dispatch through (default process-wide).
        Calibration uses *explicit* backend names, so the registry's
        installed router — adaptive or static — is never consulted.
    progress:
        Optional ``callable(str)`` for per-shape progress lines.

    Returns the (extended) :class:`PerformanceModel`.
    """
    from repro.backends.registry import default_registry, solve_via
    from repro.backends.request import SolveRequest

    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if warmup_rounds < 0:
        raise ValueError(f"warmup_rounds must be >= 0, got {warmup_rounds}")
    reg = registry if registry is not None else default_registry()
    if model is None:
        model = PerformanceModel()
    for m, n in shapes:
        a, b, c, d = calibration_batch(
            m, n, dtype, seed=seed, periodic=periodic
        )
        probe = SolveRequest.build(
            a, b, c, d, periodic=periodic, coerced=True,
            **({"rtol": rtol} if rtol is not None else {}),
        )
        routes = candidate_routes(
            probe, reg.capable(probe), heuristic=heuristic
        )
        cell = cell_key(m, n, dtype, periodic)
        if progress is not None:
            progress(
                f"calibrating M={m} N={n} ({cell}): "
                f"{len(routes)} routes x {repeats} rounds"
            )
        for rnd in range(warmup_rounds + repeats):
            for route in routes:
                _, trace = solve_via(
                    a, b, c, d,
                    periodic=periodic,
                    coerced=True,
                    registry=reg,
                    **_route_kwargs(route, rtol),
                )
                if rnd >= warmup_rounds:
                    model.observe(cell, route, cost_from(trace))
    return model
