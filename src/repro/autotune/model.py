"""The measured-performance model behind the adaptive router.

Table III is a *prediction*: a fixed ``M → k`` table tuned on one
GTX480.  This module replaces prediction with measurement.  Every
registry-dispatched solve already leaves a
:class:`~repro.backends.trace.SolveTrace` with per-stage wall times;
:class:`PerformanceModel` folds those traces into running cost
estimates keyed by

* a **cell** — the problem-shape bucket ``(⌊log2 M⌋, ⌊log2 N⌋, dtype,
  periodic)``.  Power-of-two bucketing mirrors how every quantity in
  the paper scales (Tables I–III are all stated in powers of two) and
  keeps the model small: a few dozen cells cover any realistic sweep;
* a **route** — the knobs the router controls: backend name, frozen
  transition ``k``, worker count, and *effective* fingerprint tier
  (``"auto"`` / ``"auto+rtol"`` / ``"forced"`` / ``"off"`` — see
  :func:`effective_fingerprint_tier`).

Per (cell, route) the model keeps a running mean of measured solve
seconds (validation excluded — its cost is route-independent) plus a
sample count, so "which route is fastest here?" is one dictionary
scan.

Persistence is a versioned JSON file written atomically (temp file +
``os.replace``, the same discipline as
:class:`~repro.engine.diskcache.FactorizationDiskCache`); the payload
is serialized with sorted keys so save → load → save round-trips
bitwise.  Loading is defensive: a missing, corrupt, or
foreign-version file yields an empty model (the router then degrades
to the static heuristic) — calibration state can never fail a solve.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
from dataclasses import dataclass

import numpy as np

__all__ = [
    "MODEL_VERSION",
    "ModelLoadError",
    "PerformanceModel",
    "RouteStats",
    "cell_key",
    "cell_key_for",
    "cost_from",
    "effective_fingerprint_tier",
    "fingerprint_tier",
    "route_from",
    "route_key",
]

#: schema version of the persisted JSON payload; foreign versions are
#: discarded on load (stale calibration is worthless, not dangerous).
#: v2 added the ``ranks`` route axis (distributed N-partitioning) —
#: v1 files never measured it, so discarding them is the safe reload.
MODEL_VERSION = 2

#: the knobs a route pins, in canonical serialization order
ROUTE_FIELDS = ("backend", "k", "workers", "fingerprint", "ranks")


class ModelLoadError(ValueError):
    """A persisted performance model could not be parsed."""


def _bucket(v: int) -> int:
    """Power-of-two bucket exponent: ``⌊log2 v⌋`` (v ≥ 1)."""
    return int(math.floor(math.log2(max(int(v), 1))))


def cell_key(m: int, n: int, dtype, periodic: bool, system: str = "") -> str:
    """Canonical cell key for a problem-shape bucket.

    ``system`` is the descriptor tag (``""`` for tridiagonal,
    ``"penta"`` / ``"block<B>"`` otherwise).  Tridiagonal keys keep
    their historical spelling — persisted models calibrated before the
    descriptor axis existed stay valid — and banded cells gain a
    trailing segment so the router never attributes a pentadiagonal or
    block-sweep cost to the tridiagonal stencil (or across block
    sizes).
    """
    kind = "cyclic" if periodic else "plain"
    key = f"M2^{_bucket(m)}|N2^{_bucket(n)}|{np.dtype(dtype).name}|{kind}"
    if system:
        key += f"|{system}"
    return key


def cell_key_for(request) -> str:
    """The cell a :class:`~repro.backends.request.SolveRequest` lands in."""
    return cell_key(
        request.m,
        request.n,
        request.dtype,
        request.periodic,
        request.system.tag,
    )


def fingerprint_tier(fingerprint) -> str:
    """Canonical name of a request's fingerprint tri-state."""
    if fingerprint is True:
        return "forced"
    if fingerprint is False:
        return "off"
    return "auto"


def effective_fingerprint_tier(fingerprint, rtol, dtype, k: int) -> str:
    """The fingerprint behaviour a solve *actually* runs under.

    The route vocabulary must partition behaviour, not just request
    flags: ``fingerprint=None`` with an ``rtol`` contract engages
    factorization reuse on ``k > 0`` plans (tier ``"auto+rtol"``)
    where the same flag without the contract does not (``"auto"``).
    Costs measured under one tier must never be attributed to the
    other.  At ``k = 0`` the contract changes nothing — both collapse
    to ``"auto"``.
    """
    if fingerprint is True:
        return "forced"
    if fingerprint is False:
        return "off"
    if k != 0:
        from repro.engine.prepared import rtol_permits_hybrid_reuse

        if rtol_permits_hybrid_reuse(rtol, dtype):
            return "auto+rtol"
    return "auto"


def route_key(route: dict) -> str:
    """Canonical string key for a route dict (stable field order)."""
    return json.dumps(
        {f: route.get(f) for f in ROUTE_FIELDS}, sort_keys=True
    )


def route_from(request, trace) -> dict:
    """The route one completed solve actually ran.

    Built from the trace (what executed) plus the request (the caller's
    fingerprint tri-state — the trace's ``factorization`` field mixes
    in cache warmth, which is history, not a knob).
    """
    decision = getattr(trace, "decision", None)
    backend = (
        decision.chosen if decision is not None and decision.chosen
        else trace.backend
    )
    return {
        "backend": backend,
        "k": int(trace.k),
        "workers": int(trace.workers),
        "fingerprint": effective_fingerprint_tier(
            request.fingerprint, request.rtol, request.dtype, int(trace.k)
        ),
        "ranks": int(getattr(trace, "ranks", 1) or 1),
    }


def cost_from(trace) -> float:
    """Measured route cost of one trace: total seconds minus validation.

    Validation cost is identical whatever the router picks, so leaving
    it out keeps route comparisons about the routes.
    """
    return sum(
        s.seconds for s in trace.stages if s.name != "validate"
    )


@dataclass
class RouteStats:
    """Running cost estimate for one (cell, route)."""

    count: int = 0
    mean_s: float = 0.0

    def observe(self, seconds: float) -> None:
        """Fold one measurement into the running mean."""
        self.count += 1
        self.mean_s += (float(seconds) - self.mean_s) / self.count


class PerformanceModel:
    """Per-(cell, route) running cost estimates over observed solves.

    Parameters
    ----------
    min_samples:
        Observations a route needs before :meth:`best` will trust its
        mean — one noisy first sample must not steer routing.
    """

    def __init__(self, min_samples: int = 2):
        if min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {min_samples}")
        self.min_samples = min_samples
        # cell key -> route key -> RouteStats
        self._cells: dict = {}
        # route key -> route dict, so best() can return the knobs
        self._routes: dict = {}

    # ---- observation -------------------------------------------------
    def observe(self, cell: str, route: dict, seconds: float) -> None:
        """Fold one measured solve into the model."""
        rkey = route_key(route)
        self._routes.setdefault(rkey, {f: route.get(f) for f in ROUTE_FIELDS})
        stats = self._cells.setdefault(cell, {}).setdefault(rkey, RouteStats())
        stats.observe(seconds)

    def observe_trace(self, request, trace) -> None:
        """Fold one completed (request, trace) pair into the model."""
        self.observe(cell_key_for(request), route_from(request, trace), cost_from(trace))

    # ---- queries -----------------------------------------------------
    def cells(self) -> list:
        """Known cell keys, sorted."""
        return sorted(self._cells)

    def routes(self, cell: str) -> dict:
        """``route_key -> RouteStats`` for one cell (empty when cold)."""
        return dict(self._cells.get(cell, {}))

    def route_dict(self, rkey: str) -> dict:
        """The route knobs behind a route key."""
        route = self._routes.get(rkey)
        if route is None:
            route = json.loads(rkey)
        return dict(route)

    def observations(self, cell: str) -> int:
        """Total samples recorded for one cell."""
        return sum(s.count for s in self._cells.get(cell, {}).values())

    def best(self, cell: str, *, admissible=None):
        """The fastest trusted route for ``cell``.

        Returns ``(route_dict, RouteStats)`` over routes with at least
        ``min_samples`` observations (and passing the optional
        ``admissible(route_dict)`` filter), or ``None`` when the cell
        has no trusted route — the router's cue to fall back to the
        static heuristic.  Ties break on the route key, so selection is
        deterministic.
        """
        entries = self._cells.get(cell)
        if not entries:
            return None
        best = None
        for rkey in sorted(entries):
            stats = entries[rkey]
            if stats.count < self.min_samples:
                continue
            # the stored dict is passed uncopied (admissible must only
            # read it); only the winner is copied on return
            route = self._routes.get(rkey)
            if route is None:
                route = self._routes[rkey] = json.loads(rkey)
            if admissible is not None and not admissible(route):
                continue
            if best is None or stats.mean_s < best[1].mean_s:
                best = (route, stats)
        if best is None:
            return None
        return dict(best[0]), best[1]

    def least_sampled(self, cell: str, candidates: list):
        """The candidate route with the fewest observations in ``cell``.

        ``candidates`` is a list of route dicts; ties break on the
        canonical route key (deterministic exploration order).
        """
        if not candidates:
            return None
        entries = self._cells.get(cell, {})
        keyed = sorted((route_key(r), r) for r in candidates)
        return min(
            keyed, key=lambda kr: (entries.get(kr[0], RouteStats()).count, kr[0])
        )[1]

    # ---- persistence -------------------------------------------------
    def to_payload(self) -> dict:
        """The JSON-serializable persisted form."""
        return {
            "kind": "repro-autotune-model",
            "version": MODEL_VERSION,
            "min_samples": self.min_samples,
            "cells": {
                cell: {
                    rkey: {"count": s.count, "mean_s": s.mean_s}
                    for rkey, s in entries.items()
                }
                for cell, entries in self._cells.items()
            },
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "PerformanceModel":
        """Rebuild a model from :meth:`to_payload` output.

        Raises :class:`ModelLoadError` on anything that is not a
        current-version model payload — including *future* versions,
        whose semantics this code cannot know.
        """
        if not isinstance(payload, dict):
            raise ModelLoadError("model payload is not a JSON object")
        if payload.get("kind") != "repro-autotune-model":
            raise ModelLoadError(
                f"not an autotune model (kind={payload.get('kind')!r})"
            )
        if payload.get("version") != MODEL_VERSION:
            raise ModelLoadError(
                f"model version {payload.get('version')!r} != "
                f"supported version {MODEL_VERSION}"
            )
        model = cls(min_samples=int(payload.get("min_samples", 2)))
        cells = payload.get("cells")
        if not isinstance(cells, dict):
            raise ModelLoadError("model payload has no 'cells' mapping")
        for cell, entries in cells.items():
            if not isinstance(entries, dict):
                raise ModelLoadError(f"cell {cell!r} is not a mapping")
            for rkey, rec in entries.items():
                try:
                    route = json.loads(rkey)
                    count = int(rec["count"])
                    mean_s = float(rec["mean_s"])
                except (KeyError, TypeError, ValueError) as exc:
                    raise ModelLoadError(
                        f"malformed route record under {cell!r}: {exc}"
                    ) from exc
                model._routes.setdefault(rkey, route)
                model._cells.setdefault(cell, {})[rkey] = RouteStats(
                    count=count, mean_s=mean_s
                )
        return model

    def save(self, path) -> str:
        """Atomically write the model (temp file + ``os.replace``).

        Sorted keys + fixed separators make the byte stream a pure
        function of the model state, so persistence round-trips
        bitwise.
        """
        path = os.fspath(path)
        directory = os.path.dirname(path) or "."
        os.makedirs(directory, exist_ok=True)
        data = json.dumps(
            self.to_payload(), indent=2, sort_keys=True
        ) + "\n"
        fd, tmp = tempfile.mkstemp(
            dir=directory, prefix=".autotune-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(data)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    @classmethod
    def load(cls, path) -> "PerformanceModel":
        """Strict load: raises :class:`ModelLoadError` on any problem."""
        try:
            with open(os.fspath(path)) as fh:
                payload = json.load(fh)
        except OSError as exc:
            raise ModelLoadError(f"cannot read model file: {exc}") from exc
        except ValueError as exc:
            raise ModelLoadError(f"model file is not JSON: {exc}") from exc
        return cls.from_payload(payload)

    @classmethod
    def load_or_new(cls, path, *, min_samples: int = 2):
        """Forgiving load: ``(model, note)``; never raises.

        A missing file is a fresh start (``note=None``); a corrupt or
        foreign-version file is *also* a fresh start, with the problem
        described in ``note`` — routing degrades to the static
        heuristic instead of failing the process.
        """
        if path is None or not os.path.exists(os.fspath(path)):
            return cls(min_samples=min_samples), None
        try:
            return cls.load(path), None
        except ModelLoadError as exc:
            return cls(min_samples=min_samples), str(exc)
