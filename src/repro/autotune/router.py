"""The adaptive router: measured calibration over the Table-III prior.

:class:`AdaptiveRouter` is a drop-in :class:`~repro.backends.registry.
Router` subclass (``registry.router = AdaptiveRouter(...)`` — or just
:func:`enable_adaptive_routing`).  Selection is a three-way policy,
fully deterministic for a given call sequence:

* **cold** — the request's cell has no trusted measurements: behave
  *exactly* like the static router (same rules, same priority
  fallback), so a fresh process is bitwise-identical to the shipped
  heuristic until data says otherwise;
* **exploit** — the cell has a trusted best route: pick its backend
  and fill in any knobs the caller left unset (``k``, ``workers``,
  ``fingerprint`` tier).  Routes are admissible only if the backend is
  among the capability-filtered candidates and every caller-pinned
  knob matches — the router refines requests, it never overrides them;
* **explore** — every ``1/epsilon``-th selection per cell (a
  deterministic counter schedule, not a PRNG: ``epsilon=0`` never
  explores and replays identically) runs the least-sampled candidate
  route instead, so non-winning routes keep earning samples and the
  model tracks the host as it changes.

Numeric safety is part of admissibility: a ``forced`` fingerprint tier
(allclose-grade RHS-only reuse on ``k > 0`` plans) is only applied
when the route is ``k = 0`` — where reuse is bitwise — or the request
carries an ``rtol=`` contract clearing the dtype floor
(:func:`repro.engine.prepared.rtol_permits_hybrid_reuse`).

The model feeds itself: :meth:`AdaptiveRouter.observe` is called by
``solve_via`` after every registry dispatch (explicit-backend solves
included, so even pinned workloads calibrate their cells).
"""

from __future__ import annotations

import math
import threading

from repro.autotune.model import (
    PerformanceModel,
    cell_key_for,
    fingerprint_tier,
)
from repro.backends.registry import Router
from repro.backends.trace import RouteDecision
from repro.core.transition import GTX480_HEURISTIC, candidate_ks

__all__ = [
    "AdaptiveRouter",
    "candidate_routes",
    "disable_adaptive_routing",
    "enable_adaptive_routing",
]

#: ceiling on generated exploration routes per cell — keeps one cell's
#: calibration from dominating a workload even at high epsilon
MAX_CANDIDATE_ROUTES = 24


def _rtol_permits(request) -> bool:
    from repro.engine.prepared import rtol_permits_hybrid_reuse

    return rtol_permits_hybrid_reuse(request.rtol, request.dtype)


def candidate_routes(
    request, candidates: list, *, heuristic=GTX480_HEURISTIC
) -> list:
    """The deterministic measurement/exploration set for one request.

    One route dict per (measured backend, candidate ``k``, worker
    count, fingerprint tier) combination the request's contracts allow:
    caller-pinned knobs stay pinned, simulated backends are skipped
    (their "time" is a model, not this host), and the ``forced``
    fingerprint tier appears only where numerically licensed (``k = 0``
    or an ``rtol=`` contract above the dtype floor).  Shared by
    :class:`AdaptiveRouter` exploration and offline
    :func:`~repro.autotune.calibrate.calibrate`.
    """
    banded = request.system.kind != "tridiagonal"
    routes = []
    for backend in sorted(candidates, key=lambda b: b.name):
        caps = backend.capabilities()
        if caps.simulated:
            continue  # model measured backends only
        if banded:
            # banded plans have no PCR front-end — k is pinned to the
            # stencil's Thomas-style sweep, never an exploration axis
            ks = (0,)
        elif request.k is not None:
            ks = (request.k,)
        else:
            ks = candidate_ks(request.m, request.n, heuristic=heuristic)
        if request.workers is not None:
            workers_opts = (request.workers,)
        elif caps.max_workers > 1 and request.m >= 64:
            workers_opts = (1, 4)
        else:
            workers_opts = (1,)
        for k in ks:
            if request.fingerprint is not None:
                tiers = (fingerprint_tier(request.fingerprint),)
            else:
                # the baseline tier is what fingerprint=None actually
                # runs under for this (k, rtol) — see
                # :func:`repro.autotune.model.effective_fingerprint_tier`
                if k != 0 and _rtol_permits(request):
                    tiers = ["auto+rtol"]
                else:
                    tiers = ["auto"]
                if caps.prepared and (k == 0 or _rtol_permits(request)):
                    tiers.append("forced")
            for w in workers_opts:
                for tier in tiers:
                    routes.append({
                        "backend": backend.name,
                        "k": int(k),
                        "workers": int(w),
                        "fingerprint": tier,
                        "ranks": 1,
                    })
    # ranks axis: multi-rank backends partition N, so the variants only
    # make sense where the interface exchange can amortize (large N)
    if not banded:
        for backend in sorted(candidates, key=lambda b: b.name):
            caps = backend.capabilities()
            if caps.simulated or caps.max_ranks <= 1:
                continue
            if request.ranks is not None:
                ranks_opts = (
                    (request.ranks,) if request.ranks > 1 else ()
                )
            elif request.n >= 4096:
                ranks_opts = (2, 4)
            else:
                ranks_opts = ()
            for r in ranks_opts:
                routes.append({
                    "backend": backend.name,
                    # the partitioned pipeline is its own algorithm —
                    # no PCR front-end, so k stays 0 unless pinned
                    "k": int(request.k) if request.k is not None else 0,
                    "workers": 1,
                    "fingerprint": "auto",
                    "ranks": int(min(r, caps.max_ranks)),
                })
    return routes[:MAX_CANDIDATE_ROUTES]


class AdaptiveRouter(Router):
    """Trace-calibrated backend/knob selection (see module docs).

    Parameters
    ----------
    model:
        An existing :class:`~repro.autotune.model.PerformanceModel`;
        built (or loaded from ``model_path``) when omitted.
    model_path:
        Versioned JSON persistence location.  Missing, corrupt, or
        foreign-version files degrade to an empty model (note kept in
        :attr:`load_note`) — they never raise.
    epsilon:
        Exploration rate in ``[0, 1]``: fraction of per-cell selections
        spent sampling the least-measured candidate route.  ``0``
        disables exploration entirely (pure exploit-or-static).
    min_samples:
        Trust threshold forwarded to a model built here.
    autosave_every:
        Persist the model every N observations (``0`` = only on
        explicit :meth:`save`).  Requires ``model_path``.
    rules:
        Static fallback rules, exactly as for :class:`Router`.
    """

    kind = "adaptive"

    def __init__(
        self,
        model: PerformanceModel | None = None,
        *,
        model_path=None,
        epsilon: float = 0.1,
        min_samples: int = 2,
        autosave_every: int = 0,
        heuristic=GTX480_HEURISTIC,
        rules: tuple = (),
    ):
        super().__init__(rules=rules)
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError(f"epsilon must be in [0, 1], got {epsilon}")
        self.epsilon = float(epsilon)
        self.model_path = model_path
        self.heuristic = heuristic
        self.autosave_every = int(autosave_every)
        self.load_note: str | None = None
        if model is None:
            model, self.load_note = PerformanceModel.load_or_new(
                model_path, min_samples=min_samples
            )
        self.model = model
        self._lock = threading.Lock()
        self._picks: dict = {}  # cell -> selections made
        self._observed = 0

    # ---- selection ---------------------------------------------------
    def select(self, request, candidates: list):
        """Pick a backend; refine unset request knobs from the model."""
        cell = cell_key_for(request)
        by_name = {b.name: b for b in candidates}
        names = tuple(b.name for b in candidates)
        rtol_ok = _rtol_permits(request)

        def admissible(route: dict) -> bool:
            return self._admissible(route, request, by_name, rtol_ok)

        best = self.model.best(cell, admissible=admissible)
        explore = self._tick_explore(cell)
        if explore:
            routes = self._candidate_routes(request, candidates)
            route = self.model.least_sampled(cell, routes)
            if route is not None:
                return self._apply(
                    request, route, by_name, names, cell,
                    model="hit" if best is not None else "cold",
                    explore=True,
                    reason="epsilon exploration: least-sampled route",
                )
        if best is None:
            chosen = super().select(request, candidates)
            # keep the static decision's reason, annotate the cold cell
            decision = request.decision
            request.decision = RouteDecision(
                router=self.kind,
                chosen=decision.chosen,
                candidates=decision.candidates,
                cell=cell,
                model="cold",
                reason=f"cold cell -> static policy ({decision.reason})",
            )
            return chosen
        route, stats = best
        return self._apply(
            request, route, by_name, names, cell,
            model="hit",
            explore=False,
            reason=(
                f"measured best: {stats.mean_s * 1e3:.3f} ms mean "
                f"over {stats.count} samples"
            ),
        )

    def _tick_explore(self, cell: str) -> bool:
        """Deterministic epsilon schedule: explore when the running
        fraction of exploration picks falls below ``epsilon``."""
        if self.epsilon <= 0.0:
            return False
        with self._lock:
            picks = self._picks.get(cell, 0) + 1
            self._picks[cell] = picks
        # cold cells never explore: the first samples must come from
        # the static route, keeping cold-start behaviour identical
        if self.model.observations(cell) == 0:
            return False
        return math.floor(picks * self.epsilon) > math.floor(
            (picks - 1) * self.epsilon
        )

    def _admissible(
        self, route: dict, request, by_name: dict, rtol_ok: bool
    ) -> bool:
        """May ``route`` serve ``request`` from these candidates?

        ``rtol_ok`` is the request's precomputed hybrid-reuse license
        (hoisted out of the per-route loop).  ``route`` may be the
        model's stored dict — read-only in here.
        """
        backend = by_name.get(route.get("backend"))
        if backend is None:
            return False  # not capability-approved for this request
        caps = backend.capabilities()
        workers = route.get("workers")
        if workers is not None and workers > 1 and caps.max_workers <= 1:
            return False
        tier = route.get("fingerprint", "auto")
        k = route.get("k", 0) or 0
        if request.fingerprint is not None:
            # caller pinned the tri-state: the route must have been
            # measured under exactly that tier
            if tier != fingerprint_tier(request.fingerprint):
                return False
            if tier == "forced" and not caps.prepared:
                return False
        elif tier == "forced":
            if not caps.prepared:
                return False
            if k != 0 and not rtol_ok:
                return False
        elif tier == "auto+rtol":
            # measured with rtol-licensed hybrid reuse; only a request
            # carrying the same license reproduces that cost
            if k == 0 or not rtol_ok:
                return False
        elif tier == "auto":
            # measured WITHOUT reuse; a licensed request would engage
            # reuse and run a different (cheaper) path — mismatch
            if k != 0 and rtol_ok:
                return False
        elif tier != "off":
            return False  # unknown tier from a foreign model
        ranks = route.get("ranks", 1) or 1
        if ranks > 1 and caps.max_ranks <= 1:
            return False
        # caller-pinned knobs are contracts, not suggestions
        if request.k is not None and route.get("k") != request.k:
            return False
        if request.workers is not None and workers != request.workers:
            return False
        if request.ranks is not None and ranks != request.ranks:
            return False
        return True

    @staticmethod
    def _rtol_permits(request) -> bool:
        return _rtol_permits(request)

    def _candidate_routes(self, request, candidates: list) -> list:
        """The admissible exploration set for this request."""
        by_name = {b.name: b for b in candidates}
        rtol_ok = _rtol_permits(request)
        return [
            r
            for r in candidate_routes(
                request, candidates, heuristic=self.heuristic
            )
            if self._admissible(r, request, by_name, rtol_ok)
        ]

    def _apply(
        self, request, route, by_name, names, cell, *, model, explore, reason
    ):
        """Mutate unset request knobs to ``route`` and stamp provenance."""
        applied = {"backend": route["backend"]}
        if request.k is None and route.get("k") is not None:
            request.k = int(route["k"])
            applied["k"] = request.k
        if request.workers is None and route.get("workers", 1) > 1:
            request.workers = int(route["workers"])
            applied["workers"] = request.workers
        if request.ranks is None and (route.get("ranks", 1) or 1) > 1:
            request.ranks = int(route["ranks"])
            applied["ranks"] = request.ranks
        if request.fingerprint is None:
            tier = route.get("fingerprint", "auto")
            if tier == "forced":
                request.fingerprint = True
                applied["fingerprint"] = "forced"
            elif tier == "off":
                request.fingerprint = False
                applied["fingerprint"] = "off"
        request.decision = RouteDecision(
            router=self.kind,
            chosen=route["backend"],
            candidates=names,
            cell=cell,
            model=model,
            explore=explore,
            route=applied,
            reason=reason,
        )
        return by_name[route["backend"]]

    # ---- feedback ----------------------------------------------------
    def observe(self, request, trace) -> None:
        """Fold a completed dispatch into the model (solve_via hook)."""
        if trace is None or not trace.stages:
            return
        self.model.observe_trace(request, trace)
        if self.autosave_every > 0 and self.model_path is not None:
            with self._lock:
                self._observed += 1
                due = self._observed % self.autosave_every == 0
            if due:
                try:
                    self.model.save(self.model_path)
                except OSError:
                    pass  # persistence is best-effort, never fails a solve

    # ---- lifecycle ---------------------------------------------------
    def save(self) -> str | None:
        """Persist the model to ``model_path`` (no-op without one)."""
        if self.model_path is None:
            return None
        return self.model.save(self.model_path)

    def reset(self) -> None:
        """Forget all measurements (and the per-cell pick counters)."""
        self.model = PerformanceModel(min_samples=self.model.min_samples)
        with self._lock:
            self._picks.clear()
            self._observed = 0


def enable_adaptive_routing(
    model_path=None,
    *,
    epsilon: float = 0.1,
    registry=None,
    engine=None,
    **kwargs,
) -> AdaptiveRouter:
    """Install an :class:`AdaptiveRouter` on a registry (default: the
    process-wide one) and return it.

    ``engine=`` is a convenience: an
    :class:`~repro.engine.engine.ExecutionEngine` with a ``cache_dir``
    contributes its :attr:`~repro.engine.engine.ExecutionEngine.
    router_model_path`, so the calibration file lives next to the
    factorization disk cache.
    """
    from repro.backends.registry import default_registry

    if registry is None:
        registry = default_registry()
    if model_path is None and engine is not None:
        model_path = engine.router_model_path
    router = AdaptiveRouter(model_path=model_path, epsilon=epsilon, **kwargs)
    registry.router = router
    return router


def disable_adaptive_routing(registry=None) -> Router:
    """Restore the static Table-III-style router (returns it)."""
    from repro.backends.registry import default_registry

    if registry is None:
        registry = default_registry()
    router = Router()
    registry.router = router
    return router
