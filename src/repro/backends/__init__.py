"""Unified backend dispatch: one protocol behind every execution path.

The repo's five execution strategies — the single-call reference
solver, the plan-caching engine, the thread-sharded executor, the
simulated-GPU solver, and the N-partitioned distributed solver —
stand behind one two-method :class:`Backend` protocol
(``capabilities()`` + ``execute(request)``) and one registry that
negotiates a :class:`SolveRequest` against capabilities — plain,
prepared, and periodic solves are all the same request shape:

>>> import numpy as np
>>> import repro
>>> from repro.backends import list_backends
>>> sorted(name for name, _ in list_backends())
['distributed', 'engine', 'gpusim', 'numpy', 'threaded']
>>> rng = np.random.default_rng(0)
>>> a = rng.standard_normal((4, 64)); a[:, 0] = 0
>>> c = rng.standard_normal((4, 64)); c[:, -1] = 0
>>> b = 4 + np.abs(a) + np.abs(c); d = rng.standard_normal((4, 64))
>>> x = repro.solve_batch(a, b, c, d, backend="auto")
>>> repro.last_trace().backend
'engine'

Every solve that passes through the registry records a
:class:`SolveTrace` (chosen backend, frozen ``k``, plan-cache hit/miss,
per-stage wall time — with the gpusim backend's predicted device time
side by side); the most recent one is ``repro.last_trace()``.

Layering: ``workloads → api / solver → registry (+ router) → backends
→ core / engine / gpusim`` — see ``docs/ARCHITECTURE.md``.  New
execution strategies (numba, cupy, distributed…) implement the
protocol and call :func:`register_backend`; no other layer changes.
"""

from repro.backends.base import (
    Backend,
    BackendBase,
    Capabilities,
    PerStepSession,
)
from repro.backends.engine_backend import EngineBackend
from repro.backends.gpusim_backend import GpuSimBackend
from repro.backends.numpy_ref import NumpyReferenceBackend, reference_solver
from repro.backends.registry import (
    BackendError,
    BackendRegistry,
    Router,
    bind_via,
    default_registry,
    get_backend,
    list_backends,
    register_backend,
    solve_via,
)
from repro.backends.request import (
    OPTION_NAMES,
    SYSTEM_KINDS,
    SolveOutcome,
    SolveRequest,
    SystemDescriptor,
    block_system,
)
from repro.backends.threaded import ThreadedBackend, execute_sharded
from repro.backends.trace import (
    RouteDecision,
    SolveTrace,
    StageTiming,
    clear_last_trace,
    last_trace,
    record_trace,
)

__all__ = [
    "Backend",
    "BackendBase",
    "BackendError",
    "BackendRegistry",
    "Capabilities",
    "EngineBackend",
    "GpuSimBackend",
    "NumpyReferenceBackend",
    "OPTION_NAMES",
    "PerStepSession",
    "RouteDecision",
    "Router",
    "bind_via",
    "SYSTEM_KINDS",
    "SolveOutcome",
    "SolveRequest",
    "SolveTrace",
    "StageTiming",
    "SystemDescriptor",
    "ThreadedBackend",
    "block_system",
    "clear_last_trace",
    "default_registry",
    "execute_sharded",
    "get_backend",
    "last_trace",
    "list_backends",
    "record_trace",
    "reference_solver",
    "register_backend",
    "solve_via",
]
