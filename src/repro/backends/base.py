"""The :class:`Backend` protocol and the vocabulary it speaks.

A *backend* is one way of executing a tridiagonal batch solve.  The
repo grew four of them organically — the single-call reference solver,
the plan-caching engine, the simulated-GPU solver, and the thread-
sharded executor — and for a while each solve flavour (plain,
prepared, periodic) had its own protocol method.  The protocol is now
two methods around one request shape:

``capabilities()``
    What the backend can negotiate: dtypes, periodic systems, layouts,
    worker counts, prepared execution, whether its timing is simulated.
``execute(request)``
    Run one :class:`~repro.backends.request.SolveRequest` — plain,
    prepared (``rhs_only``), or cyclic (``periodic``) — and return a
    :class:`~repro.backends.request.SolveOutcome` carrying the
    solution and its :class:`~repro.backends.trace.SolveTrace`.

``instrument()`` (supplied by :class:`BackendBase`) still exposes the
most recent trace per thread for callers that hold a backend directly.

The registry (:mod:`repro.backends.registry`) negotiates capabilities
against a request and routes; adding a fifth backend (numba, cupy,
distributed…) means implementing this protocol and registering it —
no new dispatch code anywhere else.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from repro.backends.request import SolveOutcome, SolveRequest
from repro.backends.trace import SolveTrace, StageTiming, record_trace

__all__ = [
    "Backend",
    "BackendBase",
    "Capabilities",
    "PerStepSession",
    "SolveOutcome",
    "SolveRequest",
]

#: dtype names every NumPy-backed solver in this repo accepts.
FLOAT_DTYPES = ("float32", "float64")


@dataclass(frozen=True)
class Capabilities:
    """What one backend supports — the registry negotiates against this.

    Attributes
    ----------
    dtypes:
        Canonical dtype names (``"float64"``…) the backend accepts.
    periodic:
        Whether the backend may serve cyclic (Sherman–Morrison)
        requests.
    layouts:
        Accepted input layouts.  All current backends take the padded
        contiguous ``(M, N)`` convention; adapters normalize first.
    max_workers:
        Largest useful ``workers=`` value (1 = no sharding).
    max_ranks:
        Largest useful ``ranks=`` value — the N-axis partition count of
        the distributed tier (1 = cannot partition; requests with
        ``ranks > 1`` negotiate only against multi-rank backends).
    simulated:
        True when the backend's timing report is a device-model
        prediction rather than a measurement.
    prepared:
        Whether the backend serves prepared (fingerprinted /
        factorization-cached, RHS-only) solves.  Requests with
        ``fingerprint=True`` or ``rhs_only=True`` negotiate only
        against prepared-capable backends.
    systems:
        System kinds the backend can execute — entries of
        :data:`~repro.backends.request.SYSTEM_KINDS`.  Defaults to
        tridiagonal only, so backends ignorant of the descriptor axis
        are automatically rejected for penta/block requests instead of
        mis-executing them.
    description:
        One-line summary for ``repro backends`` listings.
    """

    dtypes: tuple = FLOAT_DTYPES
    periodic: bool = True
    layouts: tuple = ("contiguous",)
    max_workers: int = 1
    max_ranks: int = 1
    simulated: bool = False
    prepared: bool = False
    systems: tuple = ("tridiagonal",)
    description: str = ""


@runtime_checkable
class Backend(Protocol):
    """The one dispatch seam every execution strategy stands behind."""

    name: str
    priority: int

    def capabilities(self) -> Capabilities:
        """Static description of what this backend can negotiate."""
        ...

    def execute(self, request: SolveRequest) -> SolveOutcome:
        """Run one request (plain / prepared / periodic) end to end."""
        ...


class PerStepSession:
    """Generic bound-solve session: full dispatch on every step.

    The fallback ``bind()`` result for backends with no native session
    support (numpy reference, gpusim): the request is frozen once, and
    each :meth:`step` re-dispatches it through the backend's
    ``execute`` with a fresh right-hand side.  No per-step work is
    saved — the value is *API parity*: callers hold one session type
    (:class:`~repro.engine.session.BoundSolve` or this) and write the
    same time-stepping loop against either.
    """

    mode = "dispatch"

    def __init__(self, backend, request: SolveRequest):
        self.backend = backend
        self.request = request
        self.steps = 0
        self.closed = False

    def step_once(self, d=None, out=None) -> SolveOutcome:
        """One full instrumented dispatch (stats, trace, outcome)."""
        if self.closed:
            raise RuntimeError("session is closed")
        request = self.request
        if d is not None or out is not None:
            request = request.replace(
                d=d if d is not None else request.d,
                out=out if out is not None else request.out,
            )
        outcome = self.backend.execute(request)
        if outcome.trace is not None and outcome.trace.decision is None:
            # bind-time provenance rides on every step's trace
            outcome.trace.decision = request.decision
        self.steps += 1
        return outcome

    def step(self, d, out=None):
        """Solve one right-hand side; returns the solution array."""
        return self.step_once(d, out=out).x

    def step_t(self, dt, out_t=None):
        """Transposed-layout step: ``(N, M)`` in, ``(N, M)`` out.

        API parity with ``BoundSolve.step_t`` — here it is plain
        transposes around :meth:`step` (this session saves no per-step
        work anyway).
        """
        x = self.step(np.ascontiguousarray(dt.T))
        if out_t is None:
            return np.ascontiguousarray(x.T)
        out_t[:] = x.T
        return out_t

    def describe(self) -> dict:
        """Session summary (mirrors ``BoundSolve.describe``)."""
        request = self.request
        return {
            "mode": self.mode,
            "backend": getattr(self.backend, "name", "?"),
            "m": request.m,
            "n": request.n,
            "dtype": request.dtype,
            "workers": request.workers,
            "steps": self.steps,
        }

    def close(self) -> None:
        """Mark the session closed (nothing is held to release)."""
        self.closed = True

    def __enter__(self) -> "PerStepSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class BackendBase:
    """Shared plumbing for concrete backends.

    Subclasses implement :meth:`capabilities` and :meth:`execute`, and
    store their trace with :meth:`_set_trace`; this base supplies
    thread-local trace storage, the :meth:`instrument` accessor, the
    generic cyclic fallback (:meth:`_periodic_fallback`) for backends
    with no native Sherman–Morrison pipeline, the generic per-step
    :meth:`bind` (engine-family backends override it with native
    :class:`~repro.engine.session.BoundSolve` sessions), and the
    :meth:`solve_batch` convenience wrapper (validate → build request →
    execute → record trace) used by standalone callers such as
    benchmarks.

    ``bind`` is deliberately **not** part of the
    :class:`Backend` protocol — the protocol is runtime-checkable and
    third-party backends implementing just ``capabilities``/``execute``
    must keep passing ``isinstance`` checks.  Callers probe for it
    (``getattr(backend, "bind", None)``) and fall back to
    :class:`PerStepSession`.
    """

    name = "base"
    priority = 0

    def __init__(self):
        self._traces = threading.local()

    # -- instrumentation ----------------------------------------------
    def _set_trace(self, trace: SolveTrace) -> SolveTrace:
        self._traces.trace = trace
        return trace

    def instrument(self) -> SolveTrace:
        trace = getattr(self._traces, "trace", None)
        if trace is None:
            raise RuntimeError(
                f"backend {self.name!r} has not executed on this thread yet"
            )
        return trace

    # -- cyclic (Sherman–Morrison) fallback ----------------------------
    def _periodic_fallback(self, request: SolveRequest) -> SolveOutcome:
        """Generic cyclic solve: corner-reduce + two plain ``execute``\\ s.

        Any backend that can solve plain batches can serve periodic
        requests through this fallback — the correction algebra is the
        shared implementation in :mod:`repro.core.periodic`, so results
        stay elementwise identical to every other path.  Backends with
        a cheaper route (the engine family's prepared cyclic sweep)
        never call it.
        """
        from repro.core.periodic import (
            apply_cyclic_correction,
            correction_denominator,
            correction_scale,
            cyclic_reduce,
        )

        t0 = time.perf_counter()
        ap, bp, cp, u, w = cyclic_reduce(
            request.a, request.b, request.c, check=request.check
        )
        t_reduce = time.perf_counter() - t0

        inner = request.replace(
            a=ap, b=bp, c=cp, periodic=False, out=None, fingerprint=False
        )
        y_outcome = self.execute(inner)
        y = y_outcome.x
        q_outcome = self.execute(inner.replace(d=u))
        q = q_outcome.x

        t1 = time.perf_counter()
        scale = correction_scale(
            correction_denominator(q, w), request.n, check=request.check
        )
        x = apply_cyclic_correction(y, q, w, scale, out=request.out)
        t_correct = time.perf_counter() - t1

        # the q-solve's trace carries the plan detail; promote it to
        # describe the whole cyclic solve, keeping *both* inner solves'
        # stage timings (prefixed, so stage() lookups stay unambiguous)
        trace = q_outcome.trace
        trace.periodic = True
        trace.stages = [
            StageTiming("cyclic-reduce", t_reduce),
            *(
                StageTiming(f"cyclic-y:{s.name}", s.seconds, s.predicted_us)
                for s in y_outcome.trace.stages
            ),
            *(
                StageTiming(f"cyclic-q:{s.name}", s.seconds, s.predicted_us)
                for s in trace.stages
            ),
            StageTiming("cyclic-correction", t_correct),
        ]
        self._set_trace(trace)
        return SolveOutcome(x=x, trace=trace, plan=q_outcome.plan)

    # -- bind/execute split --------------------------------------------
    def bind(self, request: SolveRequest) -> PerStepSession:
        """Bind ``request`` into a reusable per-step session.

        The generic fallback re-dispatches the full ``execute`` every
        step; backends with real bind-time savings (plan resolution,
        factorization fetch, workspace binding) override this to return
        a native session.
        """
        return PerStepSession(self, request)

    # -- convenience entry point --------------------------------------
    def solve_batch(self, a, b, c, d, *, check: bool = True, out=None, **opts):
        """One-call solve through this backend (bypasses the router)."""
        request = SolveRequest.build(
            a, b, c, d, check=check, out=out, **opts
        )
        outcome = self.execute(request)
        record_trace(outcome.trace)
        return outcome.x
