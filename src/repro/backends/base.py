"""The :class:`Backend` protocol and the vocabulary it speaks.

A *backend* is one way of executing a tridiagonal batch solve.  The
repo grew four of them organically — the single-call reference solver,
the plan-caching engine, the simulated-GPU solver, and the thread-
sharded executor — each with its own entry path, validation and
reporting.  This module defines the one interface they all now stand
behind:

``capabilities()``
    What the backend can negotiate: dtypes, periodic systems, layouts,
    worker counts, whether its timing is simulated.
``prepare(signature)``
    Freeze the launch-time decisions (transition ``k``, windows,
    buffers) for one :class:`SolveSignature` into an opaque plan.
    Plan-caching backends answer repeated signatures from cache.
``execute(plan, batch, out=)``
    Run one ``(M, N)`` batch through a prepared plan.
``instrument()``
    The :class:`~repro.backends.trace.SolveTrace` of the most recent
    ``execute`` on this thread.

The registry (:mod:`repro.backends.registry`) negotiates capabilities
against a signature and routes; adding a fifth backend (numba, cupy,
distributed…) means implementing this protocol and registering it —
no new dispatch code anywhere else.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, replace
from typing import Protocol, runtime_checkable

import numpy as np

from repro.backends.trace import SolveTrace, StageTiming, record_trace
from repro.core.validation import check_batch_arrays, coerce_batch_arrays

__all__ = ["Backend", "BackendBase", "Capabilities", "SolveSignature"]

#: dtype names every NumPy-backed solver in this repo accepts.
FLOAT_DTYPES = ("float32", "float64")


@dataclass(frozen=True)
class Capabilities:
    """What one backend supports — the registry negotiates against this.

    Attributes
    ----------
    dtypes:
        Canonical dtype names (``"float64"``…) the backend accepts.
    periodic:
        Whether the backend may serve the inner solves of the cyclic
        (Sherman–Morrison) path.
    layouts:
        Accepted input layouts.  All current backends take the padded
        contiguous ``(M, N)`` convention; adapters normalize first.
    max_workers:
        Largest useful ``workers=`` value (1 = no sharding).
    simulated:
        True when the backend's timing report is a device-model
        prediction rather than a measurement.
    prepared:
        Whether the backend serves prepared (fingerprinted /
        factorization-cached, RHS-only) solves.  Signatures with
        ``fingerprint=True`` negotiate only against prepared-capable
        backends.
    description:
        One-line summary for ``repro backends`` listings.
    """

    dtypes: tuple = FLOAT_DTYPES
    periodic: bool = True
    layouts: tuple = ("contiguous",)
    max_workers: int = 1
    simulated: bool = False
    prepared: bool = False
    description: str = ""


@dataclass(frozen=True)
class SolveSignature:
    """Everything a backend needs to freeze a plan for one problem shape.

    Mirrors the engine's plan signature (PR 1) plus the negotiation
    axes: dtype, periodicity and requested worker count.  ``heuristic``
    is a :class:`~repro.core.transition.TransitionHeuristic` override
    (``None`` = backend default).  ``fingerprint`` is the
    factorization-cache tri-state: ``None`` auto-engages where bitwise
    safe (``k = 0``), ``True`` requires prepared execution (and
    restricts negotiation to prepared-capable backends), ``False``
    disables fingerprinting.
    """

    m: int
    n: int
    dtype: str = "float64"
    k: int | None = None
    fuse: bool = False
    n_windows: int = 1
    subtile_scale: int = 1
    parallelism: int | None = None
    workers: int | None = None
    periodic: bool = False
    heuristic: object = None
    fingerprint: bool | None = None

    #: keyword options accepted by :meth:`for_batch` / ``solve_batch``.
    OPTION_NAMES = (
        "k",
        "fuse",
        "n_windows",
        "subtile_scale",
        "parallelism",
        "workers",
        "periodic",
        "heuristic",
        "fingerprint",
    )

    @classmethod
    def for_batch(cls, b, **opts) -> "SolveSignature":
        """Build a signature from a coerced ``(M, N)`` batch + options."""
        unknown = sorted(set(opts) - set(cls.OPTION_NAMES))
        if unknown:
            raise TypeError(
                f"unknown solve option(s) {unknown}; "
                f"valid options: {sorted(cls.OPTION_NAMES)}"
            )
        b = np.asarray(b)
        if b.ndim != 2:
            raise ValueError(f"batch must be 2-D (M, N), got {b.ndim}-D")
        m, n = b.shape
        return cls(m=m, n=n, dtype=np.dtype(b.dtype).name, **opts)

    def with_options(self, **opts) -> "SolveSignature":
        """A copy of this signature with some fields replaced."""
        return replace(self, **opts)


@runtime_checkable
class Backend(Protocol):
    """The one dispatch seam every execution strategy stands behind."""

    name: str
    priority: int

    def capabilities(self) -> Capabilities:
        """Static description of what this backend can negotiate."""
        ...

    def prepare(self, signature: SolveSignature):
        """Freeze the launch-time decisions for ``signature`` → plan."""
        ...

    def execute(self, plan, batch, out=None) -> np.ndarray:
        """Run ``batch`` (a coerced ``(a, b, c, d)`` tuple) through ``plan``."""
        ...

    def execute_periodic(
        self, signature: SolveSignature, batch, out=None, *, check: bool = True
    ) -> np.ndarray:
        """Solve a cyclic batch (corners in ``a[:, 0]`` / ``c[:, -1]``)."""
        ...

    def instrument(self) -> SolveTrace:
        """The trace of the most recent :meth:`execute` on this thread."""
        ...


class BackendBase:
    """Shared plumbing for concrete backends.

    Subclasses implement :meth:`capabilities`, :meth:`prepare` and
    :meth:`execute`, and store their trace with :meth:`_set_trace`;
    this base supplies thread-local trace storage, the
    :meth:`instrument` accessor, and the :meth:`solve_batch`
    convenience wrapper (validate → prepare → execute → record trace)
    used by standalone callers such as benchmarks.
    """

    name = "base"
    priority = 0

    def __init__(self):
        self._traces = threading.local()

    # -- instrumentation ----------------------------------------------
    def _set_trace(self, trace: SolveTrace) -> SolveTrace:
        self._traces.trace = trace
        return trace

    def instrument(self) -> SolveTrace:
        trace = getattr(self._traces, "trace", None)
        if trace is None:
            raise RuntimeError(
                f"backend {self.name!r} has not executed on this thread yet"
            )
        return trace

    # -- cyclic (Sherman–Morrison) execution --------------------------
    def execute_periodic(
        self, signature: SolveSignature, batch, out=None, *, check: bool = True
    ):
        """Generic cyclic solve: corner-reduce + two inner ``execute``\\ s.

        Any backend that can solve plain batches can serve periodic
        ones through this fallback — the correction algebra is the
        shared implementation in :mod:`repro.core.periodic`, so results
        stay elementwise identical to every other path.  Backends with
        a cheaper route (the engine's prepared cyclic sweep) override.
        """
        from repro.core.periodic import (
            apply_cyclic_correction,
            correction_denominator,
            correction_scale,
            cyclic_reduce,
        )

        a, b, c, d = batch
        t0 = time.perf_counter()
        ap, bp, cp, u, w = cyclic_reduce(a, b, c, check=check)
        t_reduce = time.perf_counter() - t0

        plan = self.prepare(signature.with_options(periodic=False))
        y = self.execute(plan, (ap, bp, cp, d))
        q = self.execute(plan, (ap, bp, cp, u))
        # the q-solve's trace carries the plan/stage detail; promote it
        # to describe the whole cyclic solve
        trace = self.instrument()

        t1 = time.perf_counter()
        scale = correction_scale(
            correction_denominator(q, w), b.shape[1], check=check
        )
        x = apply_cyclic_correction(y, q, w, scale, out=out)
        t_correct = time.perf_counter() - t1

        trace.periodic = True
        trace.stages = [
            StageTiming("cyclic-reduce", t_reduce),
            *trace.stages,
            StageTiming("cyclic-correction", t_correct),
        ]
        self._set_trace(trace)
        return x

    # -- convenience entry point --------------------------------------
    def solve_batch(self, a, b, c, d, *, check: bool = True, out=None, **opts):
        """One-call solve through this backend (bypasses the router)."""
        if check:
            a, b, c, d = check_batch_arrays(a, b, c, d)
        else:
            a, b, c, d = coerce_batch_arrays(a, b, c, d)
        sig = SolveSignature.for_batch(b, **opts)
        plan = self.prepare(sig)
        x = self.execute(plan, (a, b, c, d), out=out)
        record_trace(self.instrument())
        return x


def stage_timings_to_trace(stage_times) -> list:
    """Convert ``[(name, seconds), ...]`` hook output to trace stages."""
    from repro.backends.trace import StageTiming

    return [StageTiming(name=n, seconds=s) for n, s in stage_times]
