"""The default backend: the PR-1 plan-caching, workspace-pooling engine.

Wraps the process-wide :class:`~repro.engine.engine.ExecutionEngine`
behind the :class:`~repro.backends.base.Backend` protocol.  ``execute``
hands the request straight to :meth:`ExecutionEngine.run
<repro.engine.engine.ExecutionEngine.run>` — the engine's one
entrypoint answers plans from its LRU cache, serves repeat
coefficients (and prepared handles) through the factorization cache,
and runs against pooled workspaces.  ``workers=`` requests are
honoured through the engine's sharding seam, though the router
normally sends those to the threaded backend instead.
"""

from __future__ import annotations

from repro.backends.base import BackendBase, Capabilities
from repro.backends.request import SolveOutcome, SolveRequest
from repro.engine import ExecutionEngine, default_engine
from repro.util.pools import executor_cap

__all__ = ["EngineBackend"]


class EngineBackend(BackendBase):
    """Registry adapter over the solve-plan execution engine (default)."""

    name = "engine"
    priority = 100

    def __init__(self, engine: ExecutionEngine | None = None):
        super().__init__()
        self._engine = engine

    @property
    def engine(self) -> ExecutionEngine:
        """The wrapped engine (the process-wide one unless injected)."""
        return self._engine if self._engine is not None else default_engine()

    def capabilities(self) -> Capabilities:
        # memoized: Capabilities is frozen and this sits on every
        # dispatch (and router admissibility) hot path
        caps = getattr(self, "_caps", None)
        if caps is None:
            # max_workers is the accepted limit, not the core count —
            # sharding stays functional (and bitwise-safe) on any
            # machine — but it is a *cap*, proportional to the host:
            # the old max(32, cpus) floor pinned >= 32 threads onto
            # 2-core machines.
            caps = self._caps = Capabilities(
                max_workers=executor_cap(),
                prepared=True,
                systems=("tridiagonal", "pentadiagonal", "block"),
                description=(
                    "plan-caching + workspace-pooling engine — warm solves "
                    "allocate only their result, repeat coefficients hit the "
                    "factorization cache (default)"
                ),
            )
        return caps

    def execute(self, request: SolveRequest) -> SolveOutcome:
        outcome = self.engine.run(request)
        self._set_trace(outcome.trace)
        return outcome

    def bind(self, request: SolveRequest):
        """Native session: the engine's bind/execute split.

        Returns a :class:`~repro.engine.session.BoundSolve` — plan,
        factorization, workspaces and shard geometry resolved once,
        allocation-free ``step`` per right-hand side.
        """
        return self.engine.bind(request)
