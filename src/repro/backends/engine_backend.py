"""The default backend: the PR-1 plan-caching, workspace-pooling engine.

Wraps the process-wide :class:`~repro.engine.engine.ExecutionEngine`
behind the :class:`~repro.backends.base.Backend` protocol.  ``prepare``
answers from the engine's LRU plan cache (the trace records hit/miss);
``execute`` runs against pooled workspaces; ``workers=`` requests are
honoured through the engine's sharding seam, though the router
normally sends those to the threaded backend instead.
"""

from __future__ import annotations

import os

import numpy as np

from repro.backends.base import BackendBase, Capabilities, SolveSignature
from repro.backends.trace import SolveTrace, StageTiming
from repro.engine import ExecutionEngine, default_engine

__all__ = ["EngineBackend"]


class EngineBackend(BackendBase):
    """Registry adapter over the solve-plan execution engine (default)."""

    name = "engine"
    priority = 100

    def __init__(self, engine: ExecutionEngine | None = None):
        super().__init__()
        self._engine = engine

    @property
    def engine(self) -> ExecutionEngine:
        """The wrapped engine (the process-wide one unless injected)."""
        return self._engine if self._engine is not None else default_engine()

    def capabilities(self) -> Capabilities:
        # max_workers is the accepted limit, not the core count —
        # sharding stays functional (and bitwise-safe) on any machine.
        return Capabilities(
            max_workers=max(32, os.cpu_count() or 1),
            prepared=True,
            description=(
                "plan-caching + workspace-pooling engine — warm solves "
                "allocate only their result, repeat coefficients hit the "
                "factorization cache (default)"
            ),
        )

    def prepare(self, signature: SolveSignature):
        info: dict = {}
        plan = self.engine.plan_for(
            signature.m,
            signature.n,
            np.dtype(signature.dtype),
            k=signature.k,
            fuse=signature.fuse,
            n_windows=signature.n_windows,
            subtile_scale=signature.subtile_scale,
            parallelism=signature.parallelism,
            heuristic=signature.heuristic,
            info=info,
        )
        return (signature, plan, info.get("cache", "miss"))

    def execute(self, prepared, batch, out=None) -> np.ndarray:
        from repro.core.hybrid import HybridReport
        from repro.core.tiled_pcr import TilingCounters

        signature, plan, cache = prepared
        a, b, c, d = batch
        stage_times: list = []
        counters = TilingCounters()
        report = HybridReport(
            m=signature.m,
            n=signature.n,
            k=plan.k,
            k_source=plan.k_source,
            subsystems=signature.m * plan.g,
            fused=plan.fuse,
            n_windows=plan.n_windows,
            tiling=counters,
        )
        workers = signature.workers
        info: dict = {}
        x = self.engine.dispatch(
            plan, a, b, c, d,
            workers=workers,
            fingerprint=signature.fingerprint,
            counters=counters,
            out=out,
            info=info,
            stage_times=stage_times,
        )
        self.engine.last_report = report
        self._set_trace(
            SolveTrace(
                backend=self.name,
                m=signature.m,
                n=signature.n,
                dtype=signature.dtype,
                k=plan.k,
                k_source=plan.k_source,
                fuse=plan.fuse,
                n_windows=plan.n_windows,
                workers=workers if workers is not None else 1,
                plan_cache=cache,
                factorization=info.get("factorization", "n/a"),
                rhs_only=info.get("rhs_only", False),
                stages=[StageTiming(n_, s) for n_, s in stage_times],
            )
        )
        return x

    def execute_periodic(
        self, signature: SolveSignature, batch, out=None, *, check: bool = True
    ) -> np.ndarray:
        a, b, c, d = batch
        stage_times: list = []
        info: dict = {}
        workers = signature.workers
        x = self.engine.solve_periodic(
            a, b, c, d,
            check=check,
            workers=workers,
            k=signature.k,
            fuse=signature.fuse,
            n_windows=signature.n_windows,
            subtile_scale=signature.subtile_scale,
            parallelism=signature.parallelism,
            heuristic=signature.heuristic,
            fingerprint=signature.fingerprint,
            out=out,
            info=info,
            stage_times=stage_times,
        )
        plan = info["plan"]
        self._set_trace(
            SolveTrace(
                backend=self.name,
                m=signature.m,
                n=signature.n,
                dtype=signature.dtype,
                k=plan.k,
                k_source=plan.k_source,
                fuse=plan.fuse,
                n_windows=plan.n_windows,
                workers=workers if workers is not None else 1,
                plan_cache=info.get("cache", "n/a"),
                factorization=info.get("factorization", "n/a"),
                rhs_only=info.get("rhs_only", False),
                periodic=True,
                stages=[StageTiming(n_, s) for n_, s in stage_times],
            )
        )
        return x
