"""The simulated-GPU backend: real numerics + device-model pricing.

Wraps :class:`~repro.kernels.hybrid_gpu.GpuHybridSolver` behind the
backend protocol so counter/timing reports ride the same interface as
every other solve.  ``execute`` solves the request numerically (through
the engine spine, with the *device* plan's launch parameters) and
prices the same launch on the device model; the resulting trace carries
each kernel stage's **predicted** device time next to the **measured**
NumPy wall time, plus the predicted total.  Cyclic requests price the
Sherman–Morrison pipeline (two inner launches — or the prepared
RHS-only sweep — plus the rank-one correction pair).

Numerics note: the device planner caps ``k`` by shared-memory capacity
and picks Fig. 11b window counts, so its plan can differ from the
reference heuristic's — results then agree with the other backends to
floating-point tolerance rather than bitwise (the documented-tolerance
path asserted in ``tests/test_backends.py``).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.backends.base import BackendBase, Capabilities
from repro.backends.request import SolveOutcome, SolveRequest
from repro.backends.trace import SolveTrace, StageTiming
from repro.kernels.hybrid_gpu import GpuHybridSolver

__all__ = ["GpuSimBackend"]

#: engine stages with no device-side counterpart — excluded from the
#: positional measured-vs-predicted kernel pairing
_HOST_STAGES = ("prepare", "fingerprint", "factorize")
_HOST_STAGES_PERIODIC = _HOST_STAGES + ("cyclic-reduce",)


@lru_cache(maxsize=64)
def _distributed_plan_cached(
    m: int, n: int, ranks: int, dtype_bytes: int, device
) -> tuple:
    """Memoized comm-kernel stage plan (DeviceSpec is frozen/hashable)."""
    from repro.kernels.comm_kernel import distributed_plan

    return tuple(
        distributed_plan(m, n, ranks, dtype_bytes, device=device)
    )


class GpuSimBackend(BackendBase):
    """Registry adapter over the simulated-GTX480 hybrid solver."""

    name = "gpusim"
    priority = 10

    def __init__(self, solver: GpuHybridSolver | None = None):
        super().__init__()
        self.solver = solver if solver is not None else GpuHybridSolver()

    def capabilities(self) -> Capabilities:
        caps = getattr(self, "_caps", None)
        if caps is None:
            caps = self._caps = Capabilities(
                simulated=True,
                prepared=True,
                max_ranks=64,
                systems=("tridiagonal", "pentadiagonal", "block"),
                description=(
                    f"engine numerics + {self.solver.device.name} "
                    "device-model pricing — trace shows predicted kernel "
                    "times; prepared solves price the RHS-only kernels; "
                    "ranks>1 prices the N-partitioned multi-device pipeline"
                ),
            )
        return caps

    def _execute_distributed(
        self, request: SolveRequest, ranks: int
    ) -> SolveOutcome:
        """Price a ``P``-rank N-partitioned solve on the device model.

        Numerics run in-process through the same slab math the real
        distributed backend ships to its workers
        (:func:`~repro.distributed.partition.partitioned_solve_reference`
        — bitwise identical to the multiprocess path by construction);
        the predicted stage times come from the
        :mod:`~repro.kernels.comm_kernel` ledgers, which model the
        ranks as ``P`` concurrent devices exchanging interface rows
        over a latency/bandwidth link.
        """
        import time as _time

        from repro.distributed.partition import (
            assemble_reduced,
            backsub_slab,
            eliminate_slab,
            slab_bounds,
            solve_reduced,
        )

        if request.periodic:
            # corner-reduce + two plain distributed solves; the inner
            # requests keep ranks=, so each re-enters this route
            return self._periodic_fallback(request)

        dtype_bytes = np.dtype(request.dtype).itemsize
        predicted = {
            name: us
            for name, us in _distributed_plan_cached(
                request.m, request.n, ranks, dtype_bytes,
                self.solver.device,
            )
        }

        t0 = _time.perf_counter()
        bounds = slab_bounds(request.n, ranks)
        at = np.ascontiguousarray(request.a.T)
        bt = np.ascontiguousarray(request.b.T)
        ct = np.ascontiguousarray(request.c.T)
        dt = np.ascontiguousarray(request.d.T)
        t_partition = _time.perf_counter() - t0

        t0 = _time.perf_counter()
        reps, reduced_rows = [], []
        for lo, hi in bounds:
            rep, reduced = eliminate_slab(
                at[lo:hi], bt[lo:hi], ct[lo:hi], dt[lo:hi]
            )
            reps.append(rep)
            reduced_rows.append(reduced)
        t_eliminate = _time.perf_counter() - t0

        t0 = _time.perf_counter()
        xb = solve_reduced(*assemble_reduced(reduced_rows))
        t_reduced = _time.perf_counter() - t0

        t0 = _time.perf_counter()
        xt = np.empty_like(bt)
        for p, (lo, hi) in enumerate(bounds):
            backsub_slab(
                reps[p], xb[:, 2 * p], xb[:, 2 * p + 1], xt[lo:hi]
            )
        t_backsub = _time.perf_counter() - t0

        t0 = _time.perf_counter()
        if request.out is not None:
            x = request.out
            np.copyto(x, xt.T)
        else:
            x = np.ascontiguousarray(xt.T)
        t_comms = _time.perf_counter() - t0

        measured = [
            ("partition", t_partition),
            (f"local-eliminate [{ranks} ranks]", t_eliminate),
            ("reduced-solve", t_reduced),
            (f"backsub [{ranks} ranks]", t_backsub),
            ("comms", t_comms),
        ]
        stages = [
            StageTiming(name, secs, predicted.get(name))
            for name, secs in measured
        ]
        trace = self._set_trace(
            SolveTrace(
                backend=request.label or self.name,
                m=request.m,
                n=request.n,
                dtype=request.dtype,
                k=0,
                k_source="fixed",
                ranks=ranks,
                plan_cache="n/a",
                factorization="n/a",
                system=request.system.kind,
                stages=stages,
                predicted_total_us=sum(predicted.values()),
            )
        )
        return SolveOutcome(x=x, trace=trace)

    def _execute_banded(self, request: SolveRequest) -> SolveOutcome:
        """Run a penta/block request on the engine and price its sweep."""
        from repro.engine import default_engine
        from repro.gpusim.timing import GpuTimingModel
        from repro.kernels.banded_kernel import banded_counters

        dtype_bytes = np.dtype(request.dtype).itemsize
        outcome = default_engine().run(request)
        rhs_only = outcome.trace.rhs_only

        model = GpuTimingModel(self.solver.device)
        predicted = [
            (c.name, model.time(c, dtype_bytes).total_s * 1e6)
            for c in banded_counters(
                request.system.kind,
                request.m,
                request.n,
                dtype_bytes,
                block_size=request.system.block_size,
                prepared=rhs_only,
                device=self.solver.device,
            )
        ]
        predicted_total_us = sum(us for _, us in predicted)

        stages = list(outcome.trace.stages)
        kernel_stages = [s for s in stages if s.name not in _HOST_STAGES]
        for stage, (_, us) in zip(kernel_stages, predicted):
            stage.predicted_us = us
        for name, us in predicted[len(kernel_stages):]:
            stages.append(StageTiming(f"{name} (predicted)", 0.0, us))

        trace = self._set_trace(
            SolveTrace(
                backend=request.label or self.name,
                m=request.m,
                n=request.n,
                dtype=request.dtype,
                k=0,
                k_source="banded",
                plan_cache=outcome.trace.plan_cache,
                factorization=outcome.trace.factorization,
                rhs_only=rhs_only,
                workers=outcome.trace.workers,
                system=request.system.kind,
                stages=stages,
                predicted_total_us=predicted_total_us,
            )
        )
        return SolveOutcome(
            x=outcome.x,
            trace=trace,
            factorization=outcome.factorization,
            plan=outcome.plan,
        )

    def execute(self, request: SolveRequest) -> SolveOutcome:
        from repro.engine import default_engine
        from repro.gpusim.timing import GpuTimingModel
        from repro.kernels.rhs_kernel import (
            cyclic_correction_counters,
            rhs_only_counters,
        )

        if request.system.kind != "tridiagonal":
            return self._execute_banded(request)

        if request.ranks is not None and request.ranks > 1:
            from repro.distributed.partition import effective_ranks

            ranks = effective_ranks(request.n, request.ranks)
            if ranks > 1:
                return self._execute_distributed(request, ranks)

        dtype_bytes = np.dtype(request.dtype).itemsize
        if request.k is None:
            k, n_windows = self.solver.plan(request.m, request.n, dtype_bytes)
            k_source = "device-plan"
        else:
            k = request.k
            n_windows = self.solver.plan_windows(request.m, request.n, k)
            k_source = "fixed"

        # solve on the engine spine under the *device* plan's launch
        # parameters; the trace it returns carries the measured stages
        outcome = default_engine().run(
            request.replace(
                k=k,
                n_windows=n_windows,
                subtile_scale=self.solver.subtile_scale,
                fuse=self.solver.fuse,
            )
        )
        rhs_only = outcome.trace.rhs_only
        report = self.solver.predict(
            request.m, request.n, dtype_bytes, k=k, n_windows=n_windows
        )

        if request.periodic or rhs_only:
            model = GpuTimingModel(self.solver.device)

            def price(counters):
                return [
                    (c.name, model.time(c, dtype_bytes).total_s * 1e6)
                    for c in counters
                ]

        if rhs_only:
            # the stored factorization skipped elimination — price the
            # RHS-only kernel sequence instead of the full launch
            sweep = price(rhs_only_counters(
                request.m, request.n, report.k, dtype_bytes,
                device=self.solver.device,
            ))
        if request.periodic:
            correction = price(cyclic_correction_counters(
                request.m, request.n, dtype_bytes, device=self.solver.device,
            ))
            if rhs_only:
                # prepared cyclic: one RHS-only sweep + the correction pair
                predicted = sweep + correction
            else:
                # unprepared cyclic: the full launch runs twice (y and q
                # inner solves), then the correction pair
                predicted = report.trace_stages() * 2 + correction
        else:
            predicted = sweep if rhs_only else report.trace_stages()
        predicted_total_us = sum(us for _, us in predicted)

        stages = list(outcome.trace.stages)
        # pair measured kernel stages with predicted kernel times
        # positionally (both ledgers follow the same front-end →
        # back-end order); plan/fingerprint/reduction bookkeeping runs
        # host-side and has no device counterpart
        host = _HOST_STAGES_PERIODIC if request.periodic else _HOST_STAGES
        kernel_stages = [s for s in stages if s.name not in host]
        for stage, (_, us) in zip(kernel_stages, predicted):
            stage.predicted_us = us
        for name, us in predicted[len(kernel_stages):]:
            stages.append(StageTiming(f"{name} (predicted)", 0.0, us))

        trace = self._set_trace(
            SolveTrace(
                backend=request.label or self.name,
                m=request.m,
                n=request.n,
                dtype=request.dtype,
                k=report.k,
                k_source=k_source,
                fuse=report.fused,
                n_windows=report.n_windows,
                plan_cache="n/a",
                factorization=outcome.trace.factorization,
                rhs_only=rhs_only,
                periodic=request.periodic,
                stages=stages,
                predicted_total_us=predicted_total_us,
            )
        )
        return SolveOutcome(
            x=outcome.x,
            trace=trace,
            factorization=outcome.factorization,
            plan=outcome.plan,
        )
