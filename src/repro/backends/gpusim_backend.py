"""The simulated-GPU backend: real numerics + device-model pricing.

Wraps :class:`~repro.kernels.hybrid_gpu.GpuHybridSolver` behind the
backend protocol so counter/timing reports ride the same interface as
every other solve.  ``execute`` solves the request numerically (through
the engine spine, with the *device* plan's launch parameters) and
prices the same launch on the device model; the resulting trace carries
each kernel stage's **predicted** device time next to the **measured**
NumPy wall time, plus the predicted total.  Cyclic requests price the
Sherman–Morrison pipeline (two inner launches — or the prepared
RHS-only sweep — plus the rank-one correction pair).

Numerics note: the device planner caps ``k`` by shared-memory capacity
and picks Fig. 11b window counts, so its plan can differ from the
reference heuristic's — results then agree with the other backends to
floating-point tolerance rather than bitwise (the documented-tolerance
path asserted in ``tests/test_backends.py``).
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import BackendBase, Capabilities
from repro.backends.request import SolveOutcome, SolveRequest
from repro.backends.trace import SolveTrace, StageTiming
from repro.kernels.hybrid_gpu import GpuHybridSolver

__all__ = ["GpuSimBackend"]

#: engine stages with no device-side counterpart — excluded from the
#: positional measured-vs-predicted kernel pairing
_HOST_STAGES = ("prepare", "fingerprint", "factorize")
_HOST_STAGES_PERIODIC = _HOST_STAGES + ("cyclic-reduce",)


class GpuSimBackend(BackendBase):
    """Registry adapter over the simulated-GTX480 hybrid solver."""

    name = "gpusim"
    priority = 10

    def __init__(self, solver: GpuHybridSolver | None = None):
        super().__init__()
        self.solver = solver if solver is not None else GpuHybridSolver()

    def capabilities(self) -> Capabilities:
        caps = getattr(self, "_caps", None)
        if caps is None:
            caps = self._caps = Capabilities(
                simulated=True,
                prepared=True,
                systems=("tridiagonal", "pentadiagonal", "block"),
                description=(
                    f"engine numerics + {self.solver.device.name} "
                    "device-model pricing — trace shows predicted kernel "
                    "times; prepared solves price the RHS-only kernels"
                ),
            )
        return caps

    def _execute_banded(self, request: SolveRequest) -> SolveOutcome:
        """Run a penta/block request on the engine and price its sweep."""
        from repro.engine import default_engine
        from repro.gpusim.timing import GpuTimingModel
        from repro.kernels.banded_kernel import banded_counters

        dtype_bytes = np.dtype(request.dtype).itemsize
        outcome = default_engine().run(request)
        rhs_only = outcome.trace.rhs_only

        model = GpuTimingModel(self.solver.device)
        predicted = [
            (c.name, model.time(c, dtype_bytes).total_s * 1e6)
            for c in banded_counters(
                request.system.kind,
                request.m,
                request.n,
                dtype_bytes,
                block_size=request.system.block_size,
                prepared=rhs_only,
                device=self.solver.device,
            )
        ]
        predicted_total_us = sum(us for _, us in predicted)

        stages = list(outcome.trace.stages)
        kernel_stages = [s for s in stages if s.name not in _HOST_STAGES]
        for stage, (_, us) in zip(kernel_stages, predicted):
            stage.predicted_us = us
        for name, us in predicted[len(kernel_stages):]:
            stages.append(StageTiming(f"{name} (predicted)", 0.0, us))

        trace = self._set_trace(
            SolveTrace(
                backend=request.label or self.name,
                m=request.m,
                n=request.n,
                dtype=request.dtype,
                k=0,
                k_source="banded",
                plan_cache=outcome.trace.plan_cache,
                factorization=outcome.trace.factorization,
                rhs_only=rhs_only,
                workers=outcome.trace.workers,
                system=request.system.kind,
                stages=stages,
                predicted_total_us=predicted_total_us,
            )
        )
        return SolveOutcome(
            x=outcome.x,
            trace=trace,
            factorization=outcome.factorization,
            plan=outcome.plan,
        )

    def execute(self, request: SolveRequest) -> SolveOutcome:
        from repro.engine import default_engine
        from repro.gpusim.timing import GpuTimingModel
        from repro.kernels.rhs_kernel import (
            cyclic_correction_counters,
            rhs_only_counters,
        )

        if request.system.kind != "tridiagonal":
            return self._execute_banded(request)

        dtype_bytes = np.dtype(request.dtype).itemsize
        if request.k is None:
            k, n_windows = self.solver.plan(request.m, request.n, dtype_bytes)
            k_source = "device-plan"
        else:
            k = request.k
            n_windows = self.solver.plan_windows(request.m, request.n, k)
            k_source = "fixed"

        # solve on the engine spine under the *device* plan's launch
        # parameters; the trace it returns carries the measured stages
        outcome = default_engine().run(
            request.replace(
                k=k,
                n_windows=n_windows,
                subtile_scale=self.solver.subtile_scale,
                fuse=self.solver.fuse,
            )
        )
        rhs_only = outcome.trace.rhs_only
        report = self.solver.predict(
            request.m, request.n, dtype_bytes, k=k, n_windows=n_windows
        )

        if request.periodic or rhs_only:
            model = GpuTimingModel(self.solver.device)

            def price(counters):
                return [
                    (c.name, model.time(c, dtype_bytes).total_s * 1e6)
                    for c in counters
                ]

        if rhs_only:
            # the stored factorization skipped elimination — price the
            # RHS-only kernel sequence instead of the full launch
            sweep = price(rhs_only_counters(
                request.m, request.n, report.k, dtype_bytes,
                device=self.solver.device,
            ))
        if request.periodic:
            correction = price(cyclic_correction_counters(
                request.m, request.n, dtype_bytes, device=self.solver.device,
            ))
            if rhs_only:
                # prepared cyclic: one RHS-only sweep + the correction pair
                predicted = sweep + correction
            else:
                # unprepared cyclic: the full launch runs twice (y and q
                # inner solves), then the correction pair
                predicted = report.trace_stages() * 2 + correction
        else:
            predicted = sweep if rhs_only else report.trace_stages()
        predicted_total_us = sum(us for _, us in predicted)

        stages = list(outcome.trace.stages)
        # pair measured kernel stages with predicted kernel times
        # positionally (both ledgers follow the same front-end →
        # back-end order); plan/fingerprint/reduction bookkeeping runs
        # host-side and has no device counterpart
        host = _HOST_STAGES_PERIODIC if request.periodic else _HOST_STAGES
        kernel_stages = [s for s in stages if s.name not in host]
        for stage, (_, us) in zip(kernel_stages, predicted):
            stage.predicted_us = us
        for name, us in predicted[len(kernel_stages):]:
            stages.append(StageTiming(f"{name} (predicted)", 0.0, us))

        trace = self._set_trace(
            SolveTrace(
                backend=request.label or self.name,
                m=request.m,
                n=request.n,
                dtype=request.dtype,
                k=report.k,
                k_source=k_source,
                fuse=report.fused,
                n_windows=report.n_windows,
                plan_cache="n/a",
                factorization=outcome.trace.factorization,
                rhs_only=rhs_only,
                periodic=request.periodic,
                stages=stages,
                predicted_total_us=predicted_total_us,
            )
        )
        return SolveOutcome(
            x=outcome.x,
            trace=trace,
            factorization=outcome.factorization,
            plan=outcome.plan,
        )
