"""The simulated-GPU backend: real numerics + device-model pricing.

Wraps :class:`~repro.kernels.hybrid_gpu.GpuHybridSolver` behind the
backend protocol so counter/timing reports ride the same interface as
every other solve.  ``execute`` solves the batch numerically (through
the engine, with the *device* plan's launch parameters) and prices the
same launch on the device model; the resulting trace carries each
kernel stage's **predicted** device time next to the **measured**
NumPy wall time, plus the predicted total.

Numerics note: the device planner caps ``k`` by shared-memory capacity
and picks Fig. 11b window counts, so its plan can differ from the
reference heuristic's — results then agree with the other backends to
floating-point tolerance rather than bitwise (the documented-tolerance
path asserted in ``tests/test_backends.py``).
"""

from __future__ import annotations

import time

import numpy as np

from repro.backends.base import BackendBase, Capabilities, SolveSignature
from repro.backends.trace import SolveTrace, StageTiming
from repro.kernels.hybrid_gpu import GpuHybridSolver

__all__ = ["GpuSimBackend"]


class GpuSimBackend(BackendBase):
    """Registry adapter over the simulated-GTX480 hybrid solver."""

    name = "gpusim"
    priority = 10

    def __init__(self, solver: GpuHybridSolver | None = None):
        super().__init__()
        self.solver = solver if solver is not None else GpuHybridSolver()

    def capabilities(self) -> Capabilities:
        return Capabilities(
            simulated=True,
            prepared=True,
            description=(
                f"engine numerics + {self.solver.device.name} device-model "
                "pricing — trace shows predicted kernel times; prepared "
                "solves price the RHS-only kernels"
            ),
        )

    def prepare(self, signature: SolveSignature):
        dtype_bytes = np.dtype(signature.dtype).itemsize
        if signature.k is None:
            k, n_windows = self.solver.plan(
                signature.m, signature.n, dtype_bytes
            )
            k_source = "device-plan"
        else:
            k = signature.k
            n_windows = self.solver.plan_windows(signature.m, signature.n, k)
            k_source = "fixed"
        return (signature, k, n_windows, k_source, dtype_bytes)

    def execute(self, prepared, batch, out=None) -> np.ndarray:
        from repro.engine import default_engine

        signature, k, n_windows, k_source, dtype_bytes = prepared
        a, b, c, d = batch
        stage_times: list = []
        info: dict = {}
        t0 = time.perf_counter()
        x = default_engine().solve_batch(
            a,
            b,
            c,
            d,
            check=False,
            k=k,
            subtile_scale=self.solver.subtile_scale,
            n_windows=n_windows,
            fuse=self.solver.fuse,
            fingerprint=signature.fingerprint,
            out=out,
            info=info,
            stage_times=stage_times,
        )
        measured = time.perf_counter() - t0
        report = self.solver.predict(
            signature.m, signature.n, dtype_bytes, k=k, n_windows=n_windows
        )
        if info.get("rhs_only"):
            # the stored factorization skipped elimination — price the
            # RHS-only kernel sequence instead of the full launch
            from repro.gpusim.timing import GpuTimingModel
            from repro.kernels.rhs_kernel import rhs_only_counters

            model = GpuTimingModel(self.solver.device)
            predicted = [
                (c.name, model.time(c, dtype_bytes).total_s * 1e6)
                for c in rhs_only_counters(
                    signature.m, signature.n, report.k, dtype_bytes,
                    device=self.solver.device,
                )
            ]
        else:
            predicted = report.trace_stages()
        predicted_total_us = sum(us for _, us in predicted)
        stages = [StageTiming(n_, s) for n_, s in stage_times]
        # pair measured kernel stages with predicted kernel times
        # positionally (both ledgers follow the same front-end →
        # back-end order); fingerprint/factorize bookkeeping stages
        # have no device-side counterpart
        kernel_stages = [
            s for s in stages
            if s.name not in ("fingerprint", "factorize")
        ]
        for stage, (_, us) in zip(kernel_stages, predicted):
            stage.predicted_us = us
        for name, us in predicted[len(kernel_stages):]:
            stages.append(StageTiming(f"{name} (predicted)", 0.0, us))
        if not stages:
            stages = [StageTiming("execute", measured)]
        self._set_trace(
            SolveTrace(
                backend=self.name,
                m=signature.m,
                n=signature.n,
                dtype=signature.dtype,
                k=report.k,
                k_source=k_source,
                fuse=report.fused,
                n_windows=report.n_windows,
                plan_cache="n/a",
                factorization=info.get("factorization", "n/a"),
                rhs_only=info.get("rhs_only", False),
                stages=stages,
                predicted_total_us=predicted_total_us,
            )
        )
        return x

    def execute_periodic(
        self, signature: SolveSignature, batch, out=None, *, check: bool = True
    ) -> np.ndarray:
        from repro.engine import default_engine
        from repro.gpusim.timing import GpuTimingModel
        from repro.kernels.rhs_kernel import (
            cyclic_correction_counters,
            rhs_only_counters,
        )

        prepared = self.prepare(signature)
        _, k, n_windows, k_source, dtype_bytes = prepared
        a, b, c, d = batch
        stage_times: list = []
        info: dict = {}
        t0 = time.perf_counter()
        x = default_engine().solve_periodic(
            a,
            b,
            c,
            d,
            check=check,
            k=k,
            subtile_scale=self.solver.subtile_scale,
            n_windows=n_windows,
            fuse=self.solver.fuse,
            fingerprint=signature.fingerprint,
            out=out,
            info=info,
            stage_times=stage_times,
        )
        measured = time.perf_counter() - t0
        report = self.solver.predict(
            signature.m, signature.n, dtype_bytes, k=k, n_windows=n_windows
        )
        model = GpuTimingModel(self.solver.device)
        correction = [
            (c_.name, model.time(c_, dtype_bytes).total_s * 1e6)
            for c_ in cyclic_correction_counters(
                signature.m, signature.n, dtype_bytes,
                device=self.solver.device,
            )
        ]
        if info.get("rhs_only"):
            # prepared cyclic: one RHS-only sweep + the correction pair
            predicted = [
                (c_.name, model.time(c_, dtype_bytes).total_s * 1e6)
                for c_ in rhs_only_counters(
                    signature.m, signature.n, report.k, dtype_bytes,
                    device=self.solver.device,
                )
            ] + correction
        else:
            # unprepared cyclic: the full launch runs twice (y and q
            # inner solves), then the correction pair
            predicted = (
                report.trace_stages() * 2 + correction
            )
        predicted_total_us = sum(us for _, us in predicted)
        stages = [StageTiming(n_, s) for n_, s in stage_times]
        # positional pairing as in execute(); host-side bookkeeping
        # stages have no device counterpart
        kernel_stages = [
            s for s in stages
            if s.name not in ("fingerprint", "factorize", "cyclic-reduce")
        ]
        for stage, (_, us) in zip(kernel_stages, predicted):
            stage.predicted_us = us
        for name, us in predicted[len(kernel_stages):]:
            stages.append(StageTiming(f"{name} (predicted)", 0.0, us))
        if not stages:
            stages = [StageTiming("execute", measured)]
        self._set_trace(
            SolveTrace(
                backend=self.name,
                m=signature.m,
                n=signature.n,
                dtype=signature.dtype,
                k=report.k,
                k_source=k_source,
                fuse=report.fused,
                n_windows=report.n_windows,
                plan_cache="n/a",
                factorization=info.get("factorization", "n/a"),
                rhs_only=info.get("rhs_only", False),
                periodic=True,
                stages=stages,
                predicted_total_us=predicted_total_us,
            )
        )
        return x
