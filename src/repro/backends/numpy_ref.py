"""The reference backend: single-call :class:`HybridSolver`, no caching.

This is the bitwise baseline every other backend is held to.  It
re-plans and re-allocates on every call — exactly the seed repo's
behaviour — which makes it the right backend for cold-path comparisons
(``benchmarks/bench_engine.py``) and the wrong one for hot loops.

Constructing :class:`~repro.core.hybrid.HybridSolver` directly is now
an implementation detail of this module (plus ``core`` internals and
tests); everything else reaches it through the registry or through
:func:`reference_solver`.
"""

from __future__ import annotations

import time

import numpy as np

from repro.backends.base import BackendBase, Capabilities
from repro.backends.request import SolveOutcome, SolveRequest
from repro.backends.trace import SolveTrace, StageTiming
from repro.core.hybrid import HybridSolver, choose_transition
from repro.core.transition import GTX480_HEURISTIC

__all__ = ["NumpyReferenceBackend", "reference_solver"]


def reference_solver(**opts) -> HybridSolver:
    """A configured single-call reference solver (the bitwise baseline).

    Accepts the :class:`~repro.core.hybrid.HybridSolver` knobs
    (``k``, ``heuristic``, ``parallelism``, ``subtile_scale``,
    ``n_windows``, ``fuse``).  Benchmarks and comparison harnesses use
    this instead of constructing ``HybridSolver`` themselves.
    """
    return HybridSolver(**opts)


class NumpyReferenceBackend(BackendBase):
    """Registry adapter over the single-call reference solver."""

    name = "numpy"
    priority = 20

    def capabilities(self) -> Capabilities:
        caps = getattr(self, "_caps", None)
        if caps is None:
            caps = self._caps = Capabilities(
                systems=("tridiagonal", "pentadiagonal", "block"),
                description=(
                    "single-call HybridSolver reference — re-plans and "
                    "re-allocates every call; the bitwise baseline "
                    "(banded systems solve densely)"
                ),
            )
        return caps

    def _execute_banded(self, request: SolveRequest) -> SolveOutcome:
        """Dense-assembly reference for penta/block requests.

        Deliberately *not* the banded elimination: assembling the full
        matrices and calling stacked ``np.linalg.solve`` gives an
        independent oracle the structured sweeps are validated against
        (the same role the single-call hybrid plays for tridiagonal).
        """
        t0 = time.perf_counter()
        if request.system.kind == "pentadiagonal":
            from repro.core.pentadiag import penta_to_dense

            dense = penta_to_dense(
                request.e, request.a, request.b, request.c, request.f
            )
            rhs = request.d
        else:
            from repro.core.blocktridiag import block_to_dense

            dense = block_to_dense(request.a, request.b, request.c)
            rhs = request.d.reshape(request.m, -1)
        t_assemble = time.perf_counter() - t0

        t1 = time.perf_counter()
        x = np.linalg.solve(dense, rhs[..., None])[..., 0]
        x = np.ascontiguousarray(x.reshape(request.d.shape))
        dt = time.perf_counter() - t1
        if request.out is not None:
            request.out[...] = x
            x = request.out
        trace = self._set_trace(
            SolveTrace(
                backend=request.label or self.name,
                m=request.m,
                n=request.n,
                dtype=request.dtype,
                k=0,
                k_source="banded",
                plan_cache="n/a",
                system=request.system.kind,
                stages=[
                    StageTiming("dense-assemble", t_assemble),
                    StageTiming("dense-solve", dt),
                ],
            )
        )
        return SolveOutcome(x=x, trace=trace)

    def execute(self, request: SolveRequest) -> SolveOutcome:
        if request.system.kind != "tridiagonal":
            return self._execute_banded(request)
        if request.periodic:
            # no native cyclic pipeline — corner-reduce and run two
            # plain executes through the shared correction algebra
            return self._periodic_fallback(request)

        t0 = time.perf_counter()
        heuristic = (
            request.heuristic
            if request.heuristic is not None
            else GTX480_HEURISTIC
        )
        k, k_source = choose_transition(
            request.m,
            request.n,
            k=request.k,
            heuristic=heuristic,
            parallelism=request.parallelism,
        )
        solver = reference_solver(
            k=k,
            subtile_scale=request.subtile_scale,
            n_windows=request.n_windows,
            fuse=request.fuse,
        )
        t_prepare = time.perf_counter() - t0

        t1 = time.perf_counter()
        x = solver.solve_batch(request.a, request.b, request.c, request.d,
                               check=False)
        dt = time.perf_counter() - t1
        if request.out is not None:
            request.out[...] = x
            x = request.out
        trace = self._set_trace(
            SolveTrace(
                backend=request.label or self.name,
                m=request.m,
                n=request.n,
                dtype=request.dtype,
                k=k,
                k_source=k_source,
                fuse=request.fuse,
                n_windows=request.n_windows,
                plan_cache="n/a",
                stages=[
                    StageTiming("prepare", t_prepare),
                    StageTiming("hybrid (single-call)", dt),
                ],
            )
        )
        return SolveOutcome(x=x, trace=trace)
