"""The reference backend: single-call :class:`HybridSolver`, no caching.

This is the bitwise baseline every other backend is held to.  It
re-plans and re-allocates on every call — exactly the seed repo's
behaviour — which makes it the right backend for cold-path comparisons
(``benchmarks/bench_engine.py``) and the wrong one for hot loops.

Constructing :class:`~repro.core.hybrid.HybridSolver` directly is now
an implementation detail of this module (plus ``core`` internals and
tests); everything else reaches it through the registry or through
:func:`reference_solver`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.backends.base import BackendBase, Capabilities, SolveSignature
from repro.backends.trace import SolveTrace, StageTiming
from repro.core.hybrid import HybridSolver, choose_transition
from repro.core.transition import GTX480_HEURISTIC

__all__ = ["NumpyReferenceBackend", "reference_solver"]


def reference_solver(**opts) -> HybridSolver:
    """A configured single-call reference solver (the bitwise baseline).

    Accepts the :class:`~repro.core.hybrid.HybridSolver` knobs
    (``k``, ``heuristic``, ``parallelism``, ``subtile_scale``,
    ``n_windows``, ``fuse``).  Benchmarks and comparison harnesses use
    this instead of constructing ``HybridSolver`` themselves.
    """
    return HybridSolver(**opts)


@dataclass(frozen=True)
class _RefPlan:
    """The reference backend's 'plan': a resolved solver configuration."""

    sig: SolveSignature
    k: int
    k_source: str


class NumpyReferenceBackend(BackendBase):
    """Registry adapter over the single-call reference solver."""

    name = "numpy"
    priority = 20

    def capabilities(self) -> Capabilities:
        return Capabilities(
            description=(
                "single-call HybridSolver reference — re-plans and "
                "re-allocates every call; the bitwise baseline"
            ),
        )

    def prepare(self, signature: SolveSignature) -> _RefPlan:
        heuristic = (
            signature.heuristic
            if signature.heuristic is not None
            else GTX480_HEURISTIC
        )
        k, source = choose_transition(
            signature.m,
            signature.n,
            k=signature.k,
            heuristic=heuristic,
            parallelism=signature.parallelism,
        )
        return _RefPlan(sig=signature, k=k, k_source=source)

    def execute(self, plan: _RefPlan, batch, out=None) -> np.ndarray:
        sig = plan.sig
        solver = reference_solver(
            k=plan.k,
            subtile_scale=sig.subtile_scale,
            n_windows=sig.n_windows,
            fuse=sig.fuse,
        )
        a, b, c, d = batch
        t0 = time.perf_counter()
        x = solver.solve_batch(a, b, c, d, check=False)
        dt = time.perf_counter() - t0
        if out is not None:
            out[...] = x
            x = out
        self._set_trace(
            SolveTrace(
                backend=self.name,
                m=sig.m,
                n=sig.n,
                dtype=sig.dtype,
                k=plan.k,
                k_source=plan.k_source,
                fuse=sig.fuse,
                n_windows=sig.n_windows,
                plan_cache="n/a",
                stages=[StageTiming("hybrid (single-call)", dt)],
            )
        )
        return x
