"""Backend registry, capability negotiation, and the routing policy.

The paper's runtime picks an execution strategy per problem shape
(Table III); :class:`Router` generalizes that idea one level up — a
deterministic, pluggable policy choosing *which backend* serves a
:class:`~repro.backends.request.SolveRequest`, after the registry has
filtered the candidates by capability (dtype, periodic, workers,
prepared).

Resolution is fully deterministic:

1. An explicit ``backend="name"`` must support the request or a
   :class:`BackendError` explains exactly why it cannot.
2. ``backend="auto"`` filters registered backends by capability, then
   asks the router.  The default policy routes ``workers > 1`` solves
   to the highest-priority multi-worker backend and everything else to
   the highest-priority capable backend (ties broken by name) — so the
   plan-caching engine wins unless something better registers itself.

:func:`solve_via` is the single dispatch seam every public entry path
(``repro.solve_batch``, ``solve_periodic_batch``, ``api.gtsv*``, the
CLI, the examples) goes through: validate → build request → negotiate →
``execute(request)`` → trace.  Cyclic solves are the same seam with
``periodic=True`` — there is no separate periodic protocol anymore.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.backends.base import Backend, Capabilities
from repro.backends.request import SolveRequest
from repro.backends.trace import (
    RouteDecision,
    SolveTrace,
    StageTiming,
    record_trace,
)

__all__ = [
    "BackendError",
    "BackendRegistry",
    "Router",
    "bind_via",
    "default_registry",
    "get_backend",
    "list_backends",
    "register_backend",
    "solve_via",
]


class BackendError(ValueError):
    """A backend could not be resolved for a solve request."""


def reject_reason(caps: Capabilities, request: SolveRequest) -> str | None:
    """Why ``caps`` cannot serve ``request`` (``None`` = it can)."""
    if request.dtype not in caps.dtypes:
        return (
            f"dtype {request.dtype} unsupported (supports: "
            f"{', '.join(caps.dtypes)})"
        )
    if request.periodic and not caps.periodic:
        return "periodic systems unsupported"
    kind = request.system.kind
    if kind not in caps.systems:
        return (
            f"{kind} systems unsupported (supports: "
            f"{', '.join(caps.systems)})"
        )
    if (
        request.workers is not None
        and request.workers > 1
        and caps.max_workers <= 1
    ):
        return f"workers={request.workers} unsupported (single-worker backend)"
    if (
        request.ranks is not None
        and request.ranks > 1
        and caps.max_ranks <= 1
    ):
        return f"ranks={request.ranks} unsupported (single-rank backend)"
    if (request.fingerprint is True or request.rhs_only) and not caps.prepared:
        return "prepared (fingerprinted) execution unsupported"
    return None


class Router:
    """Deterministic backend-selection policy (pluggable).

    ``rules`` is an ordered tuple of callables ``rule(request) ->
    str | None``; the first rule naming a *capable* backend wins.  When
    no rule fires, the capable backend with the highest ``priority``
    (ties broken alphabetically) is chosen — the same
    piecewise-deterministic shape as the paper's Table III, lifted from
    "which k" to "which backend".

    ``select`` also stamps :class:`~repro.backends.trace.RouteDecision`
    provenance onto the request (which policy chose, from what
    candidates, and why); subclasses — notably
    :class:`repro.autotune.AdaptiveRouter` — may additionally refine
    request knobs the caller left unset (``k``, ``workers``,
    ``fingerprint``) before execution.
    """

    #: provenance tag recorded in :class:`RouteDecision.router`
    kind = "static"

    def __init__(self, rules: tuple = ()):
        self.rules = (
            tuple(rules) if rules else (self.route_ranks, self.route_workers)
        )

    @staticmethod
    def route_ranks(request: SolveRequest) -> str | None:
        """N-partitioning requested → the distributed tier."""
        if request.ranks is not None and request.ranks > 1:
            return "distributed"
        return None

    @staticmethod
    def route_workers(request: SolveRequest) -> str | None:
        """Sharding requested → the threaded layer."""
        if request.workers is not None and request.workers > 1:
            return "threaded"
        return None

    def select(self, request: SolveRequest, candidates: list) -> Backend:
        """Pick one backend from capability-filtered ``candidates``."""
        if not candidates:
            raise BackendError("no candidate backends")
        by_name = {b.name: b for b in candidates}
        names = tuple(b.name for b in candidates)
        for rule in self.rules:
            name = rule(request)
            if name is not None and name in by_name:
                request.decision = RouteDecision(
                    router=self.kind,
                    chosen=name,
                    candidates=names,
                    reason=f"rule {getattr(rule, '__name__', 'rule')}",
                )
                return by_name[name]
        chosen = max(candidates, key=lambda b: (b.priority, b.name))
        request.decision = RouteDecision(
            router=self.kind,
            chosen=chosen.name,
            candidates=names,
            reason="highest-priority capable backend",
        )
        return chosen


class BackendRegistry:
    """Named backends + the router that arbitrates between them."""

    def __init__(self, router: Router | None = None):
        self._lock = threading.Lock()
        self._backends: dict = {}
        self.router = router if router is not None else Router()

    # -- registration --------------------------------------------------
    def register(self, backend: Backend, *, replace: bool = False) -> Backend:
        """Add ``backend`` under ``backend.name``."""
        name = backend.name
        with self._lock:
            if name in self._backends and not replace:
                raise BackendError(
                    f"backend {name!r} already registered "
                    "(pass replace=True to override)"
                )
            self._backends[name] = backend
        return backend

    def unregister(self, name: str) -> None:
        """Remove a backend (missing names are ignored)."""
        with self._lock:
            self._backends.pop(name, None)

    def get(self, name: str) -> Backend:
        """Look up a backend by name."""
        with self._lock:
            backend = self._backends.get(name)
        if backend is None:
            raise BackendError(
                f"unknown backend {name!r}; registered: {self.names()}"
            )
        return backend

    def names(self) -> list:
        """Registered names, sorted."""
        with self._lock:
            return sorted(self._backends)

    def backends(self) -> list:
        """Registered backends, highest priority first (stable order)."""
        with self._lock:
            values = list(self._backends.values())
        return sorted(values, key=lambda b: (-b.priority, b.name))

    # -- negotiation ----------------------------------------------------
    def capable(self, request: SolveRequest) -> list:
        """Backends whose capabilities cover ``request`` (priority order)."""
        return [
            b for b in self.backends()
            if reject_reason(b.capabilities(), request) is None
        ]

    def resolve(self, name: str, request: SolveRequest) -> Backend:
        """Resolve ``"auto"`` or an explicit name against ``request``."""
        if name != "auto":
            backend = self.get(name)
            reason = reject_reason(backend.capabilities(), request)
            if reason is not None:
                raise BackendError(
                    f"backend {name!r} cannot solve this problem: {reason}"
                )
            request.decision = RouteDecision(
                router="explicit",
                chosen=name,
                candidates=(name,),
                reason="caller named the backend",
            )
            return backend
        candidates = self.capable(request)
        if not candidates:
            reasons = "; ".join(
                f"{b.name}: {reject_reason(b.capabilities(), request)}"
                for b in self.backends()
            )
            raise BackendError(
                f"no registered backend supports this solve ({reasons})"
            )
        return self.router.select(request, candidates)


_default_registry: BackendRegistry | None = None
_registry_lock = threading.Lock()


def default_registry() -> BackendRegistry:
    """The process-wide registry, populated with the stock backends."""
    global _default_registry
    if _default_registry is None:
        with _registry_lock:
            if _default_registry is None:
                reg = BackendRegistry()
                _populate(reg)
                _default_registry = reg
    return _default_registry


def _populate(reg: BackendRegistry) -> None:
    from repro.backends.engine_backend import EngineBackend
    from repro.backends.gpusim_backend import GpuSimBackend
    from repro.backends.numpy_ref import NumpyReferenceBackend
    from repro.backends.threaded import ThreadedBackend
    from repro.distributed.backend import DistributedBackend

    reg.register(EngineBackend())
    reg.register(NumpyReferenceBackend())
    reg.register(ThreadedBackend())
    reg.register(GpuSimBackend())
    reg.register(DistributedBackend())


def register_backend(backend: Backend, *, replace: bool = False) -> Backend:
    """Register ``backend`` with the process-wide registry."""
    return default_registry().register(backend, replace=replace)


def get_backend(name: str) -> Backend:
    """Fetch a backend from the process-wide registry by name."""
    return default_registry().get(name)


def list_backends() -> list:
    """``(name, Capabilities)`` pairs, highest priority first."""
    return [(b.name, b.capabilities()) for b in default_registry().backends()]


def solve_via(
    a,
    b,
    c,
    d,
    *,
    backend: str = "auto",
    periodic: bool = False,
    check: bool = True,
    coerced: bool = False,
    out=None,
    registry: BackendRegistry | None = None,
    **opts,
):
    """Dispatch one batch solve (plain or cyclic) through the registry.

    Returns ``(x, trace)``.  ``coerced=True`` promises the inputs are
    already contiguous same-dtype ``(M, N)`` arrays (the public entry
    points validate before calling); otherwise inputs are checked
    (``check=True``) or merely coerced here.  ``periodic=True`` makes
    this a cyclic solve: the request carries corners in ``a[:, 0]`` /
    ``c[:, -1]``, negotiation actually exercises
    ``Capabilities.periodic``, and the chosen backend runs the whole
    Sherman–Morrison pipeline inside its one ``execute``.  Remaining
    keywords are the :data:`~repro.backends.request.OPTION_NAMES`
    options (``k``, ``fuse``, ``n_windows``, ``subtile_scale``,
    ``parallelism``, ``workers``, ``heuristic``, ``fingerprint``).
    """
    reg = registry if registry is not None else default_registry()
    t0 = time.perf_counter()
    request = SolveRequest.build(
        a, b, c, d,
        periodic=periodic, check=check, coerced=coerced, out=out, **opts
    )
    t_validate = time.perf_counter() - t0

    chosen = reg.resolve(backend, request)
    outcome = chosen.execute(request)

    trace = outcome.trace
    if trace.decision is None:
        trace.decision = request.decision
    trace.stages = [StageTiming("validate", t_validate), *trace.stages]
    record_trace(trace)
    observe = getattr(reg.router, "observe", None)
    if observe is not None:
        observe(request, trace)
    return outcome.x, trace


def bind_via(
    a,
    b,
    c,
    d,
    *,
    backend: str = "auto",
    periodic: bool = False,
    check: bool = True,
    coerced: bool = False,
    registry: BackendRegistry | None = None,
    **opts,
):
    """Bind one solve into a reusable session through the registry.

    The session-tier sibling of :func:`solve_via`: validate → build
    request → negotiate (the router's
    :class:`~repro.backends.trace.RouteDecision` is pinned on the
    request, so every step the session takes carries the same
    provenance) → ``bind``.  Backends with a native bind (the engine
    family) return a :class:`~repro.engine.session.BoundSolve`; others
    fall back to a generic
    :class:`~repro.backends.base.PerStepSession`.  ``d`` is the
    template right-hand side — it fixes the shape/dtype the session is
    bound for (and is the default argument of ``step_once()``).

    Time-stepping loops then run ``session.step(d)`` per right-hand
    side — allocation-free on native sessions — and ``close()`` when
    done.
    """
    reg = registry if registry is not None else default_registry()
    request = SolveRequest.build(
        a, b, c, d,
        periodic=periodic, check=check, coerced=coerced, **opts
    )
    chosen = reg.resolve(backend, request)
    binder = getattr(chosen, "bind", None)
    if binder is not None:
        return binder(request)
    from repro.backends.base import PerStepSession

    return PerStepSession(chosen, request)


def record_direct_trace(algorithm: str, b, seconds: float) -> SolveTrace:
    """Record a trace for the classic non-hybrid algorithm paths.

    The direct Thomas/CR/PCR/RD paths bypass the registry (they have
    no plan to negotiate), but instrumentation still covers them so
    ``repro.last_trace()`` reflects *every* solve.
    """
    b = np.asarray(b)
    m, n = b.shape
    return record_trace(
        SolveTrace(
            backend=f"direct:{algorithm}",
            m=m,
            n=n,
            dtype=np.dtype(b.dtype).name,
            k=0,
            k_source="n/a",
            stages=[StageTiming("execute", seconds)],
        )
    )
