"""Backend registry, capability negotiation, and the routing policy.

The paper's runtime picks an execution strategy per problem shape
(Table III); :class:`Router` generalizes that idea one level up — a
deterministic, pluggable policy choosing *which backend* serves a
:class:`~repro.backends.base.SolveSignature`, after the registry has
filtered the candidates by capability (dtype, periodic, workers).

Resolution is fully deterministic:

1. An explicit ``backend="name"`` must support the signature or a
   :class:`BackendError` explains exactly why it cannot.
2. ``backend="auto"`` filters registered backends by capability, then
   asks the router.  The default policy routes ``workers > 1`` solves
   to the highest-priority multi-worker backend and everything else to
   the highest-priority capable backend (ties broken by name) — so the
   plan-caching engine wins unless something better registers itself.

:func:`solve_via` is the single dispatch seam every public entry path
(``repro.solve_batch``, ``api.gtsv*``, the CLI, the examples) now goes
through: validate → negotiate → prepare → execute → trace.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.backends.base import Backend, Capabilities, SolveSignature
from repro.backends.trace import SolveTrace, StageTiming, record_trace
from repro.core.validation import check_batch_arrays, coerce_batch_arrays

__all__ = [
    "BackendError",
    "BackendRegistry",
    "Router",
    "default_registry",
    "get_backend",
    "list_backends",
    "register_backend",
    "solve_periodic_via",
    "solve_via",
]


class BackendError(ValueError):
    """A backend could not be resolved for a solve signature."""


def reject_reason(caps: Capabilities, sig: SolveSignature) -> str | None:
    """Why ``caps`` cannot serve ``sig`` (``None`` = it can)."""
    if sig.dtype not in caps.dtypes:
        return (
            f"dtype {sig.dtype} unsupported (supports: "
            f"{', '.join(caps.dtypes)})"
        )
    if sig.periodic and not caps.periodic:
        return "periodic systems unsupported"
    if sig.workers is not None and sig.workers > 1 and caps.max_workers <= 1:
        return f"workers={sig.workers} unsupported (single-worker backend)"
    if sig.fingerprint is True and not caps.prepared:
        return "prepared (fingerprinted) execution unsupported"
    return None


class Router:
    """Deterministic backend-selection policy (pluggable).

    ``rules`` is an ordered tuple of callables ``rule(signature) ->
    str | None``; the first rule naming a *capable* backend wins.  When
    no rule fires, the capable backend with the highest ``priority``
    (ties broken alphabetically) is chosen — the same
    piecewise-deterministic shape as the paper's Table III, lifted from
    "which k" to "which backend".
    """

    def __init__(self, rules: tuple = ()):
        self.rules = tuple(rules) if rules else (self.route_workers,)

    @staticmethod
    def route_workers(sig: SolveSignature) -> str | None:
        """Sharding requested → the threaded layer."""
        if sig.workers is not None and sig.workers > 1:
            return "threaded"
        return None

    def select(self, sig: SolveSignature, candidates: list) -> Backend:
        """Pick one backend from capability-filtered ``candidates``."""
        if not candidates:
            raise BackendError("no candidate backends")
        by_name = {b.name: b for b in candidates}
        for rule in self.rules:
            name = rule(sig)
            if name is not None and name in by_name:
                return by_name[name]
        return max(candidates, key=lambda b: (b.priority, b.name))


class BackendRegistry:
    """Named backends + the router that arbitrates between them."""

    def __init__(self, router: Router | None = None):
        self._lock = threading.Lock()
        self._backends: dict = {}
        self.router = router if router is not None else Router()

    # -- registration --------------------------------------------------
    def register(self, backend: Backend, *, replace: bool = False) -> Backend:
        """Add ``backend`` under ``backend.name``."""
        name = backend.name
        with self._lock:
            if name in self._backends and not replace:
                raise BackendError(
                    f"backend {name!r} already registered "
                    "(pass replace=True to override)"
                )
            self._backends[name] = backend
        return backend

    def unregister(self, name: str) -> None:
        """Remove a backend (missing names are ignored)."""
        with self._lock:
            self._backends.pop(name, None)

    def get(self, name: str) -> Backend:
        """Look up a backend by name."""
        with self._lock:
            backend = self._backends.get(name)
        if backend is None:
            raise BackendError(
                f"unknown backend {name!r}; registered: {self.names()}"
            )
        return backend

    def names(self) -> list:
        """Registered names, sorted."""
        with self._lock:
            return sorted(self._backends)

    def backends(self) -> list:
        """Registered backends, highest priority first (stable order)."""
        with self._lock:
            values = list(self._backends.values())
        return sorted(values, key=lambda b: (-b.priority, b.name))

    # -- negotiation ----------------------------------------------------
    def capable(self, sig: SolveSignature) -> list:
        """Backends whose capabilities cover ``sig`` (priority order)."""
        return [
            b for b in self.backends()
            if reject_reason(b.capabilities(), sig) is None
        ]

    def resolve(self, name: str, sig: SolveSignature) -> Backend:
        """Resolve ``"auto"`` or an explicit name against ``sig``."""
        if name != "auto":
            backend = self.get(name)
            reason = reject_reason(backend.capabilities(), sig)
            if reason is not None:
                raise BackendError(
                    f"backend {name!r} cannot solve this problem: {reason}"
                )
            return backend
        candidates = self.capable(sig)
        if not candidates:
            reasons = "; ".join(
                f"{b.name}: {reject_reason(b.capabilities(), sig)}"
                for b in self.backends()
            )
            raise BackendError(
                f"no registered backend supports this solve ({reasons})"
            )
        return self.router.select(sig, candidates)


_default_registry: BackendRegistry | None = None
_registry_lock = threading.Lock()


def default_registry() -> BackendRegistry:
    """The process-wide registry, populated with the stock backends."""
    global _default_registry
    if _default_registry is None:
        with _registry_lock:
            if _default_registry is None:
                reg = BackendRegistry()
                _populate(reg)
                _default_registry = reg
    return _default_registry


def _populate(reg: BackendRegistry) -> None:
    from repro.backends.engine_backend import EngineBackend
    from repro.backends.gpusim_backend import GpuSimBackend
    from repro.backends.numpy_ref import NumpyReferenceBackend
    from repro.backends.threaded import ThreadedBackend

    reg.register(EngineBackend())
    reg.register(NumpyReferenceBackend())
    reg.register(ThreadedBackend())
    reg.register(GpuSimBackend())


def register_backend(backend: Backend, *, replace: bool = False) -> Backend:
    """Register ``backend`` with the process-wide registry."""
    return default_registry().register(backend, replace=replace)


def get_backend(name: str) -> Backend:
    """Fetch a backend from the process-wide registry by name."""
    return default_registry().get(name)


def list_backends() -> list:
    """``(name, Capabilities)`` pairs, highest priority first."""
    return [(b.name, b.capabilities()) for b in default_registry().backends()]


def solve_via(
    a,
    b,
    c,
    d,
    *,
    backend: str = "auto",
    check: bool = True,
    coerced: bool = False,
    out=None,
    registry: BackendRegistry | None = None,
    **opts,
):
    """Dispatch one batch solve through the registry.

    Returns ``(x, trace)``.  ``coerced=True`` promises the inputs are
    already contiguous same-dtype ``(M, N)`` arrays (the public
    ``solve_batch`` validates before calling); otherwise inputs are
    checked (``check=True``) or merely coerced here.  Remaining
    keywords are the :class:`SolveSignature` options (``k``, ``fuse``,
    ``n_windows``, ``subtile_scale``, ``parallelism``, ``workers``,
    ``heuristic``, ``periodic``).
    """
    reg = registry if registry is not None else default_registry()
    t0 = time.perf_counter()
    if not coerced:
        if check:
            a, b, c, d = check_batch_arrays(a, b, c, d)
        else:
            a, b, c, d = coerce_batch_arrays(a, b, c, d)
    t_validate = time.perf_counter() - t0

    sig = SolveSignature.for_batch(b, **opts)
    chosen = reg.resolve(backend, sig)

    t1 = time.perf_counter()
    plan = chosen.prepare(sig)
    t_prepare = time.perf_counter() - t1

    t2 = time.perf_counter()
    x = chosen.execute(plan, (a, b, c, d), out=out)
    t_execute = time.perf_counter() - t2

    trace = chosen.instrument()
    inner = trace.stages or [StageTiming("execute", t_execute)]
    trace.stages = [
        StageTiming("validate", t_validate),
        StageTiming("prepare", t_prepare),
        *inner,
    ]
    record_trace(trace)
    return x, trace


def solve_periodic_via(
    a,
    b,
    c,
    d,
    *,
    backend: str = "auto",
    check: bool = True,
    coerced: bool = False,
    out=None,
    registry: BackendRegistry | None = None,
    **opts,
):
    """Dispatch one *cyclic* batch solve through the registry.

    Returns ``(x, trace)``.  The signature carries ``periodic=True``,
    so negotiation actually exercises ``Capabilities.periodic``:
    periodic-incapable backends are filtered out (or, named explicitly,
    rejected with the reason).  The chosen backend's
    ``execute_periodic`` runs the whole Sherman–Morrison pipeline —
    engine-family backends serve repeat coefficients from the cyclic
    factorization cache (RHS-only sweep + rank-one correction); the
    generic fallback corner-reduces and runs two inner solves.
    """
    from repro.core.validation import (
        check_cyclic_batch_arrays,
        coerce_cyclic_batch_arrays,
    )

    reg = registry if registry is not None else default_registry()
    t0 = time.perf_counter()
    if not coerced:
        if check:
            a, b, c, d = check_cyclic_batch_arrays(a, b, c, d)
        else:
            a, b, c, d = coerce_cyclic_batch_arrays(a, b, c, d)
    t_validate = time.perf_counter() - t0

    sig = SolveSignature.for_batch(b, **opts).with_options(periodic=True)
    chosen = reg.resolve(backend, sig)

    x = chosen.execute_periodic(sig, (a, b, c, d), out=out, check=check)

    trace = chosen.instrument()
    trace.stages = [StageTiming("validate", t_validate), *trace.stages]
    record_trace(trace)
    return x, trace


def record_direct_trace(algorithm: str, b, seconds: float) -> SolveTrace:
    """Record a trace for the classic non-hybrid algorithm paths.

    The direct Thomas/CR/PCR/RD paths bypass the registry (they have
    no plan to negotiate), but instrumentation still covers them so
    ``repro.last_trace()`` reflects *every* solve.
    """
    b = np.asarray(b)
    m, n = b.shape
    return record_trace(
        SolveTrace(
            backend=f"direct:{algorithm}",
            m=m,
            n=n,
            dtype=np.dtype(b.dtype).name,
            k=0,
            k_source="n/a",
            stages=[StageTiming("execute", seconds)],
        )
    )
