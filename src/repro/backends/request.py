"""The one request/outcome vocabulary every solve in the repo speaks.

PRs 1–4 grew three parallel solve paths — plain ``solve_batch``, the
prepared RHS-only path, and ``solve_periodic_batch`` — each with its
own engine entrypoint, backend protocol method and trace wiring.  This
module collapses that Cartesian product into two dataclasses:

:class:`SolveRequest`
    Everything one solve needs: the coerced ``(M, N)`` diagonals and
    right-hand side (or a factorization handle plus the RHS alone),
    the negotiation axes (dtype, ``periodic``, ``workers``,
    ``fingerprint``), the plan options (``k``, ``fuse``, windows…),
    and the execution flags (``rhs_only``, ``check``, ``out``).
    Built by the public adapters (``repro.solve_batch``,
    ``repro.prepare(...).solve``, ``solve_periodic_batch``,
    ``api.gtsv*``, the CLI) and consumed by exactly two seams:
    :meth:`BackendRegistry.resolve
    <repro.backends.registry.BackendRegistry.resolve>` (capability
    negotiation on request attributes) and ``backend.execute(request)``.
:class:`SolveOutcome`
    What came back: the solution, the
    :class:`~repro.backends.trace.SolveTrace`, and — when the engine
    factored or reused one — the factorization handle and frozen plan.

One request shape means one negotiation path, one trace path, and one
``execute`` method per backend, whatever the solve's flavour.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.validation import (
    check_batch_arrays,
    check_block_batch_arrays,
    check_cyclic_batch_arrays,
    check_penta_batch_arrays,
    coerce_batch_arrays,
    coerce_block_batch_arrays,
    coerce_cyclic_batch_arrays,
    coerce_penta_batch_arrays,
)

__all__ = [
    "OPTION_NAMES",
    "SYSTEM_KINDS",
    "PENTADIAGONAL",
    "TRIDIAGONAL",
    "SolveOutcome",
    "SolveRequest",
    "SystemDescriptor",
    "block_system",
]

#: the matrix classes the spine can carry.
SYSTEM_KINDS = ("tridiagonal", "pentadiagonal", "block")


@dataclass(frozen=True)
class SystemDescriptor:
    """What kind of banded system a request carries.

    ``kind`` names the matrix class; ``bandwidth`` is the scalar
    half-bandwidth (1 for tridiagonal, 2 for pentadiagonal);
    ``block_size`` is the dense block edge for block-tridiagonal
    systems (1 otherwise).  The descriptor is frozen and hashable — it
    participates in plan keys, factorization-cache keys and the
    autotune cell vocabulary, so entries of different stencils can
    never collide.
    """

    kind: str = "tridiagonal"
    bandwidth: int = 1
    block_size: int = 1

    def __post_init__(self):
        if self.kind not in SYSTEM_KINDS:
            raise ValueError(
                f"unknown system kind {self.kind!r}; expected one of "
                f"{SYSTEM_KINDS}"
            )
        if self.bandwidth < 1:
            raise ValueError(f"bandwidth must be >= 1, got {self.bandwidth}")
        if self.block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {self.block_size}")

    @property
    def tag(self) -> str:
        """Short cache-key token: ``""`` for tridiagonal (so every
        pre-descriptor key stays byte-identical), ``"penta"`` /
        ``"block<B>"`` otherwise."""
        if self.kind == "tridiagonal":
            return ""
        if self.kind == "pentadiagonal":
            return "penta"
        return f"block{self.block_size}"


#: the default (and pre-descriptor implicit) system: 3 scalar diagonals.
TRIDIAGONAL = SystemDescriptor()
#: five scalar diagonals.
PENTADIAGONAL = SystemDescriptor(kind="pentadiagonal", bandwidth=2)


def block_system(block_size: int) -> SystemDescriptor:
    """Descriptor for a block-tridiagonal system of ``B × B`` blocks."""
    return SystemDescriptor(kind="block", block_size=int(block_size))

#: keyword options accepted by :meth:`SolveRequest.build` /
#: ``solve_batch`` — unknown names are a ``TypeError`` at the dispatch
#: boundary, not deep inside a kernel.
OPTION_NAMES = (
    "k",
    "fuse",
    "n_windows",
    "subtile_scale",
    "parallelism",
    "workers",
    "periodic",
    "heuristic",
    "fingerprint",
    "rtol",
    "ranks",
)


@dataclass
class SolveRequest:
    """One batch solve, fully described.

    Attributes
    ----------
    a, b, c, d:
        Coerced contiguous ``(M, N)`` diagonals and right-hand side.
        For ``rhs_only`` requests the coefficients may be ``None`` —
        the elimination already lives in ``factorization``.
    m, n, dtype:
        Problem shape and canonical dtype name — the negotiation axes
        the registry filters capabilities against.
    periodic:
        Cyclic convention: corners ride in ``a[:, 0]`` / ``c[:, -1]``
        and are couplings, not pads.
    rhs_only:
        The request carries a prebuilt ``factorization`` (and usually a
        frozen ``plan``); execution is the RHS-only sweep.
    fingerprint:
        Factorization-cache tri-state: ``None`` auto-engages where
        bitwise safe (``k = 0``), ``True`` forces prepared execution
        (and restricts negotiation to prepared-capable backends),
        ``False`` disables hashing.
    rtol:
        The caller's accuracy contract: the relative drift (vs the
        unprepared solve) this request tolerates.  ``None`` (default)
        means *bitwise* — fingerprinting auto-engages only where it is
        bit-exact (``k = 0``).  A positive ``rtol`` above the dtype
        floor (:data:`repro.engine.prepared.FINGERPRINT_RTOL_FLOOR`)
        lets the auto tier also reuse hybrid ``k > 0`` factorizations,
        whose RHS-only sweeps are allclose-grade, and licenses the
        adaptive router to select forced-fingerprint routes.
    workers:
        Requested batch-axis shard count (``None`` = backend default).
    ranks:
        Requested N-axis partition count for the distributed tier
        (``None`` = not partitioned; ``ranks > 1`` restricts
        negotiation to backends advertising ``Capabilities.max_ranks``
        above 1).
    k, fuse, n_windows, subtile_scale, parallelism, heuristic:
        Plan options, exactly as ``solve_batch`` takes them.
    factorization, plan:
        Prebuilt state for ``rhs_only`` requests (prepared handles).
    check:
        Validation / singular-guard policy for execution-time checks.
    out:
        Optional preallocated ``(M, N)`` output.
    label:
        Trace ``backend`` name override — the threaded and prepared
        adapters run on the engine spine but report their own name.
    layout:
        Input layout (all current backends take ``"contiguous"``).
    e, f:
        Second sub-/super-diagonals (offset ∓2) for pentadiagonal
        requests; ``None`` otherwise.
    system:
        The :class:`SystemDescriptor` naming the matrix class.  For
        block-tridiagonal systems ``a``/``b``/``c`` are
        ``(M, N, B, B)`` block stacks and ``d`` is ``(M, N, B)``.
    decision:
        :class:`~repro.backends.trace.RouteDecision` provenance, set
        at negotiation time by the registry/router and copied onto the
        final trace by ``solve_via``.
    """

    a: np.ndarray | None
    b: np.ndarray | None
    c: np.ndarray | None
    d: np.ndarray
    m: int
    n: int
    dtype: str = "float64"
    periodic: bool = False
    rhs_only: bool = False
    fingerprint: bool | None = None
    rtol: float | None = None
    workers: int | None = None
    ranks: int | None = None
    k: int | None = None
    fuse: bool = False
    n_windows: int = 1
    subtile_scale: int = 1
    parallelism: int | None = None
    heuristic: object = None
    factorization: object = None
    plan: object = None
    check: bool = True
    out: np.ndarray | None = None
    label: str | None = None
    layout: str = "contiguous"
    decision: object = None
    e: np.ndarray | None = None
    f: np.ndarray | None = None
    system: SystemDescriptor = TRIDIAGONAL

    @classmethod
    def build(
        cls,
        a,
        b,
        c,
        d,
        *,
        periodic: bool = False,
        check: bool = True,
        coerced: bool = False,
        out=None,
        label: str | None = None,
        e=None,
        f=None,
        system: SystemDescriptor | None = None,
        **opts,
    ) -> "SolveRequest":
        """Validate/coerce a batch and its options into a request.

        ``coerced=True`` promises the inputs are already contiguous
        same-dtype ``(M, N)`` arrays (the public entry points validate
        before calling); otherwise they are checked (``check=True``) or
        merely coerced here — cyclic requests through the dedicated
        cyclic validators, whose corners are couplings the plain
        validator would zero.  Unknown options raise ``TypeError`` at
        this boundary.

        The system kind is inferred when ``system`` is not given:
        second sub-/super-diagonals ``e``/``f`` mean pentadiagonal, a
        4-D ``(M, N, B, B)`` main diagonal means block-tridiagonal,
        otherwise the request is plain tridiagonal.
        """
        unknown = sorted(set(opts) - set(OPTION_NAMES))
        if unknown:
            raise TypeError(
                f"unknown solve option(s) {unknown}; "
                f"valid options: {sorted(OPTION_NAMES)}"
            )
        rtol = opts.get("rtol")
        if rtol is not None:
            rtol = float(rtol)
            if not np.isfinite(rtol) or rtol < 0.0:
                raise ValueError(
                    f"rtol must be a finite value >= 0 (or None), got {rtol}"
                )
            opts["rtol"] = rtol
        ranks = opts.get("ranks")
        if ranks is not None:
            ranks = int(ranks)
            if ranks < 1:
                raise ValueError(f"ranks must be >= 1 (or None), got {ranks}")
            opts["ranks"] = ranks
        periodic = bool(opts.pop("periodic", periodic))
        if system is None:
            if e is not None or f is not None:
                system = PENTADIAGONAL
            elif np.asarray(b).ndim == 4:
                system = block_system(np.asarray(b).shape[2])
            else:
                system = TRIDIAGONAL
        if system.kind != "tridiagonal":
            if periodic:
                raise ValueError(
                    f"periodic solves are tridiagonal-only; a "
                    f"{system.kind!r} request cannot carry periodic=True"
                )
            if (
                opts.get("fuse")
                or opts.get("n_windows", 1) != 1
                or opts.get("subtile_scale", 1) != 1
            ):
                raise ValueError(
                    "fuse/n_windows/subtile_scale are hybrid (tridiagonal) "
                    f"plan options; not applicable to a {system.kind!r} solve"
                )
        if system.kind == "pentadiagonal":
            if e is None or f is None:
                raise ValueError(
                    "pentadiagonal requests need both outer diagonals e "
                    "(offset -2) and f (offset +2)"
                )
            if not coerced:
                validate = (
                    check_penta_batch_arrays
                    if check
                    else coerce_penta_batch_arrays
                )
                e, a, b, c, f, d = validate(e, a, b, c, f, d)
            b = np.asarray(b)
            m, n = b.shape
        elif system.kind == "block":
            if not coerced:
                validate = (
                    check_block_batch_arrays
                    if check
                    else coerce_block_batch_arrays
                )
                a, b, c, d = validate(a, b, c, d)
            b = np.asarray(b)
            if b.ndim != 4:
                raise ValueError(
                    f"block batch must be (M, N, B, B), got {b.ndim}-D"
                )
            if b.shape[2] != system.block_size:
                raise ValueError(
                    f"blocks are {b.shape[2]}x{b.shape[3]} but the "
                    f"descriptor says block_size={system.block_size}"
                )
            m, n = b.shape[:2]
        else:
            if not coerced:
                if periodic:
                    validate = (
                        check_cyclic_batch_arrays
                        if check
                        else coerce_cyclic_batch_arrays
                    )
                else:
                    validate = (
                        check_batch_arrays if check else coerce_batch_arrays
                    )
                a, b, c, d = validate(a, b, c, d)
            b = np.asarray(b)
            if b.ndim != 2:
                raise ValueError(f"batch must be 2-D (M, N), got {b.ndim}-D")
            m, n = b.shape
        return cls(
            a=a,
            b=b,
            c=c,
            d=d,
            m=m,
            n=n,
            dtype=np.dtype(b.dtype).name,
            periodic=periodic,
            check=check,
            out=out,
            label=label,
            e=e,
            f=f,
            system=system,
            **opts,
        )

    def replace(self, **changes) -> "SolveRequest":
        """A copy of this request with some fields replaced."""
        return replace(self, **changes)


@dataclass
class SolveOutcome:
    """What one dispatched solve produced.

    ``x`` is the solution batch; ``trace`` the
    :class:`~repro.backends.trace.SolveTrace` describing how it was
    computed (backend, frozen ``k``, cache outcomes, stage timings);
    ``factorization`` / ``plan`` carry the reusable state the engine
    built or reused, when any (prepared and fingerprinted solves).
    """

    x: np.ndarray
    trace: object
    factorization: object = None
    plan: object = None
    stats: dict = field(default_factory=dict)
