"""Batch-axis sharding as an orthogonal backend layer.

PR 1 buried ``workers=`` inside the engine's ``solve_batch``; this
module folds that parallel composition out into its own layer:

* :func:`execute_sharded` is the one sharded-execution routine in the
  repo.  It runs a frozen plan over contiguous row shards — one engine
  workspace and one counter ledger per shard, every worker writing
  straight into one shared output — on the engine's persistent thread
  pool.  Both :meth:`ExecutionEngine.solve_sharded
  <repro.engine.engine.ExecutionEngine.solve_sharded>` (the legacy
  ``workers=`` path) and :class:`ThreadedBackend` delegate here.
* :class:`ThreadedBackend` exposes sharding through the backend
  protocol.  The router sends ``workers > 1`` solves to it; the inner
  per-shard execution is the engine's, so results stay bitwise
  identical to every other backend.

Bitwise safety is inherited from the engine (see
:mod:`repro.engine.executor`): every solver operation is elementwise
along the batch axis and the transition ``k`` is frozen from the *full*
batch before sharding, so results are independent of ``workers``.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.backends.base import BackendBase, Capabilities, SolveSignature
from repro.backends.trace import SolveTrace, StageTiming
from repro.core.tiled_pcr import TilingCounters
from repro.engine.executor import execute_plan

__all__ = ["ThreadedBackend", "execute_sharded"]


def execute_sharded(
    engine,
    plan,
    shards,
    a,
    b,
    c,
    d,
    *,
    counters: TilingCounters | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Run ``plan`` split along the batch axis, one thread per shard.

    Each shard gets a sub-plan with ``k`` *fixed* to the full-batch
    decision (the transition must not re-resolve against the smaller
    shard ``M``), its own pooled workspace, and its own counters; shard
    results are written directly into the shared ``out`` batch.
    """
    m, n = b.shape
    if out is None:
        out = np.empty((m, n), dtype=b.dtype)
    sub = [
        (
            lo,
            hi,
            engine.plan_for(
                hi - lo,
                n,
                b.dtype,
                k=plan.k,
                fuse=plan.fuse,
                n_windows=plan.n_windows,
                subtile_scale=plan.subtile_scale,
            ),
            TilingCounters(),
        )
        for lo, hi in shards
    ]

    def run(job):
        lo, hi, subplan, ctr = job
        ws = engine.checkout(subplan)
        try:
            execute_plan(
                subplan,
                ws,
                a[lo:hi],
                b[lo:hi],
                c[lo:hi],
                d[lo:hi],
                counters=ctr,
                out=out[lo:hi],
            )
        finally:
            engine.checkin(subplan, ws)

    pool = engine.thread_pool(len(sub))
    list(pool.map(run, sub))
    if counters is not None:
        for _, _, _, ctr in sub:
            counters.merge(ctr)
    return out


class ThreadedBackend(BackendBase):
    """Registry adapter for thread-sharded batch execution.

    Parameters
    ----------
    engine:
        The engine whose plans, workspace pools, and thread pool the
        shards run on (default: the process-wide engine).
    default_workers:
        Worker count when the signature does not request one
        (default: ``min(4, cpu count)``).
    """

    name = "threaded"
    priority = 60

    def __init__(self, engine=None, default_workers: int | None = None):
        super().__init__()
        self._engine = engine
        if default_workers is not None and default_workers < 1:
            raise ValueError(
                f"default_workers must be >= 1, got {default_workers}"
            )
        self.default_workers = default_workers

    @property
    def engine(self):
        if self._engine is not None:
            return self._engine
        from repro.engine import default_engine

        return default_engine()

    def _workers_for(self, signature: SolveSignature) -> int:
        if signature.workers is not None:
            return max(1, signature.workers)
        if self.default_workers is not None:
            return self.default_workers
        return min(4, os.cpu_count() or 1)

    def capabilities(self) -> Capabilities:
        # max_workers is the accepted limit, not the core count —
        # sharding stays functional (and bitwise-safe) on any machine.
        return Capabilities(
            max_workers=max(32, os.cpu_count() or 1),
            description=(
                "batch-axis sharding over the engine's thread pool — "
                "bitwise independent of the worker count"
            ),
        )

    def prepare(self, signature: SolveSignature):
        info: dict = {}
        plan = self.engine.plan_for(
            signature.m,
            signature.n,
            np.dtype(signature.dtype),
            k=signature.k,
            fuse=signature.fuse,
            n_windows=signature.n_windows,
            subtile_scale=signature.subtile_scale,
            parallelism=signature.parallelism,
            heuristic=signature.heuristic,
            info=info,
        )
        return (signature, plan, info.get("cache", "miss"))

    def execute(self, prepared, batch, out=None) -> np.ndarray:
        signature, plan, cache = prepared
        a, b, c, d = batch
        workers = self._workers_for(signature)
        stage_times: list = []
        t0 = time.perf_counter()
        x = self.engine.solve_sharded(
            plan, workers, a, b, c, d, out=out, stage_times=stage_times
        )
        if not stage_times:  # one shard: solve_sharded fell back to pooled
            stage_times = [("execute", time.perf_counter() - t0)]
        self._set_trace(
            SolveTrace(
                backend=self.name,
                m=signature.m,
                n=signature.n,
                dtype=signature.dtype,
                k=plan.k,
                k_source=plan.k_source,
                fuse=plan.fuse,
                n_windows=plan.n_windows,
                workers=workers,
                plan_cache=cache,
                stages=[StageTiming(n_, s) for n_, s in stage_times],
            )
        )
        return x
