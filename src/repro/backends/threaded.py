"""Batch-axis sharding as an orthogonal backend layer.

PR 1 buried ``workers=`` inside the engine's ``solve_batch``; this
module folds that parallel composition out into its own layer:

* :func:`execute_sharded` is the one sharded-execution routine in the
  repo.  It runs a frozen plan over contiguous row shards — one engine
  workspace and one counter ledger per shard, every worker writing
  straight into one shared output — on the engine's persistent thread
  pool.  Both :meth:`ExecutionEngine.solve_sharded
  <repro.engine.engine.ExecutionEngine.solve_sharded>` (the legacy
  ``workers=`` path) and :class:`ThreadedBackend` delegate here.
* :class:`ThreadedBackend` exposes sharding through the backend
  protocol.  The router sends ``workers > 1`` solves to it; the inner
  per-shard execution is the engine's, so results stay bitwise
  identical to every other backend.

Bitwise safety is inherited from the engine (see
:mod:`repro.engine.executor`): every solver operation is elementwise
along the batch axis and the transition ``k`` is frozen from the *full*
batch before sharding, so results are independent of ``workers``.
"""

from __future__ import annotations

import os

import numpy as np

from repro.backends.base import BackendBase, Capabilities
from repro.backends.request import SolveOutcome, SolveRequest
from repro.core.tiled_pcr import TilingCounters
from repro.engine.executor import execute_plan
from repro.util.pools import executor_cap

__all__ = ["ThreadedBackend", "execute_sharded", "merge_shard_stage_times"]


def execute_sharded(
    engine,
    plan,
    shards,
    a,
    b,
    c,
    d,
    *,
    counters: TilingCounters | None = None,
    out: np.ndarray | None = None,
    stage_times: list | None = None,
) -> np.ndarray:
    """Run ``plan`` split along the batch axis, one thread per shard.

    Each shard gets a sub-plan with ``k`` *fixed* to the full-batch
    decision (the transition must not re-resolve against the smaller
    shard ``M``), its own pooled workspace, and its own counters; shard
    results are written directly into the shared ``out`` batch.

    ``stage_times`` receives the per-shard pipeline stages aggregated
    across workers: shards run the same stage sequence concurrently, so
    each stage contributes its **max-over-shards** wall time (the
    critical-path view) under a ``[w shards]``-suffixed name.  Workers
    previously timed into thread-local state the caller never saw; now
    the inner stage breakdown survives into the parent trace.
    """
    m, n = b.shape
    if out is None:
        out = np.empty((m, n), dtype=b.dtype)
    sub = [
        (
            lo,
            hi,
            engine.plan_for(
                hi - lo,
                n,
                b.dtype,
                k=plan.k,
                fuse=plan.fuse,
                n_windows=plan.n_windows,
                subtile_scale=plan.subtile_scale,
            ),
            TilingCounters(),
            [] if stage_times is not None else None,
        )
        for lo, hi in shards
    ]

    def run(job):
        lo, hi, subplan, ctr, times = job
        ws = engine.checkout(subplan)
        try:
            execute_plan(
                subplan,
                ws,
                a[lo:hi],
                b[lo:hi],
                c[lo:hi],
                d[lo:hi],
                counters=ctr,
                out=out[lo:hi],
                stage_times=times,
            )
        finally:
            engine.checkin(subplan, ws)

    pool = engine.thread_pool(len(sub))
    list(pool.map(run, sub))
    if counters is not None:
        for _, _, _, ctr, _ in sub:
            counters.merge(ctr)
    if stage_times is not None:
        stage_times.extend(merge_shard_stage_times([s[4] for s in sub]))
    return out


def merge_shard_stage_times(per_shard: list) -> list:
    """Aggregate per-shard ``(name, seconds)`` lists for a parent trace.

    Every shard runs the identical stage sequence; since shards execute
    concurrently, the parent's view of one stage is its slowest shard.
    Returns ``(f"{name} [w shards]", max seconds)`` pairs in stage
    order.
    """
    lists = [st for st in per_shard if st]
    if not lists:
        return []
    w = len(lists)
    merged = []
    for i, (name, secs) in enumerate(lists[0]):
        worst = secs
        for other in lists[1:]:
            if i < len(other) and other[i][0] == name:
                worst = max(worst, other[i][1])
        merged.append((f"{name} [{w} shards]", worst))
    return merged


class ThreadedBackend(BackendBase):
    """Registry adapter for thread-sharded batch execution.

    Parameters
    ----------
    engine:
        The engine whose plans, workspace pools, and thread pool the
        shards run on (default: the process-wide engine).
    default_workers:
        Worker count when the request does not carry one
        (default: ``min(4, cpu count)``).
    """

    name = "threaded"
    priority = 60

    def __init__(self, engine=None, default_workers: int | None = None):
        super().__init__()
        self._engine = engine
        if default_workers is not None and default_workers < 1:
            raise ValueError(
                f"default_workers must be >= 1, got {default_workers}"
            )
        self.default_workers = default_workers

    @property
    def engine(self):
        if self._engine is not None:
            return self._engine
        from repro.engine import default_engine

        return default_engine()

    def _workers_for(self, request: SolveRequest) -> int:
        if request.workers is not None:
            return max(1, request.workers)
        if self.default_workers is not None:
            return self.default_workers
        return min(4, os.cpu_count() or 1)

    def capabilities(self) -> Capabilities:
        # memoized: Capabilities is frozen and this sits on every
        # dispatch (and router admissibility) hot path
        caps = getattr(self, "_caps", None)
        if caps is None:
            # max_workers is the accepted limit, not the core count —
            # sharding stays functional (and bitwise-safe) on any
            # machine — but it is a *cap*, proportional to the host:
            # the old max(32, cpus) floor pinned >= 32 threads onto
            # 2-core machines.
            caps = self._caps = Capabilities(
                max_workers=executor_cap(),
                prepared=True,
                systems=("tridiagonal", "pentadiagonal", "block"),
                description=(
                    "batch-axis sharding over the engine's thread pool — "
                    "bitwise independent of the worker count; prepared "
                    "solves shard the RHS-only sweep"
                ),
            )
        return caps

    def execute(self, request: SolveRequest) -> SolveOutcome:
        """Run the request on the engine spine with sharding resolved.

        The request's ``workers`` is defaulted to this backend's shard
        count when unset; everything else — plan cache, fingerprint
        seam, periodic pipeline, prepared handles — is the engine's
        :meth:`~repro.engine.engine.ExecutionEngine.run`, so results
        stay bitwise identical to every other engine-family backend.
        """
        outcome = self.engine.run(
            request.replace(
                workers=self._workers_for(request),
                label=request.label or self.name,
            )
        )
        self._set_trace(outcome.trace)
        return outcome

    def bind(self, request: SolveRequest):
        """Native session with the shard count resolved at bind time.

        The engine's :class:`~repro.engine.session.BoundSolve` computes
        shard bounds once; every ``step`` then reuses the same shard
        geometry across the engine's persistent thread pool.
        """
        return self.engine.bind(
            request.replace(
                workers=self._workers_for(request),
                label=request.label or self.name,
            )
        )
