"""Per-solve instrumentation: :class:`SolveTrace` and the trace store.

Every solve that routes through the backend registry leaves behind one
:class:`SolveTrace` — which backend ran, the frozen transition ``k``,
whether the plan came out of a cache, and per-stage wall time (with the
gpusim backend's *predicted* device time side by side where one
exists).  The most recent trace is queryable process-wide via
:func:`repro.last_trace`; the CLI's ``--trace`` flag prints it.

Traces are stored per thread so concurrent solves (e.g. under the
threaded backend, or a user's own thread pool) never see each other's
instrumentation.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

__all__ = [
    "RouteDecision",
    "StageTiming",
    "SolveTrace",
    "last_trace",
    "record_trace",
    "clear_last_trace",
]


@dataclass
class StageTiming:
    """One pipeline stage: measured wall time, optionally a predicted one.

    ``predicted_us`` is filled by the gpusim backend only: the analytic
    device-model time for the same stage, so measured NumPy time and
    simulated GTX480 time sit side by side in one report.
    """

    name: str
    seconds: float
    predicted_us: float | None = None


@dataclass
class RouteDecision:
    """Why a solve ran where it ran: the router's provenance record.

    Filled at negotiation time (``BackendRegistry.resolve``) and copied
    onto the resulting :class:`SolveTrace` by ``solve_via`` — so every
    registry-dispatched trace says not just *what* executed but *which
    policy chose it and from what alternatives*.

    Attributes
    ----------
    router:
        The policy that routed: ``"static"`` (the Table-III-shaped
        default :class:`~repro.backends.registry.Router`),
        ``"adaptive"`` (:class:`~repro.autotune.AdaptiveRouter`), or
        ``"explicit"`` (the caller named the backend — no policy ran).
    chosen:
        Registry name of the selected backend.
    candidates:
        Capability-filtered backend names that were considered
        (just the chosen one for explicit dispatch).
    cell:
        The performance-model cell key consulted (``""`` when no model
        was involved).
    model:
        ``"hit"`` (a calibrated route was applied), ``"cold"`` (cell
        had no usable data — static fallback), or ``"n/a"`` (no model).
    explore:
        True when this pick was an epsilon-exploration sample rather
        than the believed-best route.
    route:
        The knobs the policy applied (``{"backend", "k", "workers",
        "fingerprint"}``); empty when nothing was overridden.
    reason:
        One-line human rationale.
    """

    router: str = "static"
    chosen: str = ""
    candidates: tuple = ()
    cell: str = ""
    model: str = "n/a"
    explore: bool = False
    route: dict = field(default_factory=dict)
    reason: str = ""

    def describe(self) -> dict:
        """Flat summary dict (mirrors :meth:`SolveTrace.describe`)."""
        return {
            "router": self.router,
            "chosen": self.chosen,
            "candidates": list(self.candidates),
            "cell": self.cell,
            "model": self.model,
            "explore": self.explore,
            "route": dict(self.route),
            "reason": self.reason,
        }


@dataclass
class SolveTrace:
    """What one registry-dispatched solve actually did.

    Attributes
    ----------
    backend:
        Registry name of the backend that executed (``"engine"``,
        ``"numpy"``, ``"gpusim"``, ``"threaded"``, or
        ``"direct:<algorithm>"`` for the classic non-hybrid paths).
    m, n, dtype:
        Batch signature the solve ran under.
    k, k_source:
        The frozen transition decision and where it came from
        (``"fixed"`` / ``"analytic"`` / ``"heuristic"``).
    fuse, n_windows, workers:
        Remaining plan knobs (``workers`` is 1 for unsharded solves).
    ranks:
        N-axis partition count the solve ran under (1 = not
        distributed; ``> 1`` only for the distributed tier and the
        gpusim simulated-distributed route).
    plan_cache:
        ``"hit"`` / ``"miss"`` for plan-caching backends, ``"n/a"``
        otherwise.
    factorization:
        What the coefficient-fingerprint cache did: ``"hit"`` (stored
        factorization served the solve), ``"factored"`` (built this
        call), ``"miss"`` (first sighting, solved unprepared),
        ``"handle"`` (explicit :class:`~repro.engine.prepared.PreparedPlan`),
        ``"off"`` (fingerprinting disabled), or ``"n/a"`` (backend or
        plan not eligible).
    rhs_only:
        True when the solve skipped elimination entirely and ran the
        stored factorization's RHS-only sweep.
    periodic:
        True when the trace describes a *cyclic* (Sherman–Morrison)
        solve — the whole correction pipeline, not the inner q-solve.
    system:
        The system kind the solve carried (``"tridiagonal"`` /
        ``"pentadiagonal"`` / ``"block"``) — one vocabulary across
        every stencil the spine dispatches.
    decision:
        The :class:`RouteDecision` negotiation provenance (``None`` for
        solves that bypassed the registry: direct algorithm paths,
        engine-direct adapters, prepared handles).
    stages:
        Per-stage :class:`StageTiming` in execution order.
    predicted_total_us:
        The gpusim backend's total device-model prediction (``None``
        for purely measured backends).
    """

    backend: str
    m: int = 0
    n: int = 0
    dtype: str = "float64"
    k: int = 0
    k_source: str = "heuristic"
    fuse: bool = False
    n_windows: int = 1
    workers: int = 1
    ranks: int = 1
    plan_cache: str = "n/a"
    factorization: str = "n/a"
    rhs_only: bool = False
    periodic: bool = False
    system: str = "tridiagonal"
    decision: RouteDecision | None = None
    stages: list = field(default_factory=list)
    predicted_total_us: float | None = None

    @property
    def total_s(self) -> float:
        """Measured wall time summed over the recorded stages."""
        return sum(s.seconds for s in self.stages)

    def stage(self, name_fragment: str) -> StageTiming:
        """Look up a stage by name fragment."""
        for s in self.stages:
            if name_fragment in s.name:
                return s
        raise KeyError(f"no stage matching {name_fragment!r}")

    def describe(self) -> dict:
        """Flat summary dict (used by reports and the CLI)."""
        return {
            "backend": self.backend,
            "m": self.m,
            "n": self.n,
            "dtype": self.dtype,
            "k": self.k,
            "k_source": self.k_source,
            "fuse": self.fuse,
            "n_windows": self.n_windows,
            "workers": self.workers,
            "ranks": self.ranks,
            "plan_cache": self.plan_cache,
            "factorization": self.factorization,
            "rhs_only": self.rhs_only,
            "periodic": self.periodic,
            "system": self.system,
            "decision": (
                self.decision.describe() if self.decision is not None else None
            ),
            "total_ms": self.total_s * 1e3,
            "predicted_total_us": self.predicted_total_us,
            "stages": [
                {
                    "name": s.name,
                    "ms": s.seconds * 1e3,
                    "predicted_us": s.predicted_us,
                }
                for s in self.stages
            ],
        }


_local = threading.local()


def record_trace(trace: SolveTrace) -> SolveTrace:
    """Store ``trace`` as this thread's most recent solve trace."""
    _local.trace = trace
    return trace


def last_trace() -> SolveTrace | None:
    """The most recent :class:`SolveTrace` on this thread (or ``None``)."""
    return getattr(_local, "trace", None)


def clear_last_trace() -> None:
    """Forget this thread's recorded trace (mainly for tests)."""
    _local.trace = None
