"""Baselines the paper compares against — all implemented, none stubbed.

* :mod:`~repro.baselines.mkl_proxy` — sequential and multithreaded Intel
  MKL stand-ins (Section IV's CPU bars): real Thomas/solve_banded
  numerics plus the calibrated i7-975 analytic model.
* :mod:`~repro.baselines.davidson` — Davidson, Zhang & Owens (IPDPS 2011)
  [19]: the auto-tuned, globally-synchronized coarse-tiled PCR-Thomas
  hybrid of Section V / Fig. 14.
* :mod:`~repro.baselines.zhang` — Zhang, Cohen & Owens (PPoPP 2010)
  [16][17]-style whole-system-in-shared-memory hybrid, including its hard
  size limitation (the paper's core criticism).
* :mod:`~repro.baselines.global_pcr` — a plain global-memory PCR sweep
  (Egloff [14]-style), the simplest scalable GPU baseline.
"""

from repro.baselines.mkl_proxy import (
    mkl_multithreaded_proxy,
    mkl_sequential_proxy,
)
from repro.baselines.davidson import DavidsonSolver
from repro.baselines.zhang import SharedMemoryCapacityError, ZhangSolver
from repro.baselines.global_pcr import GlobalMemoryPCRSolver

__all__ = [
    "mkl_sequential_proxy",
    "mkl_multithreaded_proxy",
    "DavidsonSolver",
    "ZhangSolver",
    "SharedMemoryCapacityError",
    "GlobalMemoryPCRSolver",
]
