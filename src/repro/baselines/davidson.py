"""Davidson, Zhang & Owens (IPDPS 2011) — the Fig. 14 competitor.

Their auto-tuned PCR-Thomas hybrid for large systems works in lockstep
(Section V of our paper):

1. **Global PCR phase** — PCR steps are applied to the *whole* system in
   global memory, one kernel launch per step (a step's outputs feed the
   next step's inputs, so a grid-wide barrier — i.e. kernel termination
   and relaunch — separates them).  Each step gathers three neighbour
   rows per output row.  Steps continue until the interleaved
   subsystems fit shared memory.
2. **In-shared-memory phase** — each subsystem (elements at stride
   ``2^{k_g}``) is loaded by one maximally-sized thread block into
   shared memory and finished with a PCR + p-Thomas hybrid.  The
   strided gather is the coalescing price of the lockstep design: lane
   ``t`` of a warp reads element ``j + t·2^{k_g}`` — one transaction per
   lane once the stride passes the segment size.

Why it loses to the sliding window (the paper's Section V, quantified
by this model): per-step full-array round trips instead of one cached
pass; kernel relaunch per step; maximal blocks → few blocks per SM and
wide barriers; strided final-phase loads.

The solver is numerically real (``solve_batch``) and the ledger builder
(``counters``) prices it for Fig. 14.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.pcr import pcr_step
from repro.core.pthomas import pthomas_solve_interleaved
from repro.core.validation import check_batch_arrays
from repro.gpusim.counters import KernelCounters
from repro.gpusim.device import DeviceSpec, GTX480
from repro.gpusim.memory import MemoryTraffic, warp_transactions_strided
from repro.gpusim.sharedmem import smem_access_cycles
from repro.gpusim.timing import GpuTimingModel
from repro.kernels.pcr_kernel import max_inshared_rows

__all__ = ["DavidsonSolver"]


@dataclass
class DavidsonSolver:
    """Coarse-grained, globally-synchronized PCR-Thomas hybrid [19].

    Parameters
    ----------
    device:
        Simulated GPU (shared-memory capacity sets the phase switch).
    inner_pcr_steps:
        PCR steps of the in-shared-memory hybrid before its p-Thomas
        stage (their auto-tuner picks a few; 4 is representative).
    """

    device: DeviceSpec = GTX480
    inner_pcr_steps: int = 4
    last_counters: list = field(default_factory=list, compare=False)

    def global_steps(self, n: int, dtype_bytes: int) -> int:
        """Lockstep global PCR steps until subsystems fit shared memory."""
        cap = max_inshared_rows(self.device, dtype_bytes)
        if n <= cap:
            return 0
        return math.ceil(math.log2(n / cap))

    # ---- numerics ------------------------------------------------------
    def solve_batch(self, a, b, c, d, *, check: bool = True) -> np.ndarray:
        """Solve the batch exactly as the lockstep pipeline would."""
        if check:
            a, b, c, d = check_batch_arrays(a, b, c, d)
        else:
            a, b, c, d = (np.asarray(v) for v in (a, b, c, d))
        n = b.shape[1]
        dtype_bytes = b.dtype.itemsize
        k_g = self.global_steps(n, dtype_bytes)
        s = 1
        for _ in range(k_g):
            a, b, c, d = pcr_step(a, b, c, d, s)
            s *= 2
        # In-shared-memory phase: more PCR inside each subsystem, then
        # p-Thomas.  PCR strides continue doubling from 2^k_g, which is
        # exactly further global steps in row-index terms.
        inner = self.inner_pcr_steps
        g = 1 << k_g
        while inner > 0 and (g << 1) < n:
            a, b, c, d = pcr_step(a, b, c, d, s)
            s *= 2
            g <<= 1
            inner -= 1
        k_total = int(math.log2(g)) if g > 1 else 0
        return pthomas_solve_interleaved(a, b, c, d, k_total)

    def solve(self, a, b, c, d, *, check: bool = True) -> np.ndarray:
        """Single-system convenience wrapper."""
        a, b, c, d = (np.asarray(v) for v in (a, b, c, d))
        return self.solve_batch(
            a[None, :], b[None, :], c[None, :], d[None, :], check=check
        )[0]

    # ---- ledger / timing ------------------------------------------------
    def counters(self, m: int, n: int, dtype_bytes: int) -> list:
        """Kernel ledgers of the lockstep pipeline for an M × N batch."""
        dev = self.device
        warp = dev.warp_size
        k_g = self.global_steps(n, dtype_bytes)
        rows = m * n
        out = []

        # Phase 1: one launch per global PCR step.  Per output row: read
        # own row + two neighbour rows (4 values each, all coalesced),
        # write own row (4 values).
        tx1 = warp_transactions_strided(warp, 1, dtype_bytes)
        acc = -(-rows // warp)
        for step in range(k_g):
            traffic = MemoryTraffic()
            traffic.add_load(12 * rows * dtype_bytes, 12 * acc * tx1)
            traffic.add_store(4 * rows * dtype_bytes, 4 * acc * tx1)
            out.append(
                KernelCounters(
                    name=f"davidson global PCR step {step}",
                    eliminations=rows,
                    traffic=traffic,
                    launches=1,
                    dependent_steps=1,
                    threads=rows,
                    threads_per_block=256,
                )
            )

        # Phase 2: in-shared-memory hybrid, one maximal block per
        # subsystem.  Loads are strided by 2^k_g (uncoalesced for
        # k_g ≥ log2(segment/elem)); the block occupies the whole SM's
        # shared memory.
        g = 1 << k_g
        length = -(-n // g)
        blocks = m * g
        block_threads = min(dev.max_threads_per_block, max(warp, length))
        tx_strided = warp_transactions_strided(warp, g, dtype_bytes)
        sub_rows = blocks * length
        sub_acc = -(-sub_rows // warp)
        traffic = MemoryTraffic()
        traffic.add_load(4 * sub_rows * dtype_bytes, 4 * sub_acc * tx_strided)
        traffic.add_store(sub_rows * dtype_bytes, sub_acc * tx_strided)
        levels = self.inner_pcr_steps + 1
        unit = smem_access_cycles(1, elem_words=dtype_bytes // 4)
        warp_acc_smem = -(-sub_rows // warp) * levels
        out.append(
            KernelCounters(
                name="davidson in-smem hybrid",
                eliminations=sub_rows * levels + sub_rows * 2,
                traffic=traffic,
                smem_accesses=16 * warp_acc_smem,
                smem_cycles=16 * warp_acc_smem * unit,
                barriers=blocks * 2 * levels,
                launches=1,
                dependent_steps=2 * levels + 2 * (length >> self.inner_pcr_steps),
                threads=blocks * block_threads,
                threads_per_block=block_threads,
                smem_per_block=min(
                    dev.max_shared_mem_per_block, 4 * length * dtype_bytes
                ),
            )
        )
        self.last_counters = out
        return out

    def predict_seconds(self, m: int, n: int, dtype_bytes: int) -> float:
        """Total predicted time of the pipeline on the device model."""
        model = GpuTimingModel(self.device)
        return sum(
            model.time(k, dtype_bytes).total_s
            for k in self.counters(m, n, dtype_bytes)
        )
