"""Plain global-memory PCR (Egloff [14][15]-style).

The simplest *scalable* GPU baseline: run every PCR step over the whole
system in global memory, one kernel launch per step, until rows
decouple; no shared memory, no tiling, no Thomas stage.  O(n log n)
work and ``log n`` full-array round trips — the traffic profile that
makes the paper's O(n) hybrid win at scale, and a useful sanity point
between the CPU baselines and the tuned competitors.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.pcr import pcr_solve_batch
from repro.core.validation import check_batch_arrays
from repro.gpusim.counters import KernelCounters
from repro.gpusim.device import DeviceSpec, GTX480
from repro.gpusim.memory import MemoryTraffic, warp_transactions_strided
from repro.gpusim.timing import GpuTimingModel

__all__ = ["GlobalMemoryPCRSolver"]


@dataclass
class GlobalMemoryPCRSolver:
    """Complete PCR with one global kernel launch per step."""

    device: DeviceSpec = GTX480

    def solve_batch(self, a, b, c, d, *, check: bool = True) -> np.ndarray:
        """Numerics are exactly complete PCR."""
        if check:
            a, b, c, d = check_batch_arrays(a, b, c, d)
        return pcr_solve_batch(a, b, c, d, check=False)

    def solve(self, a, b, c, d, *, check: bool = True) -> np.ndarray:
        """Single-system convenience wrapper."""
        a, b, c, d = (np.asarray(v) for v in (a, b, c, d))
        return self.solve_batch(
            a[None, :], b[None, :], c[None, :], d[None, :], check=check
        )[0]

    def counters(self, m: int, n: int, dtype_bytes: int) -> list:
        """One ledger per PCR step: full-array gather + write back."""
        steps = max(1, math.ceil(math.log2(n)))
        warp = self.device.warp_size
        rows = m * n
        acc = -(-rows // warp)
        tx1 = warp_transactions_strided(warp, 1, dtype_bytes)
        out = []
        for step in range(steps):
            traffic = MemoryTraffic()
            traffic.add_load(12 * rows * dtype_bytes, 12 * acc * tx1)
            traffic.add_store(4 * rows * dtype_bytes, 4 * acc * tx1)
            out.append(
                KernelCounters(
                    name=f"global PCR step {step}",
                    eliminations=rows,
                    traffic=traffic,
                    launches=1,
                    dependent_steps=1,
                    threads=rows,
                    threads_per_block=256,
                )
            )
        return out

    def predict_seconds(self, m: int, n: int, dtype_bytes: int) -> float:
        """Total predicted time on the device model."""
        model = GpuTimingModel(self.device)
        return sum(
            model.time(k, dtype_bytes).total_s
            for k in self.counters(m, n, dtype_bytes)
        )
