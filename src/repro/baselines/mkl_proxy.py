"""CPU baselines: stand-ins for Intel MKL's tridiagonal solver.

The paper benchmarks against MKL ``dgtsv`` compiled with icc on an
i7 975: **sequential** always, **multithreaded** when there are two or
more independent systems (MKL's solver itself is single-threaded; the
parallelism is across systems).

Here:

* :func:`mkl_sequential_proxy` — solves the batch one system at a time
  with :func:`scipy.linalg.solve_banded` (a LAPACK ``gtsv``-family
  banded solve — literally the same algorithm family MKL runs).
* :func:`mkl_multithreaded_proxy` — solves all systems in one vectorized
  batched-Thomas pass, the CPU-side analogue of "one thread per system"
  parallelization (NumPy's vector units play the role of the i7's
  cores; the *timing* claims in the figures use the calibrated
  :class:`repro.gpusim.cpu.MklProxyModel`, these functions make the
  baseline numerically real).

Both return solutions that the test suite checks against each other and
against the GPU-path solvers.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import solve_banded

from repro.core.thomas import thomas_solve_batch
from repro.core.validation import check_batch_arrays

__all__ = ["mkl_sequential_proxy", "mkl_multithreaded_proxy"]


def mkl_sequential_proxy(a, b, c, d, *, check: bool = True) -> np.ndarray:
    """Sequential CPU baseline: LAPACK banded solve, one system at a time."""
    if check:
        a, b, c, d = check_batch_arrays(a, b, c, d)
    else:
        a, b, c, d = (np.asarray(v) for v in (a, b, c, d))
    m, n = b.shape
    x = np.empty((m, n), dtype=b.dtype)
    ab = np.zeros((3, n), dtype=b.dtype)
    for i in range(m):
        ab[0, 1:] = c[i, :-1]
        ab[1, :] = b[i]
        ab[2, :-1] = a[i, 1:]
        x[i] = solve_banded((1, 1), ab, d[i], check_finite=False)
    return x


def mkl_multithreaded_proxy(a, b, c, d, *, check: bool = True) -> np.ndarray:
    """Multithreaded CPU baseline: all systems swept in parallel.

    Falls back to the sequential path for ``M = 1`` — exactly MKL's
    behaviour in the paper ("the CPU implementation becomes
    multi-threaded only when there are two or more independent systems").
    """
    if check:
        a, b, c, d = check_batch_arrays(a, b, c, d)
    else:
        a, b, c, d = (np.asarray(v) for v in (a, b, c, d))
    if b.shape[0] == 1:
        return mkl_sequential_proxy(a, b, c, d, check=False)
    return thomas_solve_batch(a, b, c, d, check=False)
