"""Zhang, Cohen & Owens (PPoPP 2010)-style in-shared-memory hybrid.

The prior art the paper positions itself against: a PCR-Thomas hybrid
that keeps the **entire system in shared memory** (as do the
Sakharnykh GTC solvers).  Fast for small systems, but "the limited
capacity of shared memory considerably limits their availability for
real use" — on Fermi, 4 arrays × N × 8 B must fit 48 KiB, capping N at
1536 in double precision.

:class:`ZhangSolver` enforces that cap with
:class:`SharedMemoryCapacityError`, which the size-limitation benchmark
and tests exercise; within the cap it is numerically identical to a
k-step PCR + p-Thomas (it *is* one — the paper notes its own method
"reduces to [16][17]" when the input fits shared memory).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.pcr import pcr_sweep
from repro.core.pthomas import pthomas_solve_interleaved
from repro.core.transition import clamp_k
from repro.core.validation import check_batch_arrays
from repro.gpusim.device import DeviceSpec, GTX480
from repro.kernels.pcr_kernel import inshared_pcr_counters, max_inshared_rows

__all__ = ["ZhangSolver", "SharedMemoryCapacityError"]


class SharedMemoryCapacityError(ValueError):
    """The system does not fit in one thread block's shared memory."""


@dataclass
class ZhangSolver:
    """Whole-system-in-shared-memory PCR-Thomas hybrid [16][17].

    Parameters
    ----------
    device:
        Sets the shared-memory capacity (and hence the hard size cap).
    pcr_steps:
        PCR steps before switching to p-Thomas inside the block.
    """

    device: DeviceSpec = GTX480
    pcr_steps: int = 4

    def capacity(self, dtype_bytes: int) -> int:
        """Largest solvable system size for this precision."""
        return max_inshared_rows(self.device, dtype_bytes)

    def solve_batch(self, a, b, c, d, *, check: bool = True) -> np.ndarray:
        """Solve the batch, or raise if it exceeds shared memory."""
        if check:
            a, b, c, d = check_batch_arrays(a, b, c, d)
        else:
            a, b, c, d = (np.asarray(v) for v in (a, b, c, d))
        n = b.shape[1]
        cap = self.capacity(b.dtype.itemsize)
        if n > cap:
            raise SharedMemoryCapacityError(
                f"system of {n} rows exceeds the in-shared-memory capacity of "
                f"{cap} rows on {self.device.name} "
                f"({b.dtype.itemsize}-byte elements); this size limitation is "
                f"the motivation for the paper's tiled approach"
            )
        k = clamp_k(self.pcr_steps, n)
        a, b, c, d = pcr_sweep(a, b, c, d, k)
        return pthomas_solve_interleaved(a, b, c, d, k)

    def solve(self, a, b, c, d, *, check: bool = True) -> np.ndarray:
        """Single-system convenience wrapper."""
        a, b, c, d = (np.asarray(v) for v in (a, b, c, d))
        return self.solve_batch(
            a[None, :], b[None, :], c[None, :], d[None, :], check=check
        )[0]

    def counters(self, m: int, n: int, dtype_bytes: int):
        """Kernel ledger (raises beyond capacity, like the solver)."""
        cap = self.capacity(dtype_bytes)
        if n > cap:
            raise SharedMemoryCapacityError(
                f"system of {n} rows exceeds capacity {cap}"
            )
        return inshared_pcr_counters(
            m, n, dtype_bytes, device=self.device,
            steps=clamp_k(self.pcr_steps, n) or 1,
        )
