"""Command-line interface: ``python -m repro.cli <command>``.

Commands
--------
``plan``      show the hybrid's execution plan for a problem shape
``solve``     solve a random batch and report residual + predicted time
``backends``  list the registered execution backends + capabilities
``figures``   print one figure panel's model series (12/13/14)
``tables``    print Table I / II / III
``anchors``   verify the calibration anchors against the paper
``report``    emit the full EXPERIMENTS.md body
``trace``     run one solve and print its instrumentation trace
``tune``        calibrate the adaptive router's performance model
``router``      inspect (or reset) a persisted performance model
``serve-stats``  run a traffic burst through the solve service and
                 report coalescing + per-tenant latency statistics

Examples
--------
.. code-block:: bash

    python -m repro.cli plan -M 64 -N 4096
    python -m repro.cli solve -M 256 -N 2048 --fuse
    python -m repro.cli solve -M 64 -N 1024 --backend gpusim --trace
    python -m repro.cli solve -M 1024 -N 1024 --prepare 50 --trace
    python -m repro.cli backends
    python -m repro.cli figures --figure 12 --panel 512
    python -m repro.cli tables --table 3
    python -m repro.cli anchors
    python -m repro.cli trace -M 64 -N 1024 --json
    python -m repro.cli tune --model router_model.json --repeats 3
    python -m repro.cli router --model router_model.json
    python -m repro.cli serve-stats --requests 128 -M 8 -N 1024 --tenants 4
"""

from __future__ import annotations

import argparse
import sys
import time


__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for testing)."""
    p = argparse.ArgumentParser(
        prog="repro",
        description="Scalable tridiagonal solver (ICPP 2011 reproduction)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    plan = sub.add_parser("plan", help="show the hybrid execution plan")
    plan.add_argument("-M", type=int, required=True, help="number of systems")
    plan.add_argument("-N", type=int, required=True, help="system size")
    plan.add_argument("--device", choices=("gtx480", "c2050"), default="gtx480")
    plan.add_argument("--fp32", action="store_true", help="single precision")

    solve = sub.add_parser("solve", help="solve a random batch")
    solve.add_argument("-M", type=int, default=64)
    solve.add_argument("-N", type=int, default=2048)
    solve.add_argument("--seed", type=int, default=0)
    solve.add_argument("--fuse", action="store_true")
    solve.add_argument(
        "--algorithm",
        choices=("auto", "hybrid", "thomas", "cr", "pcr", "rd"),
        default="auto",
    )
    solve.add_argument(
        "--backend",
        default="auto",
        help="execution backend for the hybrid/auto algorithms "
        "(auto, or a name from `repro backends`)",
    )
    solve.add_argument(
        "--workers", type=int, default=None,
        help="shard the batch across this many threads",
    )
    solve.add_argument(
        "--ranks", type=int, default=None, metavar="P",
        help="partition each system's N rows across P ranks "
        "(the distributed backend's reduced-interface pipeline)",
    )
    solve.add_argument(
        "--trace", action="store_true",
        help="print the per-solve instrumentation trace",
    )
    solve.add_argument(
        "--prepare", type=int, default=None, metavar="STEPS",
        help="time-stepping demo: factor the coefficients once, then "
        "solve STEPS fresh right-hand sides through the prepared "
        "RHS-only path (and the same loop unprepared, for comparison)",
    )
    solve.add_argument(
        "--periodic", action="store_true",
        help="solve cyclic (periodic-boundary) systems via "
        "Sherman-Morrison; combines with --prepare and --trace",
    )
    solve.add_argument(
        "--system", choices=("tri", "penta", "block"), default="tri",
        help="system stencil: tridiagonal (default), pentadiagonal, "
        "or block-tridiagonal (see --block-size)",
    )
    solve.add_argument(
        "--block-size", type=int, default=2, metavar="B",
        help="dense block size for --system block (default: 2)",
    )

    sub.add_parser(
        "backends", help="list registered execution backends"
    )

    figures = sub.add_parser("figures", help="print a figure panel's series")
    figures.add_argument("--figure", type=int, choices=(12, 13, 14), required=True)
    figures.add_argument(
        "--panel", help="N for fig 12, M for fig 13, ignored for fig 14"
    )
    figures.add_argument("--fp32", action="store_true")

    tables = sub.add_parser("tables", help="print a paper table")
    tables.add_argument("--table", type=int, choices=(1, 2, 3), required=True)

    sub.add_parser("anchors", help="verify calibration anchors")
    sub.add_parser("report", help="emit the EXPERIMENTS.md body")

    roof = sub.add_parser("roofline", help="roofline survey of the kernels")
    roof.add_argument("-M", type=int, default=256)
    roof.add_argument("-N", type=int, default=16384)
    roof.add_argument("-k", type=int, default=6)
    roof.add_argument("--fp32", action="store_true")

    acc = sub.add_parser("accuracy", help="accuracy study across algorithms")
    acc.add_argument(
        "--sweep", choices=("poisson", "dominance"), default="poisson"
    )

    exp = sub.add_parser(
        "export", help="write every reproduction artifact as JSON"
    )
    exp.add_argument("--out", default="results", help="output directory")
    exp.add_argument(
        "--no-accuracy", action="store_true",
        help="skip the (slower) accuracy sweeps",
    )

    tr = sub.add_parser(
        "trace", help="run one solve and print its instrumentation trace"
    )
    tr.add_argument("-M", type=int, default=64)
    tr.add_argument("-N", type=int, default=1024)
    tr.add_argument("--seed", type=int, default=0)
    tr.add_argument("--backend", default=None,
                    help="pin the backend (default: let the router choose)")
    tr.add_argument("--periodic", action="store_true")
    tr.add_argument("--fp32", action="store_true")
    tr.add_argument(
        "--rtol", type=float, default=None,
        help="accuracy contract: licenses factorization reuse on "
        "hybrid plans (see SolveRequest.rtol)",
    )
    tr.add_argument(
        "--adaptive", metavar="MODEL", default=None,
        help="route through an AdaptiveRouter loaded from MODEL",
    )
    tr.add_argument(
        "--json", action="store_true",
        help="dump the full trace.describe() payload as JSON",
    )

    tune = sub.add_parser(
        "tune", help="calibrate the adaptive router's performance model"
    )
    tune.add_argument(
        "--model", default="router_model.json",
        help="model file to create or extend (default: %(default)s)",
    )
    tune.add_argument(
        "--shapes", default=None,
        help="comma-separated MxN shapes, e.g. '8x1024,512x512' "
        "(default: the built-in Table-III sweep)",
    )
    tune.add_argument("--repeats", type=int, default=3,
                      help="observed rounds per route")
    tune.add_argument("--warmup", type=int, default=2,
                      help="unobserved warm-up rounds")
    tune.add_argument("--fp32", action="store_true")
    tune.add_argument("--periodic", action="store_true")
    tune.add_argument("--rtol", type=float, default=None,
                      help="also calibrate rtol-licensed reuse routes")
    tune.add_argument(
        "--fresh", action="store_true",
        help="start from an empty model instead of extending the file",
    )

    router = sub.add_parser(
        "router", help="inspect (or reset) a persisted performance model"
    )
    router.add_argument(
        "--model", default="router_model.json",
        help="model file to inspect (default: %(default)s)",
    )
    router.add_argument(
        "--reset", action="store_true", help="delete the model file"
    )

    serve = sub.add_parser(
        "serve-stats",
        help="run a traffic burst through the solve service and report "
        "coalescing + per-tenant statistics",
    )
    serve.add_argument("--requests", type=int, default=128,
                       help="concurrent requests in the burst")
    serve.add_argument("-M", type=int, default=8,
                       help="rows per request fragment")
    serve.add_argument("-N", type=int, default=1024, help="system size")
    serve.add_argument("--tenants", type=int, default=4,
                       help="round-robin tenant count")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--shared-matrix", action="store_true",
        help="every request solves the same matrix (exercises the "
        "shared-factorization digest path instead of plain coalescing)",
    )
    serve.add_argument(
        "--max-batch-rows", type=int, default=2048,
        help="coalescing window row cap (default: %(default)s)",
    )
    serve.add_argument(
        "--max-wait-us", type=float, default=2000.0,
        help="coalescing window timer in microseconds (default: %(default)s)",
    )
    serve.add_argument(
        "--json", action="store_true",
        help="dump the full service.describe() payload as JSON",
    )
    return p


def _device(name: str):
    from repro.gpusim.device import GTX480, TESLA_C2050

    return GTX480 if name == "gtx480" else TESLA_C2050


def _cmd_plan(args) -> int:
    from repro.kernels.hybrid_gpu import GpuHybridSolver

    gpu = GpuHybridSolver(device=_device(args.device))
    rep = gpu.predict(args.M, args.N, 4 if args.fp32 else 8)
    print(f"device     : {gpu.device.name}")
    print(f"problem    : M={args.M} systems x N={args.N} rows, "
          f"{'fp32' if args.fp32 else 'fp64'}")
    print(f"plan       : k={rep.k} (tile 2^k = {1 << rep.k}), "
          f"windows/system = {rep.n_windows}")
    print(f"subsystems : {args.M * (1 << rep.k)} for p-Thomas")
    print(f"predicted  : {rep.total_us:,.0f} us on the device model")
    for name, counters, t in rep.stages:
        print(f"  {name:<18} {t.total_s * 1e6:10,.1f} us  ({t.bound}-bound, "
              f"{counters.traffic.useful_bytes / 1e6:,.1f} MB payload)")
    return 0


def _random_cyclic_batch(m: int, n: int, seed: int):
    """Random dominant *cyclic* batch (corners in ``a[:,0]``/``c[:,-1]``)."""
    import numpy as np

    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, n))
    c = rng.standard_normal((m, n))
    b = 2.0 + np.abs(a) + np.abs(c)
    d = rng.standard_normal((m, n))
    return a, b, c, d


def _cyclic_residual(a, b, c, d, x) -> float:
    """Max relative residual of a cyclic batch solve."""
    import numpy as np

    r = b * x
    r[:, 1:] += a[:, 1:] * x[:, :-1]
    r[:, :-1] += c[:, :-1] * x[:, 1:]
    r[:, 0] += a[:, 0] * x[:, -1]
    r[:, -1] += c[:, -1] * x[:, 0]
    denom = max(float(np.abs(d).max()), 1e-30)
    return float(np.abs(r - d).max()) / denom


def _cmd_solve(args) -> int:
    import repro
    from repro.util.numerics import residual_norm
    from repro.util.tridiag import BatchTridiagonal
    from repro.workloads.generators import random_batch

    hybrid = args.algorithm in ("auto", "hybrid")
    if not hybrid and (
        args.backend != "auto"
        or args.workers is not None
        or args.ranks is not None
        or args.prepare is not None
    ):
        print(
            f"--backend/--workers/--ranks/--prepare apply to the "
            f"hybrid/auto algorithms only, not {args.algorithm!r}",
            file=sys.stderr,
        )
        return 2
    if args.system != "tri":
        if args.periodic or args.prepare is not None or not hybrid:
            print(
                "--system penta/block rides the registry spine only: "
                "it does not combine with --periodic, --prepare, or a "
                "direct --algorithm",
                file=sys.stderr,
            )
            return 2
        return _solve_banded(args)
    if args.prepare is not None:
        return _solve_prepared(args)
    kwargs = {}
    if hybrid:
        kwargs["fuse"] = args.fuse
        kwargs["backend"] = args.backend
        if args.workers is not None:
            kwargs["workers"] = args.workers
        if args.ranks is not None:
            kwargs["ranks"] = args.ranks
    if args.periodic:
        a, b, c, d = _random_cyclic_batch(args.M, args.N, args.seed)
        t0 = time.perf_counter()
        x = repro.solve_periodic_batch(
            a, b, c, d, algorithm=args.algorithm, **kwargs
        )
        dt = time.perf_counter() - t0
        res = _cyclic_residual(a, b, c, d, x)
        what = f"periodic {args.algorithm}"
    else:
        a, b, c, d = random_batch(args.M, args.N, seed=args.seed)
        t0 = time.perf_counter()
        x = repro.solve_batch(a, b, c, d, algorithm=args.algorithm, **kwargs)
        dt = time.perf_counter() - t0
        res = residual_norm(BatchTridiagonal(a, b, c, d), x)
        what = args.algorithm
    print(f"solved M={args.M} x N={args.N} with {what} "
          f"in {dt * 1e3:.2f} ms (this machine, NumPy)")
    print(f"relative residual: {res:.3e}")
    if args.trace:
        from repro.analysis.report import trace_markdown

        trace = repro.last_trace()
        print()
        print(trace_markdown(trace) if trace is not None
              else "no trace recorded")
    return 0 if res < 1e-6 else 1


def _solve_banded(args) -> int:
    import numpy as np

    import repro
    from repro.backends import solve_via
    from repro.workloads.generators import (
        random_block_batch,
        random_penta_batch,
    )

    kwargs = {"backend": args.backend}
    if args.workers is not None:
        kwargs["workers"] = args.workers
    if args.system == "penta":
        e, a, b, c, f, d = random_penta_batch(args.M, args.N, seed=args.seed)
        t0 = time.perf_counter()
        x, _ = solve_via(a, b, c, d, e=e, f=f, **kwargs)
        dt = time.perf_counter() - t0
        r = b * x - d
        r[:, 1:] += a[:, 1:] * x[:, :-1]
        r[:, :-1] += c[:, :-1] * x[:, 1:]
        r[:, 2:] += e[:, 2:] * x[:, :-2]
        r[:, :-2] += f[:, :-2] * x[:, 2:]
        what = "pentadiagonal"
    else:
        from repro.core.blocktridiag import block_residual

        A, B, C, d = random_block_batch(
            args.M, args.N, block_size=args.block_size, seed=args.seed
        )
        t0 = time.perf_counter()
        x, _ = solve_via(A, B, C, d, **kwargs)
        dt = time.perf_counter() - t0
        r = block_residual(A, B, C, d, x)
        what = f"block-tridiagonal (B={args.block_size})"
    res = float(np.linalg.norm(r) / np.linalg.norm(d))
    print(f"solved M={args.M} x N={args.N} {what} "
          f"in {dt * 1e3:.2f} ms (this machine, NumPy)")
    print(f"relative residual: {res:.3e}")
    if args.trace:
        from repro.analysis.report import trace_markdown

        trace = repro.last_trace()
        print()
        print(trace_markdown(trace) if trace is not None
              else "no trace recorded")
    return 0 if res < 1e-6 else 1


def _solve_prepared(args) -> int:
    import numpy as np

    import repro
    from repro.util.numerics import residual_norm
    from repro.util.tridiag import BatchTridiagonal
    from repro.workloads.generators import random_batch

    if args.prepare < 1:
        print("--prepare needs at least one step", file=sys.stderr)
        return 2
    if args.periodic:
        a, b, c, d0 = _random_cyclic_batch(args.M, args.N, args.seed)
    else:
        a, b, c, d0 = random_batch(args.M, args.N, seed=args.seed)
    rng = np.random.default_rng(args.seed + 1)
    rhs = [d0] + [
        rng.standard_normal((args.M, args.N)) for _ in range(args.prepare - 1)
    ]
    workers = args.workers

    handle = repro.prepare(a, b, c, fuse=args.fuse, periodic=args.periodic)
    t0 = time.perf_counter()
    xs = [handle.solve(di, workers=workers) for di in rhs]
    prepared_ms = (time.perf_counter() - t0) * 1e3

    kwargs = {"fuse": args.fuse, "backend": args.backend,
              "fingerprint": False}
    if workers is not None:
        kwargs["workers"] = workers
    t0 = time.perf_counter()
    if args.periodic:
        ref = [repro.solve_periodic_batch(a, b, c, di, **kwargs)
               for di in rhs]
    else:
        ref = [repro.solve_batch(a, b, c, di, **kwargs) for di in rhs]
    unprepared_ms = (time.perf_counter() - t0) * 1e3

    agree = all(np.allclose(x, r) for x, r in zip(xs, ref))
    if args.periodic:
        res = max(
            _cyclic_residual(a, b, c, di, xi)
            for di, xi in zip(rhs, xs)
        )
    else:
        res = max(
            residual_norm(BatchTridiagonal(a, b, c, di), xi)
            for di, xi in zip(rhs, xs)
        )
    steps = args.prepare
    print(f"prepared handle: {handle.describe()}")
    print(f"{steps} time steps, M={args.M} x N={args.N}:")
    print(f"  prepared (RHS-only) : {prepared_ms:8.2f} ms "
          f"({prepared_ms / steps:.3f} ms/step)")
    print(f"  unprepared          : {unprepared_ms:8.2f} ms "
          f"({unprepared_ms / steps:.3f} ms/step)  "
          f"-> {unprepared_ms / prepared_ms:.2f}x")
    print(f"  worst relative residual: {res:.3e}  "
          f"(matches unprepared: {'yes' if agree else 'NO'})")
    if args.trace:
        from repro.analysis.report import trace_markdown

        # one more solve through the public API with the same
        # coefficients: shows the fingerprint cache auto-hitting
        if args.periodic:
            repro.solve_periodic_batch(a, b, c, rhs[-1],
                                       backend=args.backend)
        else:
            repro.solve_batch(a, b, c, rhs[-1], fuse=args.fuse,
                              backend=args.backend)
        trace = repro.last_trace()
        print()
        print(trace_markdown(trace) if trace is not None
              else "no trace recorded")
    return 0 if agree and res < 1e-6 else 1


def _cmd_backends(_args) -> int:
    from repro.backends import default_registry

    registry = default_registry()
    resolved = registry.backends()
    width = max(len(b.name) for b in resolved)
    print(f"{'name':<{width}}  prio  dtypes           periodic  "
          f"workers  kind       description")
    for b in resolved:
        caps = b.capabilities()
        print(
            f"{b.name:<{width}}  {b.priority:>4}  "
            f"{'/'.join(caps.dtypes):<15}  "
            f"{'yes' if caps.periodic else 'no ':<8}  "
            f"{caps.max_workers:>7}  "
            f"{'simulated' if caps.simulated else 'measured ':<9}  "
            f"{caps.description}"
        )
    return 0


def _cmd_figures(args) -> int:
    from repro.analysis.figures import (
        FIG12_SWEEPS,
        FIG13_SWEEPS,
        figure12_series,
        figure13_series,
        figure14_bars,
    )
    from repro.analysis.report import markdown_table

    dtype_bytes = 4 if args.fp32 else 8
    if args.figure == 12:
        n = int(args.panel or 512)
        if n not in FIG12_SWEEPS:
            print(f"panel must be one of {sorted(FIG12_SWEEPS)}", file=sys.stderr)
            return 2
        rows = figure12_series(n, dtype_bytes=dtype_bytes)
        cols = [("M", "M"), ("mkl_seq_us", "MKL seq (us)"),
                ("mkl_mt_us", "MKL mt (us)"), ("ours_us", "ours (us)"),
                ("k", "k"), ("speedup_seq", "xseq"), ("speedup_mt", "xmt")]
    elif args.figure == 13:
        m = int(args.panel or 2048)
        if m not in FIG13_SWEEPS:
            print(f"panel must be one of {sorted(FIG13_SWEEPS)}", file=sys.stderr)
            return 2
        rows = figure13_series(m, dtype_bytes=dtype_bytes)
        cols = [("N", "N"), ("mkl_seq_ms", "MKL seq (ms)"),
                ("ours_ms", "ours (ms)"), ("k", "k"),
                ("pcr_fraction", "PCR share"), ("speedup_seq", "xseq")]
    else:
        rows = figure14_bars(dtype_bytes)
        cols = [("config", "config"), ("ours_ms", "ours (ms)"),
                ("paper_ours_ms", "paper ours"), ("davidson_ms", "Davidson"),
                ("paper_davidson_ms", "paper Davidson"), ("ratio", "ratio")]
    print(markdown_table(rows, cols))
    return 0


def _cmd_tables(args) -> int:
    from repro.analysis.report import markdown_table
    from repro.analysis.tables import table1_rows, table2_rows, table3_rows
    from repro.gpusim.device import GTX480

    if args.table == 1:
        print(markdown_table(
            table1_rows(),
            [("k", "k"), ("subtile", "sub-tile"), ("cache_capacity", "cache"),
             ("threads_per_block", "threads"), ("elim_per_subtile", "elims")],
        ))
    elif args.table == 2:
        print(markdown_table(
            table2_rows(12, 256, GTX480.max_resident_threads),
            [("algorithm", "algorithm"), ("regime", "regime"), ("cost", "cost")],
        ))
    else:
        print(markdown_table(
            table3_rows(),
            [("m_low", "M >="), ("m_high", "M <"), ("k", "k"), ("tile", "tile")],
        ))
    return 0


def _cmd_anchors(_args) -> int:
    from repro.analysis.calibration import verify_anchors

    result = verify_anchors()
    width = max(len(a.name) for a in result.anchors)
    for a in result.anchors:
        mark = "ok " if a.ok else "FAIL"
        print(f"[{mark}] {a.name:<{width}}  paper={a.paper:<10g} "
              f"model={a.model:<12.4g} ratio={a.ratio:.2f}")
    print("all anchors within band" if result.all_ok
          else f"{len(result.failing())} anchors out of band")
    return 0 if result.all_ok else 1


def _cmd_report(_args) -> int:
    from repro.analysis.report import experiments_markdown

    sys.stdout.write(experiments_markdown())
    return 0


def _cmd_roofline(args) -> int:
    from repro.analysis.roofline import kernel_survey, ridge_intensity
    from repro.gpusim.device import GTX480

    dtype_bytes = 4 if args.fp32 else 8
    ridge = ridge_intensity(GTX480, dtype_bytes)
    print(f"{GTX480.name}, {'fp32' if args.fp32 else 'fp64'}: "
          f"ridge = {ridge:.2f} flops/byte")
    print(f"{'kernel':<26} {'AI':>8} {'attainable':>12} {'bound':>8}")
    for p in kernel_survey(args.M, args.N, args.k, dtype_bytes):
        print(f"{p.name:<26} {p.intensity:>8.3f} "
              f"{p.attainable_gflops:>9.1f} GF {p.bound:>8}")
    return 0


def _cmd_accuracy(args) -> int:
    from repro.analysis.accuracy import dominance_sweep, poisson_sweep
    from repro.analysis.report import markdown_table

    rows = poisson_sweep() if args.sweep == "poisson" else dominance_sweep()
    key = "n" if args.sweep == "poisson" else "margin"
    print(markdown_table(
        rows,
        [("algorithm", "algorithm"), (key, key),
         ("residual", "residual"), ("forward_error", "forward error")],
        fmt={"residual": ".2e", "forward_error": ".2e"},
    ))
    return 0


def _cmd_export(args) -> int:
    from repro.analysis.export import export_all

    files = export_all(args.out, include_accuracy=not args.no_accuracy)
    print(f"wrote {len(files)} artifacts to {args.out}/:")
    for f in sorted(files):
        print(f"  {f}")
    return 0


def _cmd_trace(args) -> int:
    import json as _json

    import repro
    from repro.analysis.report import trace_markdown
    from repro.workloads.generators import random_batch

    if args.periodic:
        a, b, c, d = _random_cyclic_batch(args.M, args.N, args.seed)
    else:
        a, b, c, d = random_batch(args.M, args.N, seed=args.seed)
    if args.fp32:
        a, b, c, d = (v.astype("float32") for v in (a, b, c, d))
    kwargs = {}
    if args.backend is not None:
        kwargs["backend"] = args.backend
    if args.rtol is not None:
        kwargs["rtol"] = args.rtol

    adaptive = None
    if args.adaptive is not None:
        from repro.autotune import enable_adaptive_routing

        adaptive = enable_adaptive_routing(args.adaptive)
        if adaptive.load_note is not None:
            print(f"note: {adaptive.load_note} — starting cold",
                  file=sys.stderr)
    try:
        if args.periodic:
            repro.solve_periodic_batch(a, b, c, d, **kwargs)
        else:
            repro.solve_batch(a, b, c, d, **kwargs)
    finally:
        if adaptive is not None:
            from repro.autotune import disable_adaptive_routing

            disable_adaptive_routing()
    trace = repro.last_trace()
    if trace is None:
        print("no trace recorded", file=sys.stderr)
        return 1
    if args.json:
        print(_json.dumps(trace.describe(), indent=2, default=str))
    else:
        print(trace_markdown(trace))
    return 0


def _parse_shapes(text: str):
    shapes = []
    for part in text.split(","):
        part = part.strip().lower()
        if not part:
            continue
        try:
            m, n = part.split("x")
            shapes.append((int(m), int(n)))
        except ValueError:
            raise SystemExit(
                f"bad shape {part!r}: expected MxN, e.g. 64x1024"
            )
    if not shapes:
        raise SystemExit("--shapes named no shapes")
    return tuple(shapes)


def _print_model_summary(model) -> None:
    cells = model.cells()
    if not cells:
        print("model is empty")
        return
    print(f"{len(cells)} cell(s):")
    for cell in cells:
        routes = model.routes(cell)
        samples = model.observations(cell)
        best = model.best(cell)
        print(f"  {cell}: {len(routes)} route(s), {samples} sample(s)")
        if best is None:
            print("    best: (no route trusted yet)")
        else:
            route, stats = best
            knobs = ", ".join(
                f"{f}={route[f]}" for f in ("backend", "k", "workers",
                                            "fingerprint")
                if route.get(f) is not None
            )
            print(f"    best: {knobs}  "
                  f"({stats.mean_s * 1e3:.3f} ms mean, n={stats.count})")


def _cmd_tune(args) -> int:
    from repro.autotune import DEFAULT_SHAPES, PerformanceModel, calibrate

    shapes = (
        _parse_shapes(args.shapes) if args.shapes else DEFAULT_SHAPES
    )
    if args.fresh:
        model, note = PerformanceModel(), None
    else:
        model, note = PerformanceModel.load_or_new(args.model)
    if note is not None:
        print(f"note: {note} — starting fresh", file=sys.stderr)
    calibrate(
        shapes,
        model=model,
        repeats=args.repeats,
        warmup_rounds=args.warmup,
        dtype="float32" if args.fp32 else "float64",
        periodic=args.periodic,
        rtol=args.rtol,
        progress=print,
    )
    path = model.save(args.model)
    print(f"model saved to {path}")
    _print_model_summary(model)
    return 0


def _cmd_router(args) -> int:
    import os

    from repro.autotune import PerformanceModel

    if args.reset:
        try:
            os.unlink(args.model)
        except FileNotFoundError:
            print(f"no model at {args.model} (nothing to reset)")
            return 0
        print(f"removed {args.model}")
        return 0
    if not os.path.exists(args.model):
        print(f"no model at {args.model} — run `repro tune` first",
              file=sys.stderr)
        return 1
    model, note = PerformanceModel.load_or_new(args.model)
    if note is not None:
        print(f"unusable model at {args.model}: {note}", file=sys.stderr)
        print("(the adaptive router would start cold; "
              "`repro router --reset` clears it)", file=sys.stderr)
        return 1
    print(f"model: {args.model}")
    _print_model_summary(model)
    return 0


def _cmd_serve_stats(args) -> int:
    import asyncio
    import json as _json
    import time as _time

    from repro.service import ServiceConfig, SolveService
    from repro.workloads.traffic import (
        shared_matrix_traffic,
        small_request_traffic,
    )

    if args.requests < 1:
        print("--requests must be >= 1", file=sys.stderr)
        return 2
    config = ServiceConfig(
        max_batch_rows=args.max_batch_rows, max_wait_us=args.max_wait_us
    )

    async def burst():
        service = SolveService(config)
        async with service:
            if args.shared_matrix:
                (a, b, c), ds = shared_matrix_traffic(
                    args.requests, args.M, args.N,
                    tenants=args.tenants, seed=args.seed,
                )
                coros = [
                    service.submit(a, b, c, d, tenant=t, fingerprint=True)
                    for t, d in ds
                ]
            else:
                frags = small_request_traffic(
                    args.requests, args.M, args.N,
                    tenants=args.tenants, seed=args.seed,
                )
                coros = [
                    service.submit(a, b, c, d, tenant=t)
                    for t, (a, b, c, d) in frags
                ]
            t0 = _time.perf_counter()
            await asyncio.gather(*coros)
            elapsed = _time.perf_counter() - t0
            return elapsed, service.describe()

    elapsed, report = asyncio.run(burst())
    if args.json:
        report["burst"] = {
            "requests": args.requests,
            "elapsed_s": elapsed,
            "requests_per_s": args.requests / elapsed,
        }
        print(_json.dumps(report, indent=2, default=str))
        return 0

    shape = "shared-matrix" if args.shared_matrix else "independent"
    print(f"burst      : {args.requests} {shape} requests, "
          f"M={args.M} x N={args.N}, {args.tenants} tenant(s)")
    print(f"throughput : {args.requests / elapsed:,.1f} req/s "
          f"({elapsed * 1e3:.1f} ms wall)")
    flushes = report["flushes"]
    print(f"dispatches : {report['dispatches']} "
          f"(mean batch {report['mean_batch_rows']:.0f} rows, "
          f"max {report['max_batch_rows']}; "
          f"size={flushes['size']} timer={flushes['timer']} "
          f"solo={flushes['solo']} close={flushes['close']})")
    print(f"shared     : {report['shared_factorizations']} "
          f"shared-factorization dispatch(es)")
    print()
    print(f"{'tenant':<12} {'req':>5} {'shed':>5} {'rows':>7} "
          f"{'p50 ms':>8} {'p99 ms':>8} {'max ms':>8}  backends")
    for t in report["tenants"]:
        lat = t["latency_ms"]
        backends = ",".join(
            f"{name}x{count}" for name, count in sorted(t["backends"].items())
        )
        print(f"{t['tenant']:<12} {t['delivered']:>5} {t['shed']:>5} "
              f"{t['rows']:>7} {lat['p50']:>8.2f} {lat['p99']:>8.2f} "
              f"{lat['max']:>8.2f}  {backends}")
    return 0


_COMMANDS = {
    "plan": _cmd_plan,
    "solve": _cmd_solve,
    "backends": _cmd_backends,
    "figures": _cmd_figures,
    "tables": _cmd_tables,
    "anchors": _cmd_anchors,
    "report": _cmd_report,
    "roofline": _cmd_roofline,
    "accuracy": _cmd_accuracy,
    "export": _cmd_export,
    "trace": _cmd_trace,
    "tune": _cmd_tune,
    "router": _cmd_router,
    "serve-stats": _cmd_serve_stats,
}


def main(argv=None) -> int:
    """Entry point."""
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:
        # output piped into a pager/head that closed early — not an error
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
