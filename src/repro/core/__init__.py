"""Core algorithms: the paper's contribution and its algorithmic family.

Modules
-------
``thomas``      sequential Thomas and vectorized batch Thomas (Section II-A.1)
``cr``          cyclic reduction (Section II-A.2)
``pcr``         parallel cyclic reduction (Section II-A.3)
``rd``          recursive doubling (related work, Stone 1973)
``tiled_pcr``   streaming tiled PCR with dependency caching (Section III-A)
``window``      the buffered sliding window of Figs. 9-10 / Table I
``pthomas``     thread-level parallel Thomas on interleaved systems (III-B)
``hybrid``      the hybrid tiled-PCR + p-Thomas solver (Section III)
``transition``  algorithm-transition logic: Table III heuristic + cost model
``cost_model``  Table II cost functions and Eqs. 8-9 redundancy formulas
``layout``      interleave/deinterleave memory-layout transforms
``validation``  input checking and solver preconditions
``factorize``   factor-once / solve-many (Thomas LU, stored PCR levels)
``periodic``    cyclic (periodic-BC) systems via Sherman-Morrison
``pentadiag``   batched pentadiagonal elimination (five-diagonal Thomas LU)
``blocktridiag``  block-tridiagonal systems (coupled PDEs) via block-Thomas
``refine``      mixed-precision solves with fp64 iterative refinement (ref [10])
``streaming``   the generalized buffered sliding window (future work, built)
``solver``      top-level public API (``solve`` / ``solve_batch``)
"""

from repro.core.thomas import thomas_solve, thomas_solve_batch
from repro.core.cr import cr_solve, cr_solve_batch
from repro.core.pcr import pcr_solve, pcr_solve_batch, pcr_step, pcr_sweep
from repro.core.rd import rd_solve, rd_solve_batch
from repro.core.tiled_pcr import TiledPCR, tiled_pcr_sweep
from repro.core.pthomas import pthomas_solve_interleaved
from repro.core.hybrid import HybridSolver, HybridReport
from repro.core.transition import (
    TransitionHeuristic,
    GTX480_HEURISTIC,
    select_k_analytic,
    select_k_heuristic,
)
from repro.core.cost_model import (
    f_redundant_loads,
    g_redundant_elims,
    hybrid_cost,
    pcr_cost,
    thomas_cost,
)
from repro.core.factorize import (
    CyclicFactorization,
    HybridFactorization,
    ThomasFactorization,
)
from repro.core.blocktridiag import (
    BlockThomasFactorization,
    block_factor,
    block_residual,
    block_thomas_solve_batch,
)
from repro.core.pentadiag import (
    PentaFactorization,
    penta_factor,
    pentadiag_solve_batch,
)
from repro.core.periodic import (
    CyclicSingularError,
    solve_periodic,
    solve_periodic_batch,
)
from repro.core.refine import RefinementResult, solve_mixed_precision
from repro.core.solver import solve, solve_batch

__all__ = [
    "thomas_solve",
    "thomas_solve_batch",
    "cr_solve",
    "cr_solve_batch",
    "pcr_solve",
    "pcr_solve_batch",
    "pcr_step",
    "pcr_sweep",
    "rd_solve",
    "rd_solve_batch",
    "TiledPCR",
    "tiled_pcr_sweep",
    "pthomas_solve_interleaved",
    "HybridSolver",
    "HybridReport",
    "TransitionHeuristic",
    "GTX480_HEURISTIC",
    "select_k_analytic",
    "select_k_heuristic",
    "f_redundant_loads",
    "g_redundant_elims",
    "hybrid_cost",
    "pcr_cost",
    "thomas_cost",
    "solve",
    "solve_batch",
    "ThomasFactorization",
    "HybridFactorization",
    "CyclicFactorization",
    "CyclicSingularError",
    "solve_periodic",
    "solve_periodic_batch",
    "BlockThomasFactorization",
    "block_factor",
    "block_residual",
    "block_thomas_solve_batch",
    "PentaFactorization",
    "penta_factor",
    "pentadiag_solve_batch",
    "solve_mixed_precision",
    "RefinementResult",
]
