"""Block-tridiagonal systems (small dense blocks) via block-Thomas.

Coupled PDE systems — compressible flow lines, multi-species reaction
diffusion, the implicit stages of systems of conservation laws —
produce block-tridiagonal matrices whose entries are small ``B × B``
dense blocks.  Block-Thomas is the scalar algorithm with scalar
division replaced by small-matrix solves:

.. math::

    C'_i = (B_i - A_i C'_{i-1})^{-1} C_i, \\qquad
    d'_i = (B_i - A_i C'_{i-1})^{-1} (d_i - A_i d'_{i-1})

    x_i = d'_i - C'_i x_{i+1}

All block operations vectorize over the batch axis via NumPy's stacked
``matmul`` / ``linalg.solve``; the row recurrence stays sequential like
scalar Thomas — the batched ``M`` axis is again the parallel axis.

Stability: block diagonal dominance (each ``B_i`` dominating its
neighbour blocks in norm) is the standard sufficient condition; the
implementation solves (never inverts) the running pivot blocks.
"""

from __future__ import annotations

import numpy as np

__all__ = ["block_thomas_solve_batch", "block_thomas_solve", "block_residual"]


def _check(A, B, C, d):
    A = np.asarray(A, dtype=np.float64)
    B = np.asarray(B, dtype=np.float64)
    C = np.asarray(C, dtype=np.float64)
    d = np.asarray(d, dtype=np.float64)
    if B.ndim != 4:
        raise ValueError("blocks must be (M, N, B, B)")
    m, n, bs, bs2 = B.shape
    if bs != bs2:
        raise ValueError(f"blocks must be square, got {bs}x{bs2}")
    for name, arr in (("A", A), ("C", C)):
        if arr.shape != B.shape:
            raise ValueError(f"{name} has shape {arr.shape}, expected {B.shape}")
    if d.shape != (m, n, bs):
        raise ValueError(f"d has shape {d.shape}, expected {(m, n, bs)}")
    return A, B, C, d


def block_thomas_solve_batch(A, B, C, d) -> np.ndarray:
    """Solve ``M`` block-tridiagonal systems.

    Parameters
    ----------
    A, B, C:
        ``(M, N, B, B)`` sub-/main-/super-diagonal blocks
        (``A[:, 0]`` and ``C[:, -1]`` are ignored).
    d:
        ``(M, N, B)`` right-hand sides.

    Returns
    -------
    numpy.ndarray
        ``(M, N, B)`` solutions.
    """
    A, B, C, d = _check(A, B, C, d)
    m, n, bs = d.shape
    Cp = np.empty((m, n, bs, bs))
    dp = np.empty((m, n, bs))

    piv = B[:, 0]
    Cp[:, 0] = np.linalg.solve(piv, C[:, 0])
    dp[:, 0] = np.linalg.solve(piv, d[:, 0][..., None])[..., 0]
    for i in range(1, n):
        piv = B[:, i] - A[:, i] @ Cp[:, i - 1]
        rhs_d = d[:, i] - (A[:, i] @ dp[:, i - 1][..., None])[..., 0]
        if i < n - 1:
            Cp[:, i] = np.linalg.solve(piv, C[:, i])
        else:
            Cp[:, i] = 0.0
        dp[:, i] = np.linalg.solve(piv, rhs_d[..., None])[..., 0]

    x = np.empty((m, n, bs))
    x[:, n - 1] = dp[:, n - 1]
    for i in range(n - 2, -1, -1):
        x[:, i] = dp[:, i] - (Cp[:, i] @ x[:, i + 1][..., None])[..., 0]
    return x


def block_thomas_solve(A, B, C, d) -> np.ndarray:
    """Single-system convenience wrapper (``(N, B, B)`` blocks)."""
    A, B, C, d = (np.asarray(v) for v in (A, B, C, d))
    x = block_thomas_solve_batch(A[None], B[None], C[None], d[None])
    return x[0]


def block_residual(A, B, C, d, x) -> np.ndarray:
    """Residual ``A_blk x − d`` of a batch solution, shape ``(M, N, B)``."""
    A, B, C, d = _check(A, B, C, d)
    x = np.asarray(x, dtype=np.float64)
    r = (B @ x[..., None])[..., 0] - d
    r[:, 1:] += (A[:, 1:] @ x[:, :-1][..., None])[..., 0]
    r[:, :-1] += (C[:, :-1] @ x[:, 1:][..., None])[..., 0]
    return r
