"""Block-tridiagonal systems (small dense blocks) via block-Thomas.

Coupled PDE systems — compressible flow lines, multi-species reaction
diffusion, the implicit stages of systems of conservation laws —
produce block-tridiagonal matrices whose entries are small ``B × B``
dense blocks.  Block-Thomas is the scalar algorithm with scalar
division replaced by small-matrix solves:

.. math::

    C'_i = (B_i - A_i C'_{i-1})^{-1} C_i, \\qquad
    d'_i = (B_i - A_i C'_{i-1})^{-1} (d_i - A_i d'_{i-1})

    x_i = d'_i - C'_i x_{i+1}

All block operations vectorize over the batch axis via NumPy's stacked
``matmul`` / ``linalg.solve``; the row recurrence stays sequential like
scalar Thomas — the batched ``M`` axis is again the parallel axis.

Like the scalar spine, the elimination splits into a coefficient-only
:class:`BlockThomasFactorization` (the solved super-diagonal blocks
``C'`` plus the raw pivot blocks) and an RHS-only sweep;
:func:`block_thomas_solve_batch` is literally ``factor`` + ``solve``,
so prepared solves are bitwise identical to the cold path.  ``B = 1``
blocks take a scalar fast path whose operation sequence matches
:func:`repro.core.thomas.thomas_solve_batch` exactly (bitwise).

Stability: block diagonal dominance (each ``B_i`` dominating its
neighbour blocks in norm) is the standard sufficient condition; the
implementation solves (never inverts) the running pivot blocks.
"""

from __future__ import annotations

import numpy as np

from repro.core.validation import check_block_batch_arrays

__all__ = [
    "BlockThomasFactorization",
    "block_factor",
    "block_thomas_solve_batch",
    "block_residual",
    "block_to_dense",
]


class BlockThomasFactorization:
    """Coefficient-only block elimination, RHS sweep split off.

    Stores the sub-diagonal blocks ``A`` (needed by the forward sweep),
    the solved super-diagonal blocks ``Cp`` and the raw pivot blocks
    ``piv`` — pivots are re-solved (never inverted) in the sweep, so
    the sweep repeats the cold path's exact LAPACK calls.
    """

    __slots__ = ("A", "Cp", "piv", "nbytes")

    def __init__(self, A, Cp, piv):
        self.A = A
        self.Cp = Cp
        self.piv = piv
        self.nbytes = A.nbytes + Cp.nbytes + piv.nbytes

    @property
    def m(self) -> int:
        return self.piv.shape[0]

    @property
    def n(self) -> int:
        return self.piv.shape[1]

    @property
    def block_size(self) -> int:
        return self.piv.shape[2]

    @property
    def dtype(self):
        return self.piv.dtype

    @classmethod
    def factor(cls, A, B, C) -> "BlockThomasFactorization":
        """Eliminate the coefficients of an ``(M, N, B, B)`` batch."""
        A = np.ascontiguousarray(A)
        B = np.ascontiguousarray(B)
        C = np.ascontiguousarray(C)
        m, n, bs, _ = B.shape
        Cp = np.empty((m, n, bs, bs), dtype=B.dtype)
        piv = np.empty((m, n, bs, bs), dtype=B.dtype)
        if bs == 1:
            # scalar fast path: same op sequence as thomas_solve_batch
            a, b, c = A[..., 0, 0], B[..., 0, 0], C[..., 0, 0]
            sp, scp = piv[..., 0, 0], Cp[..., 0, 0]
            sp[:, 0] = b[:, 0]
            scp[:, 0] = c[:, 0] / b[:, 0]
            for i in range(1, n):
                sp[:, i] = b[:, i] - scp[:, i - 1] * a[:, i]
                scp[:, i] = c[:, i] / sp[:, i]
            scp[:, n - 1] = 0.0
            return cls(A, Cp, piv)
        piv[:, 0] = B[:, 0]
        Cp[:, 0] = np.linalg.solve(piv[:, 0], C[:, 0])
        for i in range(1, n):
            piv[:, i] = B[:, i] - A[:, i] @ Cp[:, i - 1]
            if i < n - 1:
                Cp[:, i] = np.linalg.solve(piv[:, i], C[:, i])
        Cp[:, n - 1] = 0.0
        return cls(A, Cp, piv)

    def solve(self, d, *, out=None) -> np.ndarray:
        """RHS-only sweep: solve for the full ``(M, N, B)`` batch."""
        d = np.asarray(d)
        if d.shape != (self.m, self.n, self.block_size):
            raise ValueError(
                f"d must be {(self.m, self.n, self.block_size)}, "
                f"got {d.shape}"
            )
        if out is None:
            out = np.empty_like(d)
        self.solve_shard(d, out, 0, self.m)
        return out

    def solve_shard(self, d, out, lo: int, hi: int) -> None:
        """Sweep systems ``lo:hi`` into ``out[lo:hi]``.

        Stacked ``matmul`` / ``linalg.solve`` treat each system
        independently, so shard results do not depend on the bounds.
        """
        s = slice(lo, hi)
        n = self.n
        A, Cp, piv = self.A, self.Cp, self.piv
        if self.block_size == 1:
            a = A[s, :, 0, 0]
            sp, scp = piv[s, :, 0, 0], Cp[s, :, 0, 0]
            dv, xv = d[s, :, 0], out[s, :, 0]
            dp = np.empty_like(dv)
            dp[:, 0] = dv[:, 0] / sp[:, 0]
            for i in range(1, n):
                dp[:, i] = (dv[:, i] - dp[:, i - 1] * a[:, i]) / sp[:, i]
            xv[:, n - 1] = dp[:, n - 1]
            for i in range(n - 2, -1, -1):
                xv[:, i] = dp[:, i] - scp[:, i] * xv[:, i + 1]
            return
        dp = np.empty(d[s].shape, dtype=d.dtype)
        dp[:, 0] = np.linalg.solve(piv[s, 0], d[s, 0][..., None])[..., 0]
        for i in range(1, n):
            rhs = d[s, i] - (A[s, i] @ dp[:, i - 1][..., None])[..., 0]
            dp[:, i] = np.linalg.solve(piv[s, i], rhs[..., None])[..., 0]
        out[s, n - 1] = dp[:, n - 1]
        for i in range(n - 2, -1, -1):
            out[s, i] = dp[:, i] - (Cp[s, i] @ out[s, i + 1][..., None])[..., 0]


def block_factor(A, B, C, *, check: bool = True) -> BlockThomasFactorization:
    """Validate (optionally) and factor a block-tridiagonal batch."""
    if check:
        B_arr = np.asarray(B)
        if B_arr.ndim != 4:
            raise ValueError(
                f"block diagonals must be (M, N, B, B), got {B_arr.ndim}-D"
            )
        A, B, C, _ = check_block_batch_arrays(
            A, B, C, np.zeros(B_arr.shape[:3], dtype=B_arr.dtype)
        )
    return BlockThomasFactorization.factor(A, B, C)


def block_thomas_solve_batch(A, B, C, d, *, check: bool = True) -> np.ndarray:
    """Solve ``M`` block-tridiagonal systems.

    Parameters
    ----------
    A, B, C:
        ``(M, N, B, B)`` sub-/main-/super-diagonal blocks
        (``A[:, 0]`` and ``C[:, -1]`` are ignored).
    d:
        ``(M, N, B)`` right-hand sides.
    check:
        Validate shapes/dtype/finiteness (skip inside hot loops).

    Returns
    -------
    numpy.ndarray
        ``(M, N, B)`` solutions, in the inputs' (preserved) dtype.

    Notes
    -----
    Implemented literally as :meth:`BlockThomasFactorization.factor`
    followed by the RHS sweep, so a prepared solve of the same
    coefficients is bitwise identical to this cold path.
    """
    if check:
        A, B, C, d = check_block_batch_arrays(A, B, C, d)
    else:
        A, B, C, d = (np.asarray(v) for v in (A, B, C, d))
    return BlockThomasFactorization.factor(A, B, C).solve(d)


def block_to_dense(A, B, C) -> np.ndarray:
    """Assemble the ``(M, N·B, N·B)`` dense stack of a block batch."""
    A, B, C = (np.asarray(v) for v in (A, B, C))
    m, n, bs, _ = B.shape
    dense = np.zeros((m, n * bs, n * bs), dtype=B.dtype)
    for i in range(n):
        r = slice(i * bs, (i + 1) * bs)
        dense[:, r, r] = B[:, i]
        if i > 0:
            dense[:, r, (i - 1) * bs : i * bs] = A[:, i]
        if i < n - 1:
            dense[:, r, (i + 1) * bs : (i + 2) * bs] = C[:, i]
    return dense


def block_residual(A, B, C, d, x) -> np.ndarray:
    """Residual ``A_blk x − d`` of a batch solution, shape ``(M, N, B)``."""
    A, B, C, d = check_block_batch_arrays(A, B, C, d)
    x = np.asarray(x, dtype=d.dtype)
    r = (B @ x[..., None])[..., 0] - d
    r[:, 1:] += (A[:, 1:] @ x[:, :-1][..., None])[..., 0]
    r[:, :-1] += (C[:, :-1] @ x[:, 1:][..., None])[..., 0]
    return r
