"""Analytic cost model — Table II and Eqs. 8-9 of the paper.

Two families of formulas live here:

1. **Elimination-step counts** (Table II) for Thomas, PCR and the k-step
   hybrid, as functions of the number of systems ``M``, the per-system
   size ``2^n`` and the machine parallelism ``P``.  These drive the
   *analytic* transition-point selection
   (:func:`repro.core.transition.select_k_analytic`).

2. **Tiling-redundancy counts** (Eqs. 8-9, Fig. 7): for naive (cache-less)
   tiling of a k-step PCR, each tile boundary costs

   .. math::

       f(k) = \\sum_{i=0}^{k-1} 2^i = 2^k - 1

   redundant element loads and

   .. math::

       g(k) = k\\,f(k) - \\sum_{i=0}^{k} f(i)

   redundant elimination steps — both exponential in ``k``, which is the
   quantitative argument for the buffered-sliding-window cache.

All counts are *abstract elimination steps*; converting them to seconds
is the job of :mod:`repro.gpusim.timing`.
"""

from __future__ import annotations

__all__ = [
    "f_redundant_loads",
    "g_redundant_elims",
    "thomas_cost",
    "pcr_cost",
    "hybrid_cost",
    "sliding_window_properties",
]


def f_redundant_loads(k: int) -> int:
    """Redundant loads per tile boundary of naive k-step tiled PCR (Eq. 8)."""
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    return sum(2**i for i in range(k))  # == 2**k - 1


def g_redundant_elims(k: int) -> int:
    """Redundant eliminations per tile boundary of naive tiling (Eq. 9)."""
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    return k * f_redundant_loads(k) - sum(f_redundant_loads(i) for i in range(k + 1))


def thomas_cost(n: int, m: int, p: int) -> float:
    """Elimination steps of (p-)Thomas on ``M`` systems of size ``2^n``.

    Table II row 1: the Thomas chain is ``2·2^n − 1`` dependent steps;
    ``M`` independent systems provide exactly ``M``-way parallelism, so
    for ``M ≤ P`` extra processors are idle and the time is the chain
    length, while for ``M > P`` the total work amortizes over ``P``.
    """
    _check(n, m, p)
    chain = 2 * 2**n - 1
    if m > p:
        return m / p * chain
    return float(chain)


def pcr_cost(n: int, m: int, p: int) -> float:
    """Elimination steps of complete PCR (Table II row 2).

    PCR exposes ``2^n``-way parallelism *within* each system, so the
    ``n · 2^n + 1`` work always divides by ``P`` regardless of ``M``
    (the table lists the same expression in both columns).
    """
    _check(n, m, p)
    return m / p * (n * 2**n + 1)


def hybrid_cost(n: int, m: int, p: int, k: int) -> float:
    """Elimination steps of k-step tiled PCR + p-Thomas (Table II row 3).

    Three regimes:

    * ``M > P`` — saturated before PCR even runs; everything amortizes:
      ``(M/P)·(2(2^n − 2^k) + k·2^n)``.
    * ``M ≤ P`` but ``2^k · M > P`` — PCR manufactures more systems than
      processors, so the p-Thomas stage also amortizes.
    * ``2^k · M ≤ P`` — p-Thomas still underutilizes the machine and runs
      at its dependent-chain length ``2(2^n − 2^k)``.
    """
    _check(n, m, p)
    if not 0 <= k <= n:
        raise ValueError(f"k must be in [0, n={n}], got {k}")
    pcr_part = k * 2**n
    thomas_chain = 2 * (2**n - 2**k)
    if m > p:
        return m / p * (thomas_chain + pcr_part)
    if 2**k * m > p:
        return m / p * pcr_part + m / p * thomas_chain
    return m / p * pcr_part + thomas_chain


def sliding_window_properties(k: int, c: int = 1) -> dict:
    """Table I: properties of the buffered sliding window for k-step PCR.

    Parameters
    ----------
    k:
        Number of PCR steps performed inside the window.
    c:
        Sub-tile scale factor (``c ≥ 1``); the sub-tile holds ``c · 2^k``
        elements and each thread produces ``c`` outputs per sub-tile.
    """
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    if c < 1:
        raise ValueError(f"c must be >= 1, got {c}")
    f_k = f_redundant_loads(k)
    return {
        "pcr_steps": k,
        "subtile_size": c * 2**k,
        "cache_capacity": 3 * f_k,  # top + middle buffers, ≤ 3·2^k
        "min_cache_capacity": 2 * f_k,
        "threads_per_block": 2**k,
        "elim_steps_per_thread": c * k,
        "elim_steps_per_subtile": c * k * 2**k,
    }


def _check(n: int, m: int, p: int) -> None:
    if n < 0:
        raise ValueError(f"n (log2 system size) must be >= 0, got {n}")
    if m < 1:
        raise ValueError(f"M must be >= 1, got {m}")
    if p < 1:
        raise ValueError(f"P must be >= 1, got {p}")
