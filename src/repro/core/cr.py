"""Cyclic reduction (CR, odd-even reduction) — Section II-A.2 of the paper.

Forward reduction eliminates the *odd-indexed* rows' couplings to their
even neighbours (Fig. 1): after one step the odd rows form a standalone
tridiagonal system of half the size.  Recursing yields a tree of depth
``log n``; the backward substitution then recovers the even rows from the
solved odd rows via Eq. 7:

.. math::

    x_i = (d'_i - a'_i x_{i-1} - c'_i x_{i+1}) / b'_i

Complexity: ``O(n)`` work but ``2·log n + 1`` dependent elimination steps
and — crucially for GPUs — the number of *active* rows halves every
level, so parallelism decays down the tree (one reason the paper prefers
PCR as its front-end).

The reduction formulas are shared with PCR (Eqs. 5-6); CR simply applies
them only to odd rows.
"""

from __future__ import annotations

import numpy as np

from repro.core.validation import check_batch_arrays, check_system_arrays

__all__ = ["cr_solve", "cr_solve_batch", "cr_forward_step"]


def cr_forward_step(a, b, c, d):
    """One CR forward-reduction step on an ``(M, N)`` batch.

    Reduces the odd rows ``1, 3, 5, …`` using their even neighbours and
    returns the ``(M, floor(N/2))`` reduced system plus the untouched even
    rows needed later by back substitution.

    Returns
    -------
    reduced : tuple of arrays
        ``(a', b', c', d')`` of the half-size odd-row system.
    """
    n = b.shape[-1]
    one = b.dtype.type(1)
    # Odd rows and their even neighbours.  Row i (odd) uses i-1 and i+1;
    # i+1 may fall off the end when n is even... n odd -> last odd row is
    # n-2 with neighbour n-1 present; n even -> last odd row n-1 has no
    # right neighbour. Zero-fill handles both.
    ao, bo, co, do = a[..., 1::2], b[..., 1::2], c[..., 1::2], d[..., 1::2]
    a_l, b_l, c_l, d_l = a[..., 0::2], b[..., 0::2], c[..., 0::2], d[..., 0::2]
    h = bo.shape[-1]  # number of odd rows = floor(n/2)
    # Left (even) neighbour arrays aligned with odd rows: even index 2j for
    # odd row 2j+1.
    bl = b_l[..., :h]
    al = a_l[..., :h]
    cl = c_l[..., :h]
    dl = d_l[..., :h]
    # Right (even) neighbour 2j+2 for odd row 2j+1; may not exist for the
    # last odd row when n is even.
    shape = bo.shape
    br = np.full(shape, one)
    ar = np.zeros(shape, dtype=b.dtype)
    cr = np.zeros(shape, dtype=b.dtype)
    dr = np.zeros(shape, dtype=b.dtype)
    n_right = b_l.shape[-1] - 1  # even rows 2, 4, ... available as rights
    if n_right > 0:
        br[..., :n_right] = b_l[..., 1 : n_right + 1]
        ar[..., :n_right] = a_l[..., 1 : n_right + 1]
        cr[..., :n_right] = c_l[..., 1 : n_right + 1]
        dr[..., :n_right] = d_l[..., 1 : n_right + 1]

    k1 = ao / bl
    k2 = co / br
    a_new = -al * k1
    b_new = bo - cl * k1 - ar * k2
    c_new = -cr * k2
    d_new = do - dl * k1 - dr * k2
    return a_new, b_new, c_new, d_new


def _cr_recurse(a, b, c, d) -> np.ndarray:
    n = b.shape[-1]
    if n == 1:
        return d / b
    if n == 2:
        # Direct 2x2 solve: rows [0, 1] with coupling c0 (up) and a1 (down).
        det = b[..., 0] * b[..., 1] - c[..., 0] * a[..., 1]
        x0 = (d[..., 0] * b[..., 1] - c[..., 0] * d[..., 1]) / det
        x1 = (b[..., 0] * d[..., 1] - d[..., 0] * a[..., 1]) / det
        return np.stack([x0, x1], axis=-1)
    ar, br, cr, dr = cr_forward_step(a, b, c, d)
    x_odd = _cr_recurse(ar, br, cr, dr)
    # Back substitution for even rows (Eq. 7 with original coefficients).
    m = b.shape[0]
    x = np.empty(b.shape, dtype=b.dtype)
    x[..., 1::2] = x_odd
    n_even = b[..., 0::2].shape[-1]
    # Even row 2j uses odd neighbours 2j-1 (j>=1) and 2j+1 (if < n).
    xl = np.zeros((m, n_even), dtype=b.dtype)
    xl[..., 1:] = x_odd[..., : n_even - 1]
    xr = np.zeros((m, n_even), dtype=b.dtype)
    n_r = x_odd.shape[-1]
    xr[..., :n_r] = x_odd
    ae, be, ce, de = a[..., 0::2], b[..., 0::2], c[..., 0::2], d[..., 0::2]
    x[..., 0::2] = (de - ae * xl - ce * xr) / be
    return x


def cr_solve_batch(a, b, c, d, *, check: bool = True) -> np.ndarray:
    """Solve an ``(M, N)`` batch by cyclic reduction."""
    if check:
        a, b, c, d = check_batch_arrays(a, b, c, d)
    else:
        a, b, c, d = (np.asarray(v) for v in (a, b, c, d))
    return _cr_recurse(a, b, c, d)


def cr_solve(a, b, c, d, *, check: bool = True) -> np.ndarray:
    """Solve one system by cyclic reduction."""
    if check:
        a, b, c, d = check_system_arrays(a, b, c, d)
    x = cr_solve_batch(a[None, :], b[None, :], c[None, :], d[None, :], check=False)
    return x[0]
