"""Factorization reuse: factor once, solve many right-hand sides.

Time-stepping applications (Crank–Nicolson, ADI, multigrid smoothing —
exactly the paper's motivating workloads) solve the *same* tridiagonal
matrix against a new right-hand side every step.  Both algorithm
families split cleanly into a coefficient-only phase and an
RHS-dependent phase:

* **Thomas**: the forward-elimination multipliers ``c'_i`` and pivots
  depend only on ``(a, b, c)``; a solve is then one forward and one
  backward O(n) sweep over ``d``.
* **k-step PCR + p-Thomas**: each PCR level's reduction factors
  ``k1 = a/b_{−s}`` and ``k2 = c/b_{+s}`` depend only on coefficients;
  applying a level to a right-hand side is
  ``d' = d − k1·d_{−s} − k2·d_{+s}``.  Storing the ``(k1, k2)`` of all
  ``k`` levels plus a Thomas factorization of the reduced interleaved
  system gives an O(kN + N) solve per RHS with zero re-elimination.

Both factorizations accept multiple right-hand sides at once
(``d`` of shape ``(M, N)`` or ``(M, N, R)``), vectorizing over the
trailing RHS axis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.transition import GTX480_HEURISTIC, clamp_k
from repro.core.validation import check_batch_arrays

__all__ = ["CyclicFactorization", "HybridFactorization", "ThomasFactorization"]


def _shift_rhs(d: np.ndarray, offset: int, out: np.ndarray | None = None) -> np.ndarray:
    """Shift along axis 1 with zero fill: ``out[:, i] = d[:, i + offset]``.

    ``out``, if given, is a caller-owned scratch buffer of ``d``'s shape
    and dtype — the RHS-only hot loop passes pooled workspace buffers so
    applying a stored PCR level allocates nothing.  ``out`` must not
    alias ``d``.
    """
    if out is None:
        out = np.zeros_like(d)
        fresh = True
    else:
        fresh = False
    n = d.shape[1]
    if offset > 0:
        if offset < n:
            out[:, : n - offset] = d[:, offset:]
            if not fresh:
                out[:, n - offset :] = 0.0
        elif not fresh:
            out[...] = 0.0
    elif offset < 0:
        k = -offset
        if k < n:
            out[:, k:] = d[:, : n - k]
            if not fresh:
                out[:, :k] = 0.0
        elif not fresh:
            out[...] = 0.0
    else:
        out[...] = d
    return out


def _match_buffer(buf, d: np.ndarray, squeeze: bool) -> np.ndarray:
    """Adapt a caller-owned buffer to ``d``'s expanded ``(M, N, R)`` shape.

    Accepts the buffer in either the caller's original shape (``(M, N)``
    when ``squeeze``) or already-expanded form; allocates when ``buf`` is
    ``None``.
    """
    if buf is None:
        return np.empty_like(d)
    if squeeze and buf.ndim == 2:
        buf = buf[..., None]
    if buf.shape != d.shape or buf.dtype != d.dtype:
        raise ValueError(
            f"buffer has shape {buf.shape} dtype {buf.dtype}, "
            f"expected {d.shape} {d.dtype}"
        )
    return buf


@dataclass
class ThomasFactorization:
    """LU-without-pivoting of a batch of tridiagonal matrices.

    Stores the forward multipliers so each subsequent solve is two O(n)
    sweeps over the right-hand side only.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core.factorize import ThomasFactorization
    >>> from repro.workloads.generators import random_batch
    >>> a, b, c, d = random_batch(4, 64, seed=0)
    >>> fact = ThomasFactorization.factor(a, b, c)
    >>> x = fact.solve(d)             # first RHS
    >>> x2 = fact.solve(d * 2.0)      # reuse: no re-elimination
    >>> bool(np.allclose(x2, 2.0 * x))
    True
    """

    a: np.ndarray  # sub-diagonal (needed in the d-forward sweep)
    cp: np.ndarray  # modified super-diagonal c'_i
    inv_denom: np.ndarray  # 1 / (b_i - a_i c'_{i-1})

    @classmethod
    def factor(cls, a, b, c, *, check: bool = True) -> "ThomasFactorization":
        """Run the coefficient-only part of the forward elimination."""
        if check:
            d0 = np.zeros_like(np.asarray(b))
            a, b, c, _ = check_batch_arrays(a, b, c, d0)
        else:
            a, b, c = (np.asarray(v) for v in (a, b, c))
        m, n = b.shape
        cp = np.empty((m, n), dtype=b.dtype)
        inv = np.empty((m, n), dtype=b.dtype)
        inv[:, 0] = 1.0 / b[:, 0]
        cp[:, 0] = c[:, 0] * inv[:, 0]
        for i in range(1, n):
            denom = b[:, i] - cp[:, i - 1] * a[:, i]
            inv[:, i] = 1.0 / denom
            cp[:, i] = c[:, i] * inv[:, i]
        return cls(a=a.copy(), cp=cp, inv_denom=inv)

    @property
    def m(self) -> int:
        """Number of factored systems."""
        return self.cp.shape[0]

    @property
    def n(self) -> int:
        """System size."""
        return self.cp.shape[1]

    def solve(self, d, *, out=None, scratch=None) -> np.ndarray:
        """Solve for one RHS set: ``d`` is ``(M, N)`` or ``(M, N, R)``.

        ``out`` receives the solution (same shape as ``d``); ``scratch``
        is an optional caller-owned buffer of ``d``'s shape for the
        modified RHS, so a warm RHS-only solve allocates nothing.  The
        solve runs in the factorization's dtype (a float32
        factorization keeps float32 right-hand sides in float32).
        """
        d = np.asarray(d, dtype=self.cp.dtype)
        squeeze = d.ndim == 2
        if squeeze:
            d = d[..., None]
        if d.shape[:2] != self.cp.shape:
            raise ValueError(
                f"d has leading shape {d.shape[:2]}, expected {self.cp.shape}"
            )
        m, n, r = d.shape
        a = self.a[..., None]
        inv = self.inv_denom[..., None]
        cp = self.cp[..., None]
        dp = _match_buffer(scratch, d, squeeze)
        x = _match_buffer(out, d, squeeze)
        dp[:, 0] = d[:, 0] * inv[:, 0]
        for i in range(1, n):
            dp[:, i] = (d[:, i] - dp[:, i - 1] * a[:, i]) * inv[:, i]
        x[:, n - 1] = dp[:, n - 1]
        for i in range(n - 2, -1, -1):
            x[:, i] = dp[:, i] - cp[:, i] * x[:, i + 1]
        if out is not None:
            return out
        return x[..., 0] if squeeze else x


@dataclass
class HybridFactorization:
    """Factored k-step PCR + p-Thomas hybrid.

    ``factor`` runs the PCR sweep once on the coefficients, storing each
    level's ``(k1, k2)`` reduction factors, and Thomas-factorizes the
    reduced interleaved system.  ``solve`` then applies the stored level
    factors to the RHS (O(kN)) and back-substitutes through the stored
    Thomas factors (O(N)) — no eliminations are ever repeated.
    """

    k: int
    level_factors: list = field(default_factory=list)  # [(k1, k2), ...]
    reduced: ThomasFactorization | None = None

    @classmethod
    def factor(
        cls, a, b, c, *, k: int | None = None, check: bool = True
    ) -> "HybridFactorization":
        """Factor a batch; ``k`` defaults to the Table III heuristic."""
        d0 = np.zeros_like(np.asarray(b))
        if check:
            a, b, c, _ = check_batch_arrays(a, b, c, d0)
        else:
            a, b, c = (np.asarray(v) for v in (a, b, c))
        m, n = b.shape
        if k is None:
            k = GTX480_HEURISTIC.k_for(m, n)
        k = clamp_k(k, n)

        fact = cls(k=k)
        one = b.dtype.type(1)
        s = 1
        for _ in range(k):
            b_m = _shift_rhs(b, -s)
            b_m[:, :s] = one
            b_p = _shift_rhs(b, +s)
            b_p[:, n - s :] = one
            k1 = a / b_m
            k2 = c / b_p
            if s < n:
                k1[:, :s] = 0.0
                k2[:, n - s :] = 0.0
            else:
                k1[...] = 0.0
                k2[...] = 0.0
            a_new = -_shift_rhs(a, -s) * k1
            b_new = b - _shift_rhs(c, -s) * k1 - _shift_rhs(a, +s) * k2
            c_new = -_shift_rhs(c, +s) * k2
            fact.level_factors.append((k1, k2))
            a, b, c = a_new, b_new, c_new
            s *= 2

        # Thomas-factor the reduced system subsystem-wise: regroup the
        # interleaved rows into (M * 2^k, L) with identity padding.
        g = 1 << k
        if g == 1:
            fact.reduced = ThomasFactorization.factor(a, b, c, check=False)
            return fact
        L = -(-n // g)
        ra = np.zeros((m * g, L), dtype=b.dtype)
        rb = np.ones((m * g, L), dtype=b.dtype)
        rc = np.zeros((m * g, L), dtype=b.dtype)
        for j in range(g):
            cols = slice(j, n, g)
            w = len(range(j, n, g))
            ra[j::g, :w] = a[:, cols]
            rb[j::g, :w] = b[:, cols]
            rc[j::g, :w] = c[:, cols]
        ra[:, 0] = 0.0
        rc[:, -1] = 0.0
        fact.reduced = ThomasFactorization.factor(ra, rb, rc, check=False)
        return fact

    @property
    def dtype(self) -> np.dtype:
        """Dtype the factorization was built in (solves run in it too)."""
        if self.level_factors:
            return self.level_factors[0][0].dtype
        if self.reduced is None:
            raise RuntimeError("factorization not initialized; use factor()")
        return self.reduced.cp.dtype

    def _scratch(self, scratch, name: str, shape, dtype) -> np.ndarray:
        """Fetch-or-allocate a named buffer from the scratch dict."""
        if scratch is None:
            return np.empty(shape, dtype=dtype)
        arr = scratch.get(name)
        if arr is None or arr.shape != shape or arr.dtype != dtype:
            arr = np.empty(shape, dtype=dtype)
            scratch[name] = arr
        return arr

    def solve(self, d, *, out=None, scratch=None) -> np.ndarray:
        """Solve for ``d`` of shape ``(M, N)`` or ``(M, N, R)``.

        ``scratch`` is an optional dict the solve keys its intermediate
        buffers into — pass the same dict every time step and the warm
        RHS-only path allocates nothing.  ``out`` receives the solution.
        The input is never mutated, and the solve runs in the
        factorization's dtype.
        """
        if self.reduced is None:
            raise RuntimeError("factorization not initialized; use factor()")
        d = np.asarray(d, dtype=self.dtype)
        squeeze = d.ndim == 2
        if squeeze:
            d = d[..., None]
        m, n, r = d.shape
        g = 1 << self.k

        # Apply the stored PCR level factors to the RHS, ping-ponging
        # between two scratch buffers (the input is left untouched).
        # Each level is one strided apply on the interior slices — the
        # zero-filled shift buffers the loop used to materialize are
        # gone; the boundary rows they zeroed carry k1/k2 == 0 (set at
        # factor time), so skipping them is bitwise identical
        # (x - 0.0*y == x for every finite x and for -0.0).
        cur = d
        if self.level_factors:
            work = (
                self._scratch(scratch, "lvl0", d.shape, d.dtype),
                self._scratch(scratch, "lvl1", d.shape, d.dtype),
            )
            tm = self._scratch(scratch, "shift", d.shape, d.dtype)
            s = 1
            for lvl, (k1, k2) in enumerate(self.level_factors):
                nxt = work[lvl & 1]
                if s < n:
                    np.multiply(k1[:, s:, None], cur[:, : n - s],
                                out=nxt[:, s:])
                    np.subtract(cur[:, s:], nxt[:, s:], out=nxt[:, s:])
                    nxt[:, :s] = cur[:, :s]
                    np.multiply(k2[:, : n - s, None], cur[:, s:],
                                out=tm[:, : n - s])
                    np.subtract(nxt[:, : n - s], tm[:, : n - s],
                                out=nxt[:, : n - s])
                else:  # stride exceeds N: this level is the identity
                    nxt[...] = cur
                cur = nxt
                s *= 2

        if g == 1:
            dp = self._scratch(scratch, "dp", cur.shape, cur.dtype)
            x = _match_buffer(out, cur, squeeze)
            self.reduced.solve(cur, out=x, scratch=dp)
            if out is not None:
                return out
            return x[..., 0] if squeeze else x

        # regroup into subsystems, back-substitute, regroup back
        L = self.reduced.n
        rshape = (m * g, L, r)
        rd = self._scratch(scratch, "rd", rshape, cur.dtype)
        rdp = self._scratch(scratch, "rdp", rshape, cur.dtype)
        rx = self._scratch(scratch, "rx", rshape, cur.dtype)
        for j in range(g):
            w = len(range(j, n, g))
            rd[j::g, :w] = cur[:, j::g]
            if w < L:  # identity-padded tail rows: re-zero reused buffers
                rd[j::g, w:] = 0.0
        self.reduced.solve(rd, out=rx, scratch=rdp)
        x = _match_buffer(out, cur, squeeze)
        for j in range(g):
            w = len(range(j, n, g))
            x[:, j::g] = rx[j::g, :w]
        if out is not None:
            return out
        return x[..., 0] if squeeze else x


@dataclass
class CyclicFactorization:
    """Factored cyclic (periodic) tridiagonal batch — Sherman–Morrison.

    Stores everything RHS-independent about the cyclic solve: the
    factorization of the corner-reduced core ``A'`` (Thomas at ``k=0``,
    hybrid above), the solved correction vector ``q`` (``A' q = u``),
    the corner weight ``w = a_0/γ``, and the **precomputed** scale
    ``1 / (1 + vᵀq)``.  A solve is then one RHS-only sweep through the
    core plus a vectorized rank-one update — no re-elimination and no
    second inner solve.

    ``singular`` records the batch rows whose correction denominator
    vanished at factor time.  A factorization built with
    ``check=False`` keeps NaN scales for those rows; solving it with
    ``check=True`` raises :class:`~repro.core.periodic.CyclicSingularError`.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core.factorize import CyclicFactorization
    >>> rng = np.random.default_rng(0)
    >>> a = rng.standard_normal((4, 64)); c = rng.standard_normal((4, 64))
    >>> b = 5.0 + np.abs(a) + np.abs(c)
    >>> fact = CyclicFactorization.factor(a, b, c)
    >>> d = rng.standard_normal((4, 64))
    >>> x = fact.solve(d)                 # RHS-only: no re-elimination
    >>> x2 = fact.solve(2.0 * d)
    >>> bool(np.allclose(x2, 2.0 * x))
    True
    """

    core: object  # ThomasFactorization | HybridFactorization of A'
    q: np.ndarray  # (M, N) solved correction column
    w: np.ndarray  # (M,) v weight: a_0 / gamma
    scale: np.ndarray  # (M,) precomputed 1 / (1 + v^T q)
    singular: np.ndarray  # row indices with a vanishing denominator

    @classmethod
    def factor(
        cls, a, b, c, *, k: int = 0, check: bool = True
    ) -> "CyclicFactorization":
        """Corner-reduce and factor a cyclic ``(M, N)`` coefficient set.

        ``k = 0`` stores a :class:`ThomasFactorization` core (RHS-only
        solves replay the Thomas elimination op-for-op); ``k > 0``
        stores a :class:`HybridFactorization`.  ``check`` controls both
        input validation and the singular-correction policy (raise vs
        warn + NaN scale).
        """
        from repro.core.periodic import (
            correction_denominator,
            correction_scale,
            cyclic_reduce,
        )
        from repro.core.validation import (
            check_cyclic_batch_arrays,
            coerce_cyclic_batch_arrays,
        )

        validate = check_cyclic_batch_arrays if check else coerce_cyclic_batch_arrays
        a, b, c, _ = validate(a, b, c, np.zeros_like(np.asarray(b)))
        n = b.shape[1]
        if n < 3:
            raise ValueError(f"cyclic solver needs N >= 3, got {n}")
        ap, bp, cp, u, w = cyclic_reduce(a, b, c, check=check)
        if k == 0:
            core = ThomasFactorization.factor(ap, bp, cp, check=False)
        else:
            core = HybridFactorization.factor(ap, bp, cp, k=k, check=False)
        q = core.solve(u)
        denom = correction_denominator(q, w)
        scale = correction_scale(denom, n, check=check)
        from repro.core.periodic import singular_rows

        return cls(
            core=core, q=q, w=w, scale=scale,
            singular=singular_rows(denom, n),
        )

    @property
    def m(self) -> int:
        """Number of factored systems."""
        return self.q.shape[0]

    @property
    def n(self) -> int:
        """System size."""
        return self.q.shape[1]

    @property
    def nbytes(self) -> int:
        """Bytes of stored cyclic state beyond the core factorization."""
        return self.q.nbytes + self.w.nbytes + self.scale.nbytes

    def solve(self, d, *, out=None, scratch=None, check: bool = True):
        """Solve the cyclic systems against a fresh ``(M, N)`` RHS.

        One core RHS-only sweep plus the precomputed rank-one update.
        ``check=True`` refuses to apply a singular correction.
        """
        if check and self.singular.size:
            from repro.core.periodic import CyclicSingularError, _describe_rows

            raise CyclicSingularError(
                "singular Sherman–Morrison correction in batch row(s) "
                f"{_describe_rows(self.singular)} — re-factor with "
                "check=False for NaN output"
            )
        from repro.core.periodic import apply_cyclic_correction

        y = self.core.solve(d, scratch=scratch)
        return apply_cyclic_correction(y, self.q, self.w, self.scale, out=out)
