"""Factorization reuse: factor once, solve many right-hand sides.

Time-stepping applications (Crank–Nicolson, ADI, multigrid smoothing —
exactly the paper's motivating workloads) solve the *same* tridiagonal
matrix against a new right-hand side every step.  Both algorithm
families split cleanly into a coefficient-only phase and an
RHS-dependent phase:

* **Thomas**: the forward-elimination multipliers ``c'_i`` and pivots
  depend only on ``(a, b, c)``; a solve is then one forward and one
  backward O(n) sweep over ``d``.
* **k-step PCR + p-Thomas**: each PCR level's reduction factors
  ``k1 = a/b_{−s}`` and ``k2 = c/b_{+s}`` depend only on coefficients;
  applying a level to a right-hand side is
  ``d' = d − k1·d_{−s} − k2·d_{+s}``.  Storing the ``(k1, k2)`` of all
  ``k`` levels plus a Thomas factorization of the reduced interleaved
  system gives an O(kN + N) solve per RHS with zero re-elimination.

Both factorizations accept multiple right-hand sides at once
(``d`` of shape ``(M, N)`` or ``(M, N, R)``), vectorizing over the
trailing RHS axis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.transition import GTX480_HEURISTIC, clamp_k
from repro.core.validation import check_batch_arrays

__all__ = ["ThomasFactorization", "HybridFactorization"]


def _shift_rhs(d: np.ndarray, offset: int) -> np.ndarray:
    """Shift along axis 1 with zero fill: ``out[:, i] = d[:, i + offset]``."""
    out = np.zeros_like(d)
    n = d.shape[1]
    if offset > 0:
        if offset < n:
            out[:, : n - offset] = d[:, offset:]
    elif offset < 0:
        k = -offset
        if k < n:
            out[:, k:] = d[:, : n - k]
    else:
        out[...] = d
    return out


@dataclass
class ThomasFactorization:
    """LU-without-pivoting of a batch of tridiagonal matrices.

    Stores the forward multipliers so each subsequent solve is two O(n)
    sweeps over the right-hand side only.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core.factorize import ThomasFactorization
    >>> from repro.workloads.generators import random_batch
    >>> a, b, c, d = random_batch(4, 64, seed=0)
    >>> fact = ThomasFactorization.factor(a, b, c)
    >>> x = fact.solve(d)             # first RHS
    >>> x2 = fact.solve(d * 2.0)      # reuse: no re-elimination
    >>> bool(np.allclose(x2, 2.0 * x))
    True
    """

    a: np.ndarray  # sub-diagonal (needed in the d-forward sweep)
    cp: np.ndarray  # modified super-diagonal c'_i
    inv_denom: np.ndarray  # 1 / (b_i - a_i c'_{i-1})

    @classmethod
    def factor(cls, a, b, c, *, check: bool = True) -> "ThomasFactorization":
        """Run the coefficient-only part of the forward elimination."""
        if check:
            d0 = np.zeros_like(np.asarray(b))
            a, b, c, _ = check_batch_arrays(a, b, c, d0)
        else:
            a, b, c = (np.asarray(v) for v in (a, b, c))
        m, n = b.shape
        cp = np.empty((m, n), dtype=b.dtype)
        inv = np.empty((m, n), dtype=b.dtype)
        inv[:, 0] = 1.0 / b[:, 0]
        cp[:, 0] = c[:, 0] * inv[:, 0]
        for i in range(1, n):
            denom = b[:, i] - cp[:, i - 1] * a[:, i]
            inv[:, i] = 1.0 / denom
            cp[:, i] = c[:, i] * inv[:, i]
        return cls(a=a.copy(), cp=cp, inv_denom=inv)

    @property
    def m(self) -> int:
        """Number of factored systems."""
        return self.cp.shape[0]

    @property
    def n(self) -> int:
        """System size."""
        return self.cp.shape[1]

    def solve(self, d) -> np.ndarray:
        """Solve for one RHS set: ``d`` is ``(M, N)`` or ``(M, N, R)``."""
        d = np.asarray(d, dtype=self.cp.dtype)
        squeeze = d.ndim == 2
        if squeeze:
            d = d[..., None]
        if d.shape[:2] != self.cp.shape:
            raise ValueError(
                f"d has leading shape {d.shape[:2]}, expected {self.cp.shape}"
            )
        m, n, r = d.shape
        a = self.a[..., None]
        inv = self.inv_denom[..., None]
        cp = self.cp[..., None]
        dp = np.empty_like(d)
        dp[:, 0] = d[:, 0] * inv[:, 0]
        for i in range(1, n):
            dp[:, i] = (d[:, i] - dp[:, i - 1] * a[:, i]) * inv[:, i]
        x = np.empty_like(d)
        x[:, n - 1] = dp[:, n - 1]
        for i in range(n - 2, -1, -1):
            x[:, i] = dp[:, i] - cp[:, i] * x[:, i + 1]
        return x[..., 0] if squeeze else x


@dataclass
class HybridFactorization:
    """Factored k-step PCR + p-Thomas hybrid.

    ``factor`` runs the PCR sweep once on the coefficients, storing each
    level's ``(k1, k2)`` reduction factors, and Thomas-factorizes the
    reduced interleaved system.  ``solve`` then applies the stored level
    factors to the RHS (O(kN)) and back-substitutes through the stored
    Thomas factors (O(N)) — no eliminations are ever repeated.
    """

    k: int
    level_factors: list = field(default_factory=list)  # [(k1, k2), ...]
    reduced: ThomasFactorization | None = None

    @classmethod
    def factor(
        cls, a, b, c, *, k: int | None = None, check: bool = True
    ) -> "HybridFactorization":
        """Factor a batch; ``k`` defaults to the Table III heuristic."""
        d0 = np.zeros_like(np.asarray(b))
        if check:
            a, b, c, _ = check_batch_arrays(a, b, c, d0)
        else:
            a, b, c = (np.asarray(v) for v in (a, b, c))
        m, n = b.shape
        if k is None:
            k = GTX480_HEURISTIC.k_for(m, n)
        k = clamp_k(k, n)

        fact = cls(k=k)
        one = b.dtype.type(1)
        s = 1
        for _ in range(k):
            b_m = _shift_rhs(b, -s)
            b_m[:, :s] = one
            b_p = _shift_rhs(b, +s)
            b_p[:, n - s :] = one
            k1 = a / b_m
            k2 = c / b_p
            if s < n:
                k1[:, :s] = 0.0
                k2[:, n - s :] = 0.0
            else:
                k1[...] = 0.0
                k2[...] = 0.0
            a_new = -_shift_rhs(a, -s) * k1
            b_new = b - _shift_rhs(c, -s) * k1 - _shift_rhs(a, +s) * k2
            c_new = -_shift_rhs(c, +s) * k2
            fact.level_factors.append((k1, k2))
            a, b, c = a_new, b_new, c_new
            s *= 2

        # Thomas-factor the reduced system subsystem-wise: regroup the
        # interleaved rows into (M * 2^k, L) with identity padding.
        g = 1 << k
        if g == 1:
            fact.reduced = ThomasFactorization.factor(a, b, c, check=False)
            return fact
        L = -(-n // g)
        ra = np.zeros((m * g, L), dtype=b.dtype)
        rb = np.ones((m * g, L), dtype=b.dtype)
        rc = np.zeros((m * g, L), dtype=b.dtype)
        for j in range(g):
            cols = slice(j, n, g)
            w = len(range(j, n, g))
            ra[j::g, :w] = a[:, cols]
            rb[j::g, :w] = b[:, cols]
            rc[j::g, :w] = c[:, cols]
        ra[:, 0] = 0.0
        rc[:, -1] = 0.0
        fact.reduced = ThomasFactorization.factor(ra, rb, rc, check=False)
        return fact

    def solve(self, d) -> np.ndarray:
        """Solve for ``d`` of shape ``(M, N)`` or ``(M, N, R)``."""
        if self.reduced is None:
            raise RuntimeError("factorization not initialized; use factor()")
        d = np.asarray(d)
        squeeze = d.ndim == 2
        if squeeze:
            d = d[..., None]
        m, n, r = d.shape
        g = 1 << self.k

        # apply the stored PCR level factors to the RHS
        s = 1
        for k1, k2 in self.level_factors:
            d = (
                d
                - k1[..., None] * _shift_rhs(d, -s)
                - k2[..., None] * _shift_rhs(d, +s)
            )
            s *= 2

        if g == 1:
            x = self.reduced.solve(d if not squeeze else d)
            return x[..., 0] if squeeze else x

        # regroup into subsystems, back-substitute, regroup back
        L = self.reduced.n
        rd = np.zeros((m * g, L, r), dtype=d.dtype)
        for j in range(g):
            w = len(range(j, n, g))
            rd[j::g, :w] = d[:, j::g]
        rx = self.reduced.solve(rd)
        x = np.empty((m, n, r), dtype=d.dtype)
        for j in range(g):
            w = len(range(j, n, g))
            x[:, j::g] = rx[j::g, :w]
        return x[..., 0] if squeeze else x
