"""The hybrid solver: k-step tiled PCR + p-Thomas — Section III.

Divide and conquer:

1. **Front-end** — :class:`~repro.core.tiled_pcr.TiledPCR` runs ``k`` PCR
   steps through the buffered sliding window, turning each input system
   into ``2^k`` independent interleaved systems ("parallelism
   excavation").
2. **Back-end** — :func:`~repro.core.pthomas.pthomas_solve_interleaved`
   solves the ``M · 2^k`` systems, one thread each, with coalesced
   accesses thanks to the interleaving PCR left behind.
3. **Transition** — ``k`` comes from Table III (default) or from the
   Table II cost model (:func:`~repro.core.transition.select_k_analytic`)
   when a machine-parallelism estimate is supplied.

**Kernel fusion** (Section III-C, ``fuse=True``): the p-Thomas forward
reduction consumes each slab of PCR output the moment the sliding window
emits it, instead of waiting for the full sweep — the PCR results never
round-trip through global memory ("register tiling").  Numerically the
fused and unfused paths are identical; the saved traffic shows up in the
GPU timing model (:mod:`repro.kernels.fused_kernel`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.pthomas import pthomas_solve_interleaved
from repro.core.thomas import thomas_solve_batch
from repro.core.tiled_pcr import TiledPCR, TilingCounters
from repro.core.transition import (
    GTX480_HEURISTIC,
    TransitionHeuristic,
    clamp_k,
    select_k_analytic,
)
from repro.core.validation import check_batch_arrays

__all__ = ["HybridSolver", "HybridReport"]


@dataclass
class HybridReport:
    """What the last :meth:`HybridSolver.solve_batch` call actually did."""

    m: int = 0
    n: int = 0
    k: int = 0
    k_source: str = "heuristic"
    subsystems: int = 0
    fused: bool = False
    n_windows: int = 1
    tiling: TilingCounters = field(default_factory=TilingCounters)

    @property
    def pcr_eliminations(self) -> int:
        """Eliminations spent in the tiled-PCR front-end."""
        return self.tiling.eliminations

    @property
    def thomas_eliminations(self) -> int:
        """Eliminations spent in the p-Thomas back-end (``2·L − 1`` per
        subsystem, ``L`` the subsystem length)."""
        if self.k == 0:
            return self.m * (2 * self.n - 1)
        g = 1 << self.k
        total = 0
        for j in range(g):
            L = -(-(self.n - j) // g)
            if L > 0:
                total += 2 * L - 1
        return self.m * total


class _FusedPThomas:
    """Progressive p-Thomas forward reduction fed by sliding-window slabs.

    Maintains per-thread running ``(c', d')`` state in "registers" (the
    trailing ``2^k`` rows) while storing the full modified coefficients
    for the later backward pass — exactly the register-tiling scheme of
    Section III-C: "the updated partial result is stored in the same
    registers ... while the previous results are written to global
    memory".
    """

    def __init__(self, m: int, n: int, k: int, dtype):
        self.m, self.n, self.g = m, n, 1 << k
        self.cp = np.zeros((m, n), dtype=dtype)
        self.dp = np.zeros((m, n), dtype=dtype)
        self._next = 0  # forward-reduction frontier (global row index)

    def consume(self, e0: int, e1: int, quad: tuple) -> None:
        """Fold slab ``[e0, e1)`` of level-k rows into the forward pass."""
        if e0 != self._next:
            raise RuntimeError(
                f"slab [{e0}, {e1}) out of order; expected start {self._next}"
            )
        a, b, c, d = quad
        g = self.g
        lo = e0
        while lo < e1:
            # advance to the next level boundary (multiple of g)
            hi = min(e1, (lo // g + 1) * g)
            w = hi - lo
            sl = slice(lo, hi)
            src = slice(lo - e0, hi - e0)
            if lo < g:
                self.cp[:, sl] = c[:, src] / b[:, src]
                self.dp[:, sl] = d[:, src] / b[:, src]
            else:
                prev = slice(lo - g, lo - g + w)
                denom = b[:, src] - self.cp[:, prev] * a[:, src]
                self.cp[:, sl] = c[:, src] / denom
                self.dp[:, sl] = (
                    d[:, src] - self.dp[:, prev] * a[:, src]
                ) / denom
            lo = hi
        self._next = e1

    def backward(self) -> np.ndarray:
        """Run the backward substitution once every row has been consumed."""
        if self._next != self.n:
            raise RuntimeError(
                f"forward pass incomplete: {self._next} of {self.n} rows"
            )
        m, n, g = self.m, self.n, self.g
        x = np.empty((m, n), dtype=self.cp.dtype)
        L = -(-n // g)
        last_lo = (L - 1) * g
        x[:, last_lo:n] = self.dp[:, last_lo:n]
        for l in range(L - 2, -1, -1):
            lo = l * g
            hi = lo + g
            nxt_hi = min(hi + g, n)
            w_next = nxt_hi - hi
            cur = slice(lo, lo + w_next)
            nxt = slice(hi, nxt_hi)
            x[:, cur] = self.dp[:, cur] - self.cp[:, cur] * x[:, nxt]
            if w_next < g:
                tail = slice(lo + w_next, hi)
                x[:, tail] = self.dp[:, tail]
        return x


@dataclass
class HybridSolver:
    """Tiled-PCR + p-Thomas hybrid tridiagonal solver (the paper's method).

    Parameters
    ----------
    k:
        Fixed PCR step count; ``None`` (default) selects it per call.
    heuristic:
        Table-III-style ``M → k`` table used when ``k is None`` and
        ``parallelism is None``.
    parallelism:
        If given (hardware thread capacity ``P``), ``k`` is chosen by
        minimizing the Table II cost model instead of the lookup table.
    subtile_scale:
        Table I's ``c`` — outputs per thread per sliding-window round.
    n_windows:
        Concurrent windows per system (Fig. 11b); ``1`` = no redundancy.
    fuse:
        Fuse p-Thomas forward reduction into the PCR sweep (Section III-C).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core.hybrid import HybridSolver
    >>> rng = np.random.default_rng(1)
    >>> m, n = 4, 128
    >>> a = rng.standard_normal((m, n)); a[:, 0] = 0
    >>> c = rng.standard_normal((m, n)); c[:, -1] = 0
    >>> b = 4 + np.abs(a) + np.abs(c)
    >>> d = rng.standard_normal((m, n))
    >>> x = HybridSolver().solve_batch(a, b, c, d)
    >>> r = b * x - d
    >>> r[:, 1:] += a[:, 1:] * x[:, :-1]
    >>> r[:, :-1] += c[:, :-1] * x[:, 1:]
    >>> bool(np.abs(r).max() < 1e-10)
    True
    """

    k: int | None = None
    heuristic: TransitionHeuristic = GTX480_HEURISTIC
    parallelism: int | None = None
    subtile_scale: int = 1
    n_windows: int = 1
    fuse: bool = False
    last_report: HybridReport | None = field(default=None, compare=False)

    def choose_k(self, m: int, n: int) -> tuple:
        """Pick the PCR step count for an ``M × N`` problem.

        Returns ``(k, source)`` where source is ``"fixed"``,
        ``"analytic"`` or ``"heuristic"``.
        """
        if self.k is not None:
            return clamp_k(self.k, n), "fixed"
        if self.parallelism is not None:
            n_log2 = max(0, int(np.ceil(np.log2(n))))
            k = select_k_analytic(n_log2, m, self.parallelism)
            return clamp_k(k, n), "analytic"
        return self.heuristic.k_for(m, n), "heuristic"

    def solve_batch(self, a, b, c, d, *, check: bool = True) -> np.ndarray:
        """Solve an ``(M, N)`` batch; fills :attr:`last_report`."""
        if check:
            a, b, c, d = check_batch_arrays(a, b, c, d)
        m, n = np.asarray(b).shape
        k, source = self.choose_k(m, n)
        report = HybridReport(
            m=m,
            n=n,
            k=k,
            k_source=source,
            subsystems=m * (1 << k),
            fused=self.fuse,
            n_windows=self.n_windows,
        )
        self.last_report = report

        if k == 0:
            x = thomas_solve_batch(a, b, c, d, check=False)
            return x

        tiler = TiledPCR(k=k, c=self.subtile_scale, n_windows=self.n_windows)
        report.tiling = tiler.counters
        if self.fuse:
            fused = _FusedPThomas(m, n, k, np.asarray(b).dtype)
            tiler.sweep(a, b, c, d, check=False, emit=fused.consume)
            return fused.backward()
        ra, rb, rc, rd = tiler.sweep(a, b, c, d, check=False)
        return pthomas_solve_interleaved(ra, rb, rc, rd, k)

    def solve(self, a, b, c, d, *, check: bool = True) -> np.ndarray:
        """Solve a single system (treated as an ``M = 1`` batch)."""
        a, b, c, d = (np.asarray(v) for v in (a, b, c, d))
        x = self.solve_batch(
            a[None, :], b[None, :], c[None, :], d[None, :], check=check
        )
        return x[0]
