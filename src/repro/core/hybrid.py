"""The hybrid solver: k-step tiled PCR + p-Thomas — Section III.

Divide and conquer:

1. **Front-end** — :class:`~repro.core.tiled_pcr.TiledPCR` runs ``k`` PCR
   steps through the buffered sliding window, turning each input system
   into ``2^k`` independent interleaved systems ("parallelism
   excavation").
2. **Back-end** — :func:`~repro.core.pthomas.pthomas_solve_interleaved`
   solves the ``M · 2^k`` systems, one thread each, with coalesced
   accesses thanks to the interleaving PCR left behind.
3. **Transition** — ``k`` comes from Table III (default) or from the
   Table II cost model (:func:`~repro.core.transition.select_k_analytic`)
   when a machine-parallelism estimate is supplied.

**Kernel fusion** (Section III-C, ``fuse=True``): the p-Thomas forward
reduction consumes each slab of PCR output the moment the sliding window
emits it, instead of waiting for the full sweep — the PCR results never
round-trip through global memory ("register tiling").  Numerically the
fused and unfused paths are identical; the saved traffic shows up in the
GPU timing model (:mod:`repro.kernels.fused_kernel`).

For repeated solves of one problem shape, prefer routing through the
solve-plan engine (:mod:`repro.engine`): it freezes the transition
choice and owns the sliding-window / p-Thomas workspaces across calls,
so only the first solve pays planning and allocation cost.  This class
remains the single-call reference implementation the engine is held
bitwise-equal to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from repro.core.pthomas import (
    PThomasWorkspace,
    pthomas_solve_interleaved,
    subsystem_lengths,
)
from repro.core.thomas import thomas_solve_batch
from repro.core.tiled_pcr import TiledPCR, TilingCounters
from repro.core.transition import (
    GTX480_HEURISTIC,
    TransitionHeuristic,
    clamp_k,
    select_k_analytic,
)
from repro.core.validation import check_batch_arrays

__all__ = ["HybridSolver", "HybridReport", "choose_transition"]


def choose_transition(
    m: int,
    n: int,
    *,
    k: int | None = None,
    heuristic: TransitionHeuristic = GTX480_HEURISTIC,
    parallelism: int | None = None,
) -> tuple:
    """Pick the PCR step count for an ``M × N`` problem.

    Returns ``(k, source)`` where source is ``"fixed"``, ``"analytic"``
    or ``"heuristic"``.  Shared by :class:`HybridSolver` and the plan
    engine so both freeze the identical transition.
    """
    if k is not None:
        return clamp_k(k, n), "fixed"
    if parallelism is not None:
        n_log2 = max(0, int(np.ceil(np.log2(n))))
        k_sel = select_k_analytic(n_log2, m, parallelism)
        return clamp_k(k_sel, n), "analytic"
    return heuristic.k_for(m, n), "heuristic"


@dataclass
class HybridReport:
    """What the last :meth:`HybridSolver.solve_batch` call actually did."""

    m: int = 0
    n: int = 0
    k: int = 0
    k_source: str = "heuristic"
    subsystems: int = 0
    fused: bool = False
    n_windows: int = 1
    tiling: TilingCounters = field(default_factory=TilingCounters)

    @property
    def pcr_eliminations(self) -> int:
        """Eliminations spent in the tiled-PCR front-end."""
        return self.tiling.eliminations

    @cached_property
    def thomas_eliminations(self) -> int:
        """Eliminations spent in the p-Thomas back-end (``2·L − 1`` per
        subsystem, ``L`` the subsystem length).

        Computed vectorized from :func:`subsystem_lengths` and cached on
        first access (the report's shape fields are written once, at
        solve time).
        """
        lengths = subsystem_lengths(self.n, self.k)
        lengths = lengths[lengths > 0]
        return int(self.m * np.sum(2 * lengths - 1))


class _FusedPThomas:
    """Progressive p-Thomas forward reduction fed by sliding-window slabs.

    Maintains per-thread running ``(c', d')`` state in "registers" (the
    trailing ``2^k`` rows) while storing the full modified coefficients
    for the later backward pass — exactly the register-tiling scheme of
    Section III-C: "the updated partial result is stored in the same
    registers ... while the previous results are written to global
    memory".

    State lives in a :class:`~repro.core.pthomas.PThomasWorkspace`
    (supplied by the caller for reuse across solves, or allocated here);
    every slab fold runs through ``out=`` kernels, so consuming a sweep
    allocates nothing.
    """

    def __init__(self, m: int, n: int, k: int, dtype, workspace=None):
        self.m, self.n, self.g = m, n, 1 << k
        if workspace is None:
            workspace = PThomasWorkspace(m, n, k, dtype)
        elif not workspace.compatible(m, n, k, dtype):
            raise ValueError(
                f"workspace (m={workspace.m}, n={workspace.n}, "
                f"k={workspace.k}, dtype={workspace.dtype}) does not fit "
                f"fused solve (m={m}, n={n}, k={k}, dtype={np.dtype(dtype)})"
            )
        self._ws = workspace
        self.cp = workspace.cp
        self.dp = workspace.dp
        self._next = 0  # forward-reduction frontier (global row index)

    def consume(self, e0: int, e1: int, quad: tuple) -> None:
        """Fold slab ``[e0, e1)`` of level-k rows into the forward pass."""
        if e0 != self._next:
            raise RuntimeError(
                f"slab [{e0}, {e1}) out of order; expected start {self._next}"
            )
        a, b, c, d = quad
        g = self.g
        cp, dp = self.cp, self.dp
        lo = e0
        while lo < e1:
            # advance to the next level boundary (multiple of g)
            hi = min(e1, (lo // g + 1) * g)
            w = hi - lo
            sl = slice(lo, hi)
            src = slice(lo - e0, hi - e0)
            if lo < g:
                np.divide(c[:, src], b[:, src], out=cp[:, sl])
                np.divide(d[:, src], b[:, src], out=dp[:, sl])
            else:
                prev = slice(lo - g, lo - g + w)
                t1, t2 = self._ws.t1[:, :w], self._ws.t2[:, :w]
                # denom = b - cp_prev * a
                np.multiply(cp[:, prev], a[:, src], out=t1)
                np.subtract(b[:, src], t1, out=t1)
                np.divide(c[:, src], t1, out=cp[:, sl])
                # dp = (d - dp_prev * a) / denom
                np.multiply(dp[:, prev], a[:, src], out=t2)
                np.subtract(d[:, src], t2, out=t2)
                np.divide(t2, t1, out=dp[:, sl])
            lo = hi
        self._next = e1

    def backward(self, out=None) -> np.ndarray:
        """Run the backward substitution once every row has been consumed.

        ``out``, if given, receives the solution in place (must match
        shape and dtype).
        """
        if self._next != self.n:
            raise RuntimeError(
                f"forward pass incomplete: {self._next} of {self.n} rows"
            )
        m, n, g = self.m, self.n, self.g
        cp, dp = self.cp, self.dp
        if out is not None and (out.shape != (m, n) or out.dtype != cp.dtype):
            raise ValueError(
                f"out (shape {out.shape}, dtype {out.dtype}) does not fit "
                f"solve (shape ({m}, {n}), dtype {cp.dtype})"
            )
        x = out if out is not None else np.empty((m, n), dtype=cp.dtype)
        L = -(-n // g)
        last_lo = (L - 1) * g
        x[:, last_lo:n] = dp[:, last_lo:n]
        for l in range(L - 2, -1, -1):
            lo = l * g
            hi = lo + g
            nxt_hi = min(hi + g, n)
            w_next = nxt_hi - hi
            cur = slice(lo, lo + w_next)
            nxt = slice(hi, nxt_hi)
            t1 = self._ws.t1[:, :w_next]
            np.multiply(cp[:, cur], x[:, nxt], out=t1)
            np.subtract(dp[:, cur], t1, out=x[:, cur])
            if w_next < g:
                tail = slice(lo + w_next, hi)
                x[:, tail] = dp[:, tail]
        return x


@dataclass
class HybridSolver:
    """Tiled-PCR + p-Thomas hybrid tridiagonal solver (the paper's method).

    Parameters
    ----------
    k:
        Fixed PCR step count; ``None`` (default) selects it per call.
    heuristic:
        Table-III-style ``M → k`` table used when ``k is None`` and
        ``parallelism is None``.
    parallelism:
        If given (hardware thread capacity ``P``), ``k`` is chosen by
        minimizing the Table II cost model instead of the lookup table.
    subtile_scale:
        Table I's ``c`` — outputs per thread per sliding-window round.
    n_windows:
        Concurrent windows per system (Fig. 11b); ``1`` = no redundancy.
    fuse:
        Fuse p-Thomas forward reduction into the PCR sweep (Section III-C).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core.hybrid import HybridSolver
    >>> rng = np.random.default_rng(1)
    >>> m, n = 4, 128
    >>> a = rng.standard_normal((m, n)); a[:, 0] = 0
    >>> c = rng.standard_normal((m, n)); c[:, -1] = 0
    >>> b = 4 + np.abs(a) + np.abs(c)
    >>> d = rng.standard_normal((m, n))
    >>> x = HybridSolver().solve_batch(a, b, c, d)
    >>> r = b * x - d
    >>> r[:, 1:] += a[:, 1:] * x[:, :-1]
    >>> r[:, :-1] += c[:, :-1] * x[:, 1:]
    >>> bool(np.abs(r).max() < 1e-10)
    True
    """

    k: int | None = None
    heuristic: TransitionHeuristic = GTX480_HEURISTIC
    parallelism: int | None = None
    subtile_scale: int = 1
    n_windows: int = 1
    fuse: bool = False
    last_report: HybridReport | None = field(default=None, compare=False)

    def choose_k(self, m: int, n: int) -> tuple:
        """Pick the PCR step count for an ``M × N`` problem.

        Returns ``(k, source)`` where source is ``"fixed"``,
        ``"analytic"`` or ``"heuristic"``.
        """
        return choose_transition(
            m,
            n,
            k=self.k,
            heuristic=self.heuristic,
            parallelism=self.parallelism,
        )

    def solve_batch(self, a, b, c, d, *, check: bool = True) -> np.ndarray:
        """Solve an ``(M, N)`` batch; fills :attr:`last_report`."""
        if check:
            a, b, c, d = check_batch_arrays(a, b, c, d)
        m, n = np.asarray(b).shape
        k, source = self.choose_k(m, n)
        report = HybridReport(
            m=m,
            n=n,
            k=k,
            k_source=source,
            subsystems=m * (1 << k),
            fused=self.fuse,
            n_windows=self.n_windows,
        )
        self.last_report = report

        if k == 0:
            x = thomas_solve_batch(a, b, c, d, check=False)
            return x

        tiler = TiledPCR(k=k, c=self.subtile_scale, n_windows=self.n_windows)
        report.tiling = tiler.counters
        if self.fuse:
            fused = _FusedPThomas(m, n, k, np.asarray(b).dtype)
            tiler.sweep(a, b, c, d, check=False, emit=fused.consume)
            return fused.backward()
        ra, rb, rc, rd = tiler.sweep(a, b, c, d, check=False)
        return pthomas_solve_interleaved(ra, rb, rc, rd, k)

    def solve(self, a, b, c, d, *, check: bool = True) -> np.ndarray:
        """Solve a single system (treated as an ``M = 1`` batch)."""
        a, b, c, d = (np.asarray(v) for v in (a, b, c, d))
        x = self.solve_batch(
            a[None, :], b[None, :], c[None, :], d[None, :], check=check
        )
        return x[0]
