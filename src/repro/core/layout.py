"""Memory-layout transforms — the "desired memory layout" of Section I.

A GPU tridiagonal solver lives and dies by coalescing, and coalescing is
a property of *layout*.  Two layouts matter here:

* ``CONTIGUOUS`` — system ``j`` occupies rows ``[j·L, (j+1)·L)`` of a flat
  array.  Thomas threads walking their own systems then touch addresses
  ``j·L + step`` — stride ``L`` apart: every warp access is a separate
  memory transaction.
* ``INTERLEAVED`` — element ``l`` of system ``j`` sits at ``l·G + j``
  (``G`` systems interleaved).  Thomas threads touch ``l·G + j`` —
  consecutive addresses: one transaction per warp.

The paper's observation (Section III-B): a k-step PCR sweep leaves its
``2^k`` subsystems *already* in interleaved order, so the p-Thomas stage
gets the coalesced layout for free.  The helpers below convert between
the two (used by baselines that don't get it for free, and by the
layout ablation benchmark).
"""

from __future__ import annotations

import enum

import numpy as np

__all__ = ["Layout", "interleave", "deinterleave", "interleave_batch"]


class Layout(enum.Enum):
    """How a group of equal-size systems is arranged in linear memory."""

    CONTIGUOUS = "contiguous"
    INTERLEAVED = "interleaved"


def interleave(arr: np.ndarray) -> np.ndarray:
    """Convert ``(G, L)`` contiguous systems to interleaved flat order.

    Output position ``l·G + j`` receives ``arr[j, l]``.
    """
    arr = np.asarray(arr)
    if arr.ndim != 2:
        raise ValueError(f"expected (G, L) array, got {arr.ndim}-D")
    return np.ascontiguousarray(arr.T).reshape(-1)

def deinterleave(flat: np.ndarray, g: int) -> np.ndarray:
    """Inverse of :func:`interleave`: flat interleaved → ``(G, L)``.

    Accepts a flat length divisible by ``g``.
    """
    flat = np.asarray(flat)
    if flat.ndim != 1:
        raise ValueError(f"expected flat array, got {flat.ndim}-D")
    if flat.shape[0] % g:
        raise ValueError(f"length {flat.shape[0]} not divisible by G = {g}")
    return np.ascontiguousarray(flat.reshape(-1, g).T)


def interleave_batch(arr: np.ndarray) -> np.ndarray:
    """Interleave each batch row's systems: ``(M, G, L) → (M, G·L)``.

    Row ``m`` of the output holds its ``G`` systems interleaved, i.e.
    output ``[m, l·G + j] = arr[m, j, l]``.
    """
    arr = np.asarray(arr)
    if arr.ndim != 3:
        raise ValueError(f"expected (M, G, L) array, got {arr.ndim}-D")
    m, g, L = arr.shape
    return np.ascontiguousarray(arr.transpose(0, 2, 1)).reshape(m, g * L)
