"""Parallel cyclic reduction (PCR) — Section II-A.3 of the paper.

One PCR step with stride ``s`` eliminates, for *every* row ``i``, the
couplings to rows ``i − s`` and ``i + s`` (Eqs. 5-6):

.. math::

    k_1 = a_i / b_{i-s}, \\qquad k_2 = c_i / b_{i+s}

    a'_i = -a_{i-s} k_1, \\quad
    b'_i = b_i - c_{i-s} k_1 - a_{i+s} k_2, \\quad
    c'_i = -c_{i+s} k_2

    d'_i = d_i - d_{i-s} k_1 - d_{i+s} k_2

After the step, row ``i`` couples only to rows ``i ± 2s``: a step with
stride ``s`` splits every tridiagonal system into two independent
interleaved systems of half the size.  ``k`` steps with strides
``1, 2, …, 2^{k−1}`` therefore split an ``N``-row system into ``2^k``
independent systems — subsystem ``j`` is the set of rows
``{i : i ≡ j (mod 2^k)}`` — each of size ``≈ N / 2^k``.  This is exactly
the "parallelism excavation" the hybrid solver's front-end performs.

Complexity: ``O(n log n)`` work, ``log n + 1`` elimination steps
(Table II row 2).

Boundary convention: out-of-range neighbours contribute nothing.  The
implementation realizes that by zero-filling shifted ``a, c, d`` and
one-filling shifted ``b`` (so the ``k`` factors are well defined), then
masking ``k1`` to zero for ``i < s`` and ``k2`` to zero for ``i ≥ n − s``.
"""

from __future__ import annotations

import numpy as np

from repro.core.thomas import thomas_solve_batch
from repro.core.validation import check_batch_arrays, check_system_arrays

__all__ = [
    "pcr_step",
    "pcr_sweep",
    "pcr_solve",
    "pcr_solve_batch",
    "split_interleaved",
    "merge_interleaved",
]


def _shift(arr: np.ndarray, offset: int, fill: float) -> np.ndarray:
    """Return ``out`` with ``out[..., i] = arr[..., i + offset]``.

    Out-of-range positions take ``fill``.  ``offset`` may be negative
    (look *behind*) or positive (look *ahead*).
    """
    out = np.full_like(arr, fill)
    n = arr.shape[-1]
    if offset == 0:
        out[...] = arr
    elif offset > 0:
        if offset < n:
            out[..., : n - offset] = arr[..., offset:]
    else:
        k = -offset
        if k < n:
            out[..., k:] = arr[..., : n - k]
    return out


def pcr_step(a, b, c, d, s: int):
    """Apply one PCR step with stride ``s`` to an ``(M, N)`` batch.

    Returns new ``(a, b, c, d)`` arrays (inputs are not modified).  Every
    row is reduced — this is PCR, not CR, so no rows are discarded.
    """
    n = b.shape[-1]
    one = b.dtype.type(1)
    a_m = _shift(a, -s, 0.0)
    b_m = _shift(b, -s, one)
    c_m = _shift(c, -s, 0.0)
    d_m = _shift(d, -s, 0.0)
    a_p = _shift(a, +s, 0.0)
    b_p = _shift(b, +s, one)
    c_p = _shift(c, +s, 0.0)
    d_p = _shift(d, +s, 0.0)

    k1 = a / b_m
    k2 = c / b_p
    if s < n:
        k1[..., :s] = 0.0
        k2[..., n - s :] = 0.0
    else:
        k1[...] = 0.0
        k2[...] = 0.0

    a_new = -a_m * k1
    b_new = b - c_m * k1 - a_p * k2
    c_new = -c_p * k2
    d_new = d - d_m * k1 - d_p * k2
    return a_new, b_new, c_new, d_new


def pcr_sweep(a, b, c, d, steps: int):
    """Apply ``steps`` PCR steps with the doubling stride schedule 1, 2, 4, …

    After the sweep the batch consists (logically) of ``2^steps``
    independent interleaved systems per input system.  Returns new arrays.
    """
    if steps < 0:
        raise ValueError(f"steps must be >= 0, got {steps}")
    s = 1
    for _ in range(steps):
        a, b, c, d = pcr_step(a, b, c, d, s)
        s *= 2
    return a, b, c, d


def split_interleaved(arr: np.ndarray, k: int) -> np.ndarray:
    """Regroup an ``(M, N)`` array into its ``2^k`` interleaved subsystems.

    Returns an ``(M · 2^k, L)`` array where ``L = ceil(N / 2^k)`` and row
    ``m·2^k + j`` holds subsystem ``j`` of input system ``m`` (elements
    ``j, j + 2^k, j + 2·2^k, …``).  Tail positions of short subsystems are
    padded with identity rows by the caller (see
    :func:`repro.core.pthomas.pad_identity_rows`).
    """
    m, n = arr.shape
    g = 1 << k
    L = -(-n // g)  # ceil
    out = np.zeros((m * g, L), dtype=arr.dtype)
    for j in range(g):
        col = arr[:, j::g]
        out[j::g, : col.shape[1]] = col
    return out


def merge_interleaved(arr: np.ndarray, k: int, n: int) -> np.ndarray:
    """Inverse of :func:`split_interleaved`: regroup back to ``(M, N)``."""
    g = 1 << k
    mg, L = arr.shape
    if mg % g:
        raise ValueError(f"row count {mg} not divisible by 2^k = {g}")
    m = mg // g
    out = np.empty((m, n), dtype=arr.dtype)
    for j in range(g):
        length = len(range(j, n, g))
        out[:, j::g] = arr[j::g, :length]
    return out


def pcr_solve_batch(a, b, c, d, *, check: bool = True) -> np.ndarray:
    """Solve an ``(M, N)`` batch by complete PCR.

    Strides double until they exceed ``N``; at that point every row is a
    1×1 system and ``x = d / b``.
    """
    if check:
        a, b, c, d = check_batch_arrays(a, b, c, d)
    else:
        a, b, c, d = (np.asarray(v) for v in (a, b, c, d))
    n = b.shape[-1]
    s = 1
    while s < n:
        a, b, c, d = pcr_step(a, b, c, d, s)
        s *= 2
    return d / b


def pcr_solve(a, b, c, d, *, check: bool = True) -> np.ndarray:
    """Solve one system by complete PCR (see :func:`pcr_solve_batch`)."""
    if check:
        a, b, c, d = check_system_arrays(a, b, c, d)
    x = pcr_solve_batch(
        a[None, :], b[None, :], c[None, :], d[None, :], check=False
    )
    return x[0]


def pcr_then_thomas_batch(a, b, c, d, k: int, *, check: bool = True) -> np.ndarray:
    """Reference (untiled) hybrid: ``k`` PCR steps then batched Thomas.

    This is the *whole-system-in-memory* hybrid of Sakharnykh / Zhang et
    al. that the paper generalizes; the production path is
    :class:`repro.core.hybrid.HybridSolver`, which replaces the monolithic
    sweep with the tiled sliding-window front-end.  Kept as an oracle for
    equivalence tests.
    """
    from repro.core.pthomas import pthomas_solve_interleaved

    if check:
        a, b, c, d = check_batch_arrays(a, b, c, d)
    if k == 0:
        return thomas_solve_batch(a, b, c, d, check=False)
    a, b, c, d = pcr_sweep(a, b, c, d, k)
    return pthomas_solve_interleaved(a, b, c, d, k)
