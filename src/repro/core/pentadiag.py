"""Batched pentadiagonal elimination (Thomas-style LU, no pivoting).

The interleaved-batch layout that makes the paper's tridiagonal solves
fast carries over unchanged to five-diagonal systems (Gloster et al.,
arXiv 1909.04539 — cuPentBatch): the row recurrence is sequential, the
batch axis is the parallel axis, and every row step is one vectorized
operation across all ``M`` systems.

Diagonals follow offset order: ``e`` (second sub-diagonal, −2), ``a``
(−1), ``b`` (main), ``c`` (+1), ``f`` (+2), each ``(M, N)`` with the
out-of-matrix pads zeroed (``e[:, :2]``, ``a[:, 0]``, ``c[:, -1]``,
``f[:, -2:]``).

The elimination is the LU factorization ``A = L·U`` with

* ``L``: second sub-diagonal ``e`` (unchanged), sub-diagonal ``β``,
  diagonal ``α``;
* ``U``: unit diagonal, super-diagonal ``γ``, second super ``δ``;

giving the recurrences (``γ``/``δ`` at negative indices are zero)::

    β_i = a_i − e_i·γ_{i−2}
    α_i = b_i − e_i·δ_{i−2} − β_i·γ_{i−1}
    γ_i = (c_i − β_i·δ_{i−1}) / α_i
    δ_i = f_i / α_i

Like :class:`~repro.engine.prepared.ThomasRhsFactorization`, the
factorization stores the **denominators** ``α`` (not reciprocals) and
divides in the sweep, and :func:`pentadiag_solve_batch` is literally
``factor`` + ``solve`` — so a prepared (RHS-only) solve is bitwise
identical to the cold path by construction.
"""

from __future__ import annotations

import numpy as np

from repro.core.validation import check_penta_batch_arrays

__all__ = [
    "PentaFactorization",
    "penta_factor",
    "pentadiag_solve_batch",
    "penta_to_dense",
]


class PentaFactorization:
    """Coefficient-only LU of a pentadiagonal batch, RHS sweep split off.

    Arrays live transposed ``(N, M)`` so each row step of the sweep is
    a contiguous vector operation across the batch — the same layout
    trick as :class:`~repro.engine.prepared.ThomasRhsFactorization`.
    """

    __slots__ = ("te", "beta", "alpha", "gamma", "delta", "nbytes")

    def __init__(self, te, beta, alpha, gamma, delta):
        self.te = te
        self.beta = beta
        self.alpha = alpha
        self.gamma = gamma
        self.delta = delta
        self.nbytes = sum(
            arr.nbytes for arr in (te, beta, alpha, gamma, delta)
        )

    @property
    def m(self) -> int:
        return self.alpha.shape[1]

    @property
    def n(self) -> int:
        return self.alpha.shape[0]

    @property
    def dtype(self):
        return self.alpha.dtype

    @classmethod
    def factor(cls, e, a, b, c, f) -> "PentaFactorization":
        """Eliminate the coefficients of an ``(M, N)`` penta batch."""
        te = np.ascontiguousarray(np.asarray(e).T)
        ta = np.ascontiguousarray(np.asarray(a).T)
        tb = np.ascontiguousarray(np.asarray(b).T)
        tc = np.ascontiguousarray(np.asarray(c).T)
        tf = np.ascontiguousarray(np.asarray(f).T)
        n, m = tb.shape
        dtype = tb.dtype
        beta = np.empty((n, m), dtype=dtype)
        alpha = np.empty((n, m), dtype=dtype)
        gamma = np.empty((n, m), dtype=dtype)
        delta = np.empty((n, m), dtype=dtype)
        beta[0] = ta[0]  # pad: a[:, 0] == 0
        alpha[0] = tb[0]
        np.divide(tc[0], alpha[0], out=gamma[0])
        np.divide(tf[0], alpha[0], out=delta[0])
        t1 = np.empty(m, dtype=dtype)
        if n > 1:
            beta[1] = ta[1]  # pad: e[:, 1] == 0
            np.multiply(beta[1], gamma[0], out=t1)
            np.subtract(tb[1], t1, out=alpha[1])
            np.multiply(beta[1], delta[0], out=t1)
            np.subtract(tc[1], t1, out=gamma[1])
            np.divide(gamma[1], alpha[1], out=gamma[1])
            np.divide(tf[1], alpha[1], out=delta[1])
        for i in range(2, n):
            np.multiply(te[i], gamma[i - 2], out=t1)
            np.subtract(ta[i], t1, out=beta[i])
            np.multiply(te[i], delta[i - 2], out=t1)
            np.subtract(tb[i], t1, out=alpha[i])
            np.multiply(beta[i], gamma[i - 1], out=t1)
            np.subtract(alpha[i], t1, out=alpha[i])
            np.multiply(beta[i], delta[i - 1], out=t1)
            np.subtract(tc[i], t1, out=gamma[i])
            np.divide(gamma[i], alpha[i], out=gamma[i])
            np.divide(tf[i], alpha[i], out=delta[i])
        return cls(te, beta, alpha, gamma, delta)

    def solve(self, d, *, out=None) -> np.ndarray:
        """RHS-only sweep: solve ``A x = d`` for the full ``(M, N)`` batch."""
        d = np.asarray(d)
        if d.ndim != 2 or d.shape != (self.m, self.n):
            raise ValueError(
                f"d must be ({self.m}, {self.n}), got {d.shape}"
            )
        if out is None:
            out = np.empty_like(d)
        self.solve_shard(d, out, 0, self.m)
        return out

    def solve_shard(self, d, out, lo: int, hi: int) -> None:
        """Sweep systems ``lo:hi`` of the batch into ``out[lo:hi]``.

        Every operation is elementwise along the batch axis, so shard
        results are bitwise independent of the shard bounds.
        """
        s = slice(lo, hi)
        n = self.n
        w = hi - lo
        dtype = self.alpha.dtype
        z = np.empty((n, w), dtype=dtype)
        t1 = np.empty(w, dtype=dtype)
        te, beta, alpha = self.te, self.beta, self.alpha
        gamma, delta = self.gamma, self.delta
        # forward: L z = d
        z[0] = d[s, 0]
        np.divide(z[0], alpha[0, s], out=z[0])
        if n > 1:
            np.multiply(beta[1, s], z[0], out=t1)
            np.subtract(d[s, 1], t1, out=z[1])
            np.divide(z[1], alpha[1, s], out=z[1])
        for i in range(2, n):
            np.multiply(te[i, s], z[i - 2], out=t1)
            np.subtract(d[s, i], t1, out=z[i])
            np.multiply(beta[i, s], z[i - 1], out=t1)
            np.subtract(z[i], t1, out=z[i])
            np.divide(z[i], alpha[i, s], out=z[i])
        # backward: U x = z (reuse z as x, bottom-up)
        if n > 1:
            np.multiply(gamma[n - 2, s], z[n - 1], out=t1)
            np.subtract(z[n - 2], t1, out=z[n - 2])
        for i in range(n - 3, -1, -1):
            np.multiply(gamma[i, s], z[i + 1], out=t1)
            np.subtract(z[i], t1, out=z[i])
            np.multiply(delta[i, s], z[i + 2], out=t1)
            np.subtract(z[i], t1, out=z[i])
        out[s] = z.T


def penta_factor(e, a, b, c, f, *, check: bool = True) -> PentaFactorization:
    """Validate (optionally) and factor a pentadiagonal batch."""
    if check:
        b_arr = np.asarray(b)
        e, a, b, c, f, _ = check_penta_batch_arrays(
            e, a, b, c, f, np.zeros(b_arr.shape, dtype=b_arr.dtype)
        )
    return PentaFactorization.factor(e, a, b, c, f)


def pentadiag_solve_batch(e, a, b, c, f, d, *, check: bool = True):
    """Solve ``M`` pentadiagonal systems, vectorized over the batch axis.

    Implemented literally as :meth:`PentaFactorization.factor` followed
    by the RHS sweep, so a prepared solve of the same coefficients is
    bitwise identical to this cold path.
    """
    if check:
        e, a, b, c, f, d = check_penta_batch_arrays(e, a, b, c, f, d)
    else:
        e, a, b, c, f, d = (np.asarray(v) for v in (e, a, b, c, f, d))
    return PentaFactorization.factor(e, a, b, c, f).solve(d)


def penta_to_dense(e, a, b, c, f) -> np.ndarray:
    """Assemble the ``(M, N, N)`` dense stack of a penta batch (tests/refs)."""
    e, a, b, c, f = (np.asarray(v) for v in (e, a, b, c, f))
    m, n = b.shape
    dense = np.zeros((m, n, n), dtype=b.dtype)
    idx = np.arange(n)
    dense[:, idx, idx] = b
    dense[:, idx[1:], idx[:-1]] = a[:, 1:]
    dense[:, idx[:-1], idx[1:]] = c[:, :-1]
    if n > 2:
        dense[:, idx[2:], idx[:-2]] = e[:, 2:]
        dense[:, idx[:-2], idx[2:]] = f[:, : n - 2]
    return dense
