"""Periodic (cyclic) tridiagonal systems via Sherman–Morrison.

Periodic boundary conditions produce *almost* tridiagonal systems with
two corner entries: row 0 couples to row ``n−1`` through ``a_0`` and row
``n−1`` couples to row 0 through ``c_{n−1}``.  Spectral/finite-difference
Poisson solvers on periodic domains (the paper's ref [6] family) hit
this constantly.

The classic reduction: write the cyclic matrix as ``A' + u vᵀ`` with
``A'`` strictly tridiagonal.  Choosing

.. math::

    u = (γ, 0, …, 0, c_{n-1})ᵀ, \\qquad v = (1, 0, …, 0, a_0 / γ)ᵀ

and subtracting ``u vᵀ`` from the corners modifies only ``b_0`` and
``b_{n−1}``.  Sherman–Morrison then needs two solves with ``A'``
(against ``d`` and against ``u``) — both of which this library does
batched, with whichever backend algorithm is requested:

.. math::

    x = y − \\frac{vᵀ y}{1 + vᵀ q}\\, q, \\qquad A' y = d,\\; A' q = u.

``γ = −b_0`` keeps ``A'`` comfortably nonsingular for dominant inputs.

The helpers here (:func:`cyclic_reduce`,
:func:`correction_denominator`, :func:`correction_scale`,
:func:`apply_cyclic_correction`) are the *single* implementation of the
corner algebra — the direct algorithm paths, the generic backend
fallback, :class:`~repro.core.factorize.CyclicFactorization`, and the
engine's prepared cyclic sweep all call them, so every backend runs the
identical elementwise operation sequence (the cross-backend bitwise
contract of ``tests/test_backends.py`` extends to periodic solves).

Singularity: the correction divides by ``1 + vᵀ q``.  A singular cyclic
matrix (e.g. the periodic Laplacian, whose null space is the constant
vector) drives that denominator to zero even when ``A'`` itself is
fine, and the division would silently return ``±inf``.
:func:`correction_scale` guards it with a dtype-scaled threshold:
``check=True`` raises :class:`CyclicSingularError` naming the offending
batch rows; ``check=False`` warns and emits NaN for exactly those rows,
leaving the rest of the batch intact.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.core.solver import solve_batch
from repro.core.validation import (
    check_cyclic_batch_arrays,
    coerce_cyclic_batch_arrays,
)

__all__ = [
    "CyclicSingularError",
    "apply_cyclic_correction",
    "correction_denominator",
    "correction_scale",
    "cyclic_reduce",
    "singular_rows",
    "solve_periodic",
    "solve_periodic_batch",
]

#: Threshold multiplier for the singular-correction guard.  The
#: computed denominator of an exactly singular cyclic matrix lands
#: within a few ulps of zero (forward error of the inner ``A' q = u``
#: solve), so ``64·√n·eps`` catches it with orders-of-magnitude margin
#: while staying far below the O(1) denominators of well-posed systems.
_SINGULAR_TOL = 64.0


class CyclicSingularError(ValueError):
    """The Sherman–Morrison correction denominator ``1 + vᵀq`` vanished.

    Raised (under ``check=True``) when the cyclic matrix is singular or
    numerically so — the corrected solve would otherwise divide by ~0
    and return ``±inf`` with no diagnostic.
    """


def cyclic_reduce(a, b, c, *, check: bool = False):
    """Corner elimination: split the cyclic matrix into ``A' + u vᵀ``.

    Parameters are the ``(M, N)`` cyclic diagonals (corners live in
    ``a[:, 0]`` and ``c[:, -1]``).  Returns ``(ap, bp, cp, u, w)``:
    the strictly tridiagonal ``A'`` diagonals, the rank-one column
    ``u = (γ, 0, …, 0, c_{n−1})`` as an ``(M, N)`` batch of right-hand
    sides, and the weight ``w = a_0 / γ`` so that
    ``vᵀx = x_0 + w·x_{n−1}``.

    ``check=True`` additionally rejects a zero diagonal in ``A'``
    (pivot-free inner solves need ``b' != 0``).
    """
    m, n = b.shape
    dtype = b.dtype
    alpha = a[:, 0].copy()   # corner: row 0 <- row n-1
    beta = c[:, -1].copy()   # corner: row n-1 <- row 0
    gamma = -b[:, 0].copy()
    # avoid a zero gamma for pathological b_0
    gamma = np.where(gamma == 0, dtype.type(1), gamma)

    # strictly tridiagonal A': corners removed, b_0 and b_{n-1} adjusted
    bp = b.copy()
    bp[:, 0] = b[:, 0] - gamma
    bp[:, -1] = b[:, -1] - alpha * beta / gamma
    ap = a.copy()
    ap[:, 0] = 0.0
    cp = c.copy()
    cp[:, -1] = 0.0
    if check and np.any(bp == 0.0):
        raise ValueError(
            "zero on the main diagonal of the reduced system A' "
            "(pivot-free solvers need b != 0)"
        )

    # u vector per system: (gamma, 0, ..., 0, beta)
    u = np.zeros((m, n), dtype=dtype)
    u[:, 0] = gamma
    u[:, -1] = beta
    return ap, bp, cp, u, np.asarray(alpha / gamma)


def correction_denominator(q, w) -> np.ndarray:
    """``1 + vᵀq`` per batch row, with ``vᵀq = q_0 + w·q_{n−1}``."""
    return 1.0 + (q[:, 0] + w * q[:, -1])


def singular_rows(denom, n: int) -> np.ndarray:
    """Batch rows whose correction denominator is numerically zero.

    The threshold is dtype-scaled — ``64·√n·eps·(1 + |vᵀq|)`` — wide
    enough to catch an exactly singular cyclic matrix whose computed
    denominator is a few ulps from zero, narrow enough never to flag
    the O(1) denominators of diagonally dominant systems.
    """
    eps = np.finfo(denom.dtype).eps
    tol = eps * _SINGULAR_TOL * np.sqrt(float(n)) * (
        1.0 + np.abs(denom - 1.0)
    )
    return np.flatnonzero(np.abs(denom) <= tol)


def _describe_rows(bad: np.ndarray) -> str:
    rows = ", ".join(str(i) for i in bad[:8])
    more = "" if bad.size <= 8 else f" (+{bad.size - 8} more)"
    return f"[{rows}]{more}"


def correction_scale(denom, n: int, *, check: bool = True) -> np.ndarray:
    """``1 / (1 + vᵀq)`` with the singular-correction guard applied.

    ``check=True``: raise :class:`CyclicSingularError` naming the
    offending batch rows.  ``check=False``: warn once and return NaN
    scales for exactly those rows (the corrected solutions come out
    all-NaN instead of ``±inf``); healthy rows are untouched.
    """
    bad = singular_rows(denom, n)
    if bad.size:
        where = _describe_rows(bad)
        if check:
            raise CyclicSingularError(
                f"singular Sherman–Morrison correction: |1 + v·q| is "
                f"below the {denom.dtype.name} threshold in batch "
                f"row(s) {where} — the cyclic matrix has no unique "
                "solution (pass check=False for NaN output instead)"
            )
        warnings.warn(
            f"singular Sherman–Morrison correction in batch row(s) "
            f"{where}; emitting NaN for those systems",
            RuntimeWarning,
            stacklevel=3,
        )
        scale = np.empty_like(denom)
        good = np.ones(denom.shape, dtype=bool)
        good[bad] = False
        np.divide(1.0, denom, out=scale, where=good)
        scale[bad] = np.nan
        return scale
    return 1.0 / denom


def apply_cyclic_correction(y, q, w, scale, out=None) -> np.ndarray:
    """``x = y − (vᵀy · scale) q`` — the rank-one solution update.

    ``out``, if given, must not alias ``y`` or ``q``.  The operation
    sequence (multiply, then subtract) is identical with and without
    ``out``, so the two spellings are bitwise interchangeable.
    """
    vy = y[:, 0] + w * y[:, -1]
    factor = vy * scale
    if out is None:
        return y - factor[:, None] * q
    np.multiply(factor[:, None], q, out=out)
    np.subtract(y, out, out=out)
    return out


def solve_periodic_batch(
    a,
    b,
    c,
    d,
    *,
    algorithm: str = "auto",
    backend: str = "auto",
    check: bool = True,
    out=None,
    **kwargs,
) -> np.ndarray:
    """Solve ``M`` cyclic tridiagonal systems given as ``(M, N)`` diagonals.

    Parameters
    ----------
    a, b, c, d:
        Diagonals with the cyclic convention: ``a[:, 0]`` couples row 0
        to row ``N−1``; ``c[:, -1]`` couples row ``N−1`` to row 0 (no
        padding zeros — the corners are *used*).  All four must share
        one ``(M, N)`` shape.
    algorithm:
        ``"auto"``/``"hybrid"`` route the cyclic solve through the
        backend dispatch layer (``Capabilities.periodic`` is
        negotiated; repeated coefficients engage the engine's cyclic
        factorization cache and run an RHS-only sweep).  The direct
        algorithms (``"thomas"``, ``"cr"``, ``"pcr"``, ``"rd"``) run
        the classic two-inner-solve reduction in-process.
    backend:
        Registry backend name (``"auto"`` or e.g. ``"engine"``,
        ``"numpy"``, ``"threaded"``, ``"gpusim"``).  Only available
        with ``algorithm="auto"``/``"hybrid"``.
    check:
        Validate inputs and raise :class:`CyclicSingularError` when the
        Sherman–Morrison denominator vanishes.  ``check=False`` skips
        finiteness validation and instead warns + emits NaN for
        singular batch rows.  Diagonal *shapes* are validated in both
        modes (a mismatch is never meaningful for a cyclic system).
    out:
        Optional ``(M, N)`` output array.
    **kwargs:
        Solve options (``k``, ``fuse``, ``workers``, ``fingerprint``,
        …) forwarded to the dispatch layer / inner solves.

    Returns
    -------
    numpy.ndarray
        ``(M, N)`` solutions of the cyclic systems.

    Notes
    -----
    Requires ``N ≥ 3`` (a 2-cycle degenerates: both "corners" collide
    with the ordinary couplings).  After the call,
    ``repro.last_trace()`` describes the *cyclic* solve
    (``periodic=True``) rather than the inner q-solve.
    """
    if check:
        a, b, c, d = check_cyclic_batch_arrays(a, b, c, d)
    else:
        a, b, c, d = coerce_cyclic_batch_arrays(a, b, c, d)
    m, n = b.shape
    if n < 3:
        raise ValueError(f"cyclic solver needs N >= 3, got {n}")

    if algorithm in ("auto", "hybrid"):
        from repro.backends.registry import solve_via

        x, _ = solve_via(
            a, b, c, d,
            backend=backend, periodic=True,
            check=check, coerced=True, out=out, **kwargs,
        )
        return x

    if backend != "auto":
        raise TypeError(
            f"backend= selection requires algorithm='auto' or 'hybrid'; "
            f"algorithm={algorithm!r} runs its fixed direct path"
        )

    # classic direct path: corner-reduce, two inner solves, correction
    ap, bp, cp, u, w = cyclic_reduce(a, b, c)
    y = solve_batch(ap, bp, cp, d, algorithm=algorithm, check=check, **kwargs)
    q = solve_batch(ap, bp, cp, u, algorithm=algorithm, check=check, **kwargs)
    scale = correction_scale(correction_denominator(q, w), n, check=check)
    x = apply_cyclic_correction(y, q, w, scale, out=out)

    # the inner q-solve recorded a direct:<algorithm> trace; mark it as
    # the cyclic solve so last_trace() reflects what the caller asked for
    from repro.backends.trace import last_trace

    trace = last_trace()
    if trace is not None:
        trace.periodic = True
    return x


def solve_periodic(a, b, c, d, **kwargs) -> np.ndarray:
    """Single cyclic system convenience wrapper (1-D diagonals)."""
    a, b, c, d = (np.asarray(v) for v in (a, b, c, d))
    x = solve_periodic_batch(a[None], b[None], c[None], d[None], **kwargs)
    return x[0]
