"""Periodic (cyclic) tridiagonal systems via Sherman–Morrison.

Periodic boundary conditions produce *almost* tridiagonal systems with
two corner entries: row 0 couples to row ``n−1`` through ``a_0`` and row
``n−1`` couples to row 0 through ``c_{n−1}``.  Spectral/finite-difference
Poisson solvers on periodic domains (the paper's ref [6] family) hit
this constantly.

The classic reduction: write the cyclic matrix as ``A' + u vᵀ`` with
``A'`` strictly tridiagonal.  Choosing

.. math::

    u = (γ, 0, …, 0, c_{n-1})ᵀ, \\qquad v = (1, 0, …, 0, a_0 / γ)ᵀ

and subtracting ``u vᵀ`` from the corners modifies only ``b_0`` and
``b_{n−1}``.  Sherman–Morrison then needs two solves with ``A'``
(against ``d`` and against ``u``) — both of which this library does
batched, with whichever backend algorithm is requested:

.. math::

    x = y − \\frac{vᵀ y}{1 + vᵀ q}\\, q, \\qquad A' y = d,\\; A' q = u.

``γ = −b_0`` keeps ``A'`` comfortably nonsingular for dominant inputs.
"""

from __future__ import annotations

import numpy as np

from repro.core.solver import solve_batch

__all__ = ["solve_periodic", "solve_periodic_batch"]


def solve_periodic_batch(
    a, b, c, d, *, algorithm: str = "auto", check: bool = True, **kwargs
) -> np.ndarray:
    """Solve ``M`` cyclic tridiagonal systems given as ``(M, N)`` diagonals.

    Parameters
    ----------
    a, b, c, d:
        Diagonals with the cyclic convention: ``a[:, 0]`` couples row 0
        to row ``N−1``; ``c[:, -1]`` couples row ``N−1`` to row 0 (no
        padding zeros — the corners are *used*).
    algorithm, check, **kwargs:
        Forwarded to :func:`repro.core.solver.solve_batch` for the two
        inner solves.

    Returns
    -------
    numpy.ndarray
        ``(M, N)`` solutions of the cyclic systems.

    Notes
    -----
    Requires ``N ≥ 3`` (a 2-cycle degenerates: both "corners" collide
    with the ordinary couplings).
    """
    a, b, c, d = (np.atleast_2d(np.asarray(v)) for v in (a, b, c, d))
    m, n = b.shape
    if n < 3:
        raise ValueError(f"cyclic solver needs N >= 3, got {n}")
    dtype = np.result_type(a, b, c, d)
    if dtype.kind != "f":
        dtype = np.dtype(np.float64)
    a = a.astype(dtype, copy=True)
    b = b.astype(dtype, copy=True)
    c = c.astype(dtype, copy=True)
    d = d.astype(dtype, copy=False)

    alpha = a[:, 0].copy()   # corner: row 0 <- row n-1
    beta = c[:, -1].copy()   # corner: row n-1 <- row 0
    gamma = -b[:, 0].copy()
    # avoid a zero gamma for pathological b_0
    gamma = np.where(gamma == 0, dtype.type(1), gamma)

    # strictly tridiagonal A': corners removed, b_0 and b_{n-1} adjusted
    bp = b.copy()
    bp[:, 0] = b[:, 0] - gamma
    bp[:, -1] = b[:, -1] - alpha * beta / gamma
    ap = a.copy()
    ap[:, 0] = 0.0
    cp = c.copy()
    cp[:, -1] = 0.0

    # u vector per system: (gamma, 0, ..., 0, beta)
    u = np.zeros((m, n), dtype=dtype)
    u[:, 0] = gamma
    u[:, -1] = beta

    y = solve_batch(ap, bp, cp, d, algorithm=algorithm, check=check, **kwargs)
    q = solve_batch(ap, bp, cp, u, algorithm=algorithm, check=check, **kwargs)

    # v^T x = x_0 + (alpha / gamma) x_{n-1}
    vy = y[:, 0] + alpha / gamma * y[:, -1]
    vq = q[:, 0] + alpha / gamma * q[:, -1]
    factor = vy / (1.0 + vq)
    return y - factor[:, None] * q


def solve_periodic(a, b, c, d, **kwargs) -> np.ndarray:
    """Single cyclic system convenience wrapper (1-D diagonals)."""
    a, b, c, d = (np.asarray(v) for v in (a, b, c, d))
    x = solve_periodic_batch(a[None], b[None], c[None], d[None], **kwargs)
    return x[0]
