"""Thread-level parallel Thomas (p-Thomas) — Section III-B of the paper.

After ``k`` PCR steps, each original system of size ``N`` has become
``2^k`` independent systems whose elements sit *interleaved* in memory:
subsystem ``j`` occupies positions ``j, j + 2^k, j + 2·2^k, …``.  p-Thomas
assigns one thread per subsystem and runs the plain Thomas recurrence.

The interleaving is the point: at Thomas step ``l``, thread ``j`` touches
global position ``l·2^k + j`` — consecutive threads touch consecutive
addresses, so every access is fully coalesced (the paper: "PCR naturally
produces interleaved results which is [a] perfect match with p-Thomas").

The CPU realization below keeps the arrays in their interleaved layout
and vectorizes the per-step work across the ``(M, 2^k)`` thread grid,
which both computes the right answer and preserves the exact memory-walk
structure the coalescing analysis in :mod:`repro.kernels.pthomas_kernel`
reasons about.
"""

from __future__ import annotations

import numpy as np

__all__ = ["pthomas_solve_interleaved", "subsystem_lengths"]


def subsystem_lengths(n: int, k: int) -> np.ndarray:
    """Lengths of the ``2^k`` interleaved subsystems of an ``n``-row system.

    Subsystem ``j`` holds rows ``j, j + 2^k, …`` so its length is
    ``ceil((n − j) / 2^k)``.
    """
    g = 1 << k
    j = np.arange(g)
    return -(-(n - j) // g)


def pthomas_solve_interleaved(a, b, c, d, k: int) -> np.ndarray:
    """Solve the ``2^k`` interleaved subsystems of each batch row.

    Parameters
    ----------
    a, b, c, d:
        ``(M, N)`` diagonals *after* a ``k``-step PCR sweep: row ``i``
        couples only to rows ``i ± 2^k``.
    k:
        Number of PCR steps that produced the input.  ``k = 0`` reduces to
        plain batched Thomas.

    Returns
    -------
    numpy.ndarray
        ``(M, N)`` solutions in the original row order.

    Notes
    -----
    The sweep walks Thomas "levels" ``l = 0 … L−1`` where level ``l`` is
    the contiguous slab of rows ``[l·2^k, (l+1)·2^k)``; each level update
    is one vectorized operation over all ``M · 2^k`` threads.  Short
    subsystems (when ``2^k`` does not divide ``N``) are handled by
    masking: a thread whose subsystem has already ended keeps its state.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    c = np.asarray(c)
    d = np.asarray(d)
    m, n = b.shape
    g = 1 << k
    if g >= n:
        # Every subsystem is a single row: rows are already decoupled
        # (c_i refers past the end; PCR guarantees it is 0).
        return d / b
    L = -(-n // g)  # number of Thomas levels (longest subsystem length)

    dtype = b.dtype
    cp = np.zeros((m, n), dtype=dtype)
    dp = np.zeros((m, n), dtype=dtype)

    # Forward reduction, level by level.  Level l of subsystem j is global
    # row l*g + j; the slab [l*g, min((l+1)*g, n)) is contiguous.
    lo, hi = 0, min(g, n)
    cp[:, lo:hi] = c[:, lo:hi] / b[:, lo:hi]
    dp[:, lo:hi] = d[:, lo:hi] / b[:, lo:hi]
    for l in range(1, L):
        lo = l * g
        hi = min(lo + g, n)
        w = hi - lo
        prev = slice(lo - g, lo - g + w)
        cur = slice(lo, hi)
        denom = b[:, cur] - cp[:, prev] * a[:, cur]
        cp[:, cur] = c[:, cur] / denom
        dp[:, cur] = (d[:, cur] - dp[:, prev] * a[:, cur]) / denom

    # Backward substitution.  The *last* row of subsystem j is at level
    # L-1 when j < n - (L-1)*g, else at level L-2.
    x = np.empty((m, n), dtype=dtype)
    last_lo = (L - 1) * g
    x[:, last_lo:n] = dp[:, last_lo:n]
    for l in range(L - 2, -1, -1):
        lo = l * g
        hi = lo + g
        nxt_hi = min(hi + g, n)
        w_next = nxt_hi - hi  # threads that have a later row
        cur_with_next = slice(lo, lo + w_next)
        nxt = slice(hi, nxt_hi)
        x[:, cur_with_next] = (
            dp[:, cur_with_next] - cp[:, cur_with_next] * x[:, nxt]
        )
        if w_next < g and hi <= n:
            # Threads whose subsystem ends at this level: x = d'.
            tail = slice(lo + w_next, min(hi, n))
            x[:, tail] = dp[:, tail]
    return x
