"""Thread-level parallel Thomas (p-Thomas) — Section III-B of the paper.

After ``k`` PCR steps, each original system of size ``N`` has become
``2^k`` independent systems whose elements sit *interleaved* in memory:
subsystem ``j`` occupies positions ``j, j + 2^k, j + 2·2^k, …``.  p-Thomas
assigns one thread per subsystem and runs the plain Thomas recurrence.

The interleaving is the point: at Thomas step ``l``, thread ``j`` touches
global position ``l·2^k + j`` — consecutive threads touch consecutive
addresses, so every access is fully coalesced (the paper: "PCR naturally
produces interleaved results which is [a] perfect match with p-Thomas").

The CPU realization below keeps the arrays in their interleaved layout
and vectorizes the per-step work across the ``(M, 2^k)`` thread grid,
which both computes the right answer and preserves the exact memory-walk
structure the coalescing analysis in :mod:`repro.kernels.pthomas_kernel`
reasons about.  Every slab update is written with explicit ``out=``
kernels into preallocated state — the modified coefficients ``c'``/``d'``
and two thread-wide scratch rows — so a solve allocates nothing beyond
its result.  The state can be owned externally
(:class:`PThomasWorkspace`, pooled per plan by :mod:`repro.engine`) and
reused across repeated solves.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "PThomasWorkspace",
    "pthomas_solve_interleaved",
    "subsystem_lengths",
]


def subsystem_lengths(n: int, k: int) -> np.ndarray:
    """Lengths of the ``2^k`` interleaved subsystems of an ``n``-row system.

    Subsystem ``j`` holds rows ``j, j + 2^k, …`` so its length is
    ``ceil((n − j) / 2^k)``.
    """
    g = 1 << k
    j = np.arange(g)
    return -(-(n - j) // g)


class PThomasWorkspace:
    """Preallocated p-Thomas state for ``(M, N)`` solves after ``k`` steps.

    Holds the modified coefficients ``cp``/``dp`` (fully overwritten by
    every forward pass) and two ``(M, 2^k)`` scratch rows for the
    ``out=`` kernels.  Reusable across solves of the same shape.
    """

    def __init__(self, m: int, n: int, k: int, dtype):
        dtype = np.dtype(dtype)
        self.m, self.n, self.k, self.dtype = m, n, k, dtype
        g = min(1 << k, n)
        self.cp = np.empty((m, n), dtype=dtype)
        self.dp = np.empty((m, n), dtype=dtype)
        self.t1 = np.empty((m, g), dtype=dtype)
        self.t2 = np.empty((m, g), dtype=dtype)

    def compatible(self, m: int, n: int, k: int, dtype) -> bool:
        """True if this workspace fits a solve of the given shape."""
        return (
            self.m == m
            and self.n == n
            and self.k == k
            and self.dtype == np.dtype(dtype)
        )


def pthomas_solve_interleaved(
    a, b, c, d, k: int, *, workspace=None, out=None
) -> np.ndarray:
    """Solve the ``2^k`` interleaved subsystems of each batch row.

    Parameters
    ----------
    a, b, c, d:
        ``(M, N)`` diagonals *after* a ``k``-step PCR sweep: row ``i``
        couples only to rows ``i ± 2^k``.
    k:
        Number of PCR steps that produced the input.  ``k = 0`` reduces to
        plain batched Thomas.
    workspace:
        Optional :class:`PThomasWorkspace` reused across same-shape
        solves; omitted, state is allocated for this call.
    out:
        Optional ``(M, N)`` destination for the solution (e.g. a shard
        slice of a larger batch).  Must match shape and dtype.

    Returns
    -------
    numpy.ndarray
        ``(M, N)`` solutions in the original row order (``out`` if
        given, else freshly allocated — the workspace never aliases the
        result).

    Notes
    -----
    The sweep walks Thomas "levels" ``l = 0 … L−1`` where level ``l`` is
    the contiguous slab of rows ``[l·2^k, (l+1)·2^k)``; each level update
    is one vectorized operation over all ``M · 2^k`` threads.  Short
    subsystems (when ``2^k`` does not divide ``N``) are handled by
    masking: a thread whose subsystem has already ended keeps its state.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    c = np.asarray(c)
    d = np.asarray(d)
    m, n = b.shape
    g = 1 << k
    if out is not None and (out.shape != (m, n) or out.dtype != b.dtype):
        raise ValueError(
            f"out (shape {out.shape}, dtype {out.dtype}) does not fit "
            f"solve (shape ({m}, {n}), dtype {b.dtype})"
        )
    if g >= n:
        # Every subsystem is a single row: rows are already decoupled
        # (c_i refers past the end; PCR guarantees it is 0).
        if out is not None:
            np.divide(d, b, out=out)
            return out
        return d / b
    L = -(-n // g)  # number of Thomas levels (longest subsystem length)

    dtype = b.dtype
    if workspace is None:
        workspace = PThomasWorkspace(m, n, k, dtype)
    elif not workspace.compatible(m, n, k, dtype):
        raise ValueError(
            f"workspace (m={workspace.m}, n={workspace.n}, k={workspace.k}, "
            f"dtype={workspace.dtype}) does not fit solve "
            f"(m={m}, n={n}, k={k}, dtype={dtype})"
        )
    cp, dp = workspace.cp, workspace.dp

    # Forward reduction, level by level.  Level l of subsystem j is global
    # row l*g + j; the slab [l*g, min((l+1)*g, n)) is contiguous.
    lo, hi = 0, min(g, n)
    np.divide(c[:, lo:hi], b[:, lo:hi], out=cp[:, lo:hi])
    np.divide(d[:, lo:hi], b[:, lo:hi], out=dp[:, lo:hi])
    for l in range(1, L):
        lo = l * g
        hi = min(lo + g, n)
        w = hi - lo
        prev = slice(lo - g, lo - g + w)
        cur = slice(lo, hi)
        t1, t2 = workspace.t1[:, :w], workspace.t2[:, :w]
        # denom = b - cp_prev * a
        np.multiply(cp[:, prev], a[:, cur], out=t1)
        np.subtract(b[:, cur], t1, out=t1)
        np.divide(c[:, cur], t1, out=cp[:, cur])
        # dp = (d - dp_prev * a) / denom
        np.multiply(dp[:, prev], a[:, cur], out=t2)
        np.subtract(d[:, cur], t2, out=t2)
        np.divide(t2, t1, out=dp[:, cur])

    # Backward substitution.  The *last* row of subsystem j is at level
    # L-1 when j < n - (L-1)*g, else at level L-2.
    x = out if out is not None else np.empty((m, n), dtype=dtype)
    last_lo = (L - 1) * g
    x[:, last_lo:n] = dp[:, last_lo:n]
    for l in range(L - 2, -1, -1):
        lo = l * g
        hi = lo + g
        nxt_hi = min(hi + g, n)
        w_next = nxt_hi - hi  # threads that have a later row
        cur_with_next = slice(lo, lo + w_next)
        nxt = slice(hi, nxt_hi)
        t1 = workspace.t1[:, :w_next]
        np.multiply(cp[:, cur_with_next], x[:, nxt], out=t1)
        np.subtract(dp[:, cur_with_next], t1, out=x[:, cur_with_next])
        if w_next < g and hi <= n:
            # Threads whose subsystem ends at this level: x = d'.
            tail = slice(lo + w_next, min(hi, n))
            x[:, tail] = dp[:, tail]
    return x
