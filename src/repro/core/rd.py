"""Recursive doubling (RD) — Stone (1973), the third classic parallel
tridiagonal algorithm the paper surveys (Section I / [13]).

RD parallelizes the *Thomas recurrences themselves* instead of reducing
the matrix.  The forward-elimination recurrence

.. math::  c'_i = \\frac{c_i}{b_i - a_i c'_{i-1}}

is a Möbius (linear-fractional) map of ``c'_{i-1}`` and is therefore the
projective action of the 2×2 matrix ``[[0, c_i], [-a_i, b_i]]``; its
prefix products are computed in ``log n`` doubling steps.  With the
``c'`` values in hand, the modified-RHS recurrence and the backward
substitution are first-order *affine* recurrences

.. math::  y_i = \\alpha_i y_{i-1} + \\beta_i

whose prefix compositions ``(α, β) ∘ (α', β') = (αα', αβ' + β)`` also
double.  Total: ``≈ 3 log n`` parallel steps of O(n) width — the same
O(n log n) work class as PCR, with somewhat heavier per-step arithmetic
(2×2 matrix products), which is why the paper's hybrid uses PCR rather
than RD as its front-end.

Matrices are renormalized by their max-abs entry at every doubling level;
the Möbius action is scale-invariant, so this costs nothing numerically
and prevents overflow for long systems.
"""

from __future__ import annotations

import numpy as np

from repro.core.validation import check_batch_arrays, check_system_arrays

__all__ = ["rd_solve", "rd_solve_batch"]


def _prefix_mobius(p, q, r, s):
    """In-place-free inclusive prefix product of 2×2 matrices along axis -1.

    Entry ``i`` becomes ``M_i · M_{i-1} · … · M_0``.  Returns the four
    entry arrays of the prefixes.
    """
    n = p.shape[-1]
    step = 1
    while step < n:
        # prefix[i] = current[i] @ prefix_before[i-step]  for i >= step.
        # Snapshot both operand ranges: the write windows overlap the
        # read windows whenever n > 2*step.
        p_l = p[..., :-step].copy()
        q_l = q[..., :-step].copy()
        r_l = r[..., :-step].copy()
        s_l = s[..., :-step].copy()
        p_h = p[..., step:].copy()
        q_h = q[..., step:].copy()
        r_h = r[..., step:].copy()
        s_h = s[..., step:].copy()
        p[..., step:] = p_h * p_l + q_h * r_l
        q[..., step:] = p_h * q_l + q_h * s_l
        r[..., step:] = r_h * p_l + s_h * r_l
        s[..., step:] = r_h * q_l + s_h * s_l
        norm = np.maximum.reduce(
            [np.abs(p), np.abs(q), np.abs(r), np.abs(s)]
        )
        norm[norm == 0] = 1.0
        p /= norm
        q /= norm
        r /= norm
        s /= norm
        step *= 2
    return p, q, r, s


def _prefix_affine(alpha, beta):
    """Inclusive prefix composition of affine maps ``y ↦ α y + β``.

    After the scan, entry ``i`` holds the composition
    ``f_i ∘ f_{i-1} ∘ … ∘ f_0``; applied to the seed ``y_{-1} = 0`` the
    composed ``β`` is exactly ``y_i``.
    """
    n = alpha.shape[-1]
    step = 1
    while step < n:
        a_h = alpha[..., step:].copy()
        alpha[..., step:] = a_h * alpha[..., :-step]
        beta[..., step:] = a_h * beta[..., :-step] + beta[..., step:]
        step *= 2
    return alpha, beta


def rd_solve_batch(a, b, c, d, *, check: bool = True) -> np.ndarray:
    """Solve an ``(M, N)`` batch by recursive doubling."""
    if check:
        a, b, c, d = check_batch_arrays(a, b, c, d)
    else:
        a, b, c, d = (np.asarray(v) for v in (a, b, c, d))
    m, n = b.shape
    dtype = b.dtype
    if n == 1:
        return d / b

    # --- forward elimination: c'_i via Möbius prefix products ---------
    # M_i = [[0, c_i], [-a_i, b_i]]; c'_i = proj(M_i ... M_0) applied to
    # the "point at seed" — with a_0 = 0 the first matrix already encodes
    # c'_0 = c_0 / b_0 when acting on any finite seed; we use seed 0.
    p = np.zeros((m, n), dtype=dtype)
    q = c.copy()
    r = -a.copy()
    s = b.copy()
    p, q, r, s = _prefix_mobius(p, q, r, s)
    # Apply prefixes to seed t = 0:  c'_i = (p·0 + q)/(r·0 + s) = q / s.
    cp = q / s

    # --- modified RHS: d'_i = α_i d'_{i-1} + β_i ------------------------
    # denom_i = b_i - a_i c'_{i-1} (denominator shared with c' recurrence)
    cprev = np.zeros((m, n), dtype=dtype)
    cprev[:, 1:] = cp[:, :-1]
    denom = b - a * cprev
    alpha = -a / denom
    beta = d / denom
    _, dp = _prefix_affine(alpha, beta)

    # --- backward substitution: x_i = d'_i - c'_i x_{i+1} ---------------
    # Reverse-order affine recurrence with α = -c', β = d'.
    alpha_b = (-cp)[:, ::-1].copy()
    beta_b = dp[:, ::-1].copy()
    _, xb = _prefix_affine(alpha_b, beta_b)
    return xb[:, ::-1].copy()


def rd_solve(a, b, c, d, *, check: bool = True) -> np.ndarray:
    """Solve one system by recursive doubling."""
    if check:
        a, b, c, d = check_system_arrays(a, b, c, d)
    x = rd_solve_batch(a[None, :], b[None, :], c[None, :], d[None, :], check=False)
    return x[0]
