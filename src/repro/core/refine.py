"""Mixed-precision solves with iterative refinement.

The paper's ref [10] (Göddeke & Strzodka) runs its GPU tridiagonal
solves in *mixed precision*: the expensive solve in float32 — twice the
arithmetic rate and half the traffic on Fermi-class GPUs, as the Fig. 12
fp32/fp64 gap shows — wrapped in a float64 **iterative refinement**
loop that restores double accuracy:

1. solve ``A x₀ = d`` in fp32;
2. compute the residual ``r = d − A x`` in fp64 (cheap: one fused
   sweep over the diagonals);
3. solve the *correction* ``A δ = r`` in fp32 and update ``x += δ``;
4. repeat until the residual stalls or the iteration cap hits.

For diagonally dominant systems the error contracts by roughly the
fp32 epsilon each pass, so 2–3 corrections reach fp64 levels.  The
factorization variant reuses one fp32 factorization across all
corrections — the production pattern.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.factorize import HybridFactorization
from repro.core.validation import check_batch_arrays

__all__ = ["RefinementResult", "solve_mixed_precision"]


@dataclass
class RefinementResult:
    """Outcome of a mixed-precision solve."""

    x: np.ndarray
    iterations: int
    residuals: list = field(default_factory=list)  # max-norm after each pass

    @property
    def converged(self) -> bool:
        """Did the final residual reach the requested tolerance?"""
        return bool(self.residuals) and self.residuals[-1] <= self._tol

    _tol: float = np.inf


def _residual(a, b, c, d, x) -> np.ndarray:
    r = d - b * x
    r[:, 1:] -= a[:, 1:] * x[:, :-1]
    r[:, :-1] -= c[:, :-1] * x[:, 1:]
    return r


def solve_mixed_precision(
    a,
    b,
    c,
    d,
    *,
    k: int | None = None,
    rtol: float = 1e-12,
    max_iter: int = 5,
    check: bool = True,
) -> RefinementResult:
    """Solve an fp64 batch through fp32 solves + fp64 refinement.

    Parameters
    ----------
    a, b, c, d:
        fp64 ``(M, N)`` padded diagonals.
    k:
        Hybrid PCR depth for the inner fp32 factorization (default: the
        Table III heuristic).
    rtol:
        Target max-norm residual relative to ``‖d‖∞ + ‖A‖∞‖x‖∞``.
    max_iter:
        Correction passes after the initial solve.

    Returns
    -------
    RefinementResult
        Solution, passes used, and the residual history.
    """
    if check:
        a, b, c, d = check_batch_arrays(a, b, c, d)
    else:
        a, b, c, d = (np.asarray(v, dtype=np.float64) for v in (a, b, c, d))
    a64, b64, c64, d64 = (np.asarray(v, dtype=np.float64) for v in (a, b, c, d))

    # one fp32 factorization serves the initial solve and every correction
    fact32 = HybridFactorization.factor(
        a64.astype(np.float32),
        b64.astype(np.float32),
        c64.astype(np.float32),
        k=k,
        check=False,
    )

    x = fact32.solve(d64.astype(np.float32)).astype(np.float64)
    norm_a = np.max(np.abs(a64) + np.abs(b64) + np.abs(c64))
    result = RefinementResult(x=x, iterations=0)
    result._tol = rtol

    for it in range(1, max_iter + 1):
        r = _residual(a64, b64, c64, d64, x)
        scale = max(np.abs(d64).max() + norm_a * np.abs(x).max(),
                    np.finfo(np.float64).tiny)
        rel = float(np.abs(r).max() / scale)
        result.residuals.append(rel)
        result.iterations = it - 1
        if rel <= rtol:
            break
        delta = fact32.solve(r.astype(np.float32)).astype(np.float64)
        x = x + delta
        result.x = x
        result.iterations = it
    else:
        # record the final residual after the last correction
        r = _residual(a64, b64, c64, d64, x)
        scale = max(np.abs(d64).max() + norm_a * np.abs(x).max(),
                    np.finfo(np.float64).tiny)
        result.residuals.append(float(np.abs(r).max() / scale))

    return result
