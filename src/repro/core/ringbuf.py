"""Fixed-capacity sliding row caches — the paper's ring-buffer window.

The buffered sliding window of Section III-A keeps each level's trailing
rows in a *fixed* shared-memory allocation and manages it "with an
offset instead of a rotate" (the reason Table I ships ``3·f(k)`` cache
capacity when the dependency math only needs ``2·f(k)``; see
:mod:`repro.core.window`).  The seed CPU realization lost that property:
every sub-tile round re-built each level cache with ``np.concatenate``,
churning fresh allocations proportional to the whole sweep.

:class:`RingRows` restores the paper's discipline.  It owns one
fixed-capacity ``(M, C)`` backing array per channel and exposes the
*logical* window — a contiguous run of rows — through three operations:

* :meth:`append` — reserve ``w`` new trailing rows and hand back
  writable views (producers write in place; nothing is copied in);
* :meth:`trim_to` — drop leading rows down to a retention budget by
  advancing the start offset (free);
* :meth:`view` — read a contiguous row range of the current window.

When an append would run past the physical capacity the retained rows
are compacted back to column 0 — the analogue of the paper's once-per-
round "cache management copy of the top+middle contents"
(:meth:`repro.core.window.BufferedSlidingWindow.round_cost`).  Because
the logical window always occupies one contiguous column range, callers
slice it exactly like a plain array: no wrap-around split, no modular
arithmetic, and ``out=`` kernels can write straight into it.

Used by :class:`repro.core.tiled_pcr.TiledPCR` (per-level PCR caches),
:class:`repro.core.streaming.StreamingPipeline` (generic level caches),
and owned across calls by :mod:`repro.engine` plan workspaces.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RingRows"]


class RingRows:
    """A multi-channel sliding cache of matrix rows with fixed capacity.

    Parameters
    ----------
    m:
        Batch size — every channel array has shape ``(m, capacity)``.
    capacity:
        Physical columns per channel.  Must cover the caller's retention
        budget plus the largest single append (asserted at append time).
    dtype:
        Element dtype of every channel, or a sequence of dtypes (one per
        channel) when channels differ.
    channels:
        Number of per-row values (4 for an ``(a, b, c, d)`` quadruple).
    """

    __slots__ = ("data", "capacity", "off", "width", "compactions")

    def __init__(self, m: int, capacity: int, dtype, channels: int = 4):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if channels < 1:
            raise ValueError(f"channels must be >= 1, got {channels}")
        dtypes = (
            list(dtype)
            if isinstance(dtype, (list, tuple))
            else [dtype] * channels
        )
        if len(dtypes) != channels:
            raise ValueError(
                f"got {len(dtypes)} dtypes for {channels} channels"
            )
        self.data = tuple(np.empty((m, capacity), dtype=dt) for dt in dtypes)
        self.capacity = capacity
        self.off = 0  #: physical column where the logical window starts
        self.width = 0  #: logical rows currently held
        self.compactions = 0  #: ledger: compaction copies performed

    def reset(self) -> None:
        """Empty the window (backing storage is retained for reuse)."""
        self.off = 0
        self.width = 0

    def append(self, w: int) -> tuple:
        """Reserve ``w`` trailing rows; return writable per-channel views.

        The views are only valid until the next :meth:`append` /
        :meth:`reset` (a compaction may move the window).
        """
        if w < 0:
            raise ValueError(f"append width must be >= 0, got {w}")
        if self.width + w > self.capacity:
            raise ValueError(
                f"append of {w} rows overflows capacity {self.capacity} "
                f"(window already holds {self.width})"
            )
        if self.off + self.width + w > self.capacity:
            # Compact: slide the retained rows back to column 0.  NumPy
            # buffers the overlapping copy internally; the cost is the
            # paper's per-round cache-management copy.
            for ch in self.data:
                ch[:, : self.width] = ch[:, self.off : self.off + self.width]
            self.off = 0
            self.compactions += 1
        j0 = self.off + self.width
        self.width += w
        return tuple(ch[:, j0 : j0 + w] for ch in self.data)

    def view(self, i0: int, i1: int) -> tuple:
        """Per-channel views of logical rows ``[i0, i1)`` of the window."""
        if not 0 <= i0 <= i1 <= self.width:
            raise IndexError(
                f"view [{i0}, {i1}) outside window of width {self.width}"
            )
        return tuple(
            ch[:, self.off + i0 : self.off + i1] for ch in self.data
        )

    def trim_to(self, keep: int) -> None:
        """Drop leading rows so at most ``keep`` remain (offset advance)."""
        if keep < 0:
            raise ValueError(f"keep must be >= 0, got {keep}")
        if self.width > keep:
            self.off += self.width - keep
            self.width = keep
