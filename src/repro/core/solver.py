"""Top-level public API: ``solve`` and ``solve_batch``.

These are the two functions a downstream user needs:

>>> import numpy as np
>>> from repro import solve
>>> n = 1000
>>> rng = np.random.default_rng(0)
>>> a = rng.standard_normal(n); a[0] = 0
>>> c = rng.standard_normal(n); c[-1] = 0
>>> b = 4 + np.abs(a) + np.abs(c)
>>> d = rng.standard_normal(n)
>>> x = solve(a, b, c, d)
>>> bool(np.allclose(b * x + np.r_[0, a[1:] * x[:-1]] + np.r_[c[:-1] * x[1:], 0], d))
True

``algorithm="auto"`` picks the hybrid with the paper's Table III
transition; explicit names select a specific algorithm (useful for
comparisons and education).

``auto``/``hybrid`` solves build a
:class:`~repro.backends.request.SolveRequest` and dispatch it through
the **backend registry** (:mod:`repro.backends`): capability
negotiation against the request picks an execution backend (the
plan-caching engine by default; ``workers=W`` routes to the
thread-sharded backend; ``backend="name"`` forces one), and every
solve records a :class:`~repro.backends.trace.SolveTrace` queryable
via :func:`repro.last_trace`.  Results are bitwise identical across
the engine, numpy-reference, and threaded backends.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.cr import cr_solve_batch
from repro.core.pcr import pcr_solve_batch
from repro.core.rd import rd_solve_batch
from repro.core.thomas import thomas_solve_batch
from repro.core.validation import (
    check_batch_arrays,
    check_system_arrays,
    coerce_batch_arrays,
)

__all__ = ["solve", "solve_batch", "ALGORITHMS"]

#: Algorithms accepted by :func:`solve` / :func:`solve_batch`.
ALGORITHMS = ("auto", "hybrid", "thomas", "cr", "pcr", "rd")

_DIRECT = {
    "thomas": thomas_solve_batch,
    "cr": cr_solve_batch,
    "pcr": pcr_solve_batch,
    "rd": rd_solve_batch,
}


def solve_batch(
    a,
    b,
    c,
    d,
    *,
    algorithm: str = "auto",
    backend: str = "auto",
    check: bool = True,
    **kwargs,
) -> np.ndarray:
    """Solve ``M`` tridiagonal systems given as ``(M, N)`` diagonals.

    Parameters
    ----------
    a, b, c, d:
        Padded diagonals (``a[:, 0] == c[:, -1] == 0``); each batch row is
        one system.
    algorithm:
        One of ``"auto"`` (hybrid with Table III transition), ``"hybrid"``,
        ``"thomas"``, ``"cr"``, ``"pcr"``, ``"rd"``.
    backend:
        Registry backend for the hybrid/auto algorithms: ``"auto"``
        (capability negotiation + router) or a registered name —
        ``"engine"``, ``"numpy"``, ``"threaded"``, ``"gpusim"``…  See
        :mod:`repro.backends`.
    check:
        Validate inputs (recommended; disable only in hot loops).
        Inputs are *coerced* (lists → arrays, uniform float dtype)
        unconditionally; ``check=False`` only skips the validation.
    **kwargs:
        For the hybrid/auto algorithms: the solve-request options
        (``k``, ``fuse``, ``n_windows``, ``subtile_scale``,
        ``heuristic``, ``parallelism``) plus ``workers=W`` to shard the
        batch across a thread pool and ``fingerprint`` to control the
        factorization cache — ``None`` (default) auto-detects repeated
        coefficients where the RHS-only path is bitwise identical
        (``k = 0``), ``True`` forces prepared execution (``k > 0``
        agrees to rounding), ``False`` disables fingerprinting.  For
        coefficients known to be fixed, :func:`repro.prepare` returns
        an explicit handle that skips the hashing too.

    Returns
    -------
    numpy.ndarray
        ``(M, N)`` solutions.
    """
    if algorithm not in ALGORITHMS:
        raise ValueError(f"unknown algorithm {algorithm!r}; pick from {ALGORITHMS}")
    if check:
        a, b, c, d = check_batch_arrays(a, b, c, d)
    else:
        a, b, c, d = coerce_batch_arrays(a, b, c, d)
    if algorithm in ("auto", "hybrid"):
        from repro.backends import solve_via

        x, _ = solve_via(a, b, c, d, backend=backend, coerced=True, **kwargs)
        return x
    if backend != "auto":
        raise TypeError(
            f"algorithm {algorithm!r} runs directly; backend= applies to "
            "the hybrid/auto algorithms only"
        )
    if kwargs:
        raise TypeError(
            f"algorithm {algorithm!r} accepts no extra options, got {sorted(kwargs)}"
        )
    from repro.backends.registry import record_direct_trace

    t0 = time.perf_counter()
    x = _DIRECT[algorithm](a, b, c, d, check=False)
    record_direct_trace(algorithm, b, time.perf_counter() - t0)
    return x


def solve(
    a,
    b,
    c,
    d,
    *,
    algorithm: str = "auto",
    backend: str = "auto",
    check: bool = True,
    **kwargs,
):
    """Solve one tridiagonal system given as 1-D padded diagonals.

    See :func:`solve_batch` for the parameters; this is the ``M = 1``
    convenience wrapper.
    """
    if check:
        a, b, c, d = check_system_arrays(a, b, c, d)
    a, b, c, d = (np.asarray(v) for v in (a, b, c, d))
    x = solve_batch(
        a[None, :], b[None, :], c[None, :], d[None, :],
        algorithm=algorithm, backend=backend, check=False, **kwargs,
    )
    return x[0]
