"""Generalized buffered sliding window — the paper's future work, built.

Section VI: "The buffered sliding window approach can also be applied
to other types of divide-and-conquer type algorithms.  Future work
includes further developing the approach into a generalized strategy."

This module is that generalization.  The essential structure of tiled
PCR is not PCR-specific: it is a **pipeline of local levels**, where
level ``l+1`` at position ``i`` reads level ``l`` within a bounded reach
``[i − r_l, i + r_l]``.  Any such pipeline can be streamed through a
bounded cache:

* the level frontiers obey ``F_{l+1} = F_l − r_l``, so outputs lag raw
  input by ``Σ r_l``;
* level ``l`` must retain its trailing ``2·r_l`` rows (the same
  dependency algebra that gives tiled PCR its ``2·f(k)`` cache);
* out-of-domain rows are synthesized by a user-supplied boundary fill,
  exactly like PCR's inert identity rows.

:class:`StreamingPipeline` implements the streaming executor for an
arbitrary :class:`Level` list and verifies itself against the oracle
(applying each level to the whole array).  Two shipped applications:

* :func:`pcr_levels` — k-step PCR expressed as a pipeline (used by the
  tests to cross-check the dedicated :class:`~repro.core.tiled_pcr.TiledPCR`);
* :func:`jacobi_smoother_levels` — a k-sweep weighted-Jacobi stencil
  smoother, the multigrid building block of the paper's refs [9][10],
  streamed with the same cache discipline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.ringbuf import RingRows

__all__ = [
    "Level",
    "StreamingPipeline",
    "StreamCounters",
    "pcr_levels",
    "jacobi_smoother_levels",
]


@dataclass(frozen=True)
class Level:
    """One local-update level of a streaming pipeline.

    Attributes
    ----------
    apply:
        ``apply(window) -> out`` where ``window`` is a tuple of channel
        arrays covering ``w + left + right`` consecutive rows of the
        previous level and ``out`` the ``w`` produced rows (same channel
        count unless ``out_channels`` says otherwise).  Must be a pure
        function of the window (the executor chooses the chunking).
    left, right:
        Dependency reach: output row ``i`` may read input rows
        ``[i − left, i + right]``.
    """

    apply: Callable
    left: int
    right: int

    def __post_init__(self) -> None:
        if self.left < 0 or self.right < 0:
            raise ValueError("level reach must be non-negative")


@dataclass
class StreamCounters:
    """Ledger of a streaming run."""

    rows_loaded: int = 0
    rows_produced: int = 0
    rounds: int = 0
    cache_rows_peak: int = 0


@dataclass
class StreamingPipeline:
    """Streams a level pipeline over a long axis with bounded caches.

    Parameters
    ----------
    levels:
        The pipeline, level 0 applied first.
    boundary_fill:
        ``boundary_fill(m, w, dtype) -> tuple`` producing ``w`` synthetic
        out-of-domain rows per channel such that in-domain results are
        unaffected (PCR: identity rows; stencils: zero/reflection — the
        caller guarantees the algebraic inertness, as the paper's
        identity rows do).
    chunk:
        Raw rows consumed per round (the sub-tile size).
    """

    levels: list
    boundary_fill: Callable
    chunk: int = 64
    counters: StreamCounters = field(default_factory=StreamCounters)

    def __post_init__(self) -> None:
        if not self.levels:
            raise ValueError("need at least one level")
        if self.chunk < 1:
            raise ValueError(f"chunk must be >= 1, got {self.chunk}")

    @property
    def total_lag(self) -> int:
        """Rows by which the final output trails the raw input.

        Only the *trailing* reach delays the frontier: producing row
        ``i`` at level ``l+1`` waits for input row ``i + right_l``, so
        the lag is ``Σ right_l``; the ``left_l`` reaches size the caches.
        """
        return sum(lv.right for lv in self.levels)

    def cache_rows(self) -> int:
        """Dependency-minimum bounded state: ``Σ (left_l + right_l)``.

        The executor's working buffers additionally hold one in-flight
        chunk per level while a round is being processed — the analogue
        of the paper's bottom buffer (see ``counters.cache_rows_peak``).
        """
        return sum(lv.left + lv.right for lv in self.levels)

    # ------------------------------------------------------------------
    def run(self, channels: tuple, emit=None) -> tuple | None:
        """Stream the pipeline over ``channels`` (each ``(M, N)``).

        Returns the final-level arrays (or ``None`` when ``emit`` is
        given; ``emit(e0, e1, out_channels)`` receives ascending,
        non-overlapping slabs covering ``[0, N)``).
        """
        channels = tuple(np.asarray(ch) for ch in channels)
        m, n = channels[0].shape
        dtype = channels[0].dtype
        L = len(self.levels)
        self.counters = StreamCounters()

        out = None
        if emit is None:
            out_holder: dict = {}

            def emit_to_out(e0, e1, ch):
                if "arrays" not in out_holder:
                    out_holder["arrays"] = tuple(
                        np.empty((m, n), dtype=x.dtype) for x in ch
                    )
                for dst, src in zip(out_holder["arrays"], ch):
                    dst[:, e0:e1] = src

            sink = emit_to_out
        else:
            sink = emit

        # Per-level trailing caches (fixed-capacity ring buffers) and
        # frontiers.  Ring ``l`` holds level ``l``'s *input*; it is sized
        # for the retention budget plus append/compaction headroom and
        # never reallocates.  Rings for l > 0 are created on the first
        # rows their producing level emits (fixing channel dtypes then);
        # until that moment the level cannot advance anyway.
        keeps = [lv.left + lv.right for lv in self.levels]
        init_w = [max(1, keeps[l]) for l in range(L)]
        lag0 = sum(lv.right for lv in self.levels)
        start = -sum(lv.left + lv.right for lv in self.levels)  # warm-up zone
        S = self.chunk

        def make_ring(l: int, like: tuple) -> RingRows:
            ring = RingRows(
                m,
                init_w[l] + 2 * S,
                [np.result_type(dtype, x.dtype) for x in like],
                channels=len(like),
            )
            fill = self.boundary_fill(m, init_w[l], dtype)
            for dst, src in zip(ring.append(init_w[l]), fill):
                dst[...] = src
            return ring

        rings: list = [make_ring(0, channels)] + [None] * (L - 1)
        frontiers = [start] * (L + 1)
        pos = start
        peak = 0

        while frontiers[L] < n:
            # 1. fetch one chunk of raw rows (boundary-filled outside)
            lo, hi = pos, pos + S
            in_lo, in_hi = max(lo, 0), min(hi, n)
            views = rings[0].append(S)
            if in_lo >= in_hi:
                # the whole chunk lies outside the domain
                fill = self.boundary_fill(m, hi - lo, dtype)
                for dst, src in zip(views, fill):
                    dst[...] = src
            else:
                if lo < in_lo:
                    fill = self.boundary_fill(m, in_lo - lo, dtype)
                    for dst, src in zip(views, fill):
                        dst[:, : in_lo - lo] = src
                for dst, ch in zip(views, channels):
                    dst[:, in_lo - lo : in_hi - lo] = ch[:, in_lo:in_hi]
                self.counters.rows_loaded += (in_hi - in_lo) * m
                if hi > in_hi:
                    fill = self.boundary_fill(m, hi - in_hi, dtype)
                    for dst, src in zip(views, fill):
                        dst[:, in_hi - lo :] = src
            pos = hi
            frontiers[0] = hi

            # 2. advance each level as far as its input frontier allows
            for l, lv in enumerate(self.levels):
                new_f = frontiers[l] - lv.right
                old_f = frontiers[l + 1]
                w = new_f - old_f
                if w <= 0:
                    continue
                ring = rings[l]
                buf_lo = frontiers[l] - ring.width
                i0 = (old_f - lv.left) - buf_lo
                # the window's upper edge new_f + right == frontiers[l],
                # i.e. exactly the ring's trailing row
                window = ring.view(i0, ring.width)
                produced = lv.apply(window)
                if produced[0].shape[1] != w:
                    raise ValueError(
                        f"level {l} produced {produced[0].shape[1]} rows, "
                        f"expected {w}"
                    )
                frontiers[l + 1] = new_f
                if l + 1 < L:
                    if rings[l + 1] is None:
                        rings[l + 1] = make_ring(l + 1, produced)
                    for dst, src in zip(rings[l + 1].append(w), produced):
                        dst[...] = src
                else:
                    e0, e1 = max(old_f, 0), min(new_f, n)
                    if e0 < e1:
                        sink(
                            e0,
                            e1,
                            tuple(x[:, e0 - old_f : e1 - old_f] for x in produced),
                        )
                        self.counters.rows_produced += (e1 - e0) * m

            # 3. trim caches to their dependency budget (offset advance)
            for l, lv in enumerate(self.levels):
                if rings[l] is None:
                    continue
                needed_from = frontiers[l + 1] - lv.left
                rings[l].trim_to(max(1, frontiers[l] - needed_from))
            peak = max(
                peak, sum(r.width for r in rings if r is not None)
            )
            self.counters.rounds += 1

        self.counters.cache_rows_peak = peak
        if emit is None:
            return out_holder["arrays"]
        return out

    def run_oracle(self, channels: tuple) -> tuple:
        """Apply every level to the whole (boundary-padded) axis at once —
        the non-streaming reference the streamed result must equal."""
        channels = tuple(np.asarray(ch) for ch in channels)
        m, n = channels[0].shape
        dtype = channels[0].dtype
        pad = max(1, sum(lv.left + lv.right for lv in self.levels))
        cur = tuple(
            np.concatenate(
                [
                    self.boundary_fill(m, pad, dtype)[i],
                    ch,
                    self.boundary_fill(m, pad, dtype)[i],
                ],
                axis=1,
            )
            for i, ch in enumerate(channels)
        )
        lo, hi = pad, pad + n
        for lv in self.levels:
            w = cur[0].shape[1] - lv.left - lv.right
            out = lv.apply(cur)
            assert out[0].shape[1] == w
            lo -= lv.left
            cur = out
        return tuple(x[:, lo : lo + n] for x in cur)


# ---------------------------------------------------------------------------
# shipped applications
# ---------------------------------------------------------------------------


def pcr_levels(k: int) -> tuple:
    """k-step PCR as a generic pipeline (level l has reach 2^l each side).

    Returns ``(levels, boundary_fill)`` for a 4-channel ``(a, b, c, d)``
    stream; the result equals :func:`repro.core.pcr.pcr_sweep`.
    """
    from repro.core.tiled_pcr import _identity_rows, _pcr_local

    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")

    def make(level):
        s = 1 << level
        return Level(apply=lambda q, s=s: _pcr_local(q, s), left=s, right=s)

    def fill(m, w, dtype):
        return _identity_rows(m, w, dtype)

    return [make(l) for l in range(k)], fill


def jacobi_smoother_levels(k: int, omega: float = 2.0 / 3.0) -> tuple:
    """k damped-Jacobi sweeps of the 1-D Poisson stencil as a pipeline.

    Channels are ``(u, f)``: each level replaces ``u`` with one weighted
    Jacobi update ``u ← (1−ω)u + ω(u_{i−1} + u_{i+1} + h²f)/2`` and
    passes ``f`` through.  Boundary semantics are the *zero-extended
    field*: the domain is embedded in an infinite zero field and the
    sweeps act on the extension too (virtual rows are computed once,
    not re-pinned per sweep) — the natural semantics of a streamed
    pipeline, equal to padding the line with ``k`` zeros, sweeping the
    whole array and cropping.  The classic smoother of the paper's
    multigrid references, now streamable over arbitrarily long lines
    with O(k) state.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if not 0.0 < omega <= 1.0:
        raise ValueError(f"omega must be in (0, 1], got {omega}")

    def apply(window):
        u, f = window
        w = u.shape[1] - 2
        centre = u[:, 1 : 1 + w]
        jac = 0.5 * (u[:, :w] + u[:, 2 : 2 + w] + f[:, 1 : 1 + w])
        return ((1.0 - omega) * centre + omega * jac, f[:, 1 : 1 + w])

    def fill(m, w, dtype):
        z = np.zeros((m, w), dtype=dtype)
        return (z, z.copy())

    return [Level(apply=apply, left=1, right=1) for _ in range(k)], fill
