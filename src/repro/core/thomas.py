"""Thomas algorithm: Gaussian elimination specialized to tridiagonal systems.

Section II-A.1 of the paper.  Two phases:

* **forward reduction** — eliminate the sub-diagonal top-to-bottom
  (Eqs. 2-3),
* **backward substitution** — solve unknowns bottom-to-top (Eq. 4).

The recurrence is inherently sequential in the row index, so the
parallelism available to a batch of ``M`` systems is exactly ``M`` — the
fact that motivates the paper's PCR front-end (which *manufactures*
independent systems when ``M`` is small).

Costs: ``2n − 1`` elimination steps, ``O(n)`` work (Table II row 1).

Two entry points:

* :func:`thomas_solve` — one system, plain Python loop over rows
  (reference implementation; exactly the scalar recurrences of the paper).
* :func:`thomas_solve_batch` — ``M`` systems, vectorized over the batch
  axis; the row loop remains sequential.  This is the numerical workhorse
  behind both the p-Thomas back-end and the multithreaded-MKL proxy.
"""

from __future__ import annotations

import numpy as np

from repro.core.validation import check_batch_arrays, check_system_arrays

__all__ = ["thomas_solve", "thomas_solve_batch"]


def thomas_solve(a, b, c, d, *, check: bool = True) -> np.ndarray:
    """Solve one tridiagonal system with the Thomas algorithm.

    Parameters
    ----------
    a, b, c, d:
        Padded diagonals (see :mod:`repro.util.tridiag`): 1-D arrays of
        length ``n`` with ``a[0] == c[-1] == 0``.
    check:
        Validate shapes/finiteness (skip inside hot loops).

    Returns
    -------
    numpy.ndarray
        Solution vector ``x`` of length ``n``.
    """
    if check:
        a, b, c, d = check_system_arrays(a, b, c, d)
    else:
        a, b, c, d = (np.asarray(v) for v in (a, b, c, d))
    n = b.shape[0]
    dtype = b.dtype
    cp = np.empty(n, dtype=dtype)
    dp = np.empty(n, dtype=dtype)
    # Forward reduction (Eqs. 2-3).
    cp[0] = c[0] / b[0]
    dp[0] = d[0] / b[0]
    for i in range(1, n):
        denom = b[i] - cp[i - 1] * a[i]
        cp[i] = c[i] / denom
        dp[i] = (d[i] - dp[i - 1] * a[i]) / denom
    # Backward substitution (Eq. 4).
    x = np.empty(n, dtype=dtype)
    x[n - 1] = dp[n - 1]
    for i in range(n - 2, -1, -1):
        x[i] = dp[i] - cp[i] * x[i + 1]
    return x


def thomas_solve_batch(a, b, c, d, *, check: bool = True) -> np.ndarray:
    """Solve ``M`` independent systems, vectorized over the batch axis.

    Parameters
    ----------
    a, b, c, d:
        ``(M, N)`` padded diagonals; each row is one system.
    check:
        Validate shapes/finiteness.

    Returns
    -------
    numpy.ndarray
        ``(M, N)`` solutions.

    Notes
    -----
    The row loop runs ``N`` sequential iterations; each iteration is one
    vectorized operation across all ``M`` systems.  This is the CPU
    analogue of p-Thomas: the batch axis is the thread axis.
    """
    if check:
        a, b, c, d = check_batch_arrays(a, b, c, d)
    else:
        a, b, c, d = (np.asarray(v) for v in (a, b, c, d))
    m, n = b.shape
    dtype = b.dtype
    cp = np.empty((m, n), dtype=dtype)
    dp = np.empty((m, n), dtype=dtype)
    cp[:, 0] = c[:, 0] / b[:, 0]
    dp[:, 0] = d[:, 0] / b[:, 0]
    for i in range(1, n):
        denom = b[:, i] - cp[:, i - 1] * a[:, i]
        cp[:, i] = c[:, i] / denom
        dp[:, i] = (d[:, i] - dp[:, i - 1] * a[:, i]) / denom
    x = np.empty((m, n), dtype=dtype)
    x[:, n - 1] = dp[:, n - 1]
    for i in range(n - 2, -1, -1):
        x[:, i] = dp[:, i] - cp[:, i] * x[:, i + 1]
    return x
