"""Tiled PCR with the buffered sliding window — Section III-A of the paper.

The problem
-----------
A k-step PCR sweep over a system too large for shared memory must be
*tiled*.  Naive tiling re-loads ``f(k) = 2^k − 1`` halo rows and re-runs
``g(k)`` eliminations per tile boundary (Eqs. 8-9, Fig. 7) — exponential
in ``k``.  The paper's fix (Fig. 8b): process sub-tiles **sequentially**
inside each tile and *cache* every intermediate value that a later
sub-tile will need, so nothing is ever loaded or eliminated twice.

The cache invariant
-------------------
Write ``F_l`` for the number of level-``l`` rows finalized so far
(level 0 = raw input, level ``l`` = after ``l`` PCR steps).  A level-
``l+1`` value at row ``i`` needs level-``l`` rows ``i − 2^l, i, i + 2^l``,
so the frontiers obey ``F_{l+1} = F_l − 2^l`` and hence
``F_k = F_0 − f(k)``: outputs lag raw input by exactly ``f(k)`` rows —
the "lead-in" of Fig. 10.  Advancing level ``l+1`` by a sub-tile of
``S`` rows consumes level-``l`` rows from ``F_l^{old} − 2^{l+1}``
onwards, so the per-level trailing cache must retain ``2^{l+1}`` rows;
summing over levels gives total state ``Σ 2^{l+1} = 2·f(k)`` — the
paper's minimum cache capacity (the shipped layout allocates ``3·f(k)``
for alignment margins; see :mod:`repro.core.window`).

The ring-buffer realization
---------------------------
Each per-level cache lives in a **fixed-capacity ring buffer**
(:class:`repro.core.ringbuf.RingRows`): producers write new rows in
place through ``append`` views, the trim is an offset advance, and the
occasional compaction copy is the paper's once-per-round cache-
management copy.  A sweep therefore performs *zero* per-sub-tile
allocations — the buffers are owned by a :class:`TiledWorkspace` that
the solve-plan engine (:mod:`repro.engine`) reuses across repeated
solves, exactly as the GPU kernel reuses its shared-memory block across
rounds.  Passing no workspace allocates one per sweep.

Multi-window regions (Fig. 11b)
-------------------------------
A system may also be cut into ``W`` regions processed by independent
windows (more parallelism).  Region ``[r0, r1)`` must lead in from raw
row ``r0 − f(k)`` and read ahead to ``r1 + f(k)``: the dependency cone
of outputs ``r0`` and ``r1 − 1`` reaches exactly that far, so each
internal boundary re-loads ``2·f(k)`` halo rows — the paper's stated
tradeoff for variant (b).  ``W = 1`` does zero redundant work.

Everything here is numerically exact: the emitted rows are bitwise the
rows a whole-system :func:`repro.core.pcr.pcr_sweep` would produce
(same operands, same operation order per row).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.cost_model import f_redundant_loads
from repro.core.ringbuf import RingRows
from repro.core.validation import check_batch_arrays

__all__ = [
    "TiledPCR",
    "TiledWorkspace",
    "TilingCounters",
    "tiled_pcr_sweep",
    "naive_tiled_pcr_sweep",
]


@dataclass
class TilingCounters:
    """Work/traffic ledger for one tiled-PCR sweep.

    ``rows_loaded`` counts raw rows fetched from "global memory"
    (one row = one ``(a, b, c, d)`` quadruple); ``rows_loaded_redundant``
    is the subset fetched more than once (region lead-ins).
    ``eliminations`` counts PCR row-reductions actually performed;
    ``eliminations_redundant`` those performed for rows outside the
    emitting region (lead-in warm-up).  ``subtiles`` counts sliding-window
    advances (each is one shared-memory-resident processing round).
    """

    rows_loaded: int = 0
    rows_loaded_redundant: int = 0
    eliminations: int = 0
    eliminations_redundant: int = 0
    subtiles: int = 0
    windows: int = 0

    def merge(self, other: "TilingCounters") -> None:
        """Accumulate another ledger into this one."""
        self.rows_loaded += other.rows_loaded
        self.rows_loaded_redundant += other.rows_loaded_redundant
        self.eliminations += other.eliminations
        self.eliminations_redundant += other.eliminations_redundant
        self.subtiles += other.subtiles
        self.windows += other.windows


def _identity_rows(m: int, w: int, dtype) -> tuple:
    """Rows outside the system: ``a = c = d = 0, b = 1`` (inert under PCR)."""
    z = np.zeros((m, w), dtype=dtype)
    return z, np.ones((m, w), dtype=dtype), z.copy(), z.copy()


def _fill_identity(views: tuple) -> None:
    """Write identity rows into preallocated ``(a, b, c, d)`` views."""
    a, b, c, d = views
    a[...] = 0.0
    b[...] = 1.0
    c[...] = 0.0
    d[...] = 0.0


def _concat(q1: tuple, q2: tuple) -> tuple:
    return tuple(np.concatenate([x, y], axis=1) for x, y in zip(q1, q2))


def _slice(q: tuple, lo: int, hi: int) -> tuple:
    return tuple(x[:, lo:hi] for x in q)


def _width(q: tuple) -> int:
    return q[0].shape[1]


def _pcr_local(q: tuple, s: int) -> tuple:
    """One PCR step on a local row window, no boundary masking.

    ``q`` holds ``w + 2s`` consecutive level-``l`` rows; returns the ``w``
    level-``l+1`` rows for the centre slice.  Out-of-system rows must be
    identity rows — then ``a = 0`` / ``c = 0`` make the masks of
    :func:`repro.core.pcr.pcr_step` implicit.
    """
    a, b, c, d = q
    w = a.shape[1] - 2 * s
    a_m, b_m, c_m, d_m = (x[:, :w] for x in (a, b, c, d))
    a_c, b_c, c_c, d_c = (x[:, s : s + w] for x in (a, b, c, d))
    a_p, b_p, c_p, d_p = (x[:, 2 * s : 2 * s + w] for x in (a, b, c, d))
    k1 = a_c / b_m
    k2 = c_c / b_p
    return (
        -a_m * k1,
        b_c - c_m * k1 - a_p * k2,
        -c_p * k2,
        d_c - d_m * k1 - d_p * k2,
    )


def _pcr_local_into(q: tuple, s: int, out: tuple, k1, k2, tmp) -> None:
    """:func:`_pcr_local`, written into preallocated ``out`` views.

    ``k1``, ``k2``, ``tmp`` are ``(M, w)`` scratch views.  The operation
    order matches :func:`_pcr_local` exactly, so results are bitwise
    identical (the ``-x*y`` of the allocating form equals ``-(x*y)``
    because IEEE-754 negation is exact).
    """
    a, b, c, d = q
    w = a.shape[1] - 2 * s
    a_m, b_m, c_m, d_m = (x[:, :w] for x in (a, b, c, d))
    a_c, b_c, c_c, d_c = (x[:, s : s + w] for x in (a, b, c, d))
    a_p, b_p, c_p, d_p = (x[:, 2 * s : 2 * s + w] for x in (a, b, c, d))
    oa, ob, oc, od = out
    np.divide(a_c, b_m, out=k1)
    np.divide(c_c, b_p, out=k2)
    # a' = -a_m * k1
    np.multiply(a_m, k1, out=oa)
    np.negative(oa, out=oa)
    # b' = b_c - c_m*k1 - a_p*k2
    np.multiply(c_m, k1, out=tmp)
    np.subtract(b_c, tmp, out=ob)
    np.multiply(a_p, k2, out=tmp)
    np.subtract(ob, tmp, out=ob)
    # c' = -c_p * k2
    np.multiply(c_p, k2, out=oc)
    np.negative(oc, out=oc)
    # d' = d_c - d_m*k1 - d_p*k2
    np.multiply(d_m, k1, out=tmp)
    np.subtract(d_c, tmp, out=od)
    np.multiply(d_p, k2, out=tmp)
    np.subtract(od, tmp, out=od)


class _RawProvider:
    """Streams raw rows of a batch, padding out-of-range rows with identity.

    Also keeps the load ledger: every in-range row fetched is counted, and
    rows outside the caller's emitting region count as redundant.
    """

    def __init__(self, quads: tuple, counters: TilingCounters):
        self.quads = quads
        self.n = quads[0].shape[1]
        self.m = quads[0].shape[0]
        self.dtype = quads[0].dtype
        self.counters = counters

    def _count(self, lo: int, hi: int, region: tuple) -> None:
        """Ledger update for a fetch of global rows ``[lo, hi)``.

        Counts ``(a, b, c, d)`` quadruples: a fetch of ``w`` row indices
        on an ``M``-system batch loads ``w · M`` quadruples.
        """
        r0, r1 = region
        in_lo, in_hi = max(lo, 0), min(hi, self.n)
        real = max(0, in_hi - in_lo)
        self.counters.rows_loaded += real * self.m
        if real:
            red_lo, red_hi = max(in_lo, r0), min(in_hi, r1)
            inside = max(0, red_hi - red_lo)
            self.counters.rows_loaded_redundant += (real - inside) * self.m

    def fetch(self, lo: int, hi: int, region: tuple) -> tuple:
        """Rows ``[lo, hi)`` in global coordinates (identity outside [0, n))."""
        self._count(lo, hi, region)
        in_lo, in_hi = max(lo, 0), min(hi, self.n)
        if in_lo >= in_hi:
            return _identity_rows(self.m, hi - lo, self.dtype)
        body = _slice(self.quads, in_lo, in_hi)
        if lo < in_lo:
            body = _concat(_identity_rows(self.m, in_lo - lo, self.dtype), body)
        if hi > in_hi:
            body = _concat(body, _identity_rows(self.m, hi - in_hi, self.dtype))
        return body

    def fetch_into(self, lo: int, hi: int, region: tuple, views: tuple) -> None:
        """:meth:`fetch`, written into preallocated ``(M, hi − lo)`` views."""
        self._count(lo, hi, region)
        in_lo, in_hi = max(lo, 0), min(hi, self.n)
        if in_lo >= in_hi:
            _fill_identity(views)
            return
        j0, j1 = in_lo - lo, in_hi - lo
        if j0 > 0:
            _fill_identity(tuple(v[:, :j0] for v in views))
        for dst, src in zip(views, self.quads):
            dst[:, j0:j1] = src[:, in_lo:in_hi]
        if j1 < hi - lo:
            _fill_identity(tuple(v[:, j1:] for v in views))


class TiledWorkspace:
    """Preallocated ring buffers and scratch for one sliding-window sweep.

    Owns everything a :meth:`TiledPCR.sweep` call writes besides its
    output: the per-level trailing caches (ring buffers of capacity
    ``2^{l+1} + 2S`` — retention budget plus append headroom, the
    paper's ``3·f(k)``-style alignment margin), the level-``k`` staging
    slab the finished rows are emitted from, and the ``k1/k2`` scratch
    of the PCR elimination.  Reusable across sweeps of the same shape;
    the solve-plan engine (:mod:`repro.engine`) pools these per plan.
    """

    def __init__(self, m: int, k: int, subtile: int, dtype):
        dtype = np.dtype(dtype)
        self.m = m
        self.k = k
        self.subtile = subtile
        self.dtype = dtype
        S = subtile
        self.rings = [
            RingRows(m, 2 ** (l + 1) + 2 * S, dtype, channels=4)
            for l in range(k)
        ]
        self.stage = tuple(np.empty((m, S), dtype=dtype) for _ in range(4))
        self.k1 = np.empty((m, S), dtype=dtype)
        self.k2 = np.empty((m, S), dtype=dtype)
        self.tmp = np.empty((m, S), dtype=dtype)

    def compatible(self, m: int, k: int, subtile: int, dtype) -> bool:
        """True if this workspace fits a sweep of the given shape."""
        return (
            self.m == m
            and self.k == k
            and self.subtile == subtile
            and self.dtype == np.dtype(dtype)
        )


@dataclass
class TiledPCR:
    """Streaming k-step tiled PCR with dependency caching.

    Parameters
    ----------
    k:
        Number of PCR steps (thread-block width is ``2^k`` on the GPU).
    c:
        Sub-tile scale: the sliding window advances ``c · 2^k`` rows per
        round (Table I, ``c ≥ 1``).
    n_windows:
        Number of concurrently processed regions per system (Fig. 11b).
        ``1`` = single window, zero redundancy.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core.tiled_pcr import TiledPCR
    >>> from repro.core.pcr import pcr_sweep
    >>> rng = np.random.default_rng(0)
    >>> n = 64
    >>> a = rng.standard_normal((1, n)); a[:, 0] = 0
    >>> c = rng.standard_normal((1, n)); c[:, -1] = 0
    >>> b = 4 + np.abs(a) + np.abs(c)
    >>> d = rng.standard_normal((1, n))
    >>> tp = TiledPCR(k=3)
    >>> out = tp.sweep(a, b, c, d)
    >>> ref = pcr_sweep(a, b, c, d, 3)
    >>> all(np.allclose(x, y) for x, y in zip(out, ref))
    True
    """

    k: int
    c: int = 1
    n_windows: int = 1
    counters: TilingCounters = field(default_factory=TilingCounters)

    def __post_init__(self) -> None:
        if self.k < 0:
            raise ValueError(f"k must be >= 0, got {self.k}")
        if self.c < 1:
            raise ValueError(f"c must be >= 1, got {self.c}")
        if self.n_windows < 1:
            raise ValueError(f"n_windows must be >= 1, got {self.n_windows}")

    @property
    def subtile(self) -> int:
        """Rows the window advances per round (``c · 2^k``, Table I)."""
        return self.c * (1 << self.k)

    def make_workspace(self, m: int, dtype) -> TiledWorkspace:
        """Allocate a reusable workspace for ``(M, ·)`` sweeps."""
        return TiledWorkspace(m, self.k, self.subtile, dtype)

    def sweep(
        self, a, b, c, d, *, check: bool = True, emit=None, workspace=None
    ) -> tuple | None:
        """Run the k-step sweep over an ``(M, N)`` batch.

        Returns the reduced ``(a, b, c, d)`` — bitwise equal to
        ``pcr_sweep(a, b, c, d, k)``.

        If ``emit`` is given it is called as ``emit(e0, e1, quad)`` with
        each finished slab of level-k rows (global row range ``[e0, e1)``,
        ascending, non-overlapping, covering ``[0, N)``) *instead of*
        materializing output arrays, and ``None`` is returned.  This is
        the hook kernel fusion uses to feed p-Thomas forward reduction
        progressively (Section III-C).  The slab views are only valid
        during the call — consumers must copy what they keep.

        ``workspace`` is an optional :class:`TiledWorkspace` (from
        :meth:`make_workspace`) reused across sweeps of the same shape;
        omitted, one is allocated for this sweep.
        """
        if check:
            a, b, c, d = check_batch_arrays(a, b, c, d)
        else:
            a, b, c, d = (np.asarray(v) for v in (a, b, c, d))
        quads = (a, b, c, d)
        m, n = b.shape
        if self.k == 0:
            # Degenerate: no PCR steps; pass-through (still "loads" rows).
            self.counters.rows_loaded += n * m
            self.counters.windows += self.n_windows
            if emit is not None:
                emit(0, n, tuple(x.copy() for x in quads))
                return None
            return tuple(x.copy() for x in quads)

        if emit is None:
            out = tuple(np.empty((m, n), dtype=b.dtype) for _ in range(4))

            def emit_to_out(e0, e1, quad):
                for o, sarr in zip(out, quad):
                    o[:, e0:e1] = sarr

            sink = emit_to_out
        else:
            out = None
            sink = emit
        if workspace is None:
            workspace = self.make_workspace(m, b.dtype)
        elif not workspace.compatible(m, self.k, self.subtile, b.dtype):
            raise ValueError(
                f"workspace (m={workspace.m}, k={workspace.k}, "
                f"subtile={workspace.subtile}, dtype={workspace.dtype}) does "
                f"not fit sweep (m={m}, k={self.k}, subtile={self.subtile}, "
                f"dtype={b.dtype})"
            )
        provider = _RawProvider(quads, self.counters)
        bounds = np.linspace(0, n, self.n_windows + 1).astype(int)
        for w in range(self.n_windows):
            r0, r1 = int(bounds[w]), int(bounds[w + 1])
            if r0 == r1:
                continue
            self._stream_region(provider, sink, r0, r1, workspace)
            self.counters.windows += 1
        return out

    # ------------------------------------------------------------------
    def _stream_region(
        self, provider: _RawProvider, sink, r0: int, r1: int, ws: TiledWorkspace
    ) -> None:
        """Emit exact level-k rows ``[r0, r1)`` via one sliding window."""
        k, S = self.k, self.subtile
        m = provider.m
        fk = f_redundant_loads(k)
        ext0 = r0 - fk  # raw stream start (lead-in)
        ext1 = r1 + fk  # last raw row any output in [r0, r1) can reach
        region = (r0, r1)

        # Per-level trailing caches in the workspace's ring buffers:
        # level l retains its last 2^(l+1) rows.  Before the stream
        # begins every cache is "rows before ext0" — identity, and
        # provably outside every emitted row's dependency cone.
        rings = ws.rings
        for l in range(k):
            rings[l].reset()
            _fill_identity(rings[l].append(2 ** (l + 1)))
        frontiers = [ext0] * (k + 1)  # F_l for l = 0..k
        pos = ext0

        while frontiers[k] < r1:
            # 1. load one raw sub-tile into the bottom of the window;
            # rows past ext1 are outside every output's dependency cone,
            # so they are padded as identity instead of fetched.
            dst = rings[0].append(S)
            fetch_hi = min(pos + S, ext1)
            w0 = fetch_hi - pos
            provider.fetch_into(
                pos, fetch_hi, region, tuple(v[:, :w0] for v in dst)
            )
            if w0 < S:
                _fill_identity(tuple(v[:, w0:] for v in dst))
            pos += S
            frontiers[0] += S

            # 2. advance each level as far as its input frontier allows
            for l in range(k):
                s = 1 << l
                new_f = frontiers[l] - s  # F_{l+1} can reach this
                old_f = frontiers[l + 1]
                w = new_f - old_f
                if w <= 0:
                    continue
                # level-l rows [old_f - s, new_f + s) feed the update
                buf_lo = frontiers[l] - rings[l].width
                i0 = (old_f - s) - buf_lo
                i1 = (new_f + s) - buf_lo
                if l + 1 < k:
                    produced = rings[l + 1].append(w)
                else:
                    produced = tuple(sb[:, :w] for sb in ws.stage)
                _pcr_local_into(
                    rings[l].view(i0, i1),
                    s,
                    produced,
                    ws.k1[:, :w],
                    ws.k2[:, :w],
                    ws.tmp[:, :w],
                )
                self.counters.eliminations += w * m
                inside = max(0, min(new_f, r1) - max(old_f, r0))
                self.counters.eliminations_redundant += (w - inside) * m
                frontiers[l + 1] = new_f
                if l + 1 == k:
                    # 3. emit finished level-k rows that fall in the region
                    e0, e1 = max(old_f, r0), min(new_f, r1)
                    if e0 < e1:
                        sink(
                            e0,
                            e1,
                            tuple(
                                v[:, e0 - old_f : e1 - old_f] for v in produced
                            ),
                        )

            # 4. slide: trim every cache back to its row budget (2^(l+1)
            # in steady state; never below what the next level-(l+1)
            # advance will read, i.e. rows from F_{l+1} - 2^l onward)
            for l in range(k):
                needed_from = frontiers[l + 1] - (1 << l)
                keep = max(2 ** (l + 1), frontiers[l] - needed_from)
                rings[l].trim_to(keep)
            self.counters.subtiles += 1

    def cache_rows(self) -> int:
        """Total cached rows held across levels (the ``2·f(k)`` of §III-A)."""
        return sum(2 ** (l + 1) for l in range(self.k))


def tiled_pcr_sweep(
    a,
    b,
    c,
    d,
    k: int,
    *,
    subtile_scale: int = 1,
    n_windows: int = 1,
    counters: TilingCounters | None = None,
    check: bool = True,
) -> tuple:
    """Functional wrapper around :class:`TiledPCR` (see its docs)."""
    tp = TiledPCR(k=k, c=subtile_scale, n_windows=n_windows)
    if counters is not None:
        tp.counters = counters
    return tp.sweep(a, b, c, d, check=check)


def naive_tiled_pcr_sweep(
    a,
    b,
    c,
    d,
    k: int,
    tile: int,
    *,
    counters: TilingCounters | None = None,
    check: bool = True,
) -> tuple:
    """Cache-less tiled PCR — the strawman of Fig. 7.

    Each tile of ``tile`` output rows independently loads its ``f(k)``-row
    halos on both sides and re-runs every intermediate elimination inside
    the halo.  Produces the same (exact) result as the cached window but
    with ``2·f(k)`` redundant loads and ``g(k)``-class redundant
    eliminations per boundary; the ablation benchmark quantifies the gap.
    """
    if check:
        a, b, c, d = check_batch_arrays(a, b, c, d)
    else:
        a, b, c, d = (np.asarray(v) for v in (a, b, c, d))
    if counters is None:
        counters = TilingCounters()
    quads = (a, b, c, d)
    m, n = b.shape
    if k == 0:
        counters.rows_loaded += n * m
        return tuple(x.copy() for x in quads)
    fk = f_redundant_loads(k)
    out = tuple(np.empty((m, n), dtype=b.dtype) for _ in range(4))
    provider = _RawProvider(quads, counters)
    for t0 in range(0, n, tile):
        t1 = min(t0 + tile, n)
        # load body + halos; everything outside [t0, t1) is redundant
        q = provider.fetch(t0 - fk, t1 + fk, (t0, t1))
        for l in range(k):
            s = 1 << l
            w = _width(q) - 2 * s
            inside = min(t1, t0 + w) - t0  # rows that end up emitted
            counters.eliminations += w * m
            counters.eliminations_redundant += (w - max(0, inside)) * m
            q = _pcr_local(q, s)
        for o, sarr in zip(out, q):
            o[:, t0:t1] = sarr
        counters.subtiles += 1
    counters.windows += 1
    return out
