"""Algorithm-transition logic: choosing k, the tiled-PCR step count.

Section III-D: "one single algorithm cannot cope with all combinations of
hardware and input sizes".  The hybrid picks ``k`` — how many PCR steps
to run before handing the ``2^k · M`` independent systems to p-Thomas —
from the number of systems ``M``, the system size ``N`` and the machine
parallelism ``P``:

* **Analytic** (:func:`select_k_analytic`) — minimize the Table II cost
  function over ``k``.  Matches the paper's observation that the optimum
  is ``k = 0`` when ``M > P`` and the largest ``k`` with ``2^k · M ≤ P``
  when ``M`` is small.
* **Heuristic** (:func:`select_k_heuristic`, Table III) — the empirically
  tuned GTX480 table the paper actually ships:

  ====================  ======  ==============
  M                     k-step  tile size 2^k
  ====================  ======  ==============
  M < 16                8       256
  16 ≤ M < 32           7       128
  32 ≤ M < 512          6       64
  512 ≤ M < 1024        5       32
  1024 ≤ M              0       1
  ====================  ======  ==============

Both selectors clamp ``k`` so subsystems keep at least two rows
(``2^k ≤ N/2``); beyond that PCR would already have solved the system and
p-Thomas would have nothing to do.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.cost_model import hybrid_cost

__all__ = [
    "TransitionHeuristic",
    "GTX480_HEURISTIC",
    "select_k_heuristic",
    "select_k_analytic",
    "candidate_ks",
    "clamp_k",
]


def clamp_k(k: int, n: int) -> int:
    """Clamp ``k`` so that ``2^k ≤ N / 2`` (subsystems keep ≥ 2 rows)."""
    if n <= 2:
        return 0
    max_k = int(math.floor(math.log2(n))) - 1
    return max(0, min(k, max_k))


@dataclass(frozen=True)
class TransitionHeuristic:
    """A piecewise-constant ``M → k`` table (Table III shape).

    ``thresholds`` are the M breakpoints in increasing order and ``ks``
    the chosen k per interval; ``ks`` has one more entry than
    ``thresholds``.  Interval ``i`` is ``thresholds[i-1] ≤ M <
    thresholds[i]``.
    """

    thresholds: tuple = field(default=())
    ks: tuple = field(default=(0,))
    name: str = "custom"

    def __post_init__(self) -> None:
        if len(self.ks) != len(self.thresholds) + 1:
            raise ValueError(
                f"need len(ks) == len(thresholds) + 1, got "
                f"{len(self.ks)} vs {len(self.thresholds)}"
            )
        if any(t2 <= t1 for t1, t2 in zip(self.thresholds, self.thresholds[1:])):
            raise ValueError("thresholds must be strictly increasing")

    def k_for(self, m: int, n: int | None = None) -> int:
        """Pick k for ``M`` systems (clamped to the size ``N`` if given)."""
        if m < 1:
            raise ValueError(f"M must be >= 1, got {m}")
        k = self.ks[-1]
        for i, t in enumerate(self.thresholds):
            if m < t:
                k = self.ks[i]
                break
        if n is not None:
            k = clamp_k(k, n)
        return k

    def tile_size(self, m: int) -> int:
        """Thread-block width ``2^k`` the heuristic implies (Table III col 3)."""
        return 2 ** self.k_for(m)


#: The paper's tuned table for the NVIDIA GTX480 (Table III).
GTX480_HEURISTIC = TransitionHeuristic(
    thresholds=(16, 32, 512, 1024),
    ks=(8, 7, 6, 5, 0),
    name="GTX480 (Table III)",
)


def select_k_heuristic(
    m: int, n: int | None = None, heuristic: TransitionHeuristic = GTX480_HEURISTIC
) -> int:
    """Table III lookup (default: the GTX480 table), clamped to ``N``."""
    return heuristic.k_for(m, n)


def candidate_ks(
    m: int,
    n: int,
    heuristic: TransitionHeuristic = GTX480_HEURISTIC,
) -> tuple:
    """Distinct transition points worth measuring for ``(M, N)``.

    The autotuner's exploration set: pure Thomas (``k = 0``), the
    static table's pick, and its immediate neighbours — the region
    where Table III mispredicts on hardware it was not tuned for
    (Section III-D: the optimum moves with the machine's parallelism).
    All values are clamped to ``2^k ≤ N / 2``; duplicates collapse, so
    shapes where the table already says 0 explore just ``(0,)``.
    """
    table_k = heuristic.k_for(m, n)
    ks = {0, table_k}
    ks.add(clamp_k(table_k - 1, n))
    ks.add(clamp_k(table_k + 1, n))
    return tuple(sorted(ks))


def select_k_analytic(n_log2: int, m: int, p: int, k_max: int | None = None) -> int:
    """Minimize the Table II hybrid cost over ``k``.

    Parameters
    ----------
    n_log2:
        ``log2`` of the per-system size (Table II states sizes as ``2^n``).
    m:
        Number of independent systems.
    p:
        Machine parallelism (threads the hardware can keep busy).
    k_max:
        Optional cap (e.g. from shared-memory limits); defaults to
        ``n_log2 − 1`` so subsystems keep ≥ 2 rows.

    Notes
    -----
    Ties are broken toward *smaller* k (less PCR work, Section III-D: when
    ``M > P`` "the minimum is when k equals zero").
    """
    if k_max is None:
        k_max = max(0, n_log2 - 1)
    k_max = min(k_max, n_log2)
    best_k, best_cost = 0, hybrid_cost(n_log2, m, p, 0)
    for k in range(1, k_max + 1):
        cost = hybrid_cost(n_log2, m, p, k)
        if cost < best_cost:
            best_k, best_cost = k, cost
    return best_k
