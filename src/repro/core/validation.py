"""Input validation shared by every solver entry point.

Solvers accept "padded" diagonals (``a[0] == c[-1] == 0``; see
:mod:`repro.util.tridiag`).  Validation normalizes dtype, enforces shape
agreement, zeroes the out-of-matrix pads, and optionally checks
finiteness.  All checks are cheap relative to a solve and can be skipped
with ``check=False`` in inner loops.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "coerce_batch_arrays",
    "coerce_cyclic_batch_arrays",
    "check_system_arrays",
    "check_batch_arrays",
    "check_cyclic_batch_arrays",
    "coerce_penta_batch_arrays",
    "check_penta_batch_arrays",
    "coerce_block_batch_arrays",
    "check_block_batch_arrays",
    "require_power_of_two",
    "is_power_of_two",
]

_ALLOWED = (np.dtype(np.float32), np.dtype(np.float64))

#: ``np.result_type`` over mixed dtype tuples is surprisingly costly on
#: the small-batch hot path; the handful of dtype combinations a
#: workload actually mixes is memoized here.
_result_dtype_cache: dict = {}


def _already_canonical(arrays) -> bool:
    """Are these already contiguous same-float-dtype ``ndarray``s?

    The tiny-batch fast path: a steady-state caller (the engine's warm
    loop, the service tier's fragments) passes arrays that are already
    in canonical form, and the per-call ``asarray`` → ``result_type`` →
    ``ascontiguousarray`` chain costs more than the solve's own
    dispatch at small ``M``.  One cheap all-attribute scan skips it.
    """
    first = arrays[0]
    if type(first) is not np.ndarray:
        return False
    dtype = first.dtype
    if dtype not in _ALLOWED:
        return False
    for arr in arrays:
        if (
            type(arr) is not np.ndarray
            or arr.dtype is not dtype
            or not arr.flags.c_contiguous
        ):
            return False
    return True


def _uniform_float(arrays):
    """Coerce a sequence to one contiguous allowed float dtype."""
    if _already_canonical(arrays):
        return list(arrays)
    arrays = [np.asarray(v) for v in arrays]
    key = tuple(arr.dtype for arr in arrays)
    dtype = _result_dtype_cache.get(key)
    if dtype is None:
        dtype = np.result_type(*arrays)
        if dtype not in _ALLOWED:
            dtype = np.dtype(np.float64)
        if len(_result_dtype_cache) > 64:
            _result_dtype_cache.clear()
        _result_dtype_cache[key] = dtype
    return [np.ascontiguousarray(v, dtype=dtype) for v in arrays]


def coerce_batch_arrays(a, b, c, d):
    """Coerce batch inputs to uniform float arrays *without* validating.

    The cheap, unconditional half of :func:`check_batch_arrays`: lists
    and scalars become arrays, mixed precisions promote via
    ``np.result_type``, and anything that is not float32/float64 (e.g.
    integer lists) is promoted to float64 — otherwise a ``check=False``
    solve would silently truncate float results into integer storage.
    Shape agreement, pad zeroing and finiteness are *not* checked;
    that is :func:`check_batch_arrays`'s job.
    """
    return tuple(_uniform_float((a, b, c, d)))


def _common(arrays, ndim: int):
    arrays = _uniform_float(arrays)
    shape = arrays[0].shape
    for name, arr in zip("abcd", arrays):
        if arr.ndim != ndim:
            raise ValueError(f"{name!r} must be {ndim}-D, got {arr.ndim}-D")
        if arr.shape != shape:
            raise ValueError(f"{name!r} has shape {arr.shape}, expected {shape}")
    if any(s == 0 for s in shape):
        raise ValueError("empty system")
    for name, arr in zip("abcd", arrays):
        if not np.all(np.isfinite(arr)):
            raise ValueError(f"{name!r} contains non-finite values")
    return arrays


def check_system_arrays(a, b, c, d):
    """Validate one system's diagonals; returns normalized copies-if-needed."""
    a, b, c, d = _common((a, b, c, d), ndim=1)
    if a[0] != 0.0:
        a = a.copy()
        a[0] = 0.0
    if c[-1] != 0.0:
        c = c.copy()
        c[-1] = 0.0
    if np.any(b == 0.0):
        raise ValueError("zero on the main diagonal (pivot-free solvers need b != 0)")
    return a, b, c, d


def check_batch_arrays(a, b, c, d):
    """Validate an ``(M, N)`` batch's diagonals."""
    a, b, c, d = _common((a, b, c, d), ndim=2)
    if np.any(a[:, 0] != 0.0):
        a = a.copy()
        a[:, 0] = 0.0
    if np.any(c[:, -1] != 0.0):
        c = c.copy()
        c[:, -1] = 0.0
    if np.any(b == 0.0):
        raise ValueError("zero on the main diagonal (pivot-free solvers need b != 0)")
    return a, b, c, d


def coerce_cyclic_batch_arrays(a, b, c, d):
    """Coerce + shape-validate a *cyclic* ``(M, N)`` batch.

    Cyclic (periodic) systems use the corner entries ``a[:, 0]`` and
    ``c[:, -1]`` as real matrix couplings, so unlike
    :func:`check_batch_arrays` the pads are **never zeroed**.  Shape
    agreement is enforced unconditionally — a mismatched diagonal in a
    Sherman–Morrison solve would otherwise surface as an opaque
    broadcasting error two layers down.  1-D inputs are promoted to a
    single-system batch.
    """
    arrays = (a, b, c, d)
    if _already_canonical(arrays) and all(arr.ndim == 2 for arr in arrays):
        arrays = list(arrays)
    else:
        arrays = _uniform_float(
            [np.atleast_2d(np.asarray(v)) for v in arrays]
        )
    shape = arrays[1].shape
    for name, arr in zip("abcd", arrays):
        if arr.ndim != 2:
            raise ValueError(
                f"cyclic diagonals must all be (M, N) batches: "
                f"{name!r} is {arr.ndim}-D"
            )
        if arr.shape != shape:
            raise ValueError(
                f"cyclic diagonals must all share one (M, N) shape: "
                f"{name!r} has shape {arr.shape}, expected {shape}"
            )
    if any(s == 0 for s in shape):
        raise ValueError("empty system")
    return tuple(arrays)


def check_cyclic_batch_arrays(a, b, c, d):
    """Validate a cyclic ``(M, N)`` batch (corners kept, finiteness on)."""
    arrays = coerce_cyclic_batch_arrays(a, b, c, d)
    for name, arr in zip("abcd", arrays):
        if not np.all(np.isfinite(arr)):
            raise ValueError(f"{name!r} contains non-finite values")
    return arrays


def coerce_penta_batch_arrays(e, a, b, c, f, d):
    """Coerce + shape-validate a pentadiagonal ``(M, N)`` batch.

    Diagonal order follows offset: ``e`` (second sub-diagonal, offset
    −2), ``a`` (−1), ``b`` (main), ``c`` (+1), ``f`` (+2).  All six
    arrays share one ``(M, N)`` shape; the out-of-matrix pads are
    ``e[:, :2]``, ``a[:, 0]``, ``c[:, -1]`` and ``f[:, -2:]``.

    Canonical inputs (contiguous, one allowed float dtype, agreeing
    2-D shapes) early-exit before any list building or per-name scan —
    the same steady-state fast path the plain and cyclic coercers run
    (see :func:`_already_canonical`).
    """
    arrays = (e, a, b, c, f, d)
    if _already_canonical(arrays):
        shape = b.shape
        if (
            len(shape) == 2
            and e.shape == shape
            and a.shape == shape
            and c.shape == shape
            and f.shape == shape
            and d.shape == shape
            and 0 not in shape
        ):
            return arrays
    arrays = _uniform_float(arrays)
    shape = arrays[2].shape
    for name, arr in zip("eabcfd", arrays):
        if arr.ndim != 2:
            raise ValueError(f"{name!r} must be 2-D (M, N), got {arr.ndim}-D")
        if arr.shape != shape:
            raise ValueError(f"{name!r} has shape {arr.shape}, expected {shape}")
    if any(s == 0 for s in shape):
        raise ValueError("empty system")
    return tuple(arrays)


def check_penta_batch_arrays(e, a, b, c, f, d):
    """Validate a pentadiagonal batch: pads zeroed, finiteness, pivots."""
    e, a, b, c, f, d = coerce_penta_batch_arrays(e, a, b, c, f, d)
    for name, arr in zip("eabcfd", (e, a, b, c, f, d)):
        if not np.all(np.isfinite(arr)):
            raise ValueError(f"{name!r} contains non-finite values")
    n = b.shape[1]
    if np.any(e[:, : min(2, n)] != 0.0):
        e = e.copy()
        e[:, : min(2, n)] = 0.0
    if np.any(a[:, 0] != 0.0):
        a = a.copy()
        a[:, 0] = 0.0
    if np.any(c[:, -1] != 0.0):
        c = c.copy()
        c[:, -1] = 0.0
    if np.any(f[:, max(0, n - 2) :] != 0.0):
        f = f.copy()
        f[:, max(0, n - 2) :] = 0.0
    if np.any(b == 0.0):
        raise ValueError("zero on the main diagonal (pivot-free solvers need b != 0)")
    return e, a, b, c, f, d


def coerce_block_batch_arrays(A, B, C, d):
    """Coerce + shape-validate a block-tridiagonal batch.

    ``A``, ``B``, ``C`` are ``(M, N, B, B)`` stacks of sub-, main- and
    super-diagonal blocks; ``d`` is the ``(M, N, B)`` right-hand side.

    Canonical inputs (contiguous, one allowed float dtype, agreeing
    block shapes) early-exit before any coercion work — the
    steady-state fast path for per-step block solves.
    """
    if _already_canonical((A, B, C, d)) and B.ndim == 4:
        m, n, bs, bs2 = B.shape
        if (
            bs == bs2
            and A.shape == B.shape
            and C.shape == B.shape
            and d.shape == (m, n, bs)
            and 0 not in (m, n, bs)
        ):
            return A, B, C, d
    A, B, C, d = _uniform_float((A, B, C, d))
    if B.ndim != 4:
        raise ValueError(f"block diagonals must be (M, N, B, B), got {B.ndim}-D")
    m, n, bs, bs2 = B.shape
    if bs != bs2:
        raise ValueError(f"blocks must be square, got {bs}x{bs2}")
    for name, arr in zip("ABC", (A, B, C)):
        if arr.shape != B.shape:
            raise ValueError(
                f"{name!r} has shape {arr.shape}, expected {B.shape}"
            )
    if d.shape != (m, n, bs):
        raise ValueError(f"d has shape {d.shape}, expected {(m, n, bs)}")
    if 0 in (m, n, bs):
        raise ValueError("empty system")
    return A, B, C, d


def check_block_batch_arrays(A, B, C, d):
    """Validate a block-tridiagonal batch: pads zeroed, finiteness."""
    A, B, C, d = coerce_block_batch_arrays(A, B, C, d)
    for name, arr in zip(("A", "B", "C", "d"), (A, B, C, d)):
        if not np.all(np.isfinite(arr)):
            raise ValueError(f"{name!r} contains non-finite values")
    if np.any(A[:, 0] != 0.0):
        A = A.copy()
        A[:, 0] = 0.0
    if np.any(C[:, -1] != 0.0):
        C = C.copy()
        C[:, -1] = 0.0
    return A, B, C, d


def is_power_of_two(x: int) -> bool:
    """True iff ``x`` is a positive power of two."""
    return x > 0 and (x & (x - 1)) == 0


def require_power_of_two(x: int, what: str) -> int:
    """Raise ``ValueError`` unless ``x`` is a positive power of two."""
    if not is_power_of_two(x):
        raise ValueError(f"{what} must be a positive power of two, got {x}")
    return x
