"""The buffered sliding window — shared-memory layout of Figs. 9-10.

:class:`repro.core.tiled_pcr.TiledPCR` implements the *numerics* of the
cached sliding window (per-level trailing caches).  This module models
the *resource shape* of the paper's actual shared-memory realization,
which the GPU kernels use for occupancy and traffic accounting:

* **bottom buffer** (one sub-tile, ``S = c·2^k`` rows) — raw rows freshly
  loaded from global memory;
* **middle buffer** (``2S`` rows) — rows at intermediate PCR levels,
  interacting with the bottom buffer;
* **top buffer** (``S`` rows) — rows that have finished all but the last
  PCR step, feeding the final step;
* one extra sub-tile of **padding / alignment margin** so outputs can be
  shifted into coalesced alignment and the cache managed with an offset
  instead of a rotate (the reason the shipped capacity is ``3·f(k)``
  while the dependency math only needs ``2·f(k)``).

The buffers are logically segmented slices of one shared-memory block so
the PCR elimination can operate across segment boundaries (Section
III-A).  Per sub-tile round the window costs:

* ``S`` rows of global loads (no redundancy — the whole point),
* ``c·k·2^k`` eliminations (Table I),
* ``k + 1`` intra-block barriers (one per PCR step plus the load),
* one cache-management copy of the top+middle contents.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cost_model import f_redundant_loads, sliding_window_properties

__all__ = ["BufferedSlidingWindow", "WindowRound"]


@dataclass(frozen=True)
class WindowRound:
    """Resource cost of advancing the window by one sub-tile."""

    global_rows_loaded: int
    eliminations: int
    barriers: int
    smem_rows_copied: int


@dataclass(frozen=True)
class BufferedSlidingWindow:
    """Static resource model of one buffered sliding window.

    Parameters
    ----------
    k:
        PCR steps performed inside the window (thread-block width ``2^k``).
    c:
        Sub-tile scale factor (``≥ 1``): each thread emits ``c`` outputs
        per round and the window advances ``c·2^k`` rows.
    values_per_row:
        Stored values per system row — 4 for ``(a, b, c, d)``.
    dtype_bytes:
        8 for float64, 4 for float32.
    """

    k: int
    c: int = 1
    values_per_row: int = 4
    dtype_bytes: int = 8

    def __post_init__(self) -> None:
        if self.k < 0:
            raise ValueError(f"k must be >= 0, got {self.k}")
        if self.c < 1:
            raise ValueError(f"c must be >= 1, got {self.c}")
        if self.dtype_bytes not in (4, 8):
            raise ValueError(f"dtype_bytes must be 4 or 8, got {self.dtype_bytes}")

    # ---- Table I properties -------------------------------------------
    @property
    def subtile(self) -> int:
        """Rows per sub-tile: ``c · 2^k``."""
        return self.c * (1 << self.k)

    @property
    def threads_per_block(self) -> int:
        """One thread per output column of the final PCR step: ``2^k``."""
        return 1 << self.k

    @property
    def cache_capacity(self) -> int:
        """Intermediate-results cache rows: ``3·f(k) ≤ 3·2^k`` (Table I)."""
        return 3 * f_redundant_loads(self.k)

    @property
    def min_cache_capacity(self) -> int:
        """Dependency-math minimum: ``2·f(k)`` (Section III-A)."""
        return 2 * f_redundant_loads(self.k)

    @property
    def elim_steps_per_thread(self) -> int:
        """``c·k`` eliminations per thread per sub-tile (Table I)."""
        return self.c * self.k

    @property
    def elim_steps_per_subtile(self) -> int:
        """``c·k·2^k`` eliminations per sub-tile (Table I)."""
        return self.c * self.k * (1 << self.k)

    # ---- buffer geometry (Fig. 9) -------------------------------------
    @property
    def top_rows(self) -> int:
        """Top buffer: one sub-tile of almost-finished rows."""
        return self.subtile

    @property
    def middle_rows(self) -> int:
        """Middle buffer: two sub-tiles of in-flight rows."""
        return 2 * self.subtile

    @property
    def bottom_rows(self) -> int:
        """Bottom buffer: one sub-tile of freshly loaded raw rows."""
        return self.subtile

    @property
    def total_rows(self) -> int:
        """Rows resident in the single shared-memory block."""
        return self.top_rows + self.middle_rows + self.bottom_rows

    def smem_bytes(self) -> int:
        """Shared memory one window occupies."""
        return self.total_rows * self.values_per_row * self.dtype_bytes

    # ---- per-round costs ----------------------------------------------
    def round_cost(self) -> WindowRound:
        """Resource cost of one sub-tile advance."""
        return WindowRound(
            global_rows_loaded=self.subtile,
            eliminations=self.elim_steps_per_subtile,
            barriers=self.k + 1,
            smem_rows_copied=self.top_rows + self.middle_rows,
        )

    def rounds_for(self, rows: int) -> int:
        """Sub-tile rounds to stream ``rows`` output rows (plus lead-in)."""
        if rows < 0:
            raise ValueError(f"rows must be >= 0, got {rows}")
        lead = f_redundant_loads(self.k)
        total = rows + lead
        return -(-total // self.subtile)

    def table_one(self) -> dict:
        """The exact quantities of the paper's Table I, for this (k, c)."""
        return sliding_window_properties(self.k, self.c)


def max_k_for_shared_memory(
    smem_bytes_limit: int,
    dtype_bytes: int = 8,
    c: int = 1,
    values_per_row: int = 4,
) -> int:
    """Largest k whose sliding window fits in ``smem_bytes_limit``.

    This is the knob behind the paper's portability claim ("the ability
    to keep the number of PCR steps under control expands the
    portability of our method to virtually all GPUs"): smaller shared
    memories simply cap k, they never break the method.
    """
    k = 0
    while True:
        w = BufferedSlidingWindow(
            k=k + 1, c=c, values_per_row=values_per_row, dtype_bytes=dtype_bytes
        )
        if w.smem_bytes() > smem_bytes_limit:
            return k
        k += 1
        if k >= 16:  # no real device needs more
            return k
