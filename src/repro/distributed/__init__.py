"""Distributed N-partition tier: one huge system across many workers.

* :mod:`~repro.distributed.partition` — the slab math: modified-Thomas
  elimination, the ``2P``-row reduced interface system, vectorized
  back-substitution, and the in-process bitwise reference.
* :mod:`~repro.distributed.pool` — persistent multiprocessing workers
  fed through pickle-free shared-memory arenas.
* :mod:`~repro.distributed.backend` — the ``distributed``
  :class:`~repro.backends.base.Backend` the registry negotiates.
"""

from repro.distributed.backend import DistributedBackend, DistributedBoundSolve
from repro.distributed.partition import (
    effective_ranks,
    partitioned_solve_reference,
    slab_bounds,
)
from repro.distributed.pool import (
    DistributedWorkerError,
    WorkerPool,
    get_pool,
    shutdown_pools,
)

__all__ = [
    "DistributedBackend",
    "DistributedBoundSolve",
    "DistributedWorkerError",
    "WorkerPool",
    "effective_ranks",
    "get_pool",
    "partitioned_solve_reference",
    "shutdown_pools",
    "slab_bounds",
]
