"""The ``distributed`` backend: one huge system across ``P`` workers.

Splits a single :class:`~repro.backends.request.SolveRequest` into
``P`` contiguous N-slabs, ships each slab to a persistent
:mod:`multiprocessing` worker over pickle-free shared memory, runs the
modified-Thomas elimination locally per slab, gathers the ``2P``-row
reduced interface system, solves it on rank 0 through
:class:`~repro.core.blocktridiag.BlockThomasFactorization` (``B = 1``
fast path), scatters the boundary values back, and lets every worker
back-substitute its interior in parallel.

Negotiation is the normal :class:`~repro.backends.base.Backend`
protocol — ``Capabilities.max_ranks`` advertises the multi-rank axis,
periodic systems ride the generic
:meth:`~repro.backends.base.BackendBase._periodic_fallback` (this
backend is its long-promised non-engine consumer), and ``ranks=1``
short-circuits to the engine's ``k = 0`` route so the single-rank
anchor stays bitwise identical to the engine.  For ``P >= 2`` the
result is bitwise identical to
:func:`~repro.distributed.partition.partitioned_solve_reference` at the
same ``P`` (same functions, same values) and agrees with the global
Thomas solve to reassociation-level rounding.

Time-stepping loops bind instead of re-executing:
:meth:`DistributedBackend.bind` returns a
:class:`DistributedBoundSolve` whose per-step cost is one RHS scatter
plus the pipeline — the coefficient slabs are transposed and shipped
to the workers **once** (``eliminate_slab`` never mutates them), and
the pool's ``epoch`` counter detects interleaved foreign scatters so
sessions sharing the process-wide pool stay correct.
"""

from __future__ import annotations

import time

import numpy as np

from repro.backends.base import BackendBase, Capabilities
from repro.backends.request import SolveOutcome, SolveRequest
from repro.backends.trace import SolveTrace, StageTiming
from repro.distributed.partition import (
    assemble_reduced,
    effective_ranks,
    slab_bounds,
    solve_reduced,
)
from repro.distributed.pool import get_pool

__all__ = [
    "DistributedBackend",
    "DistributedBoundSolve",
    "MAX_RANKS",
    "DEFAULT_RANKS",
]

#: Largest rank count the backend will negotiate.
MAX_RANKS = 64

#: Ranks used when the caller names the backend but pins no ``ranks=``.
DEFAULT_RANKS = 2


class DistributedBackend(BackendBase):
    """Multi-process N-partition solver behind the two-method protocol."""

    name = "distributed"
    #: Below the engine (100) so plain ``backend="auto"`` never lands
    #: here; the router's ``route_ranks`` rule (or an explicit
    #: ``ranks>1``) is what brings traffic in.
    priority = 30

    def __init__(
        self,
        *,
        default_ranks: int = DEFAULT_RANKS,
        timeout_s: float | None = None,
    ):
        super().__init__()
        self.default_ranks = int(default_ranks)
        self.timeout_s = timeout_s
        self._caps = None

    def capabilities(self) -> Capabilities:
        if self._caps is None:
            self._caps = Capabilities(
                periodic=True,  # via the generic Sherman–Morrison fallback
                max_workers=1,
                max_ranks=MAX_RANKS,
                prepared=False,
                systems=("tridiagonal",),
                description=(
                    "multi-process N-partition solver: modified-Thomas "
                    "slabs + reduced interface system over shared memory"
                ),
            )
        return self._caps

    # -- execution -----------------------------------------------------
    def execute(self, request: SolveRequest) -> SolveOutcome:
        if request.periodic:
            return self._periodic_fallback(request)
        ranks = effective_ranks(
            request.n, request.ranks or self.default_ranks
        )
        if ranks == 1:
            return self._delegate_single_rank(request)
        return self._execute_partitioned(request, ranks)

    def bind(self, request: SolveRequest):
        """Native session: coefficients partitioned and shipped once.

        Periodic and RHS-only requests ride the generic
        per-step-dispatch session (the corner-reduce pipeline rebuilds
        per step anyway); ``ranks=1`` binds the engine directly so the
        single-rank anchor stays bitwise identical to
        ``solve_batch(..., k=0)``; everything else gets a
        :class:`DistributedBoundSolve`.
        """
        if request.periodic or request.rhs_only:
            return super().bind(request)
        ranks = effective_ranks(
            request.n, request.ranks or self.default_ranks
        )
        if ranks == 1:
            from repro.engine import default_engine

            return default_engine().bind(
                request.replace(k=0, label=self.name)
            )
        return DistributedBoundSolve(self, request, ranks)

    def _delegate_single_rank(self, request: SolveRequest) -> SolveOutcome:
        """``ranks=1``: the engine's ``k = 0`` route *is* the slab solve.

        One slab means no interface system; running the engine keeps
        the single-rank anchor bitwise identical to
        ``solve_batch(..., k=0)`` (the property tests pin this).
        """
        from repro.engine import default_engine

        outcome = default_engine().run(request.replace(k=0))
        trace = outcome.trace
        trace.backend = self.name
        trace.ranks = 1
        self._set_trace(trace)
        return outcome

    def _execute_partitioned(
        self, request: SolveRequest, ranks: int
    ) -> SolveOutcome:
        m, n = request.m, request.n
        t0 = time.perf_counter()
        bounds = slab_bounds(n, ranks)
        at = np.ascontiguousarray(request.a.T)
        bt = np.ascontiguousarray(request.b.T)
        ct = np.ascontiguousarray(request.c.T)
        dt = np.ascontiguousarray(request.d.T)
        t_partition = time.perf_counter() - t0

        pool = get_pool(ranks, timeout_s=self.timeout_s)
        t_comms = 0.0

        t1 = time.perf_counter()
        pool.attach(bounds, m, bt.dtype)
        pool.scatter_slabs(at, bt, ct, dt, bounds)
        t_comms += time.perf_counter() - t1

        t1 = time.perf_counter()
        pool.eliminate()
        t_eliminate = time.perf_counter() - t1

        t1 = time.perf_counter()
        reduced_rows = pool.gather_reduced()
        t_comms += time.perf_counter() - t1

        t1 = time.perf_counter()
        xb = solve_reduced(*assemble_reduced(reduced_rows))
        t_reduced = time.perf_counter() - t1

        t1 = time.perf_counter()
        pool.scatter_boundary(xb)
        t_comms += time.perf_counter() - t1

        t1 = time.perf_counter()
        pool.backsub()
        t_backsub = time.perf_counter() - t1

        t1 = time.perf_counter()
        xt = np.empty((n, m), dtype=bt.dtype)
        pool.gather_solution(xt, bounds)
        if request.out is not None:
            x = request.out
            np.copyto(x, xt.T)
        else:
            x = np.ascontiguousarray(xt.T)
        t_comms += time.perf_counter() - t1

        trace = SolveTrace(
            backend=self.name,
            m=m,
            n=n,
            dtype=request.dtype,
            k=0,
            k_source="fixed",
            workers=1,
            ranks=ranks,
            plan_cache="n/a",
            factorization="n/a",
            system=request.system.kind,
            stages=[
                StageTiming("partition", t_partition),
                StageTiming(f"local-eliminate [{ranks} ranks]", t_eliminate),
                StageTiming("reduced-solve", t_reduced),
                StageTiming(f"backsub [{ranks} ranks]", t_backsub),
                StageTiming("comms", t_comms),
            ],
        )
        self._set_trace(trace)
        return SolveOutcome(x=x, trace=trace)


class DistributedBoundSolve:
    """Bound session over the N-partition pipeline.

    Bind transposes the coefficient slabs once and records the slab
    geometry; the first step attaches the process-wide pool, ships the
    coefficients, and notes the pool :attr:`~WorkerPool.epoch`.  Each
    :meth:`step` then scatters **only the right-hand side** (a strided
    transpose view — the arena assignment is the only copy) and runs
    eliminate → reduced-solve → backsub → gather.  When the epoch moves
    (another solve or session scattered into the shared arenas, or the
    pool was rebuilt after a worker death) the coefficients are
    re-shipped before the step — sessions never trust stale arenas.

    Bitwise: every phase runs the same functions on the same values as
    :meth:`DistributedBackend._execute_partitioned`, so stepped results
    are identical to independent one-shot distributed solves.
    """

    mode = "distributed"

    def __init__(self, backend: DistributedBackend, request: SolveRequest, ranks: int):
        self.backend = backend
        self.request = request
        self.ranks = ranks
        self.steps = 0
        self.closed = False
        t0 = time.perf_counter()
        self.bounds = slab_bounds(request.n, ranks)
        self._at = np.ascontiguousarray(request.a.T)
        self._bt = np.ascontiguousarray(request.b.T)
        self._ct = np.ascontiguousarray(request.c.T)
        self._dtype = self._bt.dtype
        self._dshape = (request.m, request.n)
        self._xt = np.empty((request.n, request.m), dtype=self._dtype)
        self._out = None
        self.bind_stages = [("partition", time.perf_counter() - t0)]
        self._pool = None
        self._epoch = None

    # -- arena currency ------------------------------------------------
    def _attached_pool(self):
        """The pool with this session's coefficients current in it."""
        pool = self._pool
        if (
            pool is not None
            and not pool.broken
            and pool.epoch == self._epoch
        ):
            return pool
        pool = get_pool(self.ranks, timeout_s=self.backend.timeout_s)
        pool.attach(self.bounds, self.request.m, self._dtype)
        # the RHS slot is overwritten by scatter_rhs before every
        # eliminate, so the d shipped here is a placeholder
        pool.scatter_slabs(self._at, self._bt, self._ct, self._at, self.bounds)
        self._pool = pool
        self._epoch = pool.epoch
        return pool

    def _canon_d(self, d):
        d = np.asarray(d)
        if d.shape != self._dshape:
            raise ValueError(
                f"d has shape {d.shape}, session bound for {self._dshape}"
            )
        if d.dtype != self._dtype:
            d = d.astype(self._dtype)
        return d

    def _pipeline(self, d, out, timings=None):
        """One RHS through scatter → eliminate → reduce → backsub."""
        pool = self._attached_pool()
        t_comms = 0.0

        t1 = time.perf_counter()
        pool.scatter_rhs(d.T, self.bounds)
        t_comms += time.perf_counter() - t1

        t1 = time.perf_counter()
        pool.eliminate()
        t_eliminate = time.perf_counter() - t1

        t1 = time.perf_counter()
        reduced_rows = pool.gather_reduced()
        t_comms += time.perf_counter() - t1

        t1 = time.perf_counter()
        xb = solve_reduced(*assemble_reduced(reduced_rows))
        t_reduced = time.perf_counter() - t1

        t1 = time.perf_counter()
        pool.scatter_boundary(xb)
        t_comms += time.perf_counter() - t1

        t1 = time.perf_counter()
        pool.backsub()
        t_backsub = time.perf_counter() - t1

        t1 = time.perf_counter()
        pool.gather_solution(self._xt, self.bounds)
        if out is None:
            out = np.ascontiguousarray(self._xt.T)
        else:
            np.copyto(out, self._xt.T)
        t_comms += time.perf_counter() - t1

        if timings is not None:
            timings.append(
                (f"local-eliminate [{self.ranks} ranks]", t_eliminate)
            )
            timings.append(("reduced-solve", t_reduced))
            timings.append((f"backsub [{self.ranks} ranks]", t_backsub))
            timings.append(("comms", t_comms))
        return out

    # -- execution -----------------------------------------------------
    def step(self, d, out=None):
        """The per-step hot loop: one RHS scatter + the pipeline.

        Returns the session-owned output buffer when ``out`` is omitted
        (reused across steps — copy it if you keep references).
        """
        if self.closed:
            raise RuntimeError("session is closed")
        d = self._canon_d(d)
        if out is None:
            out = self._out
            if out is None:
                out = self._out = np.empty(self._dshape, dtype=self._dtype)
        self._pipeline(d, out)
        self.steps += 1
        return out

    def step_t(self, dt, out_t=None):
        """Transposed-layout hot step: ``(N, M)`` in, ``(N, M)`` out.

        The distributed pipeline is transposed-native — the arenas hold
        ``(L, M)`` slabs and the gathered solution is ``(N, M)`` — so a
        caller already working in that orientation skips both the RHS
        transpose view and the output transpose copy.  ``out_t``
        defaults to the session's gather buffer (reused across steps —
        copy it if you keep references).
        """
        if self.closed:
            raise RuntimeError("session is closed")
        dt = np.asarray(dt)
        n, m = self.request.n, self.request.m
        if dt.shape != (n, m):
            raise ValueError(
                f"dt has shape {dt.shape}, session bound for {(n, m)}"
            )
        if dt.dtype != self._dtype:
            dt = dt.astype(self._dtype)
        pool = self._attached_pool()
        pool.scatter_rhs(dt, self.bounds)
        pool.eliminate()
        xb = solve_reduced(*assemble_reduced(pool.gather_reduced()))
        pool.scatter_boundary(xb)
        pool.backsub()
        pool.gather_solution(self._xt, self.bounds)
        if out_t is None:
            out_t = self._xt
        else:
            np.copyto(out_t, self._xt)
        self.steps += 1
        return out_t

    def step_once(self, d=None, out=None) -> SolveOutcome:
        """One fully-instrumented step: the one-shot trace schema."""
        request = self.request
        if d is None:
            d = request.d
        if out is None:
            out = request.out
        d = self._canon_d(d)
        timings = list(self.bind_stages)
        x = self._pipeline(d, out, timings)
        trace = SolveTrace(
            backend=self.backend.name,
            m=request.m,
            n=request.n,
            dtype=request.dtype,
            k=0,
            k_source="fixed",
            workers=1,
            ranks=self.ranks,
            plan_cache="n/a",
            factorization="n/a",
            system=request.system.kind,
            stages=[StageTiming(name, secs) for name, secs in timings],
        )
        trace.decision = request.decision
        self.backend._set_trace(trace)
        self.steps += 1
        return SolveOutcome(x=x, trace=trace)

    # -- lifecycle -----------------------------------------------------
    @property
    def m(self) -> int:
        return self.request.m

    @property
    def n(self) -> int:
        return self.request.n

    @property
    def dtype(self) -> np.dtype:
        return self._dtype

    def describe(self) -> dict:
        """Session summary: mode, geometry, step count."""
        return {
            "mode": self.mode,
            "m": self.request.m,
            "n": self.request.n,
            "dtype": np.dtype(self._dtype).name,
            "ranks": self.ranks,
            "bounds": list(self.bounds),
            "steps": self.steps,
        }

    def close(self) -> None:
        """Drop buffers and forget the pool (arenas stay with the pool)."""
        if self.closed:
            return
        self.closed = True
        self._pool = None
        self._epoch = None
        self._out = None

    def __enter__(self) -> "DistributedBoundSolve":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
