"""The ``distributed`` backend: one huge system across ``P`` workers.

Splits a single :class:`~repro.backends.request.SolveRequest` into
``P`` contiguous N-slabs, ships each slab to a persistent
:mod:`multiprocessing` worker over pickle-free shared memory, runs the
modified-Thomas elimination locally per slab, gathers the ``2P``-row
reduced interface system, solves it on rank 0 through
:class:`~repro.core.blocktridiag.BlockThomasFactorization` (``B = 1``
fast path), scatters the boundary values back, and lets every worker
back-substitute its interior in parallel.

Negotiation is the normal :class:`~repro.backends.base.Backend`
protocol — ``Capabilities.max_ranks`` advertises the multi-rank axis,
periodic systems ride the generic
:meth:`~repro.backends.base.BackendBase._periodic_fallback` (this
backend is its long-promised non-engine consumer), and ``ranks=1``
short-circuits to the engine's ``k = 0`` route so the single-rank
anchor stays bitwise identical to the engine.  For ``P >= 2`` the
result is bitwise identical to
:func:`~repro.distributed.partition.partitioned_solve_reference` at the
same ``P`` (same functions, same values) and agrees with the global
Thomas solve to reassociation-level rounding.
"""

from __future__ import annotations

import time

import numpy as np

from repro.backends.base import BackendBase, Capabilities
from repro.backends.request import SolveOutcome, SolveRequest
from repro.backends.trace import SolveTrace, StageTiming
from repro.distributed.partition import (
    assemble_reduced,
    effective_ranks,
    slab_bounds,
    solve_reduced,
)
from repro.distributed.pool import get_pool

__all__ = ["DistributedBackend", "MAX_RANKS", "DEFAULT_RANKS"]

#: Largest rank count the backend will negotiate.
MAX_RANKS = 64

#: Ranks used when the caller names the backend but pins no ``ranks=``.
DEFAULT_RANKS = 2


class DistributedBackend(BackendBase):
    """Multi-process N-partition solver behind the two-method protocol."""

    name = "distributed"
    #: Below the engine (100) so plain ``backend="auto"`` never lands
    #: here; the router's ``route_ranks`` rule (or an explicit
    #: ``ranks>1``) is what brings traffic in.
    priority = 30

    def __init__(
        self,
        *,
        default_ranks: int = DEFAULT_RANKS,
        timeout_s: float | None = None,
    ):
        super().__init__()
        self.default_ranks = int(default_ranks)
        self.timeout_s = timeout_s
        self._caps = None

    def capabilities(self) -> Capabilities:
        if self._caps is None:
            self._caps = Capabilities(
                periodic=True,  # via the generic Sherman–Morrison fallback
                max_workers=1,
                max_ranks=MAX_RANKS,
                prepared=False,
                systems=("tridiagonal",),
                description=(
                    "multi-process N-partition solver: modified-Thomas "
                    "slabs + reduced interface system over shared memory"
                ),
            )
        return self._caps

    # -- execution -----------------------------------------------------
    def execute(self, request: SolveRequest) -> SolveOutcome:
        if request.periodic:
            return self._periodic_fallback(request)
        ranks = effective_ranks(
            request.n, request.ranks or self.default_ranks
        )
        if ranks == 1:
            return self._delegate_single_rank(request)
        return self._execute_partitioned(request, ranks)

    def _delegate_single_rank(self, request: SolveRequest) -> SolveOutcome:
        """``ranks=1``: the engine's ``k = 0`` route *is* the slab solve.

        One slab means no interface system; running the engine keeps
        the single-rank anchor bitwise identical to
        ``solve_batch(..., k=0)`` (the property tests pin this).
        """
        from repro.engine import default_engine

        outcome = default_engine().run(request.replace(k=0))
        trace = outcome.trace
        trace.backend = self.name
        trace.ranks = 1
        self._set_trace(trace)
        return outcome

    def _execute_partitioned(
        self, request: SolveRequest, ranks: int
    ) -> SolveOutcome:
        m, n = request.m, request.n
        t0 = time.perf_counter()
        bounds = slab_bounds(n, ranks)
        at = np.ascontiguousarray(request.a.T)
        bt = np.ascontiguousarray(request.b.T)
        ct = np.ascontiguousarray(request.c.T)
        dt = np.ascontiguousarray(request.d.T)
        t_partition = time.perf_counter() - t0

        pool = get_pool(ranks, timeout_s=self.timeout_s)
        t_comms = 0.0

        t1 = time.perf_counter()
        pool.attach(bounds, m, bt.dtype)
        pool.scatter_slabs(at, bt, ct, dt, bounds)
        t_comms += time.perf_counter() - t1

        t1 = time.perf_counter()
        pool.eliminate()
        t_eliminate = time.perf_counter() - t1

        t1 = time.perf_counter()
        reduced_rows = pool.gather_reduced()
        t_comms += time.perf_counter() - t1

        t1 = time.perf_counter()
        xb = solve_reduced(*assemble_reduced(reduced_rows))
        t_reduced = time.perf_counter() - t1

        t1 = time.perf_counter()
        pool.scatter_boundary(xb)
        t_comms += time.perf_counter() - t1

        t1 = time.perf_counter()
        pool.backsub()
        t_backsub = time.perf_counter() - t1

        t1 = time.perf_counter()
        xt = np.empty((n, m), dtype=bt.dtype)
        pool.gather_solution(xt, bounds)
        if request.out is not None:
            x = request.out
            np.copyto(x, xt.T)
        else:
            x = np.ascontiguousarray(xt.T)
        t_comms += time.perf_counter() - t1

        trace = SolveTrace(
            backend=self.name,
            m=m,
            n=n,
            dtype=request.dtype,
            k=0,
            k_source="fixed",
            workers=1,
            ranks=ranks,
            plan_cache="n/a",
            factorization="n/a",
            system=request.system.kind,
            stages=[
                StageTiming("partition", t_partition),
                StageTiming(f"local-eliminate [{ranks} ranks]", t_eliminate),
                StageTiming("reduced-solve", t_reduced),
                StageTiming(f"backsub [{ranks} ranks]", t_backsub),
                StageTiming("comms", t_comms),
            ],
        )
        self._set_trace(trace)
        return SolveOutcome(x=x, trace=trace)
