"""N-partition math for the distributed backend.

The spine of the distributed tier is Wang's partition method as used by
DistD2 (Akkurt et al., arXiv 2411.13532): split one length-``N``
tridiagonal system into ``P`` contiguous slabs, run a **modified
Thomas** elimination inside each slab (two sweeps), and what remains is
a ``2P``-row *reduced interface system* coupling only the first and
last unknown of every slab.  Solve that small system once, scatter the
boundary values back, and every interior unknown follows from one
vectorized substitution.

All slab kernels here work on **transposed** ``(L, M)`` arrays — row
``i`` holds position ``i`` of all ``M`` systems — so each recurrence
step is one contiguous M-wide vector operation, exactly like the
engine's interleaved ``k = 0`` Thomas layout.

The functions in this module are the *single* implementation of the
math: the multiprocessing workers (:mod:`repro.distributed.pool`) call
:func:`eliminate_slab` / :func:`backsub_slab` on shared-memory views,
and :func:`partitioned_solve_reference` calls them in-process on the
same values — so the worker path is bitwise identical to the reference
by construction.

Derivation (per slab, rows ``0..L-1``; ``x[-1]``/``x[L]`` are the
neighbouring slabs' boundary unknowns, carried by the padded ``a[0]``
and ``c[L-1]`` coefficients):

* **Forward sweep** eliminates the sub-diagonal while tracking the
  coupling back to the slab's own first unknown ``x0``; row ``i``
  becomes ``x_i + ar_i x0 + cr_i x_{i+1} = dr_i``.
* **Backward sweep** substitutes upward so interior rows couple only
  ``(x0, xl)`` where ``xl = x_{L-1}``:
  ``x_i + ar_i x0 + cr_i xl = dr_i``.
* Two rows survive with outside couplings — row ``L-1`` (couples
  ``x0`` and the next slab's first unknown) and row ``0`` (couples the
  previous slab's last unknown and ``xl``).  In the interleaved
  ordering ``(x0^0, xl^0, x0^1, xl^1, ...)`` those ``2P`` equations
  form a scalar **tridiagonal** system with unit diagonal — solved via
  :class:`~repro.core.blocktridiag.BlockThomasFactorization`'s
  ``B = 1`` fast path.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "MIN_SLAB_ROWS",
    "slab_bounds",
    "effective_ranks",
    "eliminate_slab",
    "backsub_slab",
    "assemble_reduced",
    "solve_reduced",
    "partitioned_solve_reference",
]

#: A slab must contain at least its two boundary rows.
MIN_SLAB_ROWS = 2


def effective_ranks(n: int, ranks: int) -> int:
    """Clamp a requested rank count to what ``n`` rows can feed."""
    if ranks < 1:
        raise ValueError(f"ranks must be >= 1, got {ranks}")
    return max(1, min(int(ranks), n // MIN_SLAB_ROWS))


def slab_bounds(n: int, ranks: int) -> list[tuple[int, int]]:
    """Contiguous near-equal ``[lo, hi)`` slabs, each >= 2 rows."""
    p = effective_ranks(n, ranks)
    base, extra = divmod(n, p)
    bounds = []
    lo = 0
    for r in range(p):
        hi = lo + base + (1 if r < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


def eliminate_slab(a, b, c, d):
    """Modified-Thomas elimination of one ``(L, M)`` slab.

    Returns ``(rep, reduced)``:

    * ``rep`` — a ``(3, L, M)`` array whose rows ``1..L-2`` hold the
      interior representation ``x_i = dr_i - ar_i*x0 - cr_i*xl``
      (``rep[0] = ar``, ``rep[1] = cr``, ``rep[2] = dr``).  Rows ``0``
      and ``L-1`` are scratch.  This stays local to the worker between
      the eliminate and backsub phases.
    * ``reduced`` — a ``(6, M)`` array with the slab's two normalized
      boundary equations, the only data shipped to rank 0:
      ``[sub0, sup0, rhs0]`` for ``x0`` (``sub0`` couples the previous
      slab's last unknown, ``sup0`` couples ``xl``) and
      ``[subl, supl, rhsl]`` for ``xl`` (``subl`` couples ``x0``,
      ``supl`` couples the next slab's first unknown).
    """
    L, M = b.shape
    if L < MIN_SLAB_ROWS:
        raise ValueError(f"slab needs >= {MIN_SLAB_ROWS} rows, got {L}")
    rep = np.empty((3, L, M), dtype=b.dtype)
    ar, cr, dr = rep[0], rep[1], rep[2]

    # forward sweep: eliminate the sub-diagonal; row i reads
    #   x_i + ar[i]*x0 + cr[i]*x_{i+1} = dr[i]
    ar[1] = a[1] / b[1]
    cr[1] = c[1] / b[1]
    dr[1] = d[1] / b[1]
    for i in range(2, L):
        r = b[i] - a[i] * cr[i - 1]
        ar[i] = -(a[i] * ar[i - 1]) / r
        cr[i] = c[i] / r
        dr[i] = (d[i] - a[i] * dr[i - 1]) / r

    # row L-1 is now the slab's second boundary equation:
    #   x_{L-1} + ar[L-1]*x0 + cr[L-1]*x_L = dr[L-1]
    subl = ar[L - 1].copy()
    supl = cr[L - 1].copy()
    rhsl = dr[L - 1].copy()

    # backward sweep: interior rows come to couple (x0, xl) only.
    # Row L-2 is already in that form; order matters below (cr last,
    # its old value feeds all three updates).
    for i in range(L - 3, 0, -1):
        ar[i] = ar[i] - cr[i] * ar[i + 1]
        dr[i] = dr[i] - cr[i] * dr[i + 1]
        cr[i] = -(cr[i] * cr[i + 1])

    # row 0: a0*x_{-1} + b0*x0 + c0*x1 = d0; substituting row 1's
    # representation yields the first boundary equation.
    if L == 2:
        # x1 *is* xl: row 0 couples (x_{-1}, x0, xl) directly.
        den = b[0]
        sub0 = a[0] / den
        sup0 = c[0] / den
        rhs0 = d[0] / den
    else:
        den = b[0] - c[0] * ar[1]
        sub0 = a[0] / den
        sup0 = -(c[0] * cr[1]) / den
        rhs0 = (d[0] - c[0] * dr[1]) / den

    reduced = np.empty((6, M), dtype=b.dtype)
    reduced[0] = sub0
    reduced[1] = sup0
    reduced[2] = rhs0
    reduced[3] = subl
    reduced[4] = supl
    reduced[5] = rhsl
    return rep, reduced


def backsub_slab(rep, x_first, x_last, out) -> None:
    """Fill one slab's ``(L, M)`` solution from its boundary values.

    ``x_first``/``x_last`` are ``(M,)`` vectors from the reduced solve;
    every interior row follows in one vectorized substitution.
    """
    L = out.shape[0]
    ar, cr, dr = rep[0], rep[1], rep[2]
    out[0] = x_first
    out[L - 1] = x_last
    if L > 2:
        out[1:L - 1] = (
            dr[1:L - 1] - ar[1:L - 1] * x_first - cr[1:L - 1] * x_last
        )


def assemble_reduced(reduced_rows):
    """Stack per-slab ``(6, M)`` boundary equations into the ``2P``-row
    interface system ``(ra, rb, rc, rd)``, each ``(M, 2P)``.

    Ordering interleaves ``(x0^p, xl^p)`` so the system is scalar
    tridiagonal: row ``2p`` couples the previous slab's last unknown
    (column ``2p-1``) and ``xl^p`` (column ``2p+1``); row ``2p+1``
    couples ``x0^p`` (column ``2p``) and the next slab's first unknown
    (column ``2p+2``).  The padded corners are exactly zero because the
    global ``a[:, 0]`` / ``c[:, -1]`` are.
    """
    p = len(reduced_rows)
    m = reduced_rows[0].shape[1]
    dtype = reduced_rows[0].dtype
    ra = np.empty((m, 2 * p), dtype=dtype)
    rb = np.ones((m, 2 * p), dtype=dtype)
    rc = np.empty((m, 2 * p), dtype=dtype)
    rd = np.empty((m, 2 * p), dtype=dtype)
    for i, rows in enumerate(reduced_rows):
        ra[:, 2 * i] = rows[0]
        rc[:, 2 * i] = rows[1]
        rd[:, 2 * i] = rows[2]
        ra[:, 2 * i + 1] = rows[3]
        rc[:, 2 * i + 1] = rows[4]
        rd[:, 2 * i + 1] = rows[5]
    ra[:, 0] = 0.0
    rc[:, -1] = 0.0
    return ra, rb, rc, rd


def solve_reduced(ra, rb, rc, rd):
    """Solve the ``(M, 2P)`` interface system.

    Runs :class:`~repro.core.blocktridiag.BlockThomasFactorization`'s
    ``B = 1`` scalar fast path (the same op sequence as
    ``thomas_solve_batch``) and returns the boundary values ``(M, 2P)``.
    """
    from repro.core.blocktridiag import BlockThomasFactorization

    fact = BlockThomasFactorization.factor(
        ra[..., None, None], rb[..., None, None], rc[..., None, None]
    )
    return fact.solve(rd[..., None])[..., 0]


def partitioned_solve_reference(a, b, c, d, ranks, *, bounds=None, out=None):
    """In-process reference for the distributed pipeline.

    Runs the exact slab kernels the multiprocessing workers run —
    same functions, same values, same op order — so the worker path is
    bitwise identical to this reference.  ``bounds`` overrides the
    default near-equal partition (each slab must keep >= 2 rows), which
    the cross-rank determinism property test exercises.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    c = np.asarray(c)
    d = np.asarray(d)
    m, n = b.shape
    if bounds is None:
        bounds = slab_bounds(n, ranks)
    else:
        bounds = [(int(lo), int(hi)) for lo, hi in bounds]
        if bounds[0][0] != 0 or bounds[-1][1] != n:
            raise ValueError(f"bounds must cover [0, {n})")
        for (lo, hi), (lo2, _) in zip(bounds, bounds[1:]):
            if hi != lo2:
                raise ValueError("bounds must be contiguous")
        if any(hi - lo < MIN_SLAB_ROWS for lo, hi in bounds):
            raise ValueError(f"every slab needs >= {MIN_SLAB_ROWS} rows")

    at = np.ascontiguousarray(a.T)
    bt = np.ascontiguousarray(b.T)
    ct = np.ascontiguousarray(c.T)
    dt = np.ascontiguousarray(d.T)

    reps = []
    reduced_rows = []
    for lo, hi in bounds:
        rep, reduced = eliminate_slab(
            at[lo:hi], bt[lo:hi], ct[lo:hi], dt[lo:hi]
        )
        reps.append(rep)
        reduced_rows.append(reduced)

    xb = solve_reduced(*assemble_reduced(reduced_rows))

    xt = np.empty((n, m), dtype=b.dtype)
    for i, (lo, hi) in enumerate(bounds):
        backsub_slab(
            reps[i], xb[:, 2 * i], xb[:, 2 * i + 1], xt[lo:hi]
        )

    if out is not None:
        np.copyto(out, xt.T)
        return out
    return np.ascontiguousarray(xt.T)
