"""Persistent multiprocessing workers behind the distributed backend.

One :class:`WorkerPool` owns ``P`` long-lived worker processes plus one
:class:`multiprocessing.shared_memory.SharedMemory` arena per rank.
All bulk data — the four transposed ``(L, M)`` slab diagonals, the
``(L, M)`` solution slab, the ``(6, M)`` reduced boundary equations
and the ``(2, M)`` scattered boundary values — lives in those arenas;
the :class:`~multiprocessing.connection.Connection` pipes carry only
tiny command tuples, so nothing numeric is ever pickled.

Workers are phase-driven: an ``eliminate`` command runs
:func:`repro.distributed.partition.eliminate_slab` over the arena and
leaves the interior representation in worker-local memory; a later
``backsub`` command consumes it together with the scattered boundary
values.  Both phases run the *same functions* the in-process reference
(:func:`~repro.distributed.partition.partitioned_solve_reference`)
runs, so the multiprocess result is bitwise identical to it.

A worker that dies (or stops answering within the command deadline)
surfaces as a typed :class:`DistributedWorkerError` — never a hang —
and the pool marks itself broken; the next solve builds a fresh pool.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import threading
import time
import traceback

import numpy as np

from repro.distributed.partition import backsub_slab, eliminate_slab

__all__ = [
    "DistributedWorkerError",
    "WorkerPool",
    "get_pool",
    "shutdown_pools",
]

#: Per-command deadline (seconds); a stuck worker fails fast instead of
#: stalling the caller (and CI).  Override with
#: ``REPRO_DISTRIBUTED_TIMEOUT_S``.
DEFAULT_TIMEOUT_S = float(os.environ.get("REPRO_DISTRIBUTED_TIMEOUT_S", "120"))

_POLL_S = 0.05


class DistributedWorkerError(RuntimeError):
    """A distributed worker crashed, misbehaved, or timed out."""


def _arena_layout(slab_rows: int, m: int, itemsize: int):
    """Offsets of every array in one rank's shared-memory arena."""
    layout = {}
    offset = 0
    for name, shape in (
        ("a", (slab_rows, m)),
        ("b", (slab_rows, m)),
        ("c", (slab_rows, m)),
        ("d", (slab_rows, m)),
        ("x", (slab_rows, m)),
        ("reduced", (6, m)),
        ("boundary", (2, m)),
    ):
        layout[name] = (offset, shape)
        offset += int(np.prod(shape)) * itemsize
    return layout, offset


def _arena_views(buf, slab_rows: int, m: int, dtype):
    """NumPy views into one arena buffer, keyed by array name."""
    itemsize = np.dtype(dtype).itemsize
    layout, _ = _arena_layout(slab_rows, m, itemsize)
    return {
        name: np.ndarray(shape, dtype=dtype, buffer=buf, offset=offset)
        for name, (offset, shape) in layout.items()
    }


def worker_main(conn) -> None:
    """Worker process entry point (module-level for spawn contexts)."""
    from multiprocessing import shared_memory

    shm = None
    views = None
    rep = None
    try:
        while True:
            try:
                cmd = conn.recv()
            except (EOFError, OSError):
                break
            op = cmd[0]
            try:
                if op == "attach":
                    _, name, slab_rows, m, dtype_str = cmd
                    if shm is not None:
                        shm.close()
                    # under the default fork context the resource
                    # tracker is shared with the parent, so this
                    # attach-side registration is idempotent and the
                    # parent's unlink() retires the segment cleanly
                    shm = shared_memory.SharedMemory(name=name)
                    views = _arena_views(shm.buf, slab_rows, m, dtype_str)
                    rep = None
                elif op == "eliminate":
                    rep, reduced = eliminate_slab(
                        views["a"], views["b"], views["c"], views["d"]
                    )
                    views["reduced"][:] = reduced
                elif op == "backsub":
                    if rep is None:
                        raise RuntimeError("backsub before eliminate")
                    boundary = views["boundary"]
                    backsub_slab(rep, boundary[0], boundary[1], views["x"])
                elif op == "exit":
                    conn.send(("ok",))
                    break
                else:
                    raise RuntimeError(f"unknown command {op!r}")
                conn.send(("ok",))
            except Exception:
                conn.send(("err", traceback.format_exc()))
    finally:
        if shm is not None:
            shm.close()
        conn.close()


class WorkerPool:
    """``P`` persistent workers + their shared-memory arenas."""

    def __init__(self, ranks: int, *, timeout_s: float | None = None):
        if ranks < 2:
            raise ValueError(f"a worker pool needs ranks >= 2, got {ranks}")
        self.ranks = int(ranks)
        self.timeout_s = DEFAULT_TIMEOUT_S if timeout_s is None else timeout_s
        self.broken = False
        #: bumped whenever arena *contents other than the RHS* may have
        #: changed (arena rebuilds, full slab scatters).  Bound sessions
        #: record the epoch after scattering their coefficients and
        #: re-scatter when it moves — the interleave detector that lets
        #: a session skip the coefficient scatter in the steady state.
        self.epoch = 0
        self._lock = threading.Lock()
        self._geometry = None  # (slab_row_counts, m, dtype_str)
        self._shms = []
        self._views = []
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX hosts
            ctx = multiprocessing.get_context("spawn")
        try:
            # start the resource tracker *before* forking so every
            # worker inherits the same tracker; attach-side shm
            # registrations then dedupe against the parent's and the
            # parent's unlink() retires each segment exactly once
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:  # pragma: no cover - tracker internals moved
            pass
        self._procs = []
        self._conns = []
        for _ in range(self.ranks):
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=worker_main, args=(child,), daemon=True
            )
            proc.start()
            child.close()
            self._procs.append(proc)
            self._conns.append(parent)

    # -- command plumbing ---------------------------------------------
    def _send(self, rank: int, cmd) -> None:
        try:
            self._conns[rank].send(cmd)
        except (OSError, ValueError) as exc:
            self.broken = True
            raise DistributedWorkerError(
                f"rank {rank} pipe closed ({exc}); worker "
                f"{'dead' if not self._procs[rank].is_alive() else 'alive'}"
            ) from exc

    def _await(self, rank: int):
        conn = self._conns[rank]
        proc = self._procs[rank]
        deadline = time.monotonic() + self.timeout_s
        while True:
            try:
                if conn.poll(_POLL_S):
                    reply = conn.recv()
                    break
            except (EOFError, OSError) as exc:
                self.broken = True
                raise DistributedWorkerError(
                    f"rank {rank} died mid-command (exitcode "
                    f"{proc.exitcode})"
                ) from exc
            if not proc.is_alive():
                self.broken = True
                raise DistributedWorkerError(
                    f"rank {rank} worker died (exitcode {proc.exitcode})"
                )
            if time.monotonic() > deadline:
                self.broken = True
                raise DistributedWorkerError(
                    f"rank {rank} timed out after {self.timeout_s:.0f}s"
                )
        if reply[0] != "ok":
            self.broken = True
            raise DistributedWorkerError(
                f"rank {rank} failed:\n{reply[1]}"
            )
        return reply

    def _broadcast(self, cmd) -> None:
        """Send one command to every rank, then await every reply."""
        for rank in range(self.ranks):
            self._send(rank, cmd)
        for rank in range(self.ranks):
            self._await(rank)

    # -- arenas --------------------------------------------------------
    def attach(self, bounds, m: int, dtype) -> None:
        """(Re)build the arenas for one partition geometry.

        Arenas are reused while the slab shapes and dtype are stable —
        the common case for repeated solves of one problem shape.
        """
        from multiprocessing import shared_memory

        dtype = np.dtype(dtype)
        slab_rows = tuple(hi - lo for lo, hi in bounds)
        geometry = (slab_rows, int(m), dtype.str)
        if geometry == self._geometry:
            return
        self.epoch += 1
        self._release_arenas()
        views = []
        for rank, rows in enumerate(slab_rows):
            _, nbytes = _arena_layout(rows, m, dtype.itemsize)
            shm = shared_memory.SharedMemory(create=True, size=nbytes)
            self._shms.append(shm)
            views.append(_arena_views(shm.buf, rows, m, dtype))
            self._send(rank, ("attach", shm.name, rows, m, dtype.str))
        for rank in range(self.ranks):
            self._await(rank)
        self._views = views
        self._geometry = geometry

    def _release_arenas(self) -> None:
        self._views = []
        self._geometry = None
        shms, self._shms = self._shms, []
        for shm in shms:
            try:
                shm.close()
                shm.unlink()
            except OSError:
                pass

    # -- the four pipeline phases -------------------------------------
    def scatter_slabs(self, at, bt, ct, dt, bounds) -> None:
        """Copy the transposed ``(N, M)`` diagonals into the arenas."""
        self.epoch += 1
        for rank, (lo, hi) in enumerate(bounds):
            views = self._views[rank]
            views["a"][:] = at[lo:hi]
            views["b"][:] = bt[lo:hi]
            views["c"][:] = ct[lo:hi]
            views["d"][:] = dt[lo:hi]

    def scatter_rhs(self, dt, bounds) -> None:
        """Copy only the transposed ``(N, M)`` right-hand side.

        The per-step scatter of a bound session: the coefficient slabs
        already live in the arenas (``eliminate_slab`` never mutates
        them), so a new RHS against the same matrix ships one array
        instead of four.  ``dt`` may be a strided transpose view — the
        arena assignment is the only copy.  Does **not** bump
        :attr:`epoch`: the coefficient contents are untouched.
        """
        for rank, (lo, hi) in enumerate(bounds):
            self._views[rank]["d"][:] = dt[lo:hi]

    def eliminate(self) -> None:
        """All ranks run their local modified-Thomas elimination."""
        self._broadcast(("eliminate",))

    def gather_reduced(self) -> list:
        """Collect every rank's ``(6, M)`` boundary equations."""
        return [views["reduced"].copy() for views in self._views]

    def scatter_boundary(self, xb) -> None:
        """Ship each rank its solved ``(x_first, x_last)`` pair."""
        for rank, views in enumerate(self._views):
            views["boundary"][0] = xb[:, 2 * rank]
            views["boundary"][1] = xb[:, 2 * rank + 1]

    def backsub(self) -> None:
        """All ranks back-substitute their interior rows."""
        self._broadcast(("backsub",))

    def gather_solution(self, xt, bounds) -> None:
        """Copy the per-rank ``(L, M)`` solutions into ``xt``."""
        for rank, (lo, hi) in enumerate(bounds):
            xt[lo:hi] = self._views[rank]["x"]

    # -- lifecycle -----------------------------------------------------
    def shutdown(self) -> None:
        """Stop the workers and free every arena (idempotent)."""
        for rank, conn in enumerate(self._conns):
            try:
                conn.send(("exit",))
            except (OSError, ValueError):
                pass
        for proc in self._procs:
            proc.join(timeout=2.0)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=2.0)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        self._release_arenas()
        self.broken = True


_pools: dict = {}
_pools_lock = threading.Lock()


def get_pool(ranks: int, *, timeout_s: float | None = None) -> WorkerPool:
    """The process-wide pool for ``ranks`` workers (rebuilt if broken)."""
    with _pools_lock:
        pool = _pools.get(ranks)
        if pool is not None and pool.broken:
            pool.shutdown()
            pool = None
        if pool is None:
            pool = WorkerPool(ranks, timeout_s=timeout_s)
            _pools[ranks] = pool
        return pool


def shutdown_pools() -> None:
    """Stop every cached pool (used by tests and atexit)."""
    with _pools_lock:
        pools = list(_pools.values())
        _pools.clear()
    for pool in pools:
        pool.shutdown()


atexit.register(shutdown_pools)
