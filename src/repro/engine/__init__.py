"""Solve-plan execution engine (plan → workspace → execute).

Freezes the paper's launch-time decisions (transition ``k``, sliding-
window schedule, buffer layout) into cached :class:`SolvePlan` objects,
pools the preallocated workspaces they imply, and executes repeated
solves against them — optionally sharded across a thread pool with
``workers=``.  Results are bitwise identical to the single-call
:class:`~repro.core.hybrid.HybridSolver` reference path.

Typical use::

    from repro.engine import default_engine

    eng = default_engine()
    x = eng.solve_batch(a, b, c, d)          # cold: plans + allocates
    x = eng.solve_batch(a, b, c, d)          # warm: reuses both
    x = eng.solve_batch(a, b, c, d, workers=4)

    handle = eng.prepare(a, b, c)            # factor once…
    x = handle.solve(d)                      # …solve RHS-only forever

Time-stepping loops that own their request can go one layer lower and
bind a session — plan, factorization, workspaces and shard geometry
resolved once, then an allocation-free ``step`` per right-hand side::

    from repro.backends.request import SolveRequest

    session = eng.bind(SolveRequest.build(a, b, c, d))
    for _ in range(steps):
        x = session.step(d)                  # hot loop: no dispatch cost
    session.close()

``repro.solve_batch(..., algorithm="auto")`` routes through
:func:`default_engine` transparently, and by default fingerprints the
coefficients so repeated solves of one matrix hit the factorization
cache on their own (see :mod:`repro.engine.prepared`).
"""

from repro.engine.diskcache import FactorizationDiskCache
from repro.engine.engine import EngineStats, ExecutionEngine, default_engine
from repro.engine.executor import execute_plan, shard_bounds
from repro.engine.plan import SolvePlan, build_plan, plan_key
from repro.engine.prepared import (
    CyclicRhsFactorization,
    PreparedPlan,
    ThomasRhsFactorization,
    coefficient_fingerprint,
    prepare,
)
from repro.engine.session import BoundSolve
from repro.engine.workspace import PlanWorkspace, PreparedWorkspace

__all__ = [
    "BoundSolve",
    "CyclicRhsFactorization",
    "EngineStats",
    "ExecutionEngine",
    "FactorizationDiskCache",
    "PlanWorkspace",
    "PreparedPlan",
    "PreparedWorkspace",
    "SolvePlan",
    "ThomasRhsFactorization",
    "build_plan",
    "coefficient_fingerprint",
    "default_engine",
    "execute_plan",
    "plan_key",
    "prepare",
    "shard_bounds",
]
