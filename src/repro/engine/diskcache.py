"""Spill-to-disk tier for the engine's factorization cache.

The in-memory factorization cache (:class:`ExecutionEngine
<repro.engine.engine.ExecutionEngine>`, ``max_factorizations``) is
deliberately small — stored eliminations are workspace-sized and the
LRU keeps the hot set resident.  Long-running simulations rotate
through more coefficient sets than that (multi-region time steppers,
parameter sweeps), and every eviction costs a full re-elimination on
the next sighting.

This module adds a second, capacity-bounded tier: factorizations spill
to digest-named ``.npz`` files under a configurable cache directory,
and a memory miss consults the directory before re-factoring.  The
files are written atomically (temp file + ``os.replace``) so
concurrent engines — or separate processes — can share one directory;
the stored arrays are the exact elimination state, so a disk-served
solve reproduces the same bits a memory-served one would.

Enable it per engine::

    engine = ExecutionEngine(cache_dir="/tmp/repro-cache")

Eviction is size-capped (``max_bytes``): after each spill, the oldest
files (by modification time) are removed until the directory fits.
"""

from __future__ import annotations

import os
import tempfile
import threading
import time

import numpy as np

__all__ = ["FactorizationDiskCache"]

#: default on-disk budget: enough for dozens of factored PDE-sized
#: batches while staying a rounding error on any modern disk
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

_SUFFIX = ".npz"


def _key_filename(key: tuple) -> str:
    """Digest-named, human-skim-friendly filename for a cache key.

    ``key`` is the engine's factorization key ``(m, n, dtype_str, k,
    system, periodic, digest)``.  The content digest leads (it is the
    unique part); the shape/plan coordinates follow for debuggability.
    Tridiagonal entries (system tag ``""``) keep the historical
    filename layout byte-for-byte; banded entries append their tag so
    stencils can never alias on disk either.
    """
    m, n, dtype_str, k, system, periodic, digest = key
    dtype = np.dtype(dtype_str).name
    tag = "-cyclic" if periodic else ""
    if system:
        tag = f"-{system}{tag}"
    return f"{digest}-{m}x{n}-{dtype}-k{k}{tag}{_SUFFIX}"


def _pack(fact, payload: dict, prefix: str = "") -> None:
    """Flatten a factorization into ``payload`` arrays under ``prefix``."""
    from repro.core.blocktridiag import BlockThomasFactorization
    from repro.core.factorize import HybridFactorization, ThomasFactorization
    from repro.core.pentadiag import PentaFactorization
    from repro.engine.prepared import (
        CyclicRhsFactorization,
        ThomasRhsFactorization,
    )

    if isinstance(fact, ThomasRhsFactorization):
        payload[prefix + "kind"] = np.array("thomas")
        payload[prefix + "ta"] = fact.ta
        payload[prefix + "cp"] = fact.cp
        payload[prefix + "denom"] = fact.denom
    elif isinstance(fact, PentaFactorization):
        payload[prefix + "kind"] = np.array("penta")
        payload[prefix + "te"] = fact.te
        payload[prefix + "beta"] = fact.beta
        payload[prefix + "alpha"] = fact.alpha
        payload[prefix + "gamma"] = fact.gamma
        payload[prefix + "delta"] = fact.delta
    elif isinstance(fact, BlockThomasFactorization):
        payload[prefix + "kind"] = np.array("blockthomas")
        payload[prefix + "A"] = fact.A
        payload[prefix + "Cp"] = fact.Cp
        payload[prefix + "piv"] = fact.piv
    elif isinstance(fact, HybridFactorization):
        payload[prefix + "kind"] = np.array("hybrid")
        payload[prefix + "k"] = np.array(fact.k)
        for i, (k1, k2) in enumerate(fact.level_factors):
            payload[f"{prefix}lvl{i}_k1"] = k1
            payload[f"{prefix}lvl{i}_k2"] = k2
        red = fact.reduced
        payload[prefix + "red_a"] = red.a
        payload[prefix + "red_cp"] = red.cp
        payload[prefix + "red_inv_denom"] = red.inv_denom
    elif isinstance(fact, CyclicRhsFactorization):
        payload[prefix + "kind"] = np.array("cyclic")
        payload[prefix + "q"] = fact.q
        payload[prefix + "w"] = fact.w
        payload[prefix + "scale"] = fact.scale
        payload[prefix + "singular"] = fact.singular
        _pack(fact.core, payload, prefix=prefix + "core_")
    else:  # pragma: no cover - new kinds must be taught to spill
        raise TypeError(f"cannot spill factorization {type(fact).__name__}")


def _unpack(data, prefix: str = ""):
    """Rebuild a factorization from ``_pack``'s array layout."""
    from repro.core.blocktridiag import BlockThomasFactorization
    from repro.core.factorize import HybridFactorization, ThomasFactorization
    from repro.core.pentadiag import PentaFactorization
    from repro.engine.prepared import (
        CyclicRhsFactorization,
        ThomasRhsFactorization,
    )

    kind = str(data[prefix + "kind"])
    if kind == "thomas":
        return ThomasRhsFactorization(
            ta=data[prefix + "ta"],
            cp=data[prefix + "cp"],
            denom=data[prefix + "denom"],
        )
    if kind == "penta":
        return PentaFactorization(
            data[prefix + "te"],
            data[prefix + "beta"],
            data[prefix + "alpha"],
            data[prefix + "gamma"],
            data[prefix + "delta"],
        )
    if kind == "blockthomas":
        return BlockThomasFactorization(
            data[prefix + "A"],
            data[prefix + "Cp"],
            data[prefix + "piv"],
        )
    if kind == "hybrid":
        k = int(data[prefix + "k"])
        return HybridFactorization(
            k=k,
            level_factors=[
                (data[f"{prefix}lvl{i}_k1"], data[f"{prefix}lvl{i}_k2"])
                for i in range(k)
            ],
            reduced=ThomasFactorization(
                a=data[prefix + "red_a"],
                cp=data[prefix + "red_cp"],
                inv_denom=data[prefix + "red_inv_denom"],
            ),
        )
    if kind == "cyclic":
        return CyclicRhsFactorization(
            core=_unpack(data, prefix=prefix + "core_"),
            q=data[prefix + "q"],
            w=data[prefix + "w"],
            scale=data[prefix + "scale"],
            singular=data[prefix + "singular"],
        )
    raise ValueError(f"unknown factorization kind {kind!r} in cache file")


class FactorizationDiskCache:
    """Digest-named ``.npz`` spill tier with a size-capped LRU-by-mtime.

    Parameters
    ----------
    directory:
        Cache directory (created on first use).  Multiple engines — or
        processes — may share one directory; writes are atomic.
    max_bytes:
        Size cap.  After each store, oldest-modified files are evicted
        until the directory's ``.npz`` payload fits.
    """

    def __init__(self, directory, max_bytes: int = DEFAULT_MAX_BYTES):
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.directory = os.fspath(directory)
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        # monotonic recency clock (ns): freshened mtimes are forced
        # strictly past the last stamp this cache issued, so recency
        # never ties or goes backwards even on coarse-mtime filesystems
        self._clock_ns = 0
        # hit/store/eviction tallies for instrumentation and tests
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0

    def _freshen(self, path: str) -> None:
        """Stamp ``path`` with a strictly increasing recency mtime."""
        with self._lock:
            ns = max(time.time_ns(), self._clock_ns + 1)
            self._clock_ns = ns
        try:
            os.utime(path, ns=(ns, ns))
        except OSError:
            pass

    # -- inventory ------------------------------------------------------
    def _entries(self) -> list:
        """``(path, mtime_ns, size)`` of every cache file, oldest first.

        Ordered by nanosecond mtime with the path as a deterministic
        tiebreak — on 1-second-resolution filesystems, same-second
        writes must not make eviction order arbitrary.
        """
        try:
            names = os.listdir(self.directory)
        except FileNotFoundError:
            return []
        entries = []
        for name in names:
            if not name.endswith(_SUFFIX):
                continue
            path = os.path.join(self.directory, name)
            try:
                st = os.stat(path)
            except OSError:
                continue
            entries.append((path, st.st_mtime_ns, st.st_size))
        entries.sort(key=lambda e: (e[1], e[0]))
        return entries

    def nbytes(self) -> int:
        """Total bytes currently spilled."""
        return sum(size for _, _, size in self._entries())

    def files(self) -> list:
        """Cache file paths, oldest-modified first."""
        return [path for path, _, _ in self._entries()]

    # -- store / load ---------------------------------------------------
    def store(self, key: tuple, fact) -> str:
        """Spill ``fact`` under ``key``; returns the file path written."""
        payload: dict = {}
        _pack(fact, payload)
        path = os.path.join(self.directory, _key_filename(key))
        with self._lock:
            os.makedirs(self.directory, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=self.directory, suffix=_SUFFIX + ".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    np.savez(fh, **payload)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            self.stores += 1
            ns = max(time.time_ns(), self._clock_ns + 1)
            self._clock_ns = ns
            try:
                os.utime(path, ns=(ns, ns))
            except OSError:
                pass
            self._evict_over_cap(keep=path)
        return path

    def load(self, key: tuple):
        """Rebuild the factorization for ``key``, or ``None`` if absent."""
        path = os.path.join(self.directory, _key_filename(key))
        try:
            with np.load(path, allow_pickle=False) as data:
                fact = _unpack(data)
        except FileNotFoundError:
            with self._lock:
                self.misses += 1
            return None
        except (OSError, ValueError, KeyError):
            # torn or stale file: drop it and re-factor
            with self._lock:
                self.misses += 1
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        # freshen the mtime so eviction tracks recency of *use*, with a
        # monotonic stamp so same-second loads keep a strict order
        self._freshen(path)
        with self._lock:
            self.hits += 1
        return fact

    def clear(self) -> None:
        """Remove every cache file (the directory itself stays)."""
        for path in self.files():
            try:
                os.unlink(path)
            except OSError:
                pass

    def _evict_over_cap(self, keep: str | None = None) -> None:
        """Drop oldest-modified files until the payload fits the cap."""
        entries = self._entries()
        total = sum(size for _, _, size in entries)
        for path, _, size in entries:
            if total <= self.max_bytes:
                break
            if path == keep and len(entries) > 1:
                continue  # evict older siblings before the fresh write
            try:
                os.unlink(path)
            except OSError:
                continue
            total -= size
            self.evictions += 1
