"""The solve-plan execution engine: plan once, execute many times.

:class:`ExecutionEngine` is the stateful front door for repeated
batch solves.  It keeps

* an **LRU plan cache** — ``(M, N, dtype, k, fuse, n_windows,
  subtile_scale)`` signatures map to frozen
  :class:`~repro.engine.plan.SolvePlan` objects, so the transition
  choice and window schedule are computed once per shape;
* a **workspace pool per plan** — ring buffers, p-Thomas state and
  transpose scratch are checked out for the duration of one execution
  and returned, so warm solves allocate only their result;
* an optional **shard executor** — ``workers=W`` splits the batch axis
  across a persistent thread pool, each worker running the same plan
  on its contiguous row shard and writing into one shared output.
  Results are bitwise independent of ``workers`` because every solver
  operation is elementwise along the batch axis and the transition
  ``k`` is frozen from the *full* batch before sharding.

The engine's results are bitwise identical to
:class:`~repro.core.hybrid.HybridSolver` for every signature; the
difference is purely where the time goes (no re-planning, no buffer
churn).  A module-level :func:`default_engine` instance backs
``repro.solve_batch(..., algorithm="auto")``.
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.core.hybrid import HybridReport
from repro.core.tiled_pcr import TilingCounters
from repro.core.transition import GTX480_HEURISTIC, TransitionHeuristic
from repro.core.validation import check_batch_arrays, coerce_batch_arrays
from repro.engine.executor import execute_plan, shard_bounds
from repro.engine.plan import SolvePlan, build_plan
from repro.engine.prepared import (
    PreparedPlan,
    build_cyclic_factorization,
    build_factorization,
    coefficient_fingerprint,
    factorization_nbytes,
    rhs_only_sweep,
    rtol_permits_hybrid_reuse,
)
from repro.engine.workspace import PlanWorkspace, PreparedWorkspace
from repro.util.pools import executor_cap

__all__ = ["EngineStats", "ExecutionEngine", "default_engine"]


@dataclass
class EngineStats:
    """Ledger of what the engine has done since creation / reset."""

    plan_requests: int = 0
    plan_hits: int = 0
    plans_built: int = 0
    plan_evictions: int = 0
    workspaces_built: int = 0
    workspaces_reused: int = 0
    solves: int = 0
    sharded_solves: int = 0
    workspace_bytes: int = 0  #: bytes currently held by pooled workspaces
    fingerprint_hits: int = 0  #: coefficient digests answered from cache
    fingerprint_misses: int = 0  #: digests with no cached factorization
    factorizations_built: int = 0
    factorization_evictions: int = 0
    rhs_only_solves: int = 0  #: solves served by a stored factorization
    factorization_bytes: int = 0  #: bytes held by cached factorizations

    @property
    def hit_rate(self) -> float:
        """Fraction of plan requests answered from cache."""
        if self.plan_requests == 0:
            return 0.0
        return self.plan_hits / self.plan_requests


class ExecutionEngine:
    """Plan-caching, workspace-pooling batch solver (see module docs).

    Parameters
    ----------
    max_plans:
        LRU capacity of the plan cache.  Evicting a plan also drops its
        pooled workspaces (in-flight workspaces are unaffected — they
        are simply not returned to a pool that no longer exists).
    pool_size:
        Workspaces retained per plan.  ``1`` suffices for serial use;
        sharded solves pool one per shard sub-plan, so the default
        covers ``workers`` up to ``pool_size`` without re-allocation.
    heuristic:
        Default Table-III-style transition table for plans that do not
        fix ``k`` explicitly.
    cache_dir:
        Optional directory enabling the factorization spill tier: built
        factorizations are written as digest-named ``.npz`` files, and
        a memory-cache miss consults the directory before re-factoring
        (see :mod:`repro.engine.diskcache`).  Engines — and processes —
        sharing one directory share the spilled eliminations.
    disk_cache_bytes:
        Size cap for the spill directory (oldest-modified files are
        evicted past it); default
        :data:`~repro.engine.diskcache.DEFAULT_MAX_BYTES`.
    """

    def __init__(
        self,
        max_plans: int = 32,
        pool_size: int = 4,
        heuristic: TransitionHeuristic = GTX480_HEURISTIC,
        max_factorizations: int = 8,
        cache_dir=None,
        disk_cache_bytes: int | None = None,
    ):
        if max_plans < 1:
            raise ValueError(f"max_plans must be >= 1, got {max_plans}")
        if pool_size < 1:
            raise ValueError(f"pool_size must be >= 1, got {pool_size}")
        if max_factorizations < 1:
            raise ValueError(
                f"max_factorizations must be >= 1, got {max_factorizations}"
            )
        self.max_plans = max_plans
        self.pool_size = pool_size
        self.max_factorizations = max_factorizations
        self.heuristic = heuristic
        self.disk_cache = None
        if cache_dir is not None:
            from repro.engine.diskcache import (
                DEFAULT_MAX_BYTES,
                FactorizationDiskCache,
            )

            self.disk_cache = FactorizationDiskCache(
                cache_dir,
                max_bytes=(
                    disk_cache_bytes
                    if disk_cache_bytes is not None
                    else DEFAULT_MAX_BYTES
                ),
            )
        self.stats = EngineStats()
        self.last_report: HybridReport | None = None
        self._lock = threading.Lock()
        self._plans: OrderedDict = OrderedDict()  # signature -> SolvePlan
        self._pools: dict = {}  # signature -> list[PlanWorkspace]
        self._prepared_pools: dict = {}  # signature -> list[PreparedWorkspace]
        self._facts: OrderedDict = OrderedDict()  # fact key -> factorization
        self._fp_seen: OrderedDict = OrderedDict()  # fact key sighting ledger
        self._fp_seen_cap = 64
        # request-coordinate -> resolved plan memo: skips re-running the
        # transition heuristic + plan construction on warm repeat shapes
        # (the dominant per-call dispatch cost for tiny batches)
        self._plan_memo: OrderedDict = OrderedDict()
        self._plan_memo_cap = 4 * max_plans
        self._executor: ThreadPoolExecutor | None = None
        self._executor_workers = 0
        # pools replaced by growth stay alive here until shutdown():
        # a concurrent sharded solve may still be submitting to one,
        # and ThreadPoolExecutor raises on submit-after-shutdown
        self._retired_executors: list = []

    @property
    def router_model_path(self) -> str | None:
        """Where this engine's adaptive-router model persists.

        The autotune :class:`~repro.autotune.PerformanceModel` lives as
        a versioned JSON file next to the factorization spill tier —
        one ``cache_dir`` holds both kinds of cross-process calibration
        state.  ``None`` when the engine has no ``cache_dir``.
        """
        if self.disk_cache is None:
            return None
        return os.path.join(self.disk_cache.directory, "router_model.json")

    # ---- planning --------------------------------------------------------
    def plan_for(
        self,
        m: int,
        n: int,
        dtype,
        *,
        k: int | None = None,
        fuse: bool = False,
        n_windows: int = 1,
        subtile_scale: int = 1,
        parallelism: int | None = None,
        heuristic: TransitionHeuristic | None = None,
        info: dict | None = None,
        system: str = "",
    ) -> SolvePlan:
        """Return the cached plan for this signature, building on miss.

        ``heuristic`` overrides the engine default for this call; the
        cache key is the *resolved* ``k``, so plans from different
        heuristics that agree on ``k`` share an entry.  ``info``, if
        given, receives ``info["cache"] = "hit" | "miss"`` — the
        instrumentation hook the backend layer's traces are built on.

        Warm repeats skip even the transition resolution: a bounded
        memo maps raw request coordinates (pre-heuristic) to their
        resolved plan, so steady-state dispatch does one dict probe
        instead of re-running ``choose_transition`` + plan
        construction each call.
        """
        heur = heuristic if heuristic is not None else self.heuristic
        memo_key = (
            m, n, np.dtype(dtype).str, k, bool(fuse),
            n_windows, subtile_scale, parallelism, heur, system,
        )
        with self._lock:
            memoized = self._plan_memo.get(memo_key)
            if memoized is not None and memoized.signature() in self._plans:
                self._plans.move_to_end(memoized.signature())
                self._plan_memo.move_to_end(memo_key)
                self.stats.plan_requests += 1
                self.stats.plan_hits += 1
                if info is not None:
                    info["cache"] = "hit"
                return memoized
        plan = build_plan(
            m,
            n,
            dtype,
            k=k,
            fuse=fuse,
            n_windows=n_windows,
            subtile_scale=subtile_scale,
            heuristic=heur,
            parallelism=parallelism,
            system=system,
        )
        sig = plan.signature()
        with self._lock:
            self.stats.plan_requests += 1
            cached = self._plans.get(sig)
            # memoize the canonical (cached) object so identity checks
            # downstream keep seeing one plan per signature
            self._plan_memo[memo_key] = cached if cached is not None else plan
            self._plan_memo.move_to_end(memo_key)
            while len(self._plan_memo) > self._plan_memo_cap:
                self._plan_memo.popitem(last=False)
            if cached is not None:
                self._plans.move_to_end(sig)
                self.stats.plan_hits += 1
                if info is not None:
                    info["cache"] = "hit"
                return cached
            if info is not None:
                info["cache"] = "miss"
            self._plans[sig] = plan
            self.stats.plans_built += 1
            while len(self._plans) > self.max_plans:
                old_sig, _ = self._plans.popitem(last=False)
                for ws in self._pools.pop(old_sig, ()):
                    self.stats.workspace_bytes -= ws.nbytes
                for ws in self._prepared_pools.pop(old_sig, ()):
                    self.stats.workspace_bytes -= ws.nbytes
                self.stats.plan_evictions += 1
        return plan

    # ---- workspace pooling -------------------------------------------
    def checkout(self, plan: SolvePlan) -> PlanWorkspace:
        """Borrow a pooled workspace for ``plan`` (build one on miss)."""
        return self._checkout(plan)

    def checkin(self, plan: SolvePlan, ws: PlanWorkspace) -> None:
        """Return a borrowed workspace to ``plan``'s pool."""
        self._checkin(plan, ws)

    def _checkout(self, plan: SolvePlan) -> PlanWorkspace:
        sig = plan.signature()
        with self._lock:
            pool = self._pools.get(sig)
            if pool:
                ws = pool.pop()
                self.stats.workspace_bytes -= ws.nbytes
                self.stats.workspaces_reused += 1
                return ws
        ws = PlanWorkspace(plan)
        with self._lock:
            self.stats.workspaces_built += 1
        return ws

    def _checkin(self, plan: SolvePlan, ws: PlanWorkspace) -> None:
        sig = plan.signature()
        with self._lock:
            if sig not in self._plans:
                return  # plan evicted while executing; let ws be collected
            pool = self._pools.setdefault(sig, [])
            if len(pool) < self.pool_size:
                pool.append(ws)
                self.stats.workspace_bytes += ws.nbytes

    def checkout_prepared(self, plan: SolvePlan) -> PreparedWorkspace:
        """Borrow a pooled RHS-only workspace for ``plan``."""
        sig = plan.signature()
        with self._lock:
            pool = self._prepared_pools.get(sig)
            if pool:
                ws = pool.pop()
                self.stats.workspace_bytes -= ws.nbytes
                self.stats.workspaces_reused += 1
                return ws
        ws = PreparedWorkspace(plan)
        with self._lock:
            self.stats.workspaces_built += 1
        return ws

    def checkin_prepared(self, plan: SolvePlan, ws: PreparedWorkspace) -> None:
        """Return a borrowed RHS-only workspace to ``plan``'s pool."""
        sig = plan.signature()
        with self._lock:
            if sig not in self._plans:
                return
            pool = self._prepared_pools.setdefault(sig, [])
            if len(pool) < self.pool_size:
                pool.append(ws)
                self.stats.workspace_bytes += ws.nbytes

    # ---- factorization cache -----------------------------------------
    @staticmethod
    def _fact_key(plan: SolvePlan, digest: str, periodic: bool = False) -> tuple:
        # Factorizations depend only on (m, n, dtype, k) + the system
        # descriptor + content — fuse / window choices change
        # scheduling, not elimination math.  The system tag keeps
        # penta/block/tri entries apart even when their (m, n, dtype,
        # k) prefixes agree, and cyclic factorizations carry corner
        # state a plain one lacks, so the periodic flag keys them
        # separately: the same coefficient digest means different
        # matrices under the two conventions.
        return plan.signature()[:4] + (plan.system, periodic, digest)

    def _store_factorization(self, key: tuple, fact, built: bool = True) -> None:
        with self._lock:
            self._facts[key] = fact
            self._facts.move_to_end(key)
            if built:
                self.stats.factorizations_built += 1
            self.stats.factorization_bytes += factorization_nbytes(fact)
            while len(self._facts) > self.max_factorizations:
                _, old = self._facts.popitem(last=False)
                self.stats.factorization_bytes -= factorization_nbytes(old)
                self.stats.factorization_evictions += 1

    def _factorization_for(
        self,
        plan: SolvePlan,
        digest: str,
        a,
        b,
        c,
        *,
        force: bool,
        periodic: bool = False,
        check: bool = True,
        stage_times: list | None = None,
        builder=None,
    ):
        """Look up / build the factorization for fingerprinted inputs.

        Returns ``(factorization | None, state)`` where ``state`` is
        the trace's factorization field: ``"hit"`` (served from
        cache), ``"factored"`` (built now — ``force=True`` handles and
        digests on their second sighting), or ``"miss"`` (first
        sighting under auto mode: recorded in the ledger, solved
        normally — one-shot batches never pay for a factorization).

        ``periodic=True`` builds/looks up a cyclic (Sherman–Morrison)
        factorization instead — same lifecycle, separate cache keyspace.
        ``builder`` overrides the construction step (the banded penta /
        block paths build their own factorization kinds) while keeping
        the LRU / disk-tier / two-sighting lifecycle identical.
        """
        key = self._fact_key(plan, digest, periodic)
        with self._lock:
            fact = self._facts.get(key)
            if fact is not None:
                self._facts.move_to_end(key)
                self.stats.fingerprint_hits += 1
                return fact, "hit"
        if self.disk_cache is not None:
            # spill tier: a sibling engine (or an earlier run sharing
            # the cache dir) may have factored this coefficient set
            fact = self.disk_cache.load(key)
            if fact is not None:
                with self._lock:
                    self.stats.fingerprint_hits += 1
                self._store_factorization(key, fact, built=False)
                return fact, "hit"
        with self._lock:
            self.stats.fingerprint_misses += 1
            if not force:
                seen = key in self._fp_seen
                self._fp_seen[key] = True
                self._fp_seen.move_to_end(key)
                while len(self._fp_seen) > self._fp_seen_cap:
                    self._fp_seen.popitem(last=False)
                if not seen:
                    return None, "miss"
        t0 = time.perf_counter()
        if builder is not None:
            fact = builder()
        elif periodic:
            fact = build_cyclic_factorization(self, plan, a, b, c, check=check)
        else:
            fact = build_factorization(plan, a, b, c)
        if stage_times is not None:
            stage_times.append(("factorize", time.perf_counter() - t0))
        self._store_factorization(key, fact)
        if self.disk_cache is not None:
            try:
                self.disk_cache.store(key, fact)
            except OSError:
                pass  # a full or read-only disk never fails the solve
        return fact, "factored"

    def factorization_for(
        self,
        plan: SolvePlan,
        digest: str,
        a,
        b,
        c,
        *,
        periodic: bool = False,
        check: bool = True,
    ):
        """Fetch-or-build the factorization for a digested coefficient set.

        The public seam over the engine's factorization cache for
        callers that already know their digest (the service tier's
        shared-factorization path).  Always factors on miss
        (``force=True`` semantics — the caller has declared the
        coefficients are worth keeping), consults the memory LRU and
        the disk spill tier in order, and returns ``(factorization,
        state)`` with ``state`` one of ``"hit"`` / ``"factored"``.
        """
        return self._factorization_for(
            plan, digest, a, b, c,
            force=True, periodic=periodic, check=check,
        )

    def prepare(
        self,
        a,
        b,
        c,
        *,
        workers: int | None = None,
        k: int | None = None,
        fuse: bool = False,
        n_windows: int = 1,
        subtile_scale: int = 1,
        parallelism: int | None = None,
        heuristic: TransitionHeuristic | None = None,
        periodic: bool = False,
        check: bool = True,
    ) -> PreparedPlan:
        """Factor a coefficient set into an explicit solve handle.

        The handle's factorization is also seeded into the engine's
        fingerprint cache, so plain ``solve_batch`` calls with the same
        coefficients hit it too (``k = 0`` plans; see
        :mod:`repro.engine.prepared` for the bitwise rationale).

        ``periodic=True`` prepares the cyclic (Sherman–Morrison)
        pipeline: the stored state is the core ``A'`` factorization plus
        the solved correction vector ``q`` and precomputed
        ``1/(1 + vᵀq)`` scale, and ``handle.solve`` runs one RHS-only
        sweep plus a rank-one update.  The caller supplies cyclic
        diagonals (corners in ``a[:, 0]`` / ``c[:, -1]``) — they are
        *not* zeroed here.  ``check`` governs the singular-correction
        guard (see :func:`repro.core.periodic.correction_scale`).
        """
        d0 = np.zeros_like(np.asarray(b))
        if periodic:
            from repro.core.validation import coerce_cyclic_batch_arrays

            a, b, c, _ = coerce_cyclic_batch_arrays(a, b, c, d0)
        else:
            a, b, c, _ = coerce_batch_arrays(a, b, c, d0)
        m, n = b.shape
        plan = self.plan_for(
            m,
            n,
            b.dtype,
            k=k,
            fuse=fuse,
            n_windows=n_windows,
            subtile_scale=subtile_scale,
            parallelism=parallelism,
            heuristic=heuristic,
        )
        digest = coefficient_fingerprint(a, b, c)
        fact, _ = self._factorization_for(
            plan, digest, a, b, c, force=True, periodic=periodic, check=check
        )
        return PreparedPlan(
            self, plan, fact, digest, workers=workers, periodic=periodic
        )

    # ---- execution ---------------------------------------------------
    def execute_pooled(
        self,
        plan: SolvePlan,
        a,
        b,
        c,
        d,
        *,
        counters: TilingCounters | None = None,
        out: np.ndarray | None = None,
        stage_times: list | None = None,
    ) -> np.ndarray:
        """Execute a prepared plan against a pooled workspace.

        This is the unsharded hot path — also the execution seam the
        backend layer (:mod:`repro.backends.engine_backend`) calls
        after planning through :meth:`plan_for`.  Counts one solve.
        """
        ws = self._checkout(plan)
        try:
            x = execute_plan(
                plan, ws, a, b, c, d,
                counters=counters, out=out, stage_times=stage_times,
            )
        finally:
            self._checkin(plan, ws)
        with self._lock:
            self.stats.solves += 1
        return x

    def solve_sharded(
        self,
        plan: SolvePlan,
        workers: int,
        a,
        b,
        c,
        d,
        *,
        counters: TilingCounters | None = None,
        out: np.ndarray | None = None,
        stage_times: list | None = None,
    ) -> np.ndarray:
        """Execute a plan split along the batch axis across threads.

        The sharded orchestration itself lives in
        :func:`repro.backends.threaded.execute_sharded` (the backend
        layer owns parallel composition); this method supplies the
        engine's pooled workspaces, thread pool, and stats ledger.
        Falls back to :meth:`execute_pooled` when one shard suffices.
        """
        m = b.shape[0]
        shards = shard_bounds(m, workers)
        if len(shards) <= 1:
            return self.execute_pooled(
                plan, a, b, c, d,
                counters=counters, out=out, stage_times=stage_times,
            )
        from repro.backends.threaded import execute_sharded

        t0 = time.perf_counter()
        x = execute_sharded(
            self, plan, shards, a, b, c, d,
            counters=counters, out=out, stage_times=stage_times,
        )
        if stage_times is not None:
            stage_times.append(
                (f"sharded-execute[{len(shards)}]", time.perf_counter() - t0)
            )
        with self._lock:
            self.stats.solves += 1
            self.stats.sharded_solves += 1
        return x

    def bind(self, request, *, transient: bool = False):
        """Bind a ``SolveRequest`` into a reusable :class:`BoundSolve`.

        The bind phase runs once: plan resolution, the
        fingerprint/factorization lifecycle, shard geometry, and the
        trace template.  The returned session's
        :meth:`~repro.engine.session.BoundSolve.step` is the
        allocation-free per-step hot loop;
        :meth:`~repro.engine.session.BoundSolve.step_once` is one
        fully-instrumented execution (exact single-call semantics).

        ``transient=True`` keeps the classic one-shot lifecycle (the
        two-sighting fingerprint ledger); a persistent bind forces the
        factorization whenever the fingerprint gate admits the plan, so
        the first step already runs RHS-only.
        """
        from repro.engine.session import BoundSolve

        return BoundSolve(self, request, transient=transient)

    def run(self, request) -> "object":
        """The one engine entrypoint: execute a ``SolveRequest``.

        Composes the orthogonal stages every solve flavour shares —
        **plan** (cached, or frozen in the request), **factorize or
        cache** (the ``fingerprint`` tri-state, or the handle the
        request carries), **execute** (RHS-only sweep, pooled plan, or
        sharded plan; cyclic requests corner-reduce and correct around
        the same core), **trace** — and returns a
        :class:`~repro.backends.request.SolveOutcome`.

        Since the bind/execute split, this is literally a transient
        bind followed by one instrumented step — the session module
        owns the whole spine, and the single-call path exercises the
        same code a thousand-step session does.

        Every public path (``solve_batch``, ``solve_periodic``,
        ``PreparedPlan.solve``, and the engine-family backends) is a
        thin adapter that builds a request and calls this method.
        ``request.label`` overrides the trace's backend name so
        adapters keep their identity (``"threaded"``, ``"prepared"``).
        """
        return self.bind(request, transient=True).step_once()

    def _run_plain(
        self,
        plan: SolvePlan,
        a,
        b,
        c,
        d,
        *,
        workers: int | None = None,
        fingerprint: bool | None = None,
        rtol: float | None = None,
        counters: TilingCounters | None = None,
        out: np.ndarray | None = None,
        stage_times: list | None = None,
    ):
        """Execute coerced arrays under ``plan``, fingerprint-aware.

        Consults the coefficient-fingerprint cache (per the
        ``fingerprint`` tri-state — see :meth:`solve_batch`) and runs
        either the RHS-only factorized sweep or the full plan, sharded
        when ``workers > 1``.  ``rtol`` is the request's accuracy
        contract: when it clears the dtype floor, auto-mode
        fingerprinting also engages on hybrid ``k > 0`` plans (whose
        reuse is allclose-grade, not bitwise) — still through the
        two-sighting ledger, so one-shot batches never pay for a
        factorization.  Returns ``(x, factorization | None, state)``
        where ``state`` is the trace's factorization field
        (``"hit" / "factored" / "miss" / "off" / "n/a"``).
        """
        fact = None
        fp_state = "off" if fingerprint is False else "n/a"
        if fingerprint is not False and (
            plan.uses_thomas
            or fingerprint
            or rtol_permits_hybrid_reuse(rtol, plan.dtype)
        ):
            t_fp = time.perf_counter()
            digest = coefficient_fingerprint(a, b, c)
            if stage_times is not None:
                stage_times.append(
                    ("fingerprint", time.perf_counter() - t_fp)
                )
            fact, fp_state = self._factorization_for(
                plan, digest, a, b, c,
                force=fingerprint is True,
                stage_times=stage_times,
            )

        if fact is not None:
            x = rhs_only_sweep(
                self, plan, fact, d,
                out=out, workers=workers, stage_times=stage_times,
            )
            with self._lock:
                self.stats.solves += 1
                self.stats.rhs_only_solves += 1
                if workers is not None and workers > 1:
                    self.stats.sharded_solves += 1
            return x, fact, fp_state
        if workers is not None and workers > 1:
            x = self.solve_sharded(
                plan, workers, a, b, c, d,
                counters=counters, out=out, stage_times=stage_times,
            )
            return x, None, fp_state
        x = self.execute_pooled(
            plan, a, b, c, d,
            counters=counters, out=out, stage_times=stage_times,
        )
        return x, None, fp_state

    # ---- thin request-building adapters ------------------------------
    def solve_batch(
        self,
        a,
        b,
        c,
        d,
        *,
        check: bool = True,
        workers: int | None = None,
        k: int | None = None,
        fuse: bool = False,
        n_windows: int = 1,
        subtile_scale: int = 1,
        parallelism: int | None = None,
        heuristic: TransitionHeuristic | None = None,
        fingerprint: bool | None = None,
        rtol: float | None = None,
        out: np.ndarray | None = None,
        info: dict | None = None,
        stage_times: list | None = None,
    ) -> np.ndarray:
        """Solve an ``(M, N)`` batch through a cached plan.

        A thin adapter over :meth:`run`: validates, builds a
        :class:`~repro.backends.request.SolveRequest`, and unpacks the
        outcome.  ``workers=W`` (opt-in) shards the batch axis across a
        thread pool; results are bitwise independent of ``W``.
        ``info`` and ``stage_times`` are instrumentation hooks
        (populated from the outcome's trace).  Remaining keywords
        mirror :class:`~repro.core.hybrid.HybridSolver`.

        ``fingerprint`` controls the factorization fast path: ``None``
        (default) hashes the coefficients and — for ``k = 0`` plans,
        whose RHS-only sweep is bitwise identical — serves repeat
        sightings from the factorization cache; ``True`` additionally
        engages the (allclose-grade) hybrid factorization for
        ``k > 0`` plans and factors on first sight; ``False`` disables
        fingerprinting entirely.  ``rtol`` is the accuracy contract
        that widens the auto tier to ``k > 0`` plans (see
        :func:`repro.engine.prepared.rtol_permits_hybrid_reuse`).
        """
        if check:
            a, b, c, d = check_batch_arrays(a, b, c, d)
        else:
            a, b, c, d = coerce_batch_arrays(a, b, c, d)
        from repro.backends.request import SolveRequest

        m, n = b.shape
        outcome = self.run(
            SolveRequest(
                a=a, b=b, c=c, d=d,
                m=m, n=n, dtype=np.dtype(b.dtype).name,
                workers=workers,
                k=k,
                fuse=fuse,
                n_windows=n_windows,
                subtile_scale=subtile_scale,
                parallelism=parallelism,
                heuristic=heuristic,
                fingerprint=fingerprint,
                rtol=rtol,
                check=check,
                out=out,
            )
        )
        self._fill_hooks(outcome, info, stage_times)
        return outcome.x

    def solve_periodic(
        self,
        a,
        b,
        c,
        d,
        *,
        check: bool = True,
        workers: int | None = None,
        k: int | None = None,
        fuse: bool = False,
        n_windows: int = 1,
        subtile_scale: int = 1,
        parallelism: int | None = None,
        heuristic: TransitionHeuristic | None = None,
        fingerprint: bool | None = None,
        rtol: float | None = None,
        out: np.ndarray | None = None,
        info: dict | None = None,
        stage_times: list | None = None,
    ) -> np.ndarray:
        """Solve a cyclic ``(M, N)`` batch through the engine.

        A thin adapter over :meth:`run` with ``periodic=True``.  Arrays
        must already be coerced cyclic diagonals (corners in
        ``a[:, 0]`` / ``c[:, -1]``; see
        :func:`repro.core.validation.coerce_cyclic_batch_arrays`) — the
        public entry points validate before calling in.  The
        ``fingerprint`` tri-state mirrors :meth:`solve_batch` (the
        cyclic cache semantics live in the session's bind phase —
        :class:`~repro.engine.session.BoundSolve`).
        """
        from repro.backends.request import SolveRequest

        m, n = b.shape
        outcome = self.run(
            SolveRequest(
                a=a, b=b, c=c, d=d,
                m=m, n=n, dtype=np.dtype(b.dtype).name,
                periodic=True,
                workers=workers,
                k=k,
                fuse=fuse,
                n_windows=n_windows,
                subtile_scale=subtile_scale,
                parallelism=parallelism,
                heuristic=heuristic,
                fingerprint=fingerprint,
                rtol=rtol,
                check=check,
                out=out,
            )
        )
        self._fill_hooks(outcome, info, stage_times)
        return outcome.x

    @staticmethod
    def _fill_hooks(outcome, info: dict | None, stage_times: list | None):
        """Populate the legacy ``info=`` / ``stage_times=`` hooks."""
        trace = outcome.trace
        if info is not None:
            info["cache"] = trace.plan_cache
            info["plan"] = outcome.plan
            info["factorization"] = trace.factorization
            info["rhs_only"] = trace.rhs_only
            if trace.periodic:
                info["periodic"] = True
        if stage_times is not None:
            stage_times.extend((s.name, s.seconds) for s in trace.stages)

    def solve(self, a, b, c, d, *, check: bool = True, **kwargs) -> np.ndarray:
        """Solve a single system (treated as an ``M = 1`` batch)."""
        a, b, c, d = (np.asarray(v) for v in (a, b, c, d))
        x = self.solve_batch(
            a[None, :], b[None, :], c[None, :], d[None, :],
            check=check, **kwargs,
        )
        return x[0]

    def thread_pool(self, workers: int) -> ThreadPoolExecutor:
        """The engine's persistent pool, grown to ≥ ``workers`` threads."""
        return self._thread_pool(workers)

    def _thread_pool(self, workers: int) -> ThreadPoolExecutor:
        # cap the materialized pool at a machine-proportional size;
        # oversized shard counts still complete (excess shards queue),
        # and shard *results* are independent of the thread count, so
        # clamping is bitwise-safe
        workers = min(workers, executor_cap())
        with self._lock:
            if self._executor is None or self._executor_workers < workers:
                # never shut the old pool down here: another thread may
                # hold a reference from a racing thread_pool() call and
                # still be submitting shards to it.  Retire it instead;
                # shutdown() drains the graveyard.
                if self._executor is not None:
                    self._retired_executors.append(self._executor)
                self._executor = ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix="repro-engine"
                )
                self._executor_workers = workers
            return self._executor

    # ---- lifecycle -----------------------------------------------------
    def clear(self) -> None:
        """Drop every cached plan, workspace and factorization
        (stats persist)."""
        with self._lock:
            self._plans.clear()
            self._plan_memo.clear()
            self._pools.clear()
            self._prepared_pools.clear()
            self._facts.clear()
            self._fp_seen.clear()
            self.stats.workspace_bytes = 0
            self.stats.factorization_bytes = 0

    def reset_stats(self) -> None:
        """Zero the ledger (cached plans and workspaces are kept)."""
        self.stats = EngineStats(
            workspace_bytes=self.stats.workspace_bytes,
            factorization_bytes=self.stats.factorization_bytes,
        )

    def shutdown(self) -> None:
        """Release the thread pool (the engine remains usable; a later
        sharded solve lazily builds a fresh pool)."""
        with self._lock:
            executor, self._executor = self._executor, None
            retired, self._retired_executors = self._retired_executors, []
            self._executor_workers = 0
        for old in retired:
            old.shutdown(wait=True)
        if executor is not None:
            executor.shutdown(wait=True)


_default_engine: ExecutionEngine | None = None
_default_lock = threading.Lock()


def default_engine() -> ExecutionEngine:
    """The process-wide engine behind ``repro.solve_batch``."""
    global _default_engine
    if _default_engine is None:
        with _default_lock:
            if _default_engine is None:
                _default_engine = ExecutionEngine()
    return _default_engine
