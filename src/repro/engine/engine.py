"""The solve-plan execution engine: plan once, execute many times.

:class:`ExecutionEngine` is the stateful front door for repeated
batch solves.  It keeps

* an **LRU plan cache** — ``(M, N, dtype, k, fuse, n_windows,
  subtile_scale)`` signatures map to frozen
  :class:`~repro.engine.plan.SolvePlan` objects, so the transition
  choice and window schedule are computed once per shape;
* a **workspace pool per plan** — ring buffers, p-Thomas state and
  transpose scratch are checked out for the duration of one execution
  and returned, so warm solves allocate only their result;
* an optional **shard executor** — ``workers=W`` splits the batch axis
  across a persistent thread pool, each worker running the same plan
  on its contiguous row shard and writing into one shared output.
  Results are bitwise independent of ``workers`` because every solver
  operation is elementwise along the batch axis and the transition
  ``k`` is frozen from the *full* batch before sharding.

The engine's results are bitwise identical to
:class:`~repro.core.hybrid.HybridSolver` for every signature; the
difference is purely where the time goes (no re-planning, no buffer
churn).  A module-level :func:`default_engine` instance backs
``repro.solve_batch(..., algorithm="auto")``.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.core.hybrid import HybridReport
from repro.core.tiled_pcr import TilingCounters
from repro.core.transition import GTX480_HEURISTIC, TransitionHeuristic
from repro.core.validation import check_batch_arrays, coerce_batch_arrays
from repro.engine.executor import execute_plan, shard_bounds
from repro.engine.plan import SolvePlan, build_plan
from repro.engine.prepared import (
    PreparedPlan,
    build_cyclic_factorization,
    build_factorization,
    coefficient_fingerprint,
    execute_cyclic_rhs_only,
    execute_rhs_only,
    factorization_nbytes,
)
from repro.engine.workspace import PlanWorkspace, PreparedWorkspace

__all__ = ["EngineStats", "ExecutionEngine", "default_engine"]


@dataclass
class EngineStats:
    """Ledger of what the engine has done since creation / reset."""

    plan_requests: int = 0
    plan_hits: int = 0
    plans_built: int = 0
    plan_evictions: int = 0
    workspaces_built: int = 0
    workspaces_reused: int = 0
    solves: int = 0
    sharded_solves: int = 0
    workspace_bytes: int = 0  #: bytes currently held by pooled workspaces
    fingerprint_hits: int = 0  #: coefficient digests answered from cache
    fingerprint_misses: int = 0  #: digests with no cached factorization
    factorizations_built: int = 0
    factorization_evictions: int = 0
    rhs_only_solves: int = 0  #: solves served by a stored factorization
    factorization_bytes: int = 0  #: bytes held by cached factorizations

    @property
    def hit_rate(self) -> float:
        """Fraction of plan requests answered from cache."""
        if self.plan_requests == 0:
            return 0.0
        return self.plan_hits / self.plan_requests


class ExecutionEngine:
    """Plan-caching, workspace-pooling batch solver (see module docs).

    Parameters
    ----------
    max_plans:
        LRU capacity of the plan cache.  Evicting a plan also drops its
        pooled workspaces (in-flight workspaces are unaffected — they
        are simply not returned to a pool that no longer exists).
    pool_size:
        Workspaces retained per plan.  ``1`` suffices for serial use;
        sharded solves pool one per shard sub-plan, so the default
        covers ``workers`` up to ``pool_size`` without re-allocation.
    heuristic:
        Default Table-III-style transition table for plans that do not
        fix ``k`` explicitly.
    """

    def __init__(
        self,
        max_plans: int = 32,
        pool_size: int = 4,
        heuristic: TransitionHeuristic = GTX480_HEURISTIC,
        max_factorizations: int = 8,
    ):
        if max_plans < 1:
            raise ValueError(f"max_plans must be >= 1, got {max_plans}")
        if pool_size < 1:
            raise ValueError(f"pool_size must be >= 1, got {pool_size}")
        if max_factorizations < 1:
            raise ValueError(
                f"max_factorizations must be >= 1, got {max_factorizations}"
            )
        self.max_plans = max_plans
        self.pool_size = pool_size
        self.max_factorizations = max_factorizations
        self.heuristic = heuristic
        self.stats = EngineStats()
        self.last_report: HybridReport | None = None
        self._lock = threading.Lock()
        self._plans: OrderedDict = OrderedDict()  # signature -> SolvePlan
        self._pools: dict = {}  # signature -> list[PlanWorkspace]
        self._prepared_pools: dict = {}  # signature -> list[PreparedWorkspace]
        self._facts: OrderedDict = OrderedDict()  # fact key -> factorization
        self._fp_seen: OrderedDict = OrderedDict()  # fact key sighting ledger
        self._fp_seen_cap = 64
        self._executor: ThreadPoolExecutor | None = None
        self._executor_workers = 0

    # ---- planning --------------------------------------------------------
    def plan_for(
        self,
        m: int,
        n: int,
        dtype,
        *,
        k: int | None = None,
        fuse: bool = False,
        n_windows: int = 1,
        subtile_scale: int = 1,
        parallelism: int | None = None,
        heuristic: TransitionHeuristic | None = None,
        info: dict | None = None,
    ) -> SolvePlan:
        """Return the cached plan for this signature, building on miss.

        ``heuristic`` overrides the engine default for this call; the
        cache key is the *resolved* ``k``, so plans from different
        heuristics that agree on ``k`` share an entry.  ``info``, if
        given, receives ``info["cache"] = "hit" | "miss"`` — the
        instrumentation hook the backend layer's traces are built on.
        """
        plan = build_plan(
            m,
            n,
            dtype,
            k=k,
            fuse=fuse,
            n_windows=n_windows,
            subtile_scale=subtile_scale,
            heuristic=heuristic if heuristic is not None else self.heuristic,
            parallelism=parallelism,
        )
        sig = plan.signature()
        with self._lock:
            self.stats.plan_requests += 1
            cached = self._plans.get(sig)
            if cached is not None:
                self._plans.move_to_end(sig)
                self.stats.plan_hits += 1
                if info is not None:
                    info["cache"] = "hit"
                return cached
            if info is not None:
                info["cache"] = "miss"
            self._plans[sig] = plan
            self.stats.plans_built += 1
            while len(self._plans) > self.max_plans:
                old_sig, _ = self._plans.popitem(last=False)
                for ws in self._pools.pop(old_sig, ()):
                    self.stats.workspace_bytes -= ws.nbytes
                for ws in self._prepared_pools.pop(old_sig, ()):
                    self.stats.workspace_bytes -= ws.nbytes
                self.stats.plan_evictions += 1
        return plan

    # ---- workspace pooling -------------------------------------------
    def checkout(self, plan: SolvePlan) -> PlanWorkspace:
        """Borrow a pooled workspace for ``plan`` (build one on miss)."""
        return self._checkout(plan)

    def checkin(self, plan: SolvePlan, ws: PlanWorkspace) -> None:
        """Return a borrowed workspace to ``plan``'s pool."""
        self._checkin(plan, ws)

    def _checkout(self, plan: SolvePlan) -> PlanWorkspace:
        sig = plan.signature()
        with self._lock:
            pool = self._pools.get(sig)
            if pool:
                ws = pool.pop()
                self.stats.workspace_bytes -= ws.nbytes
                self.stats.workspaces_reused += 1
                return ws
        ws = PlanWorkspace(plan)
        with self._lock:
            self.stats.workspaces_built += 1
        return ws

    def _checkin(self, plan: SolvePlan, ws: PlanWorkspace) -> None:
        sig = plan.signature()
        with self._lock:
            if sig not in self._plans:
                return  # plan evicted while executing; let ws be collected
            pool = self._pools.setdefault(sig, [])
            if len(pool) < self.pool_size:
                pool.append(ws)
                self.stats.workspace_bytes += ws.nbytes

    def checkout_prepared(self, plan: SolvePlan) -> PreparedWorkspace:
        """Borrow a pooled RHS-only workspace for ``plan``."""
        sig = plan.signature()
        with self._lock:
            pool = self._prepared_pools.get(sig)
            if pool:
                ws = pool.pop()
                self.stats.workspace_bytes -= ws.nbytes
                self.stats.workspaces_reused += 1
                return ws
        ws = PreparedWorkspace(plan)
        with self._lock:
            self.stats.workspaces_built += 1
        return ws

    def checkin_prepared(self, plan: SolvePlan, ws: PreparedWorkspace) -> None:
        """Return a borrowed RHS-only workspace to ``plan``'s pool."""
        sig = plan.signature()
        with self._lock:
            if sig not in self._plans:
                return
            pool = self._prepared_pools.setdefault(sig, [])
            if len(pool) < self.pool_size:
                pool.append(ws)
                self.stats.workspace_bytes += ws.nbytes

    # ---- factorization cache -----------------------------------------
    @staticmethod
    def _fact_key(plan: SolvePlan, digest: str, periodic: bool = False) -> tuple:
        # Factorizations depend only on (m, n, dtype, k) + content —
        # fuse / window choices change scheduling, not elimination math.
        # Cyclic factorizations carry corner state a plain one lacks, so
        # the periodic flag keys them separately: the same coefficient
        # digest means different matrices under the two conventions.
        return plan.signature()[:4] + (periodic, digest)

    def _store_factorization(self, key: tuple, fact) -> None:
        with self._lock:
            self._facts[key] = fact
            self._facts.move_to_end(key)
            self.stats.factorizations_built += 1
            self.stats.factorization_bytes += factorization_nbytes(fact)
            while len(self._facts) > self.max_factorizations:
                _, old = self._facts.popitem(last=False)
                self.stats.factorization_bytes -= factorization_nbytes(old)
                self.stats.factorization_evictions += 1

    def _factorization_for(
        self,
        plan: SolvePlan,
        digest: str,
        a,
        b,
        c,
        *,
        force: bool,
        periodic: bool = False,
        check: bool = True,
        stage_times: list | None = None,
    ):
        """Look up / build the factorization for fingerprinted inputs.

        Returns ``(factorization | None, state)`` where ``state`` is
        the trace's factorization field: ``"hit"`` (served from
        cache), ``"factored"`` (built now — ``force=True`` handles and
        digests on their second sighting), or ``"miss"`` (first
        sighting under auto mode: recorded in the ledger, solved
        normally — one-shot batches never pay for a factorization).

        ``periodic=True`` builds/looks up a cyclic (Sherman–Morrison)
        factorization instead — same lifecycle, separate cache keyspace.
        """
        key = self._fact_key(plan, digest, periodic)
        with self._lock:
            fact = self._facts.get(key)
            if fact is not None:
                self._facts.move_to_end(key)
                self.stats.fingerprint_hits += 1
                return fact, "hit"
            self.stats.fingerprint_misses += 1
            if not force:
                seen = key in self._fp_seen
                self._fp_seen[key] = True
                self._fp_seen.move_to_end(key)
                while len(self._fp_seen) > self._fp_seen_cap:
                    self._fp_seen.popitem(last=False)
                if not seen:
                    return None, "miss"
        t0 = time.perf_counter()
        if periodic:
            fact = build_cyclic_factorization(self, plan, a, b, c, check=check)
        else:
            fact = build_factorization(plan, a, b, c)
        if stage_times is not None:
            stage_times.append(("factorize", time.perf_counter() - t0))
        self._store_factorization(key, fact)
        return fact, "factored"

    def prepare(
        self,
        a,
        b,
        c,
        *,
        workers: int | None = None,
        k: int | None = None,
        fuse: bool = False,
        n_windows: int = 1,
        subtile_scale: int = 1,
        parallelism: int | None = None,
        heuristic: TransitionHeuristic | None = None,
        periodic: bool = False,
        check: bool = True,
    ) -> PreparedPlan:
        """Factor a coefficient set into an explicit solve handle.

        The handle's factorization is also seeded into the engine's
        fingerprint cache, so plain ``solve_batch`` calls with the same
        coefficients hit it too (``k = 0`` plans; see
        :mod:`repro.engine.prepared` for the bitwise rationale).

        ``periodic=True`` prepares the cyclic (Sherman–Morrison)
        pipeline: the stored state is the core ``A'`` factorization plus
        the solved correction vector ``q`` and precomputed
        ``1/(1 + vᵀq)`` scale, and ``handle.solve`` runs one RHS-only
        sweep plus a rank-one update.  The caller supplies cyclic
        diagonals (corners in ``a[:, 0]`` / ``c[:, -1]``) — they are
        *not* zeroed here.  ``check`` governs the singular-correction
        guard (see :func:`repro.core.periodic.correction_scale`).
        """
        d0 = np.zeros_like(np.asarray(b))
        if periodic:
            from repro.core.validation import coerce_cyclic_batch_arrays

            a, b, c, _ = coerce_cyclic_batch_arrays(a, b, c, d0)
        else:
            a, b, c, _ = coerce_batch_arrays(a, b, c, d0)
        m, n = b.shape
        plan = self.plan_for(
            m,
            n,
            b.dtype,
            k=k,
            fuse=fuse,
            n_windows=n_windows,
            subtile_scale=subtile_scale,
            parallelism=parallelism,
            heuristic=heuristic,
        )
        digest = coefficient_fingerprint(a, b, c)
        fact, _ = self._factorization_for(
            plan, digest, a, b, c, force=True, periodic=periodic, check=check
        )
        return PreparedPlan(
            self, plan, fact, digest, workers=workers, periodic=periodic
        )

    # ---- execution ---------------------------------------------------
    def execute_pooled(
        self,
        plan: SolvePlan,
        a,
        b,
        c,
        d,
        *,
        counters: TilingCounters | None = None,
        out: np.ndarray | None = None,
        stage_times: list | None = None,
    ) -> np.ndarray:
        """Execute a prepared plan against a pooled workspace.

        This is the unsharded hot path — also the execution seam the
        backend layer (:mod:`repro.backends.engine_backend`) calls
        after planning through :meth:`plan_for`.  Counts one solve.
        """
        ws = self._checkout(plan)
        try:
            x = execute_plan(
                plan, ws, a, b, c, d,
                counters=counters, out=out, stage_times=stage_times,
            )
        finally:
            self._checkin(plan, ws)
        with self._lock:
            self.stats.solves += 1
        return x

    def solve_sharded(
        self,
        plan: SolvePlan,
        workers: int,
        a,
        b,
        c,
        d,
        *,
        counters: TilingCounters | None = None,
        out: np.ndarray | None = None,
        stage_times: list | None = None,
    ) -> np.ndarray:
        """Execute a plan split along the batch axis across threads.

        The sharded orchestration itself lives in
        :func:`repro.backends.threaded.execute_sharded` (the backend
        layer owns parallel composition); this method supplies the
        engine's pooled workspaces, thread pool, and stats ledger.
        Falls back to :meth:`execute_pooled` when one shard suffices.
        """
        m = b.shape[0]
        shards = shard_bounds(m, workers)
        if len(shards) <= 1:
            return self.execute_pooled(
                plan, a, b, c, d,
                counters=counters, out=out, stage_times=stage_times,
            )
        from repro.backends.threaded import execute_sharded

        t0 = time.perf_counter()
        x = execute_sharded(
            self, plan, shards, a, b, c, d,
            counters=counters, out=out, stage_times=stage_times,
        )
        if stage_times is not None:
            stage_times.append(
                (f"sharded-execute[{len(shards)}]", time.perf_counter() - t0)
            )
        with self._lock:
            self.stats.solves += 1
            self.stats.sharded_solves += 1
        return x

    def solve_batch(
        self,
        a,
        b,
        c,
        d,
        *,
        check: bool = True,
        workers: int | None = None,
        k: int | None = None,
        fuse: bool = False,
        n_windows: int = 1,
        subtile_scale: int = 1,
        parallelism: int | None = None,
        heuristic: TransitionHeuristic | None = None,
        fingerprint: bool | None = None,
        out: np.ndarray | None = None,
        info: dict | None = None,
        stage_times: list | None = None,
    ) -> np.ndarray:
        """Solve an ``(M, N)`` batch through a cached plan.

        ``workers=W`` (opt-in) shards the batch axis across a thread
        pool; results are bitwise independent of ``W``.  ``info`` and
        ``stage_times`` are instrumentation hooks (plan-cache hit/miss
        and per-stage wall time; see :mod:`repro.backends.trace`).
        Remaining keywords mirror
        :class:`~repro.core.hybrid.HybridSolver`.

        ``fingerprint`` controls the factorization fast path: ``None``
        (default) hashes the coefficients and — for ``k = 0`` plans,
        whose RHS-only sweep is bitwise identical — serves repeat
        sightings from the factorization cache; ``True`` additionally
        engages the (allclose-grade) hybrid factorization for
        ``k > 0`` plans and factors on first sight; ``False`` disables
        fingerprinting entirely.
        """
        if check:
            a, b, c, d = check_batch_arrays(a, b, c, d)
        else:
            a, b, c, d = coerce_batch_arrays(a, b, c, d)
        m, n = b.shape
        plan = self.plan_for(
            m,
            n,
            b.dtype,
            k=k,
            fuse=fuse,
            n_windows=n_windows,
            subtile_scale=subtile_scale,
            parallelism=parallelism,
            heuristic=heuristic,
            info=info,
        )
        if info is not None:
            info["plan"] = plan
        counters = TilingCounters()
        report = HybridReport(
            m=m,
            n=n,
            k=plan.k,
            k_source=plan.k_source,
            subsystems=m * plan.g,
            fused=plan.fuse,
            n_windows=plan.n_windows,
            tiling=counters,
        )
        x = self.dispatch(
            plan, a, b, c, d,
            workers=workers,
            fingerprint=fingerprint,
            counters=counters,
            out=out,
            info=info,
            stage_times=stage_times,
        )
        self.last_report = report
        return x

    def dispatch(
        self,
        plan: SolvePlan,
        a,
        b,
        c,
        d,
        *,
        workers: int | None = None,
        fingerprint: bool | None = None,
        counters: TilingCounters | None = None,
        out: np.ndarray | None = None,
        info: dict | None = None,
        stage_times: list | None = None,
    ) -> np.ndarray:
        """Execute coerced arrays under ``plan``, fingerprint-aware.

        The one execution seam shared by :meth:`solve_batch` and the
        backend layer: consult the coefficient-fingerprint cache (per
        the ``fingerprint`` tri-state — see :meth:`solve_batch`) and
        run either the RHS-only factorized sweep or the full
        plan, sharded when ``workers > 1``.  ``info`` receives
        ``info["factorization"]`` (``"hit" / "factored" / "miss" /
        "off" / "n/a"``) and ``info["rhs_only"]``.
        """
        fact = None
        fp_state = "off" if fingerprint is False else "n/a"
        if fingerprint is not False and (plan.uses_thomas or fingerprint):
            t_fp = time.perf_counter()
            digest = coefficient_fingerprint(a, b, c)
            if stage_times is not None:
                stage_times.append(
                    ("fingerprint", time.perf_counter() - t_fp)
                )
            fact, fp_state = self._factorization_for(
                plan, digest, a, b, c,
                force=fingerprint is True,
                stage_times=stage_times,
            )
        if info is not None:
            info["factorization"] = fp_state
            info["rhs_only"] = fact is not None

        if fact is not None:
            x = execute_rhs_only(
                self, plan, fact, d,
                out=out, workers=workers, stage_times=stage_times,
            )
            with self._lock:
                self.stats.solves += 1
                self.stats.rhs_only_solves += 1
                if workers is not None and workers > 1:
                    self.stats.sharded_solves += 1
            return x
        if workers is not None and workers > 1:
            return self.solve_sharded(
                plan, workers, a, b, c, d,
                counters=counters, out=out, stage_times=stage_times,
            )
        return self.execute_pooled(
            plan, a, b, c, d,
            counters=counters, out=out, stage_times=stage_times,
        )

    def solve_periodic(
        self,
        a,
        b,
        c,
        d,
        *,
        check: bool = True,
        workers: int | None = None,
        k: int | None = None,
        fuse: bool = False,
        n_windows: int = 1,
        subtile_scale: int = 1,
        parallelism: int | None = None,
        heuristic: TransitionHeuristic | None = None,
        fingerprint: bool | None = None,
        out: np.ndarray | None = None,
        info: dict | None = None,
        stage_times: list | None = None,
    ) -> np.ndarray:
        """Solve a cyclic ``(M, N)`` batch through the engine.

        Arrays must already be coerced cyclic diagonals (corners in
        ``a[:, 0]`` / ``c[:, -1]``; see
        :func:`repro.core.validation.coerce_cyclic_batch_arrays`) — the
        public entry points validate before calling in.  The
        ``fingerprint`` tri-state mirrors :meth:`solve_batch`: repeat
        sightings of one cyclic coefficient set engage a stored
        :class:`~repro.engine.prepared.CyclicRhsFactorization` and run
        one RHS-only sweep plus the rank-one correction; first
        sightings (and ``fingerprint=False``) run the classic
        corner-reduce + two inner solves.  The inner solves disable
        their own fingerprinting — caching happens at the cyclic level
        only, never on the reduced ``A'`` diagonals.
        """
        m, n = b.shape
        plan = self.plan_for(
            m,
            n,
            b.dtype,
            k=k,
            fuse=fuse,
            n_windows=n_windows,
            subtile_scale=subtile_scale,
            parallelism=parallelism,
            heuristic=heuristic,
            info=info,
        )
        if info is not None:
            info["plan"] = plan
            info["periodic"] = True

        fact = None
        fp_state = "off" if fingerprint is False else "n/a"
        if fingerprint is not False and (plan.uses_thomas or fingerprint):
            t_fp = time.perf_counter()
            digest = coefficient_fingerprint(a, b, c)
            if stage_times is not None:
                stage_times.append(
                    ("fingerprint", time.perf_counter() - t_fp)
                )
            fact, fp_state = self._factorization_for(
                plan, digest, a, b, c,
                force=fingerprint is True,
                periodic=True,
                check=check,
                stage_times=stage_times,
            )
        if info is not None:
            info["factorization"] = fp_state
            info["rhs_only"] = fact is not None

        if fact is not None:
            x = execute_cyclic_rhs_only(
                self, plan, fact, d,
                out=out, workers=workers, check=check,
                stage_times=stage_times,
            )
            with self._lock:
                self.stats.solves += 1
                self.stats.rhs_only_solves += 1
                if workers is not None and workers > 1:
                    self.stats.sharded_solves += 1
            return x

        from repro.core.periodic import (
            apply_cyclic_correction,
            correction_denominator,
            correction_scale,
            cyclic_reduce,
        )

        t0 = time.perf_counter()
        ap, bp, cp, u, w = cyclic_reduce(a, b, c, check=check)
        if stage_times is not None:
            stage_times.append(("cyclic-reduce", time.perf_counter() - t0))
        y = self.dispatch(
            plan, ap, bp, cp, d,
            workers=workers, fingerprint=False, stage_times=stage_times,
        )
        q = self.dispatch(
            plan, ap, bp, cp, u,
            workers=workers, fingerprint=False, stage_times=stage_times,
        )
        t1 = time.perf_counter()
        scale = correction_scale(correction_denominator(q, w), n, check=check)
        x = apply_cyclic_correction(y, q, w, scale, out=out)
        if stage_times is not None:
            stage_times.append(
                ("cyclic-correction", time.perf_counter() - t1)
            )
        return x

    def solve(self, a, b, c, d, *, check: bool = True, **kwargs) -> np.ndarray:
        """Solve a single system (treated as an ``M = 1`` batch)."""
        a, b, c, d = (np.asarray(v) for v in (a, b, c, d))
        x = self.solve_batch(
            a[None, :], b[None, :], c[None, :], d[None, :],
            check=check, **kwargs,
        )
        return x[0]

    def thread_pool(self, workers: int) -> ThreadPoolExecutor:
        """The engine's persistent pool, grown to ≥ ``workers`` threads."""
        return self._thread_pool(workers)

    def _thread_pool(self, workers: int) -> ThreadPoolExecutor:
        with self._lock:
            if self._executor is None or self._executor_workers < workers:
                old = self._executor
                self._executor = ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix="repro-engine"
                )
                self._executor_workers = workers
            else:
                old = None
        if old is not None:
            old.shutdown(wait=False)
        return self._executor

    # ---- lifecycle -----------------------------------------------------
    def clear(self) -> None:
        """Drop every cached plan, workspace and factorization
        (stats persist)."""
        with self._lock:
            self._plans.clear()
            self._pools.clear()
            self._prepared_pools.clear()
            self._facts.clear()
            self._fp_seen.clear()
            self.stats.workspace_bytes = 0
            self.stats.factorization_bytes = 0

    def reset_stats(self) -> None:
        """Zero the ledger (cached plans and workspaces are kept)."""
        self.stats = EngineStats(
            workspace_bytes=self.stats.workspace_bytes,
            factorization_bytes=self.stats.factorization_bytes,
        )

    def shutdown(self) -> None:
        """Release the thread pool (the engine remains usable; a later
        sharded solve lazily builds a fresh pool)."""
        with self._lock:
            executor, self._executor = self._executor, None
            self._executor_workers = 0
        if executor is not None:
            executor.shutdown(wait=True)


_default_engine: ExecutionEngine | None = None
_default_lock = threading.Lock()


def default_engine() -> ExecutionEngine:
    """The process-wide engine behind ``repro.solve_batch``."""
    global _default_engine
    if _default_engine is None:
        with _default_lock:
            if _default_engine is None:
                _default_engine = ExecutionEngine()
    return _default_engine
