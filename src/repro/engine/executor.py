"""Plan execution: zero-allocation kernels behind a frozen plan.

:func:`execute_plan` runs one ``(M, N)`` batch through a
:class:`~repro.engine.plan.SolvePlan` using a matching
:class:`~repro.engine.workspace.PlanWorkspace`.  All intermediate state
lives in the workspace; the only allocation per call is the result
array (and even that can be supplied via ``out=``, which is how the
sharded executor writes worker results straight into one shared batch).

Every path is held **bitwise identical** to the reference
:class:`~repro.core.hybrid.HybridSolver`:

* ``k > 0`` plans run the same :class:`~repro.core.tiled_pcr.TiledPCR`
  sweep and p-Thomas back-end, just against plan-owned workspaces.
* ``k = 0`` plans run the Thomas recurrence in a *transposed* layout:
  the diagonals are copied once into ``(N, M)`` buffers so the
  sequential row loop streams contiguous memory instead of striding
  across the batch (each of the ``2N`` recurrence steps touches one
  contiguous ``M``-vector).  The arithmetic per system is unchanged —
  identical operations in identical order, just a different memory
  walk — so results match :func:`repro.core.thomas.thomas_solve_batch`
  bit for bit.

Sharding along the batch axis is bitwise-safe for the same reason:
every solver operation is elementwise along ``M``, so solving rows
``[lo, hi)`` in a worker produces the exact bits the full-batch solve
would.  The one global decision — the transition ``k`` — is frozen in
the plan *before* sharding, from the full ``M``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.hybrid import _FusedPThomas
from repro.core.pthomas import pthomas_solve_interleaved
from repro.core.tiled_pcr import TiledPCR, TilingCounters

__all__ = ["execute_plan", "shard_bounds"]


def shard_bounds(m: int, workers: int) -> list:
    """Split ``m`` batch rows into at most ``workers`` contiguous shards."""
    workers = max(1, min(int(workers), m))
    bounds = np.linspace(0, m, workers + 1).astype(int)
    return [
        (int(bounds[i]), int(bounds[i + 1]))
        for i in range(workers)
        if bounds[i + 1] > bounds[i]
    ]


def _thomas_transposed(ws, a, b, c, d, out=None) -> np.ndarray:
    """Batched Thomas over transposed ``(N, M)`` workspace buffers.

    Same recurrence, same operation order as
    :func:`repro.core.thomas.thomas_solve_batch`; the transpose only
    changes which axis is contiguous during the sequential row loop.
    """
    n = ws.tb.shape[0]
    ta, tb, tc, td = ws.ta, ws.tb, ws.tc, ws.td
    ta[...] = a.T
    tb[...] = b.T
    tc[...] = c.T
    td[...] = d.T
    cp, dp, xt = ws.cp, ws.dp, ws.xt
    t1, t2 = ws.t1, ws.t2
    # Forward reduction (Eqs. 2-3): denom = b_i - cp_{i-1} * a_i,
    # cp_i = c_i / denom, dp_i = (d_i - dp_{i-1} * a_i) / denom.
    np.divide(tc[0], tb[0], out=cp[0])
    np.divide(td[0], tb[0], out=dp[0])
    for i in range(1, n):
        np.multiply(cp[i - 1], ta[i], out=t1)
        np.subtract(tb[i], t1, out=t1)
        np.divide(tc[i], t1, out=cp[i])
        np.multiply(dp[i - 1], ta[i], out=t2)
        np.subtract(td[i], t2, out=t2)
        np.divide(t2, t1, out=dp[i])
    # Backward substitution (Eq. 4): x_i = dp_i - cp_i * x_{i+1}.
    xt[n - 1] = dp[n - 1]
    for i in range(n - 2, -1, -1):
        np.multiply(cp[i], xt[i + 1], out=t1)
        np.subtract(dp[i], t1, out=xt[i])
    if out is not None:
        out[...] = xt.T
        return out
    # .copy() (not ascontiguousarray) — for m == 1 the transpose is
    # already contiguous and ascontiguousarray would return a view into
    # the pooled workspace, which the next same-plan solve overwrites.
    return xt.T.copy()


def execute_plan(
    plan,
    ws,
    a,
    b,
    c,
    d,
    *,
    counters: TilingCounters | None = None,
    out: np.ndarray | None = None,
    stage_times: list | None = None,
) -> np.ndarray:
    """Execute ``plan`` on coerced ``(M, N)`` diagonals using ``ws``.

    Inputs must already be contiguous arrays of ``plan.dtype`` and shape
    ``(plan.m, plan.n)`` (the engine guarantees this).  ``counters``, if
    given, accumulates the sweep's :class:`TilingCounters`.  ``out``, if
    given, receives the solution (shard writes).  ``stage_times``, if
    given, receives ``(stage name, seconds)`` pairs — the per-stage
    wall-time hook behind :class:`~repro.backends.trace.SolveTrace`.
    """
    if not ws.fits(plan):
        raise ValueError("workspace was built for a different plan")
    if plan.uses_thomas:
        t0 = time.perf_counter()
        x = _thomas_transposed(ws, a, b, c, d, out=out)
        if stage_times is not None:
            stage_times.append(
                ("thomas (transposed)", time.perf_counter() - t0)
            )
        return x

    tiler = TiledPCR(
        k=plan.k, c=plan.subtile_scale, n_windows=plan.n_windows
    )
    if counters is not None:
        tiler.counters = counters
    if plan.fuse:
        fused = _FusedPThomas(
            plan.m, plan.n, plan.k, plan.dtype, workspace=ws.pthomas
        )
        t0 = time.perf_counter()
        tiler.sweep(
            a, b, c, d, check=False, emit=fused.consume, workspace=ws.tiled
        )
        t1 = time.perf_counter()
        x = fused.backward(out=out)
        if stage_times is not None:
            stage_times.append(("tiled-pcr + fused forward", t1 - t0))
            stage_times.append(
                ("p-thomas backward", time.perf_counter() - t1)
            )
        return x

    red = ws.reduced

    def emit_into_reduced(e0, e1, quad):
        for o, sarr in zip(red, quad):
            o[:, e0:e1] = sarr

    t0 = time.perf_counter()
    tiler.sweep(
        a, b, c, d, check=False, emit=emit_into_reduced, workspace=ws.tiled
    )
    t1 = time.perf_counter()
    x = pthomas_solve_interleaved(
        red[0], red[1], red[2], red[3], plan.k,
        workspace=ws.pthomas, out=out,
    )
    if stage_times is not None:
        stage_times.append(("tiled-pcr sweep", t1 - t0))
        stage_times.append(("p-thomas", time.perf_counter() - t1))
    return x
