"""Solve plans: the frozen decisions behind one problem shape.

The paper's method makes three decisions before any arithmetic happens:
the transition point ``k`` (Table III / the Table II cost model), the
sliding-window schedule (sub-tile size ``c·2^k``, window regions,
lead-in), and the buffer layout (per-level cache capacities, Table I).
On the GPU those are compile/launch-time constants; the seed CPU
realization recomputed all of them — and reallocated every buffer —
on *every* ``solve_batch`` call.

A :class:`SolvePlan` freezes those decisions once per ``(M, N, dtype,
k, fuse, n_windows, subtile_scale)`` signature.  Plans are immutable,
hashable, and cheap; the heavy state they imply (ring buffers,
modified-coefficient arrays, transpose scratch) lives in
:class:`~repro.engine.workspace.PlanWorkspace` objects the engine pools
per plan.  Executing the same plan twice is bitwise deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.cost_model import f_redundant_loads
from repro.core.hybrid import choose_transition
from repro.core.transition import GTX480_HEURISTIC, TransitionHeuristic

__all__ = ["SolvePlan", "build_plan", "plan_key"]


@dataclass(frozen=True)
class SolvePlan:
    """Frozen execution recipe for an ``(M, N)`` batch solve.

    Attributes
    ----------
    m, n:
        Batch shape the plan is specialized to.
    dtype:
        Element dtype (plans never mix precisions).
    k:
        Frozen PCR step count — the transition decision.
    k_source:
        Where ``k`` came from: ``"fixed"``, ``"analytic"`` or
        ``"heuristic"``.
    fuse:
        Whether the p-Thomas forward reduction is fused into the sweep
        (Section III-C).
    n_windows:
        Concurrent window regions per system (Fig. 11b).
    subtile_scale:
        Table I's ``c`` — rows per thread per sliding-window round.
    system:
        System-descriptor tag (``""`` for tridiagonal, ``"penta"`` /
        ``"block<B>"`` otherwise) — keeps plan-cache and
        factorization-cache entries of different stencils from ever
        colliding on one ``(m, n, dtype, k)`` signature.
    """

    m: int
    n: int
    dtype: np.dtype
    k: int
    k_source: str
    fuse: bool = False
    n_windows: int = 1
    subtile_scale: int = 1
    system: str = ""

    # ---- derived schedule ------------------------------------------------
    @property
    def g(self) -> int:
        """Interleave stride / thread-block width: ``2^k``."""
        return 1 << self.k

    @property
    def subtile(self) -> int:
        """Rows the sliding window advances per round: ``c · 2^k``."""
        return self.subtile_scale * self.g

    @property
    def uses_thomas(self) -> bool:
        """``k = 0``: the plan degenerates to pure batched Thomas."""
        return self.k == 0

    @property
    def window_bounds(self) -> tuple:
        """Region boundaries of the ``n_windows`` sliding windows."""
        bounds = np.linspace(0, self.n, self.n_windows + 1).astype(int)
        return tuple(int(v) for v in bounds)

    @property
    def lead_in(self) -> int:
        """Rows each window lags raw input by: ``f(k) = 2^k − 1``."""
        return f_redundant_loads(self.k)

    def rounds(self) -> int:
        """Total sliding-window rounds one execution performs."""
        if self.uses_thomas:
            return 0
        total = 0
        bounds = self.window_bounds
        for r0, r1 in zip(bounds, bounds[1:]):
            if r1 > r0:
                total += -(-((r1 - r0) + self.lead_in) // self.subtile)
        return total

    def signature(self) -> tuple:
        """The hashable cache key this plan answers to."""
        return plan_key(
            self.m,
            self.n,
            self.dtype,
            self.k,
            self.fuse,
            self.n_windows,
            self.subtile_scale,
            self.system,
        )

    def describe(self) -> dict:
        """Human-readable plan summary (used by reports and benchmarks)."""
        return {
            "m": self.m,
            "n": self.n,
            "dtype": str(self.dtype),
            "k": self.k,
            "k_source": self.k_source,
            "backend": "thomas" if self.uses_thomas else (
                "tiled-pcr+p-thomas (fused)" if self.fuse
                else "tiled-pcr+p-thomas"
            ),
            "subsystems": self.m * self.g,
            "n_windows": self.n_windows,
            "subtile": self.subtile,
            "rounds": self.rounds(),
        }


def plan_key(
    m: int,
    n: int,
    dtype,
    k: int,
    fuse: bool,
    n_windows: int,
    subtile_scale: int,
    system: str = "",
) -> tuple:
    """Canonical cache key for a plan signature.

    ``system`` is the descriptor tag; it rides at the end so every
    pre-descriptor consumer of the tuple prefix keeps working, and
    tridiagonal keys (tag ``""``) keep their historical shape-4 prefix
    ``(m, n, dtype, k)`` distinct only by the trailing fields.
    """
    return (
        m,
        n,
        np.dtype(dtype).str,
        k,
        bool(fuse),
        n_windows,
        subtile_scale,
        system,
    )


def build_plan(
    m: int,
    n: int,
    dtype,
    *,
    k: int | None = None,
    fuse: bool = False,
    n_windows: int = 1,
    subtile_scale: int = 1,
    heuristic: TransitionHeuristic = GTX480_HEURISTIC,
    parallelism: int | None = None,
    system: str = "",
) -> SolvePlan:
    """Resolve the transition and freeze a :class:`SolvePlan`.

    Uses the identical :func:`~repro.core.hybrid.choose_transition`
    logic as :class:`~repro.core.hybrid.HybridSolver`, so a plan always
    encodes exactly the decision the reference solver would have made.
    """
    if m < 1 or n < 1:
        raise ValueError(f"need m, n >= 1, got ({m}, {n})")
    if n_windows < 1:
        raise ValueError(f"n_windows must be >= 1, got {n_windows}")
    if subtile_scale < 1:
        raise ValueError(f"subtile_scale must be >= 1, got {subtile_scale}")
    if system:
        # banded (penta/block) plans have no PCR front-end: the schedule
        # is always the Thomas-style k = 0 sweep of that stencil.
        if k not in (None, 0):
            raise ValueError(
                f"banded ({system!r}) plans are k = 0 only, got k={k}"
            )
        kk, source = 0, "banded"
    else:
        kk, source = choose_transition(
            m, n, k=k, heuristic=heuristic, parallelism=parallelism
        )
    return SolvePlan(
        m=m,
        n=n,
        dtype=np.dtype(dtype),
        k=kk,
        k_source=source,
        fuse=bool(fuse),
        n_windows=n_windows,
        subtile_scale=subtile_scale,
        system=system,
    )
