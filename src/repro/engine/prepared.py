"""Prepared solves: factor once, stream right-hand sides.

The paper's motivating workloads (ADI, Crank–Nicolson, multigrid
smoothing) solve the *same* tridiagonal matrix against a fresh
right-hand side every time step.  :mod:`repro.core.factorize` supplies
the factor/solve split; this module wires it through the engine:

* :func:`coefficient_fingerprint` — a cheap content hash over the
  ``(dl, d, du)`` views.  The engine fingerprints incoming
  coefficients (opt-out via ``fingerprint=False``) and keys a
  factorization cache on the digest, so a time-stepping loop written
  as plain repeated ``solve_batch`` calls silently stops
  re-eliminating after its first few steps.
* :class:`ThomasRhsFactorization` — the ``k = 0`` factorization in the
  engine's transposed ``(N, M)`` layout.  Its forward sweep stores the
  *denominator* (not its reciprocal) and the RHS sweep divides by it,
  mirroring :func:`repro.engine.executor._thomas_transposed` operation
  for operation — prepared ``k = 0`` solves are **bitwise identical**
  to unprepared ones.  This is why only ``k = 0`` plans auto-engage
  the fingerprint fast path; ``k > 0`` factorizations
  (:class:`~repro.core.factorize.HybridFactorization`) reuse stored
  reciprocals and are "only" allclose, so they require an explicit
  opt-in (``fingerprint=True`` or a :class:`PreparedPlan` handle).
* :class:`PreparedPlan` — the explicit handle
  (``repro.prepare(a, b, c)``) for callers who know their matrix is
  fixed: holds the plan + factorization, executes RHS-only sweeps into
  pooled :class:`~repro.engine.workspace.PreparedWorkspace` buffers,
  optionally sharded across the engine's thread pool.

Sharding the RHS-only phase is bitwise-safe for the same reason full
solves are (:mod:`repro.engine.executor`): every operation is
elementwise along the batch axis, and the one global decision — ``k``
— is frozen in the plan before any shard runs.
"""

from __future__ import annotations

import hashlib
import time

import numpy as np

from repro.core.factorize import HybridFactorization, ThomasFactorization
from repro.core.validation import (
    check_batch_arrays,
    check_cyclic_batch_arrays,
    coerce_batch_arrays,
    coerce_cyclic_batch_arrays,
)
from repro.engine.executor import shard_bounds

__all__ = [
    "CyclicRhsFactorization",
    "FINGERPRINT_RTOL_FLOOR",
    "PreparedPlan",
    "ThomasRhsFactorization",
    "build_cyclic_factorization",
    "coefficient_fingerprint",
    "cyclic_rhs_only_sweep",
    "factorization_nbytes",
    "prepare",
    "rhs_only_sweep",
    "rtol_permits_hybrid_reuse",
]

#: Per-dtype drift floor for the ``rtol=`` accuracy contract: hybrid
#: (``k > 0``) RHS-only sweeps reuse stored reciprocals and agree with
#: the unprepared solve only to rounding (allclose grade, empirically a
#: few hundred ulps on dominant systems).  A request whose ``rtol`` is
#: at or above this floor has declared it tolerates that drift, so the
#: fingerprint auto tier may engage on ``k > 0`` plans too.
FINGERPRINT_RTOL_FLOOR = {
    "float64": 1e-12,
    "float32": 1e-5,
}


def rtol_permits_hybrid_reuse(rtol, dtype) -> bool:
    """Does this accuracy contract license hybrid factorization reuse?

    ``rtol=None`` means bitwise (never); otherwise the tolerance must
    clear the dtype's :data:`FINGERPRINT_RTOL_FLOOR`.  Unknown dtypes
    are conservative: only an explicit ``fingerprint=True`` engages.
    """
    if rtol is None:
        return False
    floor = FINGERPRINT_RTOL_FLOOR.get(np.dtype(dtype).name)
    return floor is not None and rtol >= floor

#: Elements sampled per array by the fingerprint (plus the chunk-sum
#: checksums); calibrated so fingerprinting a 1024x1024 float64 batch
#: costs ~1 ms against a ~20 ms RHS-only solve.
FINGERPRINT_SAMPLE = 4096

#: Width of the chunk-sum grid the large-array checksum reduces over.
#: Hashing both row sums (contiguous 1024-element chunks) and column
#: sums (stride-1024 element classes) means a sum-preserving edit can
#: only collide if every changed element keeps both its row total and
#: its column total — impossible for any edit that moves value between
#: two distinct positions.
FINGERPRINT_CHUNK = 1024

_sample_idx_cache: dict = {}


def _sample_indices(size: int) -> np.ndarray:
    idx = _sample_idx_cache.get(size)
    if idx is None:
        idx = np.linspace(0, size - 1, FINGERPRINT_SAMPLE).astype(np.intp)
        if len(_sample_idx_cache) > 64:
            _sample_idx_cache.clear()
        _sample_idx_cache[size] = idx
    return idx


def coefficient_fingerprint(*arrays) -> str:
    """Content hash of coefficient arrays (hex, 128-bit blake2b).

    Hashes each array's shape, dtype, and content.  Small arrays are
    hashed in full; large ones contribute an evenly-strided
    :data:`FINGERPRINT_SAMPLE`-element sample plus a two-axis chunk-sum
    checksum: the flat array is viewed as a ``(rows,
    FINGERPRINT_CHUNK)`` grid and both the per-row sums (contiguous
    chunks) and the per-column sums (strided element classes) are
    hashed, along with any ragged tail verbatim.  A position-blind
    single checksum was provably collidable — swapping two off-sample
    elements, or any ``+x``/``−x`` pair of edits, preserved the total
    and silently served a stale factorization.  With the grid, an edit
    escapes detection only if it changes no row sum *and* no column
    sum, which for moved value between distinct positions cannot
    happen (two positions in the same row are in different columns and
    vice versa).  Still two O(N) streaming passes — far below the cost
    of one elimination sweep, which is the comparison that matters.
    Used to detect *unchanged* coefficients across time steps, not to
    authenticate data.
    """
    h = hashlib.blake2b(digest_size=16)
    for arr in arrays:
        arr = np.asarray(arr)
        h.update(str(arr.shape).encode())
        h.update(arr.dtype.str.encode())
        flat = arr.reshape(-1)
        if flat.size <= FINGERPRINT_SAMPLE:
            h.update(np.ascontiguousarray(flat).tobytes())
        else:
            h.update(flat[_sample_indices(flat.size)].tobytes())
            trunc = flat.size - flat.size % FINGERPRINT_CHUNK
            grid = np.ascontiguousarray(flat[:trunc]).reshape(
                -1, FINGERPRINT_CHUNK
            )
            h.update(grid.sum(axis=1, dtype=np.float64).tobytes())
            h.update(grid.sum(axis=0, dtype=np.float64).tobytes())
            h.update(np.ascontiguousarray(flat[trunc:]).tobytes())
    return h.hexdigest()


class ThomasRhsFactorization:
    """``k = 0`` factorization in the engine's transposed layout.

    Stores the sub-diagonal, the modified super-diagonal ``c'`` and the
    forward-elimination *denominators* as ``(N, M)`` arrays.  The RHS
    sweep divides by the stored denominator — the identical operation
    sequence as :func:`~repro.engine.executor._thomas_transposed`, so a
    prepared solve reproduces an unprepared engine solve bit for bit.
    """

    __slots__ = ("ta", "cp", "denom", "nbytes")

    def __init__(self, ta, cp, denom):
        self.ta = ta
        self.cp = cp
        self.denom = denom
        self.nbytes = ta.nbytes + cp.nbytes + denom.nbytes

    @property
    def m(self) -> int:
        return self.ta.shape[1]

    @property
    def n(self) -> int:
        return self.ta.shape[0]

    @classmethod
    def factor(cls, a, b, c) -> "ThomasRhsFactorization":
        """Coefficient-only forward elimination over ``(M, N)`` inputs.

        Operation-for-operation the coefficient half of
        ``_thomas_transposed``: ``denom_i = b_i − c'_{i−1} a_i`` (that
        exact multiply-then-subtract order), ``c'_i = c_i / denom_i``.
        """
        m, n = b.shape
        ta = np.ascontiguousarray(a.T)
        tb = np.ascontiguousarray(b.T)
        tc = np.ascontiguousarray(c.T)
        cp = np.empty((n, m), dtype=b.dtype)
        denom = np.empty((n, m), dtype=b.dtype)
        t1 = np.empty(m, dtype=b.dtype)
        denom[0] = tb[0]
        np.divide(tc[0], tb[0], out=cp[0])
        for i in range(1, n):
            np.multiply(cp[i - 1], ta[i], out=t1)
            np.subtract(tb[i], t1, out=denom[i])
            np.divide(tc[i], denom[i], out=cp[i])
        return cls(ta=ta, cp=cp, denom=denom)

    def solve_shard(self, ws, d, out, lo: int, hi: int) -> None:
        """RHS-only sweep for batch rows ``[lo, hi)`` into ``out``.

        Shards are column slices of the transposed ``(N, M)`` workspace
        buffers, so concurrent shards share one workspace and write
        disjoint regions.  Identical operation order to the full solve:
        multiply, subtract, divide by the stored denominator.
        """
        n = self.n
        ta, cp, denom = self.ta, self.cp, self.denom
        td, dp, xt = ws.td, ws.dp, ws.xt
        t1, t2 = ws.t1[lo:hi], ws.t2[lo:hi]
        s = slice(lo, hi)
        td[:, s] = d[s].T
        np.divide(td[0, s], denom[0, s], out=dp[0, s])
        for i in range(1, n):
            np.multiply(dp[i - 1, s], ta[i, s], out=t2)
            np.subtract(td[i, s], t2, out=t2)
            np.divide(t2, denom[i, s], out=dp[i, s])
        xt[n - 1, s] = dp[n - 1, s]
        for i in range(n - 2, -1, -1):
            np.multiply(cp[i, s], xt[i + 1, s], out=t1)
            np.subtract(dp[i, s], t1, out=xt[i, s])
        out[s] = xt[:, s].T

    def solve_shard_t(self, ws, dt, out_t, lo: int, hi: int) -> None:
        """Transposed-layout RHS sweep: ``(N, M)`` in, ``(N, M)`` out.

        The sweep already runs in the transposed layout internally;
        this entry point reads the right-hand side straight from the
        caller's ``(N, M)`` array and writes the solution into the
        caller's ``(N, M)`` output — no staging copies at all.  The
        arithmetic is operation-for-operation :meth:`solve_shard`
        (copies never change bits), so transposed-layout solves keep
        the bitwise promise.  This is the ADI fast path: alternating
        sweep directions hand each solve its input in exactly this
        orientation.
        """
        n = self.n
        ta, cp, denom = self.ta, self.cp, self.denom
        dp = ws.dp
        t1, t2 = ws.t1[lo:hi], ws.t2[lo:hi]
        s = slice(lo, hi)
        np.divide(dt[0, s], denom[0, s], out=dp[0, s])
        for i in range(1, n):
            np.multiply(dp[i - 1, s], ta[i, s], out=t2)
            np.subtract(dt[i, s], t2, out=t2)
            np.divide(t2, denom[i, s], out=dp[i, s])
        out_t[n - 1, s] = dp[n - 1, s]
        for i in range(n - 2, -1, -1):
            np.multiply(cp[i, s], out_t[i + 1, s], out=t1)
            np.subtract(dp[i, s], t1, out=out_t[i, s])


def factorization_nbytes(fact) -> int:
    """Bytes of stored factorization state (for the engine's ledger)."""
    nbytes = getattr(fact, "nbytes", None)
    if nbytes is not None:  # Thomas / cyclic / penta / block kinds
        return nbytes
    nb = sum(k1.nbytes + k2.nbytes for k1, k2 in fact.level_factors)
    red = fact.reduced
    if red is not None:
        nb += red.a.nbytes + red.cp.nbytes + red.inv_denom.nbytes
    return nb


def build_factorization(plan, a, b, c):
    """Factor coefficients for ``plan``: Thomas at ``k=0``, hybrid above."""
    if plan.uses_thomas:
        return ThomasRhsFactorization.factor(a, b, c)
    return HybridFactorization.factor(a, b, c, k=plan.k, check=False)


def _shard_hybrid(fact: HybridFactorization, lo: int, hi: int):
    """A zero-copy view of rows ``[lo, hi)`` of a hybrid factorization.

    Level factors slice along the batch axis; the reduced interleaved
    system's rows for batch row ``i`` are ``[i·g, (i+1)·g)``, so the
    view's reduced factorization is the contiguous row block
    ``[lo·g, hi·g)``.  Elementwise along ``M`` throughout → the shard
    produces the exact bits the full solve would.
    """
    g = 1 << fact.k
    red = fact.reduced
    return HybridFactorization(
        k=fact.k,
        level_factors=[(k1[lo:hi], k2[lo:hi]) for k1, k2 in fact.level_factors],
        reduced=ThomasFactorization(
            a=red.a[lo * g : hi * g],
            cp=red.cp[lo * g : hi * g],
            inv_denom=red.inv_denom[lo * g : hi * g],
        ),
    )


def rhs_only_sweep(
    engine,
    plan,
    fact,
    d,
    *,
    out: np.ndarray | None = None,
    workers: int | None = None,
    stage_times: list | None = None,
) -> np.ndarray:
    """Run the RHS-only sweep of ``fact`` under ``plan``'s engine state.

    Checks a :class:`~repro.engine.workspace.PreparedWorkspace` out of
    the engine's pool, optionally shards the batch axis across the
    engine's thread pool, and returns the solution.  ``d`` must be a
    contiguous ``(M, N)`` array of the plan's dtype.
    """
    m, n = plan.m, plan.n
    if out is None:
        out = np.empty((m, n), dtype=plan.dtype)
    shards = shard_bounds(m, workers) if workers and workers > 1 else [(0, m)]
    ws = engine.checkout_prepared(plan)
    t0 = time.perf_counter()
    try:
        if plan.uses_thomas:
            if len(shards) == 1:
                fact.solve_shard(ws, d, out, 0, m)
            else:
                pool = engine.thread_pool(len(shards))
                list(
                    pool.map(
                        lambda lohi: fact.solve_shard(ws, d, out, *lohi),
                        shards,
                    )
                )
        else:
            if len(shards) == 1:
                fact.solve(d, out=out, scratch=ws.scratch_for(0, (0, m)))
            else:

                def run(job):
                    idx, (lo, hi) = job
                    _shard_hybrid(fact, lo, hi).solve(
                        d[lo:hi],
                        out=out[lo:hi],
                        scratch=ws.scratch_for(idx, (lo, hi)),
                    )

                pool = engine.thread_pool(len(shards))
                list(pool.map(run, enumerate(shards)))
    finally:
        engine.checkin_prepared(plan, ws)
    if stage_times is not None:
        kind = "thomas" if plan.uses_thomas else "hybrid"
        tag = f" [{len(shards)} shards]" if len(shards) > 1 else ""
        stage_times.append(
            (f"rhs-only {kind}{tag}", time.perf_counter() - t0)
        )
    return out


class CyclicRhsFactorization:
    """Engine-layer cyclic factorization: corner-reduced core + correction.

    The engine sibling of
    :class:`~repro.core.factorize.CyclicFactorization`: the core ``A'``
    factorization is an engine RHS-only factorization
    (:class:`ThomasRhsFactorization` at ``k = 0`` — transposed layout,
    stored denominators, bitwise-identical sweeps — or
    :class:`~repro.core.factorize.HybridFactorization` above), and the
    Sherman–Morrison state (``q``, ``w = a_0/γ``, the precomputed
    ``1/(1 + vᵀq)`` scale) is stored alongside.  A cyclic solve against
    a cached instance is **one** core RHS-only sweep plus a vectorized
    rank-one update — versus the two full eliminations the unprepared
    path pays.
    """

    __slots__ = ("core", "q", "w", "scale", "singular", "nbytes")

    def __init__(self, core, q, w, scale, singular):
        self.core = core
        self.q = q
        self.w = w
        self.scale = scale
        self.singular = singular
        self.nbytes = (
            factorization_nbytes(core)
            + q.nbytes + w.nbytes + scale.nbytes
        )


def build_cyclic_factorization(
    engine, plan, a, b, c, *, check: bool = True
) -> CyclicRhsFactorization:
    """Corner-reduce + factor a cyclic coefficient set under ``plan``.

    The correction column ``q`` is solved through the freshly built
    core factorization's own RHS-only sweep, so the stored ``q`` is
    bitwise identical to what an unprepared engine solve of
    ``A' q = u`` would produce — which is what keeps the prepared
    cyclic path bitwise-equal to re-elimination at ``k = 0``.
    ``check`` sets the singular-correction policy (raise vs warn+NaN).
    """
    from repro.core.periodic import (
        correction_denominator,
        correction_scale,
        cyclic_reduce,
        singular_rows,
    )

    ap, bp, cp, u, w = cyclic_reduce(a, b, c, check=check)
    core = build_factorization(plan, ap, bp, cp)
    q = rhs_only_sweep(engine, plan, core, u)
    denom = correction_denominator(q, w)
    scale = correction_scale(denom, plan.n, check=check)
    return CyclicRhsFactorization(
        core=core, q=q, w=w, scale=scale,
        singular=singular_rows(denom, plan.n),
    )


def cyclic_rhs_only_sweep(
    engine,
    plan,
    fact: CyclicRhsFactorization,
    d,
    *,
    out: np.ndarray | None = None,
    workers: int | None = None,
    check: bool = True,
    stage_times: list | None = None,
) -> np.ndarray:
    """One cyclic solve against a stored :class:`CyclicRhsFactorization`.

    Runs the core RHS-only sweep (optionally sharded, same bitwise
    argument as :func:`rhs_only_sweep`) into a pooled workspace
    buffer, then applies the precomputed rank-one correction.  The
    returned array never aliases pooled workspace memory.
    """
    if check and fact.singular.size:
        from repro.core.periodic import CyclicSingularError, _describe_rows

        raise CyclicSingularError(
            "singular Sherman–Morrison correction in batch row(s) "
            f"{_describe_rows(fact.singular)} — re-factor with "
            "check=False for NaN output"
        )
    from repro.core.periodic import apply_cyclic_correction

    ws = engine.checkout_prepared(plan)
    try:
        y = rhs_only_sweep(
            engine, plan, fact.core, d,
            out=ws.cyclic_y(), workers=workers, stage_times=stage_times,
        )
        t0 = time.perf_counter()
        if out is None:
            out = np.empty((plan.m, plan.n), dtype=plan.dtype)
        x = apply_cyclic_correction(y, fact.q, fact.w, fact.scale, out=out)
    finally:
        engine.checkin_prepared(plan, ws)
    if stage_times is not None:
        stage_times.append(("cyclic-correction", time.perf_counter() - t0))
    return x


class PreparedPlan:
    """A solve handle bound to one factored coefficient set.

    Returned by :func:`prepare` / :meth:`ExecutionEngine.prepare
    <repro.engine.engine.ExecutionEngine.prepare>`.  Each
    :meth:`solve` runs the RHS-only sweep — no re-elimination, pooled
    workspaces, optional batch-axis sharding — and records a
    :class:`~repro.backends.trace.SolveTrace` with
    ``factorization="handle"``.

    ``k = 0`` handles are bitwise identical to unprepared engine
    solves; ``k > 0`` handles agree to rounding (the stored hybrid
    reciprocals differ from the live p-Thomas divisions in the last
    ulp).
    """

    def __init__(
        self, engine, plan, fact, fingerprint: str, workers=None,
        periodic: bool = False,
    ):
        self.engine = engine
        self.plan = plan
        self.factorization = fact
        self.fingerprint = fingerprint
        self.default_workers = workers
        self.periodic = periodic
        self.solves = 0
        # (workers, check) -> BoundSolve: the handle is a thin wrapper
        # over bound sessions since the bind/execute split — one bind
        # per effective configuration, per-call costs amortized away
        self._sessions: dict = {}

    @property
    def m(self) -> int:
        return self.plan.m

    @property
    def n(self) -> int:
        return self.plan.n

    @property
    def k(self) -> int:
        return self.plan.k

    @property
    def dtype(self) -> np.dtype:
        return self.plan.dtype

    @property
    def nbytes(self) -> int:
        """Bytes held by the stored factorization."""
        return factorization_nbytes(self.factorization)

    def describe(self) -> dict:
        """Plan summary plus factorization provenance."""
        desc = self.plan.describe()
        desc["fingerprint"] = self.fingerprint
        desc["factorization_bytes"] = self.nbytes
        desc["solves"] = self.solves
        desc["periodic"] = self.periodic
        return desc

    def _session(self, workers, check: bool):
        """The bound session for this effective configuration."""
        key = (workers, check)
        session = self._sessions.get(key)
        if session is None:
            from repro.backends.request import SolveRequest

            session = self.engine.bind(
                SolveRequest(
                    a=None,
                    b=None,
                    c=None,
                    d=None,
                    m=self.m,
                    n=self.n,
                    dtype=np.dtype(self.plan.dtype).name,
                    periodic=self.periodic,
                    rhs_only=True,
                    factorization=self.factorization,
                    plan=self.plan,
                    workers=workers,
                    check=check,
                    label="prepared",
                )
            )
            self._sessions[key] = session
        return session

    def bind(self, *, workers: int | None = None, check: bool = True):
        """The handle's :class:`~repro.engine.session.BoundSolve`.

        For callers who want the raw hot loop: ``session.step(d)``
        reuses a session-owned output buffer and skips per-call
        stats/trace entirely.  The session is cached — repeated calls
        with one configuration return the same object.
        """
        if workers is None:
            workers = self.default_workers
        return self._session(workers, check)

    def solve(
        self,
        d,
        *,
        out: np.ndarray | None = None,
        workers: int | None = None,
        check: bool = True,
    ) -> np.ndarray:
        """Solve the prepared system against a fresh ``(M, N)`` RHS.

        A thin wrapper over a cached
        :class:`~repro.engine.session.BoundSolve`: the ``rhs_only``
        request carrying the stored factorization is bound once per
        ``(workers, check)`` configuration and each call runs one
        instrumented session step — identical stats, stages and trace
        to the classic per-call dispatch, without re-resolving the plan
        or rebuilding the request every right-hand side.
        """
        d = np.asarray(d)
        if d.shape != (self.m, self.n):
            raise ValueError(
                f"d has shape {d.shape}, prepared for ({self.m}, {self.n})"
            )
        if check and not np.all(np.isfinite(d)):
            raise ValueError("d contains non-finite values")
        dtype = self.plan.dtype
        if d.dtype != dtype or not d.flags.c_contiguous:
            d = np.ascontiguousarray(d, dtype=dtype)
        if workers is None:
            workers = self.default_workers
        from repro.backends.trace import record_trace

        outcome = self._session(workers, check).step_once(d, out=out)
        self.solves += 1
        record_trace(outcome.trace)
        return outcome.x

    def close(self) -> None:
        """Release the handle's bound sessions (workspaces return to
        the engine pool); the handle itself remains usable — the next
        solve simply binds afresh."""
        sessions, self._sessions = self._sessions, {}
        for session in sessions.values():
            session.close()


def prepare(
    a,
    b,
    c,
    *,
    check: bool = True,
    engine=None,
    periodic: bool = False,
    **opts,
) -> PreparedPlan:
    """Factor a coefficient set once; solve many right-hand sides.

    The module-level convenience over
    :meth:`ExecutionEngine.prepare`.  Keywords mirror ``solve_batch``
    (``k``, ``fuse``, ``n_windows``, ``subtile_scale``,
    ``parallelism``, ``heuristic``, ``workers``).

    ``periodic=True`` prepares a *cyclic* (Sherman–Morrison) system:
    the corner entries ``a[:, 0]`` / ``c[:, -1]`` are real couplings
    (never zeroed by validation), and ``handle.solve(d)`` runs one core
    RHS-only sweep plus the precomputed rank-one correction.

    Examples
    --------
    >>> import numpy as np, repro
    >>> from repro.workloads.generators import random_batch
    >>> a, b, c, d = random_batch(8, 64, seed=0)
    >>> handle = repro.prepare(a, b, c)
    >>> x = handle.solve(d)                  # RHS-only: no re-elimination
    >>> bool(np.allclose(x, repro.solve_batch(a, b, c, d)))
    True
    """
    if engine is None:
        from repro.engine.engine import default_engine

        engine = default_engine()
    if periodic:
        # cyclic corners are used — validate without pad zeroing
        d0 = np.zeros_like(np.asarray(b))
        validate = (
            check_cyclic_batch_arrays if check else coerce_cyclic_batch_arrays
        )
        a, b, c, _ = validate(a, b, c, d0)
        if b.shape[1] < 3:
            raise ValueError(
                f"cyclic solver needs N >= 3, got {b.shape[1]}"
            )
        return engine.prepare(a, b, c, periodic=True, check=check, **opts)
    if check:
        d0 = np.zeros_like(np.asarray(b, dtype=float))
        a, b, c, _ = check_batch_arrays(a, b, c, d0)
    else:
        d0 = np.zeros_like(np.asarray(b))
        a, b, c, _ = coerce_batch_arrays(a, b, c, d0)
    return engine.prepare(a, b, c, **opts)
