"""Bound solve sessions: bind once, step many times.

The engine's classic entrypoint, :meth:`ExecutionEngine.run
<repro.engine.engine.ExecutionEngine.run>`, pays its full dispatch cost
on every call — plan lookup, fingerprint phase, stage-list and trace
construction, stats lock traffic.  For one-shot solves that cost is
noise; for a time-stepping loop issuing thousands of right-hand sides
against one fixed matrix it is the dominant overhead (the motivating
workloads — ADI, Crank–Nicolson — are exactly this shape).

:class:`BoundSolve` splits the spine into **bind** and **execute**:

* ``engine.bind(request)`` performs validation-independent setup once —
  plan resolution, the fingerprint/factorization phase, workspace and
  shard-geometry binding, trace-template capture — and returns a
  session.
* :meth:`BoundSolve.step` is the allocation-free per-step hot loop: a
  canonical-input scan, a direct factorization sweep into session-owned
  buffers, no stats, no trace, no stage lists.
* :meth:`BoundSolve.step_once` is the fully-instrumented execution —
  stats, stages, :class:`~repro.backends.trace.SolveTrace` — and is how
  the single-call path is expressed: ``ExecutionEngine.run`` is
  literally ``bind(request, transient=True).step_once()``, so every
  pre-existing dispatch route flows through this module bitwise
  unchanged.

``transient=True`` reproduces the one-shot lifecycle exactly (the
fingerprint two-sighting ledger, ``force`` only on explicit
``fingerprint=True``).  A persistent bind declares reuse intent: when
the fingerprint gate admits the plan at all, the factorization is
forced at bind time so the first step already runs RHS-only.  Plans the
gate rejects (``k > 0`` without an ``rtol``/``fingerprint=True``
license) execute the full plan every step — the bitwise contract is
never traded for session speed.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.hybrid import HybridReport
from repro.core.tiled_pcr import TilingCounters
from repro.engine.executor import shard_bounds
from repro.engine.prepared import (
    _shard_hybrid,
    coefficient_fingerprint,
    cyclic_rhs_only_sweep,
    rhs_only_sweep,
    rtol_permits_hybrid_reuse,
)

__all__ = ["BoundSolve"]


class BoundSolve:
    """One bound solve session: frozen plan + factorization + buffers.

    Produced by :meth:`ExecutionEngine.bind
    <repro.engine.engine.ExecutionEngine.bind>`; see the module docs
    for the bind/execute contract.  Sessions are cheap enough to be
    built per call (the transient path) and rich enough to drive a
    multi-thousand-step simulation (the persistent path).

    The session's execution **mode** is resolved at bind time:

    ``"rhs"``
        Plain tridiagonal served by a factorization — an explicit
        prepared handle or a fingerprint-cache entry.
    ``"cyclic"``
        Periodic tridiagonal served by a stored
        :class:`~repro.engine.prepared.CyclicRhsFactorization`.
    ``"banded"``
        Pentadiagonal / block-tridiagonal Thomas sweep.
    ``"full"``
        Plain tridiagonal running the full hybrid plan each step
        (fingerprinting off or not licensed).
    ``"full-cyclic"``
        Periodic corner-reduce + two inner solves each step.
    """

    def __init__(self, engine, request, *, transient: bool = False):
        self.engine = engine
        self.request = request
        self.transient = transient
        self.steps = 0
        self.closed = False
        self.bind_stages: list = []
        self._ws = None
        self._out = None
        self._out_t = None
        self._cyc = None
        system = getattr(request, "system", None)
        self._banded = system is not None and system.kind != "tridiagonal"
        if self._banded:
            self._bind_banded(request)
        else:
            self._bind_tridiagonal(request)
        workers = request.workers
        shards = (
            shard_bounds(request.m, workers)
            if workers is not None and workers > 1
            else [(0, request.m)]
        )
        self._shards = shards if len(shards) > 1 else None
        self._dtype = self.plan.dtype
        if self._banded and request.system.kind == "block":
            self._dshape = (request.m, request.n, request.system.block_size)
        else:
            self._dshape = (request.m, request.n)

    # ---- bind phase --------------------------------------------------
    def _resolve_plan(self, request, *, system_tag: str = ""):
        """Plan lookup (or the request's frozen plan) + ``prepare`` stage."""
        info: dict = {}
        t0 = time.perf_counter()
        if request.plan is not None:
            plan = request.plan
            cache = "hit"
        elif system_tag:
            plan = self.engine.plan_for(
                request.m,
                request.n,
                np.dtype(request.dtype),
                k=request.k,
                info=info,
                system=system_tag,
            )
            cache = info.get("cache", "miss")
        else:
            plan = self.engine.plan_for(
                request.m,
                request.n,
                np.dtype(request.dtype),
                k=request.k,
                fuse=request.fuse,
                n_windows=request.n_windows,
                subtile_scale=request.subtile_scale,
                parallelism=request.parallelism,
                heuristic=request.heuristic,
                info=info,
            )
            cache = info.get("cache", "miss")
        self.bind_stages.append(("prepare", time.perf_counter() - t0))
        self.plan = plan
        self.cache = cache
        return plan

    def _bind_tridiagonal(self, request) -> None:
        plan = self._resolve_plan(request)
        fingerprint = request.fingerprint

        if request.rhs_only:
            # prepared handle: the factorization rode in on the request
            self.fact = request.factorization
            self.fp_state = "handle"
            self.mode = "cyclic" if request.periodic else "rhs"
            self.count_solves = False
            self._report_plain = False
            return

        # a persistent bind declares reuse intent, so the factorization
        # is forced whenever the gate admits the plan at all; transient
        # binds keep the classic two-sighting auto lifecycle
        force = True if not self.transient else (fingerprint is True)
        fact = None
        fp_state = "off" if fingerprint is False else "n/a"
        licensed = fingerprint is not False and (
            plan.uses_thomas
            or fingerprint
            or rtol_permits_hybrid_reuse(request.rtol, plan.dtype)
        )
        if licensed:
            t_fp = time.perf_counter()
            digest = coefficient_fingerprint(request.a, request.b, request.c)
            self.bind_stages.append(
                ("fingerprint", time.perf_counter() - t_fp)
            )
            fact, fp_state = self.engine._factorization_for(
                plan, digest, request.a, request.b, request.c,
                force=force,
                periodic=request.periodic,
                check=request.check,
                stage_times=self.bind_stages,
            )
        self.fact = fact
        self.fp_state = fp_state
        if request.periodic:
            self.mode = "cyclic" if fact is not None else "full-cyclic"
            self._report_plain = False
        else:
            self.mode = "rhs" if fact is not None else "full"
            self._report_plain = True
        self.count_solves = True

    def _bind_banded(self, request) -> None:
        from repro.core.blocktridiag import BlockThomasFactorization
        from repro.core.pentadiag import PentaFactorization

        kind = request.system.kind
        tag = request.system.tag
        plan = self._resolve_plan(request, system_tag=tag)

        if kind == "pentadiagonal":
            coeffs = (request.e, request.a, request.b, request.c, request.f)

            def builder():
                return PentaFactorization.factor(*coeffs)

        else:
            coeffs = (request.a, request.b, request.c)

            def builder():
                return BlockThomasFactorization.factor(*coeffs)

        fingerprint = request.fingerprint
        fact = None
        fp_state = "off" if fingerprint is False else "n/a"
        if fingerprint is not False:
            t_fp = time.perf_counter()
            digest = coefficient_fingerprint(*coeffs)
            self.bind_stages.append(
                ("fingerprint", time.perf_counter() - t_fp)
            )
            fact, fp_state = self.engine._factorization_for(
                plan, digest, request.a, request.b, request.c,
                force=True if not self.transient else (fingerprint is True),
                stage_times=self.bind_stages,
                builder=builder,
            )
        self._banded_served = fact is not None
        if fact is None:
            t_b = time.perf_counter()
            fact = builder()
            self.bind_stages.append(
                ("factorize", time.perf_counter() - t_b)
            )
        self.fact = fact
        self.fp_state = fp_state
        self.mode = "banded"
        self.count_solves = True
        self._report_plain = False
        self._kind = kind
        self._tag = tag

    # ---- instrumented execution --------------------------------------
    def step_once(self, d=None, out=None):
        """One fully-instrumented execution: stats + stages + trace.

        The single-call semantics of the classic ``ExecutionEngine.run``
        — every stat the one-shot path increments, every stage it
        records (bind stages included), the exact
        :class:`~repro.backends.trace.SolveTrace` schema — returned as
        a :class:`~repro.backends.request.SolveOutcome`.  ``d`` / ``out``
        default to the bound request's arrays.
        """
        from repro.backends.request import SolveOutcome
        from repro.backends.trace import SolveTrace, StageTiming

        engine = self.engine
        request = self.request
        plan = self.plan
        if d is None:
            d = request.d
        if out is None:
            out = request.out
        workers = request.workers
        stage_times = list(self.bind_stages)

        if self.mode == "banded":
            return self._step_once_banded(d, out, stage_times)

        if self.mode in ("rhs", "cyclic"):
            fact = self.fact
            if self.mode == "cyclic":
                x = cyclic_rhs_only_sweep(
                    engine, plan, fact, d,
                    out=out, workers=workers, check=request.check,
                    stage_times=stage_times,
                )
            else:
                x = rhs_only_sweep(
                    engine, plan, fact, d,
                    out=out, workers=workers,
                    stage_times=stage_times,
                )
            with engine._lock:
                if self.count_solves:
                    engine.stats.solves += 1
                engine.stats.rhs_only_solves += 1
                if workers is not None and workers > 1:
                    engine.stats.sharded_solves += 1
            kept = fact
        elif self.mode == "full":
            counters = TilingCounters()
            report = HybridReport(
                m=request.m,
                n=request.n,
                k=plan.k,
                k_source=plan.k_source,
                subsystems=request.m * plan.g,
                fused=plan.fuse,
                n_windows=plan.n_windows,
                tiling=counters,
            )
            if workers is not None and workers > 1:
                x = engine.solve_sharded(
                    plan, workers,
                    request.a, request.b, request.c, d,
                    counters=counters, out=out, stage_times=stage_times,
                )
            else:
                x = engine.execute_pooled(
                    plan,
                    request.a, request.b, request.c, d,
                    counters=counters, out=out, stage_times=stage_times,
                )
            engine.last_report = report
            kept = None
        else:  # full-cyclic: corner-reduce + two inner solves + correction
            from repro.core.periodic import (
                apply_cyclic_correction,
                correction_denominator,
                correction_scale,
                cyclic_reduce,
            )

            t0 = time.perf_counter()
            ap, bp, cp, u, w = cyclic_reduce(
                request.a, request.b, request.c, check=request.check
            )
            stage_times.append(("cyclic-reduce", time.perf_counter() - t0))
            y, _, _ = engine._run_plain(
                plan, ap, bp, cp, d,
                workers=workers, fingerprint=False, stage_times=stage_times,
            )
            q, _, _ = engine._run_plain(
                plan, ap, bp, cp, u,
                workers=workers, fingerprint=False, stage_times=stage_times,
            )
            t1 = time.perf_counter()
            scale = correction_scale(
                correction_denominator(q, w), request.n, check=request.check
            )
            x = apply_cyclic_correction(y, q, w, scale, out=out)
            stage_times.append(
                ("cyclic-correction", time.perf_counter() - t1)
            )
            kept = None

        if self._report_plain and self.mode == "rhs" and self.count_solves:
            # the fingerprint cache served a *plain* batch request: the
            # one-shot path still publishes a (zero-counter) report
            engine.last_report = HybridReport(
                m=request.m,
                n=request.n,
                k=plan.k,
                k_source=plan.k_source,
                subsystems=request.m * plan.g,
                fused=plan.fuse,
                n_windows=plan.n_windows,
                tiling=TilingCounters(),
            )

        trace = SolveTrace(
            backend=request.label or "engine",
            m=request.m,
            n=request.n,
            dtype=request.dtype,
            k=plan.k,
            k_source=plan.k_source,
            fuse=plan.fuse,
            n_windows=plan.n_windows,
            workers=workers if workers is not None else 1,
            plan_cache=self.cache,
            factorization=self.fp_state,
            rhs_only=self.mode in ("rhs", "cyclic"),
            periodic=request.periodic,
            stages=[StageTiming(n_, s) for n_, s in stage_times],
        )
        trace.decision = request.decision
        self.steps += 1
        return SolveOutcome(x=x, trace=trace, factorization=kept, plan=plan)

    def _step_once_banded(self, d, out, stage_times):
        from repro.backends.request import SolveOutcome
        from repro.backends.trace import SolveTrace, StageTiming

        engine = self.engine
        request = self.request
        plan = self.plan
        fact = self.fact
        workers = request.workers
        served = self._banded_served

        t_s = time.perf_counter()
        if out is None:
            out = np.empty_like(d)
        shards = self._shards if self._shards is not None else [(0, request.m)]
        if len(shards) > 1:
            pool = engine.thread_pool(len(shards))
            list(
                pool.map(
                    lambda s: fact.solve_shard(d, out, s[0], s[1]),
                    shards,
                )
            )
        else:
            fact.solve_shard(d, out, 0, request.m)
        sweep = "rhs-only" if served else "sweep"
        shard_note = f" [{len(shards)} shards]" if len(shards) > 1 else ""
        stage_times.append(
            (f"{sweep} {self._tag}{shard_note}", time.perf_counter() - t_s)
        )
        with engine._lock:
            engine.stats.solves += 1
            if served:
                engine.stats.rhs_only_solves += 1
            if len(shards) > 1:
                engine.stats.sharded_solves += 1

        trace = SolveTrace(
            backend=request.label or "engine",
            m=request.m,
            n=request.n,
            dtype=request.dtype,
            k=plan.k,
            k_source=plan.k_source,
            workers=workers if workers is not None else 1,
            plan_cache=self.cache,
            factorization=self.fp_state,
            rhs_only=served,
            periodic=False,
            system=self._kind,
            stages=[StageTiming(n_, s) for n_, s in stage_times],
        )
        trace.decision = request.decision
        kept = fact if self.fp_state in ("hit", "factored") else None
        self.steps += 1
        return SolveOutcome(x=out, trace=trace, factorization=kept, plan=plan)

    # ---- hot loop ----------------------------------------------------
    def _canon_d(self, d):
        """The per-step input scan: canonical arrays pass untouched."""
        if not (
            type(d) is np.ndarray
            and d.dtype == self._dtype
            and d.flags.c_contiguous
        ):
            d = np.ascontiguousarray(d, dtype=self._dtype)
        if d.shape != self._dshape:
            raise ValueError(
                f"d has shape {d.shape}, session bound for {self._dshape}"
            )
        return d

    def _workspace(self):
        if self._ws is None:
            self._ws = self.engine.checkout_prepared(self.plan)
        return self._ws

    def _sweep(self, fact, d, out):
        """Direct RHS-only sweep through the session-held workspace."""
        plan = self.plan
        ws = self._workspace()
        if plan.uses_thomas:
            if self._shards is None:
                fact.solve_shard(ws, d, out, 0, plan.m)
            else:
                pool = self.engine.thread_pool(len(self._shards))
                list(
                    pool.map(
                        lambda lohi: fact.solve_shard(ws, d, out, *lohi),
                        self._shards,
                    )
                )
        else:
            if self._shards is None:
                fact.solve(d, out=out, scratch=ws.scratch_for(0, (0, plan.m)))
            else:

                def run(job):
                    idx, (lo, hi) = job
                    _shard_hybrid(fact, lo, hi).solve(
                        d[lo:hi],
                        out=out[lo:hi],
                        scratch=ws.scratch_for(idx, (lo, hi)),
                    )

                pool = self.engine.thread_pool(len(self._shards))
                list(pool.map(run, enumerate(self._shards)))
        return out

    def _cyclic_state(self):
        """Reduced cyclic state, computed once per session.

        ``cyclic_reduce`` and the correction column depend only on the
        bound coefficients, so recomputing them per step would produce
        the same bits — caching is free of bitwise risk.
        """
        if self._cyc is None:
            from repro.core.periodic import (
                correction_denominator,
                correction_scale,
                cyclic_reduce,
            )

            request = self.request
            ap, bp, cp, u, w = cyclic_reduce(
                request.a, request.b, request.c, check=request.check
            )
            q, _, _ = self.engine._run_plain(
                self.plan, ap, bp, cp, u,
                workers=request.workers, fingerprint=False,
            )
            scale = correction_scale(
                correction_denominator(q, w), request.n, check=request.check
            )
            self._cyc = (ap, bp, cp, w, q, scale)
        return self._cyc

    def step(self, d, out=None):
        """The allocation-free per-step hot loop.

        Canonical-input scan, direct factorization sweep, session-owned
        output buffer when ``out`` is omitted (reused across steps —
        copy it if you keep references).  No stats, no stages, no trace:
        instrumentation belongs to :meth:`step_once`.  Bitwise identical
        to an independent one-shot solve of the same system wherever the
        one-shot path makes that promise (every ``k = 0`` route, all
        banded routes).
        """
        if self.closed:
            raise RuntimeError("session is closed")
        d = self._canon_d(d)
        if out is None:
            out = self._out
            if out is None:
                out = self._out = np.empty(self._dshape, dtype=self._dtype)
        mode = self.mode
        if mode == "rhs":
            self._sweep(self.fact, d, out)
        elif mode == "banded":
            fact = self.fact
            if self._shards is None:
                fact.solve_shard(d, out, 0, self.request.m)
            else:
                pool = self.engine.thread_pool(len(self._shards))
                list(
                    pool.map(
                        lambda s: fact.solve_shard(d, out, s[0], s[1]),
                        self._shards,
                    )
                )
        elif mode == "cyclic":
            fact = self.fact
            if self.request.check and fact.singular.size:
                from repro.core.periodic import (
                    CyclicSingularError,
                    _describe_rows,
                )

                raise CyclicSingularError(
                    "singular Sherman–Morrison correction in batch row(s) "
                    f"{_describe_rows(fact.singular)} — re-factor with "
                    "check=False for NaN output"
                )
            from repro.core.periodic import apply_cyclic_correction

            y = self._sweep(fact.core, d, self._workspace().cyclic_y())
            apply_cyclic_correction(y, fact.q, fact.w, fact.scale, out=out)
        elif mode == "full":
            request = self.request
            workers = request.workers
            if workers is not None and workers > 1:
                self.engine.solve_sharded(
                    self.plan, workers,
                    request.a, request.b, request.c, d, out=out,
                )
            else:
                self.engine.execute_pooled(
                    self.plan,
                    request.a, request.b, request.c, d, out=out,
                )
        else:  # full-cyclic
            from repro.core.periodic import apply_cyclic_correction

            ap, bp, cp, w, q, scale = self._cyclic_state()
            y, _, _ = self.engine._run_plain(
                self.plan, ap, bp, cp, d,
                workers=self.request.workers, fingerprint=False,
            )
            apply_cyclic_correction(y, q, w, scale, out=out)
        self.steps += 1
        return out

    def step_t(self, dt, out_t=None):
        """Transposed-layout hot step: ``(N, M)`` in, ``(N, M)`` out.

        The Thomas RHS sweep runs in the transposed layout internally,
        so a session whose caller already holds the right-hand side as
        ``(N, M)`` — the natural orientation of an alternating-direction
        sweep — can skip both staging transposes of :meth:`step`.  On
        the ``rhs``/Thomas route this feeds
        :meth:`~repro.engine.prepared.ThomasRhsFactorization.solve_shard_t`
        directly (bitwise identical to :meth:`step` on the transposed
        arrays: only copies are elided, never arithmetic); every other
        mode canonicalizes through :meth:`step` with explicit
        transposes.  ``out_t`` defaults to a session-owned buffer
        reused across steps — copy it if you keep references.
        """
        if self.closed:
            raise RuntimeError("session is closed")
        if len(self._dshape) != 2:
            raise ValueError(
                "step_t is defined for (M, N) sessions, not block systems"
            )
        m, n = self._dshape
        if not (
            type(dt) is np.ndarray
            and dt.dtype == self._dtype
            and dt.flags.c_contiguous
        ):
            dt = np.ascontiguousarray(dt, dtype=self._dtype)
        if dt.shape != (n, m):
            raise ValueError(
                f"dt has shape {dt.shape}, session bound for {(n, m)}"
            )
        if out_t is None:
            out_t = self._out_t
            if out_t is None:
                out_t = self._out_t = np.empty((n, m), dtype=self._dtype)
        if self.mode == "rhs" and self.plan.uses_thomas:
            fact = self.fact
            ws = self._workspace()
            if self._shards is None:
                fact.solve_shard_t(ws, dt, out_t, 0, m)
            else:
                pool = self.engine.thread_pool(len(self._shards))
                list(
                    pool.map(
                        lambda lohi: fact.solve_shard_t(ws, dt, out_t, *lohi),
                        self._shards,
                    )
                )
            self.steps += 1
            return out_t
        x = self.step(np.ascontiguousarray(dt.T))
        out_t[:] = x.T
        return out_t

    # ---- lifecycle ---------------------------------------------------
    @property
    def m(self) -> int:
        return self.request.m

    @property
    def n(self) -> int:
        return self.request.n

    @property
    def dtype(self) -> np.dtype:
        return self._dtype

    def describe(self) -> dict:
        """Session summary: mode, plan, factorization state, step count."""
        return {
            "mode": self.mode,
            "transient": self.transient,
            "m": self.request.m,
            "n": self.request.n,
            "dtype": np.dtype(self._dtype).name,
            "k": self.plan.k,
            "plan_cache": self.cache,
            "factorization": self.fp_state,
            "workers": self.request.workers,
            "steps": self.steps,
        }

    def close(self) -> None:
        """Return held workspaces to the engine pool; drop buffers."""
        if self.closed:
            return
        self.closed = True
        if self._ws is not None:
            self.engine.checkin_prepared(self.plan, self._ws)
            self._ws = None
        self._out = None
        self._out_t = None

    def __enter__(self) -> "BoundSolve":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
