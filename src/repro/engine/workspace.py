"""Per-plan preallocated execution state.

A :class:`PlanWorkspace` owns every array one in-flight execution of a
:class:`~repro.engine.plan.SolvePlan` writes besides its output.  The
engine keeps a small pool of these per plan, so repeated solves of one
problem shape allocate nothing but their result — the CPU analogue of
the paper's fixed shared-memory budget (Table I): buffer sizes are a
function of the plan alone, decided once, reused every launch.

Two shapes of state exist:

* ``k = 0`` plans (pure Thomas): transposed ``(N, M)`` copies of the
  four diagonals plus modified-coefficient and solution buffers.  The
  Thomas recurrence walks rows sequentially; in the natural ``(M, N)``
  layout each step strides across cache lines, so the executor copies
  the batch into column-major-equivalent buffers once and streams
  contiguous memory for all ``2N`` passes.  The arithmetic is
  elementwise per system, so results stay bitwise identical to
  :func:`repro.core.thomas.thomas_solve_batch`.
* ``k > 0`` plans (hybrid): the sliding-window ring buffers
  (:class:`~repro.core.tiled_pcr.TiledWorkspace`), the p-Thomas
  modified-coefficient state
  (:class:`~repro.core.pthomas.PThomasWorkspace`), and — for unfused
  plans — the four reduced-system arrays the sweep emits into.
"""

from __future__ import annotations

import numpy as np

from repro.core.pthomas import PThomasWorkspace
from repro.core.tiled_pcr import TiledWorkspace

__all__ = ["PlanWorkspace", "PreparedWorkspace"]


class PlanWorkspace:
    """All scratch one execution of ``plan`` needs, allocated up front."""

    def __init__(self, plan):
        self.plan = plan
        m, n, dtype = plan.m, plan.n, plan.dtype
        self.nbytes = 0
        if plan.uses_thomas:
            # Transposed layout: rows of the Thomas recurrence become
            # contiguous (N, M) rows.
            self.ta = np.empty((n, m), dtype=dtype)
            self.tb = np.empty((n, m), dtype=dtype)
            self.tc = np.empty((n, m), dtype=dtype)
            self.td = np.empty((n, m), dtype=dtype)
            self.cp = np.empty((n, m), dtype=dtype)
            self.dp = np.empty((n, m), dtype=dtype)
            self.xt = np.empty((n, m), dtype=dtype)
            self.t1 = np.empty(m, dtype=dtype)
            self.t2 = np.empty(m, dtype=dtype)
            self.nbytes = sum(
                v.nbytes
                for v in (
                    self.ta, self.tb, self.tc, self.td,
                    self.cp, self.dp, self.xt, self.t1, self.t2,
                )
            )
        else:
            self.tiled = TiledWorkspace(m, plan.k, plan.subtile, dtype)
            self.pthomas = PThomasWorkspace(m, n, plan.k, dtype)
            self.nbytes += sum(
                ch.nbytes for ring in self.tiled.rings for ch in ring.data
            )
            self.nbytes += sum(s.nbytes for s in self.tiled.stage)
            self.nbytes += (
                self.tiled.k1.nbytes
                + self.tiled.k2.nbytes
                + self.tiled.tmp.nbytes
            )
            self.nbytes += (
                self.pthomas.cp.nbytes
                + self.pthomas.dp.nbytes
                + self.pthomas.t1.nbytes
                + self.pthomas.t2.nbytes
            )
            if plan.fuse:
                self.reduced = None
            else:
                self.reduced = tuple(
                    np.empty((m, n), dtype=dtype) for _ in range(4)
                )
                self.nbytes += sum(r.nbytes for r in self.reduced)

    def fits(self, plan) -> bool:
        """True if this workspace serves exactly ``plan``'s signature."""
        return self.plan.signature() == plan.signature()


class PreparedWorkspace:
    """Scratch for one in-flight RHS-only prepared solve.

    The prepared path never touches coefficients, so this is the slim
    sibling of :class:`PlanWorkspace`: for ``k = 0`` plans just the
    transposed RHS / modified-RHS / solution buffers (the coefficient
    triple lives in the factorization); for ``k > 0`` plans a family of
    named-buffer dicts that
    :meth:`HybridFactorization.solve <repro.core.factorize.HybridFactorization.solve>`
    keys its ping-pong and regroup buffers into — one dict per shard,
    so sharded solves share one workspace without aliasing.
    """

    def __init__(self, plan):
        self.plan = plan
        m, n, dtype = plan.m, plan.n, plan.dtype
        self._cyclic_y = None
        if plan.uses_thomas:
            self.td = np.empty((n, m), dtype=dtype)
            self.dp = np.empty((n, m), dtype=dtype)
            self.xt = np.empty((n, m), dtype=dtype)
            self.t1 = np.empty(m, dtype=dtype)
            self.t2 = np.empty(m, dtype=dtype)
            self._scratch = None
        else:
            self._scratch = {}

    def scratch_for(self, shard: int, bounds: tuple) -> dict:
        """The named-buffer dict for one shard (``k > 0`` plans only)."""
        return self._scratch.setdefault((shard, bounds), {})

    def cyclic_y(self) -> np.ndarray:
        """The intermediate ``A' y = d`` buffer for prepared cyclic solves.

        Allocated on first use (plain prepared solves never pay for it)
        and kept for the workspace's pooled lifetime — a prepared cyclic
        sweep allocates nothing but its output, same as the plain path.
        """
        if self._cyclic_y is None:
            self._cyclic_y = np.empty(
                (self.plan.m, self.plan.n), dtype=self.plan.dtype
            )
        return self._cyclic_y

    @property
    def nbytes(self) -> int:
        """Bytes currently held (hybrid dicts fill lazily)."""
        extra = 0 if self._cyclic_y is None else self._cyclic_y.nbytes
        if self._scratch is None:
            return extra + sum(
                v.nbytes
                for v in (self.td, self.dp, self.xt, self.t1, self.t2)
            )
        return extra + sum(
            arr.nbytes
            for bufs in self._scratch.values()
            for arr in bufs.values()
        )

    def fits(self, plan) -> bool:
        """True if this workspace serves exactly ``plan``'s signature."""
        return self.plan.signature() == plan.signature()
