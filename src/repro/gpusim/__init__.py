"""GPU execution-model simulator — the hardware substitute (DESIGN.md §2).

The paper's evaluation ran CUDA kernels on an NVIDIA GTX480 against MKL
on an Intel i7 975.  This environment has neither, so the library ships
an *execution-model* simulator: the solvers compute real numbers in
NumPy, while this subpackage reproduces the quantities GPU performance
is actually made of —

* :mod:`~repro.gpusim.device` — device descriptions (GTX480 et al.) and
  their resource limits;
* :mod:`~repro.gpusim.occupancy` — the CUDA occupancy calculation
  (blocks per SM limited by threads / blocks / shared memory / registers);
* :mod:`~repro.gpusim.memory` — global-memory coalescing: warp access
  patterns → 128-byte transactions → bytes of traffic;
* :mod:`~repro.gpusim.sharedmem` — shared-memory banks and conflict
  degrees;
* :mod:`~repro.gpusim.counters` — per-kernel work/traffic ledgers;
* :mod:`~repro.gpusim.timing` — the analytic timing model combining
  compute throughput, bandwidth, latency hiding and launch overhead;
* :mod:`~repro.gpusim.cpu` — the i7-975 MKL-proxy cost model.

The timing model is calibrated (see
:mod:`repro.analysis.calibration`) so the simulated GTX480 and i7
reproduce the paper's headline ratios; every figure-reproduction
benchmark reports model output next to the paper's numbers.
"""

from repro.gpusim.device import DeviceSpec, GTX480, TESLA_C2050
from repro.gpusim.occupancy import Occupancy, occupancy
from repro.gpusim.memory import (
    MemoryTraffic,
    transactions_for_warp,
    warp_transactions_strided,
)
from repro.gpusim.sharedmem import bank_conflict_degree, smem_access_cycles
from repro.gpusim.counters import KernelCounters
from repro.gpusim.timing import GpuTimingModel, StageTime
from repro.gpusim.cpu import CpuSpec, I7_975, MklProxyModel

__all__ = [
    "DeviceSpec",
    "GTX480",
    "TESLA_C2050",
    "Occupancy",
    "occupancy",
    "MemoryTraffic",
    "transactions_for_warp",
    "warp_transactions_strided",
    "bank_conflict_degree",
    "smem_access_cycles",
    "KernelCounters",
    "GpuTimingModel",
    "StageTime",
    "CpuSpec",
    "I7_975",
    "MklProxyModel",
]
