"""Per-kernel work ledgers.

A :class:`KernelCounters` instance is what a simulated kernel hands to
the timing model: how much arithmetic it did, what it moved through
global memory (with coalescing accounted), how many shared-memory warp
accesses and barriers it issued, how many kernel launches it took, and
how long its longest *dependent* chain is (the quantity latency hiding
must cover).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpusim.memory import MemoryTraffic

__all__ = ["KernelCounters"]


@dataclass
class KernelCounters:
    """Everything the timing model needs to price one kernel (sequence).

    Attributes
    ----------
    name:
        Label for reports.
    eliminations:
        Row-reduction operations (the paper's unit of work).
    flops:
        Floating-point operations (≈ ``eliminations × flops_per_elim``).
    traffic:
        Global-memory ledger with coalescing information.
    smem_accesses:
        Warp-level shared-memory accesses (conflict-adjusted cycles are
        accumulated separately in ``smem_cycles``).
    smem_cycles:
        Conflict-adjusted shared-memory cycles.
    barriers:
        ``__syncthreads`` executed per block (summed over blocks).
    launches:
        Kernel launches (global synchronizations) in the sequence.
    dependent_steps:
        Length of the longest chain of operations that cannot overlap —
        e.g. the ``2L − 1`` Thomas steps of one thread, or the sub-tile
        rounds of one sliding window.  Each step is assumed to expose a
        global-memory round trip unless enough warps are resident.
    threads:
        Total threads launched (parallel width available for hiding).
    threads_per_block / smem_per_block / regs_per_thread:
        Launch configuration, for the occupancy calculation.
    mlp:
        Memory-level parallelism per thread: how many independent
        outstanding loads one thread sustains.  Thomas-style kernels have
        high MLP (the next rows' addresses do not depend on the current
        values, so loads prefetch ahead of the arithmetic chain); a
        lockstep reduction that must wait for its sub-tile has ~1.
    """

    name: str = "kernel"
    eliminations: int = 0
    flops: int = 0
    traffic: MemoryTraffic = field(default_factory=MemoryTraffic)
    smem_accesses: int = 0
    smem_cycles: int = 0
    barriers: int = 0
    launches: int = 1
    dependent_steps: int = 0
    threads: int = 0
    threads_per_block: int = 1
    smem_per_block: int = 0
    regs_per_thread: int = 20
    mlp: float = 1.0

    def merge_sequential(self, other: "KernelCounters") -> None:
        """Append another kernel run executed *after* this one.

        Work and traffic add; dependent chains add (they cannot overlap
        across a launch boundary); the configuration keeps the wider
        kernel's thread count for reporting purposes.
        """
        self.eliminations += other.eliminations
        self.flops += other.flops
        self.traffic.merge(other.traffic)
        self.smem_accesses += other.smem_accesses
        self.smem_cycles += other.smem_cycles
        self.barriers += other.barriers
        self.launches += other.launches
        self.dependent_steps += other.dependent_steps
        self.threads = max(self.threads, other.threads)
