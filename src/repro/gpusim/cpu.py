"""CPU baseline cost model — the MKL / i7-975 proxy.

The paper benchmarks against Intel MKL's tridiagonal solver (``dgtsv``,
Thomas-style LU) on a 3.33 GHz Core i7 975: **sequential** for a single
system, and **multithreaded** across systems when ``M ≥ 2`` ("the out of
the box tridiagonal solver in Intel MKL does not support
multi-threading", so threading is over independent systems only —
exactly the structure the proxy models).

Two layers:

* :class:`MklProxyModel` — the analytic model used by the figure
  reproductions: time is perfectly linear in ``M·N`` (the paper: "an
  obvious relation ... which is perfectly linear") with a per-row cost,
  divided by the usable threads for the multithreaded variant, plus a
  fork/join overhead.
* the *measured* proxy in :mod:`repro.baselines.mkl_proxy`, which
  actually solves the systems (our Thomas vs ``scipy.linalg.solve_banded``)
  so that every speedup claim is also backed by a real computation.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CpuSpec", "I7_975", "MklProxyModel"]


@dataclass(frozen=True)
class CpuSpec:
    """Host CPU description for the MKL proxy model.

    ``row_ns_fp64`` / ``row_ns_fp32`` are the calibrated per-row Thomas
    costs of MKL on one core (forward + backward, ~9 flops plus loads,
    partially limited by the serial dependence chain).
    """

    name: str
    cores: int
    threads: int  # with SMT
    clock_ghz: float
    row_ns_fp64: float = 30.0
    row_ns_fp32: float = 26.0
    mt_efficiency: float = 0.70  # parallel efficiency across systems
    mt_overhead_us: float = 100.0  # fork/join + scheduling per call

    def row_ns(self, dtype_bytes: int) -> float:
        """Per-row cost for the given precision."""
        if dtype_bytes == 8:
            return self.row_ns_fp64
        if dtype_bytes == 4:
            return self.row_ns_fp32
        raise ValueError(f"dtype_bytes must be 4 or 8, got {dtype_bytes}")


#: The paper's host: Intel Core i7 975 (Nehalem, 4C/8T, 3.33 GHz).
I7_975 = CpuSpec(name="Intel i7 975", cores=4, threads=8, clock_ghz=3.33)


@dataclass(frozen=True)
class MklProxyModel:
    """Analytic MKL timing: sequential and multithreaded variants."""

    cpu: CpuSpec = I7_975

    def sequential_s(self, m: int, n: int, dtype_bytes: int = 8) -> float:
        """Sequential MKL: one core sweeps all ``M · N`` rows."""
        _check(m, n)
        return m * n * self.cpu.row_ns(dtype_bytes) * 1e-9

    def multithreaded_s(self, m: int, n: int, dtype_bytes: int = 8) -> float:
        """Multithreaded MKL: systems distributed over SMT threads.

        Threading only exists across systems (``M ≥ 2``); a single system
        falls back to the sequential path, as in the paper's setup.
        """
        _check(m, n)
        if m < 2:
            return self.sequential_s(m, n, dtype_bytes)
        usable = min(self.cpu.threads, m)
        work = m * n * self.cpu.row_ns(dtype_bytes) * 1e-9
        return work / (usable * self.cpu.mt_efficiency) + self.cpu.mt_overhead_us * 1e-6


def _check(m: int, n: int) -> None:
    if m < 1 or n < 1:
        raise ValueError(f"need M, N >= 1, got M={m}, N={n}")
