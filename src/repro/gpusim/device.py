"""Device descriptions: the resource envelope of a simulated GPU.

A :class:`DeviceSpec` captures everything the occupancy calculation and
the timing model need: SM count and limits, clock, memory bandwidth and
latency, and per-dtype arithmetic throughput.  Two ready-made specs ship:

* :data:`GTX480` — the paper's evaluation card (Fermi GF100, 15 SMs);
* :data:`TESLA_C2050` — a contemporary Fermi compute card, for
  portability experiments (the paper: "expands the portability of our
  method to virtually all GPUs").

Numbers are the published hardware figures; the handful of *model*
parameters (latency, launch overhead, achievable-bandwidth fraction)
carry their calibration in :mod:`repro.analysis.calibration`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["DeviceSpec", "GTX480", "TESLA_C2050"]


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of a CUDA-like device.

    Attributes
    ----------
    name:
        Marketing name, used in reports.
    sm_count:
        Streaming multiprocessors.
    cores_per_sm:
        Scalar ALUs per SM (CUDA cores).
    clock_ghz:
        Shader clock in GHz.
    warp_size:
        Threads per warp (32 on every NVIDIA part).
    max_threads_per_sm, max_blocks_per_sm, max_threads_per_block:
        Scheduler limits per SM / per block.
    shared_mem_per_sm:
        Bytes of shared memory per SM (48 KiB configuration on Fermi).
    max_shared_mem_per_block:
        Bytes one block may allocate.
    registers_per_sm:
        32-bit registers per SM.
    mem_bandwidth_gbs:
        Peak global-memory bandwidth, GB/s.
    mem_latency_cycles:
        Global-memory round-trip latency in shader cycles (model param).
    achievable_bw_fraction:
        Fraction of peak bandwidth a fully coalesced streaming kernel
        reaches in practice (model param, ≈ 0.65 on Fermi).
    fp32_flops_per_cycle_per_sm / fp64_flops_per_cycle_per_sm:
        Arithmetic issue width per SM; GeForce Fermi runs FP64 at 1/8 of
        FP32 rate (driver-limited), Tesla at 1/2.
    kernel_launch_overhead_us:
        Host-side cost of a kernel launch (model param).
    sync_overhead_cycles:
        Cost of one ``__syncthreads`` barrier (model param).
    """

    name: str
    sm_count: int
    cores_per_sm: int
    clock_ghz: float
    warp_size: int = 32
    max_threads_per_sm: int = 1536
    max_blocks_per_sm: int = 8
    max_threads_per_block: int = 1024
    shared_mem_per_sm: int = 48 * 1024
    max_shared_mem_per_block: int = 48 * 1024
    registers_per_sm: int = 32768
    mem_bandwidth_gbs: float = 150.0
    mem_latency_cycles: int = 600
    achievable_bw_fraction: float = 0.65
    fp32_flops_per_cycle_per_sm: int = 32
    fp64_flops_per_cycle_per_sm: int = 4
    kernel_launch_overhead_us: float = 6.0
    sync_overhead_cycles: int = 40

    def __post_init__(self) -> None:
        if self.sm_count < 1 or self.cores_per_sm < 1:
            raise ValueError("device needs at least one SM and one core")
        if not 0.0 < self.achievable_bw_fraction <= 1.0:
            raise ValueError("achievable_bw_fraction must be in (0, 1]")

    # ---- derived quantities -------------------------------------------
    @property
    def total_cores(self) -> int:
        """All scalar ALUs on the device."""
        return self.sm_count * self.cores_per_sm

    @property
    def max_resident_threads(self) -> int:
        """Hardware thread capacity — the ``P`` of Table II."""
        return self.sm_count * self.max_threads_per_sm

    @property
    def max_resident_warps_per_sm(self) -> int:
        """Warp slots per SM."""
        return self.max_threads_per_sm // self.warp_size

    def flops_per_cycle_per_sm(self, dtype_bytes: int) -> int:
        """Arithmetic issue width for 4-byte (FP32) or 8-byte (FP64) data."""
        if dtype_bytes == 4:
            return self.fp32_flops_per_cycle_per_sm
        if dtype_bytes == 8:
            return self.fp64_flops_per_cycle_per_sm
        raise ValueError(f"dtype_bytes must be 4 or 8, got {dtype_bytes}")

    def effective_bandwidth_gbs(self) -> float:
        """Peak bandwidth scaled by the achievable fraction."""
        return self.mem_bandwidth_gbs * self.achievable_bw_fraction

    def warps_to_hide_latency(self) -> float:
        """Warps per SM needed to fully hide memory latency (Little's law:
        one warp issues every ~2 cycles, so ``latency / 2`` in-flight
        warps keep the pipe full — clipped to the architectural slots)."""
        return min(self.mem_latency_cycles / 2.0 / self.warp_size * 2.0,
                   float(self.max_resident_warps_per_sm))

    def with_overrides(self, **kwargs) -> "DeviceSpec":
        """A modified copy (for what-if exploration in the examples)."""
        return replace(self, **kwargs)


#: The paper's evaluation GPU: NVIDIA GeForce GTX 480 (Fermi GF100).
GTX480 = DeviceSpec(
    name="NVIDIA GTX480",
    sm_count=15,
    cores_per_sm=32,
    clock_ghz=1.401,
    max_threads_per_sm=1536,
    max_blocks_per_sm=8,
    max_threads_per_block=1024,
    shared_mem_per_sm=48 * 1024,
    registers_per_sm=32768,
    mem_bandwidth_gbs=177.4,
    mem_latency_cycles=600,
    fp32_flops_per_cycle_per_sm=32,
    fp64_flops_per_cycle_per_sm=4,  # GeForce Fermi: FP64 at 1/8 FP32
)

#: Tesla-class Fermi (full-rate FP64), for portability experiments.
TESLA_C2050 = DeviceSpec(
    name="NVIDIA Tesla C2050",
    sm_count=14,
    cores_per_sm=32,
    clock_ghz=1.15,
    mem_bandwidth_gbs=144.0,
    fp32_flops_per_cycle_per_sm=32,
    fp64_flops_per_cycle_per_sm=16,  # 1/2 FP32 rate
)
