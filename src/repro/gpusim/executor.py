"""Functional SIMT executor: run block programs, measure what they do.

The analytic ledgers in :mod:`repro.kernels` are *closed forms*; this
module provides the instrument to check them: a small CUDA-like
execution environment in which a kernel is a Python function over a
:class:`BlockContext` that

* allocates **shared memory** explicitly (``ctx.shared``),
* performs **global loads/stores with explicit per-lane indices**
  (``ctx.load_global`` / ``ctx.store_global``) — the executor derives
  memory transactions from the *actual addresses*, warp by warp, using
  the same 128-byte segment rule as the hardware,
* synchronizes with ``ctx.barrier()``,
* computes with vectorized NumPy over the thread axis (lockstep SIMT —
  all lanes execute the same operation, which is exactly the execution
  model the paper's kernels are written for).

Blocks of a grid run sequentially (this is a measurement tool, not a
parallel runtime); the :class:`ExecutionStats` ledger accumulates
transactions, useful bytes, shared traffic and barriers across the
grid, in the same units as :class:`~repro.gpusim.counters.KernelCounters`
so the two can be compared 1:1.

:mod:`repro.kernels.exec_kernels` implements the paper's kernels on
this executor — including the literal Fig. 9/10 buffered sliding window
with its top/middle/bottom segments in one shared array.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gpusim.device import DeviceSpec, GTX480
from repro.gpusim.memory import SEGMENT_BYTES, transactions_for_warp

__all__ = ["ExecutionStats", "BlockContext", "launch"]


@dataclass
class ExecutionStats:
    """Measured ledger of one kernel launch (all blocks)."""

    load_transactions: int = 0
    store_transactions: int = 0
    load_bytes_useful: int = 0
    store_bytes_useful: int = 0
    smem_reads: int = 0
    smem_writes: int = 0
    smem_conflict_cycles: int = 0
    barriers: int = 0
    blocks: int = 0

    @property
    def bus_bytes(self) -> int:
        """Bytes the simulated bus moved."""
        return (self.load_transactions + self.store_transactions) * SEGMENT_BYTES

    @property
    def useful_bytes(self) -> int:
        """Payload bytes the kernel asked for."""
        return self.load_bytes_useful + self.store_bytes_useful

    @property
    def coalescing_efficiency(self) -> float:
        """useful / bus, 1.0 = perfectly coalesced."""
        bus = self.bus_bytes
        return self.useful_bytes / bus if bus else 1.0


class BlockContext:
    """Execution context of one thread block (lockstep SIMT over lanes).

    ``tid`` is the vector of thread indices ``0 … threads−1``; kernels
    index their data with NumPy expressions over it.
    """

    def __init__(self, block_id: int, threads: int, device: DeviceSpec,
                 stats: ExecutionStats):
        self.block_id = block_id
        self.threads = threads
        self.device = device
        self.stats = stats
        self.tid = np.arange(threads)
        self._smem_allocated = 0

    # ---- shared memory -------------------------------------------------
    def shared(self, shape, dtype=np.float64) -> np.ndarray:
        """Allocate a shared-memory array (counted against the device cap)."""
        arr = np.zeros(shape, dtype=dtype)
        self._smem_allocated += arr.nbytes
        if self._smem_allocated > self.device.max_shared_mem_per_block:
            raise MemoryError(
                f"block requested {self._smem_allocated} B shared memory "
                f"(> {self.device.max_shared_mem_per_block} B)"
            )
        return arr

    def smem_read(self, count: int = 1) -> None:
        """Record ``count`` per-thread shared reads (one warp access each)."""
        self.stats.smem_reads += count

    def smem_write(self, count: int = 1) -> None:
        """Record ``count`` per-thread shared writes."""
        self.stats.smem_writes += count

    def smem_access_measured(self, word_addrs, write: bool = False) -> None:
        """Record a warp shared access with *measured* bank conflicts.

        ``word_addrs`` is one 32-bit-word address per active lane; the
        serialized cycle count of each warp is the maximum number of
        lanes hitting the same bank (distinct words in one bank
        serialize; identical words broadcast).
        """
        addrs = np.asarray(word_addrs, dtype=np.int64)
        ws = self.device.warp_size
        cycles = 0
        for w0 in range(0, addrs.shape[0], ws):
            lane = addrs[w0 : w0 + ws]
            banks = lane % ws
            degree = 1
            for bank in np.unique(banks):
                words = np.unique(lane[banks == bank])
                degree = max(degree, len(words))
            cycles += degree
            if write:
                self.stats.smem_writes += 1
            else:
                self.stats.smem_reads += 1
        self.stats.smem_conflict_cycles += cycles

    # ---- global memory ---------------------------------------------------
    def load_global(self, array: np.ndarray, idx, mask=None) -> np.ndarray:
        """Gather ``array.flat[idx]`` per lane, counting real transactions.

        ``idx`` is one flat index per active lane; ``mask`` deactivates
        lanes (their result is 0).  Transactions are derived from the
        byte addresses, warp by warp — exactly the hardware rule, so a
        strided gather *measures* uncoalesced.
        """
        idx = np.asarray(idx, dtype=np.int64)
        if mask is None:
            mask = np.ones(idx.shape, dtype=bool)
        else:
            mask = np.asarray(mask, dtype=bool)
        flat = array.reshape(-1)
        out = np.zeros(idx.shape, dtype=array.dtype)
        act = np.where(mask)[0]
        if act.size:
            out[act] = flat[idx[act]]
        self._count(idx, mask, array.dtype.itemsize, load=True)
        return out

    def store_global(self, array: np.ndarray, idx, values, mask=None) -> None:
        """Scatter ``values`` to ``array.flat[idx]``, counting transactions."""
        idx = np.asarray(idx, dtype=np.int64)
        values = np.asarray(values)
        if mask is None:
            mask = np.ones(idx.shape, dtype=bool)
        else:
            mask = np.asarray(mask, dtype=bool)
        flat = array.reshape(-1)
        act = np.where(mask)[0]
        if act.size:
            flat[idx[act]] = values[act]
        self._count(idx, mask, array.dtype.itemsize, load=False)

    def _count(self, idx, mask, itemsize, load: bool) -> None:
        ws = self.device.warp_size
        n = idx.shape[0]
        tx = 0
        active = 0
        for w0 in range(0, n, ws):
            lane_idx = idx[w0 : w0 + ws]
            lane_mask = mask[w0 : w0 + ws]
            addrs = lane_idx[lane_mask] * itemsize
            if addrs.size == 0:
                continue
            tx += transactions_for_warp(addrs)
            active += int(lane_mask.sum())
        if load:
            self.stats.load_transactions += tx
            self.stats.load_bytes_useful += active * itemsize
        else:
            self.stats.store_transactions += tx
            self.stats.store_bytes_useful += active * itemsize

    # ---- synchronization ----------------------------------------------------
    def barrier(self) -> None:
        """``__syncthreads`` — a pure counter in lockstep execution."""
        self.stats.barriers += 1


def launch(kernel, grid: int, threads: int, args: tuple,
           device: DeviceSpec = GTX480) -> ExecutionStats:
    """Run ``kernel(ctx, *args)`` for every block of the grid.

    Returns the accumulated :class:`ExecutionStats`.  ``kernel`` must be
    a function of a :class:`BlockContext` followed by ``args``.
    """
    if grid < 1 or threads < 1:
        raise ValueError(f"need grid, threads >= 1, got {grid}, {threads}")
    if threads > device.max_threads_per_block:
        raise ValueError(
            f"{threads} threads per block exceeds device limit "
            f"{device.max_threads_per_block}"
        )
    stats = ExecutionStats()
    for block_id in range(grid):
        ctx = BlockContext(block_id, threads, device, stats)
        kernel(ctx, *args)
        stats.blocks += 1
    return stats
