"""Kernel launch abstraction: grid/block bookkeeping.

A :class:`LaunchConfig` pins down the execution shape of one simulated
kernel — grid size, block size, shared memory, registers — and derives
the standard quantities (warps per block, total threads, blocks) that
the counter builders in :mod:`repro.kernels` and the occupancy/timing
models consume.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.device import DeviceSpec
from repro.gpusim.occupancy import Occupancy, occupancy

__all__ = ["LaunchConfig"]


@dataclass(frozen=True)
class LaunchConfig:
    """Execution configuration of one kernel launch."""

    grid: int
    block: int
    smem_per_block: int = 0
    regs_per_thread: int = 20

    def __post_init__(self) -> None:
        if self.grid < 1:
            raise ValueError(f"grid must be >= 1, got {self.grid}")
        if self.block < 1:
            raise ValueError(f"block must be >= 1, got {self.block}")

    @property
    def threads(self) -> int:
        """Total threads across the grid."""
        return self.grid * self.block

    def warps_per_block(self, warp_size: int = 32) -> int:
        """Scheduler warp slots one block occupies."""
        return -(-self.block // warp_size)

    def occupancy_on(self, device: DeviceSpec) -> Occupancy:
        """Occupancy this configuration achieves on ``device``."""
        return occupancy(device, self.block, self.smem_per_block, self.regs_per_thread)

    def concurrent_blocks(self, device: DeviceSpec) -> int:
        """Blocks actually resident at once (grid- and occupancy-capped)."""
        occ = self.occupancy_on(device)
        return min(self.grid, max(1, occ.blocks_per_sm) * device.sm_count)

    def waves(self, device: DeviceSpec) -> int:
        """Sequential waves needed to run the whole grid."""
        return -(-self.grid // self.concurrent_blocks(device))
