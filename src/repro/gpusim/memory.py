"""Global-memory coalescing model.

On Fermi, a warp's 32 accesses are serviced in 128-byte cache-line
transactions: the hardware takes the set of distinct 128-byte segments
the warp touches and issues one transaction per segment.  Consecutive
(stride-1) accesses of 4-byte words need 1 transaction; stride-2 needs 2;
a stride of ≥ 32 words degenerates to 32 transactions — a 32× waste of
bandwidth.  This is the entire quantitative content of "coalescing", and
it is why the paper cares that PCR's interleaved output lets p-Thomas
threads walk *consecutive* addresses (Section III-B).

:func:`transactions_for_warp` implements the exact segment-counting rule
for an arbitrary address pattern; :func:`warp_transactions_strided` is
the closed form for constant strides that kernels use in bulk.
:class:`MemoryTraffic` is the ledger kernels fill for the timing model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "SEGMENT_BYTES",
    "MemoryTraffic",
    "transactions_for_warp",
    "warp_transactions_strided",
]

#: Fermi L1 cache-line / memory-transaction granularity.
SEGMENT_BYTES = 128


def transactions_for_warp(addresses_bytes, segment_bytes: int = SEGMENT_BYTES) -> int:
    """Transactions one warp access generates for explicit byte addresses.

    Parameters
    ----------
    addresses_bytes:
        Byte address each active lane touches (inactive lanes omitted).
    segment_bytes:
        Transaction granularity (128 B on Fermi).

    Returns
    -------
    int
        Number of distinct ``segment_bytes``-aligned segments.
    """
    addr = np.asarray(addresses_bytes, dtype=np.int64)
    if addr.size == 0:
        return 0
    if np.any(addr < 0):
        raise ValueError("negative byte address")
    return int(np.unique(addr // segment_bytes).size)


def warp_transactions_strided(
    warp_size: int,
    stride_elems: int,
    elem_bytes: int,
    base_offset_bytes: int = 0,
    active_lanes: int | None = None,
    segment_bytes: int = SEGMENT_BYTES,
) -> int:
    """Transactions for a warp accessing ``base + lane·stride`` elements.

    The common analytical case: lane ``l`` reads element
    ``base_offset + l·stride``.  Fully coalesced float32 (stride 1) →
    1 transaction; float64 stride 1 → 2; stride ``≥ segment/elem`` → one
    transaction per lane.
    """
    if active_lanes is None:
        active_lanes = warp_size
    if active_lanes == 0:
        return 0
    lanes = np.arange(active_lanes, dtype=np.int64)
    addr = base_offset_bytes + lanes * stride_elems * elem_bytes
    return transactions_for_warp(addr, segment_bytes)


@dataclass
class MemoryTraffic:
    """Bytes and transactions a kernel exchanged with global memory.

    ``useful_bytes`` counts the payload the algorithm needed;
    ``transaction_bytes = transactions × 128`` is what the bus actually
    moved.  Their ratio is the coalescing efficiency the timing model
    divides bandwidth by.
    """

    load_bytes: int = 0
    store_bytes: int = 0
    load_transactions: int = 0
    store_transactions: int = 0

    def add_load(self, useful_bytes: int, transactions: int) -> None:
        """Record a load: payload bytes plus bus transactions."""
        self.load_bytes += useful_bytes
        self.load_transactions += transactions

    def add_store(self, useful_bytes: int, transactions: int) -> None:
        """Record a store."""
        self.store_bytes += useful_bytes
        self.store_transactions += transactions

    def merge(self, other: "MemoryTraffic") -> None:
        """Accumulate another ledger."""
        self.load_bytes += other.load_bytes
        self.store_bytes += other.store_bytes
        self.load_transactions += other.load_transactions
        self.store_transactions += other.store_transactions

    @property
    def useful_bytes(self) -> int:
        """Payload bytes moved (loads + stores)."""
        return self.load_bytes + self.store_bytes

    @property
    def bus_bytes(self) -> int:
        """Bytes the memory bus actually transferred."""
        return (self.load_transactions + self.store_transactions) * SEGMENT_BYTES

    @property
    def coalescing_efficiency(self) -> float:
        """useful / bus bytes, in (0, 1]; 1.0 = perfectly coalesced."""
        bus = self.bus_bytes
        return self.useful_bytes / bus if bus else 1.0
