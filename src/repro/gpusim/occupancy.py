"""CUDA occupancy calculation.

Occupancy — resident warps per SM relative to the architectural maximum
— determines how much latency the scheduler can hide.  A block's
footprint in threads, shared memory and registers each imposes a limit
on blocks-per-SM; the binding constraint wins.  This is the standard
"CUDA occupancy calculator" logic, needed here because the paper's
central engineering argument is occupancy-based: fine-grained tiles with
a small shared-memory footprint keep more blocks resident per SM than
the coarse-grained tiling of Zhang/Davidson, hence better latency
hiding (Section III-A, "advantages").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.device import DeviceSpec

__all__ = ["Occupancy", "occupancy"]


@dataclass(frozen=True)
class Occupancy:
    """Result of the occupancy calculation for one kernel configuration."""

    blocks_per_sm: int
    warps_per_sm: int
    occupancy: float  # resident warps / max warps, in [0, 1]
    limited_by: str  # "threads" | "blocks" | "smem" | "registers"

    @property
    def threads_per_sm(self) -> int:
        """Resident threads per SM implied by the block count."""
        # warps_per_sm already accounts for block granularity
        return self.warps_per_sm * 32


def occupancy(
    device: DeviceSpec,
    threads_per_block: int,
    smem_per_block: int = 0,
    regs_per_thread: int = 20,
) -> Occupancy:
    """Compute resident blocks/warps per SM for a kernel configuration.

    Parameters
    ----------
    device:
        Target device limits.
    threads_per_block:
        Launch configuration block size (1 … ``max_threads_per_block``).
    smem_per_block:
        Bytes of shared memory the block allocates.
    regs_per_thread:
        Registers per thread (compiler-reported; default a typical 20).

    Returns
    -------
    Occupancy
        Blocks and warps per SM plus the binding limit.

    Raises
    ------
    ValueError
        If the configuration cannot launch at all (block too large,
        shared memory over the per-block limit, …).
    """
    if threads_per_block < 1:
        raise ValueError(f"threads_per_block must be >= 1, got {threads_per_block}")
    if threads_per_block > device.max_threads_per_block:
        raise ValueError(
            f"block of {threads_per_block} threads exceeds device limit "
            f"{device.max_threads_per_block}"
        )
    if smem_per_block > device.max_shared_mem_per_block:
        raise ValueError(
            f"block needs {smem_per_block} B shared memory, device allows "
            f"{device.max_shared_mem_per_block} B per block"
        )
    if regs_per_thread < 1:
        raise ValueError(f"regs_per_thread must be >= 1, got {regs_per_thread}")

    warps_per_block = -(-threads_per_block // device.warp_size)

    by_threads = device.max_threads_per_sm // (warps_per_block * device.warp_size)
    by_blocks = device.max_blocks_per_sm
    by_smem = (
        device.shared_mem_per_sm // smem_per_block
        if smem_per_block > 0
        else device.max_blocks_per_sm
    )
    regs_per_block = regs_per_thread * warps_per_block * device.warp_size
    by_regs = device.registers_per_sm // regs_per_block

    limits = {
        "threads": by_threads,
        "blocks": by_blocks,
        "smem": by_smem,
        "registers": by_regs,
    }
    limited_by = min(limits, key=limits.get)
    blocks = max(0, limits[limited_by])
    warps = blocks * warps_per_block
    max_warps = device.max_resident_warps_per_sm
    return Occupancy(
        blocks_per_sm=blocks,
        warps_per_sm=warps,
        occupancy=warps / max_warps if max_warps else 0.0,
        limited_by=limited_by,
    )
