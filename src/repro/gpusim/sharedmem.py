"""Shared-memory bank-conflict model.

Fermi shared memory has 32 banks, 4 bytes wide, cycling every 32 words.
A warp access where ``D`` lanes hit the same bank (at different words)
serializes into ``D`` passes — the *conflict degree*.  For the constant
strides used by structured kernels the degree has a closed form:
``gcd(stride, 32)`` distinct lanes collide per bank (a stride sharing a
power of two with the bank count is the classic failure mode — e.g. the
naive CR layout with stride-2^l accesses, the problem Göddeke &
Strzodka's conflict-free CR reorders away and that our CR kernel models
in both variants).

64-bit accesses occupy two banks per lane; on Fermi they are serviced as
two 32-bit phases, handled by the ``elem_words`` parameter.
"""

from __future__ import annotations

from math import gcd

__all__ = ["N_BANKS", "bank_conflict_degree", "smem_access_cycles"]

#: Banks on Fermi-class shared memory.
N_BANKS = 32


def bank_conflict_degree(stride_words: int, n_banks: int = N_BANKS) -> int:
    """Conflict degree of a warp accessing ``lane · stride`` words.

    ``stride 0`` is a broadcast (degree 1).  Otherwise lanes
    ``0 … n_banks−1`` touch bank ``lane·stride mod n_banks``; each bank
    that is touched is touched by exactly ``gcd(stride, n_banks)`` lanes.
    """
    if stride_words < 0:
        raise ValueError(f"stride must be >= 0, got {stride_words}")
    if stride_words == 0:
        return 1  # broadcast
    return gcd(stride_words, n_banks)


def smem_access_cycles(
    stride_words: int, elem_words: int = 1, n_banks: int = N_BANKS
) -> int:
    """Cycles one warp shared-memory access takes, given its stride.

    ``elem_words = 2`` models 64-bit (double) elements: two 32-bit
    phases, each with the conflict degree of the doubled word stride.
    """
    if elem_words not in (1, 2):
        raise ValueError(f"elem_words must be 1 or 2, got {elem_words}")
    degree = bank_conflict_degree(stride_words * elem_words, n_banks)
    return elem_words * degree
