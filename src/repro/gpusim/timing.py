"""Analytic GPU timing model.

Converts a :class:`~repro.gpusim.counters.KernelCounters` ledger into
seconds on a :class:`~repro.gpusim.device.DeviceSpec`.  The model prices
the four resources a GPU kernel can be bound by, then takes the max
(they overlap on real hardware):

* **compute** — FLOPs against the device's issue width, derated when too
  few threads are resident to fill the arithmetic pipelines;
* **memory** — *bus* bytes (coalescing-adjusted) against achievable
  bandwidth, derated by Little's law when the resident warps cannot keep
  enough transactions in flight;
* **latency** — the kernel's longest dependent chain exposes one memory
  round-trip per step, scaled by how much of the latency the resident
  warps per SM can hide.  This term creates the flat low-``M`` region of
  Fig. 12: p-Thomas with few systems has few warps, so its ``2L − 1``
  chain is latency-bound and nearly independent of ``M``;
* **shared memory** — conflict-adjusted cycles.

Barrier and kernel-launch overheads add on top (they serialize).

The model is deliberately simple — a handful of published hardware
numbers plus four calibration constants — because its job is to
reproduce the *shape* of the paper's figures from counted work, not to
be a cycle simulator.  Calibration notes live in
:mod:`repro.analysis.calibration`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.counters import KernelCounters
from repro.gpusim.device import DeviceSpec
from repro.gpusim.occupancy import occupancy

__all__ = ["StageTime", "GpuTimingModel"]


@dataclass(frozen=True)
class StageTime:
    """Priced execution of one kernel (sequence)."""

    compute_s: float
    memory_s: float
    latency_s: float
    smem_s: float
    sync_s: float
    launch_s: float

    @property
    def total_s(self) -> float:
        """Wall-clock estimate: overlapping resources max, overheads add."""
        return (
            max(self.compute_s, self.memory_s, self.latency_s, self.smem_s)
            + self.sync_s
            + self.launch_s
        )

    @property
    def bound(self) -> str:
        """Which overlapping resource dominates."""
        resources = {
            "compute": self.compute_s,
            "memory": self.memory_s,
            "latency": self.latency_s,
            "smem": self.smem_s,
        }
        return max(resources, key=resources.get)


@dataclass(frozen=True)
class GpuTimingModel:
    """Prices kernel ledgers on a device.

    Parameters
    ----------
    device:
        Hardware description.
    flops_per_elim:
        FLOPs per tridiagonal row reduction (a PCR row update is
        4 mul + 4 FMA + 2 div ≈ 12; Thomas steps are slightly cheaper —
        one constant serves both, absorbed by calibration).
    compute_sat_threads_per_core:
        Threads per scalar core needed to fill arithmetic pipelines.
    bytes_in_flight_per_warp:
        Outstanding memory bytes one warp sustains (2 × 128 B segments).
    min_parallel_efficiency:
        Floor on derating factors (keeps the model finite for 1-thread
        corner cases).
    """

    device: DeviceSpec
    flops_per_elim: float = 12.0
    compute_sat_threads_per_core: float = 6.0
    bytes_in_flight_per_warp: float = 256.0
    min_parallel_efficiency: float = 1e-3

    # ------------------------------------------------------------------
    def resident_warps(self, counters: KernelCounters) -> tuple:
        """(total resident warps, warps per SM) for a kernel's config."""
        dev = self.device
        occ = occupancy(
            dev,
            counters.threads_per_block,
            counters.smem_per_block,
            counters.regs_per_thread,
        )
        warps_per_block = -(-counters.threads_per_block // dev.warp_size)
        blocks_total = max(1, -(-counters.threads // counters.threads_per_block))
        blocks_resident = min(blocks_total, max(1, occ.blocks_per_sm) * dev.sm_count)
        warps_total = blocks_resident * warps_per_block
        # Partially filled warps still occupy a scheduler slot.
        warps_per_sm = warps_total / dev.sm_count
        return warps_total, warps_per_sm

    def time(self, counters: KernelCounters, dtype_bytes: int) -> StageTime:
        """Price one kernel ledger (see module docstring for the model)."""
        dev = self.device
        clock_hz = dev.clock_ghz * 1e9
        warps_total, warps_per_sm = self.resident_warps(counters)
        threads_active = min(
            counters.threads, warps_total * dev.warp_size
        ) or dev.warp_size

        # -- compute ----------------------------------------------------
        flops = counters.flops or counters.eliminations * self.flops_per_elim
        peak_flops = dev.sm_count * dev.flops_per_cycle_per_sm(dtype_bytes) * clock_hz
        sat_threads = dev.total_cores * self.compute_sat_threads_per_core
        util_c = max(
            self.min_parallel_efficiency, min(1.0, threads_active / sat_threads)
        )
        compute_s = flops / (peak_flops * util_c) if flops else 0.0

        # -- memory (bandwidth) ------------------------------------------
        bus_bytes = counters.traffic.bus_bytes
        bw = dev.effective_bandwidth_gbs() * 1e9
        latency_s_one = dev.mem_latency_cycles / clock_hz
        # Blocks narrower than a warp leave lanes idle: a 2^k-thread
        # block with k < 5 fills only 2^k of 32 lanes, cutting the
        # per-warp outstanding bytes proportionally.  This is the
        # concrete cost behind the paper's warning that kernel fusion
        # "binds the number of parallel threads ... to the lower number
        # of the two kernels".
        lane_fill = min(1.0, counters.threads_per_block / dev.warp_size)
        in_flight_per_warp = (
            self.bytes_in_flight_per_warp * max(1.0, counters.mlp) * lane_fill
        )
        warps_for_bw = max(1.0, bw * latency_s_one / in_flight_per_warp)
        util_m = max(
            self.min_parallel_efficiency, min(1.0, warps_total / warps_for_bw)
        )
        memory_s = bus_bytes / (bw * util_m) if bus_bytes else 0.0

        # -- latency (dependent chain) ------------------------------------
        warps_hide = dev.warps_to_hide_latency()
        exposed = max(0.0, 1.0 - warps_per_sm / warps_hide)
        latency_s = counters.dependent_steps * latency_s_one * exposed

        # -- shared memory -------------------------------------------------
        smem_s = (
            counters.smem_cycles / (dev.sm_count * clock_hz)
            if counters.smem_cycles
            else 0.0
        )

        # -- overheads ------------------------------------------------------
        blocks_total = max(1, -(-counters.threads // counters.threads_per_block))
        occ = occupancy(
            dev,
            counters.threads_per_block,
            counters.smem_per_block,
            counters.regs_per_thread,
        )
        concurrent_blocks = min(
            blocks_total, max(1, occ.blocks_per_sm) * dev.sm_count
        )
        # Barrier latency grows with block width (more warps to corral) —
        # the paper's point against coarse-grained tiling: "a significant
        # cost of synchronization ... from a large number of threads in a
        # thread block".
        warps_per_block = -(-counters.threads_per_block // dev.warp_size)
        sync_s = (
            counters.barriers
            / concurrent_blocks
            * dev.sync_overhead_cycles
            * warps_per_block
            / clock_hz
        )
        launch_s = counters.launches * dev.kernel_launch_overhead_us * 1e-6

        return StageTime(
            compute_s=compute_s,
            memory_s=memory_s,
            latency_s=latency_s,
            smem_s=smem_s,
            sync_s=sync_s,
            launch_s=launch_s,
        )
