"""Simulated-GPU kernels: work/traffic ledgers for every solver stage.

Each module builds the :class:`~repro.gpusim.counters.KernelCounters`
ledger a real CUDA kernel of that stage would generate — eliminations,
coalescing-adjusted global traffic, shared-memory cycles, barriers,
dependent-chain lengths, launch configuration — which the timing model
(:mod:`repro.gpusim.timing`) prices in seconds.  The numerics themselves
live in :mod:`repro.core`; :mod:`repro.kernels.hybrid_gpu` glues both
together into the end-to-end simulated solver used by the figure
benchmarks.

Modules
-------
``pthomas_kernel``    p-Thomas back-end (coalescing analysis of III-B)
``tiled_pcr_kernel``  buffered-sliding-window front-end (III-A)
``fused_kernel``      fused PCR + p-Thomas forward reduction (III-C)
``pcr_kernel``        whole-system-in-shared-memory PCR
``cr_kernel``         CR, bank-conflicted and conflict-free variants
``rhs_kernel``        RHS-only sweeps of a prepared (factored) solve
``hybrid_gpu``        the full simulated GPU solver (numbers + time)
"""

from repro.kernels.pthomas_kernel import pthomas_counters
from repro.kernels.tiled_pcr_kernel import tiled_pcr_counters
from repro.kernels.fused_kernel import fused_hybrid_counters
from repro.kernels.pcr_kernel import inshared_pcr_counters
from repro.kernels.cr_kernel import cr_counters
from repro.kernels.rhs_kernel import (
    rhs_kernel_footprint,
    rhs_level_counters,
    rhs_only_counters,
    rhs_pthomas_counters,
)
from repro.kernels.hybrid_gpu import GpuHybridSolver, GpuSolveReport

__all__ = [
    "pthomas_counters",
    "tiled_pcr_counters",
    "fused_hybrid_counters",
    "inshared_pcr_counters",
    "cr_counters",
    "rhs_kernel_footprint",
    "rhs_level_counters",
    "rhs_only_counters",
    "rhs_pthomas_counters",
    "GpuHybridSolver",
    "GpuSolveReport",
]
