"""Banded kernel ledgers — pricing penta and block-Thomas sweeps.

The descriptor-carrying spine (:class:`~repro.backends.request
.SystemDescriptor`) dispatches pentadiagonal and block-tridiagonal
batches through the same backends as tridiagonal ones, so the gpusim
backend needs ledgers for their kernels too.  Both sweeps keep the
interleaved-batch shape the paper's Thomas kernel uses — one thread
per system, stride-1 coalesced row steps, a ``2N − 1``-step dependent
chain — they just move more values (five diagonals) or heavier row
operations (``B × B`` pivot solves and block mat-vecs) per step.

Two kernels each, matching the engine's stage split:

* **cold** — fused factor + sweep: eliminate the coefficients and
  stream the RHS in one launch (what an unprepared solve costs);
* **RHS-only** — the prepared path: stored factors stream in, only the
  right-hand side is swept.

The ledgers speak the same vocabulary
(:class:`~repro.gpusim.counters.KernelCounters` →
:class:`~repro.gpusim.timing.GpuTimingModel`) as the tridiagonal stage
ledgers, so banded traces carry predicted device times side by side
with measured NumPy times exactly like every other solve.
"""

from __future__ import annotations

from repro.gpusim.counters import KernelCounters
from repro.gpusim.device import DeviceSpec, GTX480
from repro.gpusim.memory import MemoryTraffic
from repro.kernels.rhs_kernel import _warp_tx, rhs_kernel_footprint

__all__ = [
    "banded_counters",
    "block_sweep_counters",
    "penta_sweep_counters",
]


def penta_sweep_counters(
    m: int,
    n: int,
    dtype_bytes: int,
    device: DeviceSpec = GTX480,
    threads_per_block: int = 128,
    prepared: bool = False,
) -> KernelCounters:
    """Ledger for the batched pentadiagonal LU sweep (one thread/system).

    Cold: load the five diagonals plus ``d`` per row, spill the three
    factor streams needed out of order by the backward pass (``γ``,
    ``δ``, ``z``) and re-read them, store ``x``.  Prepared: the stored
    ``e``/``β``/``α`` stream in instead of being computed, eliminating
    the coefficient loads and the factor spills.
    """
    if m < 1 or n < 1:
        raise ValueError(f"need m, n >= 1, got ({m}, {n})")
    if dtype_bytes not in (4, 8):
        raise ValueError(f"dtype_bytes must be 4 or 8, got {dtype_bytes}")

    tpb = min(threads_per_block, max(device.warp_size, m))
    tx_per_row = _warp_tx(device, m, 1, dtype_bytes)

    def bulk(values_per_row: int) -> tuple:
        useful = values_per_row * n * m * dtype_bytes
        return useful, values_per_row * n * tx_per_row

    traffic = MemoryTraffic()
    if prepared:
        # forward: read e, stored beta, stored alpha, d; write z
        traffic.add_load(*bulk(4))
        traffic.add_store(*bulk(1))
        # backward: read stored gamma, delta and z; write x
        traffic.add_load(*bulk(3))
        traffic.add_store(*bulk(1))
        # live: e, beta, alpha, gamma, delta + two rolling z/x values
        regs, smem = rhs_kernel_footprint(7, dtype_bytes)
        # ~9 flops/row: two fused multiply-subtracts each pass + divide
        flops = 9 * m * n
        name = "penta LU (RHS-only)"
    else:
        # forward: read e, a, b, c, f, d; spill gamma, delta, z
        traffic.add_load(*bulk(6))
        traffic.add_store(*bulk(3))
        # backward: re-read gamma, delta, z; write x
        traffic.add_load(*bulk(3))
        traffic.add_store(*bulk(1))
        # live: five coefficient streams, d, beta/alpha/gamma/delta and
        # the two-deep z/x recurrence window
        regs, smem = rhs_kernel_footprint(12, dtype_bytes)
        # ~19 flops/row: the factor recurrences (β, α, γ, δ) plus the
        # forward and backward substitution steps
        flops = 19 * m * n
        name = "penta LU (factor+sweep)"
    return KernelCounters(
        name=name,
        eliminations=m * (2 * n - 1),
        flops=flops,
        traffic=traffic,
        launches=1,
        dependent_steps=2 * n - 1,
        threads=m,
        threads_per_block=tpb,
        smem_per_block=smem,
        regs_per_thread=regs,
        mlp=4.0,
    )


def block_sweep_counters(
    m: int,
    n: int,
    block_size: int,
    dtype_bytes: int,
    device: DeviceSpec = GTX480,
    threads_per_block: int = 128,
    prepared: bool = False,
) -> KernelCounters:
    """Ledger for the block-Thomas sweep (``B`` lanes per system).

    Each row step is a small dense problem: cold pays the pivot
    formation (``B_i − A_i C'_{i−1}``, one ``B³`` mat-mat), its LU, and
    the ``C'`` triangular solves; prepared streams the stored ``A`` /
    ``C'`` / pivot blocks and pays only the per-row pivot re-solve and
    two block mat-vecs.  Lanes within one system cooperate on the block
    ops, so the launch is ``M·B`` threads wide.
    """
    if m < 1 or n < 1:
        raise ValueError(f"need m, n >= 1, got ({m}, {n})")
    if block_size < 1:
        raise ValueError(f"need block_size >= 1, got {block_size}")
    if dtype_bytes not in (4, 8):
        raise ValueError(f"dtype_bytes must be 4 or 8, got {dtype_bytes}")

    bs = block_size
    lanes = m * bs
    tpb = min(threads_per_block, max(device.warp_size, lanes))
    tx_per_val = _warp_tx(device, lanes, 1, dtype_bytes)

    def bulk(values_per_lane_row: int) -> tuple:
        useful = values_per_lane_row * n * lanes * dtype_bytes
        return useful, values_per_lane_row * n * tx_per_val

    traffic = MemoryTraffic()
    if prepared:
        # forward: read A and pivot blocks (bs values per lane each),
        # d; write z.  backward: read C', z; write x.
        traffic.add_load(*bulk(2 * bs + 1))
        traffic.add_store(*bulk(1))
        traffic.add_load(*bulk(bs + 1))
        traffic.add_store(*bulk(1))
        # per row: pivot re-solve (2/3·B³ + 2B²) + two block mat-vecs
        flops = m * n * (2 * bs**3 // 3 + 6 * bs * bs)
        name = f"block{bs} Thomas (RHS-only)"
    else:
        # forward: read A, B, C blocks and d; write C', pivot, z.
        # backward: re-read C', z; write x.
        traffic.add_load(*bulk(3 * bs + 1))
        traffic.add_store(*bulk(2 * bs + 1))
        traffic.add_load(*bulk(bs + 1))
        traffic.add_store(*bulk(1))
        # per row: pivot formation mat-mat (2B³), LU (2/3·B³), C'
        # triangular solves (2B³), plus the RHS sweep's mat-vecs
        flops = m * n * (14 * bs**3 // 3 + 6 * bs * bs)
        name = f"block{bs} Thomas (factor+sweep)"
    # live per lane: one A/B/C block row, the rolling C'/pivot row and
    # the two-deep z/x window (block rows stream through registers)
    regs, smem = rhs_kernel_footprint(min(3 * bs + 4, 24), dtype_bytes)
    return KernelCounters(
        name=name,
        eliminations=m * (2 * n - 1) * bs,
        flops=flops,
        traffic=traffic,
        launches=1,
        dependent_steps=2 * n - 1,
        threads=lanes,
        threads_per_block=tpb,
        smem_per_block=smem,
        regs_per_thread=regs,
        mlp=float(min(4 * bs, 16)),
    )


def banded_counters(
    kind: str,
    m: int,
    n: int,
    dtype_bytes: int,
    *,
    block_size: int = 1,
    prepared: bool = False,
    device: DeviceSpec = GTX480,
) -> list:
    """Stage ledgers for one banded solve, by descriptor kind."""
    if kind == "pentadiagonal":
        return [
            penta_sweep_counters(
                m, n, dtype_bytes, device=device, prepared=prepared
            )
        ]
    if kind == "block":
        return [
            block_sweep_counters(
                m, n, block_size, dtype_bytes,
                device=device, prepared=prepared,
            )
        ]
    raise ValueError(f"no banded ledger for system kind {kind!r}")
