"""Distributed-solve ledgers — slab kernels plus inter-rank traffic.

The distributed backend (:mod:`repro.distributed`) splits one batch of
``N``-row systems into ``P`` contiguous row slabs, eliminates each slab
independently with the two-sweep modified Thomas algorithm, solves the
``2P``-row reduced interface system on rank 0, and back-substitutes the
interiors.  This module prices that pipeline in the device-model
vocabulary so a :class:`~repro.backends.trace.SolveTrace` can carry
predicted device/link times next to the measured host times:

* **slab kernels** (:func:`slab_eliminate_counters`,
  :func:`slab_backsub_counters`, :func:`reduced_solve_counters`) are
  :class:`~repro.gpusim.counters.KernelCounters` ledgers, priced by the
  usual :class:`~repro.gpusim.timing.GpuTimingModel`.  Per slab row the
  modified-Thomas forward sweep moves 7 values (load ``a, b, c, d``,
  store ``ar, cr, dr``), the backward sweep 6 (rewrite the three stored
  streams), and the final back-substitution 4 (read the three streams,
  write ``x``) — 17 values/row against the 9 of a single-device Thomas
  sweep.  The ~1.9× traffic premium is paid *per rank over 1/P of the
  rows*, so per-device traffic is ``17·N/P`` values: already below the
  baseline's ``9·N`` at ``P = 2`` and shrinking with ``P``.
* **link transfers** (:class:`CommCounters` over a :class:`LinkSpec`)
  price what moves between ranks: the reduced-system gather ships six
  ``M``-vectors per non-root rank, the boundary scatter two — both
  ``O(M)``, *independent of N*.  A crossover system size therefore
  exists: beyond it the per-rank row savings outgrow the constant
  interface exchange (``benchmarks/bench_distributed.py`` locates it).

:func:`distributed_plan` assembles the full stage list — parallel ranks
contribute their slowest member, transfers serialize on the link — with
names matching the distributed backend's measured stages so the gpusim
route can pair them positionally.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpusim.counters import KernelCounters
from repro.gpusim.device import DeviceSpec, GTX480
from repro.gpusim.memory import MemoryTraffic, warp_transactions_strided
from repro.gpusim.timing import GpuTimingModel

__all__ = [
    "PCIE_LINK",
    "CommCounters",
    "LinkSpec",
    "distributed_plan",
    "reduced_solve_counters",
    "slab_backsub_counters",
    "slab_eliminate_counters",
    "slab_rows_for",
]


@dataclass(frozen=True)
class LinkSpec:
    """An inter-rank interconnect priced as latency + bandwidth.

    The α–β model: each message pays a fixed per-message latency
    (``alpha``), payload streams at the link's sustained bandwidth
    (``beta`` = 1/bandwidth).  Good enough to rank transfer stages and
    locate crossovers; not a congestion model.
    """

    name: str = "pcie3"
    bandwidth_gbs: float = 12.0
    latency_us: float = 5.0

    def time_us(self, payload_bytes: int, messages: int = 1) -> float:
        """Transfer time of ``payload_bytes`` split over ``messages``."""
        if payload_bytes < 0 or messages < 0:
            raise ValueError(
                f"need payload_bytes, messages >= 0, got "
                f"{payload_bytes}, {messages}"
            )
        stream_us = payload_bytes / (self.bandwidth_gbs * 1e3)
        return messages * self.latency_us + stream_us


#: default interconnect: PCIe-3-x16-class sustained bandwidth with a
#: small-message latency floor (pinned-memory DMA setup)
PCIE_LINK = LinkSpec()


@dataclass
class CommCounters:
    """What one transfer stage moves between ranks.

    The link-side sibling of :class:`~repro.gpusim.counters
    .KernelCounters`: a named ledger of messages and payload bytes,
    priced by :meth:`time_us` against a :class:`LinkSpec`.
    """

    name: str = "transfer"
    messages: int = 0
    payload_bytes: int = 0
    notes: dict = field(default_factory=dict)

    def add(self, payload_bytes: int, messages: int = 1) -> None:
        self.messages += messages
        self.payload_bytes += payload_bytes

    def time_us(self, link: LinkSpec = PCIE_LINK) -> float:
        return link.time_us(self.payload_bytes, self.messages)


def slab_rows_for(n: int, ranks: int) -> int:
    """Rows of the largest slab when ``n`` splits over ``ranks``.

    Mirrors :func:`repro.distributed.partition.slab_bounds` (near-equal
    contiguous split): the critical-path rank owns ``ceil(n / ranks)``
    rows.
    """
    if n < 1 or ranks < 1:
        raise ValueError(f"need n, ranks >= 1, got {n}, {ranks}")
    return -(-n // ranks)


def _warp_tx(device: DeviceSpec, n_systems: int, dtype_bytes: int) -> int:
    """Transactions for one unit-stride warp access over ``n_systems``."""
    warp = device.warp_size
    tx = warp_transactions_strided(warp, 1, dtype_bytes)
    full_warps, rem = divmod(n_systems, warp)
    rem_tx = (
        warp_transactions_strided(warp, 1, dtype_bytes, active_lanes=rem)
        if rem
        else 0
    )
    return full_warps * tx + rem_tx


def slab_eliminate_counters(
    n_systems: int,
    slab_rows: int,
    dtype_bytes: int,
    device: DeviceSpec = GTX480,
    threads_per_block: int = 128,
) -> KernelCounters:
    """Ledger for the two-sweep modified-Thomas elimination of one slab.

    One thread per system; the slab is stored system-interleaved so
    every row access is lane-consecutive.  The forward sweep loads the
    four diagonals and stores the three modified streams (7
    values/row); the backward sweep rewrites the three streams in place
    (6 values/row).  Both sweeps are ``slab_rows``-long dependent
    chains, so the elimination carries roughly twice the latency chain
    of the rows it owns — the price of producing boundary-coupled
    coefficients instead of a solved interior.
    """
    if n_systems < 1 or slab_rows < 2:
        raise ValueError(
            f"need n_systems >= 1 and slab_rows >= 2, got "
            f"{n_systems}, {slab_rows}"
        )
    if dtype_bytes not in (4, 8):
        raise ValueError(f"dtype_bytes must be 4 or 8, got {dtype_bytes}")

    threads_per_block = min(
        threads_per_block, max(device.warp_size, n_systems)
    )
    tx_per_row = _warp_tx(device, n_systems, dtype_bytes)

    def bulk(values_per_row: int, rows: int) -> tuple:
        useful = values_per_row * rows * n_systems * dtype_bytes
        return useful, values_per_row * rows * tx_per_row

    traffic = MemoryTraffic()
    # forward sweep: read a, b, c, d; write ar, cr, dr
    traffic.add_load(*bulk(4, slab_rows))
    traffic.add_store(*bulk(3, slab_rows))
    # backward sweep: re-read and rewrite the three modified streams
    traffic.add_load(*bulk(3, slab_rows))
    traffic.add_store(*bulk(3, slab_rows))

    return KernelCounters(
        name="slab eliminate (modified Thomas)",
        eliminations=n_systems * (2 * slab_rows - 1),
        traffic=traffic,
        launches=1,
        dependent_steps=2 * slab_rows - 1,
        threads=n_systems,
        threads_per_block=threads_per_block,
        smem_per_block=0,
        regs_per_thread=20,
        mlp=4.0,
    )


def slab_backsub_counters(
    n_systems: int,
    slab_rows: int,
    dtype_bytes: int,
    device: DeviceSpec = GTX480,
    threads_per_block: int = 128,
) -> KernelCounters:
    """Ledger for the interior back-substitution of one slab.

    Once the slab's two boundary values are known, every interior row
    is ``x_i = dr_i − ar_i·x_first − cr_i·x_last`` — fully elementwise
    (no recurrence), reading the three stored streams and the broadcast
    boundary pair, writing ``x`` (4 streamed values/row).
    """
    if n_systems < 1 or slab_rows < 2:
        raise ValueError(
            f"need n_systems >= 1 and slab_rows >= 2, got "
            f"{n_systems}, {slab_rows}"
        )
    if dtype_bytes not in (4, 8):
        raise ValueError(f"dtype_bytes must be 4 or 8, got {dtype_bytes}")

    tx_per_row = _warp_tx(device, n_systems, dtype_bytes)

    def bulk(values_per_row: int, rows: int) -> tuple:
        useful = values_per_row * rows * n_systems * dtype_bytes
        return useful, values_per_row * rows * tx_per_row

    traffic = MemoryTraffic()
    # per interior row: read ar, cr, dr; write x (boundary pair is a
    # register broadcast)
    traffic.add_load(*bulk(3, slab_rows))
    traffic.add_store(*bulk(1, slab_rows))
    # boundary pair: one coalesced load per system
    traffic.add_load(
        2 * n_systems * dtype_bytes, 2 * tx_per_row
    )

    rows_total = n_systems * slab_rows
    return KernelCounters(
        name="slab backsub",
        eliminations=rows_total,
        traffic=traffic,
        launches=1,
        dependent_steps=1,
        threads=rows_total,
        threads_per_block=min(
            threads_per_block, max(device.warp_size, rows_total)
        ),
        smem_per_block=0,
        regs_per_thread=20,
        mlp=8.0,
    )


def reduced_solve_counters(
    n_systems: int,
    ranks: int,
    dtype_bytes: int,
    device: DeviceSpec = GTX480,
) -> KernelCounters:
    """Ledger for the ``2P``-row reduced interface solve on rank 0.

    The interface system is scalar tridiagonal with unit diagonal —
    a plain Thomas sweep over ``M`` interleaved systems of ``2P`` rows.
    Tiny next to the slab work (``O(M·P)`` vs ``O(M·N/P)``) but fully
    serial across ranks: every rank idles while rank 0 runs it.
    """
    from repro.core.layout import Layout
    from repro.kernels.pthomas_kernel import pthomas_counters

    if ranks < 1:
        raise ValueError(f"need ranks >= 1, got {ranks}")
    counters = pthomas_counters(
        n_systems,
        2 * ranks,
        dtype_bytes,
        device=device,
        layout=Layout.INTERLEAVED,
    )
    counters.name = "reduced interface solve"
    return counters


def interface_gather_counters(
    ranks: int, n_systems: int, dtype_bytes: int
) -> CommCounters:
    """Reduced-system gather: six ``M``-vectors from each non-root rank.

    Each slab contributes two boundary equations of three coefficients
    (sub, sup, rhs) per system; rank 0's own rows never cross the link.
    """
    comm = CommCounters(name="interface gather")
    remote = max(0, ranks - 1)
    comm.add(remote * 6 * n_systems * dtype_bytes, messages=remote)
    return comm


def boundary_scatter_counters(
    ranks: int, n_systems: int, dtype_bytes: int
) -> CommCounters:
    """Boundary scatter: the slab-edge solution pair back to each rank."""
    comm = CommCounters(name="boundary scatter")
    remote = max(0, ranks - 1)
    comm.add(remote * 2 * n_systems * dtype_bytes, messages=remote)
    return comm


def staging_counters(
    ranks: int, n_systems: int, n: int, dtype_bytes: int
) -> CommCounters:
    """One-time staging: ship slab coefficients out, solution back.

    Four input diagonals per slab row outbound plus the solved interior
    inbound — ``5·M·N/P`` values per non-root rank.  In a resident
    workload (time-stepping on device-held data) this is amortized
    across many solves, so :func:`distributed_plan` reports it as a
    separate stage rather than folding it into the steady-state total.
    """
    comm = CommCounters(name="staging")
    remote = max(0, ranks - 1)
    rows = slab_rows_for(n, ranks)
    comm.add(remote * 5 * n_systems * rows * dtype_bytes, messages=2 * remote)
    return comm


def distributed_plan(
    m: int,
    n: int,
    ranks: int,
    dtype_bytes: int,
    device: DeviceSpec = GTX480,
    link: LinkSpec = PCIE_LINK,
    include_staging: bool = False,
) -> list:
    """Predicted stage times of a ``P``-rank distributed solve.

    Returns ``(name, predicted_us)`` pairs whose names match the
    distributed backend's measured stages (``partition``,
    ``local-eliminate [P ranks]``, ``reduced-solve``,
    ``backsub [P ranks]``, ``comms``) so the two ledgers pair
    positionally in a trace.  Ranks are modelled as identical devices
    running concurrently — a parallel stage costs its largest slab —
    while every transfer serializes on the shared link.
    """
    if m < 1 or n < 2 * ranks or ranks < 1:
        raise ValueError(
            f"need m >= 1, ranks >= 1, n >= 2*ranks, got "
            f"({m}, {n}, {ranks})"
        )
    model = GpuTimingModel(device)
    rows = slab_rows_for(n, ranks)

    def kernel_us(counters: KernelCounters) -> float:
        return model.time(counters, dtype_bytes).total_s * 1e6

    eliminate_us = kernel_us(
        slab_eliminate_counters(m, rows, dtype_bytes, device=device)
    )
    reduced_us = kernel_us(
        reduced_solve_counters(m, ranks, dtype_bytes, device=device)
    )
    backsub_us = kernel_us(
        slab_backsub_counters(m, rows, dtype_bytes, device=device)
    )
    comms_us = (
        interface_gather_counters(ranks, m, dtype_bytes).time_us(link)
        + boundary_scatter_counters(ranks, m, dtype_bytes).time_us(link)
    )

    plan = [
        ("partition", 0.0),
        (f"local-eliminate [{ranks} ranks]", eliminate_us),
        ("reduced-solve", reduced_us),
        (f"backsub [{ranks} ranks]", backsub_us),
        ("comms", comms_us),
    ]
    if include_staging:
        plan.append(
            (
                "staging (one-time)",
                staging_counters(ranks, m, n, dtype_bytes).time_us(link),
            )
        )
    return plan
