"""Cyclic-reduction kernel ledger — naive and bank-conflict-free.

CR on a GPU (Sengupta et al.; Göddeke & Strzodka [10]) keeps the system
in shared memory and halves the active rows each forward level.  Two
costs distinguish the variants the literature discusses:

* **naive layout** — level ``l`` accesses shared memory at stride
  ``2^{l+1}``; the power-of-two stride collides on the 32 banks with
  degree ``gcd(stride, 32)``, up to 32-way serialization;
* **conflict-free layout** (Göddeke & Strzodka) — indices are reordered
  so every level's accesses are unit-stride within the active set.

Both do identical O(n) eliminations; only the ``smem_cycles`` differ —
exactly the effect the CR-variants ablation benchmark shows.  CR's other
structural weakness also appears in the ledger: parallelism decays
geometrically down the tree (``dependent_steps = 2·log2 n`` with the
*average* active width far below ``n``), which is why the paper's hybrid
uses PCR, not CR, as the front-end.
"""

from __future__ import annotations

import math

from repro.gpusim.counters import KernelCounters
from repro.gpusim.device import DeviceSpec, GTX480
from repro.gpusim.memory import MemoryTraffic, warp_transactions_strided
from repro.gpusim.sharedmem import smem_access_cycles
from repro.kernels.pcr_kernel import max_inshared_rows

__all__ = ["cr_counters"]


def cr_counters(
    m: int,
    n: int,
    dtype_bytes: int,
    device: DeviceSpec = GTX480,
    conflict_free: bool = False,
) -> KernelCounters:
    """Ledger for in-shared-memory CR over ``M`` blocks of ``N`` rows.

    ``conflict_free=True`` prices the Göddeke-Strzodka reordered layout
    (unit-stride shared accesses); ``False`` the naive power-of-two
    strides.
    """
    cap = max_inshared_rows(device, dtype_bytes)
    if n > cap:
        raise ValueError(
            f"system of {n} rows exceeds in-shared-memory capacity {cap} rows"
        )
    levels = max(1, math.ceil(math.log2(n)))
    warp = device.warp_size
    threads = min(device.max_threads_per_block, max(warp, n // 2 or 1))
    tx_unit = warp_transactions_strided(warp, 1, dtype_bytes)

    traffic = MemoryTraffic()
    rows = m * n
    acc = -(-rows // warp)
    traffic.add_load(4 * rows * dtype_bytes, 4 * acc * tx_unit)
    traffic.add_store(rows * dtype_bytes, acc * tx_unit)

    elem_words = dtype_bytes // 4
    eliminations = 0
    smem_cycles = 0
    smem_accesses = 0
    # forward levels: active rows halve; backward levels mirror them
    active = n // 2
    for level in range(levels):
        if active < 1:
            active = 1
        stride = 1 if conflict_free else min(32, 1 << (level + 1))
        cyc = smem_access_cycles(stride, elem_words=elem_words)
        # forward + backward both touch `active` rows at this level
        lvl_rows = 2 * active * m
        eliminations += lvl_rows
        warp_acc = -(-lvl_rows // warp)
        smem_accesses += 4 * 4 * warp_acc
        smem_cycles += 4 * warp_acc * (3 * cyc + smem_access_cycles(1, elem_words))
        active //= 2

    return KernelCounters(
        name=f"CR({'conflict-free' if conflict_free else 'naive'})",
        eliminations=eliminations,
        traffic=traffic,
        smem_accesses=smem_accesses,
        smem_cycles=smem_cycles,
        barriers=m * 2 * levels,
        launches=1,
        dependent_steps=2 * levels + 1,
        threads=m * threads,
        threads_per_block=threads,
        smem_per_block=4 * n * dtype_bytes,
        regs_per_thread=20,
    )
