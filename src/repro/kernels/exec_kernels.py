"""The paper's kernels, written against the functional SIMT executor.

These are *executable block programs*: explicit shared memory, explicit
per-lane global indices, explicit barriers.  They produce the same
numbers as the :mod:`repro.core` algorithms (asserted in tests) while
the executor *measures* their traffic from the actual addresses — the
measured ledgers cross-validate the closed-form ones in
:mod:`repro.kernels`.

Programs
--------
* :func:`pthomas_kernel` — one thread per system, interleaved or
  contiguous indexing (the Section III-B coalescing experiment, run
  rather than asserted);
* :func:`tiled_pcr_window_kernel` — the buffered sliding window of
  Figs. 9-10: one thread block of ``2^k`` threads slides over one
  system, with per-level cache segments packed into a single shared
  array (logically segmented, "as it allows the PCR elimination kernel
  to work across logical buffer boundaries"), ``k+1`` barriers per
  sub-tile round and a cache-management copy at the end of each round.

  Layout: per-level trailing-cache segments (``2^{l+1}`` rows each,
  ``2·f(k)`` total — the paper's stated minimum) plus two ping-ponged
  sub-tile stage buffers, ``2·f(k) + 2·S`` rows per channel in one
  shared block.  That is the same footprint class as the paper's
  ``top + middle + bottom = 4·S`` layout (for ``c = 1``,
  ``2·f(k) ≈ 2·S``), and it fits the 48 KiB Fermi budget through the
  full Table III range (k ≤ 8, fp64).
"""

from __future__ import annotations

import numpy as np

from repro.core.cost_model import f_redundant_loads
from repro.gpusim.executor import BlockContext

__all__ = [
    "pthomas_kernel",
    "tiled_pcr_window_kernel",
    "cr_forward_kernel",
    "run_pthomas",
    "run_tiled_pcr",
    "run_cr_forward",
]


def pthomas_kernel(
    ctx: BlockContext,
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    d: np.ndarray,
    cp: np.ndarray,
    dp: np.ndarray,
    x: np.ndarray,
    n_systems: int,
    length: int,
    interleaved: bool,
) -> None:
    """One thread per system; flat arrays hold all systems.

    ``interleaved``: element ``l`` of system ``s`` at ``l·G + s``
    (coalesced); else contiguous: at ``s·L + l``.
    """
    sys_id = ctx.block_id * ctx.threads + ctx.tid
    active = sys_id < n_systems
    sid = np.where(active, sys_id, 0)

    def gidx(step):
        if interleaved:
            return step * n_systems + sid
        return sid * length + step

    # forward reduction
    i0 = gidx(0)
    b0 = ctx.load_global(b, i0, active)
    cv = ctx.load_global(c, i0, active)
    dv = ctx.load_global(d, i0, active)
    safe_b0 = np.where(active, b0, 1.0)
    cp_prev = cv / safe_b0
    dp_prev = dv / safe_b0
    ctx.store_global(cp, i0, cp_prev, active)
    ctx.store_global(dp, i0, dp_prev, active)
    for step in range(1, length):
        gi = gidx(step)
        av = ctx.load_global(a, gi, active)
        bv = ctx.load_global(b, gi, active)
        cv = ctx.load_global(c, gi, active)
        dv = ctx.load_global(d, gi, active)
        denom = np.where(active, bv - cp_prev * av, 1.0)
        cp_prev = cv / denom
        dp_prev = (dv - dp_prev * av) / denom
        ctx.store_global(cp, gi, cp_prev, active)
        ctx.store_global(dp, gi, dp_prev, active)

    # backward substitution
    gi = gidx(length - 1)
    x_next = ctx.load_global(dp, gi, active)
    ctx.store_global(x, gi, x_next, active)
    for step in range(length - 2, -1, -1):
        gi = gidx(step)
        cpv = ctx.load_global(cp, gi, active)
        dpv = ctx.load_global(dp, gi, active)
        x_next = dpv - cpv * x_next
        ctx.store_global(x, gi, x_next, active)


def run_pthomas(a2d, b2d, c2d, d2d, interleaved=True, device=None,
                threads_per_block=128):
    """Solve an ``(S, L)`` batch with the executable p-Thomas kernel.

    The ``(S, L)`` inputs are laid out into flat global arrays according
    to ``interleaved`` before launch.  Returns ``(x, stats)``.
    """
    from repro.gpusim.device import GTX480
    from repro.gpusim.executor import launch

    device = device or GTX480
    s, L = b2d.shape
    dtype = b2d.dtype

    def pack(arr):
        return (
            np.ascontiguousarray(arr.T).reshape(-1)
            if interleaved
            else np.ascontiguousarray(arr).reshape(-1)
        )

    flat = [pack(v) for v in (a2d, b2d, c2d, d2d)]
    cp = np.zeros(s * L, dtype=dtype)
    dp = np.zeros(s * L, dtype=dtype)
    x = np.zeros(s * L, dtype=dtype)
    tpb = min(threads_per_block, max(device.warp_size, s))
    grid = -(-s // tpb)
    stats = launch(
        pthomas_kernel,
        grid,
        tpb,
        (*flat, cp, dp, x, s, L, interleaved),
        device=device,
    )
    out = x.reshape(L, s).T if interleaved else x.reshape(s, L)
    return np.ascontiguousarray(out), stats


def tiled_pcr_window_kernel(
    ctx: BlockContext,
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    d: np.ndarray,
    out: np.ndarray,
    n: int,
    k: int,
) -> None:
    """The buffered sliding window (Figs. 9-10) for one system.

    ``a..d`` are the system's flat arrays; ``out`` is ``(4, n)`` for the
    reduced system.  ``ctx.threads`` must equal ``2^k`` (one output per
    thread per level per round, the Table I mapping).
    """
    S = ctx.threads  # sub-tile size, c = 1
    if S != 1 << k:
        raise ValueError(f"block must have 2^k = {1 << k} threads, got {S}")
    fk = f_redundant_loads(k)
    chans = (a, b, c, d)
    warp = ctx.device.warp_size

    # One shared block, logically segmented:
    #   [cache_0 | cache_1 | ... | cache_{k-1} | stage_A | stage_B]
    # cache_l holds the trailing 2^(l+1) level-l rows; the two S-row
    # stages ping-pong the freshly produced rows between levels.
    cache_caps = [2 ** (l + 1) for l in range(k)]
    cache_offs = np.cumsum([0] + cache_caps).tolist()
    stage_off = [cache_offs[-1], cache_offs[-1] + S]
    win = ctx.shared((4, cache_offs[-1] + 2 * S))
    win[1, :] = 1.0  # identity rows: b = 1, a = c = d = 0

    frontiers = [-fk] * (k + 1)  # F_l in global row coordinates
    pos = -fk
    rounds = -(-(n + 2 * fk) // S)

    for _ in range(rounds):
        # --- load one raw sub-tile into stage A (coalesced)
        rows = pos + ctx.tid
        in_range = (rows >= 0) & (rows < n)
        gidx = np.where(in_range, rows, 0)
        sa = stage_off[0]
        for ch_i, ch in enumerate(chans):
            vals = ctx.load_global(ch, gidx, in_range)
            if ch_i == 1:
                vals = np.where(in_range, vals, 1.0)
            win[ch_i, sa : sa + S] = vals
            ctx.smem_write(-(-S // warp))
        frontiers[0] = pos + S
        pos += S
        stage_fill = S  # level-0 fresh rows currently in stage A
        src_stage = 0
        ctx.barrier()

        # --- k PCR levels; each consumes (cache_l + src stage), writes
        #     its output to the other stage, then refreshes cache_l
        for l in range(k):
            s_reach = 1 << l
            new_f = frontiers[l] - s_reach
            old_f = frontiers[l + 1]
            w = new_f - old_f
            cap = cache_caps[l]
            lo = cache_offs[l]
            src = stage_off[src_stage]
            dst = stage_off[1 - src_stage]
            if w > 0:
                # logical level-l run = cache rows then fresh rows; the
                # run covers rows [F_l - cap - fill, F_l)
                run = np.empty((4, cap + stage_fill))
                run[:, :cap] = win[:, lo : lo + cap]
                run[:, cap:] = win[:, src : src + stage_fill]
                run_lo = frontiers[l] - (cap + stage_fill)
                i0 = (old_f - s_reach) - run_lo
                sl = run[:, i0 : i0 + w + 2 * s_reach]
                ctx.smem_read(3 * 4 * -(-w // warp))
                am, bm, cm, dm = (sl[ch, :w] for ch in range(4))
                ac, bc, cc, dc = (sl[ch, s_reach : s_reach + w] for ch in range(4))
                ap, bp, cp_, dp_ = (
                    sl[ch, 2 * s_reach : 2 * s_reach + w] for ch in range(4)
                )
                k1 = ac / bm
                k2 = cc / bp
                res = (
                    -am * k1,
                    bc - cm * k1 - ap * k2,
                    -cp_ * k2,
                    dc - dm * k1 - dp_ * k2,
                )
                for ch in range(4):
                    win[ch, dst : dst + w] = res[ch]
                ctx.smem_write(4 * -(-w // warp))
                # cache management: cache_l <- trailing cap rows of the run
                win[:, lo : lo + cap] = run[:, -cap:]
                ctx.smem_read(4 * -(-cap // warp))
                ctx.smem_write(4 * -(-cap // warp))
                frontiers[l + 1] = new_f
                if l + 1 == k:
                    e0, e1 = max(old_f, 0), min(new_f, n)
                    if e0 < e1:
                        width = e1 - e0
                        active = ctx.tid < width
                        lane = np.where(active, ctx.tid, 0)
                        for ch in range(4):
                            ctx.store_global(
                                out[ch],
                                np.where(active, e0 + lane, 0),
                                win[ch, dst + (e0 - old_f) + lane],
                                active,
                            )
                stage_fill = w
                src_stage = 1 - src_stage
            else:
                # stalled level (warm-up): its cache still absorbs the
                # fresh rows so nothing is lost
                if stage_fill > 0:
                    run = np.empty((4, cap + stage_fill))
                    run[:, :cap] = win[:, lo : lo + cap]
                    run[:, cap:] = win[:, src : src + stage_fill]
                    win[:, lo : lo + cap] = run[:, -cap:]
                stage_fill = 0
            ctx.barrier()


def run_tiled_pcr(a1d, b1d, c1d, d1d, k, device=None):
    """k-step tiled PCR of one system via the window kernel.

    Returns ``((a', b', c', d'), stats)`` — the reduced system equals
    :func:`repro.core.pcr.pcr_sweep`.
    """
    from repro.gpusim.device import GTX480
    from repro.gpusim.executor import launch

    device = device or GTX480
    n = b1d.shape[0]
    out = np.zeros((4, n), dtype=b1d.dtype)
    stats = launch(
        tiled_pcr_window_kernel,
        1,
        1 << k,
        (np.ascontiguousarray(a1d), np.ascontiguousarray(b1d),
         np.ascontiguousarray(c1d), np.ascontiguousarray(d1d), out, n, k),
        device=device,
    )
    return (out[0], out[1], out[2], out[3]), stats


def cr_forward_kernel(
    ctx: BlockContext,
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    d: np.ndarray,
    out: np.ndarray,
    n: int,
    conflict_free: bool,
) -> None:
    """One CR forward level in shared memory, banks *measured*.

    Loads the system, performs the first forward-reduction level (odd
    rows reduced by their even neighbours) and stores the half-size
    system.  Two layouts:

    * naive: rows stay in place; lane ``j`` reduces row ``2j + 1`` —
      lane word-addresses stride by 2, a guaranteed 2-way conflict
      (and worse at deeper levels);
    * conflict-free (Göddeke-Strzodka): the odd rows are pre-gathered
      to a compact unit-stride region, so every warp access is
      conflict-free at the cost of the gather.

    The executor's measured ``smem_conflict_cycles`` quantify the gap.
    """
    smem = ctx.shared((4, n))
    lanes = ctx.tid
    # cooperative coalesced load of the whole system
    for base in range(0, n, ctx.threads):
        act = base + lanes < n
        gidx = np.where(act, base + lanes, 0)
        for ch_i, ch in enumerate((a, b, c, d)):
            vals = ctx.load_global(ch, gidx, act)
            smem[ch_i, base : base + ctx.threads][act[: min(ctx.threads, n - base)]] = vals[act]
    ctx.barrier()

    half = n // 2
    act = lanes < half
    rows = np.where(act, 2 * lanes + 1, 1)
    if conflict_free:
        # gather odds into a compact region first (unit-stride accesses)
        compact = ctx.shared((4, max(half, 1) * 3))
        for ch in range(4):
            compact[ch, :half] = smem[ch, 1::2][:half]          # centre
            compact[ch, half : 2 * half] = smem[ch, 0::2][:half]  # left
            right = np.zeros(half)
            right_src = smem[ch, 2::2]
            right[: right_src.shape[0]] = right_src[:half]
            compact[ch, 2 * half : 3 * half] = right
        ctx.smem_access_measured(np.where(act, lanes, 0))          # unit stride
        ctx.smem_access_measured(np.where(act, half + lanes, 0))
        ctx.smem_access_measured(np.where(act, 2 * half + lanes, 0))
        ac = compact[0, :half]
        bc_ = compact[1, :half]
        cc = compact[2, :half]
        dc = compact[3, :half]
        al = compact[0, half : 2 * half]
        bl = compact[1, half : 2 * half]
        cl = compact[2, half : 2 * half]
        dl = compact[3, half : 2 * half]
        br = np.where(2 * np.arange(half) + 2 < n, compact[1, 2 * half : 3 * half], 1.0)
        ar = compact[0, 2 * half : 3 * half]
        cr_ = compact[2, 2 * half : 3 * half]
        dr = compact[3, 2 * half : 3 * half]
    else:
        # in-place strided access: lane j touches word 2j+1 etc.
        ctx.smem_access_measured(np.where(act, rows, 1))           # stride 2
        ctx.smem_access_measured(np.where(act, rows - 1, 0))
        ctx.smem_access_measured(np.where(act, np.minimum(rows + 1, n - 1), 0))
        ac = smem[0, rows]
        bc_ = smem[1, rows]
        cc = smem[2, rows]
        dc = smem[3, rows]
        al = smem[0, rows - 1]
        bl = smem[1, rows - 1]
        cl = smem[2, rows - 1]
        dl = smem[3, rows - 1]
        has_right = rows + 1 < n
        rr = np.where(has_right, rows + 1, rows)
        br = np.where(has_right, smem[1, rr], 1.0)
        ar = np.where(has_right, smem[0, rr], 0.0)
        cr_ = np.where(has_right, smem[2, rr], 0.0)
        dr = np.where(has_right, smem[3, rr], 0.0)

    k1 = ac / bl
    k2 = cc / br
    res = (
        -al * k1,
        bc_ - cl * k1 - ar * k2,
        -cr_ * k2,
        dc - dl * k1 - dr * k2,
    )
    ctx.barrier()
    store_idx = np.where(act, lanes, 0)
    for ch in range(4):
        ctx.store_global(out[ch], store_idx, np.where(act, res[ch], 0.0), act)


def run_cr_forward(a1d, b1d, c1d, d1d, conflict_free=False, device=None):
    """One measured CR forward level; returns the reduced system + stats.

    The reduced system equals :func:`repro.core.cr.cr_forward_step`.
    """
    from repro.gpusim.device import GTX480
    from repro.gpusim.executor import launch

    device = device or GTX480
    n = b1d.shape[0]
    half = n // 2
    out = np.zeros((4, max(half, 1)), dtype=b1d.dtype)
    threads = min(device.max_threads_per_block, max(device.warp_size, half))
    stats = launch(
        cr_forward_kernel,
        1,
        threads,
        (np.ascontiguousarray(a1d), np.ascontiguousarray(b1d),
         np.ascontiguousarray(c1d), np.ascontiguousarray(d1d),
         out, n, conflict_free),
        device=device,
    )
    return (out[0], out[1], out[2], out[3]), stats
