"""Fused tiled-PCR + p-Thomas kernel ledger — Section III-C.

"Progressively invoking p-Thomas without waiting for tiled PCR kernel to
finish": the p-Thomas forward reduction consumes each sub-tile of PCR
output the moment it is produced, keeping the running ``(c', d')`` in
registers (register tiling).  Compared with the unfused pipeline this

* **saves** the 4-value store of the reduced system and its 4-value
  re-load by p-Thomas (8 of the 13 per-row global values),
* **removes** one kernel launch boundary,
* **but** binds the p-Thomas stage to the PCR stage's launch shape:
  ``2^k`` threads per block with the window's shared-memory footprint,
  which caps occupancy below what a standalone p-Thomas kernel would get
  — the paper's warning that "kernel fusion does not always improve
  performance".

The ledger composes the two stage ledgers with the fused flags set and
merges them into a single launch whose block configuration is the PCR
stage's (the binding one).
"""

from __future__ import annotations

from repro.core.layout import Layout
from repro.gpusim.counters import KernelCounters
from repro.gpusim.device import DeviceSpec, GTX480
from repro.kernels.pthomas_kernel import pthomas_counters
from repro.kernels.tiled_pcr_kernel import tiled_pcr_counters

__all__ = ["fused_hybrid_counters"]


def fused_hybrid_counters(
    m: int,
    n: int,
    k: int,
    dtype_bytes: int,
    device: DeviceSpec = GTX480,
    c: int = 1,
    n_windows: int = 1,
    windows_per_block: int = 1,
) -> KernelCounters:
    """Single-launch ledger for the fused hybrid (k ≥ 1).

    See :func:`repro.kernels.tiled_pcr_counters` and
    :func:`repro.kernels.pthomas_counters` for the parameters; the fused
    kernel inherits the PCR stage's launch configuration.
    """
    if k < 1:
        raise ValueError(f"fusion needs a PCR stage, got k={k}")
    pcr = tiled_pcr_counters(
        m,
        n,
        k,
        dtype_bytes,
        device=device,
        c=c,
        n_windows=n_windows,
        windows_per_block=windows_per_block,
        fused_output=True,
    )
    g = 1 << k
    length = -(-n // g)
    thomas = pthomas_counters(
        m * g,
        length,
        dtype_bytes,
        device=device,
        layout=Layout.INTERLEAVED,
        fused_input=True,
        # fusion pins the block shape to the PCR stage's
        threads_per_block=pcr.threads_per_block,
    )
    fused = KernelCounters(
        name=f"fused hybrid(k={k})",
        eliminations=pcr.eliminations + thomas.eliminations,
        traffic=pcr.traffic,
        smem_accesses=pcr.smem_accesses,
        smem_cycles=pcr.smem_cycles,
        barriers=pcr.barriers,
        launches=1,  # the whole point
        # the forward chain overlaps the PCR rounds (it consumes them as
        # they appear), so only the backward chain adds to the PCR chain
        dependent_steps=pcr.dependent_steps + length,
        threads=pcr.threads,
        threads_per_block=pcr.threads_per_block,
        smem_per_block=pcr.smem_per_block,
        regs_per_thread=pcr.regs_per_thread + 8,  # register tiling state
    )
    fused.traffic.merge(thomas.traffic)
    fused.flops = 0
    return fused
