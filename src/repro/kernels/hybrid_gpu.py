"""The end-to-end simulated GPU solver: numbers + predicted time.

:class:`GpuHybridSolver` is what the figure benchmarks run.  It

1. plans the launch like the paper's runtime does — ``k`` from the
   Table III heuristic, and for small ``M`` a window count (Fig. 11b)
   that manufactures enough thread blocks to occupy the device;
2. (optionally) *solves* the batch numerically with the core hybrid so
   every benchmark point is backed by a real solution;
3. builds the stage ledgers (:mod:`repro.kernels`) and prices them on
   the device model, producing a :class:`GpuSolveReport` with the stage
   breakdown — including the tiled-PCR share of runtime that the paper
   quotes (6.25 % at M=256, 36.2 % at M=16, ≈55 % at M=1).

``predict`` prices a problem shape without touching data, which is how
the benchmarks sweep to ``N = 8M`` rows cheaply; correctness at those
shapes is covered by scaled-down numeric tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.layout import Layout
from repro.core.transition import GTX480_HEURISTIC, TransitionHeuristic
from repro.gpusim.device import DeviceSpec, GTX480
from repro.gpusim.timing import GpuTimingModel
from repro.kernels.fused_kernel import fused_hybrid_counters
from repro.kernels.pthomas_kernel import pthomas_counters
from repro.kernels.tiled_pcr_kernel import tiled_pcr_counters

__all__ = ["GpuHybridSolver", "GpuSolveReport"]


@dataclass
class GpuSolveReport:
    """Plan, ledgers and predicted timing of one (simulated) GPU solve."""

    m: int
    n: int
    k: int
    dtype_bytes: int
    n_windows: int
    fused: bool
    stages: list = field(default_factory=list)  # (name, KernelCounters, StageTime)

    @property
    def total_s(self) -> float:
        """Predicted wall-clock of the kernel sequence."""
        return sum(t.total_s for _, _, t in self.stages)

    @property
    def total_us(self) -> float:
        """Predicted wall-clock in microseconds (the paper's unit)."""
        return self.total_s * 1e6

    @property
    def pcr_seconds(self) -> float:
        """Time attributed to the tiled-PCR front-end."""
        return sum(t.total_s for name, _, t in self.stages if "PCR" in name)

    @property
    def pcr_fraction(self) -> float:
        """Tiled-PCR share of total runtime (Section IV's percentages)."""
        total = self.total_s
        return self.pcr_seconds / total if total else 0.0

    def stage(self, name_fragment: str) -> tuple:
        """Look up a stage by name fragment → (counters, time)."""
        for name, counters, time in self.stages:
            if name_fragment in name:
                return counters, time
        raise KeyError(f"no stage matching {name_fragment!r}")

    def trace_stages(self) -> list:
        """``(kernel name, predicted µs)`` pairs for solve traces.

        The hook :class:`~repro.backends.gpusim_backend.GpuSimBackend`
        uses to put the device model's per-stage prediction next to the
        measured wall time in one
        :class:`~repro.backends.trace.SolveTrace`.
        """
        return [(name, t.total_s * 1e6) for name, _, t in self.stages]


@dataclass
class GpuHybridSolver:
    """Simulated-GPU hybrid solver (tiled PCR + p-Thomas on a device model).

    Parameters
    ----------
    device:
        Simulated GPU (default: the paper's GTX480).
    heuristic:
        Table III transition table.
    fuse:
        Use the fused kernel (Section III-C).
    subtile_scale:
        Table I's ``c``.
    target_blocks_per_sm:
        How many blocks the window planner tries to put on each SM when
        ``M`` alone cannot fill the device (Fig. 11b).
    windows_per_block:
        Windows multiplexed onto one thread block (Fig. 11c) — trades
        shared-memory occupancy for more in-flight loads per block.
        Numerically a no-op; affects the predicted timing only.
    """

    device: DeviceSpec = GTX480
    heuristic: TransitionHeuristic = GTX480_HEURISTIC
    fuse: bool = False
    subtile_scale: int = 1
    target_blocks_per_sm: int = 4
    windows_per_block: int = 1
    last_report: GpuSolveReport | None = field(default=None, compare=False)

    # ------------------------------------------------------------------
    def plan_windows(self, m: int, n: int, k: int) -> int:
        """Windows per system (Fig. 11b) to reach the block target.

        With ``M`` systems and one window each, the grid has ``M``
        blocks; if that undershoots ``SMs × target_blocks_per_sm``, split
        each system into more windows — but never so many that a window
        advances fewer than four sub-tiles (the lead-in would dominate).
        """
        if k == 0:
            return 1
        target_blocks = self.device.sm_count * self.target_blocks_per_sm
        want = -(-target_blocks // m)
        subtile = self.subtile_scale * (1 << k)
        max_windows = max(1, n // (4 * subtile))
        return int(max(1, min(want, max_windows)))

    def plan(self, m: int, n: int, dtype_bytes: int = 8) -> tuple:
        """(k, n_windows) for a problem shape.

        The heuristic's k is additionally capped by the device's
        shared-memory capacity (the window must fit a block) — the
        portability knob of Sections III-A/VI.
        """
        from repro.core.window import max_k_for_shared_memory

        k = self.heuristic.k_for(m, n)
        k = min(
            k,
            max_k_for_shared_memory(
                self.device.max_shared_mem_per_block,
                dtype_bytes=dtype_bytes,
                c=self.subtile_scale,
            ),
        )
        return k, self.plan_windows(m, n, k)

    # ------------------------------------------------------------------
    def predict(
        self,
        m: int,
        n: int,
        dtype_bytes: int = 8,
        *,
        k: int | None = None,
        n_windows: int | None = None,
    ) -> GpuSolveReport:
        """Price a problem shape on the device model (no numerics).

        ``k`` / ``n_windows`` override the planner (the backend layer
        passes a signature's fixed transition through so prediction and
        execution price the same launch).
        """
        planned_k, planned_w = self.plan(m, n, dtype_bytes)
        if k is None:
            k = planned_k
        if n_windows is None:
            n_windows = planned_w if k == planned_k else self.plan_windows(m, n, k)
        model = GpuTimingModel(self.device)
        report = GpuSolveReport(
            m=m, n=n, k=k, dtype_bytes=dtype_bytes,
            n_windows=n_windows, fused=self.fuse and k > 0,
        )
        g = 1 << k
        length = -(-n // g)
        if k == 0:
            counters = pthomas_counters(
                m, n, dtype_bytes, device=self.device, layout=Layout.INTERLEAVED
            )
            report.stages.append(
                (counters.name, counters, model.time(counters, dtype_bytes))
            )
        elif self.fuse:
            counters = fused_hybrid_counters(
                m, n, k, dtype_bytes,
                device=self.device, c=self.subtile_scale, n_windows=n_windows,
                windows_per_block=self.windows_per_block,
            )
            report.stages.append(
                (counters.name, counters, model.time(counters, dtype_bytes))
            )
        else:
            pcr = tiled_pcr_counters(
                m, n, k, dtype_bytes,
                device=self.device, c=self.subtile_scale, n_windows=n_windows,
                windows_per_block=self.windows_per_block,
            )
            thomas = pthomas_counters(
                m * g, length, dtype_bytes,
                device=self.device, layout=Layout.INTERLEAVED,
            )
            report.stages.append((pcr.name, pcr, model.time(pcr, dtype_bytes)))
            report.stages.append(
                (thomas.name, thomas, model.time(thomas, dtype_bytes))
            )
        self.last_report = report
        return report

    # ------------------------------------------------------------------
    def solve_batch(
        self, a, b, c, d, *, check: bool = True, k: int | None = None
    ) -> np.ndarray:
        """Numerically solve the batch *and* predict its GPU timing.

        The numerics run through the solve-plan engine with the device
        plan's exact launch parameters (``k`` capped by shared memory,
        the Fig. 11b window count) — bitwise what the reference hybrid
        produces for that plan; the prediction lands in
        :attr:`last_report`.  ``k`` overrides the device planner's
        transition (the windows are re-planned around it).
        """
        from repro.engine import default_engine

        b_arr = np.asarray(b)
        m, n = b_arr.shape
        dtype_bytes = b_arr.dtype.itemsize if b_arr.dtype.itemsize in (4, 8) else 8
        if k is None:
            k, n_windows = self.plan(m, n, dtype_bytes)
        else:
            n_windows = self.plan_windows(m, n, k)
        x = default_engine().solve_batch(
            a,
            b,
            c,
            d,
            check=check,
            k=k,
            subtile_scale=self.subtile_scale,
            n_windows=n_windows,
            fuse=self.fuse,
        )
        self.predict(m, n, dtype_bytes, k=k, n_windows=n_windows)
        return x

    def solve(self, a, b, c, d, *, check: bool = True) -> np.ndarray:
        """Single-system convenience wrapper."""
        a, b, c, d = (np.asarray(v) for v in (a, b, c, d))
        return self.solve_batch(
            a[None, :], b[None, :], c[None, :], d[None, :], check=check
        )[0]
