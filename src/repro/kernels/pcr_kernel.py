"""Whole-system-in-shared-memory PCR kernel ledger.

The conventional GPU PCR (Egloff; Zhang et al.'s building block): load
the entire system into shared memory, run ``log2 N`` lockstep PCR steps
with one thread per row, write the solution back.  Simple and fast — as
long as the system *fits*: 4 arrays × N × dtype must squeeze into the
48 KiB of a Fermi SM, capping N at 1536 (fp64) / 3072 (fp32).  That cap
is the paper's central criticism of prior shared-memory hybrids, and
:class:`repro.baselines.zhang.ZhangInSharedMemorySolver` turns it into a
hard error.

The ledger also exposes the occupancy story: the block allocates the
whole system's footprint, so large systems mean one block per SM.
"""

from __future__ import annotations

import math

from repro.gpusim.counters import KernelCounters
from repro.gpusim.device import DeviceSpec, GTX480
from repro.gpusim.memory import MemoryTraffic, warp_transactions_strided
from repro.gpusim.sharedmem import smem_access_cycles

__all__ = ["inshared_pcr_counters", "max_inshared_rows"]


def max_inshared_rows(device: DeviceSpec, dtype_bytes: int, arrays: int = 4) -> int:
    """Largest system that fits a block's shared memory."""
    return device.max_shared_mem_per_block // (arrays * dtype_bytes)


def inshared_pcr_counters(
    m: int,
    n: int,
    dtype_bytes: int,
    device: DeviceSpec = GTX480,
    steps: int | None = None,
) -> KernelCounters:
    """Ledger for in-shared-memory PCR: ``M`` blocks, one system each.

    Parameters
    ----------
    m, n:
        Batch shape; ``n`` must fit shared memory (see
        :func:`max_inshared_rows`).
    steps:
        PCR steps (default: complete reduction, ``ceil(log2 n)``).

    Raises
    ------
    ValueError
        If the system exceeds the shared-memory capacity.
    """
    cap = max_inshared_rows(device, dtype_bytes)
    if n > cap:
        raise ValueError(
            f"system of {n} rows exceeds in-shared-memory capacity "
            f"{cap} rows ({device.name}, {dtype_bytes}-byte elements)"
        )
    if steps is None:
        steps = max(1, math.ceil(math.log2(n)))

    warp = device.warp_size
    threads = min(device.max_threads_per_block, max(warp, n))
    tx_unit = warp_transactions_strided(warp, 1, dtype_bytes)

    traffic = MemoryTraffic()
    rows = m * n
    acc = -(-rows // warp)
    traffic.add_load(4 * rows * dtype_bytes, 4 * acc * tx_unit)
    traffic.add_store(rows * dtype_bytes, acc * tx_unit)  # x only

    # PCR shared accesses are lane-consecutive (lane j ↔ row j; the ±2^l
    # offsets are warp-uniform) — conflict-free, unlike CR.
    elem_words = dtype_bytes // 4
    unit = smem_access_cycles(1, elem_words=elem_words)
    smem_cycles = 0
    smem_accesses = 0
    for _level in range(steps):
        warp_acc = -(-rows // warp)
        smem_accesses += 4 * 4 * warp_acc
        smem_cycles += 4 * warp_acc * 4 * unit

    return KernelCounters(
        name=f"in-smem PCR({steps} steps)",
        eliminations=steps * rows,
        traffic=traffic,
        smem_accesses=smem_accesses,
        smem_cycles=smem_cycles,
        barriers=m * steps,
        launches=1,
        dependent_steps=steps,
        threads=m * threads,
        threads_per_block=threads,
        smem_per_block=4 * n * dtype_bytes,
        regs_per_thread=20,
    )
