"""p-Thomas kernel ledger — Section III-B's coalescing analysis.

One thread per independent system; the thread walks its system's rows
with the Thomas recurrence.  What the kernel costs depends almost
entirely on *layout*:

* ``INTERLEAVED`` (what the PCR front-end leaves behind): at step ``l``
  thread ``j`` touches global element ``l·G + j`` — lane-consecutive
  addresses, minimal transactions per warp access;
* ``CONTIGUOUS``: thread ``j`` touches ``j·L + l`` — a stride of the
  whole system length, one transaction per lane, a 32× (16× for fp64)
  traffic blow-up that the layout ablation benchmark quantifies.

Traffic per row: the forward pass reads the four diagonals and writes
the modified ``(c', d')``; the backward pass re-reads ``(c', d')`` and
writes ``x`` — 9 values.  With ``fused_input=True`` (Section III-C) the
diagonal loads are skipped: the values arrive in registers from the PCR
stage, which is exactly the traffic kernel fusion saves.
"""

from __future__ import annotations

from repro.core.layout import Layout
from repro.gpusim.counters import KernelCounters
from repro.gpusim.device import DeviceSpec, GTX480
from repro.gpusim.memory import MemoryTraffic, warp_transactions_strided

__all__ = ["pthomas_counters"]


def pthomas_counters(
    n_systems: int,
    length: int,
    dtype_bytes: int,
    device: DeviceSpec = GTX480,
    layout: Layout = Layout.INTERLEAVED,
    fused_input: bool = False,
    threads_per_block: int = 128,
) -> KernelCounters:
    """Ledger for p-Thomas over ``n_systems`` systems of ``length`` rows.

    Parameters
    ----------
    n_systems:
        Independent systems = threads (``M · 2^k`` after the front-end).
    length:
        Rows per system (``≈ N / 2^k``).
    dtype_bytes:
        4 (float32) or 8 (float64).
    device:
        For the warp size entering the coalescing analysis.
    layout:
        Memory layout of the systems (see module docstring).
    fused_input:
        Skip the diagonal loads (fed from the fused PCR stage).
    threads_per_block:
        Launch block size (a throughput kernel; 128 is typical).
    """
    if n_systems < 1 or length < 1:
        raise ValueError(f"need n_systems, length >= 1, got {n_systems}, {length}")
    if dtype_bytes not in (4, 8):
        raise ValueError(f"dtype_bytes must be 4 or 8, got {dtype_bytes}")

    threads_per_block = min(threads_per_block, max(device.warp_size, n_systems))
    warp = device.warp_size
    stride = 1 if layout is Layout.INTERLEAVED else length
    tx_per_access = warp_transactions_strided(warp, stride, dtype_bytes)

    full_warps, rem = divmod(n_systems, warp)
    rem_tx = (
        warp_transactions_strided(warp, stride, dtype_bytes, active_lanes=rem)
        if rem
        else 0
    )

    def bulk(values_per_row: int, rows: int) -> tuple:
        """(useful bytes, transactions) for `values_per_row` array walks."""
        useful = values_per_row * rows * n_systems * dtype_bytes
        tx = values_per_row * rows * (full_warps * tx_per_access + rem_tx)
        return useful, tx

    traffic = MemoryTraffic()
    # forward: read a, b, c, d (unless fused), write c', d'
    read_vals = 0 if fused_input else 4
    if read_vals:
        traffic.add_load(*bulk(read_vals, length))
    traffic.add_store(*bulk(2, length))
    # backward: read c', d', write x
    traffic.add_load(*bulk(2, length))
    traffic.add_store(*bulk(1, length))

    return KernelCounters(
        name="p-Thomas",
        eliminations=n_systems * (2 * length - 1),
        traffic=traffic,
        launches=1,
        # forward + backward chains are each `length` dependent steps
        dependent_steps=2 * length - 1,
        threads=n_systems,
        threads_per_block=threads_per_block,
        smem_per_block=0,
        regs_per_thread=20,
        # The next rows' load addresses are value-independent, so loads
        # run ahead of the arithmetic recurrence: high per-thread MLP.
        mlp=4.0,
    )
