"""RHS-only kernel ledgers — what a prepared solve costs on the device.

A prepared (factored) solve skips every coefficient elimination and
streams only the right-hand side:

* ``k = 0``: the p-Thomas recurrence with stored factors.  The forward
  pass reads the sub-diagonal, the stored denominator and ``d`` (3
  values/row instead of the unprepared 4) and writes ``d'`` (1 instead
  of the unprepared ``(c', d')`` pair); the backward pass is unchanged
  (read ``c'``, ``d'``, write ``x``).  Per row: 6 values moved vs. 9 —
  the memory-bound win the ``BENCH_prepared`` numbers measure on CPU.
* ``k > 0``: each stored PCR level applies
  ``d' = d − k1·d_{−s} − k2·d_{+s}`` — an elementwise streaming kernel
  reading ``(k1, k2, d, d_shifted×2)`` and writing ``d'`` per row per
  level (the shifted re-reads hit cache/L2 on real devices; the ledger
  counts them as loads, a deliberately conservative bound) — followed
  by the RHS-only p-Thomas over the ``M·2^k`` reduced interleaved
  systems.

These ledgers price the prepared path in the same vocabulary
(:class:`~repro.gpusim.counters.KernelCounters` →
:class:`~repro.gpusim.timing.GpuTimingModel`) as the unprepared stage
ledgers, so a :class:`~repro.backends.trace.SolveTrace` can put the
device model's predicted RHS-only time next to the measured one.
"""

from __future__ import annotations

from repro.core.layout import Layout
from repro.gpusim.counters import KernelCounters
from repro.gpusim.device import DeviceSpec, GTX480
from repro.gpusim.memory import MemoryTraffic, warp_transactions_strided

__all__ = [
    "cyclic_correction_counters",
    "rhs_kernel_footprint",
    "rhs_level_counters",
    "rhs_only_counters",
    "rhs_pthomas_counters",
]

#: address arithmetic, loop counter, and predicate overhead every
#: RHS-only kernel carries regardless of dtype (32-bit registers)
_BASE_REGS = 6


def rhs_kernel_footprint(
    live_values: int, dtype_bytes: int
) -> tuple:
    """``(regs_per_thread, smem_per_block)`` for an RHS-only kernel.

    The generic (unprepared) stage ledgers carry a flat
    ``regs_per_thread=20`` estimate sized for full-elimination kernels
    that keep three coefficient streams live.  A prepared kernel's
    working set is smaller and dtype-dependent: each live value costs
    one 32-bit register in fp32 and a register *pair* in fp64 (64-bit
    operands occupy two words), on top of a fixed address/loop
    overhead.  RHS-only kernels stage nothing in shared memory — their
    factors stream straight from global — so the smem footprint is 0;
    returning it here keeps the occupancy inputs paired at one seam.
    """
    if live_values < 1:
        raise ValueError(f"need live_values >= 1, got {live_values}")
    if dtype_bytes not in (4, 8):
        raise ValueError(f"dtype_bytes must be 4 or 8, got {dtype_bytes}")
    words_per_value = dtype_bytes // 4
    return _BASE_REGS + live_values * words_per_value, 0


def _warp_tx(device: DeviceSpec, n_systems: int, stride: int, dtype_bytes: int):
    warp = device.warp_size
    tx = warp_transactions_strided(warp, stride, dtype_bytes)
    full_warps, rem = divmod(n_systems, warp)
    rem_tx = (
        warp_transactions_strided(warp, stride, dtype_bytes, active_lanes=rem)
        if rem
        else 0
    )
    return full_warps * tx + rem_tx


def rhs_pthomas_counters(
    n_systems: int,
    length: int,
    dtype_bytes: int,
    device: DeviceSpec = GTX480,
    layout: Layout = Layout.INTERLEAVED,
    threads_per_block: int = 128,
) -> KernelCounters:
    """Ledger for the RHS-only p-Thomas sweep with stored factors.

    Mirrors :func:`~repro.kernels.pthomas_kernel.pthomas_counters` but
    with the prepared-path traffic: the coefficient eliminations are
    gone, so the forward pass moves 4 values/row (3 loads + 1 store)
    and the backward pass 3 — and no modified coefficients are ever
    written back.
    """
    if n_systems < 1 or length < 1:
        raise ValueError(
            f"need n_systems, length >= 1, got {n_systems}, {length}"
        )
    if dtype_bytes not in (4, 8):
        raise ValueError(f"dtype_bytes must be 4 or 8, got {dtype_bytes}")

    threads_per_block = min(
        threads_per_block, max(device.warp_size, n_systems)
    )
    stride = 1 if layout is Layout.INTERLEAVED else length
    tx_per_row = _warp_tx(device, n_systems, stride, dtype_bytes)

    def bulk(values_per_row: int, rows: int) -> tuple:
        useful = values_per_row * rows * n_systems * dtype_bytes
        return useful, values_per_row * rows * tx_per_row

    traffic = MemoryTraffic()
    # forward: read a, stored denom, d; write d'
    traffic.add_load(*bulk(3, length))
    traffic.add_store(*bulk(1, length))
    # backward: read stored c', d'; write x
    traffic.add_load(*bulk(2, length))
    traffic.add_store(*bulk(1, length))

    # live per thread: sub-diagonal, stored denominator, rolling d'/x,
    # stored c' — the eliminated coefficient streams are gone
    regs, smem = rhs_kernel_footprint(4, dtype_bytes)
    return KernelCounters(
        name="p-Thomas (RHS-only)",
        eliminations=n_systems * (2 * length - 1),
        traffic=traffic,
        launches=1,
        dependent_steps=2 * length - 1,
        threads=n_systems,
        threads_per_block=threads_per_block,
        smem_per_block=smem,
        regs_per_thread=regs,
        mlp=4.0,
    )


def rhs_level_counters(
    m: int,
    n: int,
    k: int,
    dtype_bytes: int,
    device: DeviceSpec = GTX480,
    threads_per_block: int = 128,
) -> KernelCounters:
    """Ledger for applying ``k`` stored PCR level factors to the RHS.

    Per level, per row: load ``k1``, ``k2``, ``d`` and the two shifted
    ``d`` neighbours, store ``d'`` — fully coalesced elementwise
    streaming (stride 1 along the row axis).
    """
    if m < 1 or n < 1 or k < 1:
        raise ValueError(f"need m, n >= 1 and k >= 1, got ({m}, {n}, {k})")
    if dtype_bytes not in (4, 8):
        raise ValueError(f"dtype_bytes must be 4 or 8, got {dtype_bytes}")

    rows = m * n
    tx_per_val = _warp_tx(device, rows, 1, dtype_bytes)
    traffic = MemoryTraffic()
    traffic.add_load(5 * k * rows * dtype_bytes, 5 * k * tx_per_val)
    traffic.add_store(k * rows * dtype_bytes, k * tx_per_val)

    # live per thread: k1, k2, d, the two shifted neighbours, d'
    regs, smem = rhs_kernel_footprint(6, dtype_bytes)
    return KernelCounters(
        name="PCR level apply (RHS-only)",
        eliminations=k * rows,
        traffic=traffic,
        launches=k,
        dependent_steps=k,  # levels are sequential; each is elementwise
        threads=rows,
        threads_per_block=min(threads_per_block, max(device.warp_size, rows)),
        smem_per_block=smem,
        regs_per_thread=regs,
        mlp=8.0,
    )


def cyclic_correction_counters(
    m: int,
    n: int,
    dtype_bytes: int,
    device: DeviceSpec = GTX480,
    threads_per_block: int = 128,
) -> list:
    """Ledgers for the Sherman–Morrison correction of a cyclic solve.

    Two kernels follow the inner solve(s):

    * **boundary dot** — one thread per system gathers the boundary
      values ``y_0, y_{n−1}, q_0, q_{n−1}`` plus ``w`` and the stored
      ``1/(1+vᵀq)`` scale and emits the per-system factor.  Row-major
      ``(M, N)`` storage makes the column gathers stride-``n``, so a
      warp's loads splinter into per-lane transactions — tiny useful
      bytes, terrible efficiency, but only ``O(M)`` work total.
    * **correction axpy** — ``x = y − factor·q`` over the full batch:
      perfectly coalesced elementwise streaming (2 loads + broadcast
      factor + 1 store per element).
    """
    if m < 1 or n < 1:
        raise ValueError(f"need m, n >= 1, got ({m}, {n})")
    if dtype_bytes not in (4, 8):
        raise ValueError(f"dtype_bytes must be 4 or 8, got {dtype_bytes}")

    tpb = min(threads_per_block, max(device.warp_size, m))

    # boundary dot: 4 strided column gathers (y/q at rows 0 and n-1)
    # plus the contiguous w and scale vectors; one factor store
    tx_strided = _warp_tx(device, m, n, dtype_bytes)
    tx_unit = _warp_tx(device, m, 1, dtype_bytes)
    dot_traffic = MemoryTraffic()
    dot_traffic.add_load(4 * m * dtype_bytes, 4 * tx_strided)
    dot_traffic.add_load(2 * m * dtype_bytes, 2 * tx_unit)
    dot_traffic.add_store(m * dtype_bytes, tx_unit)
    # live per thread: w, scale, the running factor, and one loaded
    # boundary pair at a time (y/q values are consumed as they arrive)
    dot_regs, dot_smem = rhs_kernel_footprint(5, dtype_bytes)
    dot = KernelCounters(
        name="cyclic boundary dot",
        eliminations=m,
        traffic=dot_traffic,
        launches=1,
        dependent_steps=1,
        threads=m,
        threads_per_block=tpb,
        smem_per_block=dot_smem,
        regs_per_thread=dot_regs,
        mlp=4.0,
    )

    # correction axpy: read y and q, broadcast-read factor, store x
    rows = m * n
    tx_elem = _warp_tx(device, rows, 1, dtype_bytes)
    axpy_traffic = MemoryTraffic()
    axpy_traffic.add_load(2 * rows * dtype_bytes + m * dtype_bytes,
                          2 * tx_elem + tx_unit)
    axpy_traffic.add_store(rows * dtype_bytes, tx_elem)
    # live per thread: y, q, broadcast factor
    axpy_regs, axpy_smem = rhs_kernel_footprint(3, dtype_bytes)
    axpy = KernelCounters(
        name="cyclic correction axpy",
        eliminations=rows,
        traffic=axpy_traffic,
        launches=1,
        dependent_steps=1,
        threads=rows,
        threads_per_block=min(
            threads_per_block, max(device.warp_size, rows)
        ),
        smem_per_block=axpy_smem,
        regs_per_thread=axpy_regs,
        mlp=8.0,
    )
    return [dot, axpy]


def rhs_only_counters(
    m: int,
    n: int,
    k: int,
    dtype_bytes: int,
    device: DeviceSpec = GTX480,
) -> list:
    """Stage ledgers of a prepared solve: ``[(level apply,)] + p-Thomas``.

    ``k = 0`` is a single RHS-only p-Thomas stage over the ``(M, N)``
    batch; ``k > 0`` prepends the stored-level application and runs the
    back-end over the ``M·2^k`` reduced interleaved systems.
    """
    if k == 0:
        return [rhs_pthomas_counters(m, n, dtype_bytes, device=device)]
    g = 1 << k
    length = -(-n // g)
    return [
        rhs_level_counters(m, n, k, dtype_bytes, device=device),
        rhs_pthomas_counters(
            m * g, length, dtype_bytes, device=device,
            layout=Layout.INTERLEAVED,
        ),
    ]
