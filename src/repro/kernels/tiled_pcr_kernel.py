"""Tiled-PCR kernel ledger — the buffered sliding window on the GPU.

Execution shape (Section III-A, Fig. 11): one thread block of ``2^k``
threads per window; ``M · W`` blocks for ``M`` systems with ``W`` windows
each (Fig. 11b), or several windows multiplexed per block (Fig. 11c,
``windows_per_block``).  Each block advances its window through
``rounds = (N/W + f(k)) / (c·2^k)`` sub-tiles; per round it

* loads one sub-tile (coalesced, stride-1) from global memory,
* runs ``c·k·2^k`` eliminations through shared memory,
* executes ``k + 1`` barriers,
* copies the top+middle cache contents (the "cache management" cost).

The rounds are *sequential* — each one starts with a dependent global
load — so ``rounds`` is the block's dependent-chain length.

Shared memory per window is the Fig. 9 layout (4 sub-tiles of 4 values);
per *block* it scales with the multiplexing factor, which is the
occupancy tradeoff of variant (c).
"""

from __future__ import annotations

from repro.core.cost_model import f_redundant_loads
from repro.core.window import BufferedSlidingWindow
from repro.gpusim.counters import KernelCounters
from repro.gpusim.device import DeviceSpec, GTX480
from repro.gpusim.memory import MemoryTraffic, warp_transactions_strided
from repro.gpusim.sharedmem import smem_access_cycles

__all__ = ["tiled_pcr_counters"]


def tiled_pcr_counters(
    m: int,
    n: int,
    k: int,
    dtype_bytes: int,
    device: DeviceSpec = GTX480,
    c: int = 1,
    n_windows: int = 1,
    windows_per_block: int = 1,
    fused_output: bool = False,
) -> KernelCounters:
    """Ledger for a k-step tiled-PCR sweep of ``M`` systems of ``N`` rows.

    Parameters
    ----------
    m, n:
        Batch shape.
    k:
        PCR steps (thread-block width ``2^k``; must be ≥ 1 — a ``k = 0``
        hybrid launches no PCR kernel at all).
    dtype_bytes:
        4 or 8.
    c:
        Sub-tile scale (outputs per thread per round, Table I).
    n_windows:
        Windows per system (Fig. 11b); each internal boundary re-loads
        ``2·f(k)`` halo rows.
    windows_per_block:
        Windows multiplexed onto one block (Fig. 11c); multiplies the
        block's shared-memory footprint but overlaps the windows' loads.
    fused_output:
        Do not store the reduced system — it is consumed in registers by
        the fused p-Thomas stage (Section III-C).
    """
    if k < 1:
        raise ValueError(f"tiled PCR kernel needs k >= 1, got {k}")
    if m < 1 or n < 1:
        raise ValueError(f"need M, N >= 1, got {m}, {n}")
    if n_windows < 1 or windows_per_block < 1:
        raise ValueError("window counts must be >= 1")

    window = BufferedSlidingWindow(k=k, c=c, dtype_bytes=dtype_bytes)
    warp = device.warp_size
    threads = window.threads_per_block

    rows_per_window = -(-n // n_windows)
    rounds = window.rounds_for(rows_per_window)
    total_windows = m * n_windows
    blocks = -(-total_windows // windows_per_block)

    # ---- global traffic -------------------------------------------------
    # Every row of every window's extended range [r0 - f(k), r1 + f(k))
    # is loaded exactly once; each internal region boundary costs 2·f(k)
    # redundant re-loads (lead-in of the next window + look-ahead of the
    # previous one).
    lead = f_redundant_loads(k)
    rows_loaded = m * (n + max(0, n_windows - 1) * 2 * lead)
    tx_unit = warp_transactions_strided(warp, 1, dtype_bytes)
    warp_accesses = -(-rows_loaded // warp)  # stride-1, full warps
    traffic = MemoryTraffic()
    traffic.add_load(4 * rows_loaded * dtype_bytes, 4 * warp_accesses * tx_unit)
    if not fused_output:
        out_accesses = -(-(m * n) // warp)
        traffic.add_store(4 * m * n * dtype_bytes, 4 * out_accesses * tx_unit)

    # ---- eliminations ----------------------------------------------------
    # k levels over every loaded row (lead-in rows included: the window
    # eliminates through them to warm the cache).
    eliminations = k * rows_loaded

    # ---- shared memory ----------------------------------------------------
    # Per elimination: read 3 rows (4 values each) + write 1 row from/to
    # the window.  PCR is conflict-free by construction: lane j handles
    # output row j, so the three reads are at lane-consecutive addresses
    # (the ±2^l offset is uniform across the warp) — stride 1 across
    # lanes, unlike CR's lane-strided pattern (see cr_kernel).
    elem_words = dtype_bytes // 4
    smem_cycles = 0
    smem_accesses = 0
    rows_per_level = rows_loaded  # every level touches every loaded row
    unit = smem_access_cycles(1, elem_words=elem_words)
    for _level in range(k):
        warp_acc = -(-rows_per_level // warp)
        # 3 reads + 1 write per value row, 4 values, all lane-stride-1
        smem_accesses += 4 * 4 * warp_acc
        smem_cycles += 4 * warp_acc * 4 * unit
    # cache-management copy per round (top + middle rows, 4 values)
    copy_rows = (window.top_rows + window.middle_rows) * rounds * total_windows
    copy_acc = -(-copy_rows // warp)
    smem_accesses += 2 * 4 * copy_acc
    smem_cycles += 2 * 4 * copy_acc * unit

    return KernelCounters(
        name=f"tiled-PCR(k={k})",
        eliminations=eliminations,
        traffic=traffic,
        smem_accesses=smem_accesses,
        smem_cycles=smem_cycles,
        barriers=blocks * rounds * (k + 1),
        launches=1,
        dependent_steps=rounds,
        threads=blocks * threads * windows_per_block,
        threads_per_block=threads * windows_per_block,
        smem_per_block=window.smem_bytes() * windows_per_block,
        regs_per_thread=20,
    )
