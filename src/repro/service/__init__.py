"""Service tier: coalesce small solve requests into the large-M regime.

The paper's thesis — and every BENCH artifact in this repo — says the
fastest route is one *large* batched ``k = 0`` solve.  Real workloads
arrive as many *small* compatible solves.  This package is the bridge:

* :class:`~repro.service.service.SolveService` — the asyncio front
  door: concurrent ``submit`` calls are grouped by compatibility,
  coalesced along the batch axis under a tunable size/wait window,
  executed as one registry dispatch, and scattered back bitwise
  identical to solo ``k = 0`` execution.
* :class:`~repro.service.sync.SyncSolveClient` — the thread-queue
  adapter: a background event loop so plain synchronous (and
  multi-threaded) callers coalesce too.
* :class:`~repro.service.stats.ServiceStats` — per-tenant admission /
  latency / trace aggregation behind ``repro serve-stats``.

Quick start::

    from repro.service import SyncSolveClient

    with SyncSolveClient() as client:
        x = client.solve(a, b, c, d)     # coalesces with other callers
"""

from repro.service.service import ServiceConfig, ServiceOverloaded, SolveService
from repro.service.stats import LatencyReservoir, ServiceStats, TenantStats
from repro.service.sync import SyncSolveClient

__all__ = [
    "LatencyReservoir",
    "ServiceConfig",
    "ServiceOverloaded",
    "ServiceStats",
    "SolveService",
    "SyncSolveClient",
    "TenantStats",
]
